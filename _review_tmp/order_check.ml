open Entangle_symbolic
open Entangle_ir
open Entangle_dist
module B = Graph.Builder

let sd = Symdim.of_int

let () =
  let bs = B.create "branches-seq" in
  let x = B.input bs "x" [ sd 8; sd 4 ] in
  let y = B.input bs "y" [ sd 8; sd 4 ] in
  let a = B.add bs ~name:"a" Op.Gelu [ x ] in
  let b = B.add bs ~name:"b" Op.Relu [ y ] in
  let z = B.add bs ~name:"z" Op.Add [ a; b ] in
  B.output bs z;
  let gs = B.finish bs in
  let ctx = Lower.create ~name:"branches-dist" ~degree:2 () in
  let xs = Lower.shard_input ctx x ~dim:0 in
  let ys = Lower.shard_input ctx y ~dim:0 in
  let as_ = List.map (fun t -> Lower.add ctx Op.Silu [ t ]) xs in
  let bs_ = List.map (fun t -> Lower.add ctx Op.Tanh [ t ]) ys in
  let zs = List.map2 (fun a b -> Lower.add ctx Op.Add [ a; b ]) as_ bs_ in
  List.iter (Lower.output ctx) zs;
  let gd, input_relation = Lower.finish ctx in
  let config = Entangle.Config.default |> Entangle.Config.with_keep_going true in
  match Entangle.Refine.check ~config ~gs ~gd ~input_relation () with
  | Ok _ -> print_endline "OK (unexpected)"
  | Error f ->
      Printf.printf "head operator: %s\n" (Op.name (Node.op f.Entangle.Refine.operator));
      List.iter
        (fun (fl : Entangle.Refine.fault) ->
          Printf.printf "fault: %s\n" (Op.name (Node.op fl.Entangle.Refine.fault_operator)))
        f.Entangle.Refine.faults
