type verdict = Proved | Unknown

module Smap = Map.Make (String)

(* A row represents [sum coeffs*vars + const >= 0] with rational
   coefficients. *)
type row = { coeffs : Rat.t Smap.t; const : Rat.t }

let row_budget = 4000

let row_of_symdim e =
  let coeffs =
    List.fold_left
      (fun m s -> Smap.add s (Rat.of_int (Symdim.coeff e s)) m)
      Smap.empty (Symdim.symbols e)
  in
  { coeffs; const = Rat.of_int (Symdim.const_part e) }

let row_vars row = Smap.bindings row.coeffs |> List.map fst

(* Combine a row with positive coefficient [cp] on [v] and one with
   negative coefficient [cn], eliminating [v]. The combination
   [(-cn) * pos + cp * neg] has coefficient 0 on [v] and remains a valid
   consequence because both multipliers are positive. *)
let combine v pos neg =
  let cp = Smap.find v pos.coeffs and cn = Smap.find v neg.coeffs in
  let a = Rat.neg cn and b = cp in
  let scale k row =
    {
      coeffs = Smap.map (Rat.mul k) row.coeffs;
      const = Rat.mul k row.const;
    }
  in
  let p = scale a pos and n = scale b neg in
  let coeffs =
    Smap.union
      (fun _ x y ->
        let s = Rat.add x y in
        if Rat.equal s Rat.zero then None else Some s)
      p.coeffs n.coeffs
  in
  let coeffs = Smap.remove v coeffs in
  { coeffs; const = Rat.add p.const n.const }

exception Budget_exceeded

let fp_decide =
  Entangle_failpoint.Failpoint.declare "symbolic.decide"
    ~doc:"per-elimination step of the Fourier-Motzkin decision procedure"

(* Fourier-Motzkin elimination: returns [true] when the system of rows is
   feasible over the rationals. Raises [Budget_exceeded] when the
   intermediate system grows past [row_budget]. *)
let rec fm_feasible rows =
  Entangle_failpoint.Failpoint.hit fp_decide;
  (* Drop variable-free rows, failing if any is violated. *)
  let ground_ok = ref true in
  let rows =
    List.filter
      (fun r ->
        if Smap.is_empty r.coeffs then begin
          if Rat.sign r.const < 0 then ground_ok := false;
          false
        end
        else true)
      rows
  in
  if not !ground_ok then false
  else
    match rows with
    | [] -> true
    | r :: _ ->
        let v = List.hd (row_vars r) in
        let pos, neg, zero =
          List.fold_left
            (fun (p, n, z) row ->
              match Smap.find_opt v row.coeffs with
              | None -> (p, n, row :: z)
              | Some c when Rat.sign c > 0 -> (row :: p, n, z)
              | Some c when Rat.sign c < 0 -> (p, row :: n, z)
              | Some _ -> (p, n, { row with coeffs = Smap.remove v row.coeffs } :: z))
            ([], [], []) rows
        in
        (* Check the product size before materializing the combined
           rows; Fourier-Motzkin's blowup is pos * neg. *)
        if List.length pos * List.length neg + List.length zero > row_budget
        then raise Budget_exceeded;
        let combined =
          List.concat_map (fun p -> List.map (fun n -> combine v p n) neg) pos
        in
        fm_feasible (combined @ zero)

let feasible ges =
  match fm_feasible (List.map row_of_symdim ges) with
  | ok -> ok
  | exception Budget_exceeded -> true

let implies_ge store e =
  if Symdim.is_const e then
    if Symdim.const_part e >= 0 then Proved else Unknown
  else begin
    (* store /\ (e <= -1) infeasible  ==>  store |= e >= 0. *)
    let negated = Symdim.sub (Symdim.neg e) Symdim.one in
    let system = negated :: Constraint_store.inequalities store in
    match fm_feasible (List.map row_of_symdim system) with
    | false -> Proved
    | true -> Unknown
    | exception Budget_exceeded -> Unknown
  end

let prove_le store a b = implies_ge store (Symdim.sub b a) = Proved
let prove_lt store a b = implies_ge store (Symdim.sub (Symdim.sub b a) Symdim.one) = Proved

let prove_eq store a b =
  Symdim.equal a b || (prove_le store a b && prove_le store b a)

let prove_ne store a b = prove_lt store a b || prove_lt store b a

let compare_known store a b =
  if prove_eq store a b then `Eq
  else if prove_lt store a b then `Lt
  else if prove_lt store b a then `Gt
  else `Unknown
