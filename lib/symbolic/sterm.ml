type reduction = Rsum | Rmax

type index = I of Symdim.t | S of t

and t =
  | Access of string * index list
  | Cst of Rat.t
  | CstF of float
  | DimV of Symdim.t
  | Lin of (Rat.t * t) list * Rat.t
  | Mul of t list
  | App of string * t list
  | Max of t list
  | Red of reduction * string * Symdim.t * t
  | Sel of Symdim.t * t * t
  | DivD of t * Symdim.t list

let binder_prefix = "!k"
let is_binder_sym s = String.length s >= 2 && s.[0] = '!' && s.[1] = 'k'

(* --- raw constructors --------------------------------------------------- *)

let access name idx = Access (name, idx)
let cst r = Cst r
let cst_int i = Cst (Rat.of_int i)
let add a b = Lin ([ (Rat.one, a); (Rat.one, b) ], Rat.zero)
let sub a b = Lin ([ (Rat.one, a); (Rat.minus_one, b) ], Rat.zero)
let neg a = Lin ([ (Rat.minus_one, a) ], Rat.zero)
let scale r a = Lin ([ (r, a) ], Rat.zero)
let mul a b = Mul [ a; b ]
let app f args = App (f, args)
let max2 a b = Max [ a; b ]
let sel ~cond a b = Sel (cond, a, b)
let div_dims a ds = DivD (a, ds)
let sum_over v n body = Red (Rsum, v, n, body)
let max_over v n body = Red (Rmax, v, n, body)

(* --- total order -------------------------------------------------------- *)

let tag = function
  | Access _ -> 0
  | Cst _ -> 1
  | CstF _ -> 2
  | DimV _ -> 3
  | Lin _ -> 4
  | Mul _ -> 5
  | App _ -> 6
  | Max _ -> 7
  | Red _ -> 8
  | Sel _ -> 9
  | DivD _ -> 10

let rec compare a b =
  match (a, b) with
  | Access (n1, i1), Access (n2, i2) -> (
      match String.compare n1 n2 with
      | 0 -> compare_list compare_index i1 i2
      | c -> c)
  | Cst r1, Cst r2 -> Rat.compare r1 r2
  | CstF f1, CstF f2 -> Float.compare f1 f2
  | DimV d1, DimV d2 -> Symdim.compare d1 d2
  | Lin (t1, c1), Lin (t2, c2) -> (
      match compare_list compare_term t1 t2 with
      | 0 -> Rat.compare c1 c2
      | c -> c)
  | Mul f1, Mul f2 | Max f1, Max f2 -> compare_list compare f1 f2
  | App (f1, a1), App (f2, a2) -> (
      match String.compare f1 f2 with
      | 0 -> compare_list compare a1 a2
      | c -> c)
  | Red (k1, v1, n1, b1), Red (k2, v2, n2, b2) -> (
      match Stdlib.compare k1 k2 with
      | 0 -> (
          match String.compare v1 v2 with
          | 0 -> (
              match Symdim.compare n1 n2 with 0 -> compare b1 b2 | c -> c)
          | c -> c)
      | c -> c)
  | Sel (c1, a1, b1), Sel (c2, a2, b2) -> (
      match Symdim.compare c1 c2 with
      | 0 -> ( match compare a1 a2 with 0 -> compare b1 b2 | c -> c)
      | c -> c)
  | DivD (u1, d1), DivD (u2, d2) -> (
      match compare u1 u2 with
      | 0 -> compare_list Symdim.compare d1 d2
      | c -> c)
  | _ -> Stdlib.compare (tag a) (tag b)

and compare_index x y =
  match (x, y) with
  | I a, I b -> Symdim.compare a b
  | S a, S b -> compare a b
  | I _, S _ -> -1
  | S _, I _ -> 1

and compare_term (c1, t1) (c2, t2) =
  match compare t1 t2 with 0 -> Rat.compare c1 c2 | c -> c

and compare_list : 'a. ('a -> 'a -> int) -> 'a list -> 'a list -> int =
 fun cmp l1 l2 ->
  match (l1, l2) with
  | [], [] -> 0
  | [], _ -> -1
  | _, [] -> 1
  | x :: xs, y :: ys -> ( match cmp x y with 0 -> compare_list cmp xs ys | c -> c)

let equal_syntactic a b = compare a b = 0

(* --- symbol occurrence and substitution --------------------------------- *)

let rec mentions_sym v t =
  let in_dim d = Symdim.coeff d v <> 0 in
  match t with
  | Access (_, idx) ->
      List.exists (function I d -> in_dim d | S s -> mentions_sym v s) idx
  | Cst _ | CstF _ -> false
  | DimV d -> in_dim d
  | Lin (ts, _) -> List.exists (fun (_, x) -> mentions_sym v x) ts
  | Mul fs | App (_, fs) | Max fs -> List.exists (mentions_sym v) fs
  | Red (_, _, n, b) -> in_dim n || mentions_sym v b
  | Sel (c, a, b) -> in_dim c || mentions_sym v a || mentions_sym v b
  | DivD (u, ds) -> mentions_sym v u || List.exists in_dim ds

(* Substitute the symbol [v] by the affine form [d] everywhere. *)
let rec subst_sym v d t =
  let sb e = Symdim.subst (fun s -> if String.equal s v then Some d else None) e in
  match t with
  | Access (n, idx) ->
      Access
        (n, List.map (function I e -> I (sb e) | S s -> S (subst_sym v d s)) idx)
  | Cst _ | CstF _ -> t
  | DimV e -> DimV (sb e)
  | Lin (ts, c0) -> Lin (List.map (fun (c, x) -> (c, subst_sym v d x)) ts, c0)
  | Mul fs -> Mul (List.map (subst_sym v d) fs)
  | App (f, args) -> App (f, List.map (subst_sym v d) args)
  | Max ms -> Max (List.map (subst_sym v d) ms)
  | Red (k, w, n, b) -> Red (k, w, sb n, subst_sym v d b)
  | Sel (c, a, b) -> Sel (sb c, subst_sym v d a, subst_sym v d b)
  | DivD (u, ds) -> DivD (subst_sym v d u, List.map sb ds)

(* --- normalization ------------------------------------------------------ *)

let flip_cond c = Symdim.sub (Symdim.neg c) Symdim.one

let rec go store t =
  match t with
  | Access (n, idx) ->
      Access
        (n, List.map (function I d -> I d | S s -> S (go store s)) idx)
  | Cst _ | CstF _ -> t
  | DimV d ->
      if Symdim.is_const d then Cst (Rat.of_int (Symdim.const_part d))
      else DimV d
  | Lin (ts, c0) -> mk_lin (List.map (fun (c, x) -> (c, go store x)) ts) c0
  | Mul fs -> mk_mul store (List.map (go store) fs)
  | App (f, args) -> App (f, List.map (go store) args)
  | Max ms -> mk_max (List.map (go store) ms)
  | DivD (u, ds) -> mk_divd store (go store u) ds
  | Sel (c, a, b) -> mk_sel store c (go store a) (go store b)
  | Red (k, v, n, body) ->
      let sv = Symdim.sym v in
      let store_v =
        Constraint_store.add_ge
          (Constraint_store.add_ge store sv)
          (Symdim.sub (Symdim.sub n sv) Symdim.one)
      in
      mk_red store k v n (go store_v body)

and mk_lin terms const =
  let atoms = ref [] and const = ref const and dims = ref Symdim.zero in
  let rec push c t =
    if Rat.sign c = 0 then ()
    else
      match t with
      | Cst r -> const := Rat.add !const (Rat.mul c r)
      | Lin (ts, c0) ->
          const := Rat.add !const (Rat.mul c c0);
          List.iter (fun (ci, ti) -> push (Rat.mul c ci) ti) ts
      | DimV d when Rat.is_integer c ->
          dims := Symdim.add !dims (Symdim.mul_int (Rat.num c) d)
      | t -> atoms := (c, t) :: !atoms
  in
  List.iter (fun (c, t) -> push c t) terms;
  let k = Symdim.const_part !dims in
  const := Rat.add !const (Rat.of_int k);
  let dsym = Symdim.sub !dims (Symdim.of_int k) in
  if not (Symdim.is_const dsym) then atoms := (Rat.one, DimV dsym) :: !atoms;
  let sorted = List.sort (fun (_, a) (_, b) -> compare a b) !atoms in
  let merged =
    List.fold_left
      (fun acc (c, t) ->
        match acc with
        | (c', t') :: rest when compare t t' = 0 -> (Rat.add c c', t) :: rest
        | _ -> (c, t) :: acc)
      [] sorted
  in
  let merged = List.rev (List.filter (fun (c, _) -> Rat.sign c <> 0) merged) in
  match (merged, Rat.sign !const) with
  | [], _ -> Cst !const
  | [ (c, t) ], 0 when Rat.equal c Rat.one -> t
  | ts, _ -> Lin (ts, !const)

and mk_mul store factors =
  let rat = ref Rat.one and atoms = ref [] and dens = ref [] in
  let rec push t =
    match t with
    | Cst r -> rat := Rat.mul !rat r
    | Mul fs -> List.iter push fs
    | Lin ([ (c, x) ], c0) when Rat.sign c0 = 0 ->
        rat := Rat.mul !rat c;
        push x
    | DivD (u, ds) ->
        dens := ds @ !dens;
        push u
    | t -> atoms := t :: !atoms
  in
  List.iter push factors;
  if Rat.sign !rat = 0 then Cst Rat.zero
  else begin
    (* cancel dimension-valued factors against denominators *)
    let remaining_dens = ref !dens in
    let kept =
      List.filter
        (fun a ->
          match a with
          | DimV d -> (
              match
                List.partition (fun e -> Decide.prove_eq store d e)
                  !remaining_dens
              with
              | hit :: rest_hits, others ->
                  remaining_dens := rest_hits @ others;
                  ignore hit;
                  false
              | [], _ -> true)
          | _ -> true)
        !atoms
    in
    let kept = List.sort compare kept in
    let base =
      match kept with [] -> Cst Rat.one | [ a ] -> a | l -> Mul l
    in
    let dens = List.sort Symdim.compare !remaining_dens in
    let t =
      match (base, dens) with
      | b, [] -> b
      | Cst r, ds ->
          rat := Rat.mul !rat r;
          DivD (Cst Rat.one, ds)
      | b, ds -> DivD (b, ds)
    in
    if Rat.equal !rat Rat.one then t else mk_lin [ (!rat, t) ] Rat.zero
  end

and mk_divd store u ds =
  let rat = ref Rat.one in
  let rec gcd a b = if b = 0 then abs a else gcd b (a mod b) in
  let ds =
    List.filter_map
      (fun d ->
        match Symdim.to_int d with
        | Some k when k <> 0 ->
            rat := Rat.mul !rat (Rat.make 1 k);
            None
        | Some _ -> Some d
        | None -> (
            (* factor the integer content out of an affine dim, so that
               1/(2c) and (1/2)(1/c) normalize identically *)
            let g =
              List.fold_left
                (fun acc s -> gcd acc (Symdim.coeff d s))
                (Symdim.const_part d) (Symdim.symbols d)
            in
            if g > 1 then
              match Symdim.div_int d g with
              | Some d' ->
                  rat := Rat.mul !rat (Rat.make 1 g);
                  Some d'
              | None -> Some d
            else Some d))
      ds
  in
  let wrap t =
    if Rat.equal !rat Rat.one then t else mk_lin [ (!rat, t) ] Rat.zero
  in
  if ds = [] then wrap u
  else
    match u with
    | Cst r when Rat.sign r = 0 -> Cst Rat.zero
    | Lin (ts, c0) ->
        wrap
          (mk_lin
             (List.map (fun (c, t) -> (c, mk_divd store t ds)) ts
             @ [ (c0, mk_divd store (Cst Rat.one) ds) ])
             Rat.zero)
    | u -> wrap (mk_mul store [ u; DivD (Cst Rat.one, ds) ])

and mk_max ms =
  let rec flat acc = function
    | Max xs -> List.fold_left flat acc xs
    | x -> x :: acc
  in
  let ms = List.fold_left flat [] ms in
  let ms = List.sort_uniq compare ms in
  match ms with [ m ] -> m | ms -> Max ms

and mk_sel store c a b =
  if compare a b = 0 then a
  else
    match Symdim.to_int c with
    | Some k -> if k >= 0 then a else b
    | None ->
        if Decide.implies_ge store c = Decide.Proved then a
        else
          let fc = flip_cond c in
          if Decide.implies_ge store fc = Decide.Proved then b
          else if Symdim.compare c fc > 0 then Sel (fc, b, a)
          else Sel (c, a, b)

and mk_red store k v n body =
  match Symdim.to_int n with
  | Some k0 when k0 <= 0 -> (
      match k with
      | Rsum -> Cst Rat.zero
      | Rmax -> go store (subst_sym v Symdim.zero body))
  | Some 1 -> go store (subst_sym v Symdim.zero body)
  | _ -> (
      if not (mentions_sym v body) then
        match k with
        | Rsum -> mk_mul store [ DimV n; body ]
        | Rmax -> body
      else
        match (k, body) with
        | Rsum, Lin (ts, c0) ->
            mk_lin
              (List.map (fun (c, t) -> (c, mk_red store Rsum v n t)) ts
              @ [ (c0, DimV n) ])
              Rat.zero
        | _ -> (
            match try_split store k v n body with
            | Some t -> t
            | None -> Red (k, v, n, body)))

(* Split a reduction at a selection boundary: a [Sel] in the body whose
   condition has coefficient +-1 on the binder partitions [0, n) at an
   affine threshold; when the store proves the threshold in range the
   reduction becomes the combination of the two resolved halves. *)
and try_split store k v n body =
  let cands = ref [] in
  let rec scan t =
    match t with
    | Sel (c, a, b) ->
        let alpha = Symdim.coeff c v in
        if alpha = 1 || alpha = -1 then
          if not (List.exists (Symdim.equal c) !cands) then cands := c :: !cands;
        scan a;
        scan b
    | Lin (ts, _) -> List.iter (fun (_, x) -> scan x) ts
    | Mul fs | App (_, fs) | Max fs -> List.iter scan fs
    | Red (_, _, _, b) -> scan b
    | DivD (u, _) -> scan u
    | Access (_, idx) -> List.iter (function I _ -> () | S s -> scan s) idx
    | Cst _ | CstF _ | DimV _ -> ()
  in
  scan body;
  let replace cond branch t =
    let rec rep t =
      match t with
      | Sel (c, a, b) when Symdim.equal c cond -> (
          match branch with `T -> rep a | `F -> rep b)
      | Sel (c, a, b) -> Sel (c, rep a, rep b)
      | Lin (ts, c0) -> Lin (List.map (fun (c, x) -> (c, rep x)) ts, c0)
      | Mul fs -> Mul (List.map rep fs)
      | App (f, args) -> App (f, List.map rep args)
      | Max ms -> Max (List.map rep ms)
      | Red (k, w, m, b) -> Red (k, w, m, rep b)
      | DivD (u, ds) -> DivD (rep u, ds)
      | Access (n, idx) ->
          Access (n, List.map (function I d -> I d | S s -> S (rep s)) idx)
      | Cst _ | CstF _ | DimV _ -> t
    in
    rep t
  in
  let try_cand c =
    (* the threshold may not depend on this or any deeper binder *)
    let scoped =
      List.for_all
        (fun s -> String.equal s v || not (is_binder_sym s))
        (Symdim.symbols c)
    in
    if not scoped then None
    else
      let alpha = Symdim.coeff c v in
      let rest = Symdim.sub c (Symdim.mul_int alpha (Symdim.sym v)) in
      let thr, lower_branch, upper_branch =
        if alpha = -1 then (Symdim.add rest Symdim.one, `T, `F)
        else (Symdim.neg rest, `F, `T)
      in
      if Decide.prove_le store thr Symdim.zero then
        Some (go store (Red (k, v, n, replace c upper_branch body)))
      else if Decide.prove_le store n thr then
        Some (go store (Red (k, v, n, replace c lower_branch body)))
      else
        let in_range =
          match k with
          | Rsum ->
              Decide.implies_ge store thr = Decide.Proved
              && Decide.implies_ge store (Symdim.sub n thr) = Decide.Proved
          | Rmax ->
              Decide.prove_le store Symdim.one thr
              && Decide.prove_le store Symdim.one (Symdim.sub n thr)
        in
        if not in_range then None
        else
          let lower = replace c lower_branch body in
          let upper =
            subst_sym v
              (Symdim.add (Symdim.sym v) thr)
              (replace c upper_branch body)
          in
          let p1 = go store (Red (k, v, thr, lower)) in
          let p2 = go store (Red (k, v, Symdim.sub n thr, upper)) in
          match k with
          | Rsum -> Some (mk_lin [ (Rat.one, p1); (Rat.one, p2) ] Rat.zero)
          | Rmax -> Some (mk_max [ p1; p2 ])
  in
  List.fold_left
    (fun acc c -> match acc with Some _ -> acc | None -> try_cand c)
    None (List.rev !cands)

(* Canonical depth-indexed binder names, so two independently built
   terms become comparable. *)
let rec rename_binders depth t =
  match t with
  | Red (k, v, n, body) ->
      let v' = Printf.sprintf "%s%d" binder_prefix depth in
      let body =
        if String.equal v v' then body else subst_sym v (Symdim.sym v') body
      in
      Red (k, v', n, rename_binders (depth + 1) body)
  | Access (n, idx) ->
      Access
        ( n,
          List.map
            (function I d -> I d | S s -> S (rename_binders depth s))
            idx )
  | Cst _ | CstF _ | DimV _ -> t
  | Lin (ts, c0) ->
      Lin (List.map (fun (c, x) -> (c, rename_binders depth x)) ts, c0)
  | Mul fs -> Mul (List.map (rename_binders depth) fs)
  | App (f, args) -> App (f, List.map (rename_binders depth) args)
  | Max ms -> Max (List.map (rename_binders depth) ms)
  | Sel (c, a, b) -> Sel (c, rename_binders depth a, rename_binders depth b)
  | DivD (u, ds) -> DivD (rename_binders depth u, ds)

let norm store t = rename_binders 0 (go store t)

(* --- equality ----------------------------------------------------------- *)

(* Atomic: freshness is the only requirement, and parallel operator
   checks mint binders concurrently. *)
let fresh_counter = Atomic.make 0

let fresh_binder () =
  Printf.sprintf "%sq%d" binder_prefix (Atomic.fetch_and_add fresh_counter 1 + 1)

let rec equal_t store a b =
  compare a b = 0
  ||
  match (a, b) with
  | Cst r1, Cst r2 -> Rat.equal r1 r2
  | CstF f1, CstF f2 -> Float.equal f1 f2
  | DimV d1, DimV d2 -> Decide.prove_eq store d1 d2
  | DimV d, Cst r | Cst r, DimV d ->
      Rat.is_integer r && Decide.prove_eq store d (Symdim.of_int (Rat.num r))
  | Access (n1, i1), Access (n2, i2) ->
      String.equal n1 n2
      && List.length i1 = List.length i2
      && List.for_all2
           (fun x y ->
             match (x, y) with
             | I d1, I d2 -> Decide.prove_eq store d1 d2
             | S s1, S s2 -> equal_t store s1 s2
             | _ -> false)
           i1 i2
  | App (f1, a1), App (f2, a2) ->
      String.equal f1 f2
      && List.length a1 = List.length a2
      && List.for_all2 (equal_t store) a1 a2
  | Max m1, Max m2 -> multiset_equal store m1 m2
  | Mul f1, Mul f2 -> multiset_equal store f1 f2
  | Sel (c1, a1, b1), Sel (c2, a2, b2) ->
      (Decide.prove_eq store c1 c2
      && equal_t store a1 a2 && equal_t store b1 b2)
      || Decide.prove_eq store c1 (flip_cond c2)
         && equal_t store a1 b2 && equal_t store b1 a2
  | Red (k1, v1, n1, b1), Red (k2, v2, n2, b2) ->
      k1 = k2
      && Decide.prove_eq store n1 n2
      &&
      let w = fresh_binder () in
      let sw = Symdim.sym w in
      let store' =
        Constraint_store.add_ge
          (Constraint_store.add_ge store sw)
          (Symdim.sub (Symdim.sub n1 sw) Symdim.one)
      in
      equal_t store' (subst_sym v1 sw b1) (subst_sym v2 sw b2)
  | (Lin _ | DivD _), _ | _, (Lin _ | DivD _) -> terms_equal store a b
  | _ -> false

and multiset_equal store l1 l2 =
  List.length l1 = List.length l2
  &&
  let rec consume remaining = function
    | [] -> remaining = []
    | x :: xs -> (
        let rec pick acc = function
          | [] -> None
          | y :: ys ->
              if equal_t store x y then Some (List.rev_append acc ys)
              else pick (y :: acc) ys
        in
        match pick [] remaining with
        | Some rest -> consume rest xs
        | None -> false)
  in
  consume l2 l1

(* Sum comparison with divisor-aware term matching: [c1/prod d1] equals
   [c2/prod d2] on equal bodies when the cross products agree. *)
and terms_equal store a b =
  let split (c, t) = match t with DivD (u, ds) -> (c, ds, u) | t -> (c, [], t) in
  let decompose t =
    match t with
    | Lin (ts, c0) -> (List.map split ts, c0)
    | Cst r -> ([], r)
    | t -> ([ split (Rat.one, t) ], Rat.zero)
  in
  let t1, c1 = decompose a and t2, c2 = decompose b in
  let with_const (ts, c) =
    if Rat.sign c = 0 then ts else (c, [], Cst Rat.one) :: ts
  in
  let t1 = with_const (t1, c1) and t2 = with_const (t2, c2) in
  let product ds =
    List.fold_left
      (fun acc d -> match acc with None -> None | Some p -> Symdim.mul p d)
      (Some Symdim.one) ds
  in
  let term_match (r1, ds1, u1) (r2, ds2, u2) =
    equal_t store u1 u2
    &&
    match (product ds1, product ds2) with
    | Some p1, Some p2 ->
        Decide.prove_eq store
          (Symdim.mul_int (Rat.num r1 * Rat.den r2) p2)
          (Symdim.mul_int (Rat.num r2 * Rat.den r1) p1)
    | _ ->
        Rat.equal r1 r2
        && List.length ds1 = List.length ds2
        &&
        let rec consume remaining = function
          | [] -> remaining = []
          | d :: rest -> (
              let rec pick acc = function
                | [] -> None
                | e :: es ->
                    if Decide.prove_eq store d e then
                      Some (List.rev_append acc es)
                    else pick (e :: acc) es
              in
              match pick [] remaining with
              | Some left -> consume left rest
              | None -> false)
        in
        consume ds2 ds1
  in
  List.length t1 = List.length t2
  &&
  let rec consume remaining = function
    | [] -> remaining = []
    | x :: xs -> (
        let rec pick acc = function
          | [] -> None
          | y :: ys ->
              if term_match x y then Some (List.rev_append acc ys)
              else pick (y :: acc) ys
        in
        match pick [] remaining with
        | Some rest -> consume rest xs
        | None -> false)
  in
  consume t2 t1

let collect_free_sel_conds t =
  let out = ref [] in
  let rec scan t =
    match t with
    | Sel (c, a, b) ->
        if
          List.for_all (fun s -> not (is_binder_sym s)) (Symdim.symbols c)
          && not (List.exists (Symdim.equal c) !out)
        then out := c :: !out;
        scan a;
        scan b
    | Lin (ts, _) -> List.iter (fun (_, x) -> scan x) ts
    | Mul fs | App (_, fs) | Max fs -> List.iter scan fs
    | Red (_, _, _, b) -> scan b
    | DivD (u, _) -> scan u
    | Access (_, idx) -> List.iter (function I _ -> () | S s -> scan s) idx
    | Cst _ | CstF _ | DimV _ -> ()
  in
  scan t;
  List.rev !out

let rec prove depth store a b =
  let na = norm store a and nb = norm store b in
  if equal_t store na nb then true
  else if depth <= 0 then false
  else
    match collect_free_sel_conds na @ collect_free_sel_conds nb with
    | [] -> false
    | c :: _ ->
        let branch st =
          (not (Decide.feasible (Constraint_store.inequalities st)))
          || prove (depth - 1) st na nb
        in
        branch (Constraint_store.add_ge store c)
        && branch (Constraint_store.add_ge store (flip_cond c))

let prove_equal store a b = prove 12 store a b

(* --- printing ----------------------------------------------------------- *)

let rec pp ppf t =
  match t with
  | Access (n, idx) ->
      Fmt.pf ppf "%s[%a]" n Fmt.(list ~sep:comma pp_index) idx
  | Cst r -> Rat.pp ppf r
  | CstF f -> Fmt.float ppf f
  | DimV d -> Fmt.pf ppf "#%a" Symdim.pp d
  | Lin (ts, c0) ->
      let pp_term ppf (c, t) =
        if Rat.equal c Rat.one then pp ppf t
        else Fmt.pf ppf "%a*%a" Rat.pp c pp t
      in
      Fmt.pf ppf "(+ %a" Fmt.(list ~sep:sp pp_term) ts;
      if Rat.sign c0 <> 0 then Fmt.pf ppf " %a" Rat.pp c0;
      Fmt.pf ppf ")"
  | Mul fs -> Fmt.pf ppf "(* %a)" Fmt.(list ~sep:sp pp) fs
  | App (f, args) -> Fmt.pf ppf "(%s %a)" f Fmt.(list ~sep:sp pp) args
  | Max ms -> Fmt.pf ppf "(max %a)" Fmt.(list ~sep:sp pp) ms
  | Red (k, v, n, b) ->
      Fmt.pf ppf "(%s %s<%a %a)"
        (match k with Rsum -> "sum" | Rmax -> "rmax")
        v Symdim.pp n pp b
  | Sel (c, a, b) ->
      Fmt.pf ppf "(if %a>=0 %a %a)" Symdim.pp c pp a pp b
  | DivD (u, ds) ->
      Fmt.pf ppf "(/ %a %a)" pp u Fmt.(list ~sep:sp Symdim.pp) ds

and pp_index ppf = function
  | I d -> Symdim.pp ppf d
  | S s -> Fmt.pf ppf "@@%a" pp s

let to_string t = Fmt.str "%a" pp t
