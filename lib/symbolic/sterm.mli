(** Symbolic scalar terms: the value language of the lemma verifier.

    A tensor-level rewrite is value-correct when, for every output index,
    the scalar computed by the left-hand side equals the scalar computed
    by the right-hand side. The verifier expresses each side as a term of
    this language — an index function in summation normal form, in the
    TensorRight style — and discharges the equality through {!Decide}
    under the lemma's side-condition {!Constraint_store}.

    The fragment is deliberately small: accesses into named tensors at
    affine (or data-dependent) indices, exact rational arithmetic,
    uninterpreted function symbols for the nonlinear elementwise
    operators, bounded sum/max reductions, and a selection operator on
    affine conditions that models concatenation and padding. Everything a
    rewrite can do to such a term — splitting a sum at a concatenation
    boundary, cancelling a mean's divisor, commuting a selection with an
    uninterpreted function — is handled by the store-aware normalizer
    {!norm} plus the case-splitting prover {!prove_equal}. *)

type reduction = Rsum | Rmax

type index =
  | I of Symdim.t  (** affine position *)
  | S of t  (** data-dependent position (gather via an integer tensor) *)

and t =
  | Access of string * index list
      (** a cell of a named input tensor *)
  | Cst of Rat.t
  | CstF of float  (** opaque float constant, e.g. a norm epsilon *)
  | DimV of Symdim.t  (** a dimension's value used as a scalar *)
  | Lin of (Rat.t * t) list * Rat.t
      (** [sum ci * ti + c0]; atoms are not themselves [Lin] or [Cst] *)
  | Mul of t list  (** product of two or more atoms *)
  | App of string * t list  (** uninterpreted function symbol *)
  | Max of t list  (** n-ary maximum *)
  | Red of reduction * string * Symdim.t * t
      (** [Red (k, v, n, body)]: reduce [body] over [v] in [0, n) *)
  | Sel of Symdim.t * t * t
      (** [Sel (c, a, b)] is [a] when [c >= 0], else [b] *)
  | DivD of t * Symdim.t list
      (** division by a product of (positive) dimensions *)

val binder_prefix : string
(** Reserved symbol prefix for reduction binders; scenario dimension
    symbols must not use it. *)

(** {1 Smart constructors} (raw; normalization happens in {!norm}) *)

val access : string -> index list -> t
val cst : Rat.t -> t
val cst_int : int -> t
val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val scale : Rat.t -> t -> t
val mul : t -> t -> t
val app : string -> t list -> t
val max2 : t -> t -> t
val sel : cond:Symdim.t -> t -> t -> t
val div_dims : t -> Symdim.t list -> t
val sum_over : string -> Symdim.t -> t -> t
val max_over : string -> Symdim.t -> t -> t

val norm : Constraint_store.t -> t -> t
(** Store-aware normal form: constant folding, flattening of sums and
    products, resolution of decidable selections, distribution of sums
    over linear bodies, hoisting of binder-independent bodies, and
    splitting of reductions at selection boundaries whose threshold is
    provably inside the range. Binders are renamed canonically by
    depth. Idempotent up to {!Decide} verdicts. *)

val prove_equal : Constraint_store.t -> t -> t -> bool
(** Sound equality check: normalizes both sides and compares them
    structurally modulo commutativity (greedy multiset matching),
    provable index/dimension equality, divisor cross-multiplication and
    binder renaming; on failure, case-splits on undecided binder-free
    selection conditions (both branches must agree). [false] means "not
    proved", never "provably different". *)

val compare : t -> t -> int
val equal_syntactic : t -> t -> bool
val pp : t Fmt.t
val to_string : t -> string
