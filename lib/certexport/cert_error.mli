(** Structured rejection taxonomy for certificate bundles.

    Every way a bundle can fail verification maps to exactly one code,
    so tamper tests (and remote peers) can assert {e which} defense
    fired rather than pattern-match message strings. The codes are
    ordered by verification stage: framing (001–002), integrity
    (003–005), then the semantic checks of the minimal verifier
    (006–010). *)

type code =
  | Parse_error  (** CERT001 — not a well-formed bundle s-expression
                     (including truncation). *)
  | Version_skew  (** CERT002 — the [schema] field is not a version
                      this verifier speaks. *)
  | Manifest_malformed
      (** CERT003 — manifest or section structure is damaged: missing
          or duplicate sections, unparsable digests, graphs or
          expressions that do not decode. *)
  | Section_corrupt
      (** CERT004 — a section's recomputed content digest differs from
          the manifest (byte corruption / bit flip). *)
  | Statement_mismatch
      (** CERT005 — the manifest's statement fingerprints (or the
          bundle id) do not match the fingerprints recomputed from the
          carried graphs/env/relations: the bundle was rebound to a
          different statement than it certifies. *)
  | Incomplete
      (** CERT006 — a required mapping is missing: an uncovered
          sequential input/output/operator, or an unbound shape
          symbol. *)
  | Unclean  (** CERT007 — a certificate expression uses a non-clean
                 operator. *)
  | Leaf_out_of_scope
      (** CERT008 — an expression leaf resolves outside its allowed
          tensor set (input exprs over [gd] inputs, output exprs over
          [gd] outputs, operator exprs over [gd] tensors). *)
  | Shape_mismatch
      (** CERT009 — an expression's inferred shape is not provably
          equal to the shape of the tensor it maps. *)
  | Replay_mismatch
      (** CERT010 — concrete replay of the output relation disagrees
          numerically with the sequential graph. *)

val code_string : code -> string
(** ["CERT001"] … ["CERT010"]. *)

val mnemonic : code -> string
(** Short kebab-case name, e.g. ["section-corrupt"]. *)

val all_codes : code list

type t = { code : code; detail : string }

val make : code -> string -> t
val makef : code -> ('a, Format.formatter, unit, t) format4 -> 'a
val pp : t Fmt.t
val to_string : t -> string
