(** The independent minimal verifier.

    Checks a certificate bundle using only {e replay, cleanliness and
    shape inference} — no e-graph, no saturation, no rewrite corpus.
    Its trust boundary is deliberately small: accepting a bundle means
    "under the carried concrete shape assignment, the distributed
    graph's outputs reconstruct the sequential graph's outputs via the
    carried clean expressions, whose symbolic shapes also agree" — it
    does not re-establish the producer's saturation proof, and it
    trusts its own interpreter and the statement fingerprints the
    caller compares against an expected statement.

    Check order (first failure wins, one structured code each):
    [CERT006] completeness (env symbols, inputs, outputs, operators),
    [CERT007] cleanliness, [CERT008] leaf scope, [CERT009] symbolic
    shape agreement, [CERT010] concrete replay. Framing and integrity
    ([CERT001]–[CERT005]) are {!Bundle.of_string}'s job. *)

type report = {
  id : string;  (** the bundle's content address *)
  operators : int;  (** operator entries checked *)
  outputs_checked : int;  (** sequential outputs replayed *)
  exprs_replayed : int;  (** output-relation expressions evaluated *)
  tol : float;
  seed : int;
}

val check :
  ?tol:float ->
  ?seed:int ->
  ?max_mismatches:int ->
  Bundle.t ->
  (report, Cert_error.t) result
(** Verify an already-parsed (hence integrity-checked) bundle. Replay
    accumulates up to [max_mismatches] (default 8) failing output
    expressions into one [CERT010] error instead of stopping at the
    first. *)

val check_string :
  ?tol:float ->
  ?seed:int ->
  ?max_mismatches:int ->
  string ->
  (report, Cert_error.t) result
(** {!Bundle.of_string} followed by {!check}: the one-call path a
    consumer should use on untrusted bytes. *)
