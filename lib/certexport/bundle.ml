open Entangle_ir
module Fp = Entangle_fingerprint.Fingerprint

let schema = 1

type operator_entry = { op_output : string; op_mappings : Expr.t list }

type t = {
  producer : string;
  gs : Graph.t;
  gd : Graph.t;
  env : (string * int) list;
  inputs : (Tensor.t * Expr.t list) list;
  outputs : (Tensor.t * Expr.t list) list;
  operators : operator_entry list;
}

let make ~producer ~gs ~gd ~env ~inputs ~outputs ~operators () =
  { producer; gs; gd; env; inputs; outputs; operators }

(* ------------------------------------------------------------------ *)
(* Statement fingerprints: what the bundle *claims to certify*, hashed
   with the same Merkle discipline as the cache keys so a bundle is
   invariant under tensor-id renaming but pinned to names, shapes,
   dtypes, operators and constraints. *)

type statement = {
  fp_gs : string;
  fp_gd : string;
  fp_env : string;
  fp_inputs : string;
  fp_outputs : string;
  fp_operators : string;
}

let statement_fields s =
  [
    ("gs", s.fp_gs);
    ("gd", s.fp_gd);
    ("env", s.fp_env);
    ("inputs", s.fp_inputs);
    ("outputs", s.fp_outputs);
    ("operators", s.fp_operators);
  ]

let relation_fp gs_env gd_env bindings =
  Fp.to_hex
    (Fp.strings
       (List.sort String.compare
          (List.map
             (fun (t, es) ->
               Fp.to_hex
                 (Fp.strings
                    [
                      Fp.to_hex (Fp.tensor gs_env t); Fp.to_hex (Fp.exprs gd_env es);
                    ]))
             bindings)))

let statement b =
  let gs_env = Fp.graph_env b.gs and gd_env = Fp.graph_env b.gd in
  let fp_env =
    Fp.to_hex
      (Fp.strings
         ("env"
         :: List.sort String.compare
              (List.map (fun (s, v) -> s ^ "=" ^ string_of_int v) b.env)))
  in
  let fp_operators =
    Fp.to_hex
      (Fp.strings
         ("operators"
         :: List.sort String.compare
              (List.map
                 (fun e ->
                   Fp.to_hex
                     (Fp.strings [ e.op_output; Fp.to_hex (Fp.exprs gd_env e.op_mappings) ]))
                 b.operators)))
  in
  {
    fp_gs = Fp.to_hex (Fp.graph b.gs);
    fp_gd = Fp.to_hex (Fp.graph b.gd);
    fp_env;
    fp_inputs = relation_fp gs_env gd_env b.inputs;
    fp_outputs = relation_fp gs_env gd_env b.outputs;
    fp_operators;
  }

(* ------------------------------------------------------------------ *)
(* Section serialization. Each section renders to one s-expression;
   its content digest is taken over the canonical pretty-printed bytes
   of that s-expression, so any semantic change to a section is
   detected while re-indentation of the file is harmless. *)

let section_names = [ "graphs"; "env"; "relations"; "operators" ]

let section name payload = Sexp.list (Sexp.atom "section" :: Sexp.atom name :: payload)

let section_digest sx =
  Entangle_fingerprint.Sha256.hex (Sexp.to_string sx)

let relation_entries bindings =
  List.map
    (fun (t, es) ->
      Sexp.list (Sexp.atom (Tensor.name t) :: List.map Serial.expr_to_sexp es))
    bindings

let graphs_section b =
  section "graphs" [ Serial.graph_to_sexp b.gs; Serial.graph_to_sexp b.gd ]

let env_section b =
  section "env"
    (List.map
       (fun (s, v) -> Sexp.list [ Sexp.atom s; Sexp.atom (string_of_int v) ])
       b.env)

let relations_section b =
  section "relations"
    [
      Sexp.list (Sexp.atom "input" :: relation_entries b.inputs);
      Sexp.list (Sexp.atom "output" :: relation_entries b.outputs);
    ]

let operators_section b =
  section "operators"
    (List.map
       (fun e ->
         Sexp.list
           (Sexp.atom e.op_output :: List.map Serial.expr_to_sexp e.op_mappings))
       b.operators)

let sections b =
  [
    ("graphs", graphs_section b);
    ("env", env_section b);
    ("relations", relations_section b);
    ("operators", operators_section b);
  ]

let id_of ~producer ~stmt ~section_digests =
  Fp.to_hex
    (Fp.strings
       ("entangle-cert" :: string_of_int schema :: producer
       :: (List.map snd (statement_fields stmt)
          @ List.map (fun (n, d) -> n ^ "=" ^ d) section_digests)))

let id b =
  let stmt = statement b in
  let section_digests = List.map (fun (n, sx) -> (n, section_digest sx)) (sections b) in
  id_of ~producer:b.producer ~stmt ~section_digests

let manifest_sexp ~id:bid ~stmt ~section_digests =
  let pair (n, v) = Sexp.list [ Sexp.atom n; Sexp.atom v ] in
  Sexp.list
    [
      Sexp.atom "manifest";
      Sexp.list [ Sexp.atom "id"; Sexp.atom bid ];
      Sexp.list (Sexp.atom "statement" :: List.map pair (statement_fields stmt));
      Sexp.list (Sexp.atom "sections" :: List.map pair section_digests);
    ]

let to_sexp b =
  let stmt = statement b in
  let secs = sections b in
  let section_digests = List.map (fun (n, sx) -> (n, section_digest sx)) secs in
  let bid = id_of ~producer:b.producer ~stmt ~section_digests in
  Sexp.list
    (Sexp.atom "entangle-cert"
    :: Sexp.list [ Sexp.atom "schema"; Sexp.atom (string_of_int schema) ]
    :: Sexp.list [ Sexp.atom "producer"; Sexp.atom b.producer ]
    :: manifest_sexp ~id:bid ~stmt ~section_digests
    :: List.map snd secs)

let to_string b = Sexp.to_string (to_sexp b) ^ "\n"

(* ------------------------------------------------------------------ *)
(* Parsing + integrity: CERT001 framing, CERT002 version, CERT003
   structure, CERT004 section digests, CERT005 statement binding. *)

module E = Cert_error

let ( let* ) = Result.bind

let err code fmt = Fmt.kstr (fun d -> Error (E.make code d)) fmt

let find_field name items =
  List.find_map
    (function
      | Sexp.List (Sexp.Atom n :: rest) when String.equal n name -> Some rest
      | _ -> None)
    items

let atom_field code name items =
  match find_field name items with
  | Some [ Sexp.Atom v ] -> Ok v
  | Some _ -> err code "field %s is not a single atom" name
  | None -> err code "missing field %s" name

let pairs_of code what items =
  List.fold_left
    (fun acc sx ->
      let* acc = acc in
      match sx with
      | Sexp.List [ Sexp.Atom n; Sexp.Atom v ] -> Ok ((n, v) :: acc)
      | _ -> err code "malformed %s entry" what)
    (Ok []) items
  |> Result.map List.rev

type manifest = {
  m_id : string;
  m_statement : (string * string) list;
  m_sections : (string * string) list;
}

let parse_manifest items =
  match find_field "manifest" items with
  | None -> err E.Parse_error "missing manifest"
  | Some fields ->
      let* m_id = atom_field E.Manifest_malformed "id" fields in
      let* stmt =
        match find_field "statement" fields with
        | None -> err E.Manifest_malformed "manifest missing statement"
        | Some ps -> pairs_of E.Manifest_malformed "statement" ps
      in
      let* secs =
        match find_field "sections" fields with
        | None -> err E.Manifest_malformed "manifest missing sections"
        | Some ps -> pairs_of E.Manifest_malformed "sections" ps
      in
      Ok { m_id; m_statement = stmt; m_sections = secs }

(* Expression parsing that distinguishes "unknown leaf" (CERT008) from
   structural damage (CERT003): unresolvable leaves resolve to a fresh
   placeholder tensor and are recorded, so the caller can report scope
   errors with the offending names. *)
let parse_exprs ~gd sexps =
  let missing = ref [] in
  let resolve name =
    match Serial.tensor_by_name gd name with
    | Some t -> Some t
    | None ->
        if not (List.mem name !missing) then missing := name :: !missing;
        Some (Tensor.create ~name Shape.scalar)
  in
  let* es =
    List.fold_left
      (fun acc sx ->
        let* acc = acc in
        match Serial.expr_of_sexp ~resolve sx with
        | Ok e -> Ok (e :: acc)
        | Error m -> err E.Manifest_malformed "bad expression: %s" m)
      (Ok []) sexps
    |> Result.map List.rev
  in
  match !missing with
  | [] -> Ok es
  | names ->
      err E.Leaf_out_of_scope
        "expression leaves not in the distributed graph: %s"
        (String.concat ", " (List.rev names))

let parse_relation ~what ~resolve_target ~gd entries =
  List.fold_left
    (fun acc sx ->
      let* acc = acc in
      match sx with
      | Sexp.List (Sexp.Atom target :: exprs) -> (
          match resolve_target target with
          | None ->
              err E.Leaf_out_of_scope
                "%s entry targets %s, which is not in the sequential graph"
                what target
          | Some t ->
              let* es = parse_exprs ~gd exprs in
              Ok ((t, es) :: acc))
      | _ -> err E.Manifest_malformed "malformed %s entry" what)
    (Ok []) entries
  |> Result.map List.rev

let of_sexp top =
  let* items =
    match top with
    | Sexp.List (Sexp.Atom "entangle-cert" :: items) -> Ok items
    | _ -> err E.Parse_error "not an entangle-cert document"
  in
  let* version = atom_field E.Parse_error "schema" items in
  let* () =
    if String.equal version (string_of_int schema) then Ok ()
    else err E.Version_skew "bundle schema %s, verifier speaks %d" version schema
  in
  let* producer = atom_field E.Parse_error "producer" items in
  let* manifest = parse_manifest items in
  (* Collect sections and check the content digests before trusting
     any byte of them. *)
  let found =
    List.filter_map
      (function
        | Sexp.List (Sexp.Atom "section" :: Sexp.Atom n :: payload) as sx ->
            Some (n, (sx, payload))
        | _ -> None)
      items
  in
  let* () =
    List.fold_left
      (fun acc name ->
        let* () = acc in
        match List.filter (fun (n, _) -> String.equal n name) found with
        | [ _ ] -> Ok ()
        | [] -> err E.Manifest_malformed "missing section %s" name
        | _ -> err E.Manifest_malformed "duplicate section %s" name)
      (Ok ()) section_names
  in
  let* () =
    List.fold_left
      (fun acc name ->
        let* () = acc in
        let sx, _ = List.assoc name found in
        match List.assoc_opt name manifest.m_sections with
        | None -> err E.Manifest_malformed "manifest lists no digest for section %s" name
        | Some claimed ->
            let got = section_digest sx in
            if String.equal claimed got then Ok ()
            else
              err E.Section_corrupt
                "section %s content digest %s does not match manifest %s" name
                got claimed)
      (Ok ()) section_names
  in
  (* Decode sections. *)
  let payload name = snd (List.assoc name found) in
  let* gs, gd =
    match payload "graphs" with
    | [ s; d ] -> (
        match (Serial.graph_of_sexp s, Serial.graph_of_sexp d) with
        | Ok gs, Ok gd -> Ok (gs, gd)
        | Error m, _ -> err E.Manifest_malformed "sequential graph: %s" m
        | _, Error m -> err E.Manifest_malformed "distributed graph: %s" m)
    | _ -> err E.Manifest_malformed "graphs section must carry exactly two graphs"
  in
  let* env =
    let* ps = pairs_of E.Manifest_malformed "env" (payload "env") in
    List.fold_left
      (fun acc (s, v) ->
        let* acc = acc in
        match int_of_string_opt v with
        | Some n -> Ok ((s, n) :: acc)
        | None -> err E.Manifest_malformed "env binding %s=%s is not an integer" s v)
      (Ok []) ps
    |> Result.map List.rev
  in
  let resolve_gs name = Serial.tensor_by_name gs name in
  let* inputs, outputs =
    match (find_field "input" (payload "relations"), find_field "output" (payload "relations")) with
    | Some ins, Some outs ->
        let* inputs =
          parse_relation ~what:"input-relation" ~resolve_target:resolve_gs ~gd ins
        in
        let* outputs =
          parse_relation ~what:"output-relation" ~resolve_target:resolve_gs ~gd outs
        in
        Ok (inputs, outputs)
    | _ -> err E.Manifest_malformed "relations section needs input and output lists"
  in
  let* operators =
    let* entries =
      parse_relation ~what:"operator" ~resolve_target:resolve_gs ~gd
        (payload "operators")
    in
    Ok
      (List.map
         (fun (t, es) -> { op_output = Tensor.name t; op_mappings = es })
         entries)
  in
  let b = { producer; gs; gd; env; inputs; outputs; operators } in
  (* Statement binding: the manifest's fingerprints must match what the
     carried content actually hashes to, else the bundle was rebound. *)
  let stmt = statement b in
  let* () =
    List.fold_left
      (fun acc (name, fp) ->
        let* () = acc in
        match List.assoc_opt name manifest.m_statement with
        | None -> err E.Manifest_malformed "manifest statement misses %s" name
        | Some claimed ->
            if String.equal claimed fp then Ok ()
            else
              err E.Statement_mismatch
                "statement fingerprint %s: recomputed %s, manifest claims %s"
                name fp claimed)
      (Ok ()) (statement_fields stmt)
  in
  let recomputed_id =
    id_of ~producer ~stmt ~section_digests:manifest.m_sections
  in
  let* () =
    if String.equal recomputed_id manifest.m_id then Ok ()
    else
      err E.Statement_mismatch "bundle id recomputed %s, manifest claims %s"
        recomputed_id manifest.m_id
  in
  Ok b

let of_string text =
  match Sexp.of_string text with
  | Error m -> err E.Parse_error "%s" m
  | Ok sx -> of_sexp sx
