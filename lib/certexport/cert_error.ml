type code =
  | Parse_error
  | Version_skew
  | Manifest_malformed
  | Section_corrupt
  | Statement_mismatch
  | Incomplete
  | Unclean
  | Leaf_out_of_scope
  | Shape_mismatch
  | Replay_mismatch

let code_string = function
  | Parse_error -> "CERT001"
  | Version_skew -> "CERT002"
  | Manifest_malformed -> "CERT003"
  | Section_corrupt -> "CERT004"
  | Statement_mismatch -> "CERT005"
  | Incomplete -> "CERT006"
  | Unclean -> "CERT007"
  | Leaf_out_of_scope -> "CERT008"
  | Shape_mismatch -> "CERT009"
  | Replay_mismatch -> "CERT010"

let mnemonic = function
  | Parse_error -> "parse-error"
  | Version_skew -> "version-skew"
  | Manifest_malformed -> "manifest-malformed"
  | Section_corrupt -> "section-corrupt"
  | Statement_mismatch -> "statement-mismatch"
  | Incomplete -> "incomplete"
  | Unclean -> "unclean-expression"
  | Leaf_out_of_scope -> "leaf-out-of-scope"
  | Shape_mismatch -> "shape-mismatch"
  | Replay_mismatch -> "replay-mismatch"

let all_codes =
  [
    Parse_error;
    Version_skew;
    Manifest_malformed;
    Section_corrupt;
    Statement_mismatch;
    Incomplete;
    Unclean;
    Leaf_out_of_scope;
    Shape_mismatch;
    Replay_mismatch;
  ]

type t = { code : code; detail : string }

let make code detail = { code; detail }
let makef code fmt = Fmt.kstr (make code) fmt
let pp ppf e = Fmt.pf ppf "%s (%s): %s" (code_string e.code) (mnemonic e.code) e.detail
let to_string e = Fmt.str "%a" pp e
