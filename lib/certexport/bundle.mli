(** The portable certificate bundle: a self-contained, schema-versioned
    s-expression artifact carrying everything needed to re-check a
    refinement verdict without the producer's process, cache or e-graph.

    {2 Wire grammar}

    {v
    (entangle-cert
      (schema 1)
      (producer STRING)
      (manifest
        (id HEX)                       ; content address of the bundle
        (statement                     ; Merkle fps of what is certified
          (gs HEX) (gd HEX) (env HEX)
          (inputs HEX) (outputs HEX) (operators HEX))
        (sections                      ; content digests of the payload
          (graphs HEX) (env HEX) (relations HEX) (operators HEX)))
      (section graphs <gs> <gd>)       ; Serial graph grammar
      (section env (SYM INT) ...)
      (section relations
        (input  (TENSOR <expr>...) ...)
        (output (TENSOR <expr>...) ...))
      (section operators (TENSOR <expr>...) ...))
    v}

    Section digests are SHA-256 ({!Entangle_fingerprint.Sha256}) over
    the canonical rendering of each [(section ...)] form — any semantic
    byte of a section is covered; re-indenting the file is harmless.
    Statement fingerprints reuse the Merkle discipline of
    {!Entangle_fingerprint.Fingerprint} (also SHA-256), so they are
    invariant under tensor-id renaming but pin names, shapes, dtypes,
    operator attributes and symbolic constraints, and cannot be aliased
    by hash collision. The bundle [id] hashes the schema, producer,
    statement fingerprints and section digests: equal ids mean equal
    certified statements and equal certificate content. *)

open Entangle_ir

val schema : int
(** The bundle format version this library reads and writes. *)

type operator_entry = {
  op_output : string;  (** name of the sequential operator's output *)
  op_mappings : Expr.t list;
      (** the clean mapping expressions found for it, over [gd] tensors *)
}

type t = {
  producer : string;
  gs : Graph.t;  (** the sequential graph *)
  gd : Graph.t;  (** the distributed graph *)
  env : (string * int) list;  (** concrete shape-symbol assignment *)
  inputs : (Tensor.t * Expr.t list) list;
      (** input relation: [gs] inputs → exprs over [gd] inputs *)
  outputs : (Tensor.t * Expr.t list) list;
      (** output relation: [gs] outputs → exprs over [gd] outputs *)
  operators : operator_entry list;
      (** per-operator certificate entries, one per [gs] node *)
}

val make :
  producer:string ->
  gs:Graph.t ->
  gd:Graph.t ->
  env:(string * int) list ->
  inputs:(Tensor.t * Expr.t list) list ->
  outputs:(Tensor.t * Expr.t list) list ->
  operators:operator_entry list ->
  unit ->
  t

type statement = {
  fp_gs : string;
  fp_gd : string;
  fp_env : string;
  fp_inputs : string;
  fp_outputs : string;
  fp_operators : string;
}
(** The Merkle fingerprints binding a bundle to the statement it
    certifies. *)

val statement : t -> statement
val statement_fields : statement -> (string * string) list

val id : t -> string
(** The bundle's content address. *)

val to_sexp : t -> Sexp.t
val to_string : t -> string

val of_sexp : Sexp.t -> (t, Cert_error.t) result

val of_string : string -> (t, Cert_error.t) result
(** Parse and integrity-check a bundle: framing ([CERT001]), version
    ([CERT002]), structure ([CERT003]), per-section content digests
    ([CERT004]) and statement binding ([CERT005]). A bundle returned
    [Ok] is well-formed and self-consistent; it has {e not} yet been
    semantically verified — that is {!Verify.check}. *)
