open Entangle_symbolic
open Entangle_ir
module E = Cert_error

let ( let* ) = Result.bind
let err code fmt = Fmt.kstr (fun d -> Error (E.make code d)) fmt

type report = {
  id : string;
  operators : int;
  outputs_checked : int;
  exprs_replayed : int;
  tol : float;
  seed : int;
}

(* ---------------- static checks (CERT006..CERT009) ---------------- *)

let symbols_of_graph g =
  let add acc d = List.fold_left (fun acc s -> s :: acc) acc (Symdim.symbols d) in
  let of_shape acc sh = List.fold_left add acc sh in
  let acc = List.fold_left (fun acc t -> of_shape acc (Tensor.shape t)) [] (Graph.tensors g) in
  let acc =
    List.fold_left
      (fun acc c ->
        match c with
        | Constraint_store.Ge d | Constraint_store.Eq d -> add acc d)
      acc
      (Constraint_store.constraints (Graph.constraints g))
  in
  List.sort_uniq String.compare acc

let check_env (b : Bundle.t) =
  let bound = List.map fst b.env in
  let missing =
    List.filter
      (fun s -> not (List.mem s bound))
      (List.sort_uniq String.compare (symbols_of_graph b.gs @ symbols_of_graph b.gd))
  in
  match missing with
  | [] -> Ok ()
  | ss -> err E.Incomplete "env leaves shape symbols unbound: %s" (String.concat ", " ss)

let check_coverage what covered required =
  let missing =
    List.filter (fun t -> not (List.exists (Tensor.equal t) covered)) required
  in
  match missing with
  | [] -> Ok ()
  | ts ->
      err E.Incomplete "%s misses %s" what
        (String.concat ", " (List.map Tensor.name ts))

let in_set set t = List.exists (Tensor.equal t) set

let check_exprs ~what ~target ~scope ~scope_name ~constraints es =
  List.fold_left
    (fun acc e ->
      let* () = acc in
      let* () =
        if Expr.is_clean e then Ok ()
        else err E.Unclean "%s: %a is not clean" what Expr.pp e
      in
      let* () =
        match List.filter (fun l -> not (in_set scope l)) (Expr.leaves e) with
        | [] -> Ok ()
        | ls ->
            err E.Leaf_out_of_scope "%s: leaves %s are not %s" what
              (String.concat ", " (List.map Tensor.name ls))
              scope_name
      in
      match Expr.infer_shape constraints e with
      | Error m -> err E.Shape_mismatch "%s: shape inference failed: %s" what m
      | Ok sh ->
          if Shape.equal constraints sh (Tensor.shape target) then Ok ()
          else
            err E.Shape_mismatch "%s: %a has shape %a, expected %a" what Expr.pp
              e Shape.pp sh Shape.pp (Tensor.shape target))
    (Ok ()) es

let check_static (b : Bundle.t) =
  let* () = check_env b in
  let* () =
    check_coverage "input relation" (List.map fst b.inputs) (Graph.inputs b.gs)
  in
  let* () =
    check_coverage "output relation" (List.map fst b.outputs) (Graph.outputs b.gs)
  in
  let node_outputs = List.map Node.output (Graph.nodes b.gs) in
  let covered_ops =
    List.filter_map
      (fun (e : Bundle.operator_entry) -> Serial.tensor_by_name b.gs e.op_output)
      b.operators
  in
  let* () = check_coverage "operator entries" covered_ops node_outputs in
  let* () =
    List.fold_left
      (fun acc (e : Bundle.operator_entry) ->
        let* () = acc in
        if e.op_mappings = [] then
          err E.Incomplete "operator entry %s carries no mapping" e.op_output
        else Ok ())
      (Ok ()) b.operators
  in
  let constraints = Graph.constraints b.gd in
  let gd_inputs = Graph.inputs b.gd
  and gd_outputs = Graph.outputs b.gd
  and gd_tensors = Graph.tensors b.gd in
  let* () =
    List.fold_left
      (fun acc (t, es) ->
        let* () = acc in
        check_exprs
          ~what:(Fmt.str "input relation for %s" (Tensor.name t))
          ~target:t ~scope:gd_inputs ~scope_name:"distributed inputs"
          ~constraints es)
      (Ok ()) b.inputs
  in
  let* () =
    List.fold_left
      (fun acc (t, es) ->
        let* () = acc in
        check_exprs
          ~what:(Fmt.str "output relation for %s" (Tensor.name t))
          ~target:t ~scope:gd_outputs ~scope_name:"distributed outputs"
          ~constraints es)
      (Ok ()) b.outputs
  in
  List.fold_left
    (fun acc (e : Bundle.operator_entry) ->
      let* () = acc in
      match Serial.tensor_by_name b.gs e.op_output with
      | None ->
          err E.Leaf_out_of_scope
            "operator entry %s is not a sequential tensor" e.op_output
      | Some t ->
          check_exprs
            ~what:(Fmt.str "operator entry %s" e.op_output)
            ~target:t ~scope:gd_tensors ~scope_name:"distributed tensors"
            ~constraints e.op_mappings)
    (Ok ()) b.operators

(* ---------------- concrete replay (CERT010) ----------------------- *)

(* Re-implementation of the certification replay over raw bindings:
   union-find over distributed inputs forced equal by replication in
   the input relation, random inputs per group, sequential inputs
   derived by evaluating the input relation, both graphs interpreted,
   every output-relation expression replayed and compared. Kept free of
   lib/core so the verifier stays independent. *)

let replication_groups bindings =
  let parent : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let rec find i =
    match Hashtbl.find_opt parent i with
    | Some p when p <> i ->
        let r = find p in
        Hashtbl.replace parent i r;
        r
    | _ -> i
  in
  let union a b =
    Hashtbl.replace parent (max (find a) (find b)) (min (find a) (find b))
  in
  List.iter
    (fun (_, exprs) ->
      let leaf_only =
        List.filter_map
          (function Expr.Leaf t -> Some (Tensor.id t :> int) | _ -> None)
          exprs
      in
      match leaf_only with
      | first :: rest -> List.iter (union first) rest
      | [] -> ())
    bindings;
  find

let replay ?(tol = 1e-3) ?(seed = 42) ?(max_mismatches = 8) (b : Bundle.t) =
  let env = Interp.env_of_list b.env in
  let st = Random.State.make [| seed |] in
  let canon = replication_groups b.inputs in
  let by_group : (int, Tensor.t * Ndarray.t) Hashtbl.t = Hashtbl.create 16 in
  let* gd_inputs =
    List.fold_left
      (fun acc t ->
        let* acc = acc in
        let key = canon (Tensor.id t :> int) in
        let dims = Shape.concrete (Interp.lookup env) (Tensor.shape t) in
        match Hashtbl.find_opt by_group key with
        | Some (rep, v) ->
            (* [t] and [rep] are forced equal by replication in the
               input relation (possibly transitively, through a chain
               of shared bare leaves); reusing [rep]'s value is only
               sound if they agree on dtype and concrete shape —
               otherwise the bundle's relation equates incompatible
               tensors and must be rejected precisely, not via a
               downstream interpreter crash. *)
            if not (Dtype.equal (Tensor.dtype t) (Tensor.dtype rep)) then
              err E.Shape_mismatch
                "input relation replicates %s and %s, but their dtypes \
                 differ (%a vs %a)"
                (Tensor.name rep) (Tensor.name t) Dtype.pp (Tensor.dtype rep)
                Dtype.pp (Tensor.dtype t)
            else if
              dims <> Shape.concrete (Interp.lookup env) (Tensor.shape rep)
            then
              err E.Shape_mismatch
                "input relation replicates %s and %s, but their shapes \
                 differ (%a vs %a)"
                (Tensor.name rep) (Tensor.name t) Shape.pp (Tensor.shape rep)
                Shape.pp (Tensor.shape t)
            else Ok ((t, v) :: acc)
        | None ->
            let v =
              if Dtype.is_integer (Tensor.dtype t) then
                Ndarray.random_ints st ~hi:8 dims
              else Ndarray.random st dims
            in
            Hashtbl.replace by_group key (t, v);
            Ok ((t, v) :: acc))
      (Ok []) (Graph.inputs b.gd)
  in
  let gd_inputs = List.rev gd_inputs in
  let lookup_gd_input t =
    match List.find_opt (fun (u, _) -> Tensor.equal t u) gd_inputs with
    | Some (_, v) -> v
    | None -> invalid_arg (Fmt.str "%a is not a gd input" Tensor.pp t)
  in
  let* gs_inputs =
    List.fold_left
      (fun acc t ->
        let* acc = acc in
        match List.find_opt (fun (u, _) -> Tensor.equal t u) b.inputs with
        | None | Some (_, []) ->
            err E.Incomplete "input relation misses gs input %s" (Tensor.name t)
        | Some (_, expr :: rest) ->
            let value = Interp.eval_expr env lookup_gd_input expr in
            let consistent =
              List.for_all
                (fun e ->
                  Ndarray.approx_equal ~tol value
                    (Interp.eval_expr env lookup_gd_input e))
                rest
            in
            if not consistent then
              err E.Replay_mismatch
                "input relation mappings for %s are inconsistent"
                (Tensor.name t)
            else Ok ((t, value) :: acc))
      (Ok []) (Graph.inputs b.gs)
  in
  let vs = Interp.run env b.gs ~inputs:gs_inputs in
  let vd = Interp.run env b.gd ~inputs:gd_inputs in
  let lookup_gd t =
    match Tensor.Map.find_opt t vd with
    | Some v -> v
    | None -> invalid_arg (Fmt.str "%a not computed in gd" Tensor.pp t)
  in
  (* Accumulate every failing output expression (bounded), rather than
     stopping at the first. *)
  let mismatches = ref [] in
  let replayed = ref 0 in
  let* () =
    List.fold_left
      (fun acc output ->
        let* () = acc in
        match List.find_opt (fun (u, _) -> Tensor.equal output u) b.outputs with
        | None | Some (_, []) ->
            err E.Incomplete "output relation misses %s" (Tensor.name output)
        | Some (_, exprs) ->
            let expected = Tensor.Map.find output vs in
            List.iter
              (fun expr ->
                if List.length !mismatches < max_mismatches then begin
                  incr replayed;
                  let got = Interp.eval_expr env lookup_gd expr in
                  if not (Ndarray.approx_equal ~tol expected got) then
                    mismatches :=
                      Fmt.str "output %s: replaying %a differs by %g"
                        (Tensor.name output) Expr.pp expr
                        (Ndarray.max_abs_diff expected got)
                      :: !mismatches
                end)
              exprs;
            Ok ())
      (Ok ()) (Graph.outputs b.gs)
  in
  match List.rev !mismatches with
  | [] -> Ok !replayed
  | ms ->
      err E.Replay_mismatch "%d mismatching output expression(s): %s"
        (List.length ms) (String.concat "; " ms)

let check ?(tol = 1e-3) ?(seed = 42) ?(max_mismatches = 8) (b : Bundle.t) =
  let* () = check_static b in
  let* exprs_replayed =
    try replay ~tol ~seed ~max_mismatches b
    with exn ->
      err E.Replay_mismatch "replay raised: %s" (Printexc.to_string exn)
  in
  Ok
    {
      id = Bundle.id b;
      operators = List.length b.operators;
      outputs_checked = List.length (Graph.outputs b.gs);
      exprs_replayed;
      tol;
      seed;
    }

let check_string ?tol ?seed ?max_mismatches text =
  let* b = Bundle.of_string text in
  check ?tol ?seed ?max_mismatches b
