type t = { mutable rev_events : Event.t list; mutable count : int }

let create () = { rev_events = []; count = 0 }

let sink t =
  Sink.make (fun ev ->
      t.rev_events <- ev :: t.rev_events;
      t.count <- t.count + 1)

let events t = List.rev t.rev_events
let length t = t.count

let clear t =
  t.rev_events <- [];
  t.count <- 0
