type row = { label : string; count : int; total_s : float }

type t = {
  operators : row list;
  phases : row list;
  rules : (string * int * int) list;
  bans : (string * int) list;
  iterations : int;
  matches : int;
  unions : int;
  nodes_peak : int;
  classes_peak : int;
  cache_hits : int;
  cache_misses : int;
  cache_replays_failed : int;
}

let bump tbl key count total =
  let c0, t0 =
    Option.value (Hashtbl.find_opt tbl key) ~default:(0, 0.)
  in
  Hashtbl.replace tbl key (c0 + count, t0 +. total)

let rows tbl =
  Hashtbl.fold
    (fun label (count, total_s) acc -> { label; count; total_s } :: acc)
    tbl []
  |> List.sort (fun a b -> compare b.total_s a.total_s)

let of_events events =
  let durations = Hashtbl.create 32 in
  (* Spans are emitted well-nested from a single thread: a stack pairs
     each End with the innermost open Begin. *)
  let stack = ref [] in
  let agg = Agg.create () in
  let agg_sink = Agg.sink agg in
  let rule_matches = Hashtbl.create 64 in
  let ban_counts = Hashtbl.create 16 in
  List.iter
    (fun (ev : Event.t) ->
      Sink.emit agg_sink ev;
      (match ev.phase with
      | Event.Begin -> stack := ev :: !stack
      | Event.End -> (
          match !stack with
          | opening :: rest ->
              stack := rest;
              bump durations (opening.cat, opening.name) 1
                (Float.max 0. (ev.ts -. opening.ts))
          | [] -> ())
      | Event.Counter -> ()
      | Event.Instant -> ());
      if ev.cat = "rule" then
        match Event.arg_str ev "rule" with
        | None -> ()
        | Some rule ->
            if ev.name = "rule-hit" then
              bump rule_matches rule
                (Option.value (Event.arg_int ev "matches") ~default:0)
                0.
            else if ev.name = "rule-ban" then bump ban_counts rule 1 0.)
    events;
  let by_cat cat =
    let tbl = Hashtbl.create 16 in
    Hashtbl.iter
      (fun (c, name) v -> if c = cat then Hashtbl.replace tbl name v)
      durations;
    rows tbl
  in
  let rules =
    List.map
      (fun (rule, hits) ->
        let matches =
          match Hashtbl.find_opt rule_matches rule with
          | Some (m, _) -> m
          | None -> 0
        in
        (rule, hits, matches))
      (Agg.rule_hits agg)
    |> List.sort (fun (_, a, _) (_, b, _) -> compare b a)
  in
  let bans =
    Hashtbl.fold (fun rule (count, _) acc -> (rule, count) :: acc) ban_counts []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  {
    operators = by_cat "operator";
    phases = by_cat "phase";
    rules;
    bans;
    iterations = Agg.iterations agg;
    matches = Agg.matches agg;
    unions = Agg.unions agg;
    nodes_peak = Agg.nodes_peak agg;
    classes_peak = Agg.classes_peak agg;
    cache_hits = Agg.cache_hits agg;
    cache_misses = Agg.cache_misses agg;
    cache_replays_failed = Agg.cache_replays_failed agg;
  }

let pp_rows ppf rows =
  List.iter
    (fun r ->
      Fmt.pf ppf "  %-32s %6d %12.4f s@." r.label r.count r.total_s)
    rows

let pp ppf t =
  Fmt.pf ppf "Profile: %d iterations, %d matches, %d unions, peak e-graph \
              %d nodes / %d classes@."
    t.iterations t.matches t.unions t.nodes_peak t.classes_peak;
  (let lookups = t.cache_hits + t.cache_misses + t.cache_replays_failed in
   if lookups > 0 then
     Fmt.pf ppf
       "Cache: %d hits / %d misses / %d replay failures (%.0f%% hit rate)@."
       t.cache_hits t.cache_misses t.cache_replays_failed
       (100. *. float_of_int t.cache_hits /. float_of_int lookups));
  if t.operators <> [] then begin
    Fmt.pf ppf "@.Per-operator time:@.";
    Fmt.pf ppf "  %-32s %6s %14s@." "operator" "count" "total";
    pp_rows ppf t.operators
  end;
  if t.phases <> [] then begin
    Fmt.pf ppf "@.Per-phase time:@.";
    Fmt.pf ppf "  %-32s %6s %14s@." "phase" "count" "total";
    pp_rows ppf t.phases
  end;
  if t.rules <> [] then begin
    Fmt.pf ppf "@.Per-rule applications:@.";
    Fmt.pf ppf "  %-32s %8s %10s@." "rule" "unions" "matches";
    List.iter
      (fun (rule, hits, matches) ->
        Fmt.pf ppf "  %-32s %8d %10d@." rule hits matches)
      t.rules
  end;
  if t.bans <> [] then begin
    Fmt.pf ppf "@.Backoff bans:@.";
    List.iter (fun (rule, n) -> Fmt.pf ppf "  %-32s %8d@." rule n) t.bans
  end
