(** Profile summaries: the [--profile] table.

    Folds a collected event list into per-operator and per-rule
    aggregates — where the wall time went (operator spans and their
    frontier/saturate/extract phases) and which lemmas did the work
    (rule-hit instants, the paper's Figure 6 data). *)

type row = { label : string; count : int; total_s : float }

type t = {
  operators : row list;
      (** per operator-span name (the op name), most expensive first *)
  phases : row list;  (** frontier/load, saturate, extract *)
  rules : (string * int * int) list;
      (** rule name, unions applied, matches examined; most-applied
          first *)
  bans : (string * int) list;  (** backoff bans per rule *)
  iterations : int;
  matches : int;
  unions : int;
  nodes_peak : int;
  classes_peak : int;
  cache_hits : int;  (** operators served from the certificate cache *)
  cache_misses : int;
  cache_replays_failed : int;
}

val of_events : Event.t list -> t
val pp : t Fmt.t
