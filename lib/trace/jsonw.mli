(** A minimal JSON writer and the shared schema envelope.

    The project's machine-readable outputs ([lint --json],
    [cache stats --json], the serve protocol's [describe] reply, the
    bench result files) used to each hand-roll their own printf JSON.
    This writer gives them one escaping-correct serializer and one
    envelope convention: every document is an object whose first field
    is ["schema"], valued ["entangle/<name>/<n>"], so consumers can
    dispatch on (and version-check) the shape before reading anything
    else. Bump [<n>] on any incompatible field change.

    The dual of {!Json} (the reader): [Json.parse (to_string v)]
    succeeds for every [v] that contains no {!Raw} fragment, and for
    [Raw] fragments that are themselves valid JSON. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list
  | Raw of string
      (** spliced verbatim — for embedding JSON rendered elsewhere
          (e.g. {!Entangle_analysis.Diagnostic.report_to_json}) without
          reparsing it *)

val to_string : t -> string
(** Compact (single-line) rendering; strings are escaped per RFC 8259.
    Non-finite floats render as [null]. *)

val schema : name:string -> version:int -> string
(** ["entangle/<name>/<version>"]. *)

val envelope : name:string -> version:int -> (string * t) list -> string
(** [to_string (Obj (("schema", Str (schema ~name ~version)) :: fields))]
    — the shared document shape. *)
