(** In-memory collecting sink.

    Buffers every event in emission order; the basis of [--profile]
    summaries ({!Profile.of_events}) and of the golden trace tests. *)

type t

val create : unit -> t
val sink : t -> Sink.t
val events : t -> Event.t list  (** in emission order *)

val length : t -> int
val clear : t -> unit
