(** Trace sinks: where events go.

    A sink is the single extension point of the diagnostics API — the
    checker and the saturation runner emit {!Event.t}s into whatever
    sink the configuration carries, and never know whether that is
    {!null}, an in-memory {!Collect}or, a streaming {!Chrome} writer or
    a user's own {!make}.

    {b Zero-overhead no-op}: {!null} is [enabled = false], and every
    emission helper returns immediately without building the event.
    Hot call sites additionally guard with [if Sink.enabled sink then
    ...] so argument lists are never allocated either — with the no-op
    sink the instrumented hot path costs one load and one branch (the
    property the [counters] micro-benchmark in [bench/] verifies). *)

type t

val null : t
(** Discards everything; [enabled null = false]. *)

val make : ?flush:(unit -> unit) -> (Event.t -> unit) -> t
(** An enabled sink from an event consumer. *)

val enabled : t -> bool
(** Guard for hot call sites: when [false], skip building args. *)

val emit : t -> Event.t -> unit
(** Emit a pre-built event (no-op on a disabled sink). *)

val span_begin :
  t -> ?args:(string * Event.value) list -> cat:string -> string -> unit

val span_end :
  t -> ?args:(string * Event.value) list -> cat:string -> string -> unit

val counter : t -> args:(string * Event.value) list -> cat:string -> string -> unit
val instant : t -> ?args:(string * Event.value) list -> cat:string -> string -> unit

val span : t -> cat:string -> string -> (unit -> 'a) -> 'a
(** [span sink ~cat name f] brackets [f ()] in a begin/end pair (ended
    even when [f] raises). On a disabled sink this is exactly [f ()]. *)

val tee : t -> t -> t
(** Duplicate events into both sinks. Disabled operands short-circuit:
    [tee null s] is [s] itself, so a tee costs nothing when only one
    side is live. *)

val flush : t -> unit
