type t = {
  oc : out_channel;
  t0 : float;
  mutable count : int;
  mutable closed : bool;
}

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let value_to_json = function
  | Event.Int i -> string_of_int i
  | Event.Float f -> Printf.sprintf "%g" f
  | Event.Str s -> Printf.sprintf "\"%s\"" (escape s)
  | Event.Bool b -> if b then "true" else "false"

let args_to_json = function
  | [] -> ""
  | args ->
      let fields =
        List.map
          (fun (k, v) -> Printf.sprintf "\"%s\": %s" (escape k) (value_to_json v))
          args
      in
      Printf.sprintf ", \"args\": {%s}" (String.concat ", " fields)

(* Microseconds relative to [t0]: what the viewers expect in [ts]. *)
let event_to_json ~t0 (ev : Event.t) =
  let ts = int_of_float (Float.max 0. (ev.ts -. t0) *. 1e6) in
  let scope =
    match ev.phase with Event.Instant -> ", \"s\": \"t\"" | _ -> ""
  in
  Printf.sprintf
    "{\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"%s\", \"ts\": %d, \
     \"pid\": 1, \"tid\": %d%s%s}"
    (escape ev.name) (escape ev.cat)
    (Event.phase_letter ev.phase)
    ts ev.tid scope (args_to_json ev.args)

let create oc =
  output_string oc "[";
  { oc; t0 = Unix.gettimeofday (); count = 0; closed = false }

let write t ev =
  if not t.closed then begin
    if t.count > 0 then output_string t.oc ",";
    output_string t.oc "\n";
    output_string t.oc (event_to_json ~t0:t.t0 ev);
    t.count <- t.count + 1
  end

let sink t = Sink.make ~flush:(fun () -> flush t.oc) (write t)

let close t =
  if not t.closed then begin
    output_string t.oc "\n]\n";
    flush t.oc;
    t.closed <- true
  end

let event_count t = t.count

let to_string events =
  let t0 =
    match events with [] -> 0. | ev :: _ -> (ev : Event.t).ts
  in
  let b = Buffer.create 4096 in
  Buffer.add_string b "[";
  List.iteri
    (fun i ev ->
      if i > 0 then Buffer.add_string b ",";
      Buffer.add_string b "\n";
      Buffer.add_string b (event_to_json ~t0 ev))
    events;
  Buffer.add_string b "\n]\n";
  Buffer.contents b

let required_phases = [ "B"; "E"; "C"; "i" ]
let required_cats = [ "operator"; "phase"; "iteration"; "rule"; "egraph" ]

let validate text =
  let ( let* ) = Result.bind in
  let* json = Json.parse text in
  let* events =
    match json with
    | Json.Arr events -> Ok events
    | _ -> Error "top-level value is not an array"
  in
  let seen_phases = Hashtbl.create 8 and seen_cats = Hashtbl.create 8 in
  let depth = ref 0 and min_depth_ok = ref true in
  let* () =
    List.fold_left
      (fun acc ev ->
        let* () = acc in
        let str key =
          match Json.member key ev with
          | Some (Json.Str s) -> Ok s
          | _ -> Error (Printf.sprintf "event missing string %S" key)
        in
        let* _name = str "name" in
        let* cat = str "cat" in
        let* ph = str "ph" in
        let* () =
          match Json.member "ts" ev with
          | Some (Json.Num _) -> Ok ()
          | _ -> Error "event missing numeric \"ts\""
        in
        Hashtbl.replace seen_phases ph ();
        Hashtbl.replace seen_cats cat ();
        (match ph with
        | "B" -> incr depth
        | "E" ->
            decr depth;
            if !depth < 0 then min_depth_ok := false
        | _ -> ());
        Ok ())
      (Ok ()) events
  in
  let* () =
    if (not !min_depth_ok) || !depth <> 0 then
      Error "span begins and ends do not balance"
    else Ok ()
  in
  let missing required seen =
    List.filter (fun k -> not (Hashtbl.mem seen k)) required
  in
  match (missing required_phases seen_phases, missing required_cats seen_cats) with
  | [], [] -> Ok (List.length events)
  | ph, [] -> Error ("missing phases: " ^ String.concat ", " ph)
  | _, cats -> Error ("missing categories: " ^ String.concat ", " cats)
