(** Streaming Chrome trace-event sink.

    Writes the JSON-array flavor of the Chrome trace-event format:
    one object per {!Event.t} with [name], [cat], [ph] ([B]/[E]/[C]/[i]),
    [ts] (microseconds relative to the sink's creation), [pid], [tid]
    and [args]. The resulting file loads directly into
    [chrome://tracing] or {{:https://ui.perfetto.dev}Perfetto}.

    Events stream to the channel as they are emitted — nothing is
    buffered beyond the [out_channel] — so a trace of a run that dies
    mid-way is still loadable after {!close} is skipped (both viewers
    tolerate a missing closing bracket). *)

type t

val create : out_channel -> t
(** Writes the opening bracket immediately. The channel stays owned by
    the caller; {!close} finishes the JSON but does not close it. *)

val sink : t -> Sink.t
(** [Sink.flush] flushes the underlying channel. *)

val close : t -> unit
(** Write the closing bracket and flush. Idempotent. Events emitted
    after [close] are dropped. *)

val event_count : t -> int

val to_string : Event.t list -> string
(** Render an already-collected event list as a complete trace
    document, timestamps rebased to the first event. The pure
    counterpart of the streaming sink ([--profile]'s collector and the
    bench harness reuse it). *)

val validate : string -> (int, string) result
(** Check that a string is a loadable trace: parses as a JSON array of
    objects, each carrying a string [name]/[cat]/[ph] and a numeric
    [ts]; that span begins and ends balance; and that the phases [B],
    [E], [C], [i] and the categories ["operator"], ["phase"],
    ["iteration"], ["rule"] and ["egraph"] all occur (the event kinds a
    full checker run must produce). Returns the event count. The
    [@trace-smoke] build alias runs this over a freshly emitted
    trace. *)
