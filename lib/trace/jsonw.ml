type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list
  | Raw of string

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let rec write b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f ->
      if Float.is_finite f then
        (* %.17g is read back exactly; trim the common integral case. *)
        Buffer.add_string b
          (if Float.is_integer f && Float.abs f < 1e15 then
             Printf.sprintf "%.1f" f
           else Printf.sprintf "%.17g" f)
      else Buffer.add_string b "null"
  | Str s ->
      Buffer.add_char b '"';
      Buffer.add_string b (escape s);
      Buffer.add_char b '"'
  | Raw s -> Buffer.add_string b s
  | Arr items ->
      Buffer.add_char b '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_string b ", ";
          write b item)
        items;
      Buffer.add_char b ']'
  | Obj fields ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string b ", ";
          write b (Str k);
          Buffer.add_string b ": ";
          write b v)
        fields;
      Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 256 in
  write b v;
  Buffer.contents b

let schema ~name ~version = Printf.sprintf "entangle/%s/%d" name version

let envelope ~name ~version fields =
  to_string (Obj (("schema", Str (schema ~name ~version)) :: fields))
