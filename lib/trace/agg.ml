type t = {
  mutable operators : int;
  mutable iterations : int;
  mutable matches : int;
  mutable unions : int;
  mutable nodes_peak : int;
  mutable classes_peak : int;
  mutable retries : int;
  mutable budget_trips : int;
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable cache_replays_failed : int;
  hits : (string, int) Hashtbl.t;
}

let create () =
  {
    operators = 0;
    iterations = 0;
    matches = 0;
    unions = 0;
    nodes_peak = 0;
    classes_peak = 0;
    retries = 0;
    budget_trips = 0;
    cache_hits = 0;
    cache_misses = 0;
    cache_replays_failed = 0;
    hits = Hashtbl.create 64;
  }

let arg ev key = Option.value (Event.arg_int ev key) ~default:0

let fold t (ev : Event.t) =
  match (ev.phase, ev.cat) with
  | Event.End, "operator" ->
      if Event.arg_bool ev "processed" = Some true then
        t.operators <- t.operators + 1
  | Event.End, "iteration" ->
      t.iterations <- t.iterations + 1;
      t.matches <- t.matches + arg ev "matches";
      t.unions <- t.unions + arg ev "unions"
  | Event.Counter, "egraph" ->
      t.nodes_peak <- max t.nodes_peak (arg ev "nodes");
      t.classes_peak <- max t.classes_peak (arg ev "classes")
  | Event.End, "retry" -> t.retries <- t.retries + 1
  | Event.Instant, "budget" when ev.name = "budget-trip" ->
      t.budget_trips <- t.budget_trips + 1
  | Event.Instant, "cache" -> (
      match ev.name with
      | "cache-hit" -> t.cache_hits <- t.cache_hits + 1
      | "cache-miss" -> t.cache_misses <- t.cache_misses + 1
      | "cache-replay-failed" ->
          t.cache_replays_failed <- t.cache_replays_failed + 1
      | _ -> ())
  | Event.Instant, "rule" when ev.name = "rule-hit" -> (
      match Event.arg_str ev "rule" with
      | None -> ()
      | Some rule ->
          let prev = Option.value (Hashtbl.find_opt t.hits rule) ~default:0 in
          Hashtbl.replace t.hits rule (prev + arg ev "hits"))
  | _ -> ()

let sink t = Sink.make (fold t)
let operators t = t.operators
let iterations t = t.iterations
let matches t = t.matches
let unions t = t.unions
let nodes_peak t = t.nodes_peak
let classes_peak t = t.classes_peak
let retries t = t.retries
let budget_trips t = t.budget_trips
let cache_hits t = t.cache_hits
let cache_misses t = t.cache_misses
let cache_replays_failed t = t.cache_replays_failed

let rule_hits t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.hits []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
