(* Counters are atomic and the rule-hit table mutex-guarded so one
   aggregator can be teed behind sinks on several domains at once (the
   parallel checker folds per-worker event chunks through the shared
   aggregator at commit time). *)
type t = {
  operators : int Atomic.t;
  iterations : int Atomic.t;
  matches : int Atomic.t;
  unions : int Atomic.t;
  nodes_peak : int Atomic.t;
  classes_peak : int Atomic.t;
  retries : int Atomic.t;
  budget_trips : int Atomic.t;
  cache_hits : int Atomic.t;
  cache_misses : int Atomic.t;
  cache_replays_failed : int Atomic.t;
  hits : (string, int) Hashtbl.t;
  hits_lock : Mutex.t;
}

let create () =
  {
    operators = Atomic.make 0;
    iterations = Atomic.make 0;
    matches = Atomic.make 0;
    unions = Atomic.make 0;
    nodes_peak = Atomic.make 0;
    classes_peak = Atomic.make 0;
    retries = Atomic.make 0;
    budget_trips = Atomic.make 0;
    cache_hits = Atomic.make 0;
    cache_misses = Atomic.make 0;
    cache_replays_failed = Atomic.make 0;
    hits = Hashtbl.create 64;
    hits_lock = Mutex.create ();
  }

let arg ev key = Option.value (Event.arg_int ev key) ~default:0
let add a n = ignore (Atomic.fetch_and_add a n)

let rec update_max a v =
  let cur = Atomic.get a in
  if v > cur && not (Atomic.compare_and_set a cur v) then update_max a v

let fold t (ev : Event.t) =
  match (ev.phase, ev.cat) with
  | Event.End, "operator" ->
      if Event.arg_bool ev "processed" = Some true then Atomic.incr t.operators
  | Event.End, "iteration" ->
      Atomic.incr t.iterations;
      add t.matches (arg ev "matches");
      add t.unions (arg ev "unions")
  | Event.Counter, "egraph" ->
      update_max t.nodes_peak (arg ev "nodes");
      update_max t.classes_peak (arg ev "classes")
  | Event.End, "retry" -> Atomic.incr t.retries
  | Event.Instant, "budget" when ev.name = "budget-trip" ->
      Atomic.incr t.budget_trips
  | Event.Instant, "cache" -> (
      match ev.name with
      | "cache-hit" -> Atomic.incr t.cache_hits
      | "cache-miss" -> Atomic.incr t.cache_misses
      | "cache-replay-failed" -> Atomic.incr t.cache_replays_failed
      | _ -> ())
  | Event.Instant, "rule" when ev.name = "rule-hit" -> (
      match Event.arg_str ev "rule" with
      | None -> ()
      | Some rule ->
          Mutex.lock t.hits_lock;
          let prev = Option.value (Hashtbl.find_opt t.hits rule) ~default:0 in
          Hashtbl.replace t.hits rule (prev + arg ev "hits");
          Mutex.unlock t.hits_lock)
  | _ -> ()

let sink t = Sink.make (fold t)
let operators t = Atomic.get t.operators
let iterations t = Atomic.get t.iterations
let matches t = Atomic.get t.matches
let unions t = Atomic.get t.unions
let nodes_peak t = Atomic.get t.nodes_peak
let classes_peak t = Atomic.get t.classes_peak
let retries t = Atomic.get t.retries
let budget_trips t = Atomic.get t.budget_trips
let cache_hits t = Atomic.get t.cache_hits
let cache_misses t = Atomic.get t.cache_misses
let cache_replays_failed t = Atomic.get t.cache_replays_failed

let rule_hits t =
  Mutex.lock t.hits_lock;
  let items = Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.hits [] in
  Mutex.unlock t.hits_lock;
  List.sort (fun (a, _) (b, _) -> String.compare a b) items
