type value = Int of int | Float of float | Str of string | Bool of bool
type phase = Begin | End | Counter | Instant

type t = {
  name : string;
  cat : string;
  phase : phase;
  ts : float;
  tid : int;
  args : (string * value) list;
}

(* Domain ids start at 0 for the initial domain; Chrome viewers (and
   the pre-parallelism golden traces) expect track 1, so shift by one.
   Worker domains get 2, 3, ... — distinct tracks per domain. *)
let current_tid () = (Domain.self () :> int) + 1

let phase_letter = function
  | Begin -> "B"
  | End -> "E"
  | Counter -> "C"
  | Instant -> "i"

let arg_int t key =
  match List.assoc_opt key t.args with Some (Int i) -> Some i | _ -> None

let arg_str t key =
  match List.assoc_opt key t.args with Some (Str s) -> Some s | _ -> None

let arg_bool t key =
  match List.assoc_opt key t.args with Some (Bool b) -> Some b | _ -> None

let pp_value ppf = function
  | Int i -> Fmt.int ppf i
  | Float f -> Fmt.pf ppf "%g" f
  | Str s -> Fmt.string ppf s
  | Bool b -> Fmt.bool ppf b

let pp ppf t =
  Fmt.pf ppf "%s %s %s" (phase_letter t.phase) t.cat t.name;
  List.iter (fun (k, v) -> Fmt.pf ppf " %s=%a" k pp_value v) t.args
