type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Fail of int * string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Fail (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail ("expected " ^ word)
  in
  let string_body () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some '"' -> Buffer.add_char b '"'; advance (); go ()
          | Some '\\' -> Buffer.add_char b '\\'; advance (); go ()
          | Some '/' -> Buffer.add_char b '/'; advance (); go ()
          | Some 'n' -> Buffer.add_char b '\n'; advance (); go ()
          | Some 't' -> Buffer.add_char b '\t'; advance (); go ()
          | Some 'r' -> Buffer.add_char b '\r'; advance (); go ()
          | Some 'b' -> Buffer.add_char b '\b'; advance (); go ()
          | Some 'f' -> Buffer.add_char b '\012'; advance (); go ()
          | _ -> fail "unsupported escape")
      | Some c ->
          Buffer.add_char b c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents b
  in
  let number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    match float_of_string_opt text with
    | Some f -> f
    | None -> fail ("bad number " ^ text)
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let key = string_body () in
            skip_ws ();
            expect ':';
            let v = value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((key, v) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((key, v) :: acc)
            | _ -> fail "expected , or } in object"
          in
          Obj (members [])
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let rec elements acc =
            let v = value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected , or ] in array"
          in
          Arr (elements [])
        end
    | Some '"' -> Str (string_body ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (number ())
  in
  match
    let v = value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Fail (at, msg) -> Error (Printf.sprintf "%s at byte %d" msg at)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None
