type t = {
  enabled : bool;
  send : Event.t -> unit;
  flush_fn : unit -> unit;
}

let null = { enabled = false; send = ignore; flush_fn = ignore }
let make ?(flush = ignore) send = { enabled = true; send; flush_fn = flush }
let enabled t = t.enabled
let emit t ev = if t.enabled then t.send ev
let now () = Unix.gettimeofday ()

let event name cat phase args =
  { Event.name; cat; phase; ts = now (); tid = Event.current_tid (); args }

let span_begin t ?(args = []) ~cat name =
  if t.enabled then t.send (event name cat Event.Begin args)

let span_end t ?(args = []) ~cat name =
  if t.enabled then t.send (event name cat Event.End args)

let counter t ~args ~cat name =
  if t.enabled then t.send (event name cat Event.Counter args)

let instant t ?(args = []) ~cat name =
  if t.enabled then t.send (event name cat Event.Instant args)

let span t ~cat name f =
  if not t.enabled then f ()
  else begin
    span_begin t ~cat name;
    match f () with
    | r ->
        span_end t ~cat name;
        r
    | exception e ->
        span_end t ~cat name;
        raise e
  end

let tee a b =
  if not a.enabled then b
  else if not b.enabled then a
  else
    {
      enabled = true;
      send =
        (fun ev ->
          a.send ev;
          b.send ev);
      flush_fn =
        (fun () ->
          a.flush_fn ();
          b.flush_fn ());
    }

let flush t = t.flush_fn ()
