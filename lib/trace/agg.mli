(** Aggregate-counters sink: the fold that derives checker statistics
    from the event stream.

    [Refine.check] installs one of these (teed with the user's sink)
    and builds its [stats] record from it, so the statistics and any
    collected trace are projections of the {e same} events and can
    never disagree. The aggregator stores a handful of mutable
    counters, not the events themselves, so it stays cheap even on
    long runs. *)

type t

val create : unit -> t

val sink : t -> Sink.t
(** Folds the {!Event} vocabulary: ["operator"] span ends with
    [processed=true] bump {!operators}; ["iteration"] span ends bump
    {!iterations} and accumulate their [matches]/[unions] args;
    ["egraph"] counter samples update the peaks; ["rule-hit"] instants
    accumulate per-rule hit counts; ["retry"] span ends bump
    {!retries}; ["budget-trip"] instants bump {!budget_trips}. *)

val operators : t -> int
val iterations : t -> int
val matches : t -> int
val unions : t -> int
val nodes_peak : t -> int
val classes_peak : t -> int

val retries : t -> int
(** escalation retry spans completed *)

val budget_trips : t -> int
(** per-operator saturation loops stopped by an exhausted budget *)

val cache_hits : t -> int
(** ["cache-hit"] instants: operators served from the certificate
    cache instead of searched *)

val cache_misses : t -> int
(** ["cache-miss"] instants: operators searched because no cache entry
    existed *)

val cache_replays_failed : t -> int
(** ["cache-replay-failed"] instants: entries found but rejected by
    certificate replay validation (then searched afresh) *)

val rule_hits : t -> (string * int) list
(** Sorted by rule name. *)
