(** A minimal JSON reader.

    The project deliberately carries no JSON dependency; this parser
    exists so the [@trace-smoke] gate and the tests can validate that
    emitted traces actually parse, without trusting the writer that
    produced them. It accepts standard JSON (RFC 8259) minus the
    [\uXXXX] escapes the trace writer never emits. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result
(** Error messages carry the offending byte offset. *)

val member : string -> t -> t option
(** [member key (Obj ...)] — [None] on missing keys and non-objects. *)
