(** The trace event model.

    Every diagnostic the checker can report flows through one event
    stream: spans (begin/end pairs), counter samples and instants. The
    vocabulary is deliberately small and stable — golden tests pin the
    kinds and their ordering — and maps 1:1 onto the Chrome trace-event
    format ({!Chrome}), so a trace loads directly into [chrome://tracing]
    or Perfetto.

    {2 Event vocabulary}

    Categories ([cat]) and the events emitted under each:

    - ["operator"] — one span per sequential operator processed by
      [Refine.check] (the topological step). [name] is the operator's
      op name; begin args carry [output] (the produced tensor) and
      [index] (topological position); end args carry [processed] (false
      when the relation query itself was malformed) and [mappings].
    - ["phase"] — sub-spans of an operator span: ["frontier"] (related
      subgraph growth, Listing 3) or ["load"] (whole-graph loading when
      the frontier optimization is off), ["saturate"] (end args:
      [rounds]), ["extract"] (end args: [mappings], [output_mappings]).
    - ["frontier"] — instant ["frontier-wave"] per growth wave with
      args [wave], [loaded], [t_rel].
    - ["iteration"] — one span per saturation-runner iteration. End
      args: [matches], [unions], [rules_searched], [full_searches],
      [delta_searches], [truncated], [banned], [deferred], [new_bans]
      and [cooldown] (whether a cool-down pass ran inside this
      iteration). Instant ["cooldown"] marks the cool-down itself.
    - ["rule"] — instant ["rule-hit"] whenever a rule application
      merged classes (args [rule], [hits], [matches]): the replacement
      for the old [?hit_counter] side channel. Instant ["rule-ban"]
      when the backoff scheduler bans a rule (args [rule],
      [banned_until], [matches], [threshold]).
    - ["egraph"] — counter ["egraph"] sampling e-graph growth (args
      [nodes], [classes]); emitted once per runner iteration and once
      per operator after saturation. *)

type value = Int of int | Float of float | Str of string | Bool of bool

type phase =
  | Begin  (** span open — Chrome ["B"] *)
  | End  (** span close — Chrome ["E"] *)
  | Counter  (** counter sample — Chrome ["C"] *)
  | Instant  (** point event — Chrome ["i"] *)

type t = {
  name : string;
  cat : string;
  phase : phase;
  ts : float;  (** seconds since the epoch ([Unix.gettimeofday]) *)
  tid : int;
      (** emitting track: [1] on the initial domain (so single-domain
          streams are unchanged), [domain id + 1] on worker domains —
          parallel per-operator spans land on separate Perfetto tracks *)
  args : (string * value) list;
}

val current_tid : unit -> int
(** The track id {!Sink} stamps on events emitted from the calling
    domain: the domain id shifted so the initial domain is [1]. *)

val phase_letter : phase -> string
(** The Chrome trace-event [ph] field: ["B"], ["E"], ["C"] or ["i"]. *)

val arg_int : t -> string -> int option
val arg_str : t -> string -> string option
val arg_bool : t -> string -> bool option

val pp : t Fmt.t
(** Timestamp-free rendering ([B operator matmul output=C index=0]),
    suitable for golden tests: the volatile [ts] field is scrubbed. *)
