open Entangle_symbolic
open Entangle_ir

type t = string

let equal = String.equal
let compare = String.compare
let to_hex fp = fp
let of_hex fp = if String.length fp = 64 then Some fp else None
let pp = Fmt.string

(* Length-prefixed framing so ["ab";"c"] and ["a";"bc"] cannot
   collide, then one SHA-256 over the frame. Fingerprints are the
   content-addressing scheme of exported certificate bundles — ids
   that cross a trust boundary — so the digest must be
   collision-resistant, not merely a checksum (MD5 would let two
   crafted statements share a fingerprint and a bundle id). *)
let digest tag parts =
  let b = Buffer.create 64 in
  Buffer.add_string b tag;
  List.iter
    (fun p ->
      Buffer.add_char b '/';
      Buffer.add_string b (string_of_int (String.length p));
      Buffer.add_char b ':';
      Buffer.add_string b p)
    parts;
  Sha256.hex (Buffer.contents b)

let strings parts = digest "s" parts

type env = (int, string) Hashtbl.t

let leaf_fp t =
  digest "t"
    [
      Tensor.name t;
      Shape.to_string (Tensor.shape t);
      Dtype.to_string (Tensor.dtype t);
    ]

let tensor env t =
  match Hashtbl.find_opt env (Tensor.id t :> int) with
  | Some fp -> fp
  | None -> leaf_fp t

let node env n =
  let out = Node.output n in
  digest "n"
    (Op.key (Node.op n)
    :: (List.map (tensor env) (Node.inputs n)
       @ [
           Tensor.name out;
           Shape.to_string (Tensor.shape out);
           Dtype.to_string (Tensor.dtype out);
         ]))

let graph_env g =
  let env = Hashtbl.create 64 in
  List.iter
    (fun t -> Hashtbl.replace env (Tensor.id t :> int) (leaf_fp t))
    (Graph.inputs g);
  List.iter
    (fun n ->
      Hashtbl.replace env (Tensor.id (Node.output n) :> int) (node env n))
    (Graph.nodes g);
  env

let rec expr env = function
  | Expr.Leaf t -> tensor env t
  | Expr.App (op, args) -> digest "e" (Op.key op :: List.map (expr env) args)

let exprs env es = digest "es" (List.sort String.compare (List.map (expr env) es))

let constraints store =
  let render = function
    | Constraint_store.Ge d -> "ge " ^ Symdim.to_string d
    | Constraint_store.Eq d -> "eq " ^ Symdim.to_string d
  in
  digest "c"
    (List.sort String.compare
       (List.map render (Constraint_store.constraints store)))

let graph g =
  let env = graph_env g in
  let sorted fps = List.sort String.compare fps in
  digest "g"
    (constraints (Graph.constraints g)
    :: (sorted (List.map (tensor env) (Graph.inputs g))
       @ ("|" :: sorted (List.map (tensor env) (Graph.outputs g)))
       @ ("|" :: sorted (List.map (node env) (Graph.nodes g)))))
