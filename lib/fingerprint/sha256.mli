(** FIPS 180-4 SHA-256, pure OCaml.

    The toolchain's only built-in hash ([Stdlib.Digest]) is MD5, which
    is collision-broken: two different byte strings can be crafted to
    share a digest, so MD5 cannot back a content-addressing scheme
    whose identities cross a trust boundary (exported certificate
    bundles are precisely that). This module provides the
    collision-resistant digest the fingerprint layer hashes with,
    without adding an external dependency. *)

val hex : string -> string
(** [hex msg] is the SHA-256 digest of [msg] rendered as 64 lowercase
    hex characters. *)
