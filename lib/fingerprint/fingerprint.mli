(** Canonical content fingerprints over IR graphs.

    A fingerprint is a Merkle-style hash: a tensor produced by a node
    hashes the operator (with its attributes, via {!Op.key}), the
    fingerprints of the node's input tensors, and the output's name,
    symbolic shape and dtype. Graph-input tensors hash their name,
    shape and dtype. Node and tensor {e identifiers} never enter a
    fingerprint — ids are process-global counters, so fingerprints are
    stable across builds and invariant under node-id renaming, which is
    what makes them usable as persistent cache keys and as the
    content-addressing scheme of exported certificate bundles.

    Two tensors with equal fingerprints compute equal values from
    equally-named graph inputs; renaming an intermediate changes its
    fingerprint (conservative: a rename invalidates rather than
    aliases, since cached certificates resolve leaves by name).

    This library deliberately has no dependency on [entangle_egraph]:
    it hashes only IR-level statements, so the independent minimal
    verifier ({!module:Entangle_certexport}) can bind bundles to
    statements without linking the saturation engine. The rule-corpus
    fingerprint, which must inspect patterns, lives in
    [Entangle_cache.Fingerprint.rules]. *)

open Entangle_symbolic
open Entangle_ir

type t
(** A fingerprint: a fixed-width hex digest (SHA-256, via {!Sha256},
    so equal fingerprints cannot be forged by hash collision). *)

val equal : t -> t -> bool
val compare : t -> t -> int
val to_hex : t -> string

val of_hex : string -> t option
(** Re-admit a digest previously rendered with {!to_hex}; [None] if the
    string is not the right width. *)

val pp : t Fmt.t

val strings : string list -> t
(** Hash an ordered list of strings (with unambiguous framing). *)

type env
(** Per-graph memo mapping each tensor of the graph to its Merkle
    fingerprint. *)

val graph_env : Graph.t -> env
(** Fingerprint every tensor of the graph: inputs as leaves, node
    outputs from their defining node. Nodes are visited in list order,
    which {!Graph.Builder} guarantees is topological. *)

val tensor : env -> Tensor.t -> t
(** The memoized fingerprint; a tensor outside the environment's graph
    (e.g. an opaque placeholder) gets a leaf-style fingerprint from its
    name, shape and dtype. *)

val node : env -> Node.t -> t
(** [H(Op.key, input fingerprints, output name/shape/dtype)] — equals
    [tensor env (Node.output n)] when [n] belongs to the environment's
    graph. *)

val expr : env -> Expr.t -> t
(** Structural hash of an expression; leaves via {!tensor}. *)

val exprs : env -> Expr.t list -> t
(** Order-independent (sorted) hash of a mapping set. *)

val graph : Graph.t -> t
(** Whole-graph fingerprint: constraints plus the sorted input, output
    and node fingerprints — invariant under node-id renaming and node
    reordering. *)

val constraints : Constraint_store.t -> t
(** Order-independent hash of the symbolic constraint store. *)
