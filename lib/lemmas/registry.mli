(** The lemma registry: the full corpus with stable identifiers, plus
    per-model lemma sets mirroring the paper's setup (the base corpus
    covers ATen; vLLM and HLO models add their operator lemmas). *)

open Entangle_egraph

type model_family = Gpt | Llama | Qwen2 | Bytedance | Regression

val all : Lemma.t list
(** The full corpus, in stable order; a lemma's position is its id on
    the Figure 6 x-axis. *)

val find : string -> Lemma.t option
val id_of : string -> int option
(** Index of a lemma name in {!all}. *)

val duplicates : string list
(** Lemma names that appeared more than once when concatenating the
    corpora (one entry per dropped copy). {!all} keeps only the first
    occurrence of each name, so [find] and [id_of] are unambiguous; a
    non-empty list here is reported by [entangle_cli lint]. *)

val for_model : model_family -> Lemma.t list
(** ATen corpus plus any vLLM / HLO lemmas the model family needs. *)

val rules_for_model : model_family -> Rule.t list
val family_name : model_family -> string
val family_of_string : string -> model_family option
