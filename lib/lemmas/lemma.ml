open Entangle_symbolic
open Entangle_ir
open Entangle_egraph

type klass = Clean | Aten | Vllm | Hlo

type refine_ctx = {
  op_of : string -> Op.t option;
  shape_of : string -> Shape.t option;
}

type hint =
  | Paired
  | Uniform_chunks
  | Replicated
  | Contraction
  | Same_shape of string list list
  | Vector_aux of string list
  | Matrix_aux of string list
  | Table_aux of string list
  | Integer_vars of string list
  | Broadcast_vars of string list
  | Rows
  | Concrete_last of int
  | Refine of (refine_ctx -> Constraint_store.t -> Constraint_store.t)

type t = {
  name : string;
  klass : klass;
  loc : int;
  complexity : int;
  conditioned : bool;
  hints : hint list;
  rules : Rule.t list;
}

let derived_complexity rules =
  match
    List.find_map
      (fun (r : Rule.t) ->
        match r.applier with
        | Rule.Syntactic rhs -> Some (Pattern.size r.lhs + Pattern.size rhs)
        | Rule.Conditional _ -> None)
      rules
  with
  | Some c -> c
  | None -> (
      match rules with
      | r :: _ -> Pattern.size r.lhs + 2
      | [] -> 0)

let derived_loc rules =
  List.fold_left
    (fun acc (r : Rule.t) ->
      acc
      + match r.applier with Rule.Syntactic _ -> 2 | Rule.Conditional _ -> 12)
    0 rules

let make ?(klass = Aten) ?loc ?complexity ?conditioned ?(hints = []) name rules
    =
  let rules = List.map (fun (r : Rule.t) -> { r with Rule.name }) rules in
  let conditioned =
    match conditioned with
    | Some c -> c
    | None ->
        List.exists
          (fun (r : Rule.t) ->
            match r.applier with
            | Rule.Conditional _ -> true
            | Rule.Syntactic _ -> false)
          rules
  in
  {
    name;
    klass;
    loc = (match loc with Some l -> l | None -> derived_loc rules);
    complexity =
      (match complexity with
      | Some c -> c
      | None -> derived_complexity rules);
    conditioned;
    hints;
    rules;
  }

let rules lemmas = List.concat_map (fun l -> l.rules) lemmas

let klass_letter = function
  | Clean -> "c"
  | Aten -> "a"
  | Vllm -> "v"
  | Hlo -> "h"

let pp ppf l =
  Fmt.pf ppf "%s [%s] (%d rules, complexity %d, %d loc)" l.name
    (klass_letter l.klass) (List.length l.rules) l.complexity l.loc
