open Entangle_symbolic
open Entangle_ir
open Entangle_egraph
open Helpers

let lo, hi = collective_arities

(* Row dimension of a matrix of the given rank (batch dims lead). *)
let row_dim rank = rank - 2
let col_dim rank = rank - 1

(* --- matmul block lemmas --------------------------------------------- *)

(* matmul(concat(x_i, rows), y) = concat(matmul(x_i, y), rows). *)
let matmul_row_split =
  let gen n =
    Rule.rewrite_to "matmul-row-split"
      (p Op.Matmul [ fam "concat" ~bind:"cc" (vars n); v "y" ])
      (fun g _root subst ->
        let* cd = concat_dim (Subst.op subst "cc") in
        let* rank = rank_of_var g subst "x0" in
        let* () = guard (cd = row_dim rank) in
        Some
          (p
             (Op.Concat { dim = cd })
             (List.map (fun x -> p Op.Matmul [ x; v "y" ]) (vars n))))
  and gen_rev n =
    Rule.rewrite_to ~constrained:true "matmul-row-split"
      (fam "concat" ~bind:"cc"
         (List.map (fun x -> p Op.Matmul [ x; v "y" ]) (vars n)))
      (fun g _root subst ->
        let* cd = concat_dim (Subst.op subst "cc") in
        let* rank = rank_of_var g subst "x0" in
        let* () = guard (cd = row_dim rank) in
        Some (p Op.Matmul [ p (Op.Concat { dim = cd }) (vars n); v "y" ]))
  in
  Lemma.make ~complexity:4 "matmul-row-split"
    (for_arities lo hi gen @ for_arities lo hi gen_rev)

(* matmul(x, concat(y_i, cols)) = concat(matmul(x, y_i), cols). *)
let matmul_col_split =
  let gen n =
    Rule.rewrite_to "matmul-col-split"
      (p Op.Matmul [ v "x"; fam "concat" ~bind:"cc" (vars_y n) ])
      (fun g _root subst ->
        let* cd = concat_dim (Subst.op subst "cc") in
        let* rank_y = rank_of_var g subst "y0" in
        let* () = guard (cd = col_dim rank_y) in
        let* rank_x = rank_of_var g subst "x" in
        let out_dim = max rank_x rank_y - 1 in
        Some
          (p
             (Op.Concat { dim = out_dim })
             (List.map (fun y -> p Op.Matmul [ v "x"; y ]) (vars_y n))))
  and gen_rev n =
    Rule.rewrite_to ~constrained:true "matmul-col-split"
      (fam "concat" ~bind:"cc"
         (List.map (fun y -> p Op.Matmul [ v "x"; y ]) (vars_y n)))
      (fun g _root subst ->
        let* cd = concat_dim (Subst.op subst "cc") in
        let* rank_y = rank_of_var g subst "y0" in
        let* rank_x = rank_of_var g subst "x" in
        let* () = guard (cd = max rank_x rank_y - 1) in
        Some
          (p Op.Matmul
             [ v "x"; p (Op.Concat { dim = col_dim rank_y }) (vars_y n) ]))
  in
  Lemma.make ~complexity:4 "matmul-col-split"
    (for_arities lo hi gen @ for_arities lo hi gen_rev)

(* matmul(concat(x_i, cols), concat(y_i, rows)) = sum(matmul(x_i, y_i)):
   the block inner-product lemma behind row-parallel linear layers. *)
let matmul_contraction_split =
  let gen n =
    let xs = vars n and ys = vars_y n in
    Rule.rewrite_to "matmul-contraction-split"
      (p Op.Matmul
         [ fam "concat" ~bind:"ccx" xs; fam "concat" ~bind:"ccy" ys ])
      (fun g _root subst ->
        let* cdx = concat_dim (Subst.op subst "ccx") in
        let* cdy = concat_dim (Subst.op subst "ccy") in
        let* rank_x = rank_of_var g subst "x0" in
        let* rank_y = rank_of_var g subst "y0" in
        let* () = guard (cdx = col_dim rank_x && cdy = row_dim rank_y) in
        (* Chunk sizes must agree pairwise for the blocks to multiply. *)
        let rec chunks_ok i =
          if i = n then Some ()
          else
            let* kx = dim_of_var g subst (Printf.sprintf "x%d" i) cdx in
            let* ky = dim_of_var g subst (Printf.sprintf "y%d" i) cdy in
            let* () = guard (deq g kx ky) in
            chunks_ok (i + 1)
        in
        let* () = chunks_ok 0 in
        Some (p Op.Sum_n (List.map2 (fun x y -> p Op.Matmul [ x; y ]) xs ys)))
  in
  Lemma.make ~complexity:5 ~hints:[ Lemma.Contraction ] "matmul-contraction-split"
    (for_arities lo hi gen)

(* transpose(matmul(x, y)) = matmul(transpose(y), transpose(x)), rank 2. *)
let matmul_transpose =
  let tr = Op.Transpose { dim0 = 0; dim1 = 1 } in
  Lemma.make "matmul-transpose"
    [
      Rule.rewrite_to "matmul-transpose"
        (fam "transpose" ~bind:"tr" [ p Op.Matmul [ v "x"; v "y" ] ])
        (fun g _root subst ->
          let* d0, d1 = transpose_dims (Subst.op subst "tr") in
          let* rank = rank_of_var g subst "x" in
          let* () = guard (rank = 2 && ((d0 = 0 && d1 = 1) || (d0 = 1 && d1 = 0))) in
          Some (p Op.Matmul [ p tr [ v "y" ]; p tr [ v "x" ] ]));
    ]

(* --- scale algebra ---------------------------------------------------- *)

let scale_merge =
  Lemma.make "scale-merge"
    [
      Rule.rewrite_to "scale-merge"
        (fam "scale" ~bind:"s1" [ fam "scale" ~bind:"s2" [ v "x" ] ])
        (fun _g _root subst ->
          let* a = scale_factor (Subst.op subst "s1") in
          let* b = scale_factor (Subst.op subst "s2") in
          Some (p (Op.Scale (Rat.mul a b)) [ v "x" ]));
    ]

let scale_one =
  Lemma.make "scale-one"
    [
      Rule.rewrite_to "scale-one"
        (fam "scale" ~bind:"s" [ v "x" ])
        (fun _g _root subst ->
          let* r = scale_factor (Subst.op subst "s") in
          let* () = guard (Rat.equal r Rat.one) in
          Some (v "x"));
    ]

(* scale(k, sum(x_i)) = sum(scale(k, x_i)), both directions. *)
let scale_sum_distribute =
  let gen n =
    Rule.rewrite_to "scale-sum-distribute"
      (fam "scale" ~bind:"s" [ p Op.Sum_n (vars n) ])
      (fun _g _root subst ->
        let* r = scale_factor (Subst.op subst "s") in
        Some
          (p Op.Sum_n (List.map (fun x -> p (Op.Scale r) [ x ]) (vars n))))
  and gen_rev n =
    Rule.rewrite_to ~constrained:true "scale-sum-distribute"
      (p Op.Sum_n (List.map (fun x -> fam "scale" ~bind:"s" [ x ]) (vars n)))
      (fun _g _root subst ->
        let* r = scale_factor (Subst.op subst "s") in
        Some (p (Op.Scale r) [ p Op.Sum_n (vars n) ]))
  in
  Lemma.make ~complexity:3 "scale-sum-distribute"
    (for_arities lo hi gen @ for_arities lo hi gen_rev)

(* matmul(scale(k, x), y) = scale(k, matmul(x, y)) and symmetrically. *)
let scale_matmul =
  Lemma.make "scale-matmul"
    [
      Rule.rewrite_to "scale-matmul"
        (p Op.Matmul [ fam "scale" ~bind:"s" [ v "x" ]; v "y" ])
        (fun _g _root subst ->
          let* r = scale_factor (Subst.op subst "s") in
          Some (p (Op.Scale r) [ p Op.Matmul [ v "x"; v "y" ] ]));
      Rule.rewrite_to "scale-matmul"
        (p Op.Matmul [ v "x"; fam "scale" ~bind:"s" [ v "y" ] ])
        (fun _g _root subst ->
          let* r = scale_factor (Subst.op subst "s") in
          Some (p (Op.Scale r) [ p Op.Matmul [ v "x"; v "y" ] ]));
      Rule.rewrite_to "scale-matmul"
        (fam "scale" ~bind:"s" [ p Op.Matmul [ v "x"; v "y" ] ])
        (fun _g _root subst ->
          let* r = scale_factor (Subst.op subst "s") in
          Some (p Op.Matmul [ p (Op.Scale r) [ v "x" ]; v "y" ]));
    ]

(* --- sum algebra ------------------------------------------------------ *)

let add_is_sum =
  Lemma.make "add-is-sum"
    [
      Rule.make "add-is-sum" (p Op.Add [ v "a"; v "b" ]) (p Op.Sum_n [ v "a"; v "b" ]);
      Rule.make "add-is-sum" (p Op.Sum_n [ v "a"; v "b" ]) (p Op.Add [ v "a"; v "b" ]);
    ]

let sub_is_add_neg =
  Lemma.make "sub-is-add-neg"
    [
      Rule.make "sub-is-add-neg"
        (p Op.Sub [ v "a"; v "b" ])
        (p Op.Add [ v "a"; p (Op.Scale Rat.minus_one) [ v "b" ] ]);
    ]

let neg_is_scale =
  Lemma.make "neg-is-scale"
    [
      Rule.make "neg-is-scale" (p Op.Neg [ v "x" ])
        (p (Op.Scale Rat.minus_one) [ v "x" ]);
      Rule.make "neg-is-scale"
        (p (Op.Scale Rat.minus_one) [ v "x" ])
        (p Op.Neg [ v "x" ]);
    ]

(* sum(sum(g1), sum(g2), ...) = sum(g1 @ g2 @ ...): flattening nested
   per-rank partial sums into the sequential model's single sum. *)
let sum_flatten =
  let gen (outer, inner) =
    let groups =
      List.init outer (fun i ->
          List.init inner (fun j -> v (Printf.sprintf "x%d_%d" i j)))
    in
    Rule.make "sum-flatten"
      (p Op.Sum_n (List.map (fun grp -> p Op.Sum_n grp) groups))
      (p Op.Sum_n (List.concat groups))
  in
  let instances =
    List.concat_map
      (fun outer -> List.map (fun inner -> (outer, inner)) [ 2; 3; 4 ])
      [ 2; 3; 4 ]
    |> List.filter (fun (outer, inner) -> outer * inner <= 8)
  in
  Lemma.make ~complexity:3 "sum-flatten" (List.map gen instances)

(* sum with one nested sum among plain terms. *)
let sum_assoc =
  let gen n =
    [
      Rule.make "sum-assoc"
        (p Op.Sum_n (p Op.Sum_n [ v "a"; v "b" ] :: vars n))
        (p Op.Sum_n (v "a" :: v "b" :: vars n));
      Rule.make "sum-assoc"
        (p Op.Sum_n (vars n @ [ p Op.Sum_n [ v "a"; v "b" ] ]))
        (p Op.Sum_n (vars n @ [ v "a"; v "b" ]));
    ]
  in
  Lemma.make ~complexity:2 "sum-assoc" (List.concat_map gen [ 1; 2; 3 ])

(* sum(x0..x(n-1)) -> sum of contiguous sub-sums, constrained in the
   sense of section 4.3.2: the sub-sums must already exist as e-nodes
   (the per-rank partial sums a distributed graph materialized before a
   collective). Mirrors concat-group. *)
let sum_group =
  let sub_sum_exists g subst group =
    match group with
    | [ _ ] -> true
    | _ ->
        let ids =
          List.map
            (fun x ->
              match x with
              | Pattern.V name -> Subst.var subst name
              | _ -> assert false)
            group
        in
        Option.is_some (Egraph.lookup g (Enode.op Op.Sum_n ids))
  in
  let gen (n, groups) =
    Rule.rewrite_to ~nonlocal:true "sum-group"
      (p Op.Sum_n (vars n))
      (fun g _root subst ->
        let per = n / groups in
        let xs = Array.of_list (vars n) in
        let group i = List.init per (fun j -> xs.((i * per) + j)) in
        let all_groups = List.init groups group in
        let ( let* ) = Option.bind in
        let* () =
          if List.for_all (sub_sum_exists g subst) all_groups then Some ()
          else None
        in
        Some
          (p Op.Sum_n (List.map (fun grp -> p Op.Sum_n grp) all_groups)))
  in
  let instances =
    List.concat_map
      (fun n ->
        List.filter_map
          (fun g -> if n mod g = 0 && g > 1 && g < n then Some (n, g) else None)
          [ 2; 3; 4 ])
      [ 4; 6; 8 ]
  in
  Lemma.make ~complexity:3 "sum-group" (List.map gen instances)

(* sum(x, x, ..., x) = scale(n, x): replicated contributions. *)
let sum_of_replicas =
  let gen n =
    Rule.make_dyn "sum-of-replicas"
      (p Op.Sum_n (vars n))
      (fun g root subst ->
        let first = Egraph.find g (Subst.var subst "x0") in
        let all_equal =
          List.for_all
            (fun i ->
              Id.equal (Egraph.find g (Subst.var subst (Printf.sprintf "x%d" i))) first)
            (List.init n Fun.id)
        in
        if all_equal then
          [ (Pattern.c root, p (Op.Scale (Rat.of_int n)) [ v "x0" ]) ]
        else [])
  in
  Lemma.make ~complexity:2 ~hints:[ Lemma.Replicated ] "sum-of-replicas"
    (for_arities lo hi gen)

let lemmas =
  [
    matmul_row_split;
    matmul_col_split;
    matmul_contraction_split;
    matmul_transpose;
    scale_merge;
    scale_one;
    scale_sum_distribute;
    scale_matmul;
    add_is_sum;
    sub_is_add_neg;
    neg_is_scale;
    sum_flatten;
    sum_assoc;
    sum_group;
    sum_of_replicas;
  ]
