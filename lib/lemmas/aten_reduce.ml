open Entangle_symbolic
open Entangle_ir
open Entangle_egraph
open Helpers

let lo, hi = collective_arities

let reduce_attrs = function
  | Op.Reduce_sum { dim; keepdim }
  | Op.Reduce_mean { dim; keepdim }
  | Op.Reduce_max { dim; keepdim } ->
      Some (dim, keepdim)
  | _ -> None

(* Concat axis as seen after a reduction removed [rdim]. *)
let adjust_axis ~rdim ~keepdim dim =
  if keepdim || dim < rdim then dim else dim - 1

(* reduce(concat(x_i, d), d') with d' <> d: the reduction maps over the
   chunks and the concat axis shifts if the reduced axis is dropped. *)
let reduce_concat_offaxis family =
  let gen n =
    Rule.rewrite_to (family ^ "-concat-offaxis")
      (fam family ~bind:"rd" [ fam "concat" ~bind:"cc" (vars n) ])
      (fun _g _root subst ->
        let op = Subst.op subst "rd" in
        let* rdim, keepdim = reduce_attrs op in
        let* cdim = concat_dim (Subst.op subst "cc") in
        let* () = guard (rdim <> cdim) in
        let out_dim = adjust_axis ~rdim ~keepdim cdim in
        Some
          (p
             (Op.Concat { dim = out_dim })
             (List.map (fun x -> p op [ x ]) (vars n))))
  in
  Lemma.make ~complexity:3 (family ^ "-concat-offaxis") (for_arities lo hi gen)

(* reduce_sum(concat(x_i, d), d) = sum(reduce_sum(x_i, d)). *)
let reduce_sum_concat_onaxis =
  let gen n =
    Rule.rewrite_to "reduce-sum-concat-onaxis"
      (fam "reduce_sum" ~bind:"rd" [ fam "concat" ~bind:"cc" (vars n) ])
      (fun _g _root subst ->
        let op = Subst.op subst "rd" in
        let* rdim, _ = reduce_attrs op in
        let* cdim = concat_dim (Subst.op subst "cc") in
        let* () = guard (rdim = cdim) in
        Some (p Op.Sum_n (List.map (fun x -> p op [ x ]) (vars n))))
  in
  Lemma.make ~complexity:3 "reduce-sum-concat-onaxis" (for_arities lo hi gen)

(* reduce_max(concat(x_i, d), d) = maximum of the chunk maxima. *)
let reduce_max_concat_onaxis =
  let gen n =
    Rule.rewrite_to "reduce-max-concat-onaxis"
      (fam "reduce_max" ~bind:"rd" [ fam "concat" ~bind:"cc" (vars n) ])
      (fun _g _root subst ->
        let op = Subst.op subst "rd" in
        let* rdim, _ = reduce_attrs op in
        let* cdim = concat_dim (Subst.op subst "cc") in
        let* () = guard (rdim = cdim) in
        let maxima = List.map (fun x -> p op [ x ]) (vars n) in
        let rec fold = function
          | [ one ] -> one
          | a :: rest -> p Op.Maximum [ a; fold rest ]
          | [] -> assert false
        in
        Some (fold maxima))
  in
  Lemma.make ~complexity:4 "reduce-max-concat-onaxis" (for_arities lo hi gen)

(* reduce_mean(concat(x_i, d), d) over provably equal chunks is the
   average of the chunk means. *)
let reduce_mean_concat_onaxis =
  let gen n =
    Rule.rewrite_to "reduce-mean-concat-onaxis"
      (fam "reduce_mean" ~bind:"rd" [ fam "concat" ~bind:"cc" (vars n) ])
      (fun g _root subst ->
        let op = Subst.op subst "rd" in
        let* rdim, _ = reduce_attrs op in
        let* cdim = concat_dim (Subst.op subst "cc") in
        let* () = guard (rdim = cdim) in
        let* first = dim_of_var g subst "x0" cdim in
        let rec equal_chunks i =
          if i = n then Some ()
          else
            let* size = dim_of_var g subst (Printf.sprintf "x%d" i) cdim in
            let* () = guard (deq g size first) in
            equal_chunks (i + 1)
        in
        let* () = equal_chunks 1 in
        Some
          (p
             (Op.Scale (Rat.make 1 n))
             [ p Op.Sum_n (List.map (fun x -> p op [ x ]) (vars n)) ]))
  in
  Lemma.make ~complexity:4 ~hints:[ Lemma.Uniform_chunks ]
    "reduce-mean-concat-onaxis" (for_arities lo hi gen)

(* slice(reduce(x, rd), d) = reduce(slice(x, d'), rd) when the sliced
   axis is not the reduced one. *)
let reduce_slice_commute family =
  Lemma.make ~complexity:2 (family ^ "-slice")
    [
      Rule.rewrite_to ~constrained:true (family ^ "-slice")
        (fam "slice" ~bind:"sl" [ fam family ~bind:"rd" [ v "x" ] ])
        (fun _g _root subst ->
          let op = Subst.op subst "rd" in
          let* rdim, keepdim = reduce_attrs op in
          let* sdim, start, stop = slice_attrs (Subst.op subst "sl") in
          (* Axis of x corresponding to the sliced output axis. *)
          let xdim = if keepdim || sdim < rdim then sdim else sdim + 1 in
          let* () = guard (xdim <> rdim) in
          Some (p op [ p (Op.Slice { dim = xdim; start; stop }) [ v "x" ] ]));
    ]

let lemmas =
  [
    reduce_concat_offaxis "reduce_sum";
    reduce_concat_offaxis "reduce_mean";
    reduce_concat_offaxis "reduce_max";
    reduce_sum_concat_onaxis;
    reduce_max_concat_onaxis;
    reduce_mean_concat_onaxis;
    reduce_slice_commute "reduce_sum";
    reduce_slice_commute "reduce_mean";
  ]
