type model_family = Gpt | Llama | Qwen2 | Bytedance | Regression

(* Concatenating corpora must tolerate a lemma name appearing in more
   than one file (e.g. a dialect corpus re-shipping an ATen lemma):
   [find]/[id_of] would silently resolve to whichever copy came first
   while saturation ran both. Deduplicate on name, keeping the first
   occurrence, and remember what was dropped so the lint pass can report
   it. *)
let dedup lemmas =
  let seen = Hashtbl.create 64 in
  let dropped = ref [] in
  let kept =
    List.filter
      (fun (l : Lemma.t) ->
        if Hashtbl.mem seen l.name then begin
          dropped := l.name :: !dropped;
          false
        end
        else begin
          Hashtbl.replace seen l.name ();
          true
        end)
      lemmas
  in
  (kept, List.rev !dropped)

let aten_raw =
  Aten_rearrange.lemmas @ Aten_linalg.lemmas @ Aten_ewise.lemmas
  @ Aten_reduce.lemmas @ Aten_nn.lemmas @ Collective.lemmas

let all_raw = aten_raw @ Vllm.lemmas @ Hlo.lemmas
let aten = fst (dedup aten_raw)
let all, duplicates = dedup all_raw

let find name = List.find_opt (fun (l : Lemma.t) -> String.equal l.name name) all

let id_of name =
  let rec go i = function
    | [] -> None
    | (l : Lemma.t) :: rest ->
        if String.equal l.name name then Some i else go (i + 1) rest
  in
  go 0 all

let for_model family =
  fst
    (dedup
       (match family with
       | Gpt | Bytedance | Regression -> aten
       | Qwen2 -> aten @ Vllm.lemmas
       | Llama -> aten @ Hlo.lemmas))

let rules_for_model family = Lemma.rules (for_model family)

let family_name = function
  | Gpt -> "GPT"
  | Llama -> "Llama-3"
  | Qwen2 -> "Qwen2"
  | Bytedance -> "ByteDance"
  | Regression -> "Regression"

let family_of_string s =
  match String.lowercase_ascii s with
  | "gpt" -> Some Gpt
  | "llama" | "llama-3" | "llama3" -> Some Llama
  | "qwen2" | "qwen" -> Some Qwen2
  | "bytedance" -> Some Bytedance
  | "regression" -> Some Regression
  | _ -> None
