open Entangle_symbolic
open Entangle_ir
open Entangle_egraph
open Helpers

let lo, hi = collective_arities

let unary_ops : (string * Op.t) list =
  [
    ("neg", Op.Neg);
    ("exp", Op.Exp);
    ("log", Op.Log);
    ("sqrt", Op.Sqrt);
    ("rsqrt", Op.Rsqrt);
    ("relu", Op.Relu);
    ("gelu", Op.Gelu);
    ("silu", Op.Silu);
    ("tanh", Op.Tanh);
    ("sigmoid", Op.Sigmoid);
    ("square", Op.Square);
  ]

let binary_ops : (string * Op.t) list =
  [
    ("add", Op.Add);
    ("sub", Op.Sub);
    ("mul", Op.Mul);
    ("div", Op.Div);
    ("maximum", Op.Maximum);
    ("pow", Op.Pow);
  ]

(* f(concat(x_i, d)) = concat(f(x_i), d), both directions. *)
let unary_concat (name, op) =
  let gen n =
    Rule.rewrite_to (name ^ "-concat")
      (p op [ fam "concat" ~bind:"cc" (vars n) ])
      (fun _g _root subst ->
        let* dim = concat_dim (Subst.op subst "cc") in
        Some
          (p (Op.Concat { dim }) (List.map (fun x -> p op [ x ]) (vars n))))
  and gen_rev n =
    Rule.rewrite_to ~constrained:true (name ^ "-concat")
      (fam "concat" ~bind:"cc" (List.map (fun x -> p op [ x ]) (vars n)))
      (fun _g _root subst ->
        let* dim = concat_dim (Subst.op subst "cc") in
        Some (p op [ p (Op.Concat { dim }) (vars n) ]))
  in
  Lemma.make ~complexity:3 (name ^ "-concat")
    (for_arities lo hi gen @ for_arities lo hi gen_rev)

(* slice(f(x)) = f(slice(x)), both directions. *)
let unary_slice (name, op) =
  Lemma.make ~complexity:2 (name ^ "-slice")
    [
      Rule.rewrite_to ~constrained:true (name ^ "-slice")
        (fam "slice" ~bind:"sl" [ p op [ v "x" ] ])
        (fun _g _root subst ->
          let* dim, start, stop = slice_attrs (Subst.op subst "sl") in
          Some (p op [ p (Op.Slice { dim; start; stop }) [ v "x" ] ]));
      Rule.rewrite_to (name ^ "-slice")
        (p op [ fam "slice" ~bind:"sl" [ v "x" ] ])
        (fun _g _root subst ->
          let* dim, start, stop = slice_attrs (Subst.op subst "sl") in
          Some (p (Op.Slice { dim; start; stop }) [ p op [ v "x" ] ]));
    ]

(* The same two commutations for [scale], whose factor is an attribute. *)
let scale_concat =
  let gen n =
    Rule.rewrite_to "scale-concat"
      (fam "scale" ~bind:"s" [ fam "concat" ~bind:"cc" (vars n) ])
      (fun _g _root subst ->
        let* dim = concat_dim (Subst.op subst "cc") in
        let* r = scale_factor (Subst.op subst "s") in
        Some
          (p (Op.Concat { dim })
             (List.map (fun x -> p (Op.Scale r) [ x ]) (vars n))))
  and gen_rev n =
    Rule.rewrite_to ~constrained:true "scale-concat"
      (fam "concat" ~bind:"cc"
         (List.map (fun x -> fam "scale" ~bind:"s" [ x ]) (vars n)))
      (fun _g _root subst ->
        let* dim = concat_dim (Subst.op subst "cc") in
        let* r = scale_factor (Subst.op subst "s") in
        Some (p (Op.Scale r) [ p (Op.Concat { dim }) (vars n) ]))
  in
  Lemma.make ~complexity:3 "scale-concat"
    (for_arities lo hi gen @ for_arities lo hi gen_rev)

let scale_slice =
  Lemma.make ~complexity:2 "scale-slice"
    [
      Rule.rewrite_to ~constrained:true "scale-slice"
        (fam "slice" ~bind:"sl" [ fam "scale" ~bind:"s" [ v "x" ] ])
        (fun _g _root subst ->
          let* dim, start, stop = slice_attrs (Subst.op subst "sl") in
          let* r = scale_factor (Subst.op subst "s") in
          Some
            (p (Op.Scale r) [ p (Op.Slice { dim; start; stop }) [ v "x" ] ]));
      Rule.rewrite_to "scale-slice"
        (fam "scale" ~bind:"s" [ fam "slice" ~bind:"sl" [ v "x" ] ])
        (fun _g _root subst ->
          let* dim, start, stop = slice_attrs (Subst.op subst "sl") in
          let* r = scale_factor (Subst.op subst "s") in
          Some
            (p (Op.Slice { dim; start; stop }) [ p (Op.Scale r) [ v "x" ] ]));
    ]

(* Chunk shapes of the two concats must agree pairwise so the binary op
   applies without broadcasting surprises. *)
let chunks_match g subst n =
  let rec go i =
    if i = n then Some ()
    else
      let* sx = shape_of_var g subst (Printf.sprintf "x%d" i) in
      let* sy = shape_of_var g subst (Printf.sprintf "y%d" i) in
      let* () = guard (shapes_equal g sx sy) in
      go (i + 1)
  in
  go 0

(* g(concat(x_i, d), concat(y_i, d)) = concat(g(x_i, y_i), d). *)
let binary_concat (name, op) =
  let gen n =
    let xs = vars n and ys = vars_y n in
    Rule.rewrite_to (name ^ "-concat")
      (p op [ fam "concat" ~bind:"ccx" xs; fam "concat" ~bind:"ccy" ys ])
      (fun g _root subst ->
        let* dx = concat_dim (Subst.op subst "ccx") in
        let* dy = concat_dim (Subst.op subst "ccy") in
        let* () = guard (dx = dy) in
        let* () = chunks_match g subst n in
        Some
          (p (Op.Concat { dim = dx })
             (List.map2 (fun x y -> p op [ x; y ]) xs ys)))
  and gen_rev n =
    let xs = vars n and ys = vars_y n in
    Rule.rewrite_to ~constrained:true (name ^ "-concat")
      (fam "concat" ~bind:"cc" (List.map2 (fun x y -> p op [ x; y ]) xs ys))
      (fun g _root subst ->
        let* dim = concat_dim (Subst.op subst "cc") in
        let* () = chunks_match g subst n in
        Some
          (p op
             [ p (Op.Concat { dim }) xs; p (Op.Concat { dim }) ys ]))
  in
  Lemma.make ~complexity:4 (name ^ "-concat")
    (for_arities lo hi gen @ for_arities lo hi gen_rev)

(* g(concat(x_i, d), y) = concat(g(x_i, y), d) when y does not vary
   along d: y's aligned dimension is 1 or absent (broadcast). *)
let broadcast_invariant g subst yvar dim rank_x =
  let* sy = shape_of_var g subst yvar in
  let ry = Shape.rank sy in
  let aligned = dim - (rank_x - ry) in
  if aligned < 0 then Some () (* axis broadcast away entirely *)
  else
    let dy = Shape.dim sy aligned in
    guard (deq g dy Symdim.one)

let binary_concat_broadcast (name, op) =
  let gen_left n =
    Rule.rewrite_to (name ^ "-concat-broadcast")
      (p op [ fam "concat" ~bind:"cc" (vars n); v "y" ])
      (fun g _root subst ->
        let* dim = concat_dim (Subst.op subst "cc") in
        let* rank_x = rank_of_var g subst "x0" in
        let* () = broadcast_invariant g subst "y" dim rank_x in
        Some
          (p (Op.Concat { dim })
             (List.map (fun x -> p op [ x; v "y" ]) (vars n))))
  and gen_right n =
    Rule.rewrite_to (name ^ "-concat-broadcast")
      (p op [ v "y"; fam "concat" ~bind:"cc" (vars n) ])
      (fun g _root subst ->
        let* dim = concat_dim (Subst.op subst "cc") in
        let* rank_x = rank_of_var g subst "x0" in
        let* () = broadcast_invariant g subst "y" dim rank_x in
        Some
          (p (Op.Concat { dim })
             (List.map (fun x -> p op [ v "y"; x ]) (vars n))))
  in
  Lemma.make ~complexity:3
    ~hints:[ Lemma.Broadcast_vars [ "y" ] ]
    (name ^ "-concat-broadcast")
    (for_arities lo hi gen_left @ for_arities lo hi gen_right)

(* slice(g(x, y)) = g(slice(x), slice(y)) for equal-shape operands. *)
let binary_slice (name, op) =
  Lemma.make ~complexity:3 (name ^ "-slice")
    [
      Rule.rewrite_to ~constrained:true (name ^ "-slice")
        (fam "slice" ~bind:"sl" [ p op [ v "x"; v "y" ] ])
        (fun g _root subst ->
          let* dim, start, stop = slice_attrs (Subst.op subst "sl") in
          let* sx = shape_of_var g subst "x" in
          let* sy = shape_of_var g subst "y" in
          let* () = guard (shapes_equal g sx sy) in
          let sl = Op.Slice { dim; start; stop } in
          Some (p op [ p sl [ v "x" ]; p sl [ v "y" ] ]));
      Rule.rewrite_to (name ^ "-slice")
        (p op
           [ fam "slice" ~bind:"slx" [ v "x" ]; fam "slice" ~bind:"sly" [ v "y" ] ])
        (fun g _root subst ->
          let* dx, sx_, ex = slice_attrs (Subst.op subst "slx") in
          let* dy, sy_, ey = slice_attrs (Subst.op subst "sly") in
          let* () =
            guard (dx = dy && Symdim.equal sx_ sy_ && Symdim.equal ex ey)
          in
          let* sx = shape_of_var g subst "x" in
          let* sy = shape_of_var g subst "y" in
          let* () = guard (shapes_equal g sx sy) in
          Some
            (p
               (Op.Slice { dim = dx; start = sx_; stop = ex })
               [ p op [ v "x"; v "y" ] ]));
    ]

let lemmas =
  List.map unary_concat unary_ops
  @ List.map unary_slice unary_ops
  @ [ scale_concat; scale_slice ]
  @ List.map binary_concat binary_ops
  @ List.map binary_concat_broadcast [ ("add", Op.Add); ("mul", Op.Mul); ("div", Op.Div) ]
  @ List.map binary_slice binary_ops
