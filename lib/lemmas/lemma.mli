(** Lemmas: named, classified bundles of rewrite rules.

    A lemma (paper section 4.2.1) states conditions under which one
    expression can be rewritten to another; operationally it is one or
    more {!Entangle_egraph.Rule.t} values (typically the two directions,
    and one rule per collective arity for variadic operators). Metadata
    mirrors what the paper's evaluation reports: the class used in the
    Figure 6 heatmap, the operator-count complexity of Figure 5a, and
    the lines of code of Figure 5b. *)

open Entangle_symbolic
open Entangle_ir
open Entangle_egraph

type klass =
  | Clean  (** lemmas about operators that may appear in clean expressions *)
  | Aten  (** general ATen operator lemmas *)
  | Vllm  (** lemmas for vLLM fused kernels *)
  | Hlo  (** lemmas for HLO / XLA operators *)

type refine_ctx = {
  op_of : string -> Op.t option;  (** binder name to chosen operator *)
  shape_of : string -> Shape.t option;  (** variable name to chosen shape *)
}

(** Instantiation hints: a lemma's declared side-condition signature.

    A hint tells both validators how the lemma author intends the rule to
    be instantiated — which variables must share shapes, which are
    integer index tensors, which auxiliary operands are weight vectors.
    The numeric sampler ({!Lemma_check}) uses them to aim random draws at
    configurations that actually fire the guards; the symbolic verifier
    ({!Lemma_verify}) uses them to build scenarios whose side conditions
    make the rule applicable for arbitrary symbolic dimensions. *)
type hint =
  | Paired  (** each [y<i>] mirrors the shape of [x<i>] *)
  | Uniform_chunks  (** all enumerated chunk variables share one shape *)
  | Replicated  (** every variable is the same tensor *)
  | Contraction  (** matmul blocks: [x<i> : [m; k<i>]], [y<i> : [k<i>; n]] *)
  | Same_shape of string list list  (** each group shares a shape *)
  | Vector_aux of string list  (** rank-1, sized to the chunk's last dim *)
  | Matrix_aux of string list  (** rank-2 with fresh dims (e.g. a table) *)
  | Table_aux of string list
      (** [[total chunk rows; chunk last dim]] (rope's cos/sin caches) *)
  | Integer_vars of string list  (** integer dtype (ids, class targets) *)
  | Broadcast_vars of string list  (** size 1 along the scenario axis *)
  | Rows  (** chunk variables are rank-2 and split along dim 0 *)
  | Concrete_last of int  (** pin the chunk's last dim to a constant *)
  | Refine of (refine_ctx -> Constraint_store.t -> Constraint_store.t)
      (** extra side-condition constraints over the scenario's store *)

type t = {
  name : string;
  klass : klass;
  loc : int;  (** lines of code of the lemma's definition *)
  complexity : int;  (** operators appearing on both sides (Figure 5a) *)
  conditioned : bool;
  hints : hint list;
  rules : Rule.t list;
}

val make :
  ?klass:klass ->
  ?loc:int ->
  ?complexity:int ->
  ?conditioned:bool ->
  ?hints:hint list ->
  string ->
  Rule.t list ->
  t
(** Rules inherit the lemma's [name] so that runner hit counters
    aggregate per lemma. When [complexity] is omitted it is derived from
    the first syntactic rule's patterns; [loc] defaults by rule form
    (2 per universal rule, 12 per conditioned rule), matching the
    paper's observation that universal lemmas take one or two lines. *)

val rules : t list -> Rule.t list
val klass_letter : klass -> string
val pp : t Fmt.t
