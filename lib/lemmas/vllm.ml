open Entangle_ir
open Entangle_egraph
open Helpers

let lo, hi = collective_arities

(* swiglu_fused(g, u) = mul(silu(g), u). *)
let swiglu_unfuse =
  Lemma.make ~klass:Lemma.Vllm "swiglu-unfuse"
    [
      Rule.make "swiglu-unfuse"
        (p Op.Swiglu_fused [ v "g"; v "u" ])
        (p Op.Mul [ p Op.Silu [ v "g" ]; v "u" ]);
      Rule.make "swiglu-unfuse"
        (p Op.Mul [ p Op.Silu [ v "g" ]; v "u" ])
        (p Op.Swiglu_fused [ v "g"; v "u" ]);
    ]

(* swiglu distributes over matching concats, chunk-wise. *)
let swiglu_concat =
  let gen n =
    let xs = vars n and ys = vars_y n in
    Rule.rewrite_to "swiglu-concat"
      (p Op.Swiglu_fused
         [ fam "concat" ~bind:"ccx" xs; fam "concat" ~bind:"ccy" ys ])
      (fun g _root subst ->
        let* dx = concat_dim (Subst.op subst "ccx") in
        let* dy = concat_dim (Subst.op subst "ccy") in
        let* () = guard (dx = dy) in
        let rec chunks_ok i =
          if i = n then Some ()
          else
            let* sx = shape_of_var g subst (Printf.sprintf "x%d" i) in
            let* sy = shape_of_var g subst (Printf.sprintf "y%d" i) in
            let* () = guard (shapes_equal g sx sy) in
            chunks_ok (i + 1)
        in
        let* () = chunks_ok 0 in
        Some
          (p (Op.Concat { dim = dx })
             (List.map2 (fun x y -> p Op.Swiglu_fused [ x; y ]) xs ys)))
  in
  Lemma.make ~klass:Lemma.Vllm ~complexity:4 ~hints:[ Lemma.Paired ]
    "swiglu-concat" (for_arities lo hi gen)

(* swiglu over a fused gate-up projection: the gate and up halves are
   adjacent slices of one matmul output, as vLLM materializes them. *)
let swiglu_slice =
  Lemma.make ~klass:Lemma.Vllm ~complexity:3 "swiglu-slice"
    [
      Rule.rewrite_to ~constrained:true "swiglu-slice"
        (fam "slice" ~bind:"sl" [ p Op.Swiglu_fused [ v "g"; v "u" ] ])
        (fun g _root subst ->
          let* dim, start, stop = slice_attrs (Subst.op subst "sl") in
          let* sg = shape_of_var g subst "g" in
          let* su = shape_of_var g subst "u" in
          let* () = guard (shapes_equal g sg su) in
          let sl t = p (Op.Slice { dim; start; stop }) [ t ] in
          Some (p Op.Swiglu_fused [ sl (v "g"); sl (v "u") ]));
    ]

let lemmas = [ swiglu_unfuse; swiglu_concat; swiglu_slice ]
