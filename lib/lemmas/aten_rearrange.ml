open Entangle_symbolic
open Entangle_ir
open Entangle_egraph
open Helpers

let lo, hi = collective_arities

(* --- slice of concat (paper Listing 4) ------------------------------ *)

(* Child layout of a concat along [dim]: (class-pattern, offset, size)
   for each child variable, when every child's size is known. *)
let concat_layout g subst n dim =
  let rec go i off acc =
    if i = n then Some (List.rev acc)
    else
      let x = Printf.sprintf "x%d" i in
      let* size = dim_of_var g subst x dim in
      go (i + 1) (Symdim.add off size) ((v x, off, size) :: acc)
  in
  go 0 Symdim.zero []

let slice_of_concat =
  let gen n =
    Rule.rewrite_to "slice-of-concat"
      (fam "slice" ~bind:"sl" [ fam "concat" ~bind:"cc" (vars n) ])
      (fun g _root subst ->
        let* sdim, start, stop = slice_attrs (Subst.op subst "sl") in
        let* cdim = concat_dim (Subst.op subst "cc") in
        if sdim <> cdim then
          (* Slicing along a different axis commutes with concat. *)
          Some
            (p
               (Op.Concat { dim = cdim })
               (List.map
                  (fun x -> p (Op.Slice { dim = sdim; start; stop }) [ x ])
                  (vars n)))
        else
          let* layout = concat_layout g subst n cdim in
          (* Keep the children that provably intersect [start, stop) and
             slice each to the overlapping part. Comparisons that cannot
             be decided abort the rewrite. *)
          let rec pieces acc = function
            | [] -> Some (List.rev acc)
            | (x, off, size) :: rest ->
                let hi_child = Symdim.add off size in
                if dle g hi_child start || dle g stop off then
                  (* provably disjoint *)
                  pieces acc rest
                else if dle g start off && dle g hi_child stop then
                  (* fully covered *)
                  pieces (x :: acc) rest
                else if dle g off start && dle g stop hi_child then
                  (* piece inside one child *)
                  let s = Symdim.sub start off and e = Symdim.sub stop off in
                  pieces
                    (p (Op.Slice { dim = sdim; start = s; stop = e }) [ x ]
                    :: acc)
                    rest
                else if dle g off start && dle g start hi_child then
                  (* left-partial: [start, hi_child) of this child *)
                  pieces
                    (p
                       (Op.Slice
                          { dim = sdim; start = Symdim.sub start off; stop = size })
                       [ x ]
                    :: acc)
                    rest
                else if dle g off stop && dle g stop hi_child then
                  (* right-partial: [off, stop) of this child *)
                  pieces
                    (p
                       (Op.Slice
                          { dim = sdim; start = Symdim.zero;
                            stop = Symdim.sub stop off })
                       [ x ]
                    :: acc)
                    rest
                else None
          in
          let* ps = pieces [] layout in
          match ps with
          | [] -> None
          | [ one ] -> Some one
          | many -> Some (p (Op.Concat { dim = cdim }) many))
  in
  Lemma.make ~klass:Lemma.Clean ~complexity:4 "slice-of-concat"
    (for_arities lo hi gen)

let slice_of_slice =
  Lemma.make ~klass:Lemma.Clean "slice-of-slice"
    [
      Rule.rewrite_to "slice-of-slice"
        (fam "slice" ~bind:"outer" [ fam "slice" ~bind:"inner" [ v "x" ] ])
        (fun _g _root subst ->
          let* od, os, oe = slice_attrs (Subst.op subst "outer") in
          let* id_, is_, _ie = slice_attrs (Subst.op subst "inner") in
          let* () = guard (od = id_) in
          Some
            (p
               (Op.Slice
                  {
                    dim = od;
                    start = Symdim.add is_ os;
                    stop = Symdim.add is_ oe;
                  })
               [ v "x" ]));
    ]

let slice_full_range =
  Lemma.make ~klass:Lemma.Clean "slice-full-range"
    [
      Rule.rewrite_to "slice-full-range"
        (fam "slice" ~bind:"sl" [ v "x" ])
        (fun g _root subst ->
          let* dim, start, stop = slice_attrs (Subst.op subst "sl") in
          let* size = dim_of_var g subst "x" dim in
          let* () = guard (deq g start Symdim.zero && deq g stop size) in
          Some (v "x"));
    ]

(* --- slices cover (constrained, section 4.3.2) ----------------------- *)

(* If adjacent slices of a tensor already exist as e-nodes and together
   cover it, the tensor equals their concatenation. Anchored on a slice
   with provably zero start; the chain is extended greedily through
   existing slice nodes over the same class. *)
let slices_cover =
  let rule =
    Rule.make_dyn ~nonlocal:true "slices-cover"
      (fam "slice" ~bind:"sl" [ v "x" ])
      (fun g root subst ->
        match slice_attrs (Subst.op subst "sl") with
        | None -> []
        | Some (dim, start, stop) ->
            (* Cheap structural anchor test: chunk offsets are built in
               normal form, so a zero start is structurally zero. *)
            if not (Symdim.equal start Symdim.zero) then []
            else begin
              match dim_of_var g subst "x" dim with
              | None -> []
              | Some size ->
                  let base = Subst.var subst "x" in
                  (* All existing slice nodes over [base] along [dim]. *)
                  let candidates = ref [] in
                  Egraph.iter_nodes g (fun cls node ->
                      match (Enode.sym node, Enode.children node) with
                      | Enode.Op (Op.Slice s), [ child ]
                        when Id.equal (Egraph.find g child) (Egraph.find g base)
                             && s.dim = dim ->
                          candidates := (cls, s.start, s.stop) :: !candidates
                      | _ -> ());
                  let rec chain acc boundary steps =
                    if steps > 32 then None
                    else if deq g boundary size then Some (List.rev acc)
                    else
                      let next =
                        List.find_opt
                          (fun (_, s, e) ->
                            deq g s boundary
                            && not (deq g e boundary) (* progress *))
                          !candidates
                      in
                      match next with
                      | Some (cls, _, e) ->
                          chain (Pattern.c cls :: acc) e (steps + 1)
                      | None -> None
                  in
                  let anchor = Egraph.find g root in
                  (match chain [ Pattern.c anchor ] stop 1 with
                  | Some pieces when List.length pieces >= 2 ->
                      [ (v "x", p (Op.Concat { dim }) pieces) ]
                  | _ -> [])
            end)
  in
  Lemma.make ~klass:Lemma.Clean ~complexity:3 ~conditioned:true "slices-cover"
    [ rule ]

(* --- concat algebra -------------------------------------------------- *)

let concat_flatten =
  let left n =
    (* concat(concat(x0..x(n-1), d), y, d) -> concat(x0..x(n-1), y, d) *)
    Rule.rewrite_to "concat-flatten"
      (fam "concat" ~bind:"outer" [ fam "concat" ~bind:"inner" (vars n); v "y" ])
      (fun _g _root subst ->
        let* od = concat_dim (Subst.op subst "outer") in
        let* idim = concat_dim (Subst.op subst "inner") in
        let* () = guard (od = idim) in
        Some (p (Op.Concat { dim = od }) (vars n @ [ v "y" ])))
  and right n =
    Rule.rewrite_to "concat-flatten"
      (fam "concat" ~bind:"outer" [ v "y"; fam "concat" ~bind:"inner" (vars n) ])
      (fun _g _root subst ->
        let* od = concat_dim (Subst.op subst "outer") in
        let* idim = concat_dim (Subst.op subst "inner") in
        let* () = guard (od = idim) in
        Some (p (Op.Concat { dim = od }) (v "y" :: vars n)))
  and both (n, m) =
    let xs, ys = vars2 (max n m) in
    let xs = List.filteri (fun i _ -> i < n) xs in
    let ys = List.filteri (fun i _ -> i < m) ys in
    Rule.rewrite_to "concat-flatten"
      (fam "concat" ~bind:"outer"
         [ fam "concat" ~bind:"l" xs; fam "concat" ~bind:"r" ys ])
      (fun _g _root subst ->
        let* od = concat_dim (Subst.op subst "outer") in
        let* ld = concat_dim (Subst.op subst "l") in
        let* rd = concat_dim (Subst.op subst "r") in
        let* () = guard (od = ld && od = rd) in
        Some (p (Op.Concat { dim = od }) (xs @ ys)))
  in
  let pairs =
    List.concat_map (fun n -> List.map (fun m -> (n, m)) [ 2; 3; 4 ]) [ 2; 3; 4 ]
  in
  Lemma.make ~klass:Lemma.Clean ~complexity:3 "concat-flatten"
    (for_arities 2 (hi - 1) left
    @ for_arities 2 (hi - 1) right
    @ List.map both pairs)

let concat_group =
  (* concat(x0..x(n-1), d) -> concat(concat(prefix), concat(suffix), d).
     Constrained in the sense of section 4.3.2: the grouped sub-concats
     must already exist as e-nodes (they are the per-rank concats the
     distributed graph materialized); the outer regrouping node itself
     is inserted. *)
  let sub_concat_exists g subst dim group =
    match group with
    | [ _ ] -> true
    | _ ->
        let ids =
          List.map
            (fun x ->
              match x with
              | Pattern.V name -> Subst.var subst name
              | _ -> assert false)
            group
        in
        Option.is_some (Egraph.lookup g (Enode.op (Op.Concat { dim }) ids))
  in
  let gen (n, k) =
    Rule.rewrite_to ~nonlocal:true "concat-group"
      (fam "concat" ~bind:"cc" (vars n))
      (fun g _root subst ->
        let* dim = concat_dim (Subst.op subst "cc") in
        let xs = vars n in
        let prefix = List.filteri (fun i _ -> i < k) xs in
        let suffix = List.filteri (fun i _ -> i >= k) xs in
        let* () =
          guard
            (sub_concat_exists g subst dim prefix
            && sub_concat_exists g subst dim suffix)
        in
        let wrap = function
          | [ one ] -> one
          | many -> p (Op.Concat { dim }) many
        in
        Some (p (Op.Concat { dim }) [ wrap prefix; wrap suffix ]))
  in
  (* Equal regrouping into [groups] sub-concats. *)
  let gen_equal (n, groups) =
    Rule.rewrite_to ~nonlocal:true "concat-group"
      (fam "concat" ~bind:"cc" (vars n))
      (fun g _root subst ->
        let* dim = concat_dim (Subst.op subst "cc") in
        let per = n / groups in
        let xs = Array.of_list (vars n) in
        let group i = List.init per (fun j -> xs.((i * per) + j)) in
        let all_groups = List.init groups group in
        let* () =
          guard (List.for_all (sub_concat_exists g subst dim) all_groups)
        in
        Some
          (p (Op.Concat { dim })
             (List.map (fun grp -> p (Op.Concat { dim }) grp) all_groups)))
  in
  let instances =
    List.concat_map
      (fun n -> List.map (fun k -> (n, k)) (List.init (n - 1) (fun i -> i + 1)))
      [ 3; 4; 6; 8 ]
  in
  let equal_instances =
    List.concat_map
      (fun n ->
        List.filter_map
          (fun g -> if n mod g = 0 && g > 1 && g < n then Some (n, g) else None)
          [ 2; 3; 4 ])
      [ 4; 6; 8 ]
  in
  Lemma.make ~klass:Lemma.Clean ~complexity:3 ~conditioned:true "concat-group"
    (List.map gen instances @ List.map gen_equal equal_instances)

(* --- transpose ------------------------------------------------------- *)

let transpose_involution =
  Lemma.make ~klass:Lemma.Clean "transpose-involution"
    [
      Rule.rewrite_to "transpose-involution"
        (fam "transpose" ~bind:"outer" [ fam "transpose" ~bind:"inner" [ v "x" ] ])
        (fun _g _root subst ->
          let* o0, o1 = transpose_dims (Subst.op subst "outer") in
          let* i0, i1 = transpose_dims (Subst.op subst "inner") in
          let* () = guard ((o0 = i0 && o1 = i1) || (o0 = i1 && o1 = i0)) in
          Some (v "x"));
    ]

let transpose_of_concat =
  let gen n =
    Rule.rewrite_to "transpose-of-concat"
      (fam "transpose" ~bind:"tr" [ fam "concat" ~bind:"cc" (vars n) ])
      (fun _g _root subst ->
        let* d0, d1 = transpose_dims (Subst.op subst "tr") in
        let* cd = concat_dim (Subst.op subst "cc") in
        let cd' = if cd = d0 then d1 else if cd = d1 then d0 else cd in
        Some
          (p
             (Op.Concat { dim = cd' })
             (List.map
                (fun x -> p (Op.Transpose { dim0 = d0; dim1 = d1 }) [ x ])
                (vars n))))
  and gen_rev n =
    Rule.rewrite_to ~constrained:true "transpose-of-concat"
      (fam "concat" ~bind:"cc"
         (List.map
            (fun x -> fam "transpose" ~bind:"tr" [ x ])
            (vars n)))
      (fun _g _root subst ->
        let* d0, d1 = transpose_dims (Subst.op subst "tr") in
        let* cd = concat_dim (Subst.op subst "cc") in
        let cd' = if cd = d0 then d1 else if cd = d1 then d0 else cd in
        Some
          (p
             (Op.Transpose { dim0 = d0; dim1 = d1 })
             [ p (Op.Concat { dim = cd' }) (vars n) ]))
  in
  Lemma.make ~klass:Lemma.Clean ~complexity:3 "transpose-of-concat"
    (for_arities lo 4 gen @ for_arities lo 4 gen_rev)

(* slice(transpose(x), d, a, b) = transpose(slice(x, d', a, b)) where d'
   is d with the transposed axes swapped. *)
let transpose_slice =
  let swap d0 d1 d = if d = d0 then d1 else if d = d1 then d0 else d in
  Lemma.make ~klass:Lemma.Clean "transpose-slice"
    [
      Rule.rewrite_to "transpose-slice"
        (fam "slice" ~bind:"sl" [ fam "transpose" ~bind:"tr" [ v "x" ] ])
        (fun _g _root subst ->
          let* dim, start, stop = slice_attrs (Subst.op subst "sl") in
          let* d0, d1 = transpose_dims (Subst.op subst "tr") in
          Some
            (p (Op.Transpose { dim0 = d0; dim1 = d1 })
               [ p (Op.Slice { dim = swap d0 d1 dim; start; stop }) [ v "x" ] ]));
      Rule.rewrite_to "transpose-slice"
        (fam "transpose" ~bind:"tr" [ fam "slice" ~bind:"sl" [ v "x" ] ])
        (fun _g _root subst ->
          let* dim, start, stop = slice_attrs (Subst.op subst "sl") in
          let* d0, d1 = transpose_dims (Subst.op subst "tr") in
          Some
            (p (Op.Slice { dim = swap d0 d1 dim; start; stop })
               [ p (Op.Transpose { dim0 = d0; dim1 = d1 }) [ v "x" ] ]));
    ]

(* transpose commutes with pad the same way. *)
let transpose_pad =
  let swap d0 d1 d = if d = d0 then d1 else if d = d1 then d0 else d in
  Lemma.make ~klass:Lemma.Clean "transpose-pad"
    [
      Rule.rewrite_to "transpose-pad"
        (fam "transpose" ~bind:"tr" [ fam "pad" ~bind:"pd" [ v "x" ] ])
        (fun _g _root subst ->
          let* d0, d1 = transpose_dims (Subst.op subst "tr") in
          match Subst.op subst "pd" with
          | Op.Pad { dim; before; after } ->
              Some
                (p (Op.Pad { dim = swap d0 d1 dim; before; after })
                   [ p (Op.Transpose { dim0 = d0; dim1 = d1 }) [ v "x" ] ])
          | _ -> None);
    ]

(* pad(pad(x, d, b1, a1), d, b2, a2) = pad(x, d, b1 + b2, a1 + a2). *)
let pad_of_pad =
  Lemma.make ~klass:Lemma.Clean "pad-of-pad"
    [
      Rule.rewrite_to "pad-of-pad"
        (fam "pad" ~bind:"outer" [ fam "pad" ~bind:"inner" [ v "x" ] ])
        (fun _g _root subst ->
          match (Subst.op subst "outer", Subst.op subst "inner") with
          | ( Op.Pad { dim = d2; before = b2; after = a2 },
              Op.Pad { dim = d1; before = b1; after = a1 } ) ->
              let* () = guard (d1 = d2) in
              Some
                (p
                   (Op.Pad
                      {
                        dim = d1;
                        before = Symdim.add b1 b2;
                        after = Symdim.add a1 a2;
                      })
                   [ v "x" ])
          | _ -> None);
    ]

(* --- pad -------------------------------------------------------------- *)

(* Verifier refinement: constrain the sampled slice window to lie inside
   the unpadded region, so the rule's guards hold in some scenario. *)
let slice_of_pad_refine ctx store =
  match (ctx.Lemma.op_of "sl", ctx.Lemma.op_of "pd") with
  | ( Some (Op.Slice { start; stop; _ }),
      Some (Op.Pad { dim; before; _ }) ) -> (
      match ctx.Lemma.shape_of "x" with
      | Some sx when dim < Shape.rank sx ->
          let size = Shape.dim sx dim in
          let store =
            Constraint_store.add_ge store (Symdim.sub start before)
          in
          Constraint_store.add_ge store
            (Symdim.sub (Symdim.add before size) stop)
      | _ -> store)
  | _ -> store

let slice_of_pad =
  Lemma.make ~klass:Lemma.Clean
    ~hints:[ Lemma.Refine slice_of_pad_refine ]
    "slice-of-pad"
    [
      Rule.rewrite_to "slice-of-pad"
        (fam "slice" ~bind:"sl" [ fam "pad" ~bind:"pd" [ v "x" ] ])
        (fun g _root subst ->
          let* sdim, start, stop = slice_attrs (Subst.op subst "sl") in
          match Subst.op subst "pd" with
          | Op.Pad { dim; before; _ } ->
              let* () = guard (sdim = dim) in
              let* size = dim_of_var g subst "x" dim in
              (* The slice must lie inside the original (unpadded) region. *)
              let* () = guard (dle g before start) in
              let* () = guard (dle g stop (Symdim.add before size)) in
              Some
                (p
                   (Op.Slice
                      {
                        dim;
                        start = Symdim.sub start before;
                        stop = Symdim.sub stop before;
                      })
                   [ v "x" ])
          | _ -> None);
    ]

(* --- reshape and identity -------------------------------------------- *)

let reshape_of_reshape =
  Lemma.make ~klass:Lemma.Clean "reshape-of-reshape"
    [
      Rule.rewrite_to "reshape-of-reshape"
        (fam "reshape" ~bind:"outer" [ fam "reshape" ~bind:"inner" [ v "x" ] ])
        (fun _g _root subst ->
          match Subst.op subst "outer" with
          | Op.Reshape { shape } -> Some (p (Op.Reshape { shape }) [ v "x" ])
          | _ -> None);
    ]

let reshape_identity =
  Lemma.make ~klass:Lemma.Clean "reshape-identity"
    [
      Rule.rewrite_to "reshape-identity"
        (fam "reshape" ~bind:"rs" [ v "x" ])
        (fun g _root subst ->
          match (Subst.op subst "rs", shape_of_var g subst "x") with
          | Op.Reshape { shape }, Some xshape ->
              let* () = guard (Shape.equal (Egraph.constraints g) shape xshape) in
              Some (v "x")
          | _ -> None);
    ]

let identity_elim =
  Lemma.make ~klass:Lemma.Clean "identity-elim"
    [ Rule.make "identity-elim" (p Op.Identity [ v "x" ]) (v "x") ]

let lemmas =
  [
    slice_of_concat;
    slice_of_slice;
    slice_full_range;
    slices_cover;
    concat_flatten;
    concat_group;
    transpose_involution;
    transpose_of_concat;
    transpose_slice;
    transpose_pad;
    pad_of_pad;
    slice_of_pad;
    reshape_of_reshape;
    reshape_identity;
    identity_elim;
  ]
