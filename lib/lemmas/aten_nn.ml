open Entangle_symbolic
open Entangle_ir
open Entangle_egraph
open Helpers

let lo, hi = collective_arities

(* softmax(concat(x_i, d), ds) with ds <> d maps over the chunks. *)
let softmax_concat_offaxis =
  let gen n =
    Rule.rewrite_to "softmax-concat-offaxis"
      (fam "softmax" ~bind:"sm" [ fam "concat" ~bind:"cc" (vars n) ])
      (fun _g _root subst ->
        let op = Subst.op subst "sm" in
        let* sdim = match op with Op.Softmax { dim } -> Some dim | _ -> None in
        let* cdim = concat_dim (Subst.op subst "cc") in
        let* () = guard (sdim <> cdim) in
        Some
          (p (Op.Concat { dim = cdim })
             (List.map (fun x -> p op [ x ]) (vars n))))
  in
  Lemma.make ~complexity:3 "softmax-concat-offaxis" (for_arities lo hi gen)

(* softmax commutes with slicing along a non-softmax axis. *)
let softmax_slice =
  Lemma.make ~complexity:2 "softmax-slice"
    [
      Rule.rewrite_to ~constrained:true "softmax-slice"
        (fam "slice" ~bind:"sl" [ fam "softmax" ~bind:"sm" [ v "x" ] ])
        (fun _g _root subst ->
          let op = Subst.op subst "sm" in
          let* sdim = match op with Op.Softmax { dim } -> Some dim | _ -> None in
          let* dim, start, stop = slice_attrs (Subst.op subst "sl") in
          let* () = guard (dim <> sdim) in
          Some (p op [ p (Op.Slice { dim; start; stop }) [ v "x" ] ]));
    ]

(* Normalization over the last axis maps over chunks of any other axis.
   The rmsnorm instance is the example lemma of the paper's section 6.5
   (complexity 5 for the binary form). *)
let norm_concat_rows family n_extra_inputs =
  let gen n =
    let extras =
      List.init n_extra_inputs (fun i -> v (Printf.sprintf "w%d" i))
    in
    Rule.rewrite_to (family ^ "-concat-rows")
      (fam family ~bind:"nm" (fam "concat" ~bind:"cc" (vars n) :: extras))
      (fun g _root subst ->
        let op = Subst.op subst "nm" in
        let* cdim = concat_dim (Subst.op subst "cc") in
        let* rank = rank_of_var g subst "x0" in
        let* () = guard (cdim <> rank - 1) in
        Some
          (p (Op.Concat { dim = cdim })
             (List.map (fun x -> p op (x :: extras)) (vars n))))
  in
  Lemma.make ~complexity:5 (family ^ "-concat-rows") (for_arities lo hi gen)

let norm_slice_rows family n_extra_inputs =
  let extras =
    List.init n_extra_inputs (fun i -> v (Printf.sprintf "w%d" i))
  in
  Lemma.make ~complexity:2 (family ^ "-slice-rows")
    [
      Rule.rewrite_to ~constrained:true (family ^ "-slice-rows")
        (fam "slice" ~bind:"sl" [ fam family ~bind:"nm" (v "x" :: extras) ])
        (fun g _root subst ->
          let op = Subst.op subst "nm" in
          let* dim, start, stop = slice_attrs (Subst.op subst "sl") in
          let* rank = rank_of_var g subst "x" in
          let* () = guard (dim <> rank - 1) in
          Some
            (p op (p (Op.Slice { dim; start; stop }) [ v "x" ] :: extras)));
    ]

(* embedding(w, concat(ids_i, d)) = concat(embedding(w, ids_i), d). *)
let embedding_concat_ids =
  let gen n =
    Rule.rewrite_to "embedding-concat-ids"
      (p Op.Embedding [ v "w"; fam "concat" ~bind:"cc" (vars n) ])
      (fun _g _root subst ->
        let* dim = concat_dim (Subst.op subst "cc") in
        Some
          (p (Op.Concat { dim })
             (List.map (fun ids -> p Op.Embedding [ v "w"; ids ]) (vars n))))
  in
  Lemma.make ~complexity:3 "embedding-concat-ids" (for_arities lo hi gen)

let embedding_slice_ids =
  Lemma.make ~complexity:2 "embedding-slice-ids"
    [
      Rule.rewrite_to ~constrained:true "embedding-slice-ids"
        (fam "slice" ~bind:"sl" [ p Op.Embedding [ v "w"; v "ids" ] ])
        (fun g _root subst ->
          let* dim, start, stop = slice_attrs (Subst.op subst "sl") in
          let* rank_ids = rank_of_var g subst "ids" in
          (* Only slicing over ids axes commutes, not the feature axis. *)
          let* () = guard (dim < rank_ids) in
          Some
            (p Op.Embedding
               [ v "w"; p (Op.Slice { dim; start; stop }) [ v "ids" ] ]));
    ]

(* Rotary embedding on row chunks: each chunk uses the matching slice of
   the precomputed cos/sin tables (the paper's RoPE bug, Figure 7, is a
   wrong offset into exactly these slices). *)
let rope_concat_rows =
  let gen n =
    Rule.rewrite_to "rope-concat-rows"
      (p Op.Rope [ fam "concat" ~bind:"cc" (vars n); v "cos"; v "sin" ])
      (fun g _root subst ->
        let* cdim = concat_dim (Subst.op subst "cc") in
        let* () = guard (cdim = 0) in
        let rec offsets i off acc =
          if i = n then Some (List.rev acc)
          else
            let* size = dim_of_var g subst (Printf.sprintf "x%d" i) 0 in
            offsets (i + 1) (Symdim.add off size) ((off, size) :: acc)
        in
        let* offs = offsets 0 Symdim.zero [] in
        let chunk x (off, size) =
          let sl t =
            p (Op.Slice { dim = 0; start = off; stop = Symdim.add off size })
              [ t ]
          in
          p Op.Rope [ x; sl (v "cos"); sl (v "sin") ]
        in
        Some (p (Op.Concat { dim = 0 }) (List.map2 chunk (vars n) offs)))
  in
  Lemma.make ~complexity:6
    ~hints:[ Lemma.Rows; Lemma.Concrete_last 8 ]
    "rope-concat-rows" (for_arities lo hi gen)

(* Loss over a row-partitioned batch with equal chunks is the average of
   the per-chunk losses: the gradient-accumulation lemma (paper bug 6). *)
let loss_concat op_name op =
  let gen n =
    let xs = vars n and ys = vars_y n in
    Rule.rewrite_to (op_name ^ "-concat")
      (p op [ fam "concat" ~bind:"ccx" xs; fam "concat" ~bind:"ccy" ys ])
      (fun g _root subst ->
        let* dx = concat_dim (Subst.op subst "ccx") in
        let* dy = concat_dim (Subst.op subst "ccy") in
        let* () = guard (dx = 0 && dy = 0) in
        let* first = dim_of_var g subst "x0" 0 in
        let rec check i =
          if i = n then Some ()
          else
            let* sx = dim_of_var g subst (Printf.sprintf "x%d" i) 0 in
            let* sy = dim_of_var g subst (Printf.sprintf "y%d" i) 0 in
            let* () = guard (deq g sx first && deq g sy first) in
            check (i + 1)
        in
        let* () = check 0 in
        Some
          (p
             (Op.Scale (Rat.make 1 n))
             [ p Op.Sum_n (List.map2 (fun x y -> p op [ x; y ]) xs ys) ]))
  in
  (* mse compares equal-shape chunk pairs; cross-entropy pairs a row
     block with a rank-1 target vector, which is what Rows samples. *)
  let pairing = if op = Op.Mse_loss then Lemma.Paired else Lemma.Rows in
  Lemma.make ~complexity:5
    ~hints:[ Lemma.Uniform_chunks; pairing ]
    (op_name ^ "-concat") (for_arities lo hi gen)

let lemmas =
  [
    softmax_concat_offaxis;
    softmax_slice;
    norm_concat_rows "layernorm" 2;
    norm_concat_rows "rmsnorm" 1;
    norm_slice_rows "layernorm" 2;
    norm_slice_rows "rmsnorm" 1;
    embedding_concat_ids;
    embedding_slice_ids;
    rope_concat_rows;
    loss_concat "mse_loss" Op.Mse_loss;
    loss_concat "cross_entropy" Op.Cross_entropy;
  ]
