(** Rewrite rules.

    A rule is the executable form of a lemma (paper section 4.2.1):
    a left-hand pattern plus either a syntactic right-hand pattern
    (universal lemma) or a function computing right-hand patterns from
    the match (conditioned lemma, mirroring egg's closure appliers in
    Listing 4 of the paper). *)

type applier =
  | Syntactic of Pattern.t
  | Conditional of
      (Egraph.t -> Id.t -> Subst.t -> (Pattern.t * Pattern.t) list)
      (** Given the e-graph, the matched root class and the substitution,
          return equations to assert: each pair of patterns is
          instantiated and the two sides unioned. Return [[]] when the
          condition fails. Use [Pattern.c root] to refer to the matched
          class itself.

          {b Contract}: appliers must be {e match-local} — they may
          inspect only the substitution, structure and shapes of
          classes reachable from the match, and the e-graph's
          (immutable) constraint store. The incremental runner relies
          on this: a match-local condition can only change outcome when
          some reachable class changes, which dirties the matched class
          via parent-edge propagation, so unconstrained rules are never
          re-searched at clean classes. An applier that reads global
          e-graph state ({!Egraph.lookup}, {!Egraph.iter_nodes}) must
          declare it by setting [nonlocal]; the runner then re-applies
          every substitution collected so far whenever it claims
          completeness, so the condition is re-evaluated even on
          matches whose reachable classes never changed. *)

type t = {
  name : string;
  lhs : Pattern.t;
  applier : applier;
  constrained : bool;
      (** When true, right-hand sides are instantiated in
          {!Ematch.Check_only} mode: the rewrite fires only if the target
          already exists (paper section 4.3.2, "Constrained Lemmas"). *)
  nonlocal : bool;
      (** When true, the applier reads e-graph state beyond the classes
          reachable from the match (see the {!applier} contract) and the
          incremental runner must not assume its outcome is stable on
          unchanged matches. *)
}

val make :
  ?constrained:bool -> ?nonlocal:bool -> string -> Pattern.t -> Pattern.t -> t
(** Universal lemma [make name lhs rhs]. *)

val make_dyn :
  ?constrained:bool ->
  ?nonlocal:bool ->
  string ->
  Pattern.t ->
  (Egraph.t -> Id.t -> Subst.t -> (Pattern.t * Pattern.t) list) ->
  t
(** Conditioned lemma. *)

val rewrite_to :
  ?constrained:bool ->
  ?nonlocal:bool ->
  string ->
  Pattern.t ->
  (Egraph.t -> Id.t -> Subst.t -> Pattern.t option) ->
  t
(** Conditioned lemma whose right-hand side replaces the matched class:
    convenience wrapper around {!make_dyn}. *)

val apply_matches : t -> Egraph.t -> (Id.t * Subst.t) list -> int
(** Apply the rule to pre-collected matches; returns the number of
    applications that merged two previously distinct classes. The caller
    must {!Egraph.rebuild} afterwards. *)
