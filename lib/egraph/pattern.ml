open Entangle_ir

type op_sel =
  | Fixed of Op.t
  | Family of { family : string; bind : string }
  | Bound of string

type t = V of string | P of op_sel * t list | C of Id.t

let v name = V name
let p op args = P (Fixed op, args)
let fam family ~bind args = P (Family { family; bind }, args)
let bound name args = P (Bound name, args)
let c id = C id

let vars pat =
  let rec go acc = function
    | V x -> if List.mem x acc then acc else x :: acc
    | C _ -> acc
    | P (_, args) -> List.fold_left go acc args
  in
  List.rev (go [] pat)

let linear pat =
  let rec occurrences = function
    | V _ -> 1
    | C _ -> 0
    | P (_, args) -> List.fold_left (fun a p -> a + occurrences p) 0 args
  in
  occurrences pat = List.length (vars pat)

let rec size = function
  | V _ | C _ -> 0
  | P (_, args) -> 1 + List.fold_left (fun acc a -> acc + size a) 0 args

let pp_sel ppf = function
  | Fixed op -> Op.pp ppf op
  | Family { family; bind } -> Fmt.pf ppf "?%s:%s" bind family
  | Bound name -> Fmt.pf ppf "!%s" name

let rec pp ppf = function
  | V x -> Fmt.pf ppf "?%s" x
  | C id -> Fmt.pf ppf "#%a" Id.pp id
  | P (sel, args) ->
      Fmt.pf ppf "(%a %a)" pp_sel sel (Fmt.list ~sep:(Fmt.any " ") pp) args
