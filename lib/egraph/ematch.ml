open Entangle_ir

type mode = Insert | Check_only

(* Hard bound on the substitutions produced while matching one pattern
   against one class. Classes that accumulate many equivalent variadic
   nodes (nested sums, regrouped concats) otherwise yield quadratically
   many matches; truncation loses completeness of a single iteration
   only — later iterations rediscover anything still missing. *)
let per_class_budget = 2048

(* Single tail-recursive pass: counts and copies at once, and returns
   the input list physically unchanged when it fits the budget. *)
let truncate l =
  let rec go acc n = function
    | [] -> l
    | x :: rest -> if n = 0 then List.rev acc else go (x :: acc) (n - 1) rest
  in
  go [] per_class_budget l

let sel_matches sel (op : Op.t) subst =
  match sel with
  | Pattern.Fixed o -> if Op.equal o op then Some subst else None
  | Pattern.Family { family; bind } ->
      if String.equal (Op.name op) family then Subst.bind_op subst bind op
      else None
  | Pattern.Bound name -> (
      match Subst.op_opt subst name with
      | Some o when Op.equal o op -> Some subst
      | _ -> None)

let rec match_pat g pat cls subst =
  let cls = Egraph.find g cls in
  match pat with
  | Pattern.V x -> (
      match Subst.bind_var subst x cls with
      | Some s -> [ s ]
      | None -> [])
  | Pattern.C id -> if Id.equal (Egraph.find g id) cls then [ subst ] else []
  | Pattern.P (sel, args) ->
      let n_args = List.length args in
      List.concat_map
        (fun enode ->
          match Enode.sym enode with
          | Enode.Leaf _ -> []
          | Enode.Op op ->
              if List.length (Enode.children enode) <> n_args then []
              else begin
                match sel_matches sel op subst with
                | None -> []
                | Some subst ->
                    List.fold_left2
                      (fun substs arg child ->
                        truncate
                          (List.concat_map
                             (fun s -> match_pat g arg child s)
                             substs))
                      [ subst ] args (Enode.children enode)
              end)
        (Egraph.nodes_of g cls)
      |> truncate

let fp_match =
  Entangle_failpoint.Failpoint.declare "egraph.ematch"
    ~doc:"per-class entry of the e-matcher (full and delta searches)"

let match_class g pat cls =
  Entangle_failpoint.Failpoint.hit fp_match;
  match_pat g pat cls Subst.empty

(* Delta (semi-naive) matching: collect only substitutions whose
   application could do something a search taken at generation [since]
   did not already do. A substitution is kept when

   - its root node was created after [since]
     ({!Egraph.nodes_with_stamps}; nodes absorbed by a merge keep their
     stamp — those substitutions were collected at the losing class and
     their application outcome is unchanged by the merge);
   - or a class entered through an operator sub-pattern changed
     structurally after [since] ({!Egraph.structural_at}) — a merge or
     addition there exposes new sub-derivations to every old root node
     above it;
   - or, when [conditional], any visited class — including classes
     merely bound by a variable, and the root — changed structurally
     (which subsumes shape changes: [shape_at <= structural_at]).

   The [conditional] flag exists because a variable binding [x := c]
   yields the same substitution whatever happens inside [c]: for a
   syntactic right-hand side (or a rule whose previously collected
   substitutions are re-applied from a cache), re-admitting it is pure
   waste. A conditional applier, however, may inspect the structure,
   shape, or union-find identity of every match-reachable class, so any
   structural change to a bound class can flip its outcome and the
   substitution must be re-admitted.

   Everything else was derivable with an identical application outcome,
   and therefore collected and applied, last time. Sub-pattern
   freshness is per-class rather than per-node (a mid-path merge
   re-admits every substitution crossing the merged class, not only
   those through the absorbed nodes): an over-approximation that costs
   duplicates but never misses a new match. *)
let match_class_delta g ~since ~conditional pat cls0 =
  Entangle_failpoint.Failpoint.hit fp_match;
  let fresh cls = Egraph.structural_at g cls > since in
  let rec go pat cls subst f =
    let cls = Egraph.find g cls in
    let f =
      (* [C] is checked unconditionally: a merge can make the class
         test newly succeed, and the merge bumps the winner's
         structural stamp. [V] bindings only matter to a conditional
         applier (the caller accounts for non-linear patterns, where a
         merge can newly satisfy a repeated-variable constraint, by
         passing [conditional:true]). *)
      f
      || ((match pat with
          | Pattern.P _ | Pattern.C _ -> true
          | Pattern.V _ -> conditional)
         && fresh cls)
    in
    match pat with
    | Pattern.V x -> (
        match Subst.bind_var subst x cls with
        | Some s -> [ (s, f) ]
        | None -> [])
    | Pattern.C id ->
        if Id.equal (Egraph.find g id) cls then [ (subst, f) ] else []
    | Pattern.P (sel, args) ->
        let n_args = List.length args in
        List.concat_map
          (fun enode ->
            match Enode.sym enode with
            | Enode.Leaf _ -> []
            | Enode.Op op ->
                if List.length (Enode.children enode) <> n_args then []
                else begin
                  match sel_matches sel op subst with
                  | None -> []
                  | Some subst ->
                      List.fold_left2
                        (fun substs arg child ->
                          truncate
                            (List.concat_map
                               (fun (s, f) -> go arg child s f)
                               substs))
                        [ (subst, f) ] args (Enode.children enode)
                end)
          (Egraph.nodes_of g cls)
        |> truncate
  in
  let pairs =
    match pat with
    | Pattern.V _ | Pattern.C _ -> go pat cls0 Subst.empty false
    | Pattern.P (sel, args) ->
        let root = Egraph.find g cls0 in
        (* A conditional applier may read the root class's shape, so a
           shape adoption re-admits its substitutions. Root structure
           beyond the matched node itself is not re-checked: appliers
           receive the root as an opaque id ([Pattern.c root]), and
           node-set changes to the root class are covered by the
           per-node stamps. *)
        let root_fresh = conditional && Egraph.shape_at g root > since in
        let n_args = List.length args in
        List.concat_map
          (fun (enode, stamp) ->
            match Enode.sym enode with
            | Enode.Leaf _ -> []
            | Enode.Op op ->
                if List.length (Enode.children enode) <> n_args then []
                else begin
                  match sel_matches sel op Subst.empty with
                  | None -> []
                  | Some subst ->
                      List.fold_left2
                        (fun substs arg child ->
                          truncate
                            (List.concat_map
                               (fun (s, f) -> go arg child s f)
                               substs))
                        [ (subst, root_fresh || stamp > since) ]
                        args (Enode.children enode)
                end)
          (Egraph.nodes_with_stamps g root)
        |> truncate
  in
  List.filter_map (fun (s, f) -> if f then Some s else None) pairs

let match_all g pat =
  List.concat_map
    (fun cls ->
      List.map (fun s -> (cls, s)) (match_class g pat cls))
    (Egraph.class_ids g)

let rec instantiate ~mode g subst = function
  | Pattern.V x -> Subst.var_opt subst x
  | Pattern.C id -> Some (Egraph.find g id)
  | Pattern.P (sel, args) -> (
      let op =
        match sel with
        | Pattern.Fixed o -> Some o
        | Pattern.Bound name -> Subst.op_opt subst name
        | Pattern.Family _ -> None
      in
      match op with
      | None -> None
      | Some op ->
          let rec build acc = function
            | [] -> Some (List.rev acc)
            | a :: rest -> (
                match instantiate ~mode g subst a with
                | Some id -> build (id :: acc) rest
                | None -> None)
          in
          (match build [] args with
          | None -> None
          | Some children -> (
              let node = Enode.op op children in
              match mode with
              | Insert -> Some (Egraph.add g node)
              | Check_only -> Egraph.lookup g node)))
