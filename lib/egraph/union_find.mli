(** Union-find over e-class ids with path compression and union by rank. *)

type t

val create : unit -> t

val fresh : t -> Id.t
(** Allocate a new singleton class. *)

val find : t -> Id.t -> Id.t

val union : t -> Id.t -> Id.t -> Id.t
(** Merge two classes; returns the surviving representative. *)

val size : t -> int
(** Number of ids allocated so far. *)

val parent : t -> Id.t -> Id.t
(** Raw parent pointer (no path compression); equals the argument at a
    root. For invariant checking only. *)

val check_acyclic : t -> (unit, Id.t) result
(** Walk every parent chain without path compression; [Error id] names
    an id whose chain does not reach a root within [size t] steps (a
    corrupted, cyclic forest). *)
