(** The e-graph: a congruence-closed set of equivalence classes of terms.

    A re-implementation of the core of egg (Willsey et al., POPL 2021),
    which the paper uses for expression rewriting: terms are added as
    hash-consed e-nodes; [union] asserts equality; [rebuild] restores
    congruence after a batch of unions. An e-class analysis tracks the
    symbolic shape of every class, which conditioned lemmas consult. *)

open Entangle_symbolic
open Entangle_ir

type t

val create : ?constraints:Constraint_store.t -> unit -> t

val constraints : t -> Constraint_store.t

(** {1 Adding terms} *)

val add : t -> Enode.t -> Id.t
val add_leaf : t -> Tensor.t -> Id.t
val add_op : t -> Op.t -> Id.t list -> Id.t
val add_expr : t -> Expr.t -> Id.t

val lookup : t -> Enode.t -> Id.t option
(** Like {!add} but never inserts; [None] when the (canonicalized) node
    is not present. Implements the "constrained lemmas" optimization
    (paper section 4.3.2): a conditioned rule may require its target to
    already exist. *)

val leaf_id : t -> Tensor.t -> Id.t option

(** {1 Equivalences} *)

val find : t -> Id.t -> Id.t
val equiv : t -> Id.t -> Id.t -> bool

val union : t -> Id.t -> Id.t -> bool
(** [true] when the two classes were distinct and have been merged.
    Requires a subsequent {!rebuild} before matching again. *)

val rebuild : t -> unit
(** Restore the congruence invariant; processes all pending unions. *)

(** {1 Inspection} *)

val nodes_of : t -> Id.t -> Enode.t list
(** Canonicalized nodes of the class of the given id. *)

val shape_of : t -> Id.t -> Shape.t option
val class_ids : t -> Id.t list
val num_classes : t -> int
val num_nodes : t -> int

val reachable : t -> Id.t list -> Id.Set.t
(** Classes reachable from the given roots through e-node children. *)

val contains_leaf : t -> Id.t -> (Tensor.t -> bool) -> bool
(** Does the class of the id contain a leaf satisfying the predicate? *)

val iter_nodes : t -> (Id.t -> Enode.t -> unit) -> unit
(** Iterate over every canonicalized node of every class. Used by rules
    that need to scan for existing nodes (the constrained-lemma
    optimization of section 4.3.2). *)

val pp : t Fmt.t

(** {1 Introspection for invariant checking}

    Raw views of internal state consumed by the static-analysis pass
    ([Entangle_analysis.Egraph_check]); not meant for normal clients. *)
module Debug : sig
  val memo_entries : t -> (Enode.t * Id.t) list
  (** Every hashcons entry (node key, class id) as stored — keys and
      values are {e not} canonicalized, so staleness is observable. *)

  val pending_count : t -> int
  (** Unions recorded since the last {!rebuild}. *)

  val uf_size : t -> int
  val uf_check_acyclic : t -> (unit, Id.t) result
end
