(** The e-graph: a congruence-closed set of equivalence classes of terms.

    A re-implementation of the core of egg (Willsey et al., POPL 2021),
    which the paper uses for expression rewriting: terms are added as
    hash-consed e-nodes; [union] asserts equality; [rebuild] restores
    congruence after a batch of unions. An e-class analysis tracks the
    symbolic shape of every class, which conditioned lemmas consult. *)

open Entangle_symbolic
open Entangle_ir

type t

val create : ?constraints:Constraint_store.t -> unit -> t

val constraints : t -> Constraint_store.t

(** {1 Adding terms} *)

val add : t -> Enode.t -> Id.t
val add_leaf : t -> Tensor.t -> Id.t
val add_op : t -> Op.t -> Id.t list -> Id.t
val add_expr : t -> Expr.t -> Id.t

val lookup : t -> Enode.t -> Id.t option
(** Like {!add} but never inserts; [None] when the (canonicalized) node
    is not present. Implements the "constrained lemmas" optimization
    (paper section 4.3.2): a conditioned rule may require its target to
    already exist. *)

val leaf_id : t -> Tensor.t -> Id.t option

(** {1 Equivalences} *)

val find : t -> Id.t -> Id.t
val equiv : t -> Id.t -> Id.t -> bool

val union : t -> Id.t -> Id.t -> bool
(** [true] when the two classes were distinct and have been merged.
    Requires a subsequent {!rebuild} before matching again. When both
    classes carry a shape and the shapes provably disagree, the
    winner's shape is kept and the conflict is recorded for the
    invariant checker ({!Debug.shape_conflicts}, EGRAPH007). *)

val rebuild : t -> unit
(** Restore the congruence invariant; processes all pending unions.
    Also propagates modification marks upward: every class transitively
    reachable from a merged class through parent edges is stamped with a
    fresh generation, so {!classes_modified_since} over-approximates the
    classes whose match sets may have changed. *)

(** {1 Modification generations}

    Every structural change (node addition, union, congruence repair)
    advances a monotonic counter and stamps the touched class with it.
    The saturation runner snapshots {!generation} when a rule is
    matched and later re-matches only {!classes_modified_since} that
    snapshot. Accurate only after {!rebuild} (upward propagation of
    union marks is deferred to it). *)

val generation : t -> int
(** Current value of the modification counter. *)

val modified_at : t -> Id.t -> int
(** Generation at which the (canonical) class of the id last changed. *)

val structural_at : t -> Id.t -> int
(** Generation at which the (canonical) class's own node set last
    changed: class creation or a union merging nodes in. Unlike
    {!modified_at} it is {e not} bumped by dirtiness propagated up from
    descendants, so [structural_at t id <= modified_at t id] always.
    Delta e-matching ({!Ematch.match_class_delta}) keys on this stamp. *)

val shape_at : t -> Id.t -> int
(** Generation at which the (canonical) class's shape analysis last
    changed. Shapes only change at class creation and at merges, so
    [shape_at t id <= structural_at t id] always. *)

val classes_modified_since : t -> int -> Id.t list
(** Canonical ids of every class stamped strictly after the given
    generation: the dirty set for incremental e-matching. *)

val classes_with_family : t -> string -> Id.t list
(** Canonical ids of every class containing at least one node whose
    operator family ({!Entangle_ir.Op.name}) is the given one. The
    index is maintained incrementally on add/union (classes only ever
    gain families); stale entries from absorbed classes are compacted
    lazily on query. *)

(** {1 Inspection} *)

val nodes_of : t -> Id.t -> Enode.t list
(** Canonicalized nodes of the class of the given id. *)

val nodes_with_stamps : t -> Id.t -> (Enode.t * int) list
(** Canonicalized nodes paired with the generation at which each was
    first added. Stamps survive merges: a node absorbed from a losing
    class keeps its original stamp, because every substitution rooted
    through it was already collected at the losing class and its
    application outcome is unchanged by the merge. Delta e-matching
    skips root nodes whose stamp predates a rule's last search. *)

val shape_of : t -> Id.t -> Shape.t option
val class_ids : t -> Id.t list
val num_classes : t -> int
(** O(1): the class table's size. *)

val num_nodes : t -> int
(** O(1): a cached counter maintained on add/union/rebuild, mirroring
    the sum of per-class node-list lengths exactly (duplicates created
    by unions count until {!rebuild} deduplicates them). Audited
    against recomputation by [Entangle_analysis.Egraph_check]
    (EGRAPH008). *)

val reachable : t -> Id.t list -> Id.Set.t
(** Classes reachable from the given roots through e-node children. *)

val contains_leaf : t -> Id.t -> (Tensor.t -> bool) -> bool
(** Does the class of the id contain a leaf satisfying the predicate? *)

val iter_nodes : t -> (Id.t -> Enode.t -> unit) -> unit
(** Iterate over every canonicalized node of every class. Used by rules
    that need to scan for existing nodes (the constrained-lemma
    optimization of section 4.3.2). *)

val pp : t Fmt.t

(** {1 Introspection for invariant checking}

    Raw views of internal state consumed by the static-analysis pass
    ([Entangle_analysis.Egraph_check]); not meant for normal clients. *)
module Debug : sig
  val memo_entries : t -> (Enode.t * Id.t) list
  (** Every hashcons entry (node key, class id) as stored — keys and
      values are {e not} canonicalized, so staleness is observable. *)

  val pending_count : t -> int
  (** Unions recorded since the last {!rebuild}. *)

  val uf_size : t -> int
  val uf_check_acyclic : t -> (unit, Id.t) result

  val recompute_num_nodes : t -> int
  (** O(graph) recount of every class's node list; the ground truth the
      cached {!num_nodes} counter is audited against. *)

  val family_entries : t -> (string * Id.t list) list
  (** Raw operator-family index as stored — ids are {e not}
      canonicalized, so staleness is observable. *)

  val shape_conflicts : t -> (Id.t * Shape.t * Shape.t) list
  (** Unions that merged two classes with provably disagreeing shapes:
      (surviving root, winner shape kept, loser shape dropped). *)
end
