(** E-matching: finding all substitutions under which a pattern matches
    an e-class, and instantiating right-hand sides. *)

type mode = Insert | Check_only
(** [Check_only] implements the constrained-lemma optimization (paper
    section 4.3.2): instantiation succeeds only when every operator node
    of the right-hand side already exists in the e-graph. *)

val per_class_budget : int
(** Hard bound on the substitutions produced while matching one pattern
    against one class; see {!truncate}. *)

val truncate : 'a list -> 'a list
(** First {!per_class_budget} elements of the list, in order; the list
    itself (no copy) when it already fits. Exposed for testing. *)

val match_class : Egraph.t -> Pattern.t -> Id.t -> Subst.t list
(** All substitutions matching the pattern at the given class. *)

val match_class_delta :
  Egraph.t -> since:int -> conditional:bool -> Pattern.t -> Id.t -> Subst.t list
(** Like {!match_class}, but keep only substitutions that could not
    have been collected (with the same application outcome) at a search
    taken at generation [since] — the semi-naive delta: the root node
    was added after [since], or a class entered through an operator
    sub-pattern changed structurally ({!Egraph.structural_at}) since.
    With [conditional:true] — for rules whose applier may inspect
    match-reachable classes and whose old substitutions are not
    re-applied from a cache — a structural change to {e any} visited
    class (variable bindings and the root included) also re-admits the
    substitution, since it can flip the applier's outcome.
    [match_class_delta ~since:(-1)] equals {!match_class}. *)

val match_all : Egraph.t -> Pattern.t -> (Id.t * Subst.t) list
(** Matches across every class of the e-graph. *)

val instantiate :
  mode:mode -> Egraph.t -> Subst.t -> Pattern.t -> Id.t option
(** Build the pattern under the substitution. [None] if the pattern
    references an unbound variable/operator or, in [Check_only] mode,
    when a node does not already exist. *)
