type t = {
  mutable parent : int array;
  mutable rank : int array;
  mutable len : int;
}

let create () = { parent = Array.make 64 0; rank = Array.make 64 0; len = 0 }

let grow t =
  let cap = Array.length t.parent in
  if t.len >= cap then begin
    let parent = Array.make (2 * cap) 0 in
    let rank = Array.make (2 * cap) 0 in
    Array.blit t.parent 0 parent 0 cap;
    Array.blit t.rank 0 rank 0 cap;
    t.parent <- parent;
    t.rank <- rank
  end

let fresh t =
  grow t;
  let i = t.len in
  t.parent.(i) <- i;
  t.len <- t.len + 1;
  Id.of_int i

let rec find_int t i =
  let p = t.parent.(i) in
  if p = i then i
  else begin
    let root = find_int t p in
    t.parent.(i) <- root;
    root
  end

let find t i = Id.of_int (find_int t (Id.to_int i))

let union t a b =
  let ra = find_int t (Id.to_int a) and rb = find_int t (Id.to_int b) in
  if ra = rb then Id.of_int ra
  else begin
    let ra, rb = if t.rank.(ra) >= t.rank.(rb) then (ra, rb) else (rb, ra) in
    t.parent.(rb) <- ra;
    if t.rank.(ra) = t.rank.(rb) then t.rank.(ra) <- t.rank.(ra) + 1;
    Id.of_int ra
  end

let size t = t.len

let parent t i = Id.of_int t.parent.(Id.to_int i)

let check_acyclic t =
  let ok = ref (Ok ()) in
  (try
     for i = 0 to t.len - 1 do
       let steps = ref 0 and j = ref i in
       while t.parent.(!j) <> !j do
         incr steps;
         if !steps > t.len then begin
           ok := Error (Id.of_int i);
           raise Exit
         end;
         j := t.parent.(!j)
       done
     done
   with Exit -> ());
  !ok
