open Entangle_ir

let infinity_cost = max_int / 4

let fp_extract =
  Entangle_failpoint.Failpoint.declare "egraph.extract"
    ~doc:"entry of the cost-relaxation pass behind every extraction"

(* Fixpoint cost relaxation over the (possibly cyclic) e-graph. The cost
   of a node is 1 + sum of its children's class costs; a class costs the
   minimum over its admissible nodes. *)
let compute_costs g ~node_ok ~leaf_ok =
  Entangle_failpoint.Failpoint.hit fp_extract;
  let cost : int Id.Tbl.t = Id.Tbl.create 64 in
  let get id =
    Option.value (Id.Tbl.find_opt cost (Egraph.find g id)) ~default:infinity_cost
  in
  let node_cost n =
    match Enode.sym n with
    | Enode.Leaf t -> if leaf_ok t then 0 else infinity_cost
    | Enode.Op op ->
        if not (node_ok op) then infinity_cost
        else
          let c =
            List.fold_left
              (fun acc child ->
                let k = get child in
                if acc >= infinity_cost || k >= infinity_cost then infinity_cost
                else acc + k)
              1 (Enode.children n)
          in
          c
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun cls ->
        let cls = Egraph.find g cls in
        let best =
          List.fold_left
            (fun acc n -> min acc (node_cost n))
            infinity_cost (Egraph.nodes_of g cls)
        in
        if best < get cls then begin
          Id.Tbl.replace cost cls best;
          changed := true
        end)
      (Egraph.class_ids g)
  done;
  (cost, node_cost)

let reconstruct g (cost, node_cost) id =
  let get id =
    Option.value
      (Id.Tbl.find_opt cost (Egraph.find g id))
      ~default:infinity_cost
  in
  let rec build id =
    let cls = Egraph.find g id in
    let candidates =
      List.filter_map
        (fun n ->
          let c = node_cost n in
          if c >= infinity_cost then None else Some (c, n))
        (Egraph.nodes_of g cls)
    in
    let best =
      List.sort
        (fun (ca, na) (cb, nb) ->
          match Int.compare ca cb with 0 -> Enode.compare na nb | c -> c)
        candidates
    in
    match best with
    | [] -> None
    | (_, n) :: _ -> (
        match Enode.sym n with
        | Enode.Leaf t -> Some (Expr.leaf t)
        | Enode.Op op ->
            let rec args acc = function
              | [] -> Some (List.rev acc)
              | child :: rest -> (
                  match build child with
                  | Some e -> args (e :: acc) rest
                  | None -> None)
            in
            Option.map (fun a -> Expr.app op a) (args [] (Enode.children n)))
  in
  if get id >= infinity_cost then None else build id

let best g id =
  let node_ok _ = true and leaf_ok _ = true in
  let tables = compute_costs g ~node_ok ~leaf_ok in
  reconstruct g tables id

let best_clean g ~leaf_ok id =
  let node_ok = Op.is_clean in
  let tables = compute_costs g ~node_ok ~leaf_ok in
  reconstruct g tables id

let best_filtered g ~node_ok ~leaf_ok id =
  let tables = compute_costs g ~node_ok ~leaf_ok in
  reconstruct g tables id

let clean_cost_table g ~leaf_ok =
  let node_ok = Op.is_clean in
  let cost, _ = compute_costs g ~node_ok ~leaf_ok in
  fun id ->
    match Id.Tbl.find_opt cost (Egraph.find g id) with
    | Some c when c < infinity_cost -> Some c
    | _ -> None
