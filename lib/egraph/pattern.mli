(** Patterns over e-graph terms.

    Used both as left-hand sides (matched against e-classes, binding
    variables) and right-hand sides (instantiated under a substitution).
    Operators with attributes can be matched exactly ([Fixed]) or by
    family name with the concrete operator captured in the substitution
    ([Family]), mirroring egg's conditioned rewrites (paper Listing 4). *)

open Entangle_ir

type op_sel =
  | Fixed of Op.t  (** exact operator, attributes included *)
  | Family of { family : string; bind : string }
      (** any operator with this {!Op.name}; bound under [bind] *)
  | Bound of string  (** RHS only: re-use an operator bound on the LHS *)

type t =
  | V of string  (** pattern variable over e-classes *)
  | P of op_sel * t list
  | C of Id.t  (** direct reference to an e-class (RHS of scan-based rules) *)

val v : string -> t
val p : Op.t -> t list -> t
val fam : string -> bind:string -> t list -> t
val bound : string -> t list -> t
val c : Id.t -> t

val vars : t -> string list
(** Distinct pattern variables in first-occurrence order. *)

val linear : t -> bool
(** No pattern variable occurs twice. Matching a non-linear pattern
    imposes equality constraints between bound classes, so a union can
    create matches that touch no new node; delta e-matching
    ({!Ematch.match_class_delta}) must treat such patterns
    conservatively. *)

val size : t -> int
(** Number of operator applications; used as the lemma-complexity metric
    of the paper's Figure 5a (operators on both sides of a lemma). *)

val pp : t Fmt.t
