(** Equality-saturation runner.

    Repeatedly matches every rule against the e-graph, applies all
    matches, and rebuilds, until a fixpoint or a resource limit. Per-rule
    application counts are recorded (the paper's Figure 6 heatmap). *)

type limits = {
  max_iterations : int;
  max_nodes : int;
  max_classes : int;
}

val default_limits : limits

type report = {
  iterations : int;
  saturated : bool;  (** reached a fixpoint before hitting a limit *)
  nodes : int;
  classes : int;
}

val run :
  ?limits:limits ->
  ?hit_counter:(string, int) Hashtbl.t ->
  ?invariant_check:(Egraph.t -> unit) ->
  Egraph.t ->
  Rule.t list ->
  report
(** [hit_counter] accumulates, per rule name, the number of applications
    that merged classes; pass the same table across runs to aggregate
    counts over a whole verification.

    [invariant_check] is a debug hook invoked on the e-graph after every
    {!Egraph.rebuild} (i.e. once per iteration, when the congruence
    invariant is supposed to hold). The static-analysis subsystem
    provides one that raises on any violated e-graph invariant
    ([Entangle_analysis.Egraph_check.runner_hook]). *)
