(** Equality-saturation runner.

    Repeatedly matches rules against the e-graph, applies all matches,
    and rebuilds, until a fixpoint or a resource limit. Per-rule
    application counts are recorded (the paper's Figure 6 heatmap).

    Two schedulers and an incremental-matching mode rework the hot path
    (both are egg's headline optimizations):

    - {b Incremental e-matching}: the runner records, per rule, the
      e-graph {!Egraph.generation} at which it last searched and
      re-matches only {!Egraph.classes_modified_since} that snapshot
      (intersected with the e-graph's operator-family index). A rule's
      first search is always full.
    - {b Backoff scheduling} ({!scheduler_kind} [Backoff]): a rule that
      produces more matches than its budget ([match_limit] doubled per
      overflow) is banned for a number of iterations that doubles with
      every overflow, keeping explosive rules from dominating early
      iterations.

    The runner is instrumented for the structured tracing subsystem
    ({!Entangle_trace}): pass a sink and it emits one span per
    iteration (matches, unions, search-mode and truncation counters,
    ban activity, cool-down markers), an e-graph growth sample per
    iteration, and per-rule [rule-hit]/[rule-ban] instants — the event
    vocabulary of {!Entangle_trace.Event}. With the default
    {!Entangle_trace.Sink.null} the instrumentation is a dead branch:
    no event, argument list or closure is allocated.

    Both are completeness-preserving. For unconstrained rules
    (syntactic or conditional) incremental matching is already exact:
    matches and applier conditions are match-local (see {!Rule}), and
    every structural or shape change dirties the affected class and —
    through parent-edge propagation at {!Egraph.rebuild} — all of its
    ancestors. Constrained rules are the exception: a [Check_only]
    target can come into existence anywhere in the e-graph without the
    matched class being dirtied. So before the runner declares
    saturation it runs a {e cool-down} pass: every ban is lifted,
    constrained rules re-match in full, everything else catches up
    incrementally; only an empty complete cool-down reports
    [saturated = true]. *)

type budget = Iterations | Nodes | Classes | Deadline | Heap
(** The resource budgets a run is subject to. [Deadline] and [Heap] are
    the cooperative wall-clock / major-heap checks added for the
    resilience layer; the first three are the classic egg-style growth
    caps. *)

val budget_name : budget -> string

type limits = {
  max_iterations : int;
  max_nodes : int;
  max_classes : int;
  deadline : float option;
      (** absolute wall-clock deadline ([Unix.gettimeofday] scale),
          checked once per saturation iteration *)
  max_heap_words : int option;
      (** major-heap word budget, checked once per iteration via
          [Gc.quick_stat] (no heap walk) *)
}

val default_limits : limits
(** 30 iterations, 20k nodes, 10k classes, no deadline, no heap cap. *)

val scale_limits : int -> limits -> limits
(** Multiply the discrete budgets (iterations/nodes/classes) by a
    factor — the escalation ladder's "double the limits" rung. The
    deadline and heap budget are left untouched; callers re-derive
    wall-clock allowances per attempt. *)

type report = {
  iterations : int;
  saturated : bool;  (** reached a fixpoint before hitting a limit *)
  nodes : int;
  classes : int;
  matches : int;  (** substitutions examined during this run *)
  unions : int;  (** applications that merged two classes *)
  tripped : budget option;
      (** which budget ended the run, when one did. [None] with
          [saturated = false] is an unconfirmed fixpoint candidate
          (see [confirm_saturation]); [None] with [saturated = true]
          is genuine saturation. *)
}

type scheduler_kind = Simple | Backoff

type state
(** Scheduler and incremental-matching state: per-rule last-search
    generations and ban status, a global iteration counter, and
    cumulative search statistics. Persistent across {!run} calls so
    drivers that saturate one iteration at a time (the checker's
    round-by-round loop) still match incrementally between rounds.
    A state is tied to one e-graph and one rule set; do not reuse it
    across e-graphs (generations are per-graph). *)

val create_state :
  ?scheduler:scheduler_kind ->
  ?incremental:bool ->
  ?match_limit:int ->
  ?ban_length:int ->
  unit ->
  state
(** Defaults: [scheduler = Simple], [incremental = false] (the legacy
    exhaustive behavior), [match_limit = 1000], [ban_length = 5] (egg's
    defaults for the backoff scheduler). *)

type stats = {
  matches_examined : int;  (** substitutions collected across all runs *)
  unions_applied : int;
  full_searches : int;  (** rule searches over all candidate classes *)
  incremental_searches : int;  (** rule searches over dirty classes only *)
  bans : int;  (** backoff bans issued *)
}

val state_stats : state -> stats

val run :
  ?limits:limits ->
  ?confirm_saturation:bool ->
  ?sink:Entangle_trace.Sink.t ->
  ?invariant_check:(Egraph.t -> unit) ->
  ?state:state ->
  Egraph.t ->
  Rule.t list ->
  report
(** [confirm_saturation] (default [true]) controls the cool-down: with
    [false], a run that reaches a fixpoint candidate (a scheduled pass
    with zero unions) returns immediately with [saturated = false]
    instead of paying the cool-down pass that would confirm or refute
    it. Drivers that often stop before saturation (the checker stops as
    soon as a mapping is extractable) use this to skip the cool-down on
    operators that never need a trustworthy [saturated], calling again
    with confirmation on only when they are about to give up. A report
    with [unions = 0] and [saturated = false] under
    [confirm_saturation:false] is exactly such an unconfirmed candidate.

    [sink] (default {!Entangle_trace.Sink.null}) receives the trace
    events described above. Per-rule application counts — previously
    the [?hit_counter] hashtable parameter — arrive as [rule-hit]
    instants; collect them with {!Entangle_trace.Collect} or fold them
    with {!Entangle_trace.Agg} to aggregate counts over a whole
    verification.

    [invariant_check] is a debug hook invoked on the e-graph after every
    {!Egraph.rebuild} (i.e. once per iteration, when the congruence
    invariant is supposed to hold). The static-analysis subsystem
    provides one that raises on any violated e-graph invariant
    ([Entangle_analysis.Egraph_check.runner_hook]).

    [state] carries scheduling decisions across calls; omitting it
    creates a fresh legacy ([Simple], exhaustive) state per call. *)
