type budget = Iterations | Nodes | Classes | Deadline | Heap

let budget_name = function
  | Iterations -> "iterations"
  | Nodes -> "nodes"
  | Classes -> "classes"
  | Deadline -> "deadline"
  | Heap -> "heap"

type limits = {
  max_iterations : int;
  max_nodes : int;
  max_classes : int;
  deadline : float option;
  max_heap_words : int option;
}

let default_limits =
  {
    max_iterations = 30;
    max_nodes = 20_000;
    max_classes = 10_000;
    deadline = None;
    max_heap_words = None;
  }

(* Escalation rungs scale the discrete budgets; the wall-clock deadline
   is an absolute timestamp and is re-derived per attempt by the caller,
   so it is left untouched here. *)
let scale_limits k l =
  {
    l with
    max_iterations = l.max_iterations * k;
    max_nodes = l.max_nodes * k;
    max_classes = l.max_classes * k;
  }

type report = {
  iterations : int;
  saturated : bool;
  nodes : int;
  classes : int;
  matches : int;
  unions : int;
  tripped : budget option;
}

type scheduler_kind = Simple | Backoff

(* Per-rule scheduling state, persistent across [run] calls so drivers
   that saturate one iteration at a time (Node_rel) still match
   incrementally between rounds. *)
type rule_state = {
  mutable last_gen : int;  (** e-graph generation of the last search; -1 = never searched *)
  mutable times_banned : int;
  mutable banned_until : int;  (** first iteration the rule may run again *)
  mutable cached_matches : (Id.t * Subst.t) list;
      (** Constrained rules only, incremental mode only: every
          substitution collected so far. Match sets are monotone (the
          e-graph only grows and merges, and bindings canonicalize
          through the union-find), so cache + fresh delta = the full
          current match set. Re-applying the cache under [Check_only]
          makes an incremental search of a constrained rule equivalent
          to a full one: the application is what is global (the target
          may have materialized anywhere since), not the matching. *)
}

type state = {
  scheduler : scheduler_kind;
  incremental : bool;
  match_limit : int;
  ban_length : int;
  (* Keyed by the rule's position in the rule list, NOT its name: rule
     names are shared across a lemma's arity variants and directions,
     and aliasing their scheduling state would make every variant after
     the first see an empty dirty set on its (supposedly full) first
     search. *)
  rule_states : (int, rule_state) Hashtbl.t;
  mutable iteration : int;  (** global iteration counter across runs *)
  mutable matches_examined : int;
  mutable unions_applied : int;
  mutable full_searches : int;
  mutable incremental_searches : int;
  mutable bans : int;
}

type stats = {
  matches_examined : int;
  unions_applied : int;
  full_searches : int;
  incremental_searches : int;
  bans : int;
}

let create_state ?(scheduler = Simple) ?(incremental = false)
    ?(match_limit = 1000) ?(ban_length = 5) () =
  {
    scheduler;
    incremental;
    match_limit;
    ban_length;
    rule_states = Hashtbl.create 64;
    iteration = 0;
    matches_examined = 0;
    unions_applied = 0;
    full_searches = 0;
    incremental_searches = 0;
    bans = 0;
  }

let state_stats (st : state) : stats =
  {
    matches_examined = st.matches_examined;
    unions_applied = st.unions_applied;
    full_searches = st.full_searches;
    incremental_searches = st.incremental_searches;
    bans = st.bans;
  }

let rule_state st idx =
  match Hashtbl.find_opt st.rule_states idx with
  | Some rs -> rs
  | None ->
      let rs =
        {
          last_gen = -1;
          times_banned = 0;
          banned_until = 0;
          cached_matches = [];
        }
      in
      Hashtbl.replace st.rule_states idx rs;
      rs

module Sink = Entangle_trace.Sink
module Event = Entangle_trace.Event

let log_src = Logs.Src.create "entangle.runner" ~doc:"Equality saturation"

module Log = (val Logs.src_log log_src)

(* Applying one rule's pre-collected matches, stopping early if the
   e-graph outgrows the node budget mid-iteration. [Egraph.num_nodes]
   is a cached O(1) counter, so the per-match budget check is free. *)
let apply_bounded ~limits rule g matches =
  let mode =
    if rule.Rule.constrained then Ematch.Check_only else Ematch.Insert
  in
  let hits = ref 0 in
  (try
     List.iter
       (fun (cls, subst) ->
         if Egraph.num_nodes g > limits.max_nodes then raise Exit;
         let equations =
           match rule.Rule.applier with
           | Rule.Syntactic rhs -> [ (Pattern.c cls, rhs) ]
           | Rule.Conditional f -> f g cls subst
         in
         List.iter
           (fun (lhs, rhs) ->
             match
               ( Ematch.instantiate ~mode g subst lhs,
                 Ematch.instantiate ~mode g subst rhs )
             with
             | Some a, Some b -> if Egraph.union g a b then incr hits
             | _ -> ())
           equations)
       matches
   with Exit -> ());
  !hits

(* Root operator family of a rule's left-hand side, used to index rules
   so matching skips classes that contain no node of that family. *)
let root_family (rule : Rule.t) =
  match rule.lhs with
  | Pattern.P (Pattern.Fixed op, _) -> Some (Entangle_ir.Op.name op)
  | Pattern.P (Pattern.Family { family; _ }, _) -> Some family
  | Pattern.P (Pattern.Bound _, _) | Pattern.V _ | Pattern.C _ -> None

(* Candidate classes for one rule's search, plus whether the search was
   full. A full search consults the e-graph's incrementally maintained
   family index (or every class when the rule's root is not
   family-headed); an incremental search restricts to classes modified
   since the rule's last search. *)
let candidates st g fam rs ~full =
  if full || (not st.incremental) || rs.last_gen < 0 then begin
    st.full_searches <- st.full_searches + 1;
    let cs =
      match fam with
      | None -> Egraph.class_ids g
      | Some f -> Egraph.classes_with_family g f
    in
    (cs, true)
  end
  else begin
    st.incremental_searches <- st.incremental_searches + 1;
    let cs =
      match fam with
      | None -> Egraph.classes_modified_since g rs.last_gen
      | Some f ->
          List.filter
            (fun cls -> Egraph.modified_at g cls > rs.last_gen)
            (Egraph.classes_with_family g f)
    in
    (cs, false)
  end

(* Collect a rule's matches class by class, stopping once the cap is
   reached so pathological classes cannot materialize millions of
   substitutions. [since = Some gen] switches to delta matching: only
   substitutions whose derivation crosses a class structurally changed
   after [gen] are collected (the rest were applied at the rule's
   previous search). Also reports whether any class may have hit the
   per-class match budget — truncation drops substitutions silently, so
   the caller must not advance the rule's generation past them. *)
let collect rule classes ~cap ~since ~conditional g =
  let acc = ref [] and count = ref 0 and truncated = ref false in
  (try
     List.iter
       (fun cls ->
         if !count >= cap then raise Exit;
         let ms =
           match since with
           | None -> Ematch.match_class g rule.Rule.lhs cls
           | Some gen ->
               Ematch.match_class_delta g ~since:gen ~conditional
                 rule.Rule.lhs cls
         in
         let k = ref 0 in
         List.iter
           (fun s ->
             incr k;
             if !count < cap then begin
               acc := (cls, s) :: !acc;
               incr count
             end)
           ms;
         if !k >= Ematch.per_class_budget then truncated := true)
       classes
   with Exit -> ());
  (!acc, !truncated)

(* Rules are processed one at a time: matches for a rule are collected
   against the current e-graph and applied before the next rule is
   matched. Holding every rule's matches at once (as a literal reading
   of egg's iteration would) retains multiplicatively many
   substitutions on large classes. A per-rule cap bounds the
   pathological cases; the runner simply takes another iteration to
   finish the work. *)
let max_matches_per_rule = 20_000

(* Per-pass observability: what one trip over the rule list did. The
   totals feed the per-iteration trace span; [p_complete] is the
   fixpoint argument (see below). *)
type pass_info = {
  p_matches : int;
  p_hits : int;
  p_complete : bool;
  p_searched : int;  (** rules that actually ran a search *)
  p_full : int;  (** of those, full (non-delta) searches *)
  p_delta : int;  (** incremental (dirty-set) searches *)
  p_truncated : int;  (** collects that hit a cap or per-class budget *)
  p_banned : int;  (** rules skipped under an active ban *)
  p_deferred : int;  (** constrained rules deferred to cool-down *)
  p_new_bans : int;  (** bans issued during this pass *)
}

(* One pass over the rule list. With [full] bans are ignored (the
   caller lifts them first) and constrained rules are applied over
   their complete match set — the cool-down that makes the scheduler
   complete. Only constrained rules need it: their Check_only targets
   can come into existence anywhere in the e-graph without the matched
   class ever being dirtied. Unconstrained rules (syntactic or
   conditional) are match-local — their matches and conditions depend
   only on structure and shapes reachable from the matched class, all
   of which dirty the class through parent-edge propagation — so they
   keep searching incrementally even during cool-down. Constrained
   rules reach their complete match set cheaply too when incremental
   matching is on: matching is as local as anyone's, so the cool-down
   delta-collects fresh substitutions and re-applies the accumulated
   cache ([cached_matches]) instead of re-matching from scratch. *)
let pass ~limits ~sink st g indexed ~full =
  let total_matches = ref 0 and total_hits = ref 0 in
  (* [complete]: this pass left no candidate unexamined that could
     reveal new work — a zero-hit complete pass is a genuine fixpoint.
     Incremental searches only break completeness for constrained
     rules (see above); bans and capped collects always do. *)
  let complete = ref true in
  let searched = ref 0 and full_searches = ref 0 and delta_searches = ref 0 in
  let truncations = ref 0 and banned_count = ref 0 and deferred_count = ref 0 in
  let new_bans = ref 0 in
  List.iter
    (fun (idx, fam, rule) ->
      let rs = rule_state st idx in
      let banned =
        (not full) && st.scheduler = Backoff && st.iteration < rs.banned_until
      in
      (* Rules whose application outcome depends on global e-graph
         state: constrained rules ([Check_only] targets can materialize
         anywhere) and rules whose applier declares itself [nonlocal].
         Both re-apply their whole accumulated match cache whenever they
         run (below), so their global conditions are re-evaluated on old
         matches too. Constrained rules are additionally deferred to
         cool-down passes under the backoff scheduler: their Check_only
         applications only ratify equalities between existing terms, so
         firing them once per fixpoint candidate reaches the same
         saturated e-graph as firing them every iteration, without
         paying their match collection each pass. Nonlocal rules are
         NOT deferred — they build terms that can unblock drivers which
         declare failure between iterations, before any cool-down. *)
      let global = rule.Rule.constrained || rule.Rule.nonlocal in
      let deferred =
        (not full) && st.scheduler = Backoff && rule.Rule.constrained
      in
      if banned || deferred then begin
        if banned then incr banned_count else incr deferred_count;
        complete := false
      end
      else begin
        (* Globally-dependent rules in incremental mode search their
           delta and re-apply [cached_matches] (see {!rule_state}):
           equivalent to a full search, so no full candidate set is
           forced even at cool-down. Without incremental matching they
           must re-match everything whenever completeness is claimed. *)
        let use_cache = st.incremental && global in
        let classes, was_full =
          candidates st g fam rs ~full:(full && global && not st.incremental)
        in
        incr searched;
        if was_full then incr full_searches else incr delta_searches;
        if (not was_full) && global && not use_cache then complete := false;
        let threshold =
          match st.scheduler with
          | Simple -> max_matches_per_rule
          | Backoff ->
              min max_matches_per_rule
                (st.match_limit lsl min rs.times_banned 20)
        in
        let cap =
          (* Backoff needs one extra slot to observe the overflow. *)
          match st.scheduler with
          | Simple -> threshold
          | Backoff -> threshold + 1
        in
        let since = if was_full then None else Some rs.last_gen in
        (* Class-level blanket re-admission (see
           {!Ematch.match_class_delta}) is needed when a conditional
           applier's old outcomes are neither syntactically determined
           nor re-applied from the cache — and always for non-linear
           patterns, where a union of two bound classes creates
           genuinely new substitutions (never cached, touching no new
           node) out of the repeated-variable constraint. *)
        let conditional =
          ((match rule.Rule.applier with
           | Rule.Conditional _ -> true
           | Rule.Syntactic _ -> false)
          && not use_cache)
          || not (Pattern.linear rule.Rule.lhs)
        in
        let ms, class_truncated =
          collect rule classes ~cap ~since ~conditional g
        in
        let n = List.length ms in
        total_matches := !total_matches + n;
        st.matches_examined <- st.matches_examined + n;
        if (not full) && st.scheduler = Backoff && n > threshold then begin
          (* egg-style backoff: the rule overflowed its match budget;
             ban it for a ban length that doubles with every overflow
             and discard the matches. Its [last_gen] is left untouched
             so the skipped dirty classes are revisited on unban. *)
          rs.times_banned <- rs.times_banned + 1;
          rs.banned_until <-
            st.iteration + (st.ban_length lsl min (rs.times_banned - 1) 20);
          st.bans <- st.bans + 1;
          incr new_bans;
          complete := false;
          if Sink.enabled sink then
            Sink.instant sink "rule-ban" ~cat:"rule"
              ~args:
                [
                  ("rule", Event.Str rule.Rule.name);
                  ("banned_until", Event.Int rs.banned_until);
                  ("matches", Event.Int n);
                  ("threshold", Event.Int threshold);
                ];
          Log.debug (fun m ->
              m "rule %s banned until iteration %d (%d matches > %d)"
                rule.Rule.name rs.banned_until n threshold)
        end
        else begin
          (* A collect that hit its cap (or a class that hit the
             per-class match budget) may have dropped matches: apply
             what was gathered but leave [last_gen] untouched so the
             remainder is revisited, and refuse to call the pass
             complete. *)
          if n >= cap || class_truncated then begin
            incr truncations;
            complete := false
          end
          else rs.last_gen <- Egraph.generation g;
          let to_apply =
            if use_cache then begin
              (* A full collect is the complete current match set, so it
                 replaces the cache (a truncated one is replaced too —
                 [last_gen] stayed at -1, so the next search is again
                 full). A delta collect appends; a truncated delta may
                 append the same substitution twice on the retry, which
                 only wastes an idempotent re-application. *)
              if was_full then rs.cached_matches <- ms
              else rs.cached_matches <- List.rev_append ms rs.cached_matches;
              rs.cached_matches
            end
            else ms
          in
          let hits = apply_bounded ~limits rule g to_apply in
          total_hits := !total_hits + hits;
          st.unions_applied <- st.unions_applied + hits;
          (* The per-rule hit record the old [?hit_counter] hashtable
             used to carry: one instant event per rule per pass that
             actually merged classes. *)
          if hits > 0 && Sink.enabled sink then
            Sink.instant sink "rule-hit" ~cat:"rule"
              ~args:
                [
                  ("rule", Event.Str rule.Rule.name);
                  ("hits", Event.Int hits);
                  ("matches", Event.Int n);
                ]
        end
      end)
    indexed;
  {
    p_matches = !total_matches;
    p_hits = !total_hits;
    p_complete = !complete;
    p_searched = !searched;
    p_full = !full_searches;
    p_delta = !delta_searches;
    p_truncated = !truncations;
    p_banned = !banned_count;
    p_deferred = !deferred_count;
    p_new_bans = !new_bans;
  }

let unban_all st =
  Hashtbl.iter (fun _ rs -> rs.banned_until <- 0) st.rule_states

let run ?(limits = default_limits) ?(confirm_saturation = true)
    ?(sink = Sink.null) ?invariant_check ?state g rules =
  let st = match state with Some s -> s | None -> create_state () in
  let indexed = List.mapi (fun i r -> (i, root_family r, r)) rules in
  let matches_total = ref 0 and unions_total = ref 0 in
  let finish ?tripped iter saturated =
    {
      iterations = iter;
      saturated;
      nodes = Egraph.num_nodes g;
      classes = Egraph.num_classes g;
      matches = !matches_total;
      unions = !unions_total;
      tripped;
    }
  in
  (* Cooperative budget check, once per iteration (plus once before the
     first): discrete growth caps, then the wall clock, then the major
     heap. [Gc.quick_stat] reads cached counters, so the heap probe does
     not itself walk the heap. *)
  let budget_tripped () =
    if Egraph.num_nodes g > limits.max_nodes then Some Nodes
    else if Egraph.num_classes g > limits.max_classes then Some Classes
    else
      match limits.deadline with
      | Some d when Unix.gettimeofday () > d -> Some Deadline
      | _ -> (
          match limits.max_heap_words with
          | Some h when (Gc.quick_stat ()).Gc.heap_words > h -> Some Heap
          | _ -> None)
  in
  let settle () =
    Egraph.rebuild g;
    match invariant_check with Some f -> f g | None -> ()
  in
  (* One span per iteration of the main loop (the scheduled pass plus,
     when it produced a fixpoint candidate, the cool-down pass run in
     the same iteration), closed with the iteration's totals plus an
     e-graph growth sample — the trace counterpart of [report]. *)
  let end_iteration ~cooldown p extra_matches extra_hits =
    if Sink.enabled sink then begin
      Sink.counter sink "egraph" ~cat:"egraph"
        ~args:
          [
            ("nodes", Event.Int (Egraph.num_nodes g));
            ("classes", Event.Int (Egraph.num_classes g));
          ];
      Sink.span_end sink "iteration" ~cat:"iteration"
        ~args:
          [
            ("matches", Event.Int (p.p_matches + extra_matches));
            ("unions", Event.Int (p.p_hits + extra_hits));
            ("rules_searched", Event.Int p.p_searched);
            ("full_searches", Event.Int p.p_full);
            ("delta_searches", Event.Int p.p_delta);
            ("truncated", Event.Int p.p_truncated);
            ("banned", Event.Int p.p_banned);
            ("deferred", Event.Int p.p_deferred);
            ("new_bans", Event.Int p.p_new_bans);
            ("cooldown", Event.Bool cooldown);
          ]
    end
  in
  let rec go iter =
    match
      if iter >= limits.max_iterations then Some Iterations
      else budget_tripped ()
    with
    | Some b -> finish ~tripped:b iter false
    | None -> begin
      if Sink.enabled sink then
        Sink.span_begin sink "iteration" ~cat:"iteration"
          ~args:[ ("iteration", Event.Int st.iteration) ];
      let p = pass ~limits ~sink st g indexed ~full:false in
      settle ();
      matches_total := !matches_total + p.p_matches;
      unions_total := !unions_total + p.p_hits;
      Log.debug (fun m ->
          m "iteration %d: %d matches, %d unions, %d nodes, %d classes"
            st.iteration p.p_matches p.p_hits (Egraph.num_nodes g)
            (Egraph.num_classes g));
      let over_budget = budget_tripped in
      st.iteration <- st.iteration + 1;
      if p.p_hits > 0 then begin
        end_iteration ~cooldown:false p 0 0;
        go (iter + 1)
      end
      else
      match over_budget () with
      | Some b ->
        end_iteration ~cooldown:false p 0 0;
        finish ~tripped:b (iter + 1) false
      | None ->
      if p.p_complete then begin
        (* Every rule searched every candidate class and nothing
           merged: a genuine fixpoint. *)
        end_iteration ~cooldown:false p 0 0;
        finish (iter + 1) true
      end
      else if not confirm_saturation then begin
        (* Fixpoint candidate, but the caller declined to pay for
           confirmation: deferred constrained rules and banned rules
           have not had their full pass, so report [saturated = false]
           and hand the candidate back. A union-free non-saturated
           report is the driver's cue to either stop (it already has
           the answer it was saturating for) or call again with
           confirmation on. *)
        end_iteration ~cooldown:false p 0 0;
        finish (iter + 1) false
      end
      else begin
        (* No unions from the scheduled (incremental and/or
           ban-throttled) pass: a fixpoint candidate. Before declaring
           saturation, lift every ban and run a cool-down pass — a full
           re-match of the constrained rules (whose Check_only targets
           can appear anywhere without dirtying the matched class) plus
           an incremental catch-up of everything else. Only an empty
           complete cool-down is a genuine fixpoint. *)
        Sink.instant sink "cooldown" ~cat:"iteration";
        unban_all st;
        let p2 = pass ~limits ~sink st g indexed ~full:true in
        settle ();
        matches_total := !matches_total + p2.p_matches;
        unions_total := !unions_total + p2.p_hits;
        Log.debug (fun m ->
            m "iteration %d (cool-down): %d matches, %d unions"
              st.iteration p2.p_matches p2.p_hits);
        st.iteration <- st.iteration + 1;
        end_iteration ~cooldown:true p2 p.p_matches p.p_hits;
        match over_budget () with
        | Some b -> finish ~tripped:b (iter + 1) false
        | None ->
            if p2.p_hits = 0 then finish (iter + 1) p2.p_complete
            else go (iter + 1)
      end
    end
  in
  go 0
