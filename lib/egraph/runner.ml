type limits = { max_iterations : int; max_nodes : int; max_classes : int }

let default_limits =
  { max_iterations = 30; max_nodes = 20_000; max_classes = 10_000 }

type report = {
  iterations : int;
  saturated : bool;
  nodes : int;
  classes : int;
}

let bump counter name n =
  if n > 0 then
    let prev = Option.value (Hashtbl.find_opt counter name) ~default:0 in
    Hashtbl.replace counter name (prev + n)

let log_src = Logs.Src.create "entangle.runner" ~doc:"Equality saturation"

module Log = (val Logs.src_log log_src)

(* Applying one rule's pre-collected matches, stopping early if the
   e-graph outgrows the node budget mid-iteration. *)
let apply_bounded ~limits rule g matches =
  let mode =
    if rule.Rule.constrained then Ematch.Check_only else Ematch.Insert
  in
  let hits = ref 0 in
  (try
     List.iter
       (fun (cls, subst) ->
         if Egraph.num_nodes g > limits.max_nodes then raise Exit;
         let equations =
           match rule.Rule.applier with
           | Rule.Syntactic rhs -> [ (Pattern.c cls, rhs) ]
           | Rule.Conditional f -> f g cls subst
         in
         List.iter
           (fun (lhs, rhs) ->
             match
               ( Ematch.instantiate ~mode g subst lhs,
                 Ematch.instantiate ~mode g subst rhs )
             with
             | Some a, Some b -> if Egraph.union g a b then incr hits
             | _ -> ())
           equations)
       matches
   with Exit -> ());
  !hits

(* Root operator family of a rule's left-hand side, used to index rules
   so matching skips classes that contain no node of that family. *)
let root_family (rule : Rule.t) =
  match rule.lhs with
  | Pattern.P (Pattern.Fixed op, _) -> Some (Entangle_ir.Op.name op)
  | Pattern.P (Pattern.Family { family; _ }, _) -> Some family
  | Pattern.P (Pattern.Bound _, _) | Pattern.V _ | Pattern.C _ -> None

let run ?(limits = default_limits) ?hit_counter ?invariant_check g rules =
  let counter =
    match hit_counter with Some c -> c | None -> Hashtbl.create 16
  in
  let indexed = List.map (fun r -> (root_family r, r)) rules in
  let rec go iter =
    if
      iter >= limits.max_iterations
      || Egraph.num_nodes g > limits.max_nodes
      || Egraph.num_classes g > limits.max_classes
    then
      { iterations = iter; saturated = false;
        nodes = Egraph.num_nodes g; classes = Egraph.num_classes g }
    else begin
      (* Index the classes by the operator families they contain. *)
      let by_family : (string, Id.t list ref) Hashtbl.t = Hashtbl.create 64 in
      let all_classes = Egraph.class_ids g in
      List.iter
        (fun cls ->
          let seen = Hashtbl.create 8 in
          List.iter
            (fun n ->
              match Enode.sym n with
              | Enode.Op op ->
                  let fam = Entangle_ir.Op.name op in
                  if not (Hashtbl.mem seen fam) then begin
                    Hashtbl.replace seen fam ();
                    match Hashtbl.find_opt by_family fam with
                    | Some l -> l := cls :: !l
                    | None -> Hashtbl.replace by_family fam (ref [ cls ])
                  end
              | Enode.Leaf _ -> ())
            (Egraph.nodes_of g cls))
        all_classes;
      let candidates = function
        | None -> all_classes
        | Some fam -> (
            match Hashtbl.find_opt by_family fam with
            | Some l -> !l
            | None -> [])
      in
      (* Rules are processed one at a time: matches for a rule are
         collected against the current e-graph and applied before the
         next rule is matched. Holding every rule's matches at once (as
         a literal reading of egg's iteration would) retains
         multiplicatively many substitutions on large classes. A
         per-rule cap bounds the pathological cases; the runner simply
         takes another iteration to finish the work. *)
      let max_matches_per_rule = 20_000 in
      let total_matches = ref 0 in
      (* Collect a rule's matches class by class, stopping once the cap
         is reached so pathological classes cannot materialize millions
         of substitutions. *)
      let collect rule classes =
        let acc = ref [] and count = ref 0 in
        (try
           List.iter
             (fun cls ->
               if !count >= max_matches_per_rule then raise Exit;
               List.iter
                 (fun s ->
                   if !count < max_matches_per_rule then begin
                     acc := (cls, s) :: !acc;
                     incr count
                   end)
                 (Ematch.match_class g rule.Rule.lhs cls))
             classes
         with Exit -> ());
        !acc
      in
      let total_hits =
        List.fold_left
          (fun acc (fam, rule) ->
            let ms = collect rule (candidates fam) in
            total_matches := !total_matches + List.length ms;
            let hits = apply_bounded ~limits rule g ms in
            bump counter rule.Rule.name hits;
            acc + hits)
          0 indexed
      in
      let total_matches = !total_matches in
      Egraph.rebuild g;
      (match invariant_check with Some f -> f g | None -> ());
      Log.debug (fun m ->
          m "iteration %d: %d matches, %d unions, %d nodes, %d classes" iter
            total_matches total_hits (Egraph.num_nodes g)
            (Egraph.num_classes g));
      let over_budget =
        Egraph.num_nodes g > limits.max_nodes
        || Egraph.num_classes g > limits.max_classes
      in
      if total_hits = 0 then
        (* No unions: a genuine fixpoint unless application was cut
           short by the node budget. *)
        { iterations = iter + 1; saturated = not over_budget;
          nodes = Egraph.num_nodes g; classes = Egraph.num_classes g }
      else go (iter + 1)
    end
  in
  go 0
