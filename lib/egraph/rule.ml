type applier =
  | Syntactic of Pattern.t
  | Conditional of
      (Egraph.t -> Id.t -> Subst.t -> (Pattern.t * Pattern.t) list)

type t = {
  name : string;
  lhs : Pattern.t;
  applier : applier;
  constrained : bool;
  nonlocal : bool;
}

let make ?(constrained = false) ?(nonlocal = false) name lhs rhs =
  { name; lhs; applier = Syntactic rhs; constrained; nonlocal }

let make_dyn ?(constrained = false) ?(nonlocal = false) name lhs f =
  { name; lhs; applier = Conditional f; constrained; nonlocal }

let rewrite_to ?constrained ?nonlocal name lhs f =
  let applier g root subst =
    match f g root subst with
    | Some rhs -> [ (Pattern.c root, rhs) ]
    | None -> []
  in
  make_dyn ?constrained ?nonlocal name lhs applier

let apply_matches rule g matches =
  let mode = if rule.constrained then Ematch.Check_only else Ematch.Insert in
  let hits = ref 0 in
  List.iter
    (fun (cls, subst) ->
      let equations =
        match rule.applier with
        | Syntactic rhs -> [ (Pattern.c cls, rhs) ]
        | Conditional f -> f g cls subst
      in
      List.iter
        (fun (lhs, rhs) ->
          match
            ( Ematch.instantiate ~mode g subst lhs,
              Ematch.instantiate ~mode g subst rhs )
          with
          | Some a, Some b -> if Egraph.union g a b then incr hits
          | _ -> ())
        equations)
    matches;
  !hits
