open Entangle_symbolic
open Entangle_ir

type eclass = {
  (* Each node is paired with the generation at which it joined this
     class: its creation for original members, the merge generation for
     nodes absorbed from a losing class. Delta e-matching uses the
     stamp to skip root nodes whose substitutions were all collected at
     a previous search. *)
  mutable nodes : (Enode.t * int) list;
  mutable parents : (Enode.t * Id.t) list;
  mutable shape : Shape.t option;
  mutable modified_at : int;
  (* Generation of the last change to the class's own node set (class
     creation or a union merging another class's nodes in), as opposed
     to [modified_at] which is also bumped by dirtiness propagated up
     from descendants. Delta e-matching keys on this stamp: a
     substitution is new only if its derivation crosses a class whose
     node set changed. *)
  mutable structural_at : int;
  (* Generation of the last change to [shape]. Only merges (and class
     creation) can change a shape, so [shape_at <= structural_at]. *)
  mutable shape_at : int;
}

type t = {
  uf : Union_find.t;
  memo : Id.t Enode.Tbl.t;
  classes : eclass Id.Tbl.t;
  leaves : (int, Id.t) Hashtbl.t;  (* Tensor.id -> class *)
  mutable pending : Id.t list;
  constrs : Constraint_store.t;
  (* Incremental-matching support: a monotonically increasing
     modification counter; every structural change stamps the touched
     class with a fresh value, so the runner can re-match only classes
     dirtied since a rule's last search. *)
  mutable generation : int;
  (* Cached node count, mirroring [fold List.length classes] exactly
     (duplicates introduced by unions are counted until [rebuild]
     deduplicates them). *)
  mutable n_nodes : int;
  (* Operator family -> classes containing a node of that family,
     maintained incrementally on add/union. Entries may go stale when a
     class is absorbed by a union; queries canonicalize lazily and
     compact the set. A class never *loses* a family, so entries are
     never false after canonicalization. *)
  families : (string, unit Id.Tbl.t) Hashtbl.t;
  (* Unions that merged two classes whose shape analyses disagree; kept
     for the invariant checker (EGRAPH007) instead of silently dropping
     the loser's shape. *)
  mutable shape_conflicts : (Id.t * Shape.t * Shape.t) list;
}

let create ?(constraints = Constraint_store.empty) () =
  {
    uf = Union_find.create ();
    memo = Enode.Tbl.create 256;
    classes = Id.Tbl.create 256;
    leaves = Hashtbl.create 64;
    pending = [];
    constrs = constraints;
    generation = 0;
    n_nodes = 0;
    families = Hashtbl.create 64;
    shape_conflicts = [];
  }

let constraints t = t.constrs
let find t id = Union_find.find t.uf id

let canonicalize t n = Enode.map_children (find t) n

let eclass_of t id =
  match Id.Tbl.find_opt t.classes (find t id) with
  | Some c -> c
  | None -> invalid_arg "Egraph: unknown class id"

let touch t cls =
  t.generation <- t.generation + 1;
  cls.modified_at <- t.generation

(* For changes to the class's own node set; implies [touch]. *)
let touch_structural t cls =
  touch t cls;
  cls.structural_at <- cls.modified_at

let generation t = t.generation
let modified_at t id = (eclass_of t id).modified_at
let structural_at t id = (eclass_of t id).structural_at
let shape_at t id = (eclass_of t id).shape_at

let classes_modified_since t gen =
  Id.Tbl.fold
    (fun id c acc -> if c.modified_at > gen then id :: acc else acc)
    t.classes []

let family_add t fam id =
  match Hashtbl.find_opt t.families fam with
  | Some set -> Id.Tbl.replace set id ()
  | None ->
      let set = Id.Tbl.create 8 in
      Id.Tbl.replace set id ();
      Hashtbl.replace t.families fam set

let classes_with_family t fam =
  match Hashtbl.find_opt t.families fam with
  | None -> []
  | Some set ->
      let canon = Id.Tbl.create (Id.Tbl.length set) in
      Id.Tbl.iter
        (fun id () ->
          let root = find t id in
          if Id.Tbl.mem t.classes root then Id.Tbl.replace canon root ())
        set;
      (* Compact away absorbed ids so stale entries are paid for once. *)
      if Id.Tbl.length canon <> Id.Tbl.length set then begin
        Id.Tbl.reset set;
        Id.Tbl.iter (fun id () -> Id.Tbl.replace set id ()) canon
      end;
      Id.Tbl.fold (fun id () acc -> id :: acc) canon []

let infer_shape t (n : Enode.t) =
  match Enode.sym n with
  | Enode.Leaf tensor -> Some (Tensor.shape tensor)
  | Enode.Op op -> (
      let child_shapes =
        List.map (fun c -> (eclass_of t c).shape) (Enode.children n)
      in
      if List.exists Option.is_none child_shapes then None
      else
        let shapes = List.map Option.get child_shapes in
        match Op.infer_shape t.constrs op shapes with
        | Ok s -> Some s
        | Error _ -> None)

let lookup t n =
  let n = canonicalize t n in
  Option.map (find t) (Enode.Tbl.find_opt t.memo n)

let add t n =
  let n = canonicalize t n in
  match Enode.Tbl.find_opt t.memo n with
  | Some id -> find t id
  | None ->
      let id = Union_find.fresh t.uf in
      let cls =
        {
          nodes = [];
          parents = [];
          shape = None;
          modified_at = 0;
          structural_at = 0;
          shape_at = 0;
        }
      in
      Id.Tbl.replace t.classes id cls;
      touch_structural t cls;
      cls.nodes <- [ (n, t.generation) ];
      cls.shape_at <- t.generation;
      t.n_nodes <- t.n_nodes + 1;
      List.iter
        (fun child ->
          let c = eclass_of t child in
          c.parents <- (n, id) :: c.parents)
        (Enode.children n);
      Enode.Tbl.replace t.memo n id;
      cls.shape <- infer_shape t n;
      (match Enode.sym n with
      | Enode.Leaf tensor -> Hashtbl.replace t.leaves (Tensor.id tensor :> int) id
      | Enode.Op op -> family_add t (Op.name op) id);
      id

let add_leaf t tensor = add t (Enode.leaf tensor)
let add_op t op children = add t (Enode.op op children)

let rec add_expr t = function
  | Expr.Leaf tensor -> add_leaf t tensor
  | Expr.App (op, args) -> add_op t op (List.map (add_expr t) args)

let leaf_id t tensor =
  Option.map (find t) (Hashtbl.find_opt t.leaves (Tensor.id tensor :> int))

let equiv t a b = Id.equal (find t a) (find t b)

let union t a b =
  let fa = find t a and fb = find t b in
  if Id.equal fa fb then false
  else begin
    let ca = eclass_of t fa and cb = eclass_of t fb in
    let root = Union_find.union t.uf fa fb in
    let winner, loser_id, loser =
      if Id.equal root fa then (ca, fb, cb) else (cb, fa, ca)
    in
    touch_structural t winner;
    (* The loser's op families now belong to the merged class. Its
       nodes keep their join stamps: a substitution rooted at the
       merged class through an absorbed node was already collected when
       the rule searched the losing class (and its application outcome
       is unchanged — the two roots are now equal), while substitutions
       that reach the absorbed nodes from an ancestor descend through
       this class and see its fresh [structural_at]. *)
    List.iter
      (fun (n, _) ->
        match Enode.sym n with
        | Enode.Op op -> family_add t (Op.name op) root
        | Enode.Leaf _ -> ())
      loser.nodes;
    winner.nodes <- List.rev_append loser.nodes winner.nodes;
    winner.parents <- List.rev_append loser.parents winner.parents;
    (match (winner.shape, loser.shape) with
    | None, Some s ->
        winner.shape <- Some s;
        winner.shape_at <- t.generation
    | Some a, Some b when not (Shape.equal t.constrs a b) ->
        (* Both sides carry a shape and they disagree: keep the winner's
           (historical behavior) but record the conflict so the
           invariant checker can surface it (EGRAPH007). *)
        t.shape_conflicts <- (root, a, b) :: t.shape_conflicts
    | _ -> ());
    Id.Tbl.remove t.classes loser_id;
    t.pending <- root :: t.pending;
    true
  end

(* Mark every class transitively reachable from [roots] through parent
   edges as modified: a union deep inside a term can create new matches
   for patterns rooted at any ancestor class, so the dirty set the
   incremental runner consumes must include them. *)
let propagate_dirty t roots =
  let visited = ref Id.Set.empty in
  let stack = ref (Id.Set.elements roots) in
  let push id = stack := id :: !stack in
  let rec drain () =
    match !stack with
    | [] -> ()
    | id :: rest ->
        stack := rest;
        let id = find t id in
        if not (Id.Set.mem id !visited) then begin
          visited := Id.Set.add id !visited;
          match Id.Tbl.find_opt t.classes id with
          | None -> ()
          | Some cls ->
              touch t cls;
              List.iter (fun (_, pid) -> push pid) cls.parents
        end;
        drain ()
  in
  drain ()

(* Fault-injection site for the resilience tests: armed via
   ENTANGLE_FAILPOINTS / --failpoints, a no-op branch otherwise. *)
let fp_rebuild =
  Entangle_failpoint.Failpoint.declare "egraph.rebuild"
    ~doc:"start of Egraph.rebuild (congruence restoration)"

let rebuild t =
  Entangle_failpoint.Failpoint.hit fp_rebuild;
  let dirty_roots = ref Id.Set.empty in
  let rec go () =
    match t.pending with
    | [] -> ()
    | pending ->
        t.pending <- [];
        let seen = ref Id.Set.empty in
        List.iter
          (fun id ->
            let root = find t id in
            dirty_roots := Id.Set.add root !dirty_roots;
            if not (Id.Set.mem root !seen) then begin
              seen := Id.Set.add root !seen;
              let cls = eclass_of t root in
              (* Re-canonicalize parents, merging congruent ones. *)
              let parents = cls.parents in
              cls.parents <- [];
              let fresh = Hashtbl.create (List.length parents) in
              List.iter
                (fun (pnode, pid) ->
                  Enode.Tbl.remove t.memo pnode;
                  let pnode = canonicalize t pnode in
                  let pid = find t pid in
                  (match Enode.Tbl.find_opt t.memo pnode with
                  | Some other -> ignore (union t pid other)
                  | None -> Enode.Tbl.replace t.memo pnode pid);
                  let key = Enode.hash pnode in
                  if not (Hashtbl.mem fresh (key, pnode)) then begin
                    Hashtbl.replace fresh (key, pnode) ();
                    let cls = eclass_of t root in
                    cls.parents <- (pnode, find t pid) :: cls.parents
                  end)
                parents;
              (* Deduplicate and re-canonicalize the class's own nodes.
                 Duplicates keep the oldest stamp: if any copy predates a
                 rule's last search, its substitutions were already
                 collected then. *)
              let cls = eclass_of t root in
              let before = List.length cls.nodes in
              let tbl = Enode.Tbl.create before in
              List.iter
                (fun (n, stamp) ->
                  let n = canonicalize t n in
                  match Enode.Tbl.find_opt tbl n with
                  | Some stamp' when stamp' <= stamp -> ()
                  | _ -> Enode.Tbl.replace tbl n stamp)
                cls.nodes;
              cls.nodes <-
                Enode.Tbl.fold (fun n stamp acc -> (n, stamp) :: acc) tbl [];
              t.n_nodes <- t.n_nodes + Enode.Tbl.length tbl - before
            end)
          pending;
        go ()
  in
  go ();
  if not (Id.Set.is_empty !dirty_roots) then propagate_dirty t !dirty_roots

let nodes_of t id =
  List.map (fun (n, _) -> canonicalize t n) (eclass_of t id).nodes

let nodes_with_stamps t id =
  List.map (fun (n, stamp) -> (canonicalize t n, stamp)) (eclass_of t id).nodes
let shape_of t id = (eclass_of t id).shape
let class_ids t = Id.Tbl.fold (fun id _ acc -> id :: acc) t.classes []
let num_classes t = Id.Tbl.length t.classes
let num_nodes t = t.n_nodes

let reachable t roots =
  let visited = ref Id.Set.empty in
  let rec visit id =
    let id = find t id in
    if not (Id.Set.mem id !visited) then begin
      visited := Id.Set.add id !visited;
      List.iter
        (fun n -> List.iter visit (Enode.children n))
        (nodes_of t id)
    end
  in
  List.iter visit roots;
  !visited

let contains_leaf t id pred =
  List.exists
    (fun n ->
      match Enode.sym n with
      | Enode.Leaf tensor -> pred tensor
      | Enode.Op _ -> false)
    (nodes_of t id)

let iter_nodes t f =
  Id.Tbl.iter
    (fun id cls ->
      List.iter (fun (n, _) -> f id (canonicalize t n)) cls.nodes)
    t.classes

module Debug = struct
  let memo_entries t = Enode.Tbl.fold (fun n id acc -> (n, id) :: acc) t.memo []
  let pending_count t = List.length t.pending
  let uf_size t = Union_find.size t.uf
  let uf_check_acyclic t = Union_find.check_acyclic t.uf

  let recompute_num_nodes t =
    Id.Tbl.fold (fun _ c acc -> acc + List.length c.nodes) t.classes 0

  let family_entries t =
    Hashtbl.fold
      (fun fam set acc ->
        (fam, Id.Tbl.fold (fun id () ids -> id :: ids) set []) :: acc)
      t.families []

  let shape_conflicts t = t.shape_conflicts
end

let pp ppf t =
  Id.Tbl.iter
    (fun id cls ->
      Fmt.pf ppf "@[<h>class %a:%a %a@]@."
        Id.pp id
        Fmt.(option (any ":" ++ Shape.pp))
        cls.shape
        (Fmt.list ~sep:(Fmt.any " | ") Enode.pp)
        (List.map fst cls.nodes))
    t.classes
