open Entangle_symbolic
open Entangle_ir

type eclass = {
  mutable nodes : Enode.t list;
  mutable parents : (Enode.t * Id.t) list;
  mutable shape : Shape.t option;
}

type t = {
  uf : Union_find.t;
  memo : Id.t Enode.Tbl.t;
  classes : eclass Id.Tbl.t;
  leaves : (int, Id.t) Hashtbl.t;  (* Tensor.id -> class *)
  mutable pending : Id.t list;
  constrs : Constraint_store.t;
}

let create ?(constraints = Constraint_store.empty) () =
  {
    uf = Union_find.create ();
    memo = Enode.Tbl.create 256;
    classes = Id.Tbl.create 256;
    leaves = Hashtbl.create 64;
    pending = [];
    constrs = constraints;
  }

let constraints t = t.constrs
let find t id = Union_find.find t.uf id

let canonicalize t n = Enode.map_children (find t) n

let eclass_of t id =
  match Id.Tbl.find_opt t.classes (find t id) with
  | Some c -> c
  | None -> invalid_arg "Egraph: unknown class id"

let infer_shape t (n : Enode.t) =
  match Enode.sym n with
  | Enode.Leaf tensor -> Some (Tensor.shape tensor)
  | Enode.Op op -> (
      let child_shapes =
        List.map (fun c -> (eclass_of t c).shape) (Enode.children n)
      in
      if List.exists Option.is_none child_shapes then None
      else
        let shapes = List.map Option.get child_shapes in
        match Op.infer_shape t.constrs op shapes with
        | Ok s -> Some s
        | Error _ -> None)

let lookup t n =
  let n = canonicalize t n in
  Option.map (find t) (Enode.Tbl.find_opt t.memo n)

let add t n =
  let n = canonicalize t n in
  match Enode.Tbl.find_opt t.memo n with
  | Some id -> find t id
  | None ->
      let id = Union_find.fresh t.uf in
      let cls = { nodes = [ n ]; parents = []; shape = None } in
      Id.Tbl.replace t.classes id cls;
      List.iter
        (fun child ->
          let c = eclass_of t child in
          c.parents <- (n, id) :: c.parents)
        (Enode.children n);
      Enode.Tbl.replace t.memo n id;
      cls.shape <- infer_shape t n;
      (match Enode.sym n with
      | Enode.Leaf tensor -> Hashtbl.replace t.leaves (Tensor.id tensor :> int) id
      | Enode.Op _ -> ());
      id

let add_leaf t tensor = add t (Enode.leaf tensor)
let add_op t op children = add t (Enode.op op children)

let rec add_expr t = function
  | Expr.Leaf tensor -> add_leaf t tensor
  | Expr.App (op, args) -> add_op t op (List.map (add_expr t) args)

let leaf_id t tensor =
  Option.map (find t) (Hashtbl.find_opt t.leaves (Tensor.id tensor :> int))

let equiv t a b = Id.equal (find t a) (find t b)

let union t a b =
  let fa = find t a and fb = find t b in
  if Id.equal fa fb then false
  else begin
    let ca = eclass_of t fa and cb = eclass_of t fb in
    let root = Union_find.union t.uf fa fb in
    let winner, loser_id, loser =
      if Id.equal root fa then (ca, fb, cb) else (cb, fa, ca)
    in
    winner.nodes <- List.rev_append loser.nodes winner.nodes;
    winner.parents <- List.rev_append loser.parents winner.parents;
    (match (winner.shape, loser.shape) with
    | None, Some s -> winner.shape <- Some s
    | _ -> ());
    Id.Tbl.remove t.classes loser_id;
    t.pending <- root :: t.pending;
    true
  end

let rebuild t =
  let rec go () =
    match t.pending with
    | [] -> ()
    | pending ->
        t.pending <- [];
        let seen = ref Id.Set.empty in
        List.iter
          (fun id ->
            let root = find t id in
            if not (Id.Set.mem root !seen) then begin
              seen := Id.Set.add root !seen;
              let cls = eclass_of t root in
              (* Re-canonicalize parents, merging congruent ones. *)
              let parents = cls.parents in
              cls.parents <- [];
              let fresh = Hashtbl.create (List.length parents) in
              List.iter
                (fun (pnode, pid) ->
                  Enode.Tbl.remove t.memo pnode;
                  let pnode = canonicalize t pnode in
                  let pid = find t pid in
                  (match Enode.Tbl.find_opt t.memo pnode with
                  | Some other -> ignore (union t pid other)
                  | None -> Enode.Tbl.replace t.memo pnode pid);
                  let key = Enode.hash pnode in
                  if not (Hashtbl.mem fresh (key, pnode)) then begin
                    Hashtbl.replace fresh (key, pnode) ();
                    let cls = eclass_of t root in
                    cls.parents <- (pnode, find t pid) :: cls.parents
                  end)
                parents;
              (* Deduplicate and re-canonicalize the class's own nodes. *)
              let cls = eclass_of t root in
              let tbl = Enode.Tbl.create (List.length cls.nodes) in
              List.iter
                (fun n -> Enode.Tbl.replace tbl (canonicalize t n) ())
                cls.nodes;
              cls.nodes <- Enode.Tbl.fold (fun n () acc -> n :: acc) tbl []
            end)
          pending;
        go ()
  in
  go ()

let nodes_of t id = List.map (canonicalize t) (eclass_of t id).nodes
let shape_of t id = (eclass_of t id).shape
let class_ids t = Id.Tbl.fold (fun id _ acc -> id :: acc) t.classes []
let num_classes t = Id.Tbl.length t.classes

let num_nodes t =
  Id.Tbl.fold (fun _ c acc -> acc + List.length c.nodes) t.classes 0

let reachable t roots =
  let visited = ref Id.Set.empty in
  let rec visit id =
    let id = find t id in
    if not (Id.Set.mem id !visited) then begin
      visited := Id.Set.add id !visited;
      List.iter
        (fun n -> List.iter visit (Enode.children n))
        (nodes_of t id)
    end
  in
  List.iter visit roots;
  !visited

let contains_leaf t id pred =
  List.exists
    (fun n ->
      match Enode.sym n with
      | Enode.Leaf tensor -> pred tensor
      | Enode.Op _ -> false)
    (nodes_of t id)

let iter_nodes t f =
  Id.Tbl.iter
    (fun id cls ->
      List.iter (fun n -> f id (canonicalize t n)) cls.nodes)
    t.classes

module Debug = struct
  let memo_entries t = Enode.Tbl.fold (fun n id acc -> (n, id) :: acc) t.memo []
  let pending_count t = List.length t.pending
  let uf_size t = Union_find.size t.uf
  let uf_check_acyclic t = Union_find.check_acyclic t.uf
end

let pp ppf t =
  Id.Tbl.iter
    (fun id cls ->
      Fmt.pf ppf "@[<h>class %a:%a %a@]@."
        Id.pp id
        Fmt.(option (any ":" ++ Shape.pp))
        cls.shape
        (Fmt.list ~sep:(Fmt.any " | ") Enode.pp)
        cls.nodes)
    t.classes
