(* Chase–Lev dynamic circular work-stealing deque on OCaml 5 atomics.

   [top] only ever increases (steals and the owner's last-element pop
   advance it); [bottom] is owner-written. Both are Atomic.t — OCaml's
   sequentially-consistent atomics are stronger than the fences of the
   original paper, which keeps the invariants easy to state:

     - elements live at indices [top, bottom);
     - a slot is never overwritten while any thief may still read it:
       [push] writes at [bottom] which no thief reads (steals read
       below [bottom]), and growth copies to a fresh buffer, so a
       thief racing a grow reads a stale-but-correct element and its
       CAS on [top] decides ownership;
     - exactly one party wins each element: thieves and the
       last-element [pop] race through CAS on [top]. *)

type 'a buffer = { mask : int; slots : 'a Option.t array }

type 'a t = {
  top : int Atomic.t;
  bottom : int Atomic.t;
  mutable buf : 'a buffer;  (* owner-written; racy reads are safe *)
}

let buffer capacity =
  (* power of two so index wrap is a mask *)
  let rec pow2 n = if n >= capacity then n else pow2 (n * 2) in
  let cap = pow2 16 in
  { mask = cap - 1; slots = Array.make cap None }

let create ?(capacity = 16) () =
  { top = Atomic.make 0; bottom = Atomic.make 0; buf = buffer capacity }

let size t = max 0 (Atomic.get t.bottom - Atomic.get t.top)

let get buf i = buf.slots.(i land buf.mask)
let set buf i v = buf.slots.(i land buf.mask) <- v

let grow t ~top ~bottom =
  let old = t.buf in
  let fresh = buffer ((old.mask + 1) * 2) in
  for i = top to bottom - 1 do
    set fresh i (get old i)
  done;
  t.buf <- fresh

let push t v =
  let b = Atomic.get t.bottom in
  let tp = Atomic.get t.top in
  if b - tp > t.buf.mask then grow t ~top:tp ~bottom:b;
  set t.buf b (Some v);
  Atomic.set t.bottom (b + 1)

let pop t =
  let b = Atomic.get t.bottom - 1 in
  (* Publish the claim on slot [b] before re-reading [top]: a thief
     that reads the lowered bottom backs off this slot. *)
  Atomic.set t.bottom b;
  let tp = Atomic.get t.top in
  if tp > b then begin
    (* Empty: undo the claim. *)
    Atomic.set t.bottom tp;
    None
  end
  else
    let v = get t.buf b in
    if tp < b then begin
      (* More than one element: the slot is unambiguously ours. *)
      set t.buf b None;
      v
    end
    else begin
      (* Last element: race any thief for it via [top]. *)
      let won = Atomic.compare_and_set t.top tp (tp + 1) in
      Atomic.set t.bottom (tp + 1);
      if won then begin
        set t.buf b None;
        v
      end
      else None
    end

let steal t =
  let tp = Atomic.get t.top in
  let b = Atomic.get t.bottom in
  if tp >= b then `Empty
  else
    (* Read the element before the CAS: a successful CAS on [top]
       makes the read retroactively ours (the owner cannot have
       overwritten it — pushes only touch [bottom]-side slots, and
       growth copies, never reuses, live slots). *)
    match get t.buf tp with
    | None -> `Retry (* racing a concurrent claim; slot already cleared *)
    | Some v -> if Atomic.compare_and_set t.top tp (tp + 1) then `Stolen v else `Retry
