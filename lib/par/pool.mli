(** A fixed-size pool of OCaml 5 domains with per-domain work-stealing.

    The pool is created once per [Refine.check] (domains are ~50 µs to
    spawn but a check schedules many wavefront batches, so workers
    persist across batches and park on a condition variable between
    them). A pool of size [n] spawns [n - 1] worker domains; the
    calling domain is the [n]-th participant — it distributes a
    batch's tasks round-robin over every participant's {!Deque},
    wakes the workers, then works its own deque and steals alongside
    them until the batch drains.

    {b Determinism contract}: [run] returns results positionally — the
    caller learns nothing about which domain executed which task or in
    what order. Any scheduling nondeterminism is confined to the
    execution interleaving; callers that need deterministic {e output}
    (the checker does) must make each task a pure function of its
    inputs and merge results by index, which is exactly what
    [Refine]'s wavefront join does.

    Exceptions raised by a task are caught on the executing domain and
    re-raised (with the original backtrace) from {!run} on the calling
    domain, after every other task of the batch has finished — a batch
    is never abandoned half-executed. If several tasks raise, the
    lowest-indexed exception wins. *)

type t

val create : size:int -> t
(** A pool of [size] total participants ([size - 1] spawned domains;
    values below 2 spawn nothing and make {!run} purely sequential).
    Sizes beyond [8 * Domain.recommended_domain_count ()] are clamped —
    oversubscribing domains (which are OS threads with their own minor
    heaps) that far only adds scheduling noise. *)

val size : t -> int
(** The number of participants, after clamping; at least 1. *)

val run : t -> (int -> 'a) -> int -> 'a array
(** [run pool f n] evaluates [f 0 .. f (n-1)], in parallel across the
    pool's participants, and returns the results in index order.
    Must be called from the domain that created the pool, and never
    reentrantly (the checker's wavefront loop is the only caller). *)

val shutdown : t -> unit
(** Terminate and join the worker domains. Idempotent. The pool must
    not be used afterwards. *)

val with_pool : size:int -> (t -> 'a) -> 'a
(** [with_pool ~size f] runs [f] over a fresh pool and shuts it down
    afterwards, whether [f] returns or raises. *)
