(** Chase–Lev work-stealing deques.

    One deque per domain: the owning domain pushes and pops at the
    bottom (LIFO, cache-friendly for nested work), thieves steal from
    the top (FIFO, so the oldest — typically largest — task migrates).
    The implementation is the classic Chase–Lev dynamic circular
    deque [Dynamic Circular Work-Stealing Deque, SPAA'05] on OCaml 5
    [Atomic]s: {!push} and {!pop} are owner-only and almost always
    uncontended; {!steal} is linearizable against both the owner's
    {!pop} of the last element and competing thieves via a single
    compare-and-set on [top].

    The checker's tasks are coarse (one operator search each, typically
    milliseconds), so the deque is nowhere near its throughput limits —
    it exists so that a wavefront whose operators have very uneven
    saturation costs still load-balances: a domain that drains its own
    run queue steals the oldest pending operator from a loaded peer
    instead of idling at the join. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
(** An empty deque. [capacity] (default 16, rounded up to a power of
    two) is only a hint: the circular buffer grows when the owner
    outruns it. *)

val push : 'a t -> 'a -> unit
(** Owner only: add at the bottom. Amortized O(1); grows the buffer
    when full. *)

val pop : 'a t -> 'a option
(** Owner only: take the most recently pushed element, or [None] when
    the deque is empty (including when a thief won the race for the
    last element). *)

val steal : 'a t -> [ `Stolen of 'a | `Empty | `Retry ]
(** Any domain: take the {e oldest} element. [`Retry] means another
    thief (or the owner, on the last element) won a race and the caller
    should try again or move on to another victim. *)

val size : 'a t -> int
(** A racy snapshot of the number of elements; exact when quiescent. *)
