type task = unit -> unit

type t = {
  size : int;
  deques : task Deque.t array;  (* participant i's run queue; 0 = caller *)
  remaining : int Atomic.t;  (* uncompleted tasks of the current batch *)
  lock : Mutex.t;
  wake : Condition.t;
  mutable generation : int;  (* batch counter; guarded by [lock] *)
  mutable stop : bool;  (* guarded by [lock] *)
  mutable workers : unit Domain.t list;
}

(* One scheduling round for participant [i]: drain the own deque
   (LIFO), then sweep the other deques for steals (FIFO), until the
   batch's completion counter hits zero. Tasks are coarse — one
   operator search each — so the idle path backs off quickly from
   spinning to a short sleep instead of burning a core next to the
   last running task. *)
let participate t i =
  let run_task task =
    task ();
    Atomic.decr t.remaining
  in
  let rec own () =
    match Deque.pop t.deques.(i) with
    | Some task ->
        run_task task;
        own ()
    | None -> idle 0
  and sweep j =
    if j >= t.size then false
    else
      match Deque.steal t.deques.((i + 1 + j) mod t.size) with
      | `Stolen task ->
          run_task task;
          true
      | `Retry | `Empty -> sweep (j + 1)
  and idle tries =
    if Atomic.get t.remaining = 0 then ()
    else if sweep 0 then own ()
    else begin
      if tries < 64 then Domain.cpu_relax () else Unix.sleepf 100e-6;
      idle (tries + 1)
    end
  in
  own ()

let create ~size =
  let cap = 8 * Domain.recommended_domain_count () in
  let size = max 1 (min size cap) in
  let t =
    {
      size;
      deques = Array.init size (fun _ -> Deque.create ());
      remaining = Atomic.make 0;
      lock = Mutex.create ();
      wake = Condition.create ();
      generation = 0;
      stop = false;
      workers = [];
    }
  in
  t.workers <-
    List.init (size - 1) (fun i ->
        let slot = i + 1 in
        Domain.spawn (fun () ->
            let rec loop last_gen =
              Mutex.lock t.lock;
              while t.generation = last_gen && not t.stop do
                Condition.wait t.wake t.lock
              done;
              let gen = t.generation and stop = t.stop in
              Mutex.unlock t.lock;
              if not stop then begin
                participate t slot;
                loop gen
              end
            in
            loop 0));
  t

let size t = t.size

type 'a slot = Pending | Done of 'a | Raised of exn * Printexc.raw_backtrace

let run t f n =
  if n = 0 then [||]
  else if n = 1 then
    (* Nothing to distribute: run on the calling domain without waking
       the pool. A raise propagates directly — identical to the batch
       path, whose lowest-indexed (only) exception would be re-raised. *)
    [| f 0 |]
  else begin
    let results = Array.make n Pending in
    let wrap i () =
      match f i with
      | v -> results.(i) <- Done v
      | exception e -> results.(i) <- Raised (e, Printexc.get_raw_backtrace ())
    in
    Atomic.set t.remaining n;
    (* Round-robin distribution before the wake-up: workers that race
       ahead (a straggler from the previous batch still sweeping) can
       only ever steal real tasks. *)
    for i = 0 to n - 1 do
      Deque.push t.deques.(i mod t.size) (wrap i)
    done;
    Mutex.lock t.lock;
    t.generation <- t.generation + 1;
    Condition.broadcast t.wake;
    Mutex.unlock t.lock;
    participate t 0;
    (* Workers may still be executing stolen tasks; completion is the
       counter, not our own idleness. *)
    while Atomic.get t.remaining > 0 do
      Domain.cpu_relax ()
    done;
    (* The lowest-indexed exception of the batch wins, as documented. *)
    Array.iter
      (function
        | Raised (e, bt) -> Printexc.raise_with_backtrace e bt
        | Done _ -> ()
        | Pending -> assert false)
      results;
    Array.map
      (function Done v -> v | Pending | Raised _ -> assert false)
      results
  end

let shutdown t =
  Mutex.lock t.lock;
  t.stop <- true;
  Condition.broadcast t.wake;
  Mutex.unlock t.lock;
  List.iter Domain.join t.workers;
  t.workers <- []

let with_pool ~size f =
  let t = create ~size in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
