(** Named failpoints: deterministic fault injection for the resilience
    guarantees of the refinement pipeline.

    A failpoint is a named site in a hot path ([Egraph.rebuild], the
    e-matcher, the symbolic decision procedure, extraction) that can be
    armed to raise {!Injected} on a chosen hit. The checker promises
    that no exception escapes [Refine.check]; failpoints make that
    promise {e testable}: arm one, run any model, and the checker must
    still return a structured verdict ([Internal], with the failing
    operator localized).

    {b Cost when disarmed}: [hit] is one field load and one branch —
    failpoints stay compiled into production builds.

    {b Activation} is by specification string, either programmatically
    ({!activate_spec}), through the [ENTANGLE_FAILPOINTS] environment
    variable (parsed at library load), or via the CLI's [--failpoints]:

    {v spec    ::= entry ("," entry)*
entry   ::= name "=" trigger
trigger ::= "nth:" N        fire exactly on the Nth hit (1-based)
          | "every:" K      fire on every Kth hit
          | "prob:" P["@"S] fire with probability P (seeded by S)
          | "off"           disarm v}

    Example: [egraph.rebuild=nth:3,symbolic.decide=prob:0.01@42].

    {b Domain safety}: counters are atomic and [prob] triggers draw
    from a per-domain stream seeded [S lxor domain-id] (the initial
    domain has id 0, so single-domain runs reproduce the exact
    pre-parallelism sequences). Under [-j N] the {e aggregate} hit
    count is exact, but which hit index a given domain observes
    depends on scheduling — so [nth]/[every] fire deterministically
    only in single-domain runs. *)

type trigger =
  | Nth of int  (** fire exactly on the nth hit, counting from 1 *)
  | Every of int  (** fire on every k-th hit *)
  | Prob of float * int  (** fire with probability [p], seeded *)

exception Injected of string
(** Raised by an armed failpoint; the payload is the failpoint name. *)

type t
(** A declared failpoint (a registry entry with hit counters). *)

val declare : ?doc:string -> string -> t
(** [declare name] registers (or retrieves) the failpoint [name].
    Libraries call this once at initialization and keep the handle for
    {!hit}. A pending trigger from a spec naming [name] before its
    declaration is armed on declaration. *)

val hit : t -> unit
(** Count one hit; raises {!Injected} when the armed trigger fires.
    No-op (one branch) when disarmed. *)

val guard : t -> (unit -> 'a) -> 'a
(** [guard fp f] is [hit fp; f ()]. *)

val set : string -> trigger -> unit
(** Arm one failpoint (pending if not yet declared); resets its
    counters. *)

val activate_spec : string -> (unit, string) result
(** Parse and apply a spec string (grammar above). Entries apply left
    to right; an [off] entry disarms. Returns a parse error without
    applying the offending entry. *)

val activate_from_env : unit -> (unit, string) result
(** Apply the [ENTANGLE_FAILPOINTS] spec, if the variable is set. Also
    run once at library load, so embedders need not call it. *)

val env_var : string

val clear : unit -> unit
(** Disarm every failpoint and drop pending triggers and counters. *)

val clear_one : string -> unit

val with_armed : string -> trigger -> (unit -> 'a) -> 'a
(** [with_armed name trigger f] arms [name], runs [f], and disarms
    [name] (resetting its counters) even when [f] raises — the scoped
    form chaos tests use so one scenario's trigger cannot leak into
    the next. *)

(** {1 Introspection} *)

val name : t -> string
val doc : t -> string
val hits : t -> int  (** hits since the failpoint was last armed *)

val fired : t -> int
(** injections raised since last armed *)

val armed : t -> bool

val catalog : unit -> t list
(** Every declared failpoint, sorted by name. *)

val names : unit -> string list
