type trigger =
  | Nth of int
  | Every of int
  | Prob of float * int

exception Injected of string

let () =
  Printexc.register_printer (function
    | Injected name -> Some ("injected fault (failpoint " ^ name ^ ")")
    | _ -> None)

(* [rng] is a DLS key, not a shared [Random.State.t]: each domain draws
   from its own stream, seeded [seed lxor domain-id], so a [Prob]
   failpoint is deterministic per (seed, domain) and free of data races.
   The initial domain has id 0 — [seed lxor 0 = seed] — so single-domain
   runs reproduce the pre-parallelism sequences exactly. Arming mints a
   fresh key, which resets every domain's stream at once. *)
type state = {
  trigger : trigger;
  rng : Random.State.t Domain.DLS.key option;  (* [Prob] only *)
}

type t = {
  name : string;
  doc : string;
  hits : int Atomic.t;
  fired : int Atomic.t;
  armed : state option Atomic.t;
}

(* Failpoints declare themselves at library-initialization time, so a
   spec can name a point that has not been declared yet (the CLI parses
   [--failpoints] before any checker library initializes nothing — but
   test harnesses activate specs between runs). Pending triggers are
   handed over on declaration. The registry mutex covers declaration and
   (re)arming only; [hit] never takes it. *)
let registry : (string, t) Hashtbl.t = Hashtbl.create 16
let pending : (string, trigger) Hashtbl.t = Hashtbl.create 16
let registry_lock = Mutex.create ()

let locked f =
  Mutex.lock registry_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_lock) f

let state_of name = function
  | Prob (_, seed) ->
      Some
        (Domain.DLS.new_key (fun () ->
             let d = (Domain.self () :> int) in
             Random.State.make [| seed lxor d; Hashtbl.hash name |]))
  | Nth _ | Every _ -> None

let arm fp trigger =
  Atomic.set fp.hits 0;
  Atomic.set fp.fired 0;
  Atomic.set fp.armed (Some { trigger; rng = state_of fp.name trigger })

let declare ?(doc = "") name =
  locked @@ fun () ->
  match Hashtbl.find_opt registry name with
  | Some fp -> fp
  | None ->
      let fp =
        {
          name;
          doc;
          hits = Atomic.make 0;
          fired = Atomic.make 0;
          armed = Atomic.make None;
        }
      in
      Hashtbl.replace registry name fp;
      (match Hashtbl.find_opt pending name with
      | Some trigger ->
          Hashtbl.remove pending name;
          arm fp trigger
      | None -> ());
      fp

let fire fp =
  Atomic.incr fp.fired;
  raise (Injected fp.name)

(* The hot-path guard: one load and one branch when the failpoint is
   disarmed, which is the production state. *)
let hit fp =
  match Atomic.get fp.armed with
  | None -> ()
  | Some st -> (
      let hits = Atomic.fetch_and_add fp.hits 1 + 1 in
      match st.trigger with
      | Nth n -> if hits = n then fire fp
      | Every k -> if k > 0 && hits mod k = 0 then fire fp
      | Prob (p, _) -> (
          match st.rng with
          | Some key ->
              if Random.State.float (Domain.DLS.get key) 1.0 < p then fire fp
          | None -> ()))

let guard fp f = hit fp; f ()

(* --- activation ------------------------------------------------------- *)

let set name trigger =
  locked @@ fun () ->
  match Hashtbl.find_opt registry name with
  | Some fp -> arm fp trigger
  | None -> Hashtbl.replace pending name trigger

let disarm fp =
  Atomic.set fp.armed None;
  Atomic.set fp.hits 0;
  Atomic.set fp.fired 0

let clear_one name =
  locked @@ fun () ->
  Hashtbl.remove pending name;
  match Hashtbl.find_opt registry name with
  | Some fp -> disarm fp
  | None -> ()

let clear () =
  locked @@ fun () ->
  Hashtbl.reset pending;
  Hashtbl.iter (fun _ fp -> disarm fp) registry

let with_armed name trigger f =
  set name trigger;
  Fun.protect ~finally:(fun () -> clear_one name) f

(* Spec grammar (documented in the interface):
     spec    ::= entry ("," entry)*
     entry   ::= name "=" trigger
     trigger ::= "nth:" N | "every:" K | "prob:" P [ "@" SEED ] | "off" *)
let parse_trigger s =
  let fail () = Error (Printf.sprintf "bad failpoint trigger %S" s) in
  match String.index_opt s ':' with
  | None -> if s = "off" then Ok None else fail ()
  | Some i -> (
      let kind = String.sub s 0 i in
      let arg = String.sub s (i + 1) (String.length s - i - 1) in
      match kind with
      | "nth" -> (
          match int_of_string_opt arg with
          | Some n when n >= 1 -> Ok (Some (Nth n))
          | _ -> fail ())
      | "every" -> (
          match int_of_string_opt arg with
          | Some k when k >= 1 -> Ok (Some (Every k))
          | _ -> fail ())
      | "prob" -> (
          let p, seed =
            match String.index_opt arg '@' with
            | None -> (arg, "0")
            | Some j ->
                ( String.sub arg 0 j,
                  String.sub arg (j + 1) (String.length arg - j - 1) )
          in
          match (float_of_string_opt p, int_of_string_opt seed) with
          | Some p, Some seed when p >= 0. && p <= 1. ->
              Ok (Some (Prob (p, seed)))
          | _ -> fail ())
      | _ -> fail ())

let activate_spec spec =
  let entries =
    String.split_on_char ',' spec
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  let rec go = function
    | [] -> Ok ()
    | entry :: rest -> (
        match String.index_opt entry '=' with
        | None -> Error (Printf.sprintf "bad failpoint entry %S (want name=trigger)" entry)
        | Some i -> (
            let name = String.sub entry 0 i in
            let rhs = String.sub entry (i + 1) (String.length entry - i - 1) in
            match parse_trigger rhs with
            | Error _ as e -> e
            | Ok None ->
                clear_one name;
                go rest
            | Ok (Some trigger) ->
                set name trigger;
                go rest))
  in
  go entries

let env_var = "ENTANGLE_FAILPOINTS"

let activate_from_env () =
  match Sys.getenv_opt env_var with
  | None | Some "" -> Ok ()
  | Some spec -> activate_spec spec

(* Libraries holding failpoints initialize lazily; honoring the
   environment here means even embedders that never call
   [activate_from_env] get env-var activation, because [declare] drains
   [pending]. Parse errors are ignored at load time (there is nobody to
   report them to); the CLI re-parses and reports. *)
let () = ignore (activate_from_env ())

(* --- introspection ----------------------------------------------------- *)

let name fp = fp.name
let hits fp = Atomic.get fp.hits
let fired fp = Atomic.get fp.fired
let armed fp = Atomic.get fp.armed <> None

let catalog () =
  locked (fun () -> Hashtbl.fold (fun _ fp acc -> fp :: acc) registry [])
  |> List.sort (fun a b -> String.compare a.name b.name)

let names () = List.map (fun fp -> fp.name) (catalog ())
let doc fp = fp.doc
