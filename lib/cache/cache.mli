(** The certificate cache: content-addressed memoization of the
    per-operator relation search.

    One entry records the outcome of [Node_rel.compute] for one
    sequential operator: either the clean mapping expressions found for
    its output (the replayable certificate) or the fact that saturation
    proved no mapping exists. The key fingerprints {e every} input of
    that computation:

    - the operator's Merkle fingerprint over the sequential graph
      (op + attributes + transitive input structure and shapes);
    - the seeded relation entries (the operator's input mappings plus
      every sequential-input mapping), as fingerprints over the
      distributed graph;
    - the distributed {e cone}: the node set the frontier loop (paper
      Listing 3) would load for those seeds — the fixpoint is a pure
      tensor-set computation, so it is replayed here without building
      an e-graph. Editing one distributed operator therefore only
      invalidates the sequential operators whose cone contains it;
    - the base context: search-relevant configuration, the lemma
      corpus, the distributed constraint store and output set.

    A hit does not blindly trust the stored expressions: the
    certificate is {e replayed} against the current graphs — leaves
    resolved by name, cleanliness checked, shapes re-inferred under the
    current constraint store and compared to the operator's output.
    Any mismatch degrades to {!Replay_failed} and the caller falls back
    to the normal search. Verdicts that say nothing about the model
    ([Inconclusive], [Internal]) are never cached; [Unmapped] {e is}
    cached, because saturation outcomes are deterministic for a fixed
    key. *)

open Entangle_ir

type t
(** A handle on an opened on-disk store. *)

val create : ?dir:string -> ?budget:Store.budget -> unit -> (t, string) result
(** Open (creating if needed) the store at [dir], defaulting to
    {!Store.default_dir}; [budget] (default {!Store.env_budget})
    bounds the store's size and entry age — see {!Store}. *)

val dir : t -> string

type provenance = Hit | Miss | Replay_failed of string
(** How one operator's result was obtained: served from the cache,
    searched because no entry existed, or searched because an entry
    existed but failed certificate replay (payload, name-resolution or
    shape validation). *)

val pp_provenance : provenance Fmt.t

type entry =
  | Mapped of { mappings : Expr.t list; output_mappings : Expr.t list }
      (** the clean expressions found for the operator's output, and
          the subset over distributed outputs *)
  | Unmapped  (** saturation proved no clean mapping exists *)

type ctx
(** Per-check context: fingerprint environments for both graphs, the
    distributed name-resolution table and the base fingerprint. Built
    once per [Refine.check]. *)

val context :
  t ->
  config_fp:string ->
  whole_graph:bool ->
  rules:Entangle_egraph.Rule.t list ->
  gs:Graph.t ->
  gd:Graph.t ->
  ctx option
(** [None] when the distributed graph has duplicate tensor names:
    certificates resolve leaves by name, so replay would be ambiguous —
    the cache disables itself rather than guess. [config_fp] is the
    caller's search-relevant configuration fingerprint
    ([Config.search_fingerprint]); [whole_graph] mirrors a disabled
    frontier optimization (the cone is then the whole distributed
    graph). *)

val cone :
  gd:Graph.t -> whole_graph:bool -> anchors:Tensor.Set.t -> Node.t list
(** The distributed cone: the node set the frontier loop (paper
    Listing 3) loads when T_rel starts from [anchors] — a pure
    tensor-set fixpoint over [gd], no e-graph involved. With
    [whole_graph] (frontier optimization off) the cone is every node.
    Shared by the cache key (the cone fingerprint) and the parallel
    wavefront scheduler (two operators whose cones are disjoint load no
    common distributed node and may be checked concurrently). *)

val key :
  ctx -> seeds:(Tensor.t * Expr.t list) list -> Node.t -> string
(** The content key for checking operator [v] with the given seeded
    relation entries ([v]'s input mappings plus the sequential-input
    mappings — exactly what [Node_rel.compute] loads). *)

val find : ctx -> key:string -> Node.t -> [ `Hit of entry | `Miss | `Replay_failed of string ]
(** Look up and replay-validate an entry for operator [v]. *)

val put : ctx -> key:string -> entry -> unit
(** Record an entry; best-effort (I/O errors are swallowed — the cache
    must never fail a check). A [Mapped] entry with no mappings is not
    stored. *)

(** {1 Maintenance} (the [entangle cache] subcommand) *)

val stats : t -> Store.stats
val clear : t -> int

val gc : ?budget:Store.budget -> t -> Store.gc_result
(** One-shot retention sweep — see {!Store.gc}. *)

val export_archive : t -> string * int
(** Dump every valid entry as a portable archive ({!Store.export_all}):
    quarantined, version-skewed and corrupt entries can never export
    because reads go through the validating [get] path. *)

val import_archive : t -> string -> (int * int, string) result
(** Import an archive, structurally validating each payload with
    {!validate_payload}; [(imported, rejected)]. *)

val verify : t -> Store.verify_result
(** Structurally validate every entry's payload (header, key and
    s-expression shape); damaged entries are quarantined. *)

val validate_payload : string -> (unit, string) result
(** The structural payload check used by {!verify}: parses without
    resolving leaves against any graph. *)
