include Entangle_fingerprint.Fingerprint

let rule (r : Entangle_egraph.Rule.t) =
  let pat p = Fmt.str "%a" Entangle_egraph.Pattern.pp p in
  let applier =
    match r.Entangle_egraph.Rule.applier with
    | Entangle_egraph.Rule.Syntactic rhs -> "syn:" ^ pat rhs
    | Entangle_egraph.Rule.Conditional _ -> "dyn"
  in
  strings
    [
      "rule";
      r.Entangle_egraph.Rule.name;
      pat r.Entangle_egraph.Rule.lhs;
      applier;
      string_of_bool r.Entangle_egraph.Rule.constrained;
      string_of_bool r.Entangle_egraph.Rule.nonlocal;
    ]

let rules rs = strings ("rules" :: List.map to_hex (List.map rule rs))
