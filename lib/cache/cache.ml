open Entangle_ir

let ( let* ) = Result.bind
let err fmt = Fmt.kstr (fun s -> Error s) fmt

type t = { store : Store.t }

let create ?dir ?budget () =
  Result.map (fun store -> { store }) (Store.open_ ?dir ?budget ())

let dir t = Store.dir t.store

type provenance = Hit | Miss | Replay_failed of string

let pp_provenance ppf = function
  | Hit -> Fmt.string ppf "hit"
  | Miss -> Fmt.string ppf "miss"
  | Replay_failed reason -> Fmt.pf ppf "replay failed (%s)" reason

type entry =
  | Mapped of { mappings : Expr.t list; output_mappings : Expr.t list }
  | Unmapped

type ctx = {
  store : Store.t;
  base_fp : string;
  gs_env : Fingerprint.env;
  gd_env : Fingerprint.env;
  resolve : string -> Tensor.t option;
  gd : Graph.t;
  whole_graph : bool;
  gd_outputs : Tensor.Set.t;
}

let has_duplicate_names g =
  let names = List.sort String.compare (List.map Tensor.name (Graph.tensors g)) in
  let rec dup = function
    | a :: b :: _ when String.equal a b -> true
    | _ :: rest -> dup rest
    | [] -> false
  in
  dup names

let context (t : t) ~config_fp ~whole_graph ~rules ~gs ~gd =
  if has_duplicate_names gd then None
  else
    let gd_env = Fingerprint.graph_env gd in
    let by_name = Hashtbl.create 64 in
    List.iter
      (fun tensor -> Hashtbl.replace by_name (Tensor.name tensor) tensor)
      (Graph.tensors gd);
    (* The base covers everything the per-operator computation reads
       besides the operator, its seeds and its cone: the
       search-relevant configuration, the lemma corpus, the
       distributed constraint store (lemma conditions are discharged
       against it) and the distributed output set (output-grounded
       extraction filters on it). Deliberately NOT the whole
       distributed graph — that is what the per-operator cone
       fingerprint is for, so that editing one distributed operator
       only invalidates the sequential operators whose cone sees it. *)
    let base_fp =
      Fingerprint.to_hex
        (Fingerprint.strings
           [
             "base/1";
             config_fp;
             Fingerprint.to_hex (Fingerprint.rules rules);
             Fingerprint.to_hex
               (Fingerprint.constraints (Graph.constraints gd));
             Fingerprint.to_hex
               (Fingerprint.strings
                  (List.sort String.compare
                     (List.map
                        (fun tensor ->
                          Fingerprint.to_hex (Fingerprint.tensor gd_env tensor))
                        (Graph.outputs gd))));
           ])
    in
    Some
      {
        store = t.store;
        base_fp;
        gs_env = Fingerprint.graph_env gs;
        gd_env;
        resolve = Hashtbl.find_opt by_name;
        gd;
        whole_graph;
        gd_outputs =
          List.fold_left
            (fun acc tensor -> Tensor.Set.add tensor acc)
            Tensor.Set.empty (Graph.outputs gd);
      }

(* The distributed cone: the node set the frontier loop (Listing 3)
   would load, replayed as a pure tensor-set fixpoint — the loop's
   membership tests never consult the e-graph, so the loaded set is a
   function of the anchor tensors and the distributed graph alone.
   Exposed on its own because the parallel wavefront scheduler reuses
   it: two sequential operators whose cones are disjoint load no common
   distributed node and may be checked concurrently. *)
let cone ~gd ~whole_graph ~anchors =
  let gd_nodes = Graph.nodes gd in
  if whole_graph then gd_nodes
  else begin
    let t_rel = ref anchors in
    let explored = Hashtbl.create 64 in
    let acc = ref [] in
    let continue = ref true in
    while !continue do
      let frontier =
        List.filter
          (fun n ->
            (not (Hashtbl.mem explored (Node.id n)))
            && List.for_all
                 (fun tensor -> Tensor.Set.mem tensor !t_rel)
                 (Node.inputs n))
          gd_nodes
      in
      if frontier = [] then continue := false
      else
        List.iter
          (fun n ->
            Hashtbl.replace explored (Node.id n) ();
            acc := n :: !acc;
            t_rel := Tensor.Set.add (Node.output n) !t_rel)
          frontier
    done;
    !acc
  end

let cone_fp ctx ~anchors =
  let node_fps =
    List.map (Fingerprint.node ctx.gd_env)
      (cone ~gd:ctx.gd ~whole_graph:ctx.whole_graph ~anchors)
  in
  Fingerprint.strings
    (List.sort String.compare (List.map Fingerprint.to_hex node_fps))

let key ctx ~seeds v =
  let inputs = Node.inputs v in
  let seed_fp (tensor, es) =
    Fingerprint.to_hex (Fingerprint.tensor ctx.gs_env tensor)
    ^ "="
    ^ Fingerprint.to_hex (Fingerprint.exprs ctx.gd_env es)
  in
  let seeds_fp =
    Fingerprint.strings (List.sort String.compare (List.map seed_fp seeds))
  in
  (* Cone anchors: the distributed leaves of the mappings of [v]'s
     inputs, mirroring the frontier loop's initial T_rel. *)
  let anchors =
    List.fold_left
      (fun acc (tensor, es) ->
        if List.exists (Tensor.equal tensor) inputs then
          List.fold_left
            (fun acc e ->
              List.fold_left
                (fun acc leaf ->
                  if Graph.mem_tensor ctx.gd leaf then Tensor.Set.add leaf acc
                  else acc)
                acc (Expr.leaves e))
            acc es
        else acc)
      Tensor.Set.empty seeds
  in
  Fingerprint.to_hex
    (Fingerprint.strings
       [
         "key/1";
         ctx.base_fp;
         Fingerprint.to_hex (Fingerprint.tensor ctx.gs_env (Node.output v));
         Fingerprint.to_hex seeds_fp;
         Fingerprint.to_hex (cone_fp ctx ~anchors);
       ])

(* --- payload (de)serialization ------------------------------------------ *)

let entry_to_payload entry =
  let sexp =
    match entry with
    | Unmapped -> Sexp.list [ Sexp.atom "entry"; Sexp.atom "unmapped" ]
    | Mapped { mappings; output_mappings } ->
        Sexp.list
          [
            Sexp.atom "entry";
            Sexp.atom "mapped";
            Sexp.list (List.map Serial.expr_to_sexp mappings);
            Sexp.list (List.map Serial.expr_to_sexp output_mappings);
          ]
  in
  Sexp.to_string sexp

let parse_exprs ~resolve sexps =
  List.fold_left
    (fun acc s ->
      let* acc = acc in
      let* e = Serial.expr_of_sexp ~resolve s in
      Ok (acc @ [ e ]))
    (Ok []) sexps

let parse_payload ~resolve payload =
  let* sexp = Sexp.of_string payload in
  match sexp with
  | Sexp.List [ Sexp.Atom "entry"; Sexp.Atom "unmapped" ] -> Ok Unmapped
  | Sexp.List
      [ Sexp.Atom "entry"; Sexp.Atom "mapped"; Sexp.List maps; Sexp.List outs ]
    ->
      let* mappings = parse_exprs ~resolve maps in
      let* output_mappings = parse_exprs ~resolve outs in
      if mappings = [] then err "mapped entry with no mappings"
      else Ok (Mapped { mappings; output_mappings })
  | s -> err "malformed cache entry %s" (Sexp.to_string s)

let validate_payload payload =
  (* Structure-only: resolve every leaf to a placeholder so the parse
     exercises the full grammar without a graph at hand. *)
  let resolve name = Some (Tensor.create ~name Shape.scalar) in
  Result.map (fun _ -> ()) (parse_payload ~resolve payload)

(* --- replay validation --------------------------------------------------- *)

let replay ctx v entry =
  match entry with
  | Unmapped -> Ok Unmapped
  | Mapped { mappings; output_mappings } ->
      let store = Graph.constraints ctx.gd in
      let out_shape = Tensor.shape (Node.output v) in
      let check_expr ~outputs_only e =
        if not (Expr.is_clean e) then
          err "cached expression %a is not clean" Expr.pp e
        else if
          outputs_only
          && not
               (List.for_all
                  (fun leaf -> Tensor.Set.mem leaf ctx.gd_outputs)
                  (Expr.leaves e))
        then
          err "cached output mapping %a has a non-output leaf" Expr.pp e
        else
          let* shape = Expr.infer_shape store e in
          if Shape.equal store shape out_shape then Ok ()
          else
            err "cached expression %a has shape %a, operator output has %a"
              Expr.pp e Shape.pp shape Shape.pp out_shape
      in
      let rec all ~outputs_only = function
        | [] -> Ok ()
        | e :: rest ->
            let* () = check_expr ~outputs_only e in
            all ~outputs_only rest
      in
      let* () = all ~outputs_only:false mappings in
      let* () = all ~outputs_only:true output_mappings in
      Ok entry

let find ctx ~key v =
  match Store.get ctx.store ~key with
  | None -> `Miss
  | Some payload -> (
      match
        let* entry = parse_payload ~resolve:ctx.resolve payload in
        replay ctx v entry
      with
      | Ok entry -> `Hit entry
      | Error reason -> `Replay_failed reason)

let put ctx ~key entry =
  match entry with
  | Mapped { mappings = []; _ } -> ()
  | _ -> (
      match Store.put ctx.store ~key (entry_to_payload entry) with
      | Ok () | Error _ -> ())

(* --- maintenance --------------------------------------------------------- *)

let stats (t : t) = Store.stats t.store
let clear (t : t) = Store.clear t.store
let gc ?budget (t : t) = Store.gc ?budget t.store
let export_archive (t : t) = Store.export_all t.store

let import_archive (t : t) text =
  Store.import_all
    ~check:(fun ~key:_ payload -> Result.is_ok (validate_payload payload))
    t.store text

let verify (t : t) =
  Store.verify t.store ~check:(fun ~key:_ payload ->
      Result.is_ok (validate_payload payload))
