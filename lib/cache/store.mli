(** Persistent content-addressed object store.

    Layout under the store directory:

    {v
    objects/<first two hex chars>/<key>   one entry per file
    tmp/                                  staging for atomic writes
    quarantine/                           corrupt entries, moved aside
    v}

    Each entry file is a versioned header line, the key on its own
    line, then the payload. Writes go through a temp file in [tmp/]
    followed by [rename], so readers never observe a torn entry and
    concurrent writers of the same key race benignly (last rename
    wins). A version-mismatched entry is silently removed on read (the
    format changed: invalidate); an entry that fails header or key
    validation is moved to [quarantine/] for post-mortem rather than
    crashing the checker. All store operations are best-effort: I/O
    errors degrade to misses or no-ops, never exceptions. *)

type t

val version : string
(** The header line, ["entangle-cache/1"]. Bump on any format change:
    old entries then self-invalidate on first read. *)

val default_dir : unit -> string
(** [$ENTANGLE_CACHE_DIR], else [$XDG_CACHE_HOME/entangle], else
    [$HOME/.cache/entangle], else a directory under the system temp
    dir. *)

val open_ : ?dir:string -> unit -> (t, string) result
(** Create (mkdir -p) and open the store; [dir] defaults to
    {!default_dir}. [Error] when the directory cannot be created or is
    not writable. *)

val dir : t -> string

val get : t -> key:string -> string option
(** The payload for [key], or [None] on miss. Side effects on bad
    entries: wrong version — removed; unrecognizable header or key
    mismatch — quarantined. *)

val put : t -> key:string -> string -> (unit, string) result
(** Atomically write the payload under [key] (tmp + rename). *)

type stats = {
  entries : int;
  bytes : int;  (** total payload+header bytes across entries *)
  shards : int;
  quarantined : int;
}

val stats : t -> stats

val clear : t -> int
(** Remove every entry (and stale temp files); returns the number of
    entries removed. Quarantined files are kept. *)

type verify_result = { checked : int; ok : int; invalid : int }

val verify : t -> check:(key:string -> string -> bool) -> verify_result
(** Read every entry through {!get} (which already removes or
    quarantines version/header damage), then run [check] on the
    payload; entries failing [check] are quarantined and counted in
    [invalid]. *)
