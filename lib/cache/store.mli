(** Persistent content-addressed object store.

    Layout under the store directory:

    {v
    objects/<first two hex chars>/<key>   one entry per file
    tmp/                                  staging for atomic writes
    quarantine/                           corrupt entries, moved aside
    v}

    Each entry file is a versioned header line, the key on its own
    line, then the payload. Writes go through a temp file in [tmp/]
    followed by [rename], so readers never observe a torn entry and
    concurrent writers of the same key race benignly (last rename
    wins). A version-mismatched entry is silently removed on read (the
    format changed: invalidate); an entry that fails header or key
    validation is moved to [quarantine/] for post-mortem rather than
    crashing the checker. All store operations are best-effort: I/O
    errors degrade to misses or no-ops, never exceptions.

    {2 Retention}

    A store opened with a {!budget} stays bounded: entries older than
    [max_age_s] are dropped (an expired entry reads as a miss even
    before any sweep runs), and when total object bytes exceed
    [max_bytes] the least-recently-used entries are evicted until the
    store fits ([get] refreshes an entry's mtime, which is the
    eviction order). The budget is an inclusive ceiling: an entry set
    exactly at [max_bytes] is kept. Quarantined and staging files are
    never counted against the budget.

    {2 Concurrent writers}

    One handle is domain-safe (an internal mutex serializes access).
    Two {e processes} sharing a directory — the resident [entangle
    serve] daemon and a CLI run — are safe by construction: writes
    land by atomic rename, a read of a concurrently evicted entry
    degrades to a miss, and eviction sweeps re-walk the directory
    rather than trusting any handle's running byte estimate, so stale
    accounting can cost an extra walk but never deletes a fresh entry
    it should have kept. *)

type t

val version : string
(** The header line, ["entangle-cache/1"]. Bump on any format change:
    old entries then self-invalidate on first read. *)

type budget = { max_bytes : int option; max_age_s : float option }
(** Retention policy: maximum total object bytes (inclusive), and
    maximum entry age in seconds since last use. [None] = unbounded. *)

val no_budget : budget

val env_budget : unit -> budget
(** The budget the environment requests:
    [$ENTANGLE_CACHE_MAX_BYTES] and [$ENTANGLE_CACHE_MAX_AGE_S]
    (non-positive or unparsable values are ignored). The default of
    {!open_}. *)

val default_dir : unit -> string
(** [$ENTANGLE_CACHE_DIR], else [$XDG_CACHE_HOME/entangle], else
    [$HOME/.cache/entangle], else a directory under the system temp
    dir. *)

val open_ : ?dir:string -> ?budget:budget -> unit -> (t, string) result
(** Create (mkdir -p) and open the store; [dir] defaults to
    {!default_dir}, [budget] to {!env_budget} (which is unbounded when
    neither variable is set — the pre-budget behavior). [Error] when
    the directory cannot be created or is not writable. *)

val dir : t -> string
val budget : t -> budget

val get : t -> key:string -> string option
(** The payload for [key], or [None] on miss. A hit refreshes the
    entry's recency. Side effects on bad entries: wrong version —
    removed; unrecognizable header or key mismatch — quarantined;
    older than the budget's age bound — removed (counted expired). *)

val put : t -> key:string -> string -> (unit, string) result
(** Atomically write the payload under [key] (tmp + rename). When the
    write pushes the store past its byte budget, a retention sweep
    runs before returning. *)

type stats = {
  entries : int;
  bytes : int;  (** total payload+header bytes across entries *)
  shards : int;
  quarantined : int;
  max_bytes : int option;  (** the handle's byte budget *)
  max_age_s : float option;  (** the handle's age bound *)
  evicted_entries : int;
      (** LRU evictions performed through this handle *)
  evicted_bytes : int;
  expired_entries : int;
      (** age-bound removals performed through this handle *)
}

val stats : t -> stats

val clear : t -> int
(** Remove every entry (and stale temp files); returns the number of
    entries removed. Quarantined files are kept. *)

type gc_result = {
  expired : int;  (** entries dropped by the age bound *)
  evicted : int;  (** entries evicted (LRU) to fit the byte budget *)
  freed_bytes : int;  (** bytes reclaimed by eviction *)
  remaining_entries : int;
  remaining_bytes : int;
}

val gc : ?budget:budget -> t -> gc_result
(** One-shot retention sweep (the [entangle cache verify --gc] path
    for non-resident users): apply [budget] (default: the handle's)
    and clean stale temp files. A no-op on an unbounded budget. *)

(** {2 Portable archives}

    A plain-text, length-prefixed dump of every {e valid} entry:
    reading goes through {!get}, so version-skewed entries
    self-invalidate, damaged entries quarantine and expired entries
    miss — none of them can reach an archive. Importing re-[put]s each
    entry (atomic writes, budget sweeps apply). *)

val archive_header : string
(** First line of an archive, ["entangle-cache-archive/1"]. *)

val export_all : t -> string * int
(** The archive text and the number of entries it carries. *)

val import_all :
  ?check:(key:string -> string -> bool) ->
  t ->
  string ->
  (int * int, string) result
(** [(imported, rejected)]: entries failing [check] (default: accept
    all) are skipped and counted in [rejected]; a malformed or
    truncated archive is an [Error] (entries already imported stay).
    Archives are untrusted input: a key that is not lowercase hex of a
    sane width (2–128 chars) is rejected before it can name a file, so
    a hostile archive cannot steer {!put} outside the store directory
    with ['/'] or [".."] in a key. *)

type verify_result = { checked : int; ok : int; invalid : int }

val verify : t -> check:(key:string -> string -> bool) -> verify_result
(** Read every entry through {!get} (which already removes or
    quarantines version/header damage), then run [check] on the
    payload; entries failing [check] are quarantined and counted in
    [invalid]. *)
