let version = "entangle-cache/1"
let version_prefix = "entangle-cache/"

(* --- retention budget ---------------------------------------------------- *)

type budget = { max_bytes : int option; max_age_s : float option }

let no_budget = { max_bytes = None; max_age_s = None }

let env_budget () =
  let pos_int name =
    match Sys.getenv_opt name with
    | Some s when s <> "" -> (
        match int_of_string_opt (String.trim s) with
        | Some n when n > 0 -> Some n
        | _ -> None)
    | _ -> None
  in
  let pos_float name =
    match Sys.getenv_opt name with
    | Some s when s <> "" -> (
        match float_of_string_opt (String.trim s) with
        | Some f when f > 0. -> Some f
        | _ -> None)
    | _ -> None
  in
  {
    max_bytes = pos_int "ENTANGLE_CACHE_MAX_BYTES";
    max_age_s = pos_float "ENTANGLE_CACHE_MAX_AGE_S";
  }

(* [lock] serializes get/put and the eviction sweeps: entries are one
   file each and writes are atomic renames, so concurrent access would
   not corrupt the store, but the parallel checker's domains share one
   handle and the lock keeps the read-then-quarantine/stale-removal
   and accounting paths free of same-file races. A {e second process}
   (a resident daemon and a CLI run sharing one directory) is safe by
   construction rather than by the lock: writes land by rename, reads
   of a concurrently evicted entry degrade to misses, and the eviction
   sweep re-walks the directory instead of trusting this handle's
   running byte estimate, so cross-process accounting drift can cost
   at most one extra walk, never a wrong deletion of a fresh entry.
   Maintenance walks (stats/clear/verify/gc) take the lock too now
   that a resident server may run them concurrently with checks. *)
type t = {
  dir : string;
  lock : Mutex.t;
  budget : budget;
  mutable approx_bytes : int;
      (* running estimate of total object bytes; only ever used to
         decide when to sweep — the sweep itself re-measures *)
  mutable evicted_entries : int;
  mutable evicted_bytes : int;
  mutable expired_entries : int;
}

let dir t = t.dir
let budget t = t.budget
let objects_dir t = Filename.concat t.dir "objects"
let tmp_dir t = Filename.concat t.dir "tmp"
let quarantine_dir t = Filename.concat t.dir "quarantine"

let default_dir () =
  match Sys.getenv_opt "ENTANGLE_CACHE_DIR" with
  | Some d when d <> "" -> d
  | _ ->
      let base =
        match Sys.getenv_opt "XDG_CACHE_HOME" with
        | Some d when d <> "" -> d
        | _ -> (
            match Sys.getenv_opt "HOME" with
            | Some h when h <> "" -> Filename.concat h ".cache"
            | _ -> Filename.concat (Filename.get_temp_dir_name ()) "cache")
      in
      Filename.concat base "entangle"

let rec mkdir_p d =
  if Sys.file_exists d then ()
  else begin
    let parent = Filename.dirname d in
    if parent <> d then mkdir_p parent;
    try Sys.mkdir d 0o755 with Sys_error _ -> ()
  end

let shard key = if String.length key >= 2 then String.sub key 0 2 else "xx"

let path t key =
  Filename.concat (Filename.concat (objects_dir t) (shard key)) key

let read_file p =
  let ic = open_in_bin p in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let remove_quietly p = try Sys.remove p with Sys_error _ -> ()

let quarantine t p =
  let dest = Filename.concat (quarantine_dir t) (Filename.basename p) in
  mkdir_p (quarantine_dir t);
  try Sys.rename p dest with Sys_error _ -> remove_quietly p

(* Split [contents] at the first newline. *)
let split_line contents =
  match String.index_opt contents '\n' with
  | None -> None
  | Some i ->
      Some
        ( String.sub contents 0 i,
          String.sub contents (i + 1) (String.length contents - i - 1) )

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let list_dir d =
  match Sys.readdir d with
  | exception Sys_error _ -> []
  | entries ->
      let l = Array.to_list entries in
      List.sort String.compare l

let iter_entries t f =
  List.iter
    (fun sh ->
      let shd = Filename.concat (objects_dir t) sh in
      if (try Sys.is_directory shd with Sys_error _ -> false) then
        List.iter
          (fun name -> f ~key:name ~path:(Filename.concat shd name))
          (list_dir shd))
    (list_dir (objects_dir t))

(* One (path, bytes, mtime) row per object file — the ground truth the
   sweep and the statistics walk measure, deliberately never the
   in-memory estimate (another process may have written or evicted
   entries since). Quarantined and tmp files are outside [objects/]
   and therefore never counted against the budget. *)
let measure t =
  let rows = ref [] in
  iter_entries t (fun ~key:_ ~path ->
      match Unix.stat path with
      | exception Unix.Unix_error _ -> ()
      | st ->
          rows := (path, st.Unix.st_size, st.Unix.st_mtime) :: !rows);
  !rows

(* The retention sweep: drop age-expired entries, then evict in
   least-recently-used order (oldest mtime first; [get] touches
   entries on every hit) until total bytes fit the budget. An entry
   exactly at the budget boundary is kept — the budget is an
   inclusive ceiling. Returns (expired, evicted, evicted_bytes,
   remaining_entries, remaining_bytes). Caller holds the lock. *)
let sweep_locked t ~budget =
  let now = Unix.gettimeofday () in
  let rows = measure t in
  let expired, live =
    match budget.max_age_s with
    | None -> ([], rows)
    | Some age ->
        List.partition (fun (_, _, mtime) -> now -. mtime > age) rows
  in
  List.iter (fun (p, _, _) -> remove_quietly p) expired;
  let live = List.sort (fun (_, _, a) (_, _, b) -> compare a b) live in
  let total = List.fold_left (fun acc (_, sz, _) -> acc + sz) 0 live in
  let evicted = ref 0 and evicted_bytes = ref 0 in
  let remaining = ref total and kept = ref (List.length live) in
  (match budget.max_bytes with
  | None -> ()
  | Some cap ->
      List.iter
        (fun (p, sz, _) ->
          if !remaining > cap then begin
            remove_quietly p;
            incr evicted;
            evicted_bytes := !evicted_bytes + sz;
            remaining := !remaining - sz;
            decr kept
          end)
        live);
  t.approx_bytes <- !remaining;
  t.expired_entries <- t.expired_entries + List.length expired;
  t.evicted_entries <- t.evicted_entries + !evicted;
  t.evicted_bytes <- t.evicted_bytes + !evicted_bytes;
  (List.length expired, !evicted, !evicted_bytes, !kept, !remaining)

let open_ ?dir ?budget () =
  let dir = match dir with Some d -> d | None -> default_dir () in
  let budget = match budget with Some b -> b | None -> env_budget () in
  let t =
    {
      dir;
      lock = Mutex.create ();
      budget;
      approx_bytes = 0;
      evicted_entries = 0;
      evicted_bytes = 0;
      expired_entries = 0;
    }
  in
  mkdir_p (objects_dir t);
  mkdir_p (tmp_dir t);
  mkdir_p (quarantine_dir t);
  if Sys.file_exists (objects_dir t) && Sys.is_directory (objects_dir t) then begin
    if budget.max_bytes <> None then
      t.approx_bytes <-
        List.fold_left (fun acc (_, sz, _) -> acc + sz) 0 (measure t);
    Ok t
  end
  else Error (Fmt.str "cannot create cache directory %s" dir)

let touch p = try Unix.utimes p 0. 0. with Unix.Unix_error _ -> ()

let expired t p =
  match t.budget.max_age_s with
  | None -> false
  | Some age -> (
      match Unix.stat p with
      | exception Unix.Unix_error _ -> false
      | st -> Unix.gettimeofday () -. st.Unix.st_mtime > age)

let get t ~key =
  locked t @@ fun () ->
  let p = path t key in
  if not (Sys.file_exists p) then None
  else if expired t p then begin
    (* Age bound beats the hit: an entry past its maximum age is a
       miss even when its bytes are still readable, so a daemon and a
       CLI sharing the directory agree on liveness without
       coordinating sweeps. *)
    remove_quietly p;
    t.expired_entries <- t.expired_entries + 1;
    None
  end
  else
    match read_file p with
    | exception Sys_error _ -> None
    | contents -> (
        match split_line contents with
        | None ->
            quarantine t p;
            None
        | Some (header, rest) ->
            if String.equal header version then
              match split_line rest with
              | Some (k, payload) when String.equal k key ->
                  (* LRU recency: a hit refreshes the entry's mtime,
                     which is the eviction order of the sweep. *)
                  touch p;
                  Some payload
              | _ ->
                  quarantine t p;
                  None
            else if starts_with ~prefix:version_prefix header then begin
              (* A well-formed entry of another format version: the
                 schema moved on, so the entry is stale, not corrupt. *)
              remove_quietly p;
              None
            end
            else begin
              quarantine t p;
              None
            end)

let put t ~key payload =
  locked t @@ fun () ->
  try
    let target = path t key in
    mkdir_p (Filename.dirname target);
    mkdir_p (tmp_dir t);
    let tmp = Filename.temp_file ~temp_dir:(tmp_dir t) "entry" ".tmp" in
    let oc = open_out_bin tmp in
    (try
       output_string oc version;
       output_char oc '\n';
       output_string oc key;
       output_char oc '\n';
       output_string oc payload
     with e ->
       close_out_noerr oc;
       remove_quietly tmp;
       raise e);
    close_out oc;
    Sys.rename tmp target;
    (match t.budget.max_bytes with
    | None -> ()
    | Some cap ->
        t.approx_bytes <-
          t.approx_bytes + String.length version + String.length key
          + String.length payload + 2;
        (* The estimate only triggers the sweep; the sweep re-measures
           the directory, so drift against other writers is harmless. *)
        if t.approx_bytes > cap then ignore (sweep_locked t ~budget:t.budget));
    Ok ()
  with Sys_error e -> Error e

type stats = {
  entries : int;
  bytes : int;
  shards : int;
  quarantined : int;
  max_bytes : int option;
  max_age_s : float option;
  evicted_entries : int;
  evicted_bytes : int;
  expired_entries : int;
}

let stats t =
  locked t @@ fun () ->
  let rows = measure t in
  let shards =
    List.length
      (List.filter
         (fun sh ->
           try Sys.is_directory (Filename.concat (objects_dir t) sh)
           with Sys_error _ -> false)
         (list_dir (objects_dir t)))
  in
  {
    entries = List.length rows;
    bytes = List.fold_left (fun acc (_, sz, _) -> acc + sz) 0 rows;
    shards;
    quarantined = List.length (list_dir (quarantine_dir t));
    max_bytes = t.budget.max_bytes;
    max_age_s = t.budget.max_age_s;
    evicted_entries = t.evicted_entries;
    evicted_bytes = t.evicted_bytes;
    expired_entries = t.expired_entries;
  }

let clear t =
  locked t @@ fun () ->
  let removed = ref 0 in
  iter_entries t (fun ~key:_ ~path ->
      remove_quietly path;
      incr removed);
  List.iter
    (fun name -> remove_quietly (Filename.concat (tmp_dir t) name))
    (list_dir (tmp_dir t));
  t.approx_bytes <- 0;
  !removed

type gc_result = {
  expired : int;
  evicted : int;
  freed_bytes : int;
  remaining_entries : int;
  remaining_bytes : int;
}

let gc ?budget:b t =
  locked t @@ fun () ->
  let budget = match b with Some b -> b | None -> t.budget in
  let expired, evicted, evicted_bytes, remaining_entries, remaining_bytes =
    sweep_locked t ~budget
  in
  List.iter
    (fun name -> remove_quietly (Filename.concat (tmp_dir t) name))
    (list_dir (tmp_dir t));
  {
    expired;
    evicted;
    freed_bytes = evicted_bytes;
    remaining_entries;
    remaining_bytes;
  }

(* --- portable archives --------------------------------------------- *)

let archive_header = "entangle-cache-archive/1"

let export_all t =
  let keys = ref [] in
  locked t (fun () ->
      iter_entries t (fun ~key ~path:_ -> keys := key :: !keys));
  let b = Buffer.create 4096 in
  Buffer.add_string b archive_header;
  Buffer.add_char b '\n';
  let n = ref 0 in
  List.iter
    (fun key ->
      (* Reading through [get] applies the full validation path:
         version-skewed entries self-invalidate, damaged entries are
         quarantined, expired entries miss — none of them can reach an
         archive. *)
      match get t ~key with
      | None -> ()
      | Some payload ->
          incr n;
          Buffer.add_string b key;
          Buffer.add_char b '\n';
          Buffer.add_string b (string_of_int (String.length payload));
          Buffer.add_char b '\n';
          Buffer.add_string b payload;
          Buffer.add_char b '\n')
    (List.sort String.compare !keys);
  (Buffer.contents b, !n)

(* Archive keys become file names under objects/<shard>/, and archives
   are exchanged between machines — untrusted input. A hostile key
   containing '/' or '..' would make [put] write outside the store
   directory, so only fingerprint-shaped keys (lowercase hex) may
   import; anything else counts as a rejected entry. *)
let importable_key key =
  let n = String.length key in
  n >= 2 && n <= 128
  && String.for_all (function '0' .. '9' | 'a' .. 'f' -> true | _ -> false) key

let import_all ?(check = fun ~key:_ _ -> true) t text =
  match split_line text with
  | None -> Error "empty archive"
  | Some (header, _) when not (String.equal header archive_header) ->
      Error (Fmt.str "unrecognized archive header %S" header)
  | Some (_, rest) ->
      let rec loop rest imported rejected =
        if String.equal rest "" then Ok (imported, rejected)
        else
          match split_line rest with
          | None -> Error "truncated archive: dangling key"
          | Some (key, rest) -> (
              match split_line rest with
              | None -> Error "truncated archive: missing payload length"
              | Some (len_s, rest) -> (
                  match int_of_string_opt len_s with
                  | None ->
                      Error (Fmt.str "bad payload length %S for %s" len_s key)
                  | Some len ->
                      if len < 0 || String.length rest < len + 1 then
                        Error (Fmt.str "truncated archive: payload of %s" key)
                      else if rest.[len] <> '\n' then
                        (* An in-range but wrong length would silently
                           shift the framing for every later entry;
                           fail at the faulty one instead. *)
                        Error
                          (Fmt.str "malformed entry terminator for %s" key)
                      else
                        let payload = String.sub rest 0 len in
                        let rest =
                          String.sub rest (len + 1)
                            (String.length rest - len - 1)
                        in
                        if not (importable_key key && check ~key payload) then
                          loop rest imported (rejected + 1)
                        else
                          (match put t ~key payload with
                          | Ok () -> loop rest (imported + 1) rejected
                          | Error e -> Error e)))
      in
      loop rest 0 0

type verify_result = { checked : int; ok : int; invalid : int }

let verify t ~check =
  let keys = ref [] in
  locked t (fun () -> iter_entries t (fun ~key ~path -> keys := (key, path) :: !keys));
  let checked = ref 0 and ok = ref 0 and invalid = ref 0 in
  List.iter
    (fun (key, path) ->
      incr checked;
      match get t ~key with
      | None ->
          (* [get] already removed or quarantined the damaged file. *)
          incr invalid
      | Some payload ->
          if check ~key payload then incr ok
          else begin
            incr invalid;
            locked t (fun () -> quarantine t path)
          end)
    (List.rev !keys)
  ;
  { checked = !checked; ok = !ok; invalid = !invalid }
