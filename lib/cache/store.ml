let version = "entangle-cache/1"
let version_prefix = "entangle-cache/"

(* [lock] serializes get/put: entries are one file each and writes are
   atomic renames, so concurrent access would not corrupt the store,
   but the parallel checker's domains share one handle and the lock
   keeps the read-then-quarantine/stale-removal paths free of
   same-file races. Maintenance walks (stats/clear/verify) stay
   unguarded — they are CLI-only and never run during a check. *)
type t = { dir : string; lock : Mutex.t }

let dir t = t.dir
let objects_dir t = Filename.concat t.dir "objects"
let tmp_dir t = Filename.concat t.dir "tmp"
let quarantine_dir t = Filename.concat t.dir "quarantine"

let default_dir () =
  match Sys.getenv_opt "ENTANGLE_CACHE_DIR" with
  | Some d when d <> "" -> d
  | _ ->
      let base =
        match Sys.getenv_opt "XDG_CACHE_HOME" with
        | Some d when d <> "" -> d
        | _ -> (
            match Sys.getenv_opt "HOME" with
            | Some h when h <> "" -> Filename.concat h ".cache"
            | _ -> Filename.concat (Filename.get_temp_dir_name ()) "cache")
      in
      Filename.concat base "entangle"

let rec mkdir_p d =
  if Sys.file_exists d then ()
  else begin
    let parent = Filename.dirname d in
    if parent <> d then mkdir_p parent;
    try Sys.mkdir d 0o755 with Sys_error _ -> ()
  end

let open_ ?dir () =
  let dir = match dir with Some d -> d | None -> default_dir () in
  let t = { dir; lock = Mutex.create () } in
  mkdir_p (objects_dir t);
  mkdir_p (tmp_dir t);
  mkdir_p (quarantine_dir t);
  if Sys.file_exists (objects_dir t) && Sys.is_directory (objects_dir t) then
    Ok t
  else Error (Fmt.str "cannot create cache directory %s" dir)

let shard key = if String.length key >= 2 then String.sub key 0 2 else "xx"

let path t key =
  Filename.concat (Filename.concat (objects_dir t) (shard key)) key

let read_file p =
  let ic = open_in_bin p in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let remove_quietly p = try Sys.remove p with Sys_error _ -> ()

let quarantine t p =
  let dest = Filename.concat (quarantine_dir t) (Filename.basename p) in
  mkdir_p (quarantine_dir t);
  try Sys.rename p dest with Sys_error _ -> remove_quietly p

(* Split [contents] at the first newline. *)
let split_line contents =
  match String.index_opt contents '\n' with
  | None -> None
  | Some i ->
      Some
        ( String.sub contents 0 i,
          String.sub contents (i + 1) (String.length contents - i - 1) )

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let get t ~key =
  locked t @@ fun () ->
  let p = path t key in
  if not (Sys.file_exists p) then None
  else
    match read_file p with
    | exception Sys_error _ -> None
    | contents -> (
        match split_line contents with
        | None ->
            quarantine t p;
            None
        | Some (header, rest) ->
            if String.equal header version then
              match split_line rest with
              | Some (k, payload) when String.equal k key -> Some payload
              | _ ->
                  quarantine t p;
                  None
            else if starts_with ~prefix:version_prefix header then begin
              (* A well-formed entry of another format version: the
                 schema moved on, so the entry is stale, not corrupt. *)
              remove_quietly p;
              None
            end
            else begin
              quarantine t p;
              None
            end)

let put t ~key payload =
  locked t @@ fun () ->
  try
    let target = path t key in
    mkdir_p (Filename.dirname target);
    mkdir_p (tmp_dir t);
    let tmp = Filename.temp_file ~temp_dir:(tmp_dir t) "entry" ".tmp" in
    let oc = open_out_bin tmp in
    (try
       output_string oc version;
       output_char oc '\n';
       output_string oc key;
       output_char oc '\n';
       output_string oc payload
     with e ->
       close_out_noerr oc;
       remove_quietly tmp;
       raise e);
    close_out oc;
    Sys.rename tmp target;
    Ok ()
  with Sys_error e -> Error e

let list_dir d =
  match Sys.readdir d with
  | exception Sys_error _ -> []
  | entries ->
      let l = Array.to_list entries in
      List.sort String.compare l

let iter_entries t f =
  List.iter
    (fun sh ->
      let shd = Filename.concat (objects_dir t) sh in
      if (try Sys.is_directory shd with Sys_error _ -> false) then
        List.iter
          (fun name -> f ~key:name ~path:(Filename.concat shd name))
          (list_dir shd))
    (list_dir (objects_dir t))

type stats = { entries : int; bytes : int; shards : int; quarantined : int }

let stats t =
  let entries = ref 0 and bytes = ref 0 in
  iter_entries t (fun ~key:_ ~path ->
      incr entries;
      match open_in_bin path with
      | exception Sys_error _ -> ()
      | ic ->
          bytes := !bytes + in_channel_length ic;
          close_in_noerr ic);
  let shards =
    List.length
      (List.filter
         (fun sh ->
           try Sys.is_directory (Filename.concat (objects_dir t) sh)
           with Sys_error _ -> false)
         (list_dir (objects_dir t)))
  in
  {
    entries = !entries;
    bytes = !bytes;
    shards;
    quarantined = List.length (list_dir (quarantine_dir t));
  }

let clear t =
  let removed = ref 0 in
  iter_entries t (fun ~key:_ ~path ->
      remove_quietly path;
      incr removed);
  List.iter
    (fun name -> remove_quietly (Filename.concat (tmp_dir t) name))
    (list_dir (tmp_dir t));
  !removed

type verify_result = { checked : int; ok : int; invalid : int }

let verify t ~check =
  let checked = ref 0 and ok = ref 0 and invalid = ref 0 in
  iter_entries t (fun ~key ~path ->
      incr checked;
      match get t ~key with
      | None ->
          (* [get] already removed or quarantined the damaged file. *)
          incr invalid
      | Some payload ->
          if check ~key payload then incr ok
          else begin
            incr invalid;
            quarantine t path
          end);
  { checked = !checked; ok = !ok; invalid = !invalid }
