(** Canonical content fingerprints over IR graphs.

    This module is {!Entangle_fingerprint.Fingerprint} (see its
    documentation for the hashing discipline) re-exported under the
    cache library, plus the rule-corpus fingerprint — the only hash
    that must inspect e-graph patterns and therefore cannot live in the
    egraph-free fingerprint library. *)

include
  module type of Entangle_fingerprint.Fingerprint
    with type t = Entangle_fingerprint.Fingerprint.t
     and type env = Entangle_fingerprint.Fingerprint.env

val rules : Entangle_egraph.Rule.t list -> t
(** Corpus fingerprint: per rule, its name, left-hand pattern, applier
    kind (syntactic right-hand patterns are hashed structurally;
    conditional appliers are closures and contribute only their kind)
    and the [constrained]/[nonlocal] flags, in corpus order. Renaming,
    adding, removing or reordering lemmas invalidates. *)
