(** Top-level lint driver: composes the per-artifact passes and owns the
    exit-code policy used by [entangle_cli lint] and the [@lint] alias.

    The caller supplies the graphs (the zoo lives above this library in
    the dependency order); the lemma corpus is taken from
    {!Entangle_lemmas.Registry} directly. A [LEMMA005] warning is
    emitted per duplicated lemma name the registry deduplicated away. *)

open Entangle_ir

val graphs : (string * Graph.t) list -> Diagnostic.t list
(** Well-formedness of every named graph ({!Graph_check}). *)

val corpus :
  ?config:Lemma_check.config ->
  seed:int ->
  unit ->
  Diagnostic.t list * Lemma_check.stats
(** Structural + differential audit of [Registry.all], plus duplicate
    lemma names from [Registry.duplicates]. *)

val exit_code : Diagnostic.t list -> int
(** [0] when no diagnostic has error severity, [1] otherwise. *)
