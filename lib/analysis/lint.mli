(** Top-level lint driver: composes the per-artifact passes and owns the
    exit-code policy used by [entangle_cli lint] and the [@lint] alias.

    The caller supplies the graphs (the zoo lives above this library in
    the dependency order); the lemma corpus is taken from
    {!Entangle_lemmas.Registry} directly. A [LEMMA005] warning is
    emitted per duplicated lemma name the registry deduplicated away.

    With the symbolic pass enabled ([--verify-lemmas]), lint becomes a
    {e differential} gate over the corpus: every lemma must be
    symbolically verified ({!Lemma_verify}), numerically exercised
    ({!Lemma_check}), or explicitly waived in a checked-in waiver file.
    A lemma covered by none of the three is a [LEMMA203] error; a waiver
    that names an unknown lemma, or one whose lemma verifies anyway, is
    a [LEMMA204] warning. *)

open Entangle_ir
open Entangle_lemmas

val graphs : (string * Graph.t) list -> Diagnostic.t list
(** Well-formedness of every named graph ({!Graph_check}). *)

val corpus :
  ?config:Lemma_check.config ->
  seed:int ->
  unit ->
  Diagnostic.t list * Lemma_check.stats
(** Structural + differential audit of [Registry.all], plus duplicate
    lemma names from [Registry.duplicates]. *)

val verify_corpus :
  ?config:Lemma_verify.config ->
  ?span:
    (string ->
    (unit -> Diagnostic.t list * Lemma_verify.lemma_report) ->
    Diagnostic.t list * Lemma_verify.lemma_report) ->
  unit ->
  Diagnostic.t list * Lemma_verify.report
(** Symbolic bounded verification of [Registry.all]. *)

val parse_waivers : string -> ((string * string) list, string) result
(** Parse waiver-file content: one [lemma-name: reason] per line, [#]
    starts a comment, blank lines ignored. [Error] describes every
    malformed line. *)

type coverage_row = {
  lemma : string;
  klass : Lemma.klass;
  symbolic : Lemma_verify.verdict;
  exercised : bool;  (** the numeric audit compared it at least once *)
  waived : string option;  (** waiver reason, when listed *)
}

type coverage = {
  rows : coverage_row list;  (** corpus order *)
  sym_verified : int;
  num_exercised : int;
  waived : int;
  gaps : int;  (** lemmas covered by no mechanism (LEMMA203 errors) *)
}

val coverage :
  report:Lemma_verify.report ->
  stats:Lemma_check.stats ->
  waivers:(string * string) list ->
  Diagnostic.t list * coverage
(** Combine the two gates and the waiver list into the per-lemma
    coverage table plus LEMMA203/LEMMA204 diagnostics. *)

val pp_coverage : (int * coverage) Fmt.t
(** Render the table; the [int] is the verifier's rank bound. *)

val coverage_to_json : int * coverage -> string

val exit_code : Diagnostic.t list -> int
(** [0] when no diagnostic has error severity, [1] otherwise. *)
