(** Diagnostics emitted by the static-analysis passes.

    Every finding carries a severity, a stable error code (the "GRAPH",
    "LEMMA" and "EGRAPH" families, documented in DESIGN.md), a location
    naming the offending artifact, and a human-readable message. Two
    renderers are provided: a compiler-style pretty printer and a JSON
    encoder for tooling. *)

type severity = Error | Warning | Info

type location =
  | Graph of { graph : string; node : int option; tensor : string option }
      (** A computation graph, optionally narrowed to a node id and/or a
          tensor name. *)
  | Lemma of { lemma : string; rule : int option; seed : int option }
      (** A lemma of the registry, optionally narrowed to a rule index
          within the lemma and the random seed that exposed it. *)
  | Eclass of int  (** An e-class id. *)
  | Egraph  (** An e-graph as a whole. *)
  | Corpus  (** The lemma corpus as a whole. *)

type t = {
  severity : severity;
  code : string;
  loc : location;
  message : string;
}

val make : severity -> code:string -> location -> string -> t

val error : code:string -> location -> ('a, Format.formatter, unit, t) format4 -> 'a
val warning : code:string -> location -> ('a, Format.formatter, unit, t) format4 -> 'a
val info : code:string -> location -> ('a, Format.formatter, unit, t) format4 -> 'a

val is_error : t -> bool
val count_errors : t list -> int
val count_warnings : t list -> int

val sort : t list -> t list
(** Errors first, then warnings, then infos; stable within a severity. *)

val severity_to_string : severity -> string

val pp : t Fmt.t
(** [error[GRAPH004] graph gpt-seq: cycle through node 3]. *)

val pp_report : t list Fmt.t
(** One diagnostic per line, sorted, followed by a summary line. *)

val to_json : t -> string
(** One diagnostic as a JSON object. *)

val report_to_json : t list -> string
(** [{"errors": n, "warnings": n, "diagnostics": [...]}]. *)
