open Entangle_symbolic
open Entangle_ir
open Entangle_egraph
open Entangle_lemmas

type assignment = {
  ops : (string * Op.t) list;
  tensors : (string * Tensor.t) list;
}

let ( let* ) = Result.bind

let rec infer_exn = function
  | Expr.Leaf t -> Ok (Tensor.shape t, Tensor.dtype t)
  | Expr.App (op, args) ->
      let* children =
        List.fold_left
          (fun acc e ->
            let* acc = acc in
            let* sd = infer_exn e in
            Ok (sd :: acc))
          (Ok []) args
      in
      let children = List.rev children in
      let* shape =
        Op.infer_shape Constraint_store.empty op (List.map fst children)
      in
      let* dtype = Op.infer_dtype op (List.map snd children) in
      Ok (shape, dtype)

(* Some inference paths raise on ill-typed inputs (e.g. an axis out of
   range for the rank) instead of returning [Error]; rejection sampling
   treats both the same. *)
let infer e = try infer_exn e with Invalid_argument msg -> Error msg

(* --- sampling ---------------------------------------------------------- *)

let pick st l = List.nth l (Random.State.int st (List.length l))

(* Shapes skew towards [4; 4]: square and evenly divisible, so matmul
   contractions, concat/slice splits and reshape products line up often
   enough for rejection sampling to converge quickly. *)
let sample_shape st =
  pick st
    [
      [ 4; 4 ]; [ 4; 4 ]; [ 4; 4 ]; [ 4; 4 ]; [ 4; 4 ]; [ 4; 4 ];
      [ 2; 4 ]; [ 2; 4 ]; [ 4; 2 ]; [ 4; 2 ]; [ 4 ]; [ 4 ]; [ 8 ]; [ 2; 2 ];
    ]

let sample_dim st = Random.State.int st 2

let sample_op st family =
  let dim = sample_dim st in
  match family with
  | "add" -> Some Op.Add
  | "sub" -> Some Op.Sub
  | "mul" -> Some Op.Mul
  | "div" -> Some Op.Div
  | "maximum" -> Some Op.Maximum
  | "pow" -> Some Op.Pow
  | "neg" -> Some Op.Neg
  | "exp" -> Some Op.Exp
  | "log" -> Some Op.Log
  | "sqrt" -> Some Op.Sqrt
  | "rsqrt" -> Some Op.Rsqrt
  | "relu" -> Some Op.Relu
  | "gelu" -> Some Op.Gelu
  | "silu" -> Some Op.Silu
  | "tanh" -> Some Op.Tanh
  | "sigmoid" -> Some Op.Sigmoid
  | "square" -> Some Op.Square
  | "scale" ->
      let num = pick st [ -2; -1; 1; 2; 3 ] and den = pick st [ 1; 2; 4 ] in
      Some (Op.Scale (Rat.make num den))
  | "matmul" -> Some Op.Matmul
  | "identity" -> Some Op.Identity
  | "concat" -> Some (Op.Concat { dim })
  | "hlo_concatenate" -> Some (Op.Hlo_concatenate { dim })
  | "slice" | "hlo_slice" ->
      let start = Random.State.int st 3 in
      let stop = start + 1 + Random.State.int st (4 - start) in
      let start = Symdim.of_int start and stop = Symdim.of_int stop in
      if family = "slice" then Some (Op.Slice { dim; start; stop })
      else Some (Op.Hlo_slice { dim; start; stop })
  | "transpose" -> Some (Op.Transpose { dim0 = 0; dim1 = 1 })
  | "reshape" ->
      let shape =
        pick st [ [ 16 ]; [ 4; 4 ]; [ 2; 8 ]; [ 8; 2 ]; [ 4 ]; [ 2; 2 ]; [ 8 ] ]
      in
      Some (Op.Reshape { shape = Shape.of_ints shape })
  | "pad" ->
      let before = Symdim.of_int (Random.State.int st 3)
      and after = Symdim.of_int (Random.State.int st 3) in
      Some (Op.Pad { dim; before; after })
  | "sum" -> Some Op.Sum_n
  | "reduce_sum" -> Some (Op.Reduce_sum { dim; keepdim = Random.State.bool st })
  | "reduce_mean" ->
      Some (Op.Reduce_mean { dim; keepdim = Random.State.bool st })
  | "reduce_max" -> Some (Op.Reduce_max { dim; keepdim = Random.State.bool st })
  | "softmax" -> Some (Op.Softmax { dim })
  | "layernorm" -> Some (Op.Layernorm { eps = 1e-5 })
  | "rmsnorm" -> Some (Op.Rmsnorm { eps = 1e-5 })
  | "embedding" -> Some Op.Embedding
  | "rope" -> Some Op.Rope
  | "mse_loss" -> Some Op.Mse_loss
  | "cross_entropy" -> Some Op.Cross_entropy
  | "all_reduce" -> Some Op.All_reduce
  | "reduce_scatter" ->
      Some (Op.Reduce_scatter { dim; index = Random.State.int st 2; count = 2 })
  | "all_gather" -> Some (Op.All_gather { dim })
  | "swiglu_fused" -> Some Op.Swiglu_fused
  | "hlo_dot" -> Some Op.Hlo_dot
  | _ -> None

(* Binder names appearing in the pattern, with the operator family each
   must draw from. A [Bound] selector reuses a [Family] binder's op. *)
let binders pat =
  let rec go acc = function
    | Pattern.V _ | Pattern.C _ -> acc
    | Pattern.P (sel, args) ->
        let acc =
          match sel with
          | Pattern.Family { family; bind } ->
              if List.mem_assoc bind acc then acc else (bind, family) :: acc
          | Pattern.Fixed _ | Pattern.Bound _ -> acc
        in
        List.fold_left go acc args
  in
  List.rev (go [] pat)

let mentions_integer_op pat =
  let rec go = function
    | Pattern.V _ | Pattern.C _ -> false
    | Pattern.P (sel, args) ->
        (match sel with
        | Pattern.Fixed (Op.Embedding | Op.Cross_entropy) -> true
        | Pattern.Family { family = "embedding" | "cross_entropy"; _ } -> true
        | _ -> false)
        || List.exists go args
  in
  go pat

let has_prefix p x =
  String.length x >= String.length p && String.sub x 0 (String.length p) = p

(* Index suffix of an enumerated chunk variable ("x3" -> 3). *)
let var_index x =
  match int_of_string_opt (String.sub x 1 (String.length x - 1)) with
  | Some i -> i
  | None | (exception Invalid_argument _) -> 0

let sample ?(hints = []) st pat =
  let ( let* ) = Option.bind in
  let has p = List.exists p hints in
  let* ops =
    List.fold_left
      (fun acc (bind, family) ->
        let* acc = acc in
        let* op = sample_op st family in
        Some ((bind, op) :: acc))
      (Some []) (binders pat)
  in
  let allow_integers = mentions_integer_op pat in
  (* Four sampling modes: fully independent variables; a shared shape
     (binary ops, concats and sums need equal chunk shapes far too often
     for independent draws); a "rows" mode where the enumerated chunk
     variables are rank-2 and auxiliary operands (weights, cos/sin
     tables, targets) are rank-1, which is the signature row-wise lemmas
     like rope-concat-rows and cross_entropy-concat expect; and one
     shared tensor, which puts every variable in the same e-class — the
     only way rules conditioned on replicated arguments
     (sum-of-replicas) ever fire. Hints pin the mode instead of leaving
     it to chance, so lemmas whose guards a blind draw almost never
     satisfies still get exercised. *)
  let mode =
    if has (function Lemma.Replicated -> true | _ -> false) then 0
    else if has (function Lemma.Rows -> true | _ -> false) then 3
    else if has (function Lemma.Uniform_chunks -> true | _ -> false) then 1
    else Random.State.int st 6
  in
  let concrete_last =
    List.find_map (function Lemma.Concrete_last k -> Some k | _ -> None) hints
  in
  let with_last s =
    match concrete_last with
    | None -> s
    | Some k -> ( match List.rev s with [] -> s | _ :: r -> List.rev (k :: r))
  in
  let shared_dims = with_last (sample_shape st) in
  let shared_shape = Shape.of_ints shared_dims in
  let shared_tensor =
    Tensor.create ~dtype:Dtype.F32 ~name:"$shared" shared_shape
  in
  let integer_leaning x =
    String.length x > 0 && (x.[0] = 'y' || x = "ids" || x = "targets")
  in
  (* Rows mode: total row count of the concatenated chunk variables, so
     auxiliary operands can also be sampled as full-height tables (rope's
     cos/sin caches are sliced by row offset and must span all chunks). *)
  let total_rows =
    4 * List.length (List.filter (fun v -> v.[0] = 'x') (Pattern.vars pat))
  in
  let concat_dim =
    List.find_map
      (function
        | _, (Op.Concat { dim } | Op.Hlo_concatenate { dim }) -> Some dim
        | _ -> None)
      ops
  in
  let contraction = has (function Lemma.Contraction -> true | _ -> false) in
  let hinted_shape x base =
    let pick_hint =
      List.find_map
        (function
          | Lemma.Vector_aux vs when List.mem x vs ->
              Some [ List.nth base (List.length base - 1) ]
          | Lemma.Matrix_aux vs when List.mem x vs -> Some [ 4; 4 ]
          | Lemma.Table_aux vs when List.mem x vs -> Some [ total_rows; 4 ]
          | Lemma.Broadcast_vars vs when List.mem x vs -> (
              match concat_dim with
              | Some d when d < List.length base ->
                  Some (List.mapi (fun i n -> if i = d then 1 else n) base)
              | _ -> Some base)
          | _ -> None)
        hints
    in
    match pick_hint with
    | Some s -> s
    | None ->
        if contraction && (x.[0] = 'x' || x.[0] = 'y') then
          (* Pairwise-matching contraction dims: x_i : [4; k_i] columns
             against y_i : [k_i; 4] rows. *)
          let k = if var_index x mod 2 = 0 then 2 else 4 in
          if x.[0] = 'x' then [ 4; k ] else [ k; 4 ]
        else base
  in
  let hinted_dtype x base =
    if
      has (function
        | Lemma.Integer_vars ps -> List.exists (fun p -> has_prefix p x) ps
        | _ -> false)
    then Dtype.I64
    else base
  in
  let tensors =
    List.map
      (fun x ->
        if mode = 0 then (x, shared_tensor)
        else
          let dtype =
            hinted_dtype x
              (if not allow_integers then Dtype.F32
               else
                 let threshold = if integer_leaning x then 2 else 1 in
                 if Random.State.int st 4 < threshold then Dtype.I64
                 else Dtype.F32)
          in
          let base =
            if mode <= 2 then shared_dims
            else if mode = 3 then
              with_last
                (if x.[0] = 'x' then [ 4; 4 ]
                 else if Random.State.bool st then [ 4 ]
                 else [ total_rows; 4 ])
            else with_last (sample_shape st)
          in
          (x, Tensor.create ~dtype ~name:("$" ^ x) (Shape.of_ints (hinted_shape x base))))
      (Pattern.vars pat)
  in
  (* Equal-shape hints: a paired variable reuses its leader's freshly
     sampled shape (not the same tensor — the values must stay
     independent). *)
  let tensors =
    let reshape x like =
      match (List.assoc_opt x tensors, List.assoc_opt like tensors) with
      | Some t, Some leader when mode <> 0 ->
          Some
            ( x,
              Tensor.create ~dtype:(Tensor.dtype t) ~name:("$" ^ x)
                (Tensor.shape leader) )
      | _ -> None
    in
    let overrides =
      List.concat_map
        (function
          | Lemma.Paired ->
              List.filter_map
                (fun (x, _) ->
                  if x.[0] = 'y' then
                    reshape x ("x" ^ String.sub x 1 (String.length x - 1))
                  else None)
                tensors
          | Lemma.Same_shape groups ->
              List.concat_map
                (function
                  | leader :: rest ->
                      List.filter_map (fun x -> reshape x leader) rest
                  | [] -> [])
                groups
          | _ -> [])
        hints
    in
    List.map
      (fun (x, t) ->
        match List.assoc_opt x overrides with Some t' -> (x, t') | None -> (x, t))
      tensors
  in
  let rec build = function
    | Pattern.V x -> Some (Expr.leaf (List.assoc x tensors))
    | Pattern.C _ -> None
    | Pattern.P (sel, args) ->
        let* op =
          match sel with
          | Pattern.Fixed op -> Some op
          | Pattern.Family { bind; _ } | Pattern.Bound bind ->
              List.assoc_opt bind ops
        in
        let* args =
          List.fold_left
            (fun acc a ->
              let* acc = acc in
              let* e = build a in
              Some (e :: acc))
            (Some []) args
        in
        Some (Expr.app op (List.rev args))
  in
  let* expr = build pat in
  match infer expr with
  | Ok _ -> Some (expr, { ops; tensors })
  | Error _ -> None

let sample_retry ?(attempts = 40) ?hints st pat =
  let rec go n = if n = 0 then None
    else match sample ?hints st pat with Some r -> Some r | None -> go (n - 1)
  in
  go attempts
