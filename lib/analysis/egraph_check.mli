(** E-graph invariant checking (the debug pass egg ships, which the
    paper's checker relies on implicitly).

    Meant to run when the congruence invariant is supposed to hold, i.e.
    right after {!Entangle_egraph.Egraph.rebuild}:

    - [EGRAPH001] pending unions: [rebuild] has not been run;
    - [EGRAPH002] union-find parent chains are cyclic;
    - [EGRAPH003] the class table holds a non-canonical id;
    - [EGRAPH004] a hashcons entry is stale: its node key is
      non-canonical, or it points to a class that does not contain the
      node;
    - [EGRAPH005] congruence violation: two distinct classes contain the
      same canonical node;
    - [EGRAPH006] shape-analysis disagreement inside a class — an error
      when the shapes are concrete and provably different, a warning
      when equality is merely unprovable;
    - [EGRAPH007] a union merged two classes whose shapes provably
      disagreed ({!Egraph.Debug.shape_conflicts}); severity as for
      EGRAPH006;
    - [EGRAPH008] the cached O(1) {!Egraph.num_nodes} counter disagrees
      with an O(graph) recount;
    - [EGRAPH009] the incrementally maintained operator-family index is
      incomplete or, over canonical ids, unsound. *)

open Entangle_egraph

val check : Egraph.t -> Diagnostic.t list

exception Violation of Diagnostic.t list

val runner_hook : Egraph.t -> unit
(** Raises {!Violation} when {!check} finds any error-severity
    diagnostic; pass as [Runner.run ~invariant_check] to audit the
    e-graph after every saturation iteration. *)
