(** Symbolic bounded verification of the rewrite-lemma corpus.

    The numeric audit ({!Lemma_check}) spot-checks lemmas on random
    concrete tensors; this pass proves them. For every rule of every
    lemma it enumerates {e scenarios} — symbolic instantiations of the
    left-hand pattern with fresh dimension variables, for every rank up
    to a configurable bound and every choice of the attribute knobs the
    rule's guards look at (concatenation axis, slice variant, transpose
    pair, reduction axis, ...). Each scenario is pushed through the real
    e-matching machinery, the rule's applier produces its equations, and
    both sides are evaluated to symbolic index functions ({!Symeval})
    whose shapes and values are discharged through the
    {!Entangle_symbolic.Decide} Fourier–Motzkin engine under the
    scenario's side-condition store ({!Entangle_symbolic.Sterm}).

    The verdict vocabulary is deliberately explicit — coverage is never
    silently partial:

    - [LEMMA200] (error) a rule is {e shape}-unsound: the two sides have
      provably different shapes, confirmed on a concrete counterexample.
    - [LEMMA201] (error) a rule's side conditions are unsatisfiable:
      every scenario that produced equations assumed an infeasible
      constraint store, so the rule can never soundly fire.
    - [LEMMA202] (error) a rule is {e value}-unsound, confirmed by a
      concrete counterexample (dimension assignment plus data seed).
    - [LEMMA210] (warning) the rule uses operators outside the symbolic
      fragment (e.g. [reshape]) and cannot be verified by this pass.
    - [LEMMA211] (warning) the rule was symbolically exercised but
      neither proved nor refuted (the prover is incomplete; concrete
      probes agreed).

    Refutations are {e always} confirmed numerically before being
    reported as errors: a failed symbolic proof alone is never treated
    as unsoundness. *)

open Entangle_lemmas

type config = {
  rank_bound : int;  (** tensor ranks enumerated per scenario: 1..bound *)
  max_rule_vars : int;
      (** rules whose left-hand side binds more pattern variables are
          skipped (variadic lemmas are verified at their small arities) *)
  max_scenarios : int;  (** cap on enumerated scenarios per rule *)
  max_matches : int;  (** e-matching substitutions tried per scenario *)
  max_equations : int;  (** applier equations evaluated per match *)
  probe_envs : int;
      (** concrete dimension assignments sampled when confirming or
          rejecting a candidate counterexample *)
  probe_seeds : int list;  (** data seeds per probed assignment *)
  tol : float;  (** max elementwise deviation for the numeric probe *)
}

val default_config : config

type rule_status =
  | Verified of string  (** proved in the named scenario *)
  | Refuted of string  (** confirmed counterexample (detail in message) *)
  | Unsupported of string  (** outside the fragment *)
  | Undecided of string  (** exercised, neither proved nor refuted *)
  | Vacuous  (** equations only under infeasible side conditions *)
  | Unapplied  (** no scenario made the rule fire *)
  | Skipped of string  (** above the arity cap *)

type verdict =
  | V_verified
  | V_refuted
  | V_vacuous
  | V_unsupported
  | V_undecided
  | V_unattempted
      (** no rule fired in any scenario — the pass proved nothing; the
          lint gate requires such a lemma to be numerically exercised or
          waived *)

type lemma_report = {
  lemma : string;
  klass : Lemma.klass;
  verdict : verdict;
  rules : rule_status list;  (** indexed like [Lemma.rules] *)
  scenarios : int;  (** scenarios attempted across all rules *)
  proved : int;  (** equations discharged symbolically *)
}

type report = { rank_bound : int; lemmas : lemma_report list }

val verdict_name : verdict -> string

val verify_lemma :
  ?config:config -> Lemma.t -> Diagnostic.t list * lemma_report

val verify :
  ?config:config ->
  ?span:(string -> (unit -> Diagnostic.t list * lemma_report) -> Diagnostic.t list * lemma_report) ->
  Lemma.t list ->
  Diagnostic.t list * report
(** Verify a corpus. [span] wraps each lemma's verification (the CLI
    passes a tracing span named after the lemma). *)
