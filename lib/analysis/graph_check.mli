(** Well-formedness analysis of computation graphs.

    The refinement checker assumes its input graphs are in SSA-like
    topological order with accurate per-tensor metadata; a malformed
    graph silently poisons every verdict downstream. This pass re-checks
    everything from first principles:

    - [GRAPH001] a node input is neither a graph input nor produced by an
      {e earlier} node (def-before-use / dangling reference);
    - [GRAPH002] SSA discipline: duplicate node ids, or one tensor
      produced by two nodes;
    - [GRAPH003] the producer index disagrees with the node list;
    - [GRAPH004] a cycle through producer references;
    - [GRAPH005] dead node: output unreachable from the graph outputs
      (warning);
    - [GRAPH006] unused graph input (warning);
    - [GRAPH007] stored output shape differs from re-running
      [Op.infer_shape] on the node;
    - [GRAPH008] stored output dtype differs from [Op.infer_dtype];
    - [GRAPH009] a graph output is neither an input nor produced;
    - [GRAPH010] operator arity violation;
    - [GRAPH011] shape or dtype inference itself fails on a node. *)

open Entangle_ir

val check : Graph.t -> Diagnostic.t list
(** All findings for one graph, errors first. *)

val check_named : ?name:string -> Graph.t -> Diagnostic.t list
(** Like {!check} but reported under the given display name instead of
    the graph's own (distinguishes the sequential and distributed graph
    of one model). *)
