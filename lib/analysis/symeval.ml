open Entangle_symbolic
open Entangle_ir

type mode = Check | Assume

type value = { shape : Shape.t; at : Sterm.index list -> Sterm.t }
type failure = Unsupported of string | Ill_typed of string

exception Fail of failure

type ctx = {
  mode : mode;
  mutable store : Constraint_store.t;
  mutable fresh : int;
}

let create ~mode store = { mode; store; fresh = 0 }
let store ctx = ctx.store
let unsupported fmt = Fmt.kstr (fun s -> raise (Fail (Unsupported s))) fmt
let ill_typed fmt = Fmt.kstr (fun s -> raise (Fail (Ill_typed s))) fmt

(* Binders are reserved-prefix symbols; [Sterm.norm] renames them
   canonically, so they only need to be distinct within one term. *)
let binder ctx =
  let n = ctx.fresh in
  ctx.fresh <- n + 1;
  Printf.sprintf "%sv%d" Sterm.binder_prefix n

(* Side conditions: prove, or record (Assume), or fail (Check). All
   conditions are required eagerly during evaluation — [at] closures
   never touch the store, so reading {!store} after {!eval} sees every
   assumption. *)
let require_eq ctx a b =
  if Symdim.equal a b || Decide.prove_eq ctx.store a b then ()
  else
    match ctx.mode with
    | Assume -> ctx.store <- Constraint_store.add_eq ctx.store a b
    | Check ->
        ill_typed "cannot prove %a = %a" Symdim.pp a Symdim.pp b

(* [e >= 0] *)
let require_ge ctx e =
  if Decide.prove_le ctx.store Symdim.zero e then ()
  else
    match ctx.mode with
    | Assume -> ctx.store <- Constraint_store.add_ge ctx.store e
    | Check -> ill_typed "cannot prove %a >= 0" Symdim.pp e

let axis ~rank d =
  let a = if d < 0 then rank + d else d in
  if a < 0 || a >= rank then ill_typed "axis %d out of range for rank %d" d rank
  else a

let aff = function
  | Sterm.I d -> d
  | Sterm.S _ ->
      unsupported "data-dependent index into a position-sensitive operator"

let shift off = function
  | Sterm.I d -> Sterm.I (Symdim.add off d)
  | Sterm.S t -> Sterm.S (Sterm.add t (Sterm.DimV off))

let nth = List.nth
let set_nth l n x = List.mapi (fun i y -> if i = n then x else y) l
let remove_nth l n = List.filteri (fun i _ -> i <> n) l

let insert_nth l n x =
  let rec go i = function
    | rest when i = n -> x :: rest
    | y :: rest -> y :: go (i + 1) rest
    | [] -> [ x ]
  in
  go 0 l

let rec drop n l = if n <= 0 then l else match l with [] -> [] | _ :: t -> drop (n - 1) t
let take n l = List.filteri (fun i _ -> i < n) l
let is_one d = match Symdim.to_int d with Some 1 -> true | _ -> false

let leaf t = { shape = Tensor.shape t; at = Sterm.access (Tensor.name t) }

(* {1 Broadcasting} *)

let broadcast2 ctx sa sb =
  let ra = List.length sa and rb = List.length sb in
  let r = max ra rb in
  let padded s k = List.init (r - k) (fun _ -> None) @ List.map Option.some s in
  List.map2
    (fun a b ->
      match (a, b) with
      | None, Some d | Some d, None -> d
      | Some a, Some b ->
          if Symdim.equal a b then a
          else if is_one a then b
          else if is_one b then a
          else (
            require_eq ctx a b;
            a)
      | None, None -> assert false)
    (padded sa ra) (padded sb rb)

(* Project an output index onto a (possibly broadcast) operand: drop the
   leading extra axes and zero the operand's size-1 axes. *)
let proj v idx =
  let r = Shape.rank v.shape in
  let dropped = drop (List.length idx - r) idx in
  List.mapi
    (fun i ix ->
      if is_one (Shape.dim v.shape i) then Sterm.I Symdim.zero else ix)
    dropped

let ew1 f a = { shape = a.shape; at = (fun idx -> f (a.at idx)) }

let ew2 ctx f a b =
  let shape = broadcast2 ctx a.shape b.shape in
  { shape; at = (fun idx -> f (a.at (proj a idx)) (b.at (proj b idx))) }

(* {1 Rearrangement} *)

let concat_value ctx ~dim = function
  | [] -> ill_typed "concat: no operands"
  | v0 :: rest as vs ->
      let r = Shape.rank v0.shape in
      let d = axis ~rank:r dim in
      List.iter
        (fun v ->
          if Shape.rank v.shape <> r then ill_typed "concat: rank mismatch";
          List.iteri
            (fun i dv -> if i <> d then require_eq ctx dv (Shape.dim v0.shape i))
            v.shape)
        rest;
      let total =
        List.fold_left
          (fun acc v -> Symdim.add acc (Shape.dim v.shape d))
          Symdim.zero vs
      in
      let at idx =
        let i = aff (nth idx d) in
        let rec pick off = function
          | [] -> assert false
          | [ v ] -> v.at (set_nth idx d (Sterm.I (Symdim.sub i off)))
          | v :: tail ->
              let sz = Shape.dim v.shape d in
              let here = v.at (set_nth idx d (Sterm.I (Symdim.sub i off))) in
              (* inside this chunk iff [off + sz - 1 - i >= 0] *)
              Sterm.sel
                ~cond:(Symdim.sub (Symdim.add off (Symdim.sub sz Symdim.one)) i)
                here
                (pick (Symdim.add off sz) tail)
        in
        pick Symdim.zero vs
      in
      { shape = Shape.set_dim v0.shape d total; at }

let slice_value ctx ~dim ~start ~stop v =
  let r = Shape.rank v.shape in
  let d = axis ~rank:r dim in
  let size = Shape.dim v.shape d in
  require_ge ctx start;
  require_ge ctx (Symdim.sub stop start);
  require_ge ctx (Symdim.sub size stop);
  {
    shape = Shape.set_dim v.shape d (Symdim.sub stop start);
    at = (fun idx -> v.at (set_nth idx d (shift start (nth idx d))));
  }

let transpose_value ~dim0 ~dim1 v =
  let r = Shape.rank v.shape in
  let d0 = axis ~rank:r dim0 and d1 = axis ~rank:r dim1 in
  let swap l =
    List.mapi
      (fun i x -> if i = d0 then nth l d1 else if i = d1 then nth l d0 else x)
      l
  in
  { shape = swap v.shape; at = (fun idx -> v.at (swap idx)) }

let pad_value ctx ~dim ~before ~after v =
  let r = Shape.rank v.shape in
  let d = axis ~rank:r dim in
  let size = Shape.dim v.shape d in
  require_ge ctx before;
  require_ge ctx after;
  let shape =
    Shape.set_dim v.shape d (Symdim.add before (Symdim.add size after))
  in
  let zero = Sterm.cst_int 0 in
  let at idx =
    let j = Symdim.sub (aff (nth idx d)) before in
    let inner = v.at (set_nth idx d (Sterm.I j)) in
    (* [j >= 0] and [size - 1 - j >= 0], else the zero padding *)
    Sterm.sel ~cond:j
      (Sterm.sel ~cond:(Symdim.sub (Symdim.sub size Symdim.one) j) inner zero)
      zero
  in
  { shape; at }

(* {1 Reductions} *)

let reduce_value ctx kind ~dim ~keepdim v =
  let r = Shape.rank v.shape in
  let d = axis ~rank:r dim in
  let n = Shape.dim v.shape d in
  let shape =
    if keepdim then Shape.set_dim v.shape d Symdim.one
    else remove_nth v.shape d
  in
  let at idx =
    let b = binder ctx in
    let bi = Sterm.I (Symdim.sym b) in
    let body = v.at (if keepdim then set_nth idx d bi else insert_nth idx d bi) in
    match kind with
    | `Sum -> Sterm.sum_over b n body
    | `Mean -> Sterm.div_dims (Sterm.sum_over b n body) [ n ]
    | `Max -> Sterm.max_over b n body
  in
  { shape; at }

let sum_value ctx = function
  | [] -> ill_typed "sum: no operands"
  | v0 :: rest as vs ->
      List.iter
        (fun v ->
          if Shape.rank v.shape <> Shape.rank v0.shape then
            ill_typed "sum: rank mismatch";
          List.iteri (fun i dv -> require_eq ctx dv (Shape.dim v0.shape i)) v.shape)
        rest;
      {
        shape = v0.shape;
        at =
          (fun idx ->
            List.fold_left
              (fun acc v -> Sterm.add acc (v.at idx))
              ((List.hd vs).at idx)
              (List.tl vs));
      }

let reduce_scatter_value ctx ~dim ~index ~count vs =
  if count <= 0 || index < 0 || index >= count then
    ill_typed "reduce_scatter: index %d not in [0, %d)" index count;
  let summed = sum_value ctx vs in
  let r = Shape.rank summed.shape in
  let d = axis ~rank:r dim in
  let size = Shape.dim summed.shape d in
  match Symdim.div_int size count with
  | None ->
      unsupported "reduce_scatter: %a not divisible by %d in affine arithmetic"
        Symdim.pp size count
  | Some chunk ->
      let start = Symdim.mul_int index chunk in
      {
        shape = Shape.set_dim summed.shape d chunk;
        at = (fun idx -> summed.at (set_nth idx d (shift start (nth idx d))));
      }

let all_gather_value ctx ~dim = function
  | [] -> ill_typed "all_gather: no operands"
  | v0 :: rest as vs ->
      List.iter
        (fun v ->
          if Shape.rank v.shape <> Shape.rank v0.shape then
            ill_typed "all_gather: rank mismatch";
          List.iteri (fun i dv -> require_eq ctx dv (Shape.dim v0.shape i)) v.shape)
        rest;
      concat_value ctx ~dim vs

(* {1 Neural-network kernels} *)

let softmax_value ctx ~dim v =
  let r = Shape.rank v.shape in
  let d = axis ~rank:r dim in
  let n = Shape.dim v.shape d in
  let at idx =
    let num = Sterm.app "exp" [ v.at idx ] in
    let b = binder ctx in
    let den =
      Sterm.sum_over b n
        (Sterm.app "exp" [ v.at (set_nth idx d (Sterm.I (Symdim.sym b))) ])
    in
    Sterm.app "div" [ num; den ]
  in
  { shape = v.shape; at }

let inv_sqrt_eps ~eps t =
  Sterm.app "div"
    [ Sterm.cst_int 1; Sterm.app "sqrt" [ Sterm.add t (Sterm.CstF eps) ] ]

let vector_aux ctx name v d =
  if Shape.rank v.shape <> 1 then ill_typed "%s: auxiliary operand rank" name;
  require_eq ctx (Shape.dim v.shape 0) d

let layernorm_value ctx ~eps x w b =
  let r = Shape.rank x.shape in
  if r < 1 then ill_typed "layernorm: rank";
  let d = Shape.dim x.shape (r - 1) in
  vector_aux ctx "layernorm" w d;
  vector_aux ctx "layernorm" b d;
  let at idx =
    let x_at i = x.at (set_nth idx (r - 1) i) in
    let bm = binder ctx in
    let mean =
      Sterm.div_dims (Sterm.sum_over bm d (x_at (Sterm.I (Symdim.sym bm)))) [ d ]
    in
    let centered t = Sterm.sub t mean in
    let bv = binder ctx in
    let cv = centered (x_at (Sterm.I (Symdim.sym bv))) in
    let var = Sterm.div_dims (Sterm.sum_over bv d (Sterm.mul cv cv)) [ d ] in
    let last = nth idx (r - 1) in
    Sterm.add
      (Sterm.mul
         (Sterm.mul (centered (x.at idx)) (inv_sqrt_eps ~eps var))
         (w.at [ last ]))
      (b.at [ last ])
  in
  { shape = x.shape; at }

let rmsnorm_value ctx ~eps x w =
  let r = Shape.rank x.shape in
  if r < 1 then ill_typed "rmsnorm: rank";
  let d = Shape.dim x.shape (r - 1) in
  vector_aux ctx "rmsnorm" w d;
  let at idx =
    let b = binder ctx in
    let xb = x.at (set_nth idx (r - 1) (Sterm.I (Symdim.sym b))) in
    let ms = Sterm.div_dims (Sterm.sum_over b d (Sterm.mul xb xb)) [ d ] in
    Sterm.mul
      (Sterm.mul (x.at idx) (inv_sqrt_eps ~eps ms))
      (w.at [ nth idx (r - 1) ])
  in
  { shape = x.shape; at }

let embedding_value w ids =
  if Shape.rank w.shape <> 2 then ill_typed "embedding: weight rank";
  let d = Shape.dim w.shape 1 in
  let r = Shape.rank ids.shape in
  {
    shape = ids.shape @ [ d ];
    at =
      (fun idx -> w.at [ Sterm.S (ids.at (take r idx)); nth idx r ]);
  }

let rope_value ctx x cos sin =
  let r = Shape.rank x.shape in
  if r < 2 then ill_typed "rope: rank";
  let d = Shape.dim x.shape (r - 1) in
  let h =
    match Symdim.to_int d with
    | Some dc when dc > 0 && dc mod 2 = 0 -> dc / 2
    | Some _ -> ill_typed "rope: odd last dim"
    | None -> unsupported "rope: symbolic last dim (no concrete half-point)"
  in
  let rot =
    {
      shape = x.shape;
      at =
        (fun idx ->
          let i = aff (nth idx (r - 1)) in
          let at_last j = x.at (set_nth idx (r - 1) (Sterm.I j)) in
          (* rotate-half: [-x[i+h]] for [i < h], [x[i-h]] above *)
          Sterm.sel
            ~cond:(Symdim.sub (Symdim.of_int (h - 1)) i)
            (Sterm.neg (at_last (Symdim.add i (Symdim.of_int h))))
            (at_last (Symdim.sub i (Symdim.of_int h))))
    }
  in
  ew2 ctx Sterm.add (ew2 ctx Sterm.mul x cos) (ew2 ctx Sterm.mul rot sin)

let mse_value ctx p t =
  if Shape.rank p.shape <> Shape.rank t.shape then
    ill_typed "mse_loss: rank mismatch";
  List.iteri (fun i dv -> require_eq ctx dv (Shape.dim t.shape i)) p.shape;
  let r = Shape.rank p.shape in
  let at _ =
    let rec go i rev_idx =
      if i = r then begin
        let idx = List.rev rev_idx in
        let d = Sterm.sub (p.at idx) (t.at idx) in
        Sterm.mul d d
      end
      else
        let b = binder ctx in
        Sterm.sum_over b (Shape.dim p.shape i)
          (go (i + 1) (Sterm.I (Symdim.sym b) :: rev_idx))
    in
    let total = go 0 [] in
    if r = 0 then total else Sterm.div_dims total p.shape
  in
  { shape = Shape.scalar; at }

let cross_entropy_value ctx logits targets =
  if Shape.rank logits.shape <> 2 then ill_typed "cross_entropy: logits rank";
  if Shape.rank targets.shape <> 1 then
    ill_typed "cross_entropy: targets rank";
  let s = Shape.dim logits.shape 0 and v = Shape.dim logits.shape 1 in
  require_eq ctx (Shape.dim targets.shape 0) s;
  let at _ =
    let bi = binder ctx in
    let i = Sterm.I (Symdim.sym bi) in
    let bj = binder ctx in
    let z =
      Sterm.sum_over bj v
        (Sterm.app "exp" [ logits.at [ i; Sterm.I (Symdim.sym bj) ] ])
    in
    let lse = Sterm.app "log" [ z ] in
    let picked = logits.at [ i; Sterm.S (targets.at [ i ]) ] in
    Sterm.div_dims (Sterm.sum_over bi s (Sterm.sub lse picked)) [ s ]
  in
  { shape = Shape.scalar; at }

(* {1 The operator dispatch} *)

let unary_sym = function
  | Op.Exp -> Some "exp"
  | Op.Log -> Some "log"
  | Op.Sqrt -> Some "sqrt"
  | Op.Rsqrt -> Some "rsqrt"
  | Op.Relu -> Some "relu"
  | Op.Gelu -> Some "gelu"
  | Op.Silu -> Some "silu"
  | Op.Tanh -> Some "tanh"
  | Op.Sigmoid -> Some "sigmoid"
  | _ -> None

let apply ctx op vs =
  match (op, vs) with
  | Op.Add, [ a; b ] -> ew2 ctx Sterm.add a b
  | Op.Sub, [ a; b ] -> ew2 ctx Sterm.sub a b
  | Op.Mul, [ a; b ] -> ew2 ctx Sterm.mul a b
  | Op.Div, [ a; b ] -> ew2 ctx (fun x y -> Sterm.app "div" [ x; y ]) a b
  | Op.Maximum, [ a; b ] -> ew2 ctx Sterm.max2 a b
  | Op.Pow, [ a; b ] -> ew2 ctx (fun x y -> Sterm.app "pow" [ x; y ]) a b
  | Op.Neg, [ a ] -> ew1 Sterm.neg a
  | op, [ a ] when unary_sym op <> None ->
      ew1 (fun t -> Sterm.app (Option.get (unary_sym op)) [ t ]) a
  | Op.Square, [ a ] -> ew1 (fun t -> Sterm.mul t t) a
  | Op.Scale r, [ a ] -> ew1 (Sterm.scale r) a
  | Op.Identity, [ a ] -> a
  | (Op.Matmul | Op.Hlo_dot), [ a; b ] -> (
      let ra = Shape.rank a.shape and rb = Shape.rank b.shape in
      if ra < 2 || rb < 2 then ill_typed "matmul: rank"
      else begin
        let m = Shape.dim a.shape (ra - 2) and k = Shape.dim a.shape (ra - 1) in
        let kb = Shape.dim b.shape (rb - 2) and n = Shape.dim b.shape (rb - 1) in
        require_eq ctx k kb;
        let batched =
          if rb = 2 then Some (take (ra - 2) a.shape)
          else if ra = rb then begin
            List.iteri
              (fun i da ->
                if i < ra - 2 then require_eq ctx da (Shape.dim b.shape i))
              a.shape;
            Some (take (ra - 2) a.shape)
          end
          else None
        in
        match batched with
        | None -> ill_typed "matmul: batch ranks"
        | Some batch ->
            let nb = List.length batch in
            let at idx =
              let bidx = take nb idx in
              let i = nth idx nb and j = nth idx (nb + 1) in
              let bk = binder ctx in
              let kv = Sterm.I (Symdim.sym bk) in
              Sterm.sum_over bk k
                (Sterm.mul
                   (a.at (bidx @ [ i; kv ]))
                   (b.at ((if rb = 2 then [] else bidx) @ [ kv; j ])))
            in
            { shape = batch @ [ m; n ]; at }
      end)
  | (Op.Concat { dim } | Op.Hlo_concatenate { dim }), vs ->
      concat_value ctx ~dim vs
  | (Op.Slice { dim; start; stop } | Op.Hlo_slice { dim; start; stop }), [ a ]
    ->
      slice_value ctx ~dim ~start ~stop a
  | Op.Transpose { dim0; dim1 }, [ a ] -> transpose_value ~dim0 ~dim1 a
  | Op.Reshape _, _ ->
      unsupported "reshape is outside the index-function fragment"
  | Op.Pad { dim; before; after }, [ a ] -> pad_value ctx ~dim ~before ~after a
  | (Op.Sum_n | Op.All_reduce), vs -> sum_value ctx vs
  | Op.Reduce_sum { dim; keepdim }, [ a ] ->
      reduce_value ctx `Sum ~dim ~keepdim a
  | Op.Reduce_mean { dim; keepdim }, [ a ] ->
      reduce_value ctx `Mean ~dim ~keepdim a
  | Op.Reduce_max { dim; keepdim }, [ a ] ->
      reduce_value ctx `Max ~dim ~keepdim a
  | Op.Softmax { dim }, [ a ] -> softmax_value ctx ~dim a
  | Op.Layernorm { eps }, [ x; w; b ] -> layernorm_value ctx ~eps x w b
  | Op.Rmsnorm { eps }, [ x; w ] -> rmsnorm_value ctx ~eps x w
  | Op.Embedding, [ w; ids ] -> embedding_value w ids
  | Op.Rope, [ x; cos; sin ] -> rope_value ctx x cos sin
  | Op.Mse_loss, [ p; t ] -> mse_value ctx p t
  | Op.Cross_entropy, [ l; t ] -> cross_entropy_value ctx l t
  | Op.Reduce_scatter { dim; index; count }, vs ->
      reduce_scatter_value ctx ~dim ~index ~count vs
  | Op.All_gather { dim }, vs -> all_gather_value ctx ~dim vs
  | Op.Swiglu_fused, [ g; u ] ->
      ew2 ctx Sterm.mul (ew1 (fun t -> Sterm.app "silu" [ t ]) g) u
  | op, vs -> ill_typed "%s applied to %d operands" (Op.name op) (List.length vs)

let rec eval_exn ctx = function
  | Expr.Leaf t -> leaf t
  | Expr.App (op, args) -> apply ctx op (List.map (eval_exn ctx) args)

let eval ctx e = match eval_exn ctx e with
  | v -> Ok v
  | exception Fail f -> Error f
