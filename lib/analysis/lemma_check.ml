open Entangle_symbolic
open Entangle_ir
open Entangle_egraph
open Entangle_lemmas

type config = {
  eval_seeds : int list;
  attempts : int;
  per_lemma_target : int;
  tol : float;
}

let default_config =
  { eval_seeds = [ 1; 2; 3 ]; attempts = 150; per_lemma_target = 3; tol = 1e-4 }

type stats = {
  lemmas_audited : int;
  lemmas_exercised : int;
  comparisons : int;
  unexercised : string list;
}

let ( let* ) = Option.bind

let all_some opts =
  List.fold_right
    (fun o acc ->
      match (o, acc) with Some x, Some xs -> Some (x :: xs) | _ -> None)
    opts (Some [])

(* --- structural checks ------------------------------------------------- *)

let rec pattern_equal a b =
  match (a, b) with
  | Pattern.V x, Pattern.V y -> String.equal x y
  | Pattern.C i, Pattern.C j -> Id.equal i j
  | Pattern.P (sa, xs), Pattern.P (sb, ys) ->
      List.length xs = List.length ys
      && List.for_all2 pattern_equal xs ys
      && (match (sa, sb) with
         | Pattern.Fixed oa, Pattern.Fixed ob -> Op.equal oa ob
         | Pattern.Family fa, Pattern.Family fb ->
             String.equal fa.family fb.family && String.equal fa.bind fb.bind
         | Pattern.Bound na, Pattern.Bound nb -> String.equal na nb
         | _ -> false)
  | _ -> false

let structural_lemma (l : Lemma.t) =
  let loc ?rule () = Diagnostic.Lemma { lemma = l.name; rule; seed = None } in
  let per_rule ri (r : Rule.t) =
    let ds = ref [] in
    (match r.lhs with
    | Pattern.V _ | Pattern.C _ ->
        ds :=
          Diagnostic.error ~code:"LEMMA004" (loc ~rule:ri ())
            "left-hand side is a bare variable: it matches every e-class"
          :: !ds
    | Pattern.P _ -> ());
    (match r.applier with
    | Rule.Syntactic rhs ->
        let bound = Pattern.vars r.lhs in
        let missing =
          List.filter (fun x -> not (List.mem x bound)) (Pattern.vars rhs)
        in
        if missing <> [] then
          ds :=
            Diagnostic.error ~code:"LEMMA002" (loc ~rule:ri ())
              "right-hand side uses variable(s) %s not bound on the left"
              (String.concat ", " missing)
            :: !ds;
        if pattern_equal r.lhs rhs then
          ds :=
            Diagnostic.warning ~code:"LEMMA003" (loc ~rule:ri ())
              "identity rule: both sides are the same pattern"
            :: !ds
    | Rule.Conditional _ -> ());
    List.rev !ds
  in
  let rule_diags = List.concat (List.mapi per_rule l.rules) in
  if l.rules = [] then
    [
      Diagnostic.error ~code:"LEMMA001" (loc ())
        "lemma ships no rewrite rules";
    ]
  else rule_diags

let structural lemmas = List.concat_map structural_lemma lemmas

(* --- differential evaluation ------------------------------------------- *)

(* Turn a (possibly rewritten) pattern back into a ground expression
   under an e-matching substitution. The e-graph holds only the
   instantiated left-hand side plus a few seeded context terms and no
   unions have happened, so extraction per class is exact. *)
let rec expr_of g subst = function
  | Pattern.V x -> Option.bind (Subst.var_opt subst x) (Extract.best g)
  | Pattern.C id -> Extract.best g id
  | Pattern.P (sel, args) ->
      let* op =
        match sel with
        | Pattern.Fixed op -> Some op
        | Pattern.Family { bind; _ } | Pattern.Bound bind ->
            Subst.op_opt subst bind
      in
      let* args = all_some (List.map (expr_of g subst) args) in
      Some (Expr.app op args)

(* Concrete size of one dimension of a ground expression. *)
let concrete_dim expr d =
  match Instantiate.infer expr with
  | Ok (shape, _) when d < Shape.rank shape -> Symdim.to_int (Shape.dim shape d)
  | _ -> None

(* Conditioned lemmas of the "constrained" flavor (section 4.3.2) fire
   only when helper terms already exist in the e-graph; a lone left-hand
   side never triggers them. Seed the context they look for: the
   complementary slice (for slices-cover) and every contiguous
   sub-concat (for concat-group). *)
let seed_context g expr =
  match expr with
  | Expr.App (((Op.Concat _ | Op.Sum_n) as op), args) when List.length args >= 3
    ->
      let n = List.length args in
      let arr = Array.of_list args in
      for i = 0 to n - 1 do
        for j = i + 1 to n - 1 do
          if j - i + 1 < n then
            ignore
              (Egraph.add_expr g
                 (Expr.app op (Array.to_list (Array.sub arr i (j - i + 1)))))
        done
      done
  | Expr.App (Op.Slice { dim; start; stop }, [ child ]) -> (
      match (Symdim.to_int start, Symdim.to_int stop, concrete_dim child dim) with
      | Some 0, Some stop, Some size when stop < size ->
          ignore
            (Egraph.add_expr g
               (Expr.app
                  (Op.Slice
                     {
                       dim;
                       start = Symdim.of_int stop;
                       stop = Symdim.of_int size;
                     })
                  [ child ]))
      | _ -> ())
  | _ -> ()

let is_finite v = List.for_all Float.is_finite (Ndarray.to_flat_list v)

(* Evaluate the two sides on shared random leaves. Float leaves are kept
   positive and away from zero so [log]/[sqrt]/[div] stay finite; seeds
   with a non-finite side are skipped rather than compared. *)
let eval_pair data_seed ea eb =
  let st = Random.State.make [| 0x5eed; data_seed |] in
  let values = Hashtbl.create 8 in
  let lookup tensor =
    let key = (Tensor.id tensor :> int) in
    match Hashtbl.find_opt values key with
    | Some v -> v
    | None ->
        let dims = Shape.concrete (fun _ -> 0) (Tensor.shape tensor) in
        let v =
          if Dtype.is_integer (Tensor.dtype tensor) then
            Ndarray.random_ints st ~hi:4 dims
          else
            Ndarray.map (fun x -> Float.abs x +. 0.125) (Ndarray.random st dims)
        in
        Hashtbl.replace values key v;
        v
  in
  let env = Interp.env_of_list [] in
  match
    let va = Interp.eval_expr env lookup ea in
    let vb = Interp.eval_expr env lookup eb in
    Some (va, vb)
  with
  | Some (va, vb) when is_finite va && is_finite vb -> Some (va, vb)
  | _ | (exception Invalid_argument _) | (exception Not_found) -> None

let take n l = List.filteri (fun i _ -> i < n) l

(* Deterministic per-(lemma, rule, try) sampling state. Deriving every
   instantiation from the audit seed and the diagnostic's own
   coordinates — rather than threading one mutable state through the
   whole corpus — means a LEMMA100 report reproduces by re-auditing
   just the named lemma with the same seed: the samples no longer
   depend on how many random draws every other lemma consumed. *)
let inst_state ~seed (l : Lemma.t) ri try_idx =
  Random.State.make [| 0xa0d17; seed; Hashtbl.hash l.name; ri; try_idx |]

let audit_lemma ?(config = default_config) ~seed (l : Lemma.t) =
  let diags = ref [] and compares = ref 0 in
  (* One shot per rule is not enough: most appliers are guarded on
     attributes (matching dims, zero starts, equal chunk shapes) that a
     random instantiation only sometimes satisfies, and produce no
     equation otherwise. Retry the whole sample-match-apply-evaluate
     pipeline until the lemma has been compared often enough. *)
  let one_try try_idx ri (r : Rule.t) =
    let st = inst_state ~seed l ri try_idx in
    match Instantiate.sample_retry ~attempts:5 ~hints:l.hints st r.lhs with
    | None -> ()
    | Some (lhs_expr, _) ->
        let g = Egraph.create () in
        let root = Egraph.add_expr g lhs_expr in
        seed_context g lhs_expr;
        let matches = take 4 (Ematch.match_class g r.lhs root) in
        List.iter
          (fun subst ->
            let equations =
              match r.applier with
              | Rule.Syntactic rhs -> [ (Pattern.c root, rhs) ]
              | Rule.Conditional f -> (
                  try f g root subst
                  with Invalid_argument _ | Not_found | Failure _ -> [])
            in
            List.iter
              (fun (lp, rp) ->
                match (expr_of g subst lp, expr_of g subst rp) with
                | Some el, Some er ->
                    List.iter
                      (fun data_seed ->
                        match eval_pair data_seed el er with
                        | None -> ()
                        | Some (va, vb) ->
                            incr compares;
                            if
                              not (Ndarray.approx_equal ~tol:config.tol va vb)
                            then
                              diags :=
                                Diagnostic.error ~code:"LEMMA100"
                                  (Diagnostic.Lemma
                                     {
                                       lemma = l.name;
                                       rule = Some ri;
                                       seed = Some data_seed;
                                     })
                                  "unsound rewrite (max deviation %g): %s  =/=  %s"
                                  (Ndarray.max_abs_diff va vb)
                                  (Expr.to_string el) (Expr.to_string er)
                                :: !diags)
                      config.eval_seeds
                | _ -> ())
              (take 4 equations))
          matches
  in
  let tries = ref 0 in
  while !compares < config.per_lemma_target && !tries < config.attempts do
    incr tries;
    List.iteri
      (fun ri r ->
        if !compares < config.per_lemma_target then one_try !tries ri r)
      l.rules
  done;
  if !compares = 0 then
    diags :=
      Diagnostic.warning ~code:"LEMMA101"
        (Diagnostic.Lemma { lemma = l.name; rule = None; seed = None })
        "no sampled instantiation exercised this lemma; it was not \
         differentially validated"
      :: !diags;
  (List.rev !diags, !compares)

let audit ?(config = default_config) ~seed lemmas =
  let structural_diags = structural lemmas in
  let diags = ref [] in
  let lemmas_exercised = ref 0 and comparisons = ref 0 in
  let unexercised = ref [] in
  List.iter
    (fun (l : Lemma.t) ->
      let ds, n = audit_lemma ~config ~seed l in
      diags := ds :: !diags;
      comparisons := !comparisons + n;
      if n > 0 then incr lemmas_exercised
      else unexercised := l.name :: !unexercised)
    lemmas;
  let stats =
    {
      lemmas_audited = List.length lemmas;
      lemmas_exercised = !lemmas_exercised;
      comparisons = !comparisons;
      unexercised = List.rev !unexercised;
    }
  in
  (structural_diags @ List.concat (List.rev !diags), stats)
