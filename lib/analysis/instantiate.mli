(** Random concrete instantiation of rewrite patterns.

    The differential lemma audit needs ground terms: every pattern
    variable becomes a fresh concrete tensor and every operator-family
    binder becomes a concrete operator with randomly sampled attributes.
    Sampling is rejection-based — the caller retries until the
    instantiated left-hand side passes shape {e and} dtype inference. *)

open Entangle_ir
open Entangle_egraph
open Entangle_lemmas

type assignment = {
  ops : (string * Op.t) list;  (** binder name -> sampled operator *)
  tensors : (string * Tensor.t) list;  (** variable name -> fresh tensor *)
}

val sample :
  ?hints:Lemma.hint list ->
  Random.State.t ->
  Pattern.t ->
  (Expr.t * assignment) option
(** One attempt: sample an assignment for the pattern's binders and
    variables, build the expression, and type-check it (shape and dtype
    inference under an empty constraint store, so every dimension is
    concrete). [None] when a family is unknown, the pattern contains a
    class reference, or inference rejects the sampled term.

    [hints] bias the draw towards the shapes a lemma's guards require —
    replicated arguments, pairwise-equal chunks, row partitions,
    broadcast operands, matching contraction dims — so that guarded
    lemmas the blind sampler almost never fires are still exercised by
    the differential audit (and the numeric gate overlaps the symbolic
    one). *)

val sample_retry :
  ?attempts:int ->
  ?hints:Lemma.hint list ->
  Random.State.t ->
  Pattern.t ->
  (Expr.t * assignment) option
(** Repeated {!sample} until success; [attempts] defaults to 40. *)

val infer : Expr.t -> (Shape.t * Dtype.t, string) result
(** Shape and dtype of a ground expression under no constraints. *)
