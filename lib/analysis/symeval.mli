(** Symbolic evaluation of tensor expressions into scalar index functions.

    The lemma verifier needs, for each side of a rewrite, a closed-form
    answer to "what scalar does this expression compute at output index
    [i0, ..., ik]?" — for {e arbitrary} symbolic dimensions. This module
    evaluates an {!Entangle_ir.Expr.t} into such an index function over
    {!Entangle_symbolic.Sterm} terms, together with a symbolic output
    shape, mirroring the reference interpreter's semantics
    ({!Entangle_ir.Ndarray}) operator by operator: concatenation becomes
    a selection chain, reduction becomes a bounded [Red], matmul becomes
    a summation over the contraction dimension, means divide by their
    dimension, and the nonlinear elementwise kernels stay uninterpreted
    function symbols (equal inputs give equal outputs, which is all the
    corpus's rewrites ever rely on).

    Side conditions met along the way — aligned concatenation operands,
    matching contraction dims, in-bounds slices — are treated according
    to the evaluation {!mode}:

    - [Assume]: the condition is added to the context's constraint
      store. Used for the left-hand side (a rule only ever fires where
      its LHS is well-typed, so those conditions may be assumed) and for
      the right-hand side of constrained rules (whose soundness is
      conditional on the rewrite target existing).
    - [Check]: the condition must be provable from the store via
      {!Entangle_symbolic.Decide}; otherwise evaluation fails with
      {!Ill_typed}. Used for the right-hand side of universal rules: the
      RHS must be well-typed whenever the LHS is.

    Operator families outside the fragment (currently [Reshape], and
    data-dependent selections the scalar language cannot express) fail
    with {!Unsupported}; the verifier surfaces these as the explicit
    LEMMA210 bucket rather than silently skipping. *)

open Entangle_symbolic
open Entangle_ir

type mode = Check | Assume

type value = {
  shape : Shape.t;
  at : Sterm.index list -> Sterm.t;
      (** scalar at an output index; the list has length [rank shape] *)
}

type failure =
  | Unsupported of string  (** operator family outside the fragment *)
  | Ill_typed of string  (** a [Check]-mode side condition failed *)

type ctx

val create : mode:mode -> Constraint_store.t -> ctx

val store : ctx -> Constraint_store.t
(** The store after evaluation: the input store plus, in [Assume] mode,
    every side condition the evaluated expressions required. *)

val leaf : Tensor.t -> value
(** The symbolic value of an input tensor: an opaque access into a cell
    named after the tensor. Two leaves with the same name denote the
    same tensor. *)

val eval : ctx -> Expr.t -> (value, failure) result
(** Evaluate an expression whose leaves become {!leaf} values. *)
