(** Soundness audit of the rewrite-lemma corpus.

    An unsound lemma makes the refinement checker accept buggy models,
    silently. Two layers of defence:

    {b Structural} checks per rule:
    - [LEMMA001] a lemma ships no rules;
    - [LEMMA002] a syntactic right-hand side uses variables the left-hand
      side does not bind (instantiation would always fail);
    - [LEMMA003] a syntactic identity rule (left = right), which burns
      saturation iterations for nothing (warning);
    - [LEMMA004] the left-hand side is a bare variable or class
      reference, i.e. it matches every e-class.

    {b Differential} evaluation per rule: the left-hand side is
    instantiated with random concrete tensors ({!Instantiate}), the rule
    is run through the real e-matching machinery against an e-graph
    holding just that term, and every equation the rule emits is
    evaluated on concrete data with the reference interpreter. Sides
    that disagree beyond tolerance are reported as
    - [LEMMA100] unsound rewrite, with the offending lemma, rule index,
      random seed and the two expressions;
    - [LEMMA101] (warning) a lemma that no sampled instantiation managed
      to exercise — i.e. the audit proved nothing about it. *)

open Entangle_ir
open Entangle_egraph
open Entangle_lemmas

val expr_of : Egraph.t -> Subst.t -> Pattern.t -> Expr.t option
(** Turn a (possibly rewritten) pattern back into a ground expression
    under an e-matching substitution, extracting the best representative
    per bound class. Shared with the symbolic verifier
    ({!Lemma_verify}), which instantiates left-hand sides the same way
    before evaluating both sides. *)

type config = {
  eval_seeds : int list;  (** data seeds per instantiated equation *)
  attempts : int;
      (** full sample-match-apply-evaluate rounds per lemma before the
          audit gives up on exercising it *)
  per_lemma_target : int;  (** stop a lemma's audit after this many comparisons *)
  tol : float;  (** max elementwise deviation before a rewrite is unsound *)
}

val default_config : config

type stats = {
  lemmas_audited : int;
  lemmas_exercised : int;  (** lemmas with at least one comparison *)
  comparisons : int;  (** total differential evaluations *)
  unexercised : string list;  (** lemmas with zero comparisons *)
}

val structural : Lemma.t list -> Diagnostic.t list

val audit_lemma :
  ?config:config -> seed:int -> Lemma.t -> Diagnostic.t list * int
(** Differential audit of one lemma; also returns the number of
    comparisons performed. Every instantiation is derived from [seed]
    and the (lemma, rule, try) coordinates alone, so re-auditing one
    lemma reproduces exactly the samples the full corpus audit drew for
    it — a LEMMA100 report replays from its printed coordinates. *)

val audit :
  ?config:config -> seed:int -> Lemma.t list -> Diagnostic.t list * stats
(** Structural plus differential audit of a corpus, deterministically
    seeded. *)
