open Entangle_lemmas

let graphs named =
  Diagnostic.sort
    (List.concat_map
       (fun (name, g) -> Graph_check.check_named ~name g)
       named)

let corpus ?config ~seed () =
  let dup_diags =
    List.map
      (fun name ->
        Diagnostic.warning ~code:"LEMMA005" Diagnostic.Corpus
          "duplicate lemma name %S: only the first definition is kept" name)
      Registry.duplicates
  in
  let diags, stats = Lemma_check.audit ?config ~seed Registry.all in
  (Diagnostic.sort (dup_diags @ diags), stats)

let exit_code ds = if Diagnostic.count_errors ds > 0 then 1 else 0
