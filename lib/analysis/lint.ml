open Entangle_lemmas

let graphs named =
  Diagnostic.sort
    (List.concat_map
       (fun (name, g) -> Graph_check.check_named ~name g)
       named)

let corpus ?config ~seed () =
  let dup_diags =
    List.map
      (fun name ->
        Diagnostic.warning ~code:"LEMMA005" Diagnostic.Corpus
          "duplicate lemma name %S: only the first definition is kept" name)
      Registry.duplicates
  in
  let diags, stats = Lemma_check.audit ?config ~seed Registry.all in
  (Diagnostic.sort (dup_diags @ diags), stats)

let verify_corpus ?config ?span () =
  let diags, report = Lemma_verify.verify ?config ?span Registry.all in
  (Diagnostic.sort diags, report)

(* --- waivers ------------------------------------------------------------ *)

let parse_waivers content =
  let lines = String.split_on_char '\n' content in
  let entries, errs =
    List.fold_left
      (fun (entries, errs) (lineno, line) ->
        let line =
          match String.index_opt line '#' with
          | Some i -> String.sub line 0 i
          | None -> line
        in
        let line = String.trim line in
        if line = "" then (entries, errs)
        else
          match String.index_opt line ':' with
          | Some i ->
              let name = String.trim (String.sub line 0 i) in
              let reason =
                String.trim
                  (String.sub line (i + 1) (String.length line - i - 1))
              in
              if name = "" || reason = "" then
                ( entries,
                  Printf.sprintf "line %d: empty lemma name or reason" lineno
                  :: errs )
              else ((name, reason) :: entries, errs)
          | None ->
              ( entries,
                Printf.sprintf
                  "line %d: expected \"lemma-name: reason\", got %S" lineno
                  line
                :: errs ))
      ([], [])
      (List.mapi (fun i l -> (i + 1, l)) lines)
  in
  match errs with
  | [] -> Ok (List.rev entries)
  | e -> Error (String.concat "; " (List.rev e))

(* --- coverage gate ------------------------------------------------------ *)

type coverage_row = {
  lemma : string;
  klass : Lemma.klass;
  symbolic : Lemma_verify.verdict;
  exercised : bool;
  waived : string option;  (** waiver reason, when listed *)
}

type coverage = {
  rows : coverage_row list;
  sym_verified : int;
  num_exercised : int;
  waived : int;
  gaps : int;
}

let coverage ~(report : Lemma_verify.report) ~(stats : Lemma_check.stats)
    ~waivers =
  let rows =
    List.map
      (fun (lr : Lemma_verify.lemma_report) ->
        {
          lemma = lr.lemma;
          klass = lr.klass;
          symbolic = lr.verdict;
          exercised = not (List.mem lr.lemma stats.Lemma_check.unexercised);
          waived = List.assoc_opt lr.lemma waivers;
        })
      report.Lemma_verify.lemmas
  in
  let loc lemma = Diagnostic.Lemma { lemma; rule = None; seed = None } in
  (* The differential gate: every lemma must be covered by at least one
     of the three mechanisms. A gap is an error — coverage is never
     silently partial. *)
  let gap_diags =
    List.filter_map
      (fun r ->
        if
          r.symbolic <> Lemma_verify.V_verified
          && (not r.exercised)
          && r.waived = None
        then
          Some
            (Diagnostic.error ~code:"LEMMA203" (loc r.lemma)
               "lemma is neither symbolically verified (%s) nor numerically \
                exercised, and no waiver covers it"
               (Lemma_verify.verdict_name r.symbolic))
        else None)
      rows
  in
  let waiver_diags =
    List.filter_map
      (fun (name, _) ->
        match List.find_opt (fun r -> r.lemma = name) rows with
        | None ->
            Some
              (Diagnostic.warning ~code:"LEMMA204" (loc name)
                 "waiver names no lemma in the corpus; remove the stale entry")
        | Some r when r.symbolic = Lemma_verify.V_verified ->
            Some
              (Diagnostic.warning ~code:"LEMMA204" (loc name)
                 "stale waiver: the lemma is symbolically verified; remove \
                  the entry")
        | Some _ -> None)
      waivers
  in
  let count p = List.length (List.filter p rows) in
  ( Diagnostic.sort (gap_diags @ waiver_diags),
    {
      rows;
      sym_verified = count (fun r -> r.symbolic = Lemma_verify.V_verified);
      num_exercised = count (fun r -> r.exercised);
      waived = count (fun r -> r.waived <> None);
      gaps = List.length gap_diags;
    } )

let pp_coverage ppf (rank_bound, c) =
  Fmt.pf ppf "%-42s %-2s %-12s %-9s %s@." "lemma" "k" "symbolic" "exercised"
    "waived";
  List.iter
    (fun r ->
      Fmt.pf ppf "%-42s %-2s %-12s %-9s %s@." r.lemma
        (Lemma.klass_letter r.klass)
        (Lemma_verify.verdict_name r.symbolic)
        (if r.exercised then "yes" else "no")
        (match r.waived with Some reason -> reason | None -> "-"))
    c.rows;
  Fmt.pf ppf
    "coverage: %d/%d symbolically verified (rank bound %d), %d exercised, %d \
     waived, %d gaps@."
    c.sym_verified (List.length c.rows) rank_bound c.num_exercised c.waived
    c.gaps

let json_str s = Printf.sprintf "%S" s

let coverage_to_json (rank_bound, c) =
  let row r =
    Printf.sprintf
      "{\"lemma\": %s, \"klass\": %s, \"symbolic\": %s, \"exercised\": %b, \
       \"waived\": %s}"
      (json_str r.lemma)
      (json_str (Lemma.klass_letter r.klass))
      (json_str (Lemma_verify.verdict_name r.symbolic))
      r.exercised
      (match r.waived with Some reason -> json_str reason | None -> "null")
  in
  Printf.sprintf
    "{\"rank_bound\": %d, \"verified\": %d, \"exercised\": %d, \"waived\": \
     %d, \"gaps\": %d, \"lemmas\": [%s]}"
    rank_bound c.sym_verified c.num_exercised c.waived c.gaps
    (String.concat ", " (List.map row c.rows))

let exit_code ds = if Diagnostic.count_errors ds > 0 then 1 else 0
