type severity = Error | Warning | Info

type location =
  | Graph of { graph : string; node : int option; tensor : string option }
  | Lemma of { lemma : string; rule : int option; seed : int option }
  | Eclass of int
  | Egraph
  | Corpus

type t = {
  severity : severity;
  code : string;
  loc : location;
  message : string;
}

let make severity ~code loc message = { severity; code; loc; message }

let error ~code loc fmt =
  Fmt.kstr (fun message -> make Error ~code loc message) fmt

let warning ~code loc fmt =
  Fmt.kstr (fun message -> make Warning ~code loc message) fmt

let info ~code loc fmt =
  Fmt.kstr (fun message -> make Info ~code loc message) fmt

let is_error d = d.severity = Error
let count_errors ds = List.length (List.filter is_error ds)

let count_warnings ds =
  List.length (List.filter (fun d -> d.severity = Warning) ds)

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

let sort ds =
  List.stable_sort
    (fun a b -> compare (severity_rank a.severity) (severity_rank b.severity))
    ds

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let pp_location ppf = function
  | Graph { graph; node; tensor } ->
      Fmt.pf ppf "graph %s" graph;
      Option.iter (Fmt.pf ppf "/node %d") node;
      Option.iter (Fmt.pf ppf "/tensor %s") tensor
  | Lemma { lemma; rule; seed } ->
      Fmt.pf ppf "lemma %s" lemma;
      Option.iter (Fmt.pf ppf "/rule %d") rule;
      Option.iter (Fmt.pf ppf " (seed %d)") seed
  | Eclass id -> Fmt.pf ppf "e-class %d" id
  | Egraph -> Fmt.string ppf "e-graph"
  | Corpus -> Fmt.string ppf "lemma corpus"

let pp ppf d =
  Fmt.pf ppf "%s[%s] %a: %s"
    (severity_to_string d.severity)
    d.code pp_location d.loc d.message

let pp_report ppf ds =
  let ds = sort ds in
  List.iter (fun d -> Fmt.pf ppf "%a@." pp d) ds;
  Fmt.pf ppf "%d error(s), %d warning(s)" (count_errors ds)
    (count_warnings ds)

(* --- JSON (hand-rolled; the project carries no JSON dependency) ------- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_str s = Printf.sprintf "\"%s\"" (json_escape s)

let json_opt_int name = function
  | None -> ""
  | Some i -> Printf.sprintf ", \"%s\": %d" name i

let json_opt_str name = function
  | None -> ""
  | Some s -> Printf.sprintf ", \"%s\": %s" name (json_str s)

let location_to_json = function
  | Graph { graph; node; tensor } ->
      Printf.sprintf "{\"kind\": \"graph\", \"graph\": %s%s%s}" (json_str graph)
        (json_opt_int "node" node)
        (json_opt_str "tensor" tensor)
  | Lemma { lemma; rule; seed } ->
      Printf.sprintf "{\"kind\": \"lemma\", \"lemma\": %s%s%s}" (json_str lemma)
        (json_opt_int "rule" rule)
        (json_opt_int "seed" seed)
  | Eclass id -> Printf.sprintf "{\"kind\": \"eclass\", \"id\": %d}" id
  | Egraph -> "{\"kind\": \"egraph\"}"
  | Corpus -> "{\"kind\": \"corpus\"}"

let to_json d =
  Printf.sprintf
    "{\"severity\": %s, \"code\": %s, \"location\": %s, \"message\": %s}"
    (json_str (severity_to_string d.severity))
    (json_str d.code)
    (location_to_json d.loc)
    (json_str d.message)

let report_to_json ds =
  let ds = sort ds in
  Printf.sprintf
    "{\"errors\": %d, \"warnings\": %d, \"diagnostics\": [%s]}"
    (count_errors ds) (count_warnings ds)
    (String.concat ", " (List.map to_json ds))
