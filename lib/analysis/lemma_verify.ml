open Entangle_symbolic
open Entangle_ir
open Entangle_egraph
open Entangle_lemmas

type config = {
  rank_bound : int;
  max_rule_vars : int;
  max_scenarios : int;
  max_matches : int;
  max_equations : int;
  probe_envs : int;
  probe_seeds : int list;
  tol : float;
}

let default_config =
  {
    rank_bound = 2;
    max_rule_vars = 4;
    max_scenarios = 48;
    max_matches = 2;
    max_equations = 4;
    probe_envs = 4;
    probe_seeds = [ 1; 2; 3 ];
    tol = 1e-4;
  }

type rule_status =
  | Verified of string
  | Refuted of string
  | Unsupported of string
  | Undecided of string
  | Vacuous
  | Unapplied
  | Skipped of string

type verdict =
  | V_verified
  | V_refuted
  | V_vacuous
  | V_unsupported
  | V_undecided
  | V_unattempted

type lemma_report = {
  lemma : string;
  klass : Lemma.klass;
  verdict : verdict;
  rules : rule_status list;
  scenarios : int;
  proved : int;
}

type report = { rank_bound : int; lemmas : lemma_report list }

let verdict_name = function
  | V_verified -> "verified"
  | V_refuted -> "refuted"
  | V_vacuous -> "vacuous"
  | V_unsupported -> "unsupported"
  | V_undecided -> "undecided"
  | V_unattempted -> "unattempted"

let take n l = List.filteri (fun i _ -> i < n) l
let has_hint p hints = List.exists p hints

(* --- scenario knobs ---------------------------------------------------- *)

type slice_variant = Generic | Prefix | Full

type knob =
  | K_unit
  | K_axis of int
  | K_slice of int * slice_variant
  | K_transpose of int * int
  | K_reduce of int * bool
  | K_scale of Rat.t
  | K_rs of int * int

exception Skip_scenario of string
exception Unsupported_family of string

(* Static scan of a left-hand pattern: operator binders in first-occurrence
   order and every operator family mentioned (fixed selectors included). *)
let scan_pattern pat =
  let binders = ref [] and families = ref [] in
  let rec go = function
    | Pattern.V _ | Pattern.C _ -> ()
    | Pattern.P (sel, args) ->
        (match sel with
        | Pattern.Fixed op -> families := Op.name op :: !families
        | Pattern.Family { family; bind } ->
            families := family :: !families;
            if not (List.mem_assoc bind !binders) then
              binders := (bind, family) :: !binders
        | Pattern.Bound _ -> ());
        List.iter go args
  in
  go pat;
  (List.rev !binders, List.sort_uniq String.compare !families)

let slice_family f = String.equal f "slice" || String.equal f "hlo_slice"

let choices_for hints rank family =
  let axes = List.init rank Fun.id in
  let rows = has_hint (function Lemma.Rows -> true | _ -> false) hints in
  match family with
  | "concat" | "hlo_concatenate" ->
      List.map (fun d -> K_axis d) (if rows then [ 0 ] else axes)
  | "all_gather" | "softmax" | "pad" -> List.map (fun d -> K_axis d) axes
  | "slice" | "hlo_slice" ->
      List.concat_map
        (fun d -> [ K_slice (d, Generic); K_slice (d, Prefix); K_slice (d, Full) ])
        axes
  | "transpose" ->
      let pairs =
        if rank >= 2 then
          (0, 1) :: (if rank > 2 then [ (0, rank - 1) ] else [])
        else [ (0, 0) ]
      in
      List.map (fun (a, b) -> K_transpose (a, b)) pairs
  | "reduce_sum" | "reduce_mean" | "reduce_max" ->
      List.concat_map (fun d -> [ K_reduce (d, false); K_reduce (d, true) ]) axes
  | "scale" -> [ K_scale (Rat.make 2 3); K_scale Rat.one ]
  | "reduce_scatter" ->
      List.concat_map (fun d -> [ K_rs (d, 0); K_rs (d, 1) ]) axes
  | _ -> [ K_unit ]

let ranks_for (config : config) hints families =
  if
    has_hint
      (function Lemma.Rows | Lemma.Contraction -> true | _ -> false)
      hints
  then [ 2 ]
  else
    let base = List.init config.rank_bound (fun i -> config.rank_bound - i) in
    if
      List.exists
        (fun f -> List.mem f [ "matmul"; "hlo_dot"; "embedding"; "rope" ])
        families
    then List.filter (fun r -> r >= 2) base
    else base

let rec product = function
  | [] -> [ [] ]
  | options :: rest ->
      let tails = product rest in
      List.concat_map (fun o -> List.map (fun t -> o :: t) tails) options

let variant_name = function
  | Generic -> "generic"
  | Prefix -> "prefix"
  | Full -> "full"

let describe rank share knobs =
  let one (b, k) =
    match k with
    | K_unit -> None
    | K_axis d -> Some (Printf.sprintf "%s.dim=%d" b d)
    | K_slice (d, v) -> Some (Printf.sprintf "%s=%s@%d" b (variant_name v) d)
    | K_transpose (a, b') -> Some (Printf.sprintf "%s=(%d,%d)" b a b')
    | K_reduce (d, kd) ->
        Some (Printf.sprintf "%s.dim=%d%s" b d (if kd then "+keepdim" else ""))
    | K_scale r -> Some (Fmt.str "%s=%a" b Rat.pp r)
    | K_rs (d, i) -> Some (Printf.sprintf "%s.dim=%d.index=%d" b d i)
  in
  String.concat ", "
    ((Printf.sprintf "rank %d" rank :: List.filter_map one knobs)
    @ if share then [ "shared slice attrs" ] else [])

(* --- scenario construction --------------------------------------------- *)

type sc = {
  mutable store : Constraint_store.t;
  mutable fresh : int;
  binder_ops : (string, Op.t) Hashtbl.t;
  var_shapes : (string, Shape.t) Hashtbl.t;
  var_dtypes : (string, Dtype.t) Hashtbl.t;
  var_bounds : (string, Symdim.t) Hashtbl.t;
      (* exclusive upper bound for integer index tensors (vocab size) *)
  mutable offset_syms : string list;
  mutable concat_axis : int option;
  mutable slice_proto : (int * Symdim.t * Symdim.t) option;
  mutable uniform_chunk : Symdim.t option;
  mutable int_bound : Symdim.t option;
      (* set while walking an integer-index subtree *)
  rank : int;
  share_slice : bool;
  knobs : (string * knob) list;
  hints : Lemma.hint list;
  even_dims : bool;
  concrete_last : int option;
  uniform : bool;
}

let fresh_name sc base =
  let n = Printf.sprintf "%s%d" base sc.fresh in
  sc.fresh <- sc.fresh + 1;
  n

(* A strictly positive size symbol (doubled when a reduce-scatter needs
   every dimension divisible by its chunk count). *)
let fresh_size sc base =
  let n = fresh_name sc base in
  sc.store <- Constraint_store.add_positive sc.store n;
  let s = Symdim.sym n in
  if sc.even_dims then Symdim.mul_int 2 s else s

let fresh_offset sc base =
  let n = fresh_name sc base in
  sc.offset_syms <- n :: sc.offset_syms;
  let s = Symdim.sym n in
  sc.store <- Constraint_store.add_ge sc.store s;
  s

let fresh_template sc =
  List.init sc.rank (fun i ->
      if i = sc.rank - 1 then
        match sc.concrete_last with
        | Some k -> Symdim.of_int k
        | None -> fresh_size sc "n"
      else fresh_size sc "n")

let materialize sc = function Some s -> s | None -> fresh_template sc

let chunk_dim sc =
  if sc.uniform then (
    match sc.uniform_chunk with
    | Some c -> c
    | None ->
        let c = fresh_size sc "c" in
        sc.uniform_chunk <- Some c;
        c)
  else fresh_size sc "c"

let knob_of sc bind =
  match List.assoc_opt bind sc.knobs with Some k -> k | None -> K_unit

(* Resolve the operator of a pattern node: fixed selectors carry it,
   family binders build it once from the scenario's knob and reuse it on
   repeated occurrences (e-matching requires one binding per name). *)
let resolve sc sel build =
  match sel with
  | Pattern.Fixed op -> op
  | Pattern.Family { bind; _ } -> (
      match Hashtbl.find_opt sc.binder_ops bind with
      | Some op -> op
      | None ->
          let op = build (knob_of sc bind) in
          Hashtbl.replace sc.binder_ops bind op;
          op)
  | Pattern.Bound _ -> raise (Skip_scenario "bound selector on a left-hand side")

let check_axis _sc d s =
  if d < 0 || d >= Shape.rank s then
    raise (Skip_scenario (Printf.sprintf "axis %d out of rank %d" d (Shape.rank s)))

let swap_dims s d0 d1 =
  Shape.set_dim (Shape.set_dim s d0 (Shape.dim s d1)) d1 (Shape.dim s d0)

let insert_at i x l =
  let rec go i = function
    | rest when i = 0 -> x :: rest
    | hd :: tl -> hd :: go (i - 1) tl
    | [] -> raise (Skip_scenario "reduce axis out of range")
  in
  go i l

let attrless_op = function
  | "add" -> Op.Add
  | "sub" -> Op.Sub
  | "mul" -> Op.Mul
  | "div" -> Op.Div
  | "maximum" -> Op.Maximum
  | "pow" -> Op.Pow
  | "neg" -> Op.Neg
  | "exp" -> Op.Exp
  | "log" -> Op.Log
  | "sqrt" -> Op.Sqrt
  | "rsqrt" -> Op.Rsqrt
  | "relu" -> Op.Relu
  | "gelu" -> Op.Gelu
  | "silu" -> Op.Silu
  | "tanh" -> Op.Tanh
  | "sigmoid" -> Op.Sigmoid
  | "square" -> Op.Square
  | "matmul" -> Op.Matmul
  | "identity" -> Op.Identity
  | "sum" -> Op.Sum_n
  | "embedding" -> Op.Embedding
  | "rope" -> Op.Rope
  | "mse_loss" -> Op.Mse_loss
  | "cross_entropy" -> Op.Cross_entropy
  | "all_reduce" -> Op.All_reduce
  | "swiglu_fused" -> Op.Swiglu_fused
  | "hlo_dot" -> Op.Hlo_dot
  | f -> raise (Unsupported_family f)

let sel_family = function
  | Pattern.Fixed op -> Op.name op
  | Pattern.Family { family; _ } -> family
  | Pattern.Bound _ -> raise (Skip_scenario "bound selector on a left-hand side")

let with_int_bound sc b f =
  let saved = sc.int_bound in
  sc.int_bound <- Some b;
  Fun.protect ~finally:(fun () -> sc.int_bound <- saved) f

let is_concat_of_vars = function
  | Pattern.P (sel, args) -> (
      (match sel_family sel with
      | "concat" | "hlo_concatenate" ->
          List.for_all (function Pattern.V _ -> true | _ -> false) args
      | _ -> false)
      |> fun ok -> if ok then Some (sel, args) else None)
  | _ -> None

(* Walk the left-hand pattern, assigning a symbolic shape to every
   pattern variable and a concrete operator to every family binder. The
   context is the expected shape of the current subtree (None at a rank-
   changing boundary, where a fresh rank-[sc.rank] template is
   materialized). The walk only fixes leaf shapes; any residual
   consistency conditions between an operator's actual output shape and
   the context it was handed are discharged by the Assume-mode symbolic
   evaluation of the instantiated left-hand side. *)
let rec walk sc pat (ctx : Shape.t option) =
  match pat with
  | Pattern.V x ->
      if not (Hashtbl.mem sc.var_shapes x) then (
        Hashtbl.replace sc.var_shapes x (materialize sc ctx);
        match sc.int_bound with
        | Some b ->
            Hashtbl.replace sc.var_dtypes x Dtype.I64;
            Hashtbl.replace sc.var_bounds x b
        | None -> ())
  | Pattern.C _ -> raise (Skip_scenario "class reference on a left-hand side")
  | Pattern.P (sel, args) -> walk_node sc sel args ctx

and walk_node sc sel args ctx =
  let family = sel_family sel in
  match (family, args) with
  | "reshape", _ -> raise (Unsupported_family "reshape")
  | ("concat" | "hlo_concatenate"), _ ->
      let s = materialize sc ctx in
      let op =
        resolve sc sel (function
          | K_axis d ->
              if family = "concat" then Op.Concat { dim = d }
              else Op.Hlo_concatenate { dim = d }
          | _ -> Op.Concat { dim = 0 })
      in
      let d =
        match op with
        | Op.Concat { dim } | Op.Hlo_concatenate { dim } -> dim
        | _ -> 0
      in
      check_axis sc d s;
      if sc.concat_axis = None then sc.concat_axis <- Some d;
      List.iter
        (fun a -> walk sc a (Some (Shape.set_dim s d (chunk_dim sc))))
        args
  | ("sum" | "all_reduce"), _ ->
      let s = materialize sc ctx in
      ignore
        (resolve sc sel (fun _ ->
             if family = "sum" then Op.Sum_n else Op.All_reduce));
      List.iter (fun a -> walk sc a (Some s)) args
  | "reduce_scatter", _ ->
      let s = fresh_template sc in
      let op =
        resolve sc sel (function
          | K_rs (d, i) -> Op.Reduce_scatter { dim = d; index = i; count = 2 }
          | _ -> Op.Reduce_scatter { dim = 0; index = 0; count = 2 })
      in
      (match op with
      | Op.Reduce_scatter { dim; _ } -> check_axis sc dim s
      | _ -> ());
      List.iter (fun a -> walk sc a (Some s)) args
  | "all_gather", _ ->
      let s = fresh_template sc in
      let op =
        resolve sc sel (function
          | K_axis d -> Op.All_gather { dim = d }
          | _ -> Op.All_gather { dim = 0 })
      in
      (match op with
      | Op.All_gather { dim } -> check_axis sc dim s
      | _ -> ());
      List.iter (fun a -> walk sc a (Some s)) args
  | ("matmul" | "hlo_dot"), [ l; r ] -> (
      let contraction =
        has_hint (function Lemma.Contraction -> true | _ -> false) sc.hints
      in
      match
        if contraction then (is_concat_of_vars l, is_concat_of_vars r)
        else (None, None)
      with
      | Some (sl, xs), Some (sr, ys) when List.length xs = List.length ys ->
          (* Block contraction: x_i : [m; k_i], y_i : [k_i; p], the x
             concat splits columns and the y concat splits rows. *)
          let m = fresh_size sc "n" and pdim = fresh_size sc "n" in
          ignore (resolve sc sl (fun _ -> Op.Concat { dim = 1 }));
          ignore (resolve sc sr (fun _ -> Op.Concat { dim = 0 }));
          List.iter2
            (fun x y ->
              let k = fresh_size sc "k" in
              walk sc x (Some [ m; k ]);
              walk sc y (Some [ k; pdim ]))
            xs ys
      | _ ->
          let s = materialize sc ctx in
          if Shape.rank s < 2 then raise (Skip_scenario "matmul needs rank >= 2");
          ignore
            (resolve sc sel (fun _ ->
                 if family = "matmul" then Op.Matmul else Op.Hlo_dot));
          let k = fresh_size sc "k" in
          let last = Shape.rank s - 1 in
          walk sc l (Some (Shape.set_dim s last k));
          walk sc r (Some [ k; Shape.dim s last ]))
  | "embedding", [ w; ids ] ->
      let s = materialize sc ctx in
      let rk = Shape.rank s in
      if rk < 2 then raise (Skip_scenario "embedding needs rank >= 2");
      let voc = fresh_size sc "v" in
      walk sc w (Some [ voc; Shape.dim s (rk - 1) ]);
      with_int_bound sc voc (fun () ->
          walk sc ids (Some (take (rk - 1) s)))
  | "cross_entropy", [ logits; targets ] ->
      let rows = fresh_size sc "s" and voc = fresh_size sc "v" in
      walk sc logits (Some [ rows; voc ]);
      with_int_bound sc voc (fun () -> walk sc targets (Some [ rows ]))
  | "mse_loss", [ a; b ] ->
      let s = fresh_template sc in
      walk sc a (Some s);
      walk sc b (Some s)
  | "rope", [ x; cos; sin ] ->
      let s = materialize sc ctx in
      if Shape.rank s < 2 then raise (Skip_scenario "rope needs rank >= 2");
      walk sc x (Some s);
      walk sc cos (Some s);
      walk sc sin (Some s)
  | "layernorm", x :: extras ->
      let s = materialize sc ctx in
      ignore (resolve sc sel (fun _ -> Op.Layernorm { eps = 1e-5 }));
      walk sc x (Some s);
      List.iter
        (fun e -> walk sc e (Some [ Shape.dim s (Shape.rank s - 1) ]))
        extras
  | "rmsnorm", x :: extras ->
      let s = materialize sc ctx in
      ignore (resolve sc sel (fun _ -> Op.Rmsnorm { eps = 1e-5 }));
      walk sc x (Some s);
      List.iter
        (fun e -> walk sc e (Some [ Shape.dim s (Shape.rank s - 1) ]))
        extras
  | "softmax", [ a ] ->
      let s = materialize sc ctx in
      let op =
        resolve sc sel (function
          | K_axis d -> Op.Softmax { dim = d }
          | _ -> Op.Softmax { dim = 0 })
      in
      (match op with Op.Softmax { dim } -> check_axis sc dim s | _ -> ());
      walk sc a (Some s)
  | ("slice" | "hlo_slice"), [ a ] ->
      let s = materialize sc ctx in
      let m = ref None in
      let build_slice d variant =
        check_axis sc d s;
        let operand = fresh_size sc "m" in
        m := Some (d, operand);
        let start, stop =
          match variant with
          | Generic ->
              let st = fresh_offset sc "st" and sp = fresh_offset sc "sp" in
              (* nonempty, in bounds: st >= 0, sp - st >= 1, m - sp >= 0 *)
              sc.store <-
                Constraint_store.add_gt sc.store (Symdim.sub sp st);
              sc.store <-
                Constraint_store.add_ge sc.store (Symdim.sub operand sp);
              (st, sp)
          | Prefix ->
              let sp = fresh_offset sc "sp" in
              sc.store <- Constraint_store.add_gt sc.store sp;
              sc.store <-
                Constraint_store.add_ge sc.store (Symdim.sub operand sp);
              (Symdim.zero, sp)
          | Full -> (Symdim.zero, operand)
        in
        if family = "slice" then Op.Slice { dim = d; start; stop }
        else Op.Hlo_slice { dim = d; start; stop }
      in
      let op =
        resolve sc sel (fun k ->
            match (sc.share_slice, sc.slice_proto, k) with
            | true, Some (d, start, stop), _ ->
                check_axis sc d s;
                m := Some (d, fresh_size sc "m");
                if family = "slice" then Op.Slice { dim = d; start; stop }
                else Op.Hlo_slice { dim = d; start; stop }
            | _, _, K_slice (d, variant) -> build_slice d variant
            | _ -> build_slice 0 Generic)
      in
      let d, operand =
        match (op, !m) with
        | _, Some dm -> dm
        | (Op.Slice { dim; _ } | Op.Hlo_slice { dim; _ }), None ->
            (* binder reused from an earlier occurrence: fresh operand *)
            check_axis sc dim s;
            (dim, fresh_size sc "m")
        | _ -> raise (Skip_scenario "slice without attributes")
      in
      (match (op, sc.slice_proto) with
      | (Op.Slice { dim; start; stop } | Op.Hlo_slice { dim; start; stop }), None
        ->
          sc.slice_proto <- Some (dim, start, stop)
      | _ -> ());
      walk sc a (Some (Shape.set_dim s d operand))
  | "pad", [ a ] ->
      let s = materialize sc ctx in
      let op =
        resolve sc sel (fun k ->
            let d = match k with K_axis d -> d | _ -> 0 in
            check_axis sc d s;
            Op.Pad
              { dim = d; before = fresh_offset sc "pb"; after = fresh_offset sc "pa" })
      in
      let d = match op with Op.Pad { dim; _ } -> dim | _ -> 0 in
      check_axis sc d s;
      walk sc a (Some (Shape.set_dim s d (fresh_size sc "m")))
  | ("reduce_sum" | "reduce_mean" | "reduce_max"), [ a ] ->
      let op =
        resolve sc sel (fun k ->
            let d, keep = match k with K_reduce (d, kd) -> (d, kd) | _ -> (0, false) in
            match family with
            | "reduce_sum" -> Op.Reduce_sum { dim = d; keepdim = keep }
            | "reduce_mean" -> Op.Reduce_mean { dim = d; keepdim = keep }
            | _ -> Op.Reduce_max { dim = d; keepdim = keep })
      in
      let d, keep =
        match op with
        | Op.Reduce_sum { dim; keepdim }
        | Op.Reduce_mean { dim; keepdim }
        | Op.Reduce_max { dim; keepdim } ->
            (dim, keepdim)
        | _ -> (0, false)
      in
      let s_in =
        match ctx with
        | None ->
            let t = fresh_template sc in
            check_axis sc d t;
            t
        | Some s ->
            if keep then (
              check_axis sc d s;
              Shape.set_dim s d (fresh_size sc "m"))
            else (
              if d > Shape.rank s then
                raise (Skip_scenario "reduce axis out of range");
              insert_at d (fresh_size sc "m") s)
      in
      walk sc a (Some s_in)
  | "scale", [ a ] ->
      let s = materialize sc ctx in
      ignore
        (resolve sc sel (function
          | K_scale r -> Op.Scale r
          | _ -> Op.Scale Rat.one));
      walk sc a (Some s)
  | "transpose", [ a ] ->
      let s = materialize sc ctx in
      let op =
        resolve sc sel (function
          | K_transpose (d0, d1) -> Op.Transpose { dim0 = d0; dim1 = d1 }
          | _ -> Op.Transpose { dim0 = 0; dim1 = 0 })
      in
      let d0, d1 =
        match op with Op.Transpose { dim0; dim1 } -> (dim0, dim1) | _ -> (0, 0)
      in
      check_axis sc d0 s;
      check_axis sc d1 s;
      walk sc a (Some (swap_dims s d0 d1))
  | _, _ ->
      (* elementwise and other shape-preserving operators *)
      let s = materialize sc ctx in
      ignore (resolve sc sel (fun _ -> attrless_op family));
      List.iter (fun a -> walk sc a (Some s)) args

(* --- hint application --------------------------------------------------- *)

let var_suffix_pair name =
  if String.length name >= 1 && name.[0] = 'y' then
    Some ("x" ^ String.sub name 1 (String.length name - 1))
  else None

let apply_hints sc =
  let copy_shape src dst =
    match Hashtbl.find_opt sc.var_shapes src with
    | Some s when Hashtbl.mem sc.var_shapes dst ->
        Hashtbl.replace sc.var_shapes dst s
    | _ -> ()
  in
  List.iter
    (function
      | Lemma.Paired ->
          let names =
            Hashtbl.fold (fun k _ acc -> k :: acc) sc.var_shapes []
          in
          List.iter
            (fun y ->
              match var_suffix_pair y with
              | Some x -> copy_shape x y
              | None -> ())
            names
      | Lemma.Same_shape groups ->
          List.iter
            (function
              | leader :: followers ->
                  List.iter (fun f -> copy_shape leader f) followers
              | [] -> ())
            groups
      | Lemma.Broadcast_vars vars -> (
          match sc.concat_axis with
          | None -> ()
          | Some axis ->
              List.iter
                (fun v ->
                  match Hashtbl.find_opt sc.var_shapes v with
                  | Some s when axis < Shape.rank s ->
                      Hashtbl.replace sc.var_shapes v
                        (Shape.set_dim s axis Symdim.one)
                  | _ -> ())
                vars)
      | Lemma.Integer_vars prefixes ->
          Hashtbl.iter
            (fun name _ ->
              if
                List.exists
                  (fun p ->
                    String.length name >= String.length p
                    && String.sub name 0 (String.length p) = p)
                  prefixes
              then Hashtbl.replace sc.var_dtypes name Dtype.I64)
            (Hashtbl.copy sc.var_shapes)
      | Lemma.Refine f ->
          let ctx =
            {
              Lemma.op_of = Hashtbl.find_opt sc.binder_ops;
              shape_of = Hashtbl.find_opt sc.var_shapes;
            }
          in
          sc.store <- f ctx sc.store
      | Lemma.Vector_aux _ | Lemma.Matrix_aux _ | Lemma.Table_aux _ ->
          (* numeric-sampler hints; the walk derives these shapes from
             the operator signatures directly *)
          ()
      | Lemma.Uniform_chunks | Lemma.Replicated | Lemma.Contraction
      | Lemma.Rows | Lemma.Concrete_last _ ->
          (* consumed during enumeration / the walk *)
          ())
    sc.hints

(* --- instantiation ------------------------------------------------------ *)

let expr_of_lhs sc lhs =
  let vnames = Pattern.vars lhs in
  let vmap = Hashtbl.create 8 in
  let replicated =
    has_hint (function Lemma.Replicated -> true | _ -> false) sc.hints
  in
  (if replicated then (
     match vnames with
     | [] -> ()
     | first :: _ ->
         let t =
           Tensor.create ~name:"xshared" (Hashtbl.find sc.var_shapes first)
         in
         List.iter (fun x -> Hashtbl.replace vmap x t) vnames)
   else
     List.iter
       (fun x ->
         let dtype =
           Option.value (Hashtbl.find_opt sc.var_dtypes x) ~default:Dtype.F32
         in
         Hashtbl.replace vmap x
           (Tensor.create ~dtype ~name:x (Hashtbl.find sc.var_shapes x)))
       vnames);
  let rec go = function
    | Pattern.V x -> Expr.leaf (Hashtbl.find vmap x)
    | Pattern.C _ -> raise (Skip_scenario "class reference on a left-hand side")
    | Pattern.P (sel, args) ->
        let op =
          match sel with
          | Pattern.Fixed op -> op
          | Pattern.Family { bind; _ } | Pattern.Bound bind ->
              Hashtbl.find sc.binder_ops bind
        in
        Expr.app op (List.map go args)
  in
  go lhs

(* Seed the context terms conditioned lemmas scan for (the symbolic
   sibling of {!Lemma_check.seed_context}): contiguous sub-concats and
   sub-sums, and the complementary slice of a structurally-zero-based
   slice, whose size comes from symbolic shape inference. *)
let seed_context_sym g store expr =
  match expr with
  | Expr.App (((Op.Concat _ | Op.Sum_n) as op), args) when List.length args >= 3
    ->
      let n = List.length args in
      let arr = Array.of_list args in
      for i = 0 to n - 1 do
        for j = i + 1 to n - 1 do
          if j - i + 1 < n then
            ignore
              (Egraph.add_expr g
                 (Expr.app op (Array.to_list (Array.sub arr i (j - i + 1)))))
        done
      done
  | Expr.App
      (((Op.Slice { dim; start; stop } | Op.Hlo_slice { dim; start; stop }) as
        sl),
       [ child ])
    when Symdim.equal start Symdim.zero -> (
      match Expr.infer_shape store child with
      | Ok s when dim < Shape.rank s ->
          let size = Shape.dim s dim in
          if not (Symdim.equal stop size) then
            let comp =
              match sl with
              | Op.Hlo_slice _ -> Op.Hlo_slice { dim; start = stop; stop = size }
              | _ -> Op.Slice { dim; start = stop; stop = size }
            in
            ignore (Egraph.add_expr g (Expr.app comp [ child ]))
      | _ -> ())
  | _ -> ()

let feasible store = Decide.feasible (Constraint_store.inequalities store)

let build_scenario (l : Lemma.t) (r : Rule.t) rank share knobs =
  let uniform =
    has_hint (function Lemma.Uniform_chunks -> true | _ -> false) l.hints
  in
  let concrete_last =
    List.find_map
      (function Lemma.Concrete_last k -> Some k | _ -> None)
      l.hints
  in
  let _, families = scan_pattern r.lhs in
  let sc =
    {
      store = Constraint_store.empty;
      fresh = 0;
      binder_ops = Hashtbl.create 8;
      var_shapes = Hashtbl.create 8;
      var_dtypes = Hashtbl.create 8;
      var_bounds = Hashtbl.create 8;
      offset_syms = [];
      concat_axis = None;
      slice_proto = None;
      uniform_chunk = None;
      int_bound = None;
      rank;
      share_slice = share;
      knobs;
      hints = l.hints;
      even_dims = List.mem "reduce_scatter" families;
      concrete_last;
      uniform;
    }
  in
  walk sc r.lhs None;
  apply_hints sc;
  let expr = expr_of_lhs sc r.lhs in
  if not (feasible sc.store) then None
  else begin
    let g = Egraph.create ~constraints:sc.store () in
    let root = Egraph.add_expr g expr in
    seed_context_sym g sc.store expr;
    Some (sc, g, root, describe rank share knobs)
  end

(* --- numeric probing ---------------------------------------------------- *)

let scenario_syms sc store =
  let from_store =
    List.concat_map Symdim.symbols (Constraint_store.inequalities store)
  in
  let from_shapes =
    Hashtbl.fold
      (fun _ s acc -> List.concat_map Symdim.symbols s @ acc)
      sc.var_shapes []
  in
  List.sort_uniq String.compare (from_store @ from_shapes)

(* Rejection-sample a small concrete assignment satisfying every
   inequality of the final constraint store. Size symbols draw from
   [1, 4], offsets (slice starts, pad amounts) from [0, 3]. *)
let sample_env sc store env_idx =
  let syms = scenario_syms sc store in
  let ineqs = Constraint_store.inequalities store in
  let is_offset s = List.mem s sc.offset_syms in
  let rst = Random.State.make [| 0x7e57; env_idx |] in
  let rec go attempt =
    if attempt >= 300 then None
    else
      let assign =
        List.map
          (fun s ->
            ( s,
              if is_offset s then Random.State.int rst 4
              else 1 + Random.State.int rst 4 ))
          syms
      in
      let lookup s =
        match List.assoc_opt s assign with Some v -> v | None -> 1
      in
      if List.for_all (fun e -> Symdim.eval lookup e >= 0) ineqs then
        Some (assign, lookup)
      else go (attempt + 1)
  in
  go 0

let is_finite v = List.for_all Float.is_finite (Ndarray.to_flat_list v)

let conc_dim env d = Symdim.of_int (Symdim.eval env d)

let conc_op env = function
  | Op.Slice { dim; start; stop } ->
      Op.Slice { dim; start = conc_dim env start; stop = conc_dim env stop }
  | Op.Hlo_slice { dim; start; stop } ->
      Op.Hlo_slice { dim; start = conc_dim env start; stop = conc_dim env stop }
  | Op.Pad { dim; before; after } ->
      Op.Pad { dim; before = conc_dim env before; after = conc_dim env after }
  | Op.Reshape { shape } ->
      Op.Reshape { shape = Shape.of_ints (Shape.concrete env shape) }
  | op -> op

(* Evaluate both sides on shared random leaves under a concrete
   dimension assignment. Mirrors {!Lemma_check.eval_pair}, plus integer
   leaves bounded by their recorded vocabulary. *)
let eval_concrete sc env seed el er =
  let ctensors = Hashtbl.create 8 in
  let rec conc e =
    match e with
    | Expr.Leaf t ->
        let key = (Tensor.id t :> int) in
        let t' =
          match Hashtbl.find_opt ctensors key with
          | Some t' -> t'
          | None ->
              let dims = Shape.concrete env (Tensor.shape t) in
              let t' =
                Tensor.create ~dtype:(Tensor.dtype t) ~name:(Tensor.name t)
                  (Shape.of_ints dims)
              in
              Hashtbl.replace ctensors key t';
              t'
        in
        Expr.leaf t'
    | Expr.App (op, args) -> Expr.app (conc_op env op) (List.map conc args)
  in
  let cl = conc el and cr = conc er in
  let st = Random.State.make [| 0x5eed; seed |] in
  let values = Hashtbl.create 8 in
  let lookup tensor =
    let key = (Tensor.id tensor :> int) in
    match Hashtbl.find_opt values key with
    | Some v -> v
    | None ->
        let dims = Shape.concrete (fun _ -> 0) (Tensor.shape tensor) in
        let v =
          if Dtype.is_integer (Tensor.dtype tensor) then
            let hi =
              match Hashtbl.find_opt sc.var_bounds (Tensor.name tensor) with
              | Some b -> max 1 (Symdim.eval env b)
              | None -> 4
            in
            Ndarray.random_ints st ~hi dims
          else
            Ndarray.map (fun x -> Float.abs x +. 0.125) (Ndarray.random st dims)
        in
        Hashtbl.replace values key v;
        v
  in
  let ienv = Interp.env_of_list [] in
  let side e =
    try Some (Interp.eval_expr ienv lookup e)
    with Invalid_argument _ | Not_found | Failure _ -> None
  in
  (side cl, side cr)

type probe_result =
  | P_value_cex of string
  | P_shape_cex of string
  | P_agree
  | P_inconclusive

let env_desc assign =
  String.concat ", "
    (List.map (fun (s, v) -> Printf.sprintf "%s=%d" s v) assign)

let dims_str v =
  String.concat "x" (List.map string_of_int (Ndarray.dims v))

let probe (config : config) sc store el er =
  let compared = ref false and result = ref None in
  (try
     for env_idx = 0 to config.probe_envs - 1 do
       match sample_env sc store env_idx with
       | None -> ()
       | Some (assign, lookup) ->
           List.iter
             (fun seed ->
               match eval_concrete sc lookup seed el er with
               | Some va, Some vb when is_finite va && is_finite vb ->
                   if Ndarray.dims va <> Ndarray.dims vb then (
                     result :=
                       Some
                         (P_shape_cex
                            (Printf.sprintf
                               "under %s: %s has dims [%s] but %s has dims [%s]"
                               (env_desc assign) (Expr.to_string el)
                               (dims_str va) (Expr.to_string er) (dims_str vb)));
                     raise Exit)
                   else (
                     compared := true;
                     if not (Ndarray.approx_equal ~tol:config.tol va vb) then (
                       result :=
                         Some
                           (P_value_cex
                              (Printf.sprintf
                                 "under %s, data seed %d (max deviation %g): %s \
                                  =/=  %s"
                                 (env_desc assign) seed
                                 (Ndarray.max_abs_diff va vb)
                                 (Expr.to_string el) (Expr.to_string er)));
                       raise Exit))
               | _ -> ())
             config.probe_seeds
     done
   with Exit -> ());
  match !result with
  | Some r -> r
  | None -> if !compared then P_agree else P_inconclusive

(* --- equation discharge ------------------------------------------------- *)

type eq_outcome =
  | O_proved
  | O_infeasible
  | O_unsupported of string
  | O_undecided of string
  | O_refuted of [ `Shape | `Value ] * string
  | O_skip

(* Universal output indices [?i_k] with their range constraints. *)
let index_env store shape =
  let store = ref store in
  let idx =
    List.mapi
      (fun i d ->
        let s = Symdim.sym (Printf.sprintf "?i%d" i) in
        store := Constraint_store.add_ge !store s;
        store :=
          Constraint_store.add_ge !store
            (Symdim.sub (Symdim.sub d Symdim.one) s);
        Sterm.I s)
      shape
  in
  (!store, idx)

let eval_equation (config : config) sc (r : Rule.t) g subst (lp, rp) =
  match (Lemma_check.expr_of g subst lp, Lemma_check.expr_of g subst rp) with
  | Some el, Some er -> (
      let ctxl = Symeval.create ~mode:Symeval.Assume (Egraph.constraints g) in
      match Symeval.eval ctxl el with
      | Error (Symeval.Unsupported m) -> O_unsupported m
      | Error (Symeval.Ill_typed _) -> O_skip
      | Ok vl -> (
          let store1 = Symeval.store ctxl in
          if not (feasible store1) then O_infeasible
          else
            let rhs_mode =
              if r.Rule.constrained || r.Rule.nonlocal then Symeval.Assume
              else Symeval.Check
            in
            let ctxr = Symeval.create ~mode:rhs_mode store1 in
            match Symeval.eval ctxr er with
            | Error (Symeval.Unsupported m) -> O_unsupported m
            | Error (Symeval.Ill_typed m) -> (
                match probe config sc store1 el er with
                | P_shape_cex msg -> O_refuted (`Shape, msg)
                | P_value_cex msg -> O_refuted (`Value, msg)
                | P_agree | P_inconclusive ->
                    O_undecided
                      ("right-hand side not provably well-typed: " ^ m))
            | Ok vr ->
                let store2 = Symeval.store ctxr in
                if not (feasible store2) then O_infeasible
                else
                  let shapes_proved =
                    Shape.rank vl.Symeval.shape = Shape.rank vr.Symeval.shape
                    && List.for_all2
                         (Decide.prove_eq store2)
                         vl.Symeval.shape vr.Symeval.shape
                  in
                  if not shapes_proved then
                    match probe config sc store2 el er with
                    | P_shape_cex msg -> O_refuted (`Shape, msg)
                    | P_value_cex msg -> O_refuted (`Value, msg)
                    | P_agree ->
                        O_undecided
                          "output shapes not provably equal (probes agree)"
                    | P_inconclusive ->
                        O_undecided
                          "output shapes not provably equal; numeric probe \
                           inconclusive"
                  else
                    let store3, idx = index_env store2 vl.Symeval.shape in
                    if
                      Sterm.prove_equal store3 (vl.Symeval.at idx)
                        (vr.Symeval.at idx)
                    then O_proved
                    else
                      match probe config sc store2 el er with
                      | P_value_cex msg -> O_refuted (`Value, msg)
                      | P_shape_cex msg -> O_refuted (`Shape, msg)
                      | P_agree ->
                          O_undecided "value equality not proved (probes agree)"
                      | P_inconclusive ->
                          O_undecided
                            "value equality not proved; numeric probe \
                             inconclusive"))
  | _ -> O_skip

(* --- per-rule verification ---------------------------------------------- *)

let enumerate (config : config) (l : Lemma.t) (r : Rule.t) =
  let binders, families = scan_pattern r.lhs in
  let ranks = ranks_for config l.hints families in
  let slice_binders =
    List.length (List.filter (fun (_, f) -> slice_family f) binders)
  in
  let shares = if slice_binders >= 2 then [ false; true ] else [ false ] in
  let scens =
    List.concat_map
      (fun rank ->
        List.concat_map
          (fun share ->
            let spaces =
              List.map
                (fun (b, f) ->
                  List.map (fun k -> (b, k)) (choices_for l.hints rank f))
                binders
            in
            List.map (fun knobs -> (rank, share, knobs)) (product spaces))
          shares)
      ranks
  in
  take config.max_scenarios scens

let verify_rule (config : config) (l : Lemma.t) ri (r : Rule.t) =
  let loc = Diagnostic.Lemma { lemma = l.name; rule = Some ri; seed = None } in
  let nvars = List.length (Pattern.vars r.lhs) in
  if nvars > config.max_rule_vars then
    ( Skipped
        (Printf.sprintf "binds %d pattern variables (cap %d)" nvars
           config.max_rule_vars),
      0,
      0,
      [] )
  else begin
    let scen_count = ref 0 and proved = ref 0 and infeasible = ref 0 in
    let refuted = ref None
    and verified = ref None
    and unsupported = ref None
    and undecided = ref None in
    (try
       List.iter
         (fun (rank, share, knobs) ->
           match build_scenario l r rank share knobs with
           | exception Skip_scenario _ -> ()
           | exception Unsupported_family f ->
               if !unsupported = None then
                 unsupported :=
                   Some ("operator family outside the symbolic fragment: " ^ f);
               raise Exit
           | None -> ()
           | Some (sc, g, root, desc) ->
               incr scen_count;
               let matches = take config.max_matches (Ematch.match_class g r.lhs root) in
               List.iter
                 (fun subst ->
                   let eqs =
                     match r.Rule.applier with
                     | Rule.Syntactic rhs -> [ (Pattern.c root, rhs) ]
                     | Rule.Conditional f -> (
                         try f g root subst
                         with Invalid_argument _ | Not_found | Failure _ -> [])
                   in
                   List.iter
                     (fun eq ->
                       match eval_equation config sc r g subst eq with
                       | O_proved ->
                           incr proved;
                           if !verified = None then verified := Some desc
                       | O_refuted (kind, msg) ->
                           refuted := Some (kind, msg);
                           raise Exit
                       | O_infeasible -> incr infeasible
                       | O_unsupported m ->
                           if !unsupported = None then unsupported := Some m
                       | O_undecided m ->
                           if !undecided = None then undecided := Some m
                       | O_skip -> ())
                     (take config.max_equations eqs))
                 matches)
         (enumerate config l r)
     with Exit -> ());
    let status, diags =
      match (!refuted, !verified) with
      | Some (kind, msg), _ ->
          let code = match kind with `Shape -> "LEMMA200" | `Value -> "LEMMA202" in
          let what =
            match kind with
            | `Shape -> "shape-unsound rewrite"
            | `Value -> "unsound rewrite"
          in
          ( Refuted msg,
            [ Diagnostic.error ~code loc "%s: %s" what msg ] )
      | None, Some desc -> (Verified desc, [])
      | None, None -> (
          match (!unsupported, !undecided) with
          | Some m, _ -> (Unsupported m, [])
          | None, Some m -> (Undecided m, [])
          | None, None ->
              if !infeasible > 0 then (Vacuous, []) else (Unapplied, []))
    in
    (status, !scen_count, !proved, diags)
  end

(* --- lemma and corpus verification -------------------------------------- *)

let verdict_of statuses =
  let exists p = List.exists p statuses in
  if exists (function Refuted _ -> true | _ -> false) then V_refuted
  else if exists (function Verified _ -> true | _ -> false) then V_verified
  else if
    exists (function Vacuous -> true | _ -> false)
    && List.for_all
         (function Vacuous | Unapplied | Skipped _ -> true | _ -> false)
         statuses
  then V_vacuous
  else if exists (function Unsupported _ -> true | _ -> false) then
    V_unsupported
  else if exists (function Undecided _ -> true | _ -> false) then V_undecided
  else V_unattempted

let verify_lemma ?(config = default_config) (l : Lemma.t) =
  let results = List.mapi (fun ri r -> verify_rule config l ri r) l.rules in
  let statuses = List.map (fun (s, _, _, _) -> s) results in
  let scenarios = List.fold_left (fun a (_, s, _, _) -> a + s) 0 results in
  let proved = List.fold_left (fun a (_, _, p, _) -> a + p) 0 results in
  let rule_diags = List.concat_map (fun (_, _, _, d) -> d) results in
  let verdict = verdict_of statuses in
  let loc = Diagnostic.Lemma { lemma = l.name; rule = None; seed = None } in
  let first_msg pick =
    List.find_map pick statuses |> Option.value ~default:""
  in
  let diags =
    match verdict with
    | V_vacuous ->
        rule_diags
        @ [
            Diagnostic.error ~code:"LEMMA201" loc
              "side conditions are unsatisfiable: every scenario that made \
               this lemma produce equations assumed an infeasible constraint \
               store";
          ]
    | V_unsupported ->
        rule_diags
        @ [
            Diagnostic.warning ~code:"LEMMA210" loc
              "not symbolically verifiable: %s"
              (first_msg (function Unsupported m -> Some m | _ -> None));
          ]
    | V_undecided ->
        rule_diags
        @ [
            Diagnostic.warning ~code:"LEMMA211" loc
              "symbolically exercised but not proved: %s"
              (first_msg (function Undecided m -> Some m | _ -> None));
          ]
    | V_verified | V_refuted | V_unattempted -> rule_diags
  in
  (diags, { lemma = l.name; klass = l.klass; verdict; rules = statuses; scenarios; proved })

let verify ?(config = default_config) ?span lemmas =
  let results =
    List.map
      (fun (l : Lemma.t) ->
        let run () = verify_lemma ~config l in
        match span with None -> run () | Some s -> s l.name run)
      lemmas
  in
  ( List.concat_map fst results,
    { rank_bound = config.rank_bound; lemmas = List.map snd results } )
