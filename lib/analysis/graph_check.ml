open Entangle_ir

let tid t = (Tensor.id t :> int)

let check_named ?name g =
  let gname = match name with Some n -> n | None -> Graph.name g in
  let loc ?node ?tensor () = Diagnostic.Graph { graph = gname; node; tensor } in
  let diags = ref [] in
  let emit d = diags := d :: !diags in
  let nodes = Graph.nodes g in
  let constraints = Graph.constraints g in

  (* --- SSA discipline: unique node ids, unique producers ------------- *)
  let seen_ids = Hashtbl.create 64 in
  List.iter
    (fun n ->
      let id = Node.id n in
      if Hashtbl.mem seen_ids id then
        emit
          (Diagnostic.error ~code:"GRAPH002" (loc ~node:id ())
             "duplicate node id %d" id)
      else Hashtbl.replace seen_ids id ())
    nodes;
  let first_producer = Hashtbl.create 64 in
  List.iter
    (fun n ->
      let out = Node.output n in
      (match Hashtbl.find_opt first_producer (tid out) with
      | Some other ->
          emit
            (Diagnostic.error ~code:"GRAPH002"
               (loc ~node:(Node.id n) ~tensor:(Tensor.name out) ())
               "tensor %a is produced twice (nodes %d and %d)" Tensor.pp_name
               out (Node.id other) (Node.id n))
      | None -> Hashtbl.replace first_producer (tid out) n);
      if Graph.is_input g out then
        emit
          (Diagnostic.error ~code:"GRAPH002"
             (loc ~node:(Node.id n) ~tensor:(Tensor.name out) ())
             "node %d produces graph input %a" (Node.id n) Tensor.pp_name out))
    nodes;

  (* --- def-before-use ------------------------------------------------ *)
  let available = Hashtbl.create 64 in
  List.iter (fun t -> Hashtbl.replace available (tid t) ()) (Graph.inputs g);
  List.iter
    (fun n ->
      List.iter
        (fun input ->
          if not (Hashtbl.mem available (tid input)) then
            if Hashtbl.mem first_producer (tid input) then
              emit
                (Diagnostic.error ~code:"GRAPH001"
                   (loc ~node:(Node.id n) ~tensor:(Tensor.name input) ())
                   "node %d uses %a before its definition (producer node %d \
                    comes later)"
                   (Node.id n) Tensor.pp_name input
                   (Node.id (Hashtbl.find first_producer (tid input))))
            else
              emit
                (Diagnostic.error ~code:"GRAPH001"
                   (loc ~node:(Node.id n) ~tensor:(Tensor.name input) ())
                   "node %d references dangling tensor %a (no producer, not a \
                    graph input)"
                   (Node.id n) Tensor.pp_name input))
        (Node.inputs n);
      Hashtbl.replace available (tid (Node.output n)) ())
    nodes;

  (* --- producer index consistency ------------------------------------ *)
  List.iter
    (fun n ->
      match Graph.producer g (Node.output n) with
      | Some n' when Node.id n' = Node.id n -> ()
      | Some n' ->
          emit
            (Diagnostic.error ~code:"GRAPH003"
               (loc ~node:(Node.id n) ~tensor:(Tensor.name (Node.output n)) ())
               "producer index maps %a to node %d, but node %d produces it"
               Tensor.pp_name (Node.output n) (Node.id n') (Node.id n))
      | None ->
          emit
            (Diagnostic.error ~code:"GRAPH003"
               (loc ~node:(Node.id n) ~tensor:(Tensor.name (Node.output n)) ())
               "producer index has no entry for %a (produced by node %d)"
               Tensor.pp_name (Node.output n) (Node.id n)))
    nodes;

  (* --- cycles through producer references ----------------------------- *)
  let color = Hashtbl.create 64 in
  (* 1 = on stack, 2 = done *)
  let rec visit n =
    match Hashtbl.find_opt color (Node.id n) with
    | Some 2 -> ()
    | Some _ ->
        emit
          (Diagnostic.error ~code:"GRAPH004" (loc ~node:(Node.id n) ())
             "cycle through node %d (%s)" (Node.id n) (Op.name (Node.op n)))
    | None ->
        Hashtbl.replace color (Node.id n) 1;
        List.iter
          (fun input ->
            match Hashtbl.find_opt first_producer (tid input) with
            | Some p -> visit p
            | None -> ())
          (Node.inputs n);
        Hashtbl.replace color (Node.id n) 2
  in
  List.iter visit nodes;

  (* --- dead nodes (via the precomputed consumers index) --------------- *)
  let live = Hashtbl.create 64 in
  List.iter
    (fun n ->
      let out = Node.output n in
      let used_later =
        Graph.is_output g out
        || List.exists
             (fun c -> Hashtbl.mem live (Node.id c))
             (Graph.consumers g out)
      in
      if used_later then Hashtbl.replace live (Node.id n) ()
      else
        emit
          (Diagnostic.warning ~code:"GRAPH005"
             (loc ~node:(Node.id n) ~tensor:(Tensor.name out) ())
             "dead node: %a is unreachable from the graph outputs"
             Tensor.pp_name out))
    (List.rev nodes);

  (* --- unused inputs --------------------------------------------------- *)
  List.iter
    (fun t ->
      if Graph.consumers g t = [] && not (Graph.is_output g t) then
        emit
          (Diagnostic.warning ~code:"GRAPH006" (loc ~tensor:(Tensor.name t) ())
             "graph input %a is never used" Tensor.pp_name t))
    (Graph.inputs g);

  (* --- shape / dtype re-inference -------------------------------------- *)
  List.iter
    (fun n ->
      let op = Node.op n and out = Node.output n in
      let node = Node.id n in
      if not (Op.arity_ok op (List.length (Node.inputs n))) then
        emit
          (Diagnostic.error ~code:"GRAPH010" (loc ~node ())
             "operator %s applied to %d input(s)" (Op.name op)
             (List.length (Node.inputs n)))
      else begin
        (match
           try
             Op.infer_shape constraints op
               (List.map Tensor.shape (Node.inputs n))
           with Invalid_argument e -> Error e
         with
        | Error e ->
            emit
              (Diagnostic.error ~code:"GRAPH011" (loc ~node ())
                 "shape inference failed: %s" e)
        | Ok shape ->
            if not (Shape.equal constraints shape (Tensor.shape out)) then
              emit
                (Diagnostic.error ~code:"GRAPH007"
                   (loc ~node ~tensor:(Tensor.name out) ())
                   "stale shape: stored %a, re-inference gives %a" Shape.pp
                   (Tensor.shape out) Shape.pp shape));
        match Op.infer_dtype op (List.map Tensor.dtype (Node.inputs n)) with
        | Error e ->
            emit
              (Diagnostic.error ~code:"GRAPH011" (loc ~node ())
                 "dtype inference failed: %s" e)
        | Ok dtype ->
            if not (Dtype.equal dtype (Tensor.dtype out)) then
              emit
                (Diagnostic.error ~code:"GRAPH008"
                   (loc ~node ~tensor:(Tensor.name out) ())
                   "stale dtype: stored %s, re-inference gives %s"
                   (Dtype.to_string (Tensor.dtype out))
                   (Dtype.to_string dtype))
      end)
    nodes;

  (* --- outputs ---------------------------------------------------------- *)
  List.iter
    (fun t ->
      if not (Graph.mem_tensor g t) then
        emit
          (Diagnostic.error ~code:"GRAPH009" (loc ~tensor:(Tensor.name t) ())
             "graph output %a is neither an input nor produced by any node"
             Tensor.pp_name t))
    (Graph.outputs g);

  Diagnostic.sort (List.rev !diags)

let check g = check_named g
