open Entangle_symbolic
open Entangle_ir
open Entangle_egraph

let shape_is_concrete shape =
  let ok = ref true in
  for d = 0 to Shape.rank shape - 1 do
    if Symdim.to_int (Shape.dim shape d) = None then ok := false
  done;
  !ok

(* Shape of one canonicalized node, re-derived from its children's class
   shapes; [None] when a child class has no shape or inference fails
   (the analysis itself gives up there too, so nothing to compare). *)
let node_shape g node =
  match Enode.sym node with
  | Enode.Leaf t -> Some (Tensor.shape t)
  | Enode.Op op ->
      let child_shapes =
        List.map (fun c -> Egraph.shape_of g c) (Enode.children node)
      in
      if List.exists Option.is_none child_shapes then None
      else
        let child_shapes = List.filter_map Fun.id child_shapes in
        (match Op.infer_shape (Egraph.constraints g) op child_shapes with
        | Ok s -> Some s
        | Error _ | (exception Invalid_argument _) -> None)

let check g =
  let diags = ref [] in
  let emit d = diags := d :: !diags in
  (if Egraph.Debug.pending_count g > 0 then
     emit
       (Diagnostic.error ~code:"EGRAPH001" Diagnostic.Egraph
          "%d pending union(s): rebuild has not been run, congruence may \
           not hold"
          (Egraph.Debug.pending_count g)));
  match Egraph.Debug.uf_check_acyclic g with
  | Error id ->
      (* Any [find] below would diverge on a cyclic parent chain; there
         is nothing more to check soundly. *)
      emit
        (Diagnostic.error ~code:"EGRAPH002"
           (Diagnostic.Eclass (Id.to_int id))
           "union-find parent chain starting at id %d is cyclic"
           (Id.to_int id));
      Diagnostic.sort (List.rev !diags)
  | Ok () ->
      let class_ids = Egraph.class_ids g in
      List.iter
        (fun id ->
          let canon = Egraph.find g id in
          if not (Id.equal canon id) then
            emit
              (Diagnostic.error ~code:"EGRAPH003"
                 (Diagnostic.Eclass (Id.to_int id))
                 "class table holds non-canonical id %d (canonical: %d)"
                 (Id.to_int id) (Id.to_int canon)))
        class_ids;
      (* Hashcons: every entry's key must stay canonical and its class
         must actually contain the node. *)
      List.iter
        (fun (node, id) ->
          let canon_node = Enode.map_children (Egraph.find g) node in
          if not (Enode.equal canon_node node) then
            emit
              (Diagnostic.error ~code:"EGRAPH004"
                 (Diagnostic.Eclass (Id.to_int (Egraph.find g id)))
                 "stale hashcons key %s: children are not canonical"
                 (Fmt.str "%a" Enode.pp node));
          match Egraph.nodes_of g (Egraph.find g id) with
          | nodes ->
              if not (List.exists (Enode.equal canon_node) nodes) then
                emit
                  (Diagnostic.error ~code:"EGRAPH004"
                     (Diagnostic.Eclass (Id.to_int (Egraph.find g id)))
                     "hashcons maps %s to class %d, which does not contain \
                      the node"
                     (Fmt.str "%a" Enode.pp node)
                     (Id.to_int (Egraph.find g id)))
          | exception (Invalid_argument _ | Not_found) ->
              emit
                (Diagnostic.error ~code:"EGRAPH004"
                   (Diagnostic.Eclass (Id.to_int id))
                   "hashcons maps %s to id %d, which is not a class"
                   (Fmt.str "%a" Enode.pp node)
                   (Id.to_int id)))
        (Egraph.Debug.memo_entries g);
      (* Congruence: after rebuild, a canonical node may live in at most
         one class. *)
      let owner = Enode.Tbl.create 256 in
      Egraph.iter_nodes g (fun id node ->
          let id = Egraph.find g id in
          match Enode.Tbl.find_opt owner node with
          | None -> Enode.Tbl.replace owner node id
          | Some other when Id.equal other id -> ()
          | Some other ->
              emit
                (Diagnostic.error ~code:"EGRAPH005"
                   (Diagnostic.Eclass (Id.to_int id))
                   "congruence violation: canonical node %s is in classes \
                    %d and %d"
                   (Fmt.str "%a" Enode.pp node)
                   (Id.to_int other) (Id.to_int id)));
      (* Shape analysis: every node of a class must agree with the
         class's shape. *)
      List.iter
        (fun id ->
          let id = Egraph.find g id in
          match Egraph.shape_of g id with
          | None -> ()
          | Some class_shape ->
              List.iter
                (fun node ->
                  match node_shape g node with
                  | None -> ()
                  | Some node_sh ->
                      if
                        not
                          (Shape.equal (Egraph.constraints g) class_shape
                             node_sh)
                      then
                        let concrete =
                          shape_is_concrete class_shape
                          && shape_is_concrete node_sh
                        in
                        let mk =
                          if concrete then Diagnostic.error
                          else Diagnostic.warning
                        in
                        emit
                          (mk ~code:"EGRAPH006"
                             (Diagnostic.Eclass (Id.to_int id))
                             "shape analysis says %s but node %s has shape \
                              %s%s"
                             (Shape.to_string class_shape)
                             (Fmt.str "%a" Enode.pp node)
                             (Shape.to_string node_sh)
                             (if concrete then ""
                              else " (equality unprovable)")))
                (Egraph.nodes_of g id))
        class_ids;
      (* Union-time shape conflicts: [Egraph.union] keeps the winner's
         shape when both classes carry one, but records the dropped
         disagreement. Severity mirrors EGRAPH006: an error only when
         both shapes are concrete (a provable contradiction in the
         equality being asserted); a warning when symbolic dimensions
         make the disagreement unprovable. *)
      List.iter
        (fun (id, kept, dropped) ->
          let concrete = shape_is_concrete kept && shape_is_concrete dropped in
          let mk = if concrete then Diagnostic.error else Diagnostic.warning in
          emit
            (mk ~code:"EGRAPH007"
               (Diagnostic.Eclass (Id.to_int (Egraph.find g id)))
               "union merged classes with disagreeing shapes: kept %s, \
                dropped %s%s"
               (Shape.to_string kept) (Shape.to_string dropped)
               (if concrete then "" else " (equality unprovable)")))
        (Egraph.Debug.shape_conflicts g);
      (* Cached node counter vs. ground truth. *)
      let recomputed = Egraph.Debug.recompute_num_nodes g in
      if Egraph.num_nodes g <> recomputed then
        emit
          (Diagnostic.error ~code:"EGRAPH008" Diagnostic.Egraph
             "cached num_nodes = %d but recounting the class node lists \
              gives %d"
             (Egraph.num_nodes g) recomputed);
      (* Operator-family index: complete (every class listed under every
         family it contains) and sound after compaction (no family
         claims a class with no node of that family). Raw entries may
         hold stale non-canonical ids from absorbed classes — those are
         compacted lazily on query, so completeness is checked through
         the querying API and soundness only over live canonical ids. *)
      let class_families id =
        List.fold_left
          (fun acc node ->
            match Enode.sym node with
            | Enode.Op op ->
                let f = Op.name op in
                if List.mem f acc then acc else f :: acc
            | Enode.Leaf _ -> acc)
          [] (Egraph.nodes_of g id)
      in
      List.iter
        (fun id ->
          List.iter
            (fun f ->
              if not (List.exists (Id.equal id) (Egraph.classes_with_family g f))
              then
                emit
                  (Diagnostic.error ~code:"EGRAPH009"
                     (Diagnostic.Eclass (Id.to_int id))
                     "family index is missing class %d under family %S"
                     (Id.to_int id) f))
            (class_families id))
        class_ids;
      List.iter
        (fun (f, ids) ->
          List.iter
            (fun id ->
              if Id.equal (Egraph.find g id) id && not (List.mem f (class_families id))
              then
                emit
                  (Diagnostic.error ~code:"EGRAPH009"
                     (Diagnostic.Eclass (Id.to_int id))
                     "family index lists class %d under family %S but the \
                      class has no such node"
                     (Id.to_int id) f))
            ids)
        (Egraph.Debug.family_entries g);
      Diagnostic.sort (List.rev !diags)

exception Violation of Diagnostic.t list

let runner_hook g =
  let ds = check g in
  if Diagnostic.count_errors ds > 0 then raise (Violation ds)
