open Entangle_egraph

type t = {
  frontier_optimization : bool;
  prune_equivalent : bool;
  max_alternates : int;
  limits : Runner.limits;
  lint_graphs : bool;
  check_egraph_invariants : bool;
}

let default =
  {
    frontier_optimization = true;
    prune_equivalent = true;
    max_alternates = 4;
    limits = Runner.default_limits;
    lint_graphs = true;
    check_egraph_invariants = false;
  }

let no_frontier = { default with frontier_optimization = false }
let no_pruning = { default with prune_equivalent = false; max_alternates = 8 }
