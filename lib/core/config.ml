open Entangle_egraph

type t = {
  frontier_optimization : bool;
  prune_equivalent : bool;
  max_alternates : int;
  limits : Runner.limits;
  lint_graphs : bool;
  check_egraph_invariants : bool;
  scheduler : Runner.scheduler_kind;
  incremental_matching : bool;
}

let default =
  {
    frontier_optimization = true;
    prune_equivalent = true;
    max_alternates = 4;
    limits = Runner.default_limits;
    lint_graphs = true;
    check_egraph_invariants = false;
    scheduler = Runner.Backoff;
    incremental_matching = true;
  }

let no_frontier = { default with frontier_optimization = false }
let no_pruning = { default with prune_equivalent = false; max_alternates = 8 }

let simple_runner =
  { default with scheduler = Runner.Simple; incremental_matching = false }
