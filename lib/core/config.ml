open Entangle_egraph

type rung = {
  scale : int;
  scheduler : Runner.scheduler_kind;
  incremental : bool;
}

let default_escalation =
  [
    { scale = 2; scheduler = Runner.Backoff; incremental = true };
    { scale = 4; scheduler = Runner.Simple; incremental = false };
  ]

type t = {
  frontier_optimization : bool;
  prune_equivalent : bool;
  max_alternates : int;
  limits : Runner.limits;
  lint_graphs : bool;
  check_egraph_invariants : bool;
  scheduler : Runner.scheduler_kind;
  incremental_matching : bool;
  trace : Entangle_trace.Sink.t;
  op_deadline_s : float option;
  check_deadline_s : float option;
  escalation : rung list;
  keep_going : bool;
  cache : Entangle_cache.Cache.t option;
  cache_verify : bool;
  cache_namespace : string;
  jobs : int;
}

let default =
  {
    frontier_optimization = true;
    prune_equivalent = true;
    max_alternates = 4;
    limits = Runner.default_limits;
    lint_graphs = true;
    check_egraph_invariants = false;
    scheduler = Runner.Backoff;
    incremental_matching = true;
    trace = Entangle_trace.Sink.null;
    op_deadline_s = None;
    check_deadline_s = None;
    escalation = default_escalation;
    keep_going = false;
    cache = None;
    cache_verify = false;
    cache_namespace = "";
    jobs = 1;
  }

let no_frontier = { default with frontier_optimization = false }
let no_pruning = { default with prune_equivalent = false; max_alternates = 8 }

let simple_runner =
  { default with scheduler = Runner.Simple; incremental_matching = false }

(* Builders: pipeline-friendly (`Config.default |> with_scheduler ...`)
   so call sites stop open-coding record updates as the flag set
   grows. *)
let with_limits limits t = { t with limits }
let with_scheduler scheduler t = { t with scheduler }
let with_incremental_matching incremental_matching t =
  { t with incremental_matching }
let with_trace trace t = { t with trace }
let with_op_deadline op_deadline_s t = { t with op_deadline_s }
let with_check_deadline check_deadline_s t = { t with check_deadline_s }
let with_escalation escalation t = { t with escalation }
let with_keep_going keep_going t = { t with keep_going }
let with_cache cache t = { t with cache }
let with_cache_verify cache_verify t = { t with cache_verify }
let with_cache_namespace cache_namespace t = { t with cache_namespace }
let with_jobs jobs t = { t with jobs = max 1 jobs }

(* What the certificate cache must key on: every configuration field
   that can change which mappings the per-operator search finds or
   whether saturation completes. Wall-clock and heap budgets are
   excluded on purpose — exhausting them yields an [Inconclusive]
   verdict, which is never cached, so they cannot change a cached
   outcome. [lint_graphs], [keep_going], [trace] and
   [check_egraph_invariants] do not influence the search either (the
   invariant audit can only raise, which is an uncacheable [Internal]
   verdict). [jobs] is likewise excluded: parallel scheduling changes
   only execution order, and every per-operator search sees the same
   seeds and cone regardless of job count — cache keys must not churn
   when users flip [-j]. *)
let search_fingerprint t =
  let scheduler_name = function
    | Runner.Simple -> "simple"
    | Runner.Backoff -> "backoff"
  in
  let rung (r : rung) =
    Fmt.str "%d:%s:%b" r.scale (scheduler_name r.scheduler) r.incremental
  in
  Fmt.str
    "search/1;frontier=%b;prune=%b;alts=%d;iters=%d;nodes=%d;classes=%d;sched=%s;incr=%b;esc=%s"
    t.frontier_optimization t.prune_equivalent t.max_alternates
    t.limits.Runner.max_iterations t.limits.Runner.max_nodes
    t.limits.Runner.max_classes
    (scheduler_name t.scheduler)
    t.incremental_matching
    (String.concat "," (List.map rung t.escalation))
