(** Executable certification of a refinement result.

    The paper argues (section 3.3) that the relation ENTANGLE returns is
    a certificate of soundness. This module makes that operational: it
    draws random concrete inputs for the distributed graph (unifying
    replicated inputs as dictated by the input relation), derives the
    sequential inputs by evaluating the input relation, runs both graphs
    with the reference interpreter, and replays every output-relation
    expression on the distributed outputs, checking numeric equality
    with the sequential outputs. *)

open Entangle_ir

val replay :
  ?tol:float ->
  ?seed:int ->
  ?max_mismatches:int ->
  env:Interp.env ->
  gs:Graph.t ->
  gd:Graph.t ->
  input_relation:Relation.t ->
  output_relation:Relation.t ->
  unit ->
  (unit, string) result
(** [Ok ()] when every mapped sequential output is reconstructed within
    [tol] (default 1e-3). On disagreement the [Error] accumulates up to
    [max_mismatches] failing output expressions (default 1 — the
    historical first-mismatch behavior), joined with ["; "], so callers
    like [cert verify] can surface every broken output in one run. *)
