open Entangle_ir
open Entangle_egraph
module Sink = Entangle_trace.Sink
module Event = Entangle_trace.Event

type outcome = {
  mappings : Expr.t list;
  output_mappings : Expr.t list;
  reports : Runner.report list;
  egraph_nodes : int;
  egraph_classes : int;
  exhausted : Runner.budget option;
}

(* Load one distributed node's defining equation into the e-graph:
   leaf(output) = op(leaf(inputs)). *)
let load_definition g node =
  let out = Egraph.add_leaf g (Node.output node) in
  let def =
    Egraph.add_op g (Node.op node)
      (List.map (Egraph.add_leaf g) (Node.inputs node))
  in
  ignore (Egraph.union g out def)

let compute ~config ?deadline ~sink ~rules ~gs ~gd ~relation v =
  let store = Graph.constraints gd in
  let g = Egraph.create ~constraints:store () in
  let limits =
    let l = config.Config.limits in
    (* Merge the caller's absolute deadline with any already in the
       configured limits; the runner checks the earlier of the two. *)
    match (l.Runner.deadline, deadline) with
    | _, None -> l
    | None, Some d -> { l with Runner.deadline = Some d }
    | Some a, Some b -> { l with Runner.deadline = Some (Float.min a b) }
  in
  let reports = ref [] in
  (* Base expression: v applied to its (sequential) input tensors. *)
  let input_ids = List.map (Egraph.add_leaf g) (Node.inputs v) in
  let base = Egraph.add_op g (Node.op v) input_ids in
  (* Seed the e-graph with the relation's mappings for v's inputs. *)
  let missing =
    List.filter (fun t -> Relation.find relation t = []) (Node.inputs v)
  in
  match missing with
  | t :: _ ->
      Error
        (Fmt.str "input %a of operator %a has no mapping in the relation"
           Tensor.pp_name t Node.pp v)
  | [] ->
      (* Seed the mappings of v's inputs plus those of every sequential
         graph input (weights and activations): entries with several
         mappings (replicated tensors) carry equivalences between
         distributed tensors that are otherwise only derivable through
         the sequential tensor, and replicated weights are referenced by
         operators arbitrarily far downstream. Mappings of unrelated
         intermediates are skipped, keeping the per-operator e-graph
         size independent of how much of the model was already
         processed. *)
      let is_seed =
        let inputs = Node.inputs v in
        fun t ->
          List.exists (Tensor.equal t) inputs || Graph.is_input gs t
      in
      List.iter
        (fun (t, exprs) ->
          if is_seed t then begin
            let leaf = Egraph.add_leaf g t in
            List.iter
              (fun expr ->
                ignore (Egraph.union g leaf (Egraph.add_expr g expr)))
              exprs
          end)
        (Relation.bindings relation);
      Egraph.rebuild g;
      let gd_tensors =
        List.fold_left
          (fun acc t -> Tensor.Set.add t acc)
          Tensor.Set.empty (Graph.tensors gd)
      in
      let is_gd t = Tensor.Set.mem t gd_tensors in
      let round_limits =
        { limits with Runner.max_iterations = 1 }
      in
      let invariant_check =
        if config.Config.check_egraph_invariants then
          Some Entangle_analysis.Egraph_check.runner_hook
        else None
      in
      (* One scheduler state for all of this operator's rounds: the
         per-rule last-search generations survive across the
         one-iteration [Runner.run] calls below, so every round after
         the first re-matches only classes dirtied since the rule's
         previous search. *)
      let state =
        Runner.create_state ~scheduler:config.Config.scheduler
          ~incremental:config.Config.incremental_matching ()
      in
      let rounds_used = ref 0 in
      let one_round ~confirm =
        incr rounds_used;
        let report =
          Runner.run ~limits:round_limits ~confirm_saturation:confirm
            ?invariant_check ~sink ~state g rules
        in
        reports := report :: !reports;
        report
      in
      let have_mapping () =
        Option.is_some (Extract.best_clean g ~leaf_ok:is_gd base)
      in
      if config.Config.frontier_optimization then
        Sink.span sink ~cat:"phase" "frontier" (fun () ->
            (* Listing 3: iteratively load the distributed subgraph
               related to v. T_rel starts from the tensors appearing in
               the relation's mappings for v's inputs (the cone anchors)
               and grows through each loaded node's output, so
               exploration is bounded by the downstream cone of v's
               inputs rather than the whole distributed graph. *)
            let t_rel =
              ref
                (List.fold_left
                   (fun acc t ->
                     List.fold_left
                       (fun acc expr ->
                         List.fold_left
                           (fun acc leaf ->
                             if is_gd leaf then Tensor.Set.add leaf acc
                             else acc)
                           acc (Expr.leaves expr))
                       acc (Relation.find relation t))
                   Tensor.Set.empty (Node.inputs v))
            in
            let explored = Hashtbl.create 64 in
            let wave = ref 0 in
            let continue = ref true in
            while !continue do
              let frontier =
                List.filter
                  (fun n ->
                    (not (Hashtbl.mem explored (Node.id n)))
                    && List.for_all
                         (fun t -> Tensor.Set.mem t !t_rel)
                         (Node.inputs n))
                  (Graph.nodes gd)
              in
              if frontier = [] then continue := false
              else begin
                List.iter
                  (fun n ->
                    Hashtbl.replace explored (Node.id n) ();
                    load_definition g n;
                    t_rel := Tensor.Set.add (Node.output n) !t_rel)
                  frontier;
                incr wave;
                if Sink.enabled sink then
                  Sink.instant sink "frontier-wave" ~cat:"frontier"
                    ~args:
                      [
                        ("wave", Event.Int !wave);
                        ("loaded", Event.Int (List.length frontier));
                        ("t_rel", Event.Int (Tensor.Set.cardinal !t_rel));
                      ]
              end
            done;
            Egraph.rebuild g)
      else
        Sink.span sink ~cat:"phase" "load" (fun () ->
            (* Unoptimized Listing 2: load the whole distributed
               graph. *)
            List.iter (load_definition g) (Graph.nodes gd);
            Egraph.rebuild g);
      (* Saturate round by round, stopping shortly after a clean mapping
         for v's output exists. Running to full saturation is wasted
         work once the relation entry is derivable, and the extra
         rounds mostly manufacture alternative decompositions whose
         number can grow combinatorially. The two settling rounds let
         simpler or output-grounded forms appear.

         The return value is why the loop stopped: [Some b] when budget
         [b] ran out before a mapping or saturation (the inconclusive
         outcome escalation retries), [None] otherwise. Per-round
         reports trip [Iterations] by construction (round limits cap
         each run at one iteration), so only the loop-level round count
         maps to [Iterations]; growth, deadline and heap trips are
         taken from the runner's report. *)
      let deadline_passed () =
        match limits.Runner.deadline with
        | Some d -> Unix.gettimeofday () > d
        | None -> false
      in
      let hard_trip (r : Runner.report) =
        match r.Runner.tripped with
        | Some (Runner.Nodes | Runner.Classes | Runner.Deadline | Runner.Heap)
          ->
            r.Runner.tripped
        | Some Runner.Iterations | None -> None
      in
      let rec saturate_rounds settling =
        if !rounds_used >= limits.Runner.max_iterations then
          Some Runner.Iterations
        else if Egraph.num_nodes g > limits.Runner.max_nodes then
          Some Runner.Nodes
        else if deadline_passed () then Some Runner.Deadline
        else begin
          let report = one_round ~confirm:false in
          let mapped = have_mapping () in
          if report.Runner.saturated then None
          else if mapped && settling <= 0 then None
          else
            match hard_trip report with
            | Some b -> if mapped then None else Some b
            | None ->
                if report.Runner.unions = 0 then begin
                  (* Fixpoint candidate handed back unconfirmed (see
                     {!Runner.run} [confirm_saturation]). With a clean
                     mapping already in hand, the deferred constrained
                     rules could only ratify equalities between existing
                     terms — more alternative forms, not new
                     reachability — so stop here and keep the cool-down
                     unpaid. Without a mapping, ask for confirmation:
                     the constrained rules may be exactly what unblocks
                     the derivation, and only a confirmed [saturated]
                     justifies reporting failure. *)
                  if mapped then None
                  else begin
                    let report2 = one_round ~confirm:true in
                    if report2.Runner.saturated then None
                    else
                      match hard_trip report2 with
                      | Some b ->
                          if have_mapping () then None else Some b
                      | None ->
                          if report2.Runner.unions = 0 then None
                          else saturate_rounds settling
                  end
                end
                else saturate_rounds (if mapped then settling - 1 else settling)
        end
      in
      Sink.span_begin sink ~cat:"phase" "saturate";
      let exhausted = saturate_rounds 2 in
      (match exhausted with
      | Some b when Sink.enabled sink ->
          Sink.instant sink "budget-trip" ~cat:"budget"
            ~args:
              [
                ("budget", Event.Str (Runner.budget_name b));
                ("operator", Event.Str (Op.name (Node.op v)));
                ("rounds", Event.Int !rounds_used);
              ]
      | _ -> ());
      Sink.span_end sink ~cat:"phase" "saturate"
        ~args:[ ("rounds", Event.Int !rounds_used) ];
      (* A growth sample at the operator's final e-graph: num_nodes is
         monotone, so this is the operator's node peak; classes can
         shrink through merges, so mid-iteration samples (emitted by the
         runner) may exceed it. *)
      if Sink.enabled sink then
        Sink.counter sink "egraph" ~cat:"egraph"
          ~args:
            [
              ("nodes", Event.Int (Egraph.num_nodes g));
              ("classes", Event.Int (Egraph.num_classes g));
            ];
      Sink.span_begin sink ~cat:"phase" "extract";
      (* Step 4: extract clean expressions for v's output. Every
         distributed leaf in the class is itself a (cost-zero) clean
         mapping; recording them all keeps replicated values visible to
         later operators (a relation may map a tensor several times,
         section 3.2). *)
      let leaf_mappings =
        List.filter_map
          (fun n ->
            match Enode.sym n with
            | Enode.Leaf t when is_gd t -> Some (Expr.leaf t)
            | _ -> None)
          (Egraph.nodes_of g base)
      in
      let best_any = Extract.best_clean g ~leaf_ok:is_gd base in
      let best_output =
        Extract.best_clean g ~leaf_ok:(fun t -> Graph.is_output gd t) base
      in
      (* Alternative canonical forms: a rearrangement-only expression
         (concat of shards rather than a sum of partials) and a
         structured expression that avoids leaves of the class itself.
         Recording several forms is what lets later operators choose the
         one their lemma needs — the C |-> sum(C1,C2) versus
         C |-> concat(D1,D2) situation of the paper's running example. *)
      let rearrange_only op =
        Op.is_clean op
        && match op with Op.Sum_n | Op.All_reduce -> false | _ -> true
      in
      let best_rearrange =
        Extract.best_filtered g ~node_ok:rearrange_only ~leaf_ok:is_gd base
      in
      let base_cls = Egraph.find g base in
      let non_self t =
        is_gd t
        &&
        match Egraph.leaf_id g t with
        | Some cls -> not (Id.equal (Egraph.find g cls) base_cls)
        | None -> true
      in
      let best_structured = Extract.best_clean g ~leaf_ok:non_self base in
      let best_structured_rearrange =
        Extract.best_filtered g ~node_ok:rearrange_only ~leaf_ok:non_self base
      in
      let dedup exprs =
        List.fold_left
          (fun acc e ->
            if List.exists (Expr.equal e) acc then acc else acc @ [ e ])
          [] exprs
      in
      let mappings =
        dedup
          (leaf_mappings @ Option.to_list best_any
          @ Option.to_list best_rearrange
          @ Option.to_list best_structured
          @ Option.to_list best_structured_rearrange
          @ Option.to_list best_output)
      in
      let mappings =
        if config.Config.prune_equivalent then mappings
        else
          (* Without pruning, also record clean expressions over strict
             subsets of leaves, up to the alternate budget. *)
          let alternates =
            List.filteri (fun i _ -> i < config.Config.max_alternates) mappings
          in
          alternates
      in
      let output_mappings = dedup (Option.to_list best_output) in
      Sink.span_end sink ~cat:"phase" "extract"
        ~args:
          [
            ("mappings", Event.Int (List.length mappings));
            ("output_mappings", Event.Int (List.length output_mappings));
          ];
      Ok
        {
          mappings;
          output_mappings;
          reports = List.rev !reports;
          egraph_nodes = Egraph.num_nodes g;
          egraph_classes = Egraph.num_classes g;
          exhausted;
        }
