(** The model-refinement checker (paper Listing 1).

    Processes every operator of the sequential graph in topological
    order, inferring a clean output relation for each; the first
    operator whose outputs cannot be mapped is reported, which is what
    localizes the bug. On success the result carries the complete clean
    output relation — the certificate of soundness (section 3.3).

    {2 Robustness guarantees}

    [check] never lets an exception from the per-operator search
    escape: anything raised while computing one operator's relation
    (rewrite appliers, the symbolic decision procedure, e-graph
    invariant audits, injected failpoints) is caught at the operator
    boundary and reported as an {!Internal} verdict localized to that
    operator. The only raises are the documented precondition
    violations ([Invalid_argument] before any operator is processed).

    Every failure carries a structured {!verdict} separating {e the
    relation provably does not exist} ({!Unmapped}) from {e the search
    ran out of budget} ({!Inconclusive}) from {e the checker itself
    broke} ({!Internal}) — three situations that demand different
    responses (fix the model / raise the budget / file a checker bug). *)

open Entangle_ir
open Entangle_egraph

type stats = {
  operators_processed : int;
  saturation_iterations : int;
  egraph_nodes_peak : int;
  egraph_classes_peak : int;
  matches_examined : int;
      (** substitutions collected by e-matching across all saturations;
          the work the incremental runner saves *)
  unions_applied : int;  (** rule applications that merged classes *)
  rule_hits : (string * int) list;  (** per-lemma application counts *)
  retries : int;
      (** escalation attempts taken beyond first tries (see
          {!Config.rung}) *)
  budget_trips : int;
      (** per-operator saturation loops stopped by an exhausted budget
          rather than saturation or success *)
  cache_hits : int;
      (** operators answered by certificate-cache replay instead of a
          fresh search (0 unless [config.Config.cache] is set) *)
  cache_misses : int;
      (** cache lookups that found no entry (the search then ran and
          populated the store) *)
  cache_replays_failed : int;
      (** cache entries found but rejected by replay validation — the
          search then ran as if the lookup had missed *)
  wall_time_s : float;
}

type scope =
  | Operator_scope  (** a per-operator budget tripped *)
  | Check_scope
      (** the whole-check deadline tripped; fatal — no escalation, and
          [keep_going] stops localizing *)

type exhausted = {
  budget : Runner.budget;  (** which budget tripped *)
  scope : scope;
  retries_used : int;
      (** escalation rungs consumed before giving up *)
}

type error = {
  exn : string;  (** [Printexc.to_string] of the caught exception *)
  backtrace : string;
  failpoint : string option;
      (** the failpoint name when the exception was
          {!Entangle_failpoint.Failpoint.Injected} — fault-injection
          tests use this to assert the failure was the seeded one *)
}

type verdict =
  | Unmapped of string
      (** the search saturated without mapping the operator's output: a
          clean relation is {e provably absent} under the given rules.
          The payload is a human-readable elaboration. *)
  | Inconclusive of exhausted
      (** a budget ran out before either a mapping or saturation; says
          nothing about whether a relation exists *)
  | Internal of error
      (** the checker itself failed on this operator; the verdict
          localizes the crash, it does not judge the model *)

type fault = {
  fault_operator : Node.t;
  fault_verdict : verdict;
  fault_input_mappings : (Tensor.t * Expr.t list) list;
}
(** One localized failure under [keep_going] (field names are prefixed
    to coexist with {!failure} in the same scope). *)

type success = {
  output_relation : Relation.t;
      (** maps every sequential output to clean expressions over
          distributed outputs *)
  full_relation : Relation.t;
      (** maps every sequential tensor (the accumulated R) *)
  cache_provenance : (Node.t * Entangle_cache.Cache.provenance) list;
      (** how each operator's relation was obtained (cache hit / miss /
          replay failure), in processing order; empty when caching is
          disabled *)
  stats : stats;
}

type failure = {
  operator : Node.t;  (** the first failing operator *)
  verdict : verdict;  (** that operator's verdict *)
  faults : fault list;
      (** every localized fault, in topological order; a singleton
          (mirroring [operator]/[verdict]) unless
          [config.Config.keep_going] found more. Never empty. *)
  dependents_skipped : Node.t list;
      (** operators skipped under [keep_going] because an input
          depended on a faulty operator's output — their verdict would
          only echo the upstream fault *)
  partial_relation : Relation.t;
      (** R accumulated before (and, under [keep_going], around) the
          failures; faulty outputs appear bound to opaque
          ["%opaque:..."] placeholder leaves *)
  input_mappings : (Tensor.t * Expr.t list) list;
      (** the first failing operator's input relations, for
          localization *)
  cache_provenance : (Node.t * Entangle_cache.Cache.provenance) list;
      (** cache provenance for the operators that were processed before
          (and, under [keep_going], around) the failure *)
  stats : stats;
}

val pp_verdict : Format.formatter -> verdict -> unit
val verdict_to_string : verdict -> string

val reason : failure -> string
  [@@deprecated
    "use verdict_to_string f.verdict: the structured verdict is the sole \
     failure surface (the legacy reason string is never serialized)"]
(** @deprecated [verdict_to_string f.verdict] — the one-line reason
    string that used to be stored in the failure record. Kept as a
    thin alias for out-of-tree callers; everything in-tree (including
    the serve wire protocol) reads [failure.verdict]. *)

val exit_code : (success, failure) result -> int
(** The process exit code convention shared by the CLI: 0 success,
    1 refinement failure ({!Unmapped}), 2 {!Inconclusive},
    3 {!Internal}. *)

val check :
  ?config:Config.t ->
  ?rules:Rule.t list ->
  gs:Graph.t ->
  gd:Graph.t ->
  input_relation:Relation.t ->
  unit ->
  (success, failure) result
(** [rules] defaults to the full ATen corpus
    ({!Entangle_lemmas.Registry.all}). Raises [Invalid_argument] when
    the input relation is not clean or does not cover the sequential
    graph's inputs that are actually used.

    Budgets: besides the per-operator saturation limits
    ([config.Config.limits], now including an optional wall-clock
    deadline and heap-word ceiling), [config.Config.op_deadline_s]
    bounds each operator attempt and [config.Config.check_deadline_s]
    bounds the whole call. All are checked cooperatively (per
    saturation iteration / operator boundary): tripping one yields an
    {!Inconclusive} verdict, never a hang or a kill.

    Escalation: when an operator comes back inconclusive, it is retried
    along [config.Config.escalation] (each rung scales the limits
    and/or changes scheduling) before the verdict is accepted; each
    retry emits a [cat:"retry"] span. Retries cannot flip a reachable
    verdict — they only run where the base attempt proved nothing.

    Multi-fault localization: with [config.Config.keep_going], checking
    continues past failing operators (outputs bound to opaque
    placeholders, dependents skipped) and every independent fault is
    returned in [failure.faults].

    Caching: with [config.Config.cache] set, each operator's search is
    keyed by content fingerprint (operator cone, seed relations, rule
    corpus, search configuration — see {!Entangle_cache.Cache}) and
    looked up first. A hit replays the stored certificate (re-validated
    structurally and by shape inference) with zero saturation work; a
    miss searches and populates the store. Only definitive outcomes
    (mappings, or provable absence at saturation) are cached —
    {!Inconclusive} and {!Internal} never are — so verdicts are
    unchanged, cached or not. Cache activity shows up as [cat:"cache"]
    trace events, in [stats], and per-operator in [cache_provenance].

    Parallelism: with [config.Config.jobs = n > 1], operators are
    checked by a pool of [n] domains, scheduled by {!Wavefront} —
    concurrently only when they have no sequential-graph dependency and
    their distributed cones are disjoint. Results (relation updates,
    verdicts, stats, cache reads/writes, provenance) commit at wavefront
    joins in topological order, so everything observable except wall
    time and trace-event timestamps/interleaving is identical to
    [jobs = 1]; a fatal fault discards all speculative work past it.
    [jobs = 1] (the default) runs the original sequential loop
    unchanged — byte-identical traces.

    Diagnostics flow through [config.Config.trace]
    ({!Entangle_trace.Sink}): per-operator spans with
    frontier/saturate/extract phases, per-iteration saturation
    counters, per-rule hit events, e-graph growth samples, retry spans
    and budget-trip instants. The [stats] of the result are a fold
    ({!Entangle_trace.Agg}) over that same event stream — per-rule
    application counts, previously the removed [?hit_counter]
    parameter, are in [stats.rule_hits] — so a collected trace and the
    statistics can never disagree ({!stats_of_events} performs the same
    fold over a collected event list). *)

val stats_of_events :
  ?wall_time_s:float -> Entangle_trace.Event.t list -> stats
(** Derive a [stats] record from a collected trace (the same fold
    {!check} applies on the fly). [wall_time_s] defaults to [0.] —
    wall time is a clock reading, not an event aggregate. *)
