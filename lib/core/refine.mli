(** The model-refinement checker (paper Listing 1).

    Processes every operator of the sequential graph in topological
    order, inferring a clean output relation for each; the first
    operator whose outputs cannot be mapped is reported, which is what
    localizes the bug. On success the result carries the complete clean
    output relation — the certificate of soundness (section 3.3). *)

open Entangle_ir
open Entangle_egraph

type stats = {
  operators_processed : int;
  saturation_iterations : int;
  egraph_nodes_peak : int;
  egraph_classes_peak : int;
  matches_examined : int;
      (** substitutions collected by e-matching across all saturations;
          the work the incremental runner saves *)
  unions_applied : int;  (** rule applications that merged classes *)
  rule_hits : (string * int) list;  (** per-lemma application counts *)
  wall_time_s : float;
}

type success = {
  output_relation : Relation.t;
      (** maps every sequential output to clean expressions over
          distributed outputs *)
  full_relation : Relation.t;
      (** maps every sequential tensor (the accumulated R) *)
  stats : stats;
}

type failure = {
  operator : Node.t;  (** where the search terminated *)
  reason : string;
  partial_relation : Relation.t;  (** R accumulated before the failure *)
  input_mappings : (Tensor.t * Expr.t list) list;
      (** the failing operator's input relations, for localization *)
  stats : stats;
}

val check :
  ?config:Config.t ->
  ?rules:Rule.t list ->
  gs:Graph.t ->
  gd:Graph.t ->
  input_relation:Relation.t ->
  unit ->
  (success, failure) result
(** [rules] defaults to the full ATen corpus
    ({!Entangle_lemmas.Registry.all}). Raises [Invalid_argument] when
    the input relation is not clean or does not cover the sequential
    graph's inputs that are actually used.

    Diagnostics flow through [config.Config.trace]
    ({!Entangle_trace.Sink}): per-operator spans with
    frontier/saturate/extract phases, per-iteration saturation
    counters, per-rule hit events and e-graph growth samples. The
    [stats] of the result are a fold ({!Entangle_trace.Agg}) over that
    same event stream — per-rule application counts, previously the
    removed [?hit_counter] parameter, are in [stats.rule_hits] — so a
    collected trace and the statistics can never disagree
    ({!stats_of_events} performs the same fold over a collected event
    list). *)

val stats_of_events :
  ?wall_time_s:float -> Entangle_trace.Event.t list -> stats
(** Derive a [stats] record from a collected trace (the same fold
    {!check} applies on the fly). [wall_time_s] defaults to [0.] —
    wall time is a clock reading, not an event aggregate. *)
