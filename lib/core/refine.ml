open Entangle_ir
module Trace = Entangle_trace
module Sink = Trace.Sink
module Event = Trace.Event
module Runner = Entangle_egraph.Runner
module Failpoint = Entangle_failpoint.Failpoint
module Cache = Entangle_cache.Cache
module Pool = Entangle_par.Pool

type stats = {
  operators_processed : int;
  saturation_iterations : int;
  egraph_nodes_peak : int;
  egraph_classes_peak : int;
  matches_examined : int;
  unions_applied : int;
  rule_hits : (string * int) list;
  retries : int;
  budget_trips : int;
  cache_hits : int;
  cache_misses : int;
  cache_replays_failed : int;
  wall_time_s : float;
}

type scope = Operator_scope | Check_scope

type exhausted = {
  budget : Runner.budget;
  scope : scope;
  retries_used : int;
}

type error = {
  exn : string;
  backtrace : string;
  failpoint : string option;
}

type verdict =
  | Unmapped of string
  | Inconclusive of exhausted
  | Internal of error

type fault = {
  fault_operator : Node.t;
  fault_verdict : verdict;
  fault_input_mappings : (Tensor.t * Expr.t list) list;
}

type success = {
  output_relation : Relation.t;
  full_relation : Relation.t;
  cache_provenance : (Node.t * Cache.provenance) list;
  stats : stats;
}

type failure = {
  operator : Node.t;
  verdict : verdict;
  faults : fault list;
  dependents_skipped : Node.t list;
  partial_relation : Relation.t;
  input_mappings : (Tensor.t * Expr.t list) list;
  cache_provenance : (Node.t * Cache.provenance) list;
  stats : stats;
}

(* Everything one speculative parallel operator check produced, parked
   until the wavefront join commits it in topological order (or
   discards it, if an earlier operator's fault halts the check). *)
type op_computed = {
  c_result : (Node_rel.outcome * int, verdict) result;
  c_prov : Cache.provenance option;
  c_puts : (unit -> unit) list;  (* deferred certificate-store writes *)
  c_events : Event.t list;  (* the operator's trace chunk, in order *)
}

let pp_verdict ppf = function
  | Unmapped msg -> Fmt.string ppf msg
  | Inconclusive e ->
      Fmt.pf ppf
        "inconclusive: the %s budget was exhausted %s%s — the search ran out \
         of resources before either finding a clean relation or proving one \
         absent"
        (Runner.budget_name e.budget)
        (match e.scope with
        | Operator_scope -> "on this operator"
        | Check_scope -> "for the whole check")
        (if e.retries_used = 0 then ""
         else Fmt.str " (after %d escalation retr%s)" e.retries_used
             (if e.retries_used = 1 then "y" else "ies"))
  | Internal e ->
      Fmt.pf ppf "internal error: %s%s"
        e.exn
        (match e.failpoint with
        | Some fp -> Fmt.str " (injected at failpoint %s)" fp
        | None -> "")

let verdict_to_string v = Fmt.str "%a" pp_verdict v
let reason f = verdict_to_string f.verdict

let exit_code = function
  | Ok _ -> 0
  | Error f -> (
      match f.verdict with
      | Unmapped _ -> 1
      | Inconclusive _ -> 2
      | Internal _ -> 3)

let stats_of_agg ~wall_time_s agg =
  {
    operators_processed = Trace.Agg.operators agg;
    saturation_iterations = Trace.Agg.iterations agg;
    egraph_nodes_peak = Trace.Agg.nodes_peak agg;
    egraph_classes_peak = Trace.Agg.classes_peak agg;
    matches_examined = Trace.Agg.matches agg;
    unions_applied = Trace.Agg.unions agg;
    rule_hits = Trace.Agg.rule_hits agg;
    retries = Trace.Agg.retries agg;
    budget_trips = Trace.Agg.budget_trips agg;
    cache_hits = Trace.Agg.cache_hits agg;
    cache_misses = Trace.Agg.cache_misses agg;
    cache_replays_failed = Trace.Agg.cache_replays_failed agg;
    wall_time_s;
  }

let stats_of_events ?(wall_time_s = 0.) events =
  let agg = Trace.Agg.create () in
  let sink = Trace.Agg.sink agg in
  List.iter (Sink.emit sink) events;
  stats_of_agg ~wall_time_s agg

let check ?(config = Config.default) ?rules ~gs ~gd ~input_relation () =
  if not (Relation.is_clean input_relation) then
    invalid_arg "Refine.check: input relation contains non-clean expressions";
  if config.Config.lint_graphs then begin
    let module A = Entangle_analysis in
    let lint which g =
      let errors =
        List.filter A.Diagnostic.is_error (A.Graph_check.check g)
      in
      if errors <> [] then
        invalid_arg
          (Fmt.str "Refine.check: %s graph %s is malformed:@.%a" which
             (Graph.name g) A.Diagnostic.pp_report errors)
    in
    lint "sequential" gs;
    lint "distributed" gd
  end;
  let rules =
    match rules with
    | Some r -> r
    | None -> Entangle_lemmas.Lemma.rules Entangle_lemmas.Registry.all
  in
  (* The certificate cache, when configured: one context per check
     (fingerprint environments over both graphs). [context] refuses
     graphs whose tensor names are ambiguous, in which case the check
     silently runs uncached. The context is immutable after
     construction; the store handle it wraps serializes its own I/O, so
     parallel workers share it directly. *)
  let cache_ctx =
    match config.Config.cache with
    | None -> None
    | Some cache ->
        (* The client namespace partitions the key space without being
           a search knob: suffix it onto the configuration fingerprint
           rather than into [search_fingerprint] itself, so the empty
           namespace keys exactly as every pre-namespace release. *)
        let config_fp =
          match config.Config.cache_namespace with
          | "" -> Config.search_fingerprint config
          | ns -> Config.search_fingerprint config ^ ";namespace=" ^ ns
        in
        Cache.context cache ~config_fp
          ~whole_graph:(not config.Config.frontier_optimization)
          ~rules ~gs ~gd
  in
  (* Statistics are a fold over the same event stream any configured
     trace sink receives: the aggregator is itself a sink, teed with
     [config.trace], so [stats] and a collected trace are projections
     of identical events and cannot disagree. Under [jobs > 1] workers
     buffer their events and the wavefront join replays each chunk
     through this same sink, in topological commit order. *)
  let agg = Trace.Agg.create () in
  let sink = Sink.tee (Trace.Agg.sink agg) config.Config.trace in
  let t0 = Unix.gettimeofday () in
  let check_deadline =
    Option.map (fun s -> t0 +. s) config.Config.check_deadline_s
  in
  let past_check_deadline () =
    match check_deadline with
    | Some d -> Unix.gettimeofday () > d
    | None -> false
  in
  (* Absolute deadline for one operator attempt: a fresh per-operator
     allowance (each escalation rung gets its own), clamped by the
     whole-check deadline. *)
  let attempt_deadline () =
    let now = Unix.gettimeofday () in
    match (config.Config.op_deadline_s, check_deadline) with
    | None, None -> None
    | Some s, None -> Some (now +. s)
    | None, Some d -> Some d
    | Some s, Some d -> Some (Float.min (now +. s) d)
  in
  let stats () = stats_of_agg ~wall_time_s:(Unix.gettimeofday () -. t0) agg in
  let cache_log = ref [] in
  let cache_instant ~sink v p =
    if Sink.enabled sink then
      Sink.instant sink
        (match p with
        | Cache.Hit -> "cache-hit"
        | Cache.Miss -> "cache-miss"
        | Cache.Replay_failed _ -> "cache-replay-failed")
        ~cat:"cache"
        ~args:[ ("operator", Event.Str (Op.name (Node.op v))) ]
  in
  let mappings_of v relation =
    List.map (fun t -> (t, Relation.find relation t)) (Node.inputs v)
  in
  let mk_fault v verdict relation =
    {
      fault_operator = v;
      fault_verdict = verdict;
      fault_input_mappings = mappings_of v relation;
    }
  in
  (* [faults] arrives earliest-first; the failure's scalar
     [operator]/[verdict]/[input_mappings] mirror the first fault — the
     operator that localizes the (first) bug, as before. *)
  let finalize relation faults skipped =
    match faults with
    | [] -> assert false
    | first :: _ ->
        Error
          {
            operator = first.fault_operator;
            verdict = first.fault_verdict;
            faults;
            dependents_skipped = List.rev skipped;
            partial_relation = relation;
            input_mappings = first.fault_input_mappings;
            cache_provenance = List.rev !cache_log;
            stats = stats ();
          }
  in
  let op_begin ~sink index v =
    if Sink.enabled sink then
      Sink.span_begin sink ~cat:"operator"
        (Op.name (Node.op v))
        ~args:
          [
            ("output", Event.Str (Fmt.str "%a" Tensor.pp_name (Node.output v)));
            ("index", Event.Int index);
          ]
  in
  let op_end ~sink ~processed ~mappings v =
    if Sink.enabled sink then
      Sink.span_end sink ~cat:"operator"
        (Op.name (Node.op v))
        ~args:
          [
            ("processed", Event.Bool processed);
            ("mappings", Event.Int mappings);
          ]
  in
  let no_mapping_msg v =
    Fmt.str
      "could not map outputs for operator %s: no clean expression over the \
       distributed graph reconstructs %a"
      (Op.name (Node.op v))
      Tensor.pp_name (Node.output v)
  in
  let unexposed_output_msg out =
    Fmt.str
      "graph output %a maps into the distributed graph but not to its \
       outputs: the value is computed yet never exposed"
      Tensor.pp_name out
  in
  (* An opaque stand-in bound to a faulty operator's output under
     [keep_going], so the partial relation stays total and the hole is
     visible by name in reports. *)
  let opaque t =
    Expr.leaf
      (Tensor.create
         ~name:(Fmt.str "%%opaque:%a" Tensor.pp_name t)
         (Tensor.shape t))
  in
  (* One operator, through the escalation ladder. This is the no-escape
     boundary: any exception raised by the per-operator computation
     (rewrite appliers, the symbolic decision procedure, e-graph
     invariant hooks, injected failpoints) is caught here and reported
     as an [Internal] verdict localized to [v]. Precondition violations
     detected before the loop ([Invalid_argument] on unclean input) are
     deliberately NOT routed through this: they are documented raises. *)
  let search_operator ~sink v relation =
    let attempt rung =
      let cfg =
        match rung with
        | None -> config
        | Some (r : Config.rung) ->
            {
              config with
              Config.limits =
                Runner.scale_limits r.Config.scale config.Config.limits;
              Config.scheduler = r.Config.scheduler;
              Config.incremental_matching = r.Config.incremental;
            }
      in
      match
        Node_rel.compute ~config:cfg ?deadline:(attempt_deadline ()) ~sink
          ~rules ~gs ~gd ~relation v
      with
      | Ok o -> Ok o
      | Error msg -> Error (Unmapped msg)
      | exception e ->
          let backtrace = Printexc.get_backtrace () in
          let failpoint =
            match e with Failpoint.Injected name -> Some name | _ -> None
          in
          Error (Internal { exn = Printexc.to_string e; backtrace; failpoint })
    in
    let rec go retries rung rungs =
      match attempt rung with
      | Error verdict -> `Fail verdict
      | Ok o ->
          if o.Node_rel.mappings <> [] then `Found (o, retries)
          else (
            match o.Node_rel.exhausted with
            | None ->
                (* Saturated with no mapping: provably absent under the
                   given rules, however much budget we add. This is the
                   one negative outcome worth caching: saturation is
                   deterministic for a fixed key. *)
                `Absent
            | Some b ->
                if past_check_deadline () then
                  `Fail
                    (Inconclusive
                       {
                         budget = Runner.Deadline;
                         scope = Check_scope;
                         retries_used = retries;
                       })
                else (
                  match rungs with
                  | [] ->
                      `Fail
                        (Inconclusive
                           {
                             budget = b;
                             scope = Operator_scope;
                             retries_used = retries;
                           })
                  | (r : Config.rung) :: rest ->
                      if Sink.enabled sink then
                        Sink.span_begin sink ~cat:"retry" "escalation"
                          ~args:
                            [
                              ("operator", Event.Str (Op.name (Node.op v)));
                              ("rung", Event.Int (retries + 1));
                              ("scale", Event.Int r.Config.scale);
                              ( "exhausted",
                                Event.Str (Runner.budget_name b) );
                            ];
                      let res = go (retries + 1) (Some r) rest in
                      if Sink.enabled sink then
                        Sink.span_end sink ~cat:"retry" "escalation"
                          ~args:
                            [
                              ( "resolved",
                                Event.Bool
                                  (match res with
                                  | `Found _ -> true
                                  | `Absent | `Fail _ -> false) );
                            ];
                      res))
    in
    go 0 None config.Config.escalation
  in
  (* Cache wrapper around the search: exact-key lookup, certificate
     replay on a hit, population on a miss. Only definitive outcomes
     are stored: a mapping set, or provable absence at saturation.
     [Inconclusive]/[Internal] say nothing about the model and are
     never cached.

     [note] reports provenance (the sequential path logs and emits it
     immediately; parallel workers record it for the commit step) and
     [defer_put] schedules a store write (immediate sequentially;
     parked until commit under [jobs > 1], so a halted check leaves
     exactly the entries a sequential halt would). *)
  let store_entry ctx key = function
    | `Found ((o : Node_rel.outcome), _) ->
        Cache.put ctx ~key
          (Cache.Mapped
             {
               mappings = o.Node_rel.mappings;
               output_mappings = o.Node_rel.output_mappings;
             })
    | `Absent -> Cache.put ctx ~key Cache.Unmapped
    | `Fail _ -> ()
  in
  let check_operator ~sink ~note ~defer_put v relation =
    let searched =
      match cache_ctx with
      | None -> search_operator ~sink v relation
      | Some ctx -> (
          let seeds =
            let inputs = Node.inputs v in
            List.filter
              (fun (t, _) ->
                List.exists (Tensor.equal t) inputs || Graph.is_input gs t)
              (Relation.bindings relation)
          in
          let key = Cache.key ctx ~seeds v in
          let lookup =
            Sink.span sink ~cat:"cache" "cache-lookup" (fun () ->
                Cache.find ctx ~key v)
          in
          match lookup with
          | `Hit entry when not config.Config.cache_verify -> (
              note Cache.Hit;
              match entry with
              | Cache.Mapped { mappings; output_mappings } ->
                  `Found
                    ( {
                        Node_rel.mappings;
                        output_mappings;
                        reports = [];
                        egraph_nodes = 0;
                        egraph_classes = 0;
                        exhausted = None;
                      },
                      0 )
              | Cache.Unmapped -> `Absent)
          | `Hit entry ->
              (* [cache_verify]: run the search anyway and cross-check
                 the cached verdict against the fresh one. *)
              let fresh = search_operator ~sink v relation in
              let agree =
                match (entry, fresh) with
                | Cache.Mapped _, `Found _ | Cache.Unmapped, `Absent -> true
                | _, `Fail _ ->
                    (* The fresh search proved nothing this time (a
                       budget tripped); that is not evidence against
                       the cached certificate. *)
                    true
                | _ -> false
              in
              if agree then note Cache.Hit
              else begin
                note
                  (Cache.Replay_failed
                     "cached verdict disagrees with fresh search");
                defer_put (fun () -> store_entry ctx key fresh)
              end;
              fresh
          | `Miss ->
              note Cache.Miss;
              let fresh = search_operator ~sink v relation in
              defer_put (fun () -> store_entry ctx key fresh);
              fresh
          | `Replay_failed reason ->
              note (Cache.Replay_failed reason);
              let fresh = search_operator ~sink v relation in
              defer_put (fun () -> store_entry ctx key fresh);
              fresh)
    in
    match searched with
    | `Found (o, retries) -> Ok (o, retries)
    | `Absent -> Error (Unmapped (no_mapping_msg v))
    | `Fail verdict -> Error verdict
  in
  (* Listing 1: process operators in topological order, accumulating R.
     Under [keep_going], a failing operator's output is bound to an
     opaque placeholder and tainted; operators reachable from a tainted
     tensor are skipped (their own verdict would only echo the upstream
     fault), so every reported fault is an independent localization. *)
  let taint relation output_relation tainted v =
    let out = Node.output v in
    let ph = opaque out in
    let relation = Relation.add relation out ph in
    let output_relation =
      if Graph.is_output gs out then Relation.add output_relation out ph
      else output_relation
    in
    (relation, output_relation, Tensor.Set.add out tainted)
  in
  let seq_note v p =
    cache_log := (v, p) :: !cache_log;
    cache_instant ~sink v p
  in
  let rec go index relation output_relation faults skipped tainted = function
    | [] -> (
        match List.rev faults with
        | [] ->
            Ok
              {
                output_relation;
                full_relation = relation;
                cache_provenance = List.rev !cache_log;
                stats = stats ();
              }
        | ordered -> finalize relation ordered skipped)
    | v :: rest ->
        if
          config.Config.keep_going
          && List.exists (fun t -> Tensor.Set.mem t tainted) (Node.inputs v)
        then begin
          (* Dependent on an earlier fault: no independent verdict
             possible. *)
          if Sink.enabled sink then
            Sink.instant sink "operator-skipped" ~cat:"operator"
              ~args:
                [
                  ("operator", Event.Str (Op.name (Node.op v)));
                  ("index", Event.Int index);
                ];
          let relation, output_relation, tainted =
            taint relation output_relation tainted v
          in
          go (index + 1) relation output_relation faults (v :: skipped)
            tainted rest
        end
        else if past_check_deadline () then
          (* The whole-check deadline is fatal: stop localizing. *)
          let fault =
            mk_fault v
              (Inconclusive
                 {
                   budget = Runner.Deadline;
                   scope = Check_scope;
                   retries_used = 0;
                 })
              relation
          in
          finalize relation (List.rev (fault :: List.rev faults)) skipped
        else begin
          op_begin ~sink index v;
          match
            check_operator ~sink ~note:(seq_note v)
              ~defer_put:(fun th -> th ())
              v relation
          with
          | Error verdict -> (
              op_end ~sink ~processed:false ~mappings:0 v;
              let fault = mk_fault v verdict relation in
              let fatal =
                match verdict with
                | Inconclusive { scope = Check_scope; _ } -> true
                | _ -> false
              in
              match config.Config.keep_going && not fatal with
              | true ->
                  let relation, output_relation, tainted =
                    taint relation output_relation tainted v
                  in
                  go (index + 1) relation output_relation (faults @ [ fault ])
                    skipped tainted rest
              | false -> finalize relation (faults @ [ fault ]) skipped)
          | Ok (outcome, _retries) -> (
              op_end ~sink ~processed:true
                ~mappings:(List.length outcome.Node_rel.mappings)
                v;
              let out = Node.output v in
              let relation =
                Relation.add_all relation out outcome.Node_rel.mappings
              in
              if Graph.is_output gs out then
                match outcome.Node_rel.output_mappings with
                | [] ->
                    let fault =
                      mk_fault v (Unmapped (unexposed_output_msg out)) relation
                    in
                    (* The internal mapping is real, so downstream
                       operators can still use it: no taint. *)
                    if config.Config.keep_going then
                      go (index + 1) relation output_relation
                        (faults @ [ fault ]) skipped tainted rest
                    else finalize relation (faults @ [ fault ]) skipped
                | out_maps ->
                    go (index + 1) relation
                      (Relation.add_all output_relation out out_maps)
                      faults skipped tainted rest
              else
                go (index + 1) relation output_relation faults skipped tainted
                  rest)
        end
  in
  (* Sequential inputs that are also outputs pass through via identity. *)
  let output_relation0 =
    List.fold_left
      (fun acc t ->
        if Graph.is_input gs t then
          Relation.add_all acc t (Relation.find input_relation t)
        else acc)
      Relation.empty (Graph.outputs gs)
  in
  (* The parallel driver. Wavefront scheduling preserves the sequential
     loop's observable behavior exactly: a ready operator's computation
     depends only on its seeds (its input mappings plus the
     sequential-input mappings), all committed before it is scheduled,
     so any execution order computes the same per-operator result; the
     join then commits results in topological index order, replaying
     each operator's buffered trace chunk, provenance note and deferred
     store writes through the same code path the sequential loop runs
     inline. A fatal fault discards everything parked beyond it, which
     is precisely what halting the sequential loop never computes. *)
  let check_parallel () =
    let wf =
      Wavefront.create ~gs ~gd
        ~whole_graph:(not config.Config.frontier_optimization)
    in
    let ops = Wavefront.ops wf in
    let n = Array.length ops in
    let committed = Array.make n false in
    let started = Array.make n false in
    let pending = Array.make n None in
    let relation = ref input_relation in
    let output_relation = ref output_relation0 in
    let faults = ref [] in  (* earliest-first, like the sequential go *)
    let skipped = ref [] in  (* reversed, like the sequential go *)
    let tainted = ref Tensor.Set.empty in
    let halted = ref None in
    let next = ref 0 in
    let compute index v relation =
      let buf = ref [] in
      let bsink = Sink.make (fun ev -> buf := ev :: !buf) in
      let prov = ref None in
      let puts = ref [] in
      op_begin ~sink:bsink index v;
      let result =
        check_operator ~sink:bsink
          ~note:(fun p ->
            prov := Some p;
            cache_instant ~sink:bsink v p)
          ~defer_put:(fun th -> puts := th :: !puts)
          v relation
      in
      (match result with
      | Error _ -> op_end ~sink:bsink ~processed:false ~mappings:0 v
      | Ok (o, _) ->
          op_end ~sink:bsink ~processed:true
            ~mappings:(List.length o.Node_rel.mappings)
            v);
      {
        c_result = result;
        c_prov = !prov;
        c_puts = List.rev !puts;
        c_events = List.rev !buf;
      }
    in
    let halt failure = halted := Some failure in
    let commit i = function
      | `Skip ->
          let v = ops.(i) in
          if Sink.enabled sink then
            Sink.instant sink "operator-skipped" ~cat:"operator"
              ~args:
                [
                  ("operator", Event.Str (Op.name (Node.op v)));
                  ("index", Event.Int i);
                ];
          let r, o, tn = taint !relation !output_relation !tainted v in
          relation := r;
          output_relation := o;
          tainted := tn;
          skipped := v :: !skipped
      | `Run c ->
          let v = ops.(i) in
          if past_check_deadline () then
            (* Mirror the sequential pre-operator deadline check: the
               speculative result is discarded, the fatal fault lands
               on this operator. *)
            let fault =
              mk_fault v
                (Inconclusive
                   {
                     budget = Runner.Deadline;
                     scope = Check_scope;
                     retries_used = 0;
                   })
                !relation
            in
            halt (finalize !relation (!faults @ [ fault ]) !skipped)
          else begin
            List.iter (Sink.emit sink) c.c_events;
            Option.iter
              (fun p -> cache_log := (v, p) :: !cache_log)
              c.c_prov;
            List.iter (fun th -> th ()) c.c_puts;
            match c.c_result with
            | Error verdict ->
                let fault = mk_fault v verdict !relation in
                let fatal =
                  match verdict with
                  | Inconclusive { scope = Check_scope; _ } -> true
                  | _ -> false
                in
                if config.Config.keep_going && not fatal then begin
                  let r, o, tn =
                    taint !relation !output_relation !tainted v
                  in
                  relation := r;
                  output_relation := o;
                  tainted := tn;
                  faults := !faults @ [ fault ]
                end
                else halt (finalize !relation (!faults @ [ fault ]) !skipped)
            | Ok (outcome, _retries) -> (
                let out = Node.output v in
                relation :=
                  Relation.add_all !relation out outcome.Node_rel.mappings;
                if Graph.is_output gs out then
                  match outcome.Node_rel.output_mappings with
                  | [] ->
                      let fault =
                        mk_fault v
                          (Unmapped (unexposed_output_msg out))
                          !relation
                      in
                      if config.Config.keep_going then
                        faults := !faults @ [ fault ]
                      else
                        halt
                          (finalize !relation (!faults @ [ fault ]) !skipped)
                  | out_maps ->
                      output_relation :=
                        Relation.add_all !output_relation out out_maps)
          end
    in
    Pool.with_pool ~size:config.Config.jobs @@ fun pool ->
    let rec drive () =
      (* Commit the contiguous computed prefix in index order. *)
      let rec advance () =
        if !halted = None && !next < n then
          match pending.(!next) with
          | Some slot ->
              pending.(!next) <- None;
              commit !next slot;
              committed.(!next) <- true;
              incr next;
              advance ()
          | None -> ()
      in
      advance ();
      match !halted with
      | Some failure -> failure
      | None ->
          if !next >= n then (
            (* [List.rev] mirrors the sequential completion path. *)
            match List.rev !faults with
            | [] ->
                Ok
                  {
                    output_relation = !output_relation;
                    full_relation = !relation;
                    cache_provenance = List.rev !cache_log;
                    stats = stats ();
                  }
            | ordered -> finalize !relation ordered !skipped)
          else begin
            let ready = Wavefront.ready wf ~committed ~started in
            let skips, runnable =
              List.partition
                (fun i ->
                  config.Config.keep_going
                  && List.exists
                       (fun t -> Tensor.Set.mem t !tainted)
                       (Node.inputs ops.(i)))
                ready
            in
            List.iter
              (fun i ->
                started.(i) <- true;
                pending.(i) <- Some `Skip)
              skips;
            let rel = !relation in
            let selected, _deferred =
              Wavefront.batch
                (List.map
                   (fun i -> (i, Wavefront.cone wf ~relation:rel i))
                   runnable)
            in
            let batch = Array.of_list selected in
            Array.iter (fun i -> started.(i) <- true) batch;
            if Array.length batch > 0 then begin
              let results =
                Pool.run pool
                  (fun k ->
                    let i = batch.(k) in
                    compute i ops.(i) rel)
                  (Array.length batch)
              in
              Array.iteri
                (fun k c -> pending.(batch.(k)) <- Some (`Run c))
                results
            end;
            (* Progress: the lowest uncommitted index is always either
               parked in [pending] or ready (its producers all precede
               it), and the greedy batch always admits the first
               runnable candidate — so each round commits or computes
               something. *)
            drive ()
          end
    in
    drive ()
  in
  let result =
    if config.Config.jobs <= 1 then
      go 0 input_relation output_relation0 [] [] Tensor.Set.empty
        (Graph.nodes gs)
    else check_parallel ()
  in
  Sink.flush config.Config.trace;
  result
