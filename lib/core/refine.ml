open Entangle_ir
module Trace = Entangle_trace
module Sink = Trace.Sink
module Event = Trace.Event

type stats = {
  operators_processed : int;
  saturation_iterations : int;
  egraph_nodes_peak : int;
  egraph_classes_peak : int;
  matches_examined : int;
  unions_applied : int;
  rule_hits : (string * int) list;
  wall_time_s : float;
}

type success = {
  output_relation : Relation.t;
  full_relation : Relation.t;
  stats : stats;
}

type failure = {
  operator : Node.t;
  reason : string;
  partial_relation : Relation.t;
  input_mappings : (Tensor.t * Expr.t list) list;
  stats : stats;
}

let stats_of_agg ~wall_time_s agg =
  {
    operators_processed = Trace.Agg.operators agg;
    saturation_iterations = Trace.Agg.iterations agg;
    egraph_nodes_peak = Trace.Agg.nodes_peak agg;
    egraph_classes_peak = Trace.Agg.classes_peak agg;
    matches_examined = Trace.Agg.matches agg;
    unions_applied = Trace.Agg.unions agg;
    rule_hits = Trace.Agg.rule_hits agg;
    wall_time_s;
  }

let stats_of_events ?(wall_time_s = 0.) events =
  let agg = Trace.Agg.create () in
  let sink = Trace.Agg.sink agg in
  List.iter (Sink.emit sink) events;
  stats_of_agg ~wall_time_s agg

let check ?(config = Config.default) ?rules ~gs ~gd ~input_relation () =
  if not (Relation.is_clean input_relation) then
    invalid_arg "Refine.check: input relation contains non-clean expressions";
  if config.Config.lint_graphs then begin
    let module A = Entangle_analysis in
    let lint which g =
      let errors =
        List.filter A.Diagnostic.is_error (A.Graph_check.check g)
      in
      if errors <> [] then
        invalid_arg
          (Fmt.str "Refine.check: %s graph %s is malformed:@.%a" which
             (Graph.name g) A.Diagnostic.pp_report errors)
    in
    lint "sequential" gs;
    lint "distributed" gd
  end;
  let rules =
    match rules with
    | Some r -> r
    | None -> Entangle_lemmas.Lemma.rules Entangle_lemmas.Registry.all
  in
  (* Statistics are a fold over the same event stream any configured
     trace sink receives: the aggregator is itself a sink, teed with
     [config.trace], so [stats] and a collected trace are projections
     of identical events and cannot disagree. *)
  let agg = Trace.Agg.create () in
  let sink = Sink.tee (Trace.Agg.sink agg) config.Config.trace in
  let t0 = Unix.gettimeofday () in
  let stats () = stats_of_agg ~wall_time_s:(Unix.gettimeofday () -. t0) agg in
  let fail operator reason relation =
    Error
      {
        operator;
        reason;
        partial_relation = relation;
        input_mappings =
          List.map (fun t -> (t, Relation.find relation t)) (Node.inputs operator);
        stats = stats ();
      }
  in
  let op_begin index v =
    if Sink.enabled sink then
      Sink.span_begin sink ~cat:"operator"
        (Op.name (Node.op v))
        ~args:
          [
            ("output", Event.Str (Fmt.str "%a" Tensor.pp_name (Node.output v)));
            ("index", Event.Int index);
          ]
  in
  let op_end ~processed ~mappings v =
    if Sink.enabled sink then
      Sink.span_end sink ~cat:"operator"
        (Op.name (Node.op v))
        ~args:
          [
            ("processed", Event.Bool processed);
            ("mappings", Event.Int mappings);
          ]
  in
  (* Listing 1: process operators in topological order, accumulating R. *)
  let rec go index relation output_relation = function
    | [] ->
        Ok
          {
            output_relation;
            full_relation = relation;
            stats = stats ();
          }
    | v :: rest -> (
        op_begin index v;
        match
          Node_rel.compute ~config ~sink ~rules ~gs ~gd ~relation v
        with
        | Error reason ->
            op_end ~processed:false ~mappings:0 v;
            fail v reason relation
        | Ok outcome -> (
            op_end ~processed:true
              ~mappings:(List.length outcome.mappings)
              v;
            match outcome.mappings with
            | [] ->
                fail v
                  (Fmt.str
                     "could not map outputs for operator %s: no clean \
                      expression over the distributed graph reconstructs %a"
                     (Op.name (Node.op v)) Tensor.pp_name (Node.output v))
                  relation
            | mappings ->
                let out = Node.output v in
                let relation = Relation.add_all relation out mappings in
                if Graph.is_output gs out then
                  match outcome.output_mappings with
                  | [] ->
                      fail v
                        (Fmt.str
                           "graph output %a maps into the distributed graph \
                            but not to its outputs: the value is computed \
                            yet never exposed"
                           Tensor.pp_name out)
                        relation
                  | out_maps ->
                      go (index + 1) relation
                        (Relation.add_all output_relation out out_maps)
                        rest
                else go (index + 1) relation output_relation rest))
  in
  (* Sequential inputs that are also outputs pass through via identity. *)
  let output_relation0 =
    List.fold_left
      (fun acc t ->
        if Graph.is_input gs t then
          Relation.add_all acc t (Relation.find input_relation t)
        else acc)
      Relation.empty (Graph.outputs gs)
  in
  let result = go 0 input_relation output_relation0 (Graph.nodes gs) in
  Sink.flush config.Config.trace;
  result
