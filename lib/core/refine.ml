open Entangle_ir
open Entangle_egraph

type stats = {
  operators_processed : int;
  saturation_iterations : int;
  egraph_nodes_peak : int;
  egraph_classes_peak : int;
  matches_examined : int;
  unions_applied : int;
  rule_hits : (string * int) list;
  wall_time_s : float;
}

type success = {
  output_relation : Relation.t;
  full_relation : Relation.t;
  stats : stats;
}

type failure = {
  operator : Node.t;
  reason : string;
  partial_relation : Relation.t;
  input_mappings : (Tensor.t * Expr.t list) list;
  stats : stats;
}

let check ?(config = Config.default) ?rules ?hit_counter ~gs ~gd
    ~input_relation () =
  if not (Relation.is_clean input_relation) then
    invalid_arg "Refine.check: input relation contains non-clean expressions";
  if config.Config.lint_graphs then begin
    let module A = Entangle_analysis in
    let lint which g =
      let errors =
        List.filter A.Diagnostic.is_error (A.Graph_check.check g)
      in
      if errors <> [] then
        invalid_arg
          (Fmt.str "Refine.check: %s graph %s is malformed:@.%a" which
             (Graph.name g) A.Diagnostic.pp_report errors)
    in
    lint "sequential" gs;
    lint "distributed" gd
  end;
  let rules =
    match rules with
    | Some r -> r
    | None -> Entangle_lemmas.Lemma.rules Entangle_lemmas.Registry.all
  in
  let hit_counter =
    match hit_counter with Some c -> c | None -> Hashtbl.create 64
  in
  let t0 = Unix.gettimeofday () in
  let iters = ref 0 and peak = ref 0 and processed = ref 0 in
  let classes_peak = ref 0 and matches = ref 0 and unions = ref 0 in
  let stats () =
    {
      operators_processed = !processed;
      saturation_iterations = !iters;
      egraph_nodes_peak = !peak;
      egraph_classes_peak = !classes_peak;
      matches_examined = !matches;
      unions_applied = !unions;
      rule_hits =
        Hashtbl.fold (fun k v acc -> (k, v) :: acc) hit_counter []
        |> List.sort (fun (a, _) (b, _) -> String.compare a b);
      wall_time_s = Unix.gettimeofday () -. t0;
    }
  in
  let fail operator reason relation =
    Error
      {
        operator;
        reason;
        partial_relation = relation;
        input_mappings =
          List.map (fun t -> (t, Relation.find relation t)) (Node.inputs operator);
        stats = stats ();
      }
  in
  (* Listing 1: process operators in topological order, accumulating R. *)
  let rec go relation output_relation = function
    | [] ->
        Ok
          {
            output_relation;
            full_relation = relation;
            stats = stats ();
          }
    | v :: rest -> (
        match
          Node_rel.compute ~config ~hit_counter ~rules ~gs ~gd ~relation v
        with
        | Error reason -> fail v reason relation
        | Ok outcome -> (
            List.iter
              (fun (r : Runner.report) ->
                iters := !iters + r.iterations;
                matches := !matches + r.matches;
                unions := !unions + r.unions)
              outcome.reports;
            peak := max !peak outcome.egraph_nodes;
            classes_peak := max !classes_peak outcome.egraph_classes;
            incr processed;
            match outcome.mappings with
            | [] ->
                fail v
                  (Fmt.str
                     "could not map outputs for operator %s: no clean \
                      expression over the distributed graph reconstructs %a"
                     (Op.name (Node.op v)) Tensor.pp_name (Node.output v))
                  relation
            | mappings ->
                let out = Node.output v in
                let relation = Relation.add_all relation out mappings in
                if Graph.is_output gs out then
                  match outcome.output_mappings with
                  | [] ->
                      fail v
                        (Fmt.str
                           "graph output %a maps into the distributed graph \
                            but not to its outputs: the value is computed \
                            yet never exposed"
                           Tensor.pp_name out)
                        relation
                  | out_maps ->
                      go relation
                        (Relation.add_all output_relation out out_maps)
                        rest
                else go relation output_relation rest))
  in
  (* Sequential inputs that are also outputs pass through via identity. *)
  let output_relation0 =
    List.fold_left
      (fun acc t ->
        if Graph.is_input gs t then
          Relation.add_all acc t (Relation.find input_relation t)
        else acc)
      Relation.empty (Graph.outputs gs)
  in
  go input_relation output_relation0 (Graph.nodes gs)
