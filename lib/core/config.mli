(** Checker configuration.

    The two optimization toggles correspond to the paper's section 4.3
    and exist so the ablation benchmarks can quantify each one. The
    remaining fields have accumulated with the runner rework (PR 2) and
    the diagnostics subsystem (PR 3); prefer the [with_*] builders over
    open-coded record updates when deriving configurations from
    {!default}. *)

open Entangle_egraph

type rung = {
  scale : int;
      (** multiply the discrete saturation budgets
          (iterations/nodes/classes) by this factor,
          {!Runner.scale_limits}-style *)
  scheduler : Runner.scheduler_kind;
  incremental : bool;  (** incremental e-matching on this attempt *)
}
(** One step of the escalation ladder: how to re-run an operator whose
    first attempt came back {e inconclusive} (a budget tripped before
    either a mapping or saturation). Each rung also forces a
    confirmation cool-down, and gets a fresh per-operator deadline
    allowance (clamped by the whole-check deadline). *)

val default_escalation : rung list
(** Two rungs: double the limits (same scheduler), then quadruple them
    under the [Simple] scheduler with full (non-incremental)
    re-matching — the completeness-first configuration, for when the
    scheduler heuristics themselves are suspected of starving the
    derivation. *)

type t = {
  frontier_optimization : bool;
      (** Section 4.3.1: iteratively grow the related subgraph of the
          distributed graph instead of loading all of it. *)
  prune_equivalent : bool;
      (** Section 4.3.2: keep only the simplest expression per
          equivalence class when recording relations. *)
  max_alternates : int;
      (** Maximum number of alternative mappings recorded per tensor
          when pruning is off. *)
  limits : Runner.limits;  (** saturation budget per operator *)
  lint_graphs : bool;
      (** Run the {!Entangle_analysis.Graph_check} well-formedness pass
          over both graphs before checking; [Refine.check] raises
          [Invalid_argument] with the rendered diagnostics when either
          graph is malformed. On by default. *)
  check_egraph_invariants : bool;
      (** Audit e-graph invariants ({!Entangle_analysis.Egraph_check})
          after every saturation iteration. Expensive; debug only. *)
  scheduler : Runner.scheduler_kind;
      (** Rule scheduler for the saturation runner: [Simple] matches
          every rule every iteration; [Backoff] (default) bans rules
          that overflow their match budget, egg-style. Saturation
          verdicts are unaffected (the runner re-matches everything in
          full before declaring a fixpoint). *)
  incremental_matching : bool;
      (** Re-match each rule only against e-classes modified since that
          rule's last search (default). Off = re-match every candidate
          class every iteration. *)
  trace : Entangle_trace.Sink.t;
      (** Where structured trace events go: per-operator spans,
          per-iteration saturation counters, per-rule hit events and
          e-graph growth samples (see {!Entangle_trace.Event} for the
          vocabulary). Default {!Entangle_trace.Sink.null}, which
          costs one branch per instrumentation point and allocates
          nothing. The checker derives its [stats] from this event
          stream whatever sink is installed, so statistics and traces
          can never disagree. *)
  op_deadline_s : float option;
      (** Wall-clock allowance per operator {e attempt} (each
          escalation rung gets a fresh allowance). Checked
          cooperatively once per saturation iteration; tripping yields
          an [Inconclusive] verdict, never a hang. [None] = no
          per-operator deadline. *)
  check_deadline_s : float option;
      (** Wall-clock allowance for the whole [Refine.check] call,
          measured from its start. Clamps every per-operator deadline
          and stops escalation and [keep_going] continuation once
          exceeded. [None] = no deadline. *)
  escalation : rung list;
      (** The escalation ladder (see {!rung}); [[]] disables retries.
          Retries never flip a verdict that the base attempt could
          reach: they run only when the base attempt was inconclusive
          (a budget tripped), and a mapping found on any rung is the
          same certificate checked the same way. *)
  keep_going : bool;
      (** Multi-fault localization: instead of halting at the first
          failing operator, bind its outputs to opaque placeholder
          relations, skip (and taint) operators that depend on them,
          and keep checking independent operators — every localized
          fault is returned in [failure.faults]. Off by default. *)
  cache : Entangle_cache.Cache.t option;
      (** The persistent certificate cache: per-operator search
          results are looked up by content fingerprint and hits replay
          the stored certificate instead of re-searching (see
          {!Entangle_cache.Cache}). [None] (the default) disables
          caching entirely — the pre-cache behavior. *)
  cache_verify : bool;
      (** Paranoia mode: on a cache hit, run the full search anyway
          and cross-check the cached verdict against the fresh one; a
          disagreement is treated as a replay failure (the fresh
          result wins and overwrites the entry). Costs a full search
          per operator; for cache debugging. *)
  cache_namespace : string;
      (** Partition of the certificate-cache key space. A non-empty
          namespace is mixed into every cache key's base fingerprint,
          so checks under different namespaces never observe each
          other's entries while sharing one store (and its retention
          budget) — the isolation [entangle serve] gives each remote
          client. [""] (the default) is the shared namespace every
          pre-namespace entry lives in. Not a search knob: it is
          deliberately excluded from {!search_fingerprint} and keyed
          in by [Refine.check] itself. *)
  jobs : int;
      (** Domains checking operators concurrently. [1] (the default)
          runs the exact sequential loop — bit-identical traces, stats
          and cache activity to every pre-parallelism release. [n > 1]
          schedules the topological wavefront over a pool of [n]
          domains ([n - 1] spawned workers plus the calling domain),
          co-scheduling only operators with no sequential-graph
          dependency {e and} disjoint distributed cones, and merges
          results back in topological order — verdicts, relations,
          stats and cache contents are identical to [jobs = 1] (wall
          time and trace-event timestamps/interleaving excepted).
          Excluded from {!search_fingerprint}. *)
}

val default : t
val no_frontier : t
val no_pruning : t

val simple_runner : t
(** The pre-incremental runner: [Simple] scheduling and exhaustive
    re-matching every iteration. The baseline of the scheduler
    ablation. *)

(** {1 Builders}

    [Config.default |> with_scheduler Simple |> with_trace sink] — each
    returns an updated copy, so they chain with [|>]. *)

val with_limits : Runner.limits -> t -> t
val with_scheduler : Runner.scheduler_kind -> t -> t
val with_incremental_matching : bool -> t -> t
val with_trace : Entangle_trace.Sink.t -> t -> t
val with_op_deadline : float option -> t -> t
val with_check_deadline : float option -> t -> t
val with_escalation : rung list -> t -> t
val with_keep_going : bool -> t -> t
val with_cache : Entangle_cache.Cache.t option -> t -> t
val with_cache_verify : bool -> t -> t

val with_cache_namespace : string -> t -> t
(** See {!t.cache_namespace}; [""] restores the shared namespace. *)

val with_jobs : int -> t -> t
(** Clamped below at 1. *)

val search_fingerprint : t -> string
(** A stable rendering of every field that can change what the
    per-operator search finds (optimization toggles, discrete limits,
    scheduler, incremental matching, escalation ladder) — part of every
    certificate-cache key, so changing any such knob soundly
    invalidates. Wall-clock/heap budgets and the diagnostics fields are
    excluded: they can only produce [Inconclusive]/[Internal] verdicts,
    which are never cached. *)
