(** Human-readable reports for refinement results.

    Failure reports carry what the paper's case studies show users act
    on: the operator where the search terminated, its input relations,
    and the operators immediately upstream. *)

open Entangle_ir

val pp_success : Graph.t -> Refine.success Fmt.t

val pp_failure : Graph.t -> Refine.failure Fmt.t
(** [pp_failure gs] formats a failure against the sequential graph,
    including upstream producer context for localization. The rendered
    verdict distinguishes provably-unmapped from budget-exhausted from
    internal checker errors; under [keep_going] every additional
    localized fault and the skipped dependents are listed too. *)

val pp_fault : Graph.t -> Refine.fault Fmt.t
(** One localized fault, with its verdict, input relations and
    upstream operators. *)

val success_to_string : Graph.t -> Refine.success -> string
val failure_to_string : Graph.t -> Refine.failure -> string
