open Entangle_ir

let pp_stats ppf (s : Refine.stats) =
  Fmt.pf ppf
    "%d operators, %d saturation iterations, %d matches, %d unions, peak \
     e-graph %d nodes / %d classes, %.3fs"
    s.operators_processed s.saturation_iterations s.matches_examined
    s.unions_applied s.egraph_nodes_peak s.egraph_classes_peak s.wall_time_s

let pp_success gs ppf (s : Refine.success) =
  Fmt.pf ppf
    "@[<v>Refinement verification succeeded for %s.@,@,\
     Clean output relation R_o:@,%a@,@,(%a)@]"
    (Graph.name gs) Relation.pp s.output_relation pp_stats s.stats

let pp_failure gs ppf (f : Refine.failure) =
  let upstream =
    List.filter_map (Graph.producer gs) (Node.inputs f.operator)
  in
  Fmt.pf ppf
    "@[<v>Refinement FAILED for %s.@,@,\
     Could not map outputs for operator:@,  %a@,@,Reason: %s@,@,\
     Input relations of the operator (inspect these to localize):@,%a@,@,\
     Upstream operators:@,%a@,@,(%a)@]"
    (Graph.name gs) Node.pp f.operator f.reason
    (Fmt.list ~sep:Fmt.cut (fun ppf (t, exprs) ->
         match exprs with
         | [] -> Fmt.pf ppf "  %a -> (no clean mapping)" Tensor.pp_name t
         | _ ->
             Fmt.pf ppf "  %a -> %a" Tensor.pp_name t
               (Fmt.list ~sep:(Fmt.any " | ") Expr.pp)
               exprs))
    f.input_mappings
    (Fmt.list ~sep:Fmt.cut (fun ppf n -> Fmt.pf ppf "  %a" Node.pp n))
    upstream pp_stats f.stats

let success_to_string gs s = Fmt.str "%a" (pp_success gs) s
let failure_to_string gs f = Fmt.str "%a" (pp_failure gs) f
