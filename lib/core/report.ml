open Entangle_ir
module Cache = Entangle_cache.Cache

let pp_stats ppf (s : Refine.stats) =
  Fmt.pf ppf
    "%d operators, %d saturation iterations, %d matches, %d unions, peak \
     e-graph %d nodes / %d classes%s%s%s, %.3fs"
    s.operators_processed s.saturation_iterations s.matches_examined
    s.unions_applied s.egraph_nodes_peak s.egraph_classes_peak
    (if s.retries = 0 then "" else Fmt.str ", %d retries" s.retries)
    (if s.budget_trips = 0 then ""
     else Fmt.str ", %d budget trips" s.budget_trips)
    (if s.cache_hits = 0 && s.cache_misses = 0 && s.cache_replays_failed = 0
     then ""
     else
       Fmt.str ", cache %d hits / %d misses%s" s.cache_hits s.cache_misses
         (if s.cache_replays_failed = 0 then ""
          else Fmt.str " / %d replay failures" s.cache_replays_failed))
    s.wall_time_s

(* Replay failures are worth a line each — they flag store damage or a
   fingerprinting bug. Hits/misses stay aggregate-only. *)
let pp_replay_failures ppf prov =
  List.iter
    (fun (v, p) ->
      match p with
      | Cache.Replay_failed _ ->
          Fmt.pf ppf "@,  %a: %a" Node.pp v Cache.pp_provenance p
      | Cache.Hit | Cache.Miss -> ())
    prov

let has_replay_failures prov =
  List.exists
    (fun (_, p) -> match p with Cache.Replay_failed _ -> true | _ -> false)
    prov

let pp_success gs ppf (s : Refine.success) =
  Fmt.pf ppf
    "@[<v>Refinement verification succeeded for %s.@,@,\
     Clean output relation R_o:@,%a"
    (Graph.name gs) Relation.pp s.output_relation;
  if has_replay_failures s.cache_provenance then
    Fmt.pf ppf "@,@,Cache replay failures:%a" pp_replay_failures
      s.cache_provenance;
  Fmt.pf ppf "@,@,(%a)@]" pp_stats s.stats

let pp_input_mappings ppf mappings =
  Fmt.list ~sep:Fmt.cut
    (fun ppf (t, exprs) ->
      match exprs with
      | [] -> Fmt.pf ppf "  %a -> (no clean mapping)" Tensor.pp_name t
      | _ ->
          Fmt.pf ppf "  %a -> %a" Tensor.pp_name t
            (Fmt.list ~sep:(Fmt.any " | ") Expr.pp)
            exprs)
    ppf mappings

let headline (v : Refine.verdict) =
  match v with
  | Refine.Unmapped _ -> "Could not map outputs for operator"
  | Refine.Inconclusive _ -> "Verdict is inconclusive for operator"
  | Refine.Internal _ -> "Checker failed internally on operator"

let pp_fault gs ppf (f : Refine.fault) =
  let upstream =
    List.filter_map (Graph.producer gs) (Node.inputs f.fault_operator)
  in
  Fmt.pf ppf
    "@[<v>%s:@,  %a@,@,Verdict: %a@,@,\
     Input relations of the operator (inspect these to localize):@,%a@,@,\
     Upstream operators:@,%a@]"
    (headline f.fault_verdict) Node.pp f.fault_operator Refine.pp_verdict
    f.fault_verdict pp_input_mappings f.fault_input_mappings
    (Fmt.list ~sep:Fmt.cut (fun ppf n -> Fmt.pf ppf "  %a" Node.pp n))
    upstream

let pp_failure gs ppf (f : Refine.failure) =
  let extra =
    match f.faults with
    | [] | [ _ ] -> []
    | _ :: rest -> rest
  in
  Fmt.pf ppf "@[<v>Refinement FAILED for %s.@,@,%a" (Graph.name gs)
    (pp_fault gs)
    {
      Refine.fault_operator = f.operator;
      fault_verdict = f.verdict;
      fault_input_mappings = f.input_mappings;
    };
  List.iter
    (fun fault -> Fmt.pf ppf "@,@,Additional fault:@,@,%a" (pp_fault gs) fault)
    extra;
  if f.dependents_skipped <> [] then
    Fmt.pf ppf
      "@,@,Skipped (depend on a faulty operator, no independent verdict):@,%a"
      (Fmt.list ~sep:Fmt.cut (fun ppf n -> Fmt.pf ppf "  %a" Node.pp n))
      f.dependents_skipped;
  if has_replay_failures f.cache_provenance then
    Fmt.pf ppf "@,@,Cache replay failures:%a" pp_replay_failures
      f.cache_provenance;
  Fmt.pf ppf "@,@,(%a)@]" pp_stats f.stats

let success_to_string gs s = Fmt.str "%a" (pp_success gs) s
let failure_to_string gs f = Fmt.str "%a" (pp_failure gs) f
