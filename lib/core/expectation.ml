open Entangle_ir

type violation = {
  reason : string;
  refinement : (Refine.success, Refine.failure) result;
}

let extend graph expr what =
  match Graph.append_expr graph ~name:("%" ^ what) expr with
  | Ok (g, t) -> (g, t)
  | Error e -> invalid_arg (Fmt.str "Expectation.check: %s: %s" what e)

let check ?config ?rules ~gs ~gd ~input_relation ~fs ~fd () =
  let gs', fs_t = extend gs fs "fs" in
  let gd', fd_t = extend gd fd "fd" in
  (* Narrow the outputs to the expectation values so that the output
     relation speaks about exactly f_s and f_d. *)
  let gs' =
    match Graph.with_outputs gs' [ fs_t ] with
    | Ok g -> g
    | Error e -> invalid_arg e
  in
  let gd' =
    match Graph.with_outputs gd' [ fd_t ] with
    | Ok g -> g
    | Error e -> invalid_arg e
  in
  match Refine.check ?config ?rules ~gs:gs' ~gd:gd' ~input_relation () with
  | Error failure ->
      Error
        {
          reason =
            Fmt.str
              "user expectation violated: refinement of the expectation \
               value failed at operator %a (%s)"
              Node.pp failure.operator (Refine.verdict_to_string failure.Refine.verdict);
          refinement = Error failure;
        }
  | Ok success ->
      let identity =
        List.exists
          (Expr.equal (Expr.leaf fd_t))
          (Relation.find success.output_relation fs_t)
      in
      if identity then Ok success
      else
        Error
          {
            reason =
              Fmt.str
                "user expectation violated: f_s relates to the distributed \
                 graph as %a, not as the expected f_d (%a)"
                (Fmt.list ~sep:(Fmt.any " | ") Expr.pp)
                (Relation.find success.output_relation fs_t)
                Tensor.pp_name fd_t;
            refinement = Ok success;
          }
