(** User-expectation checking (paper section 4.4).

    Sometimes a refinement exists but is not the one the implementation
    relies on (bugs 5, 8 and 9 of the evaluation). The user states the
    expected correspondence as a pair of expressions [f_s] over the
    sequential outputs and [f_d] over the distributed outputs; the check
    reduces to model refinement on graphs extended with those
    expressions, followed by testing that the resulting relation maps
    [f_s]'s value to exactly [f_d]'s value (the identity relation). *)

open Entangle_ir
open Entangle_egraph

type violation = {
  reason : string;
  refinement : (Refine.success, Refine.failure) result;
      (** the underlying refinement run, for diagnosis *)
}

val check :
  ?config:Config.t ->
  ?rules:Rule.t list ->
  gs:Graph.t ->
  gd:Graph.t ->
  input_relation:Relation.t ->
  fs:Expr.t ->
  fd:Expr.t ->
  unit ->
  (Refine.success, violation) result
(** [fs] must be an expression over tensors of [gs], [fd] over tensors
    of [gd]. Raises [Invalid_argument] when they reference unknown
    tensors. *)
