open Entangle_ir
module Bundle = Entangle_certexport.Bundle

module SM = Map.Make (String)

let env_bindings (env : Interp.env) = SM.bindings env

let bundle ~producer ~gs ~gd ~env ~input_relation (success : Refine.success) =
  let ( let* ) = Result.bind in
  let* operators =
    List.fold_left
      (fun acc n ->
        let* acc = acc in
        let out = Node.output n in
        match Relation.find success.Refine.full_relation out with
        | [] ->
            Error
              (Fmt.str
                 "operator %s has no relation entry to export (partial result?)"
                 (Tensor.name out))
        | mappings ->
            Ok
              ({ Bundle.op_output = Tensor.name out; op_mappings = mappings }
              :: acc))
      (Ok []) (Graph.nodes gs)
  in
  Ok
    (Bundle.make ~producer ~gs ~gd ~env:(env_bindings env)
       ~inputs:(Relation.bindings input_relation)
       ~outputs:(Relation.bindings success.Refine.output_relation)
       ~operators:(List.rev operators) ())
