(** Per-operator relation inference: [compute_node_out_rel] of the
    paper's Listing 2, with the frontier optimization of Listing 3.

    Given one sequential operator [v], the distributed graph and the
    relation accumulated so far, builds an e-graph seeded with [v]'s
    base expression and the relation's mappings, iteratively loads the
    related subgraph of the distributed graph, saturates with the lemma
    rules, and extracts clean expressions for [v]'s output. *)

open Entangle_ir
open Entangle_egraph

type outcome = {
  mappings : Expr.t list;
      (** clean expressions over any distributed tensors, simplest
          first; empty means [v]'s output could not be mapped *)
  output_mappings : Expr.t list;
      (** clean expressions over distributed {e graph outputs} only *)
  reports : Runner.report list;  (** one per saturation round *)
  egraph_nodes : int;
  egraph_classes : int;
  exhausted : Runner.budget option;
      (** [Some b] when the saturation loop stopped because budget [b]
          ran out (rounds, e-graph growth, wall clock, heap) rather
          than because it saturated or found a mapping. Empty
          [mappings] with [exhausted = None] means the search
          saturated: a clean relation is provably absent under the
          given rules. Empty [mappings] with [Some b] is merely
          inconclusive — the caller may escalate. *)
}

val compute :
  config:Config.t ->
  ?deadline:float ->
  sink:Entangle_trace.Sink.t ->
  rules:Rule.t list ->
  gs:Graph.t ->
  gd:Graph.t ->
  relation:Relation.t ->
  Node.t ->
  (outcome, string) result
(** [Error] signals a malformed query (an input of [v] has no mapping in
    the relation), not a refinement failure — the latter is an [Ok] with
    empty [mappings].

    [deadline] is an absolute wall-clock bound ([Unix.gettimeofday]
    scale) merged into the per-round runner limits and checked between
    rounds; tripping it reports [exhausted = Some Deadline].

    [sink] receives the per-operator phase spans ([frontier]/[load],
    [saturate], [extract]), per-wave frontier-growth instants and a
    final e-graph growth sample, on top of whatever the saturation
    runner emits; pass {!Entangle_trace.Sink.null} to disable. Note
    [sink] is taken explicitly rather than read from
    [config.Config.trace]: {!Refine.check} tees its own statistics
    aggregator into the configured sink and hands the combined sink
    down. *)
