(** Per-operator relation inference: [compute_node_out_rel] of the
    paper's Listing 2, with the frontier optimization of Listing 3.

    Given one sequential operator [v], the distributed graph and the
    relation accumulated so far, builds an e-graph seeded with [v]'s
    base expression and the relation's mappings, iteratively loads the
    related subgraph of the distributed graph, saturates with the lemma
    rules, and extracts clean expressions for [v]'s output. *)

open Entangle_ir
open Entangle_egraph

type outcome = {
  mappings : Expr.t list;
      (** clean expressions over any distributed tensors, simplest
          first; empty means [v]'s output could not be mapped *)
  output_mappings : Expr.t list;
      (** clean expressions over distributed {e graph outputs} only *)
  reports : Runner.report list;  (** one per saturation round *)
  egraph_nodes : int;
  egraph_classes : int;
}

val compute :
  config:Config.t ->
  ?hit_counter:(string, int) Hashtbl.t ->
  rules:Rule.t list ->
  gs:Graph.t ->
  gd:Graph.t ->
  relation:Relation.t ->
  Node.t ->
  (outcome, string) result
(** [Error] signals a malformed query (an input of [v] has no mapping in
    the relation), not a refinement failure — the latter is an [Ok] with
    empty [mappings]. *)
