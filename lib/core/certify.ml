open Entangle_ir

(* Union-find over distributed input tensors forced equal because the
   input relation maps one sequential input to several of them. *)
let replication_groups input_relation =
  let parent : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let rec find i =
    match Hashtbl.find_opt parent i with
    | Some p when p <> i ->
        let r = find p in
        Hashtbl.replace parent i r;
        r
    | _ -> i
  in
  let union a b =
    Hashtbl.replace parent (max (find a) (find b)) (min (find a) (find b))
  in
  List.iter
    (fun (_, exprs) ->
      let leaf_only =
        List.filter_map
          (function Expr.Leaf t -> Some (Tensor.id t :> int) | _ -> None)
          exprs
      in
      match leaf_only with
      | first :: rest -> List.iter (union first) rest
      | [] -> ())
    (Relation.bindings input_relation);
  find

let replay ?(tol = 1e-3) ?(seed = 42) ?(max_mismatches = 1) ~env ~gs ~gd
    ~input_relation ~output_relation () =
  let ( let* ) = Result.bind in
  let st = Random.State.make [| seed |] in
  let canon = replication_groups input_relation in
  (* Random distributed inputs, sharing values within replication
     groups. *)
  let by_group : (int, Ndarray.t) Hashtbl.t = Hashtbl.create 16 in
  let gd_inputs =
    List.map
      (fun t ->
        let key = canon (Tensor.id t :> int) in
        match Hashtbl.find_opt by_group key with
        | Some v -> (t, v)
        | None ->
            let dims = Shape.concrete (Interp.lookup env) (Tensor.shape t) in
            let v =
              if Dtype.is_integer (Tensor.dtype t) then
                Ndarray.random_ints st ~hi:8 dims
              else Ndarray.random st dims
            in
            Hashtbl.replace by_group key v;
            (t, v))
      (Graph.inputs gd)
  in
  let lookup_gd_input t =
    match List.find_opt (fun (u, _) -> Tensor.equal t u) gd_inputs with
    | Some (_, v) -> v
    | None -> invalid_arg (Fmt.str "certify: %a not a gd input" Tensor.pp t)
  in
  (* Sequential inputs derived from the input relation. *)
  let* gs_inputs =
    List.fold_left
      (fun acc t ->
        let* acc = acc in
        match Relation.find input_relation t with
        | [] ->
            Error (Fmt.str "input relation misses gs input %a" Tensor.pp t)
        | expr :: rest ->
            let value = Interp.eval_expr env lookup_gd_input expr in
            let consistent =
              List.for_all
                (fun e ->
                  Ndarray.approx_equal ~tol value
                    (Interp.eval_expr env lookup_gd_input e))
                rest
            in
            if not consistent then
              Error
                (Fmt.str "input relation mappings for %a are inconsistent"
                   Tensor.pp_name t)
            else Ok ((t, value) :: acc))
      (Ok []) (Graph.inputs gs)
  in
  let vs = Interp.run env gs ~inputs:gs_inputs in
  let vd = Interp.run env gd ~inputs:gd_inputs in
  let lookup_gd t =
    match Tensor.Map.find_opt t vd with
    | Some v -> v
    | None -> invalid_arg (Fmt.str "certify: %a not computed in gd" Tensor.pp t)
  in
  (* Mismatches accumulate (bounded by [max_mismatches], default 1 —
     the historical first-mismatch behavior) so certificate
     verification can report every failing output expression in one
     pass; structural gaps in the relation still fail immediately. *)
  let mismatches = ref [] in
  let* () =
    List.fold_left
      (fun acc output ->
        let* () = acc in
        match Relation.find output_relation output with
        | [] ->
            Error (Fmt.str "output relation misses %a" Tensor.pp_name output)
        | exprs ->
            let expected = Tensor.Map.find output vs in
            List.iter
              (fun expr ->
                if List.length !mismatches < max_mismatches then
                  let got = Interp.eval_expr env lookup_gd expr in
                  if not (Ndarray.approx_equal ~tol expected got) then
                    mismatches :=
                      Fmt.str
                        "output %a: replaying %a differs from the sequential \
                         value by %g"
                        Tensor.pp_name output Expr.pp expr
                        (Ndarray.max_abs_diff expected got)
                      :: !mismatches)
              exprs;
            Ok ())
      (Ok ()) (Graph.outputs gs)
  in
  match List.rev !mismatches with
  | [] -> Ok ()
  | ms -> Error (String.concat "; " ms)
