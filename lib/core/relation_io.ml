open Entangle_ir

let ( let* ) = Result.bind
let err fmt = Fmt.kstr (fun s -> Error s) fmt

(* Expression rendering/parsing lives in {!Serial} (the certificate
   cache shares it); this module only wraps it in the relation entry
   syntax. *)
let expr_to_sexp = Serial.expr_to_sexp
let expr_of_sexp = Serial.expr_of_sexp

let to_sexp relation =
  let entry (t, exprs) =
    List.map
      (fun e -> Sexp.list [ Sexp.atom (Tensor.name t); expr_to_sexp e ])
      exprs
  in
  Sexp.list
    (Sexp.atom "relation" :: List.concat_map entry (Relation.bindings relation))

let to_string relation = Sexp.to_string (to_sexp relation)

let of_sexp ~gs ~gd = function
  | Sexp.List (Sexp.Atom "relation" :: entries) ->
      List.fold_left
        (fun acc entry ->
          let* acc = acc in
          match entry with
          | Sexp.List [ Sexp.Atom name; expr ] -> (
              match Serial.tensor_by_name gs name with
              | None -> err "unknown sequential tensor %s" name
              | Some t ->
                  let* e =
                    expr_of_sexp ~resolve:(Serial.tensor_by_name gd) expr
                  in
                  Ok (Relation.add acc t e))
          | s -> err "malformed relation entry %s" (Sexp.to_string s))
        (Ok Relation.empty) entries
  | s -> err "malformed relation %s" (Sexp.to_string s)

let of_string ~gs ~gd input =
  let* sexp = Sexp.of_string input in
  of_sexp ~gs ~gd sexp
