(** Cone-disjoint wavefront scheduling for the parallel checker.

    [Refine.check] with [jobs > 1] repeatedly asks this module which
    operators may run concurrently. The answer combines two
    independence conditions:

    - {b no sequential-graph dependency}: an operator is {!ready} only
      once the producer of each of its inputs has had its result
      committed, so every scheduled set is an antichain of the
      sequential graph's dependency order;
    - {b disjoint distributed cones}: within the ready antichain,
      {!batch} greedily (in topological-index order) selects operators
      whose frontier cones ({!Cache.cone} — the distributed node set
      each per-operator e-graph will load) are pairwise disjoint.
      Operators whose cones intersect share distributed state and are
      deferred to a later wave.

    Everything here is pure bookkeeping over immutable graphs and the
    committed relation — the property tests re-derive both conditions
    independently and check every batch against them.

    With the frontier optimization off ([whole_graph]), every cone is
    the entire distributed graph, so batches degrade to singletons and
    [jobs > 1] executes sequentially through the pool. *)

open Entangle_ir
module Cache = Entangle_cache.Cache

type t

val create : gs:Graph.t -> gd:Graph.t -> whole_graph:bool -> t
(** Snapshot the scheduling inputs. Operator indices throughout are
    positions in [Graph.nodes gs] — the same topological order (and
    the same [index] trace argument) the sequential loop uses. *)

val ops : t -> Node.t array
(** The sequential operators, in topological order. *)

type cone
(** One operator's distributed cone, as a set of [gd] node ids. *)

val cone : t -> relation:Relation.t -> int -> cone
(** The cone of operator [i] given the committed relation: anchors are
    the distributed leaves of the relation's mappings for [i]'s inputs
    (exactly the frontier loop's initial T_rel), grown to the
    {!Cache.cone} fixpoint. *)

val disjoint : cone -> cone -> bool

val cone_ids : cone -> int list
(** The distributed node ids of the cone, ascending (for tests). *)

val ready : t -> committed:bool array -> started:bool array -> int list
(** Indices, ascending, of operators not yet started whose every
    produced input has a committed producer. Inputs no operator
    produces (graph inputs, or tensors missing from the relation
    entirely) never block readiness — a missing mapping surfaces as
    the same per-operator error the sequential loop reports. *)

val depends : t -> int -> int -> bool
(** [depends t j i]: operator [j] transitively consumes (directly or
    through intermediate operators) the output of operator [i] in the
    sequential graph. Used by the property tests to assert batches are
    antichains; [ready] never schedules a dependent pair. *)

val batch : (int * cone) list -> int list * int list
(** Greedy cone-disjoint selection, preserving the given order: an
    operator joins the batch iff its cone is disjoint from every cone
    already in it. Returns (batch, deferred); [batch] is nonempty when
    the input is. *)
