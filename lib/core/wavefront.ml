open Entangle_ir
module Cache = Entangle_cache.Cache
module Int_set = Set.Make (Int)

type t = {
  ops : Node.t array;
  producer : int Tensor.Map.t;  (* output tensor -> producing index *)
  gd : Graph.t;
  whole_graph : bool;
}

let create ~gs ~gd ~whole_graph =
  let ops = Array.of_list (Graph.nodes gs) in
  let producer =
    Array.to_seq ops
    |> Seq.mapi (fun i v -> (Node.output v, i))
    |> Tensor.Map.of_seq
  in
  { ops; producer; gd; whole_graph }

let ops t = t.ops

type cone = Int_set.t

let cone t ~relation i =
  let v = t.ops.(i) in
  let anchors =
    List.fold_left
      (fun acc tensor ->
        List.fold_left
          (fun acc expr ->
            List.fold_left
              (fun acc leaf ->
                if Graph.mem_tensor t.gd leaf then Tensor.Set.add leaf acc
                else acc)
              acc (Expr.leaves expr))
          acc
          (Relation.find relation tensor))
      Tensor.Set.empty (Node.inputs v)
  in
  List.fold_left
    (fun acc n -> Int_set.add (Node.id n) acc)
    Int_set.empty
    (Cache.cone ~gd:t.gd ~whole_graph:t.whole_graph ~anchors)

let disjoint = Int_set.disjoint
let cone_ids = Int_set.elements

let ready t ~committed ~started =
  let ready_one i v =
    (not started.(i))
    && List.for_all
         (fun tensor ->
           match Tensor.Map.find_opt tensor t.producer with
           | Some p -> committed.(p)
           | None -> true)
         (Node.inputs v)
  in
  let acc = ref [] in
  for i = Array.length t.ops - 1 downto 0 do
    if ready_one i t.ops.(i) then acc := i :: !acc
  done;
  !acc

let depends t j i =
  (* DFS up the producer edges from [j]; graphs are acyclic and small
     (this is test support, not the scheduler hot path). *)
  let seen = Hashtbl.create 16 in
  let rec up k =
    k = i
    || (not (Hashtbl.mem seen k))
       && begin
            Hashtbl.replace seen k ();
            List.exists
              (fun tensor ->
                match Tensor.Map.find_opt tensor t.producer with
                | Some p -> up p
                | None -> false)
              (Node.inputs t.ops.(k))
          end
  in
  j <> i && up j

let batch candidates =
  let taken = ref Int_set.empty in
  let selected, deferred =
    List.partition
      (fun (_, c) ->
        if Int_set.disjoint c !taken then begin
          taken := Int_set.union c !taken;
          true
        end
        else false)
      candidates
  in
  (List.map fst selected, List.map fst deferred)
