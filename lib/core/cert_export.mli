(** Bridge from a refinement result to a portable certificate bundle.

    {!Refine.check} already computes everything a bundle carries — the
    complete clean output relation plus the accumulated per-operator
    relation — whether the run was cold (fresh saturation) or warm
    (certificate-cache replay). This module packages that result with
    the statement it certifies; the bundle itself (format, manifest,
    verification) lives in the egraph-free
    {!Entangle_certexport} library. *)

open Entangle_ir

val env_bindings : Interp.env -> (string * int) list

val bundle :
  producer:string ->
  gs:Graph.t ->
  gd:Graph.t ->
  env:Interp.env ->
  input_relation:Relation.t ->
  Refine.success ->
  (Entangle_certexport.Bundle.t, string) result
(** Build a bundle from a successful check. [env] must assign every
    shape symbol (the zoo instances carry one). [Error] when the
    success's relation does not cover some sequential operator — a
    bundle certifies a complete refinement, nothing less. *)
