open Entangle_symbolic

type t = {
  name : string;
  inputs : Tensor.t list;
  outputs : Tensor.t list;
  nodes : Node.t list;
  constraints : Constraint_store.t;
  producers : Node.t Tensor.Map.t;
  consumers : Node.t list Tensor.Map.t;  (* graph order, one entry per use site *)
}

(* The consumers index, rebuilt whenever the node list changes. A node
   using the same tensor twice appears once. *)
let consumers_of_nodes nodes =
  let add_use map t n =
    let prev = Option.value (Tensor.Map.find_opt t map) ~default:[] in
    Tensor.Map.add t (n :: prev) map
  in
  let map =
    List.fold_left
      (fun map n ->
        let distinct =
          List.fold_left
            (fun acc t ->
              if List.exists (Tensor.equal t) acc then acc else t :: acc)
            [] (Node.inputs n)
        in
        List.fold_left (fun map t -> add_use map t n) map distinct)
      Tensor.Map.empty nodes
  in
  Tensor.Map.map List.rev map

let name g = g.name
let inputs g = g.inputs
let outputs g = g.outputs
let nodes g = g.nodes
let constraints g = g.constraints
let num_nodes g = List.length g.nodes

let tensors g =
  let add set t = Tensor.Set.add t set in
  let set = List.fold_left add Tensor.Set.empty g.inputs in
  let set =
    List.fold_left (fun s n -> add s (Node.output n)) set g.nodes
  in
  Tensor.Set.elements set

let producer g t = Tensor.Map.find_opt t g.producers

let consumers g t =
  Option.value (Tensor.Map.find_opt t g.consumers) ~default:[]

let is_input g t = List.exists (Tensor.equal t) g.inputs
let is_output g t = List.exists (Tensor.equal t) g.outputs

let mem_tensor g t =
  is_input g t || Tensor.Map.mem t g.producers

let append_expr g ?(name = "%expect") expr =
  let ( let* ) = Result.bind in
  let next_node_id = ref (List.length g.nodes) in
  let fresh = ref 0 in
  let rec build g = function
    | Expr.Leaf t ->
        if mem_tensor g t then Ok (g, t)
        else Error (Fmt.str "append_expr: tensor %a not in graph" Tensor.pp t)
    | Expr.App (op, args) ->
        let* g, inputs =
          List.fold_left
            (fun acc e ->
              let* g, ins = acc in
              let* g, t = build g e in
              Ok (g, ins @ [ t ]))
            (Ok (g, [])) args
        in
        let shapes = List.map Tensor.shape inputs in
        let dtypes = List.map Tensor.dtype inputs in
        let* shape = Op.infer_shape g.constraints op shapes in
        let* dtype = Op.infer_dtype op dtypes in
        incr fresh;
        let output =
          Tensor.create ~dtype ~name:(Fmt.str "%s_%d" name !fresh) shape
        in
        let node = { Node.id = !next_node_id; op; inputs; output } in
        incr next_node_id;
        Ok
          ( {
              g with
              nodes = g.nodes @ [ node ];
              producers = Tensor.Map.add output node g.producers;
            },
            output )
  in
  let* g, t = build g expr in
  Ok
    ( { g with outputs = g.outputs @ [ t ];
        consumers = consumers_of_nodes g.nodes },
      t )

let with_outputs g outputs =
  let bad = List.filter (fun t -> not (mem_tensor g t)) outputs in
  match bad with
  | [] -> Ok { g with outputs }
  | t :: _ -> Error (Fmt.str "with_outputs: tensor %a not in graph" Tensor.pp t)

let validate g =
  let ( let* ) = Result.bind in
  let check_node n =
    let shapes = List.map Tensor.shape (Node.inputs n) in
    let dtypes = List.map Tensor.dtype (Node.inputs n) in
    let* shape = Op.infer_shape g.constraints (Node.op n) shapes in
    let* dtype = Op.infer_dtype (Node.op n) dtypes in
    if not (Shape.equal g.constraints shape (Tensor.shape (Node.output n)))
    then Error (Fmt.str "node %a: recorded shape differs" Node.pp n)
    else if not (Dtype.equal dtype (Tensor.dtype (Node.output n))) then
      Error (Fmt.str "node %a: recorded dtype differs" Node.pp n)
    else Ok ()
  in
  let* () =
    List.fold_left
      (fun acc n ->
        let* () = acc in
        check_node n)
      (Ok ()) g.nodes
  in
  let* () =
    List.fold_left
      (fun acc o ->
        let* () = acc in
        if mem_tensor g o then Ok ()
        else Error (Fmt.str "output %a has no producer" Tensor.pp o))
      (Ok ()) g.outputs
  in
  Ok ()

let pp ppf g =
  Fmt.pf ppf "@[<v>graph %s@,inputs: %a@,%a@,outputs: %a@]" g.name
    (Fmt.list ~sep:(Fmt.any ", ") Tensor.pp)
    g.inputs
    (Fmt.list ~sep:Fmt.cut Node.pp)
    g.nodes
    (Fmt.list ~sep:(Fmt.any ", ") Tensor.pp_name)
    g.outputs

module Builder = struct


  type t = {
    b_name : string;
    b_constraints : Constraint_store.t;
    mutable b_inputs : Tensor.t list;
    mutable b_outputs : Tensor.t list;
    mutable b_nodes : Node.t list;  (* reverse order *)
    mutable b_producers : Node.t Tensor.Map.t;
    mutable b_known : Tensor.Set.t;
    mutable b_next_id : int;
    mutable b_fresh : int;
  }

  let create ?(constraints = Constraint_store.empty) name =
    {
      b_name = name;
      b_constraints = constraints;
      b_inputs = [];
      b_outputs = [];
      b_nodes = [];
      b_producers = Tensor.Map.empty;
      b_known = Tensor.Set.empty;
      b_next_id = 0;
      b_fresh = 0;
    }

  let input b ?dtype name shape =
    let t = Tensor.create ?dtype ~name shape in
    b.b_inputs <- b.b_inputs @ [ t ];
    b.b_known <- Tensor.Set.add t b.b_known;
    t

  let add b ?name op inputs =
    List.iter
      (fun t ->
        if not (Tensor.Set.mem t b.b_known) then
          invalid_arg
            (Fmt.str "Graph.Builder.add(%s): tensor %a is not in graph %s"
               (Op.name op) Tensor.pp t b.b_name))
      inputs;
    let shapes = List.map Tensor.shape inputs in
    let dtypes = List.map Tensor.dtype inputs in
    let shape =
      match Op.infer_shape b.b_constraints op shapes with
      | Ok s -> s
      | Error e -> invalid_arg (Fmt.str "Graph.Builder.add: %s" e)
    in
    let dtype =
      match Op.infer_dtype op dtypes with
      | Ok d -> d
      | Error e -> invalid_arg (Fmt.str "Graph.Builder.add: %s" e)
    in
    let name =
      match name with
      | Some n -> n
      | None ->
          b.b_fresh <- b.b_fresh + 1;
          Fmt.str "%%%s_%d" (Op.name op) b.b_fresh
    in
    let output = Tensor.create ~dtype ~name shape in
    let node = { Node.id = b.b_next_id; op; inputs; output } in
    b.b_next_id <- b.b_next_id + 1;
    b.b_nodes <- node :: b.b_nodes;
    b.b_producers <- Tensor.Map.add output node b.b_producers;
    b.b_known <- Tensor.Set.add output b.b_known;
    output

  let output b t =
    if not (Tensor.Set.mem t b.b_known) then
      invalid_arg (Fmt.str "Graph.Builder.output: unknown tensor %a" Tensor.pp t);
    b.b_outputs <- b.b_outputs @ [ t ]

  let finish b =
    let nodes = List.rev b.b_nodes in
    {
      name = b.b_name;
      inputs = b.b_inputs;
      outputs = b.b_outputs;
      nodes;
      constraints = b.b_constraints;
      producers = b.b_producers;
      consumers = consumers_of_nodes nodes;
    }
end

let unsafe_make ?(constraints = Constraint_store.empty) ~name ~inputs ~outputs
    nodes =
  let producers =
    List.fold_left
      (fun map n -> Tensor.Map.add (Node.output n) n map)
      Tensor.Map.empty nodes
  in
  {
    name;
    inputs;
    outputs;
    nodes;
    constraints;
    producers;
    consumers = consumers_of_nodes nodes;
  }
