(** On-disk text format for computation graphs.

    The format plays the role of the artifact's shipped torch.fx graph
    files: users can hand the checker a sequential graph and a
    distributed graph captured elsewhere. Example:

    {v
    (graph my-model
      (symbols (s (ge 1)))
      (inputs
        (x (shape s 8) f32)
        (w (shape 8 4) f32))
      (nodes
        (y (matmul) (x w)))
      (outputs y))
    v}

    Operator attributes are rendered structurally, e.g.
    [(concat 1)], [(slice 0 0 (mul 2 s))], [(reduce_sum 0 false)],
    [(scale 1/2)]. Dimensions are integers, symbols, or affine
    expressions: [(+ t1 t2 ...)] for sums and [(mul k x)]-style
    products, written with the star operator in the concrete syntax. *)

open Entangle_symbolic

val symdim_to_sexp : Symdim.t -> Sexp.t
val symdim_of_sexp : Sexp.t -> (Symdim.t, string) result
val op_to_sexp : Op.t -> Sexp.t
val op_of_sexp : Sexp.t -> (Op.t, string) result

val graph_to_sexp : Graph.t -> Sexp.t
val graph_to_string : Graph.t -> string

val graph_of_sexp : Sexp.t -> (Graph.t, string) result
val graph_of_string : string -> (Graph.t, string) result

val tensor_by_name : Graph.t -> string -> Tensor.t option
(** Lookup used when resolving relation files against parsed graphs;
    graph serialization fails on duplicate tensor names, so the lookup
    is unambiguous for graphs that round-tripped. *)

val expr_to_sexp : Expr.t -> Sexp.t
(** Leaves render as [(tensor name)], applications as
    [(opname attrs... (args...))] reusing {!op_to_sexp}. Shared by the
    relation file format and the certificate cache. *)

val expr_of_sexp :
  resolve:(string -> Tensor.t option) -> Sexp.t -> (Expr.t, string) result
(** Inverse of {!expr_to_sexp}; leaves are resolved by name (a bare
    atom is accepted as a leaf too). *)
