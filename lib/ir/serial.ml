open Entangle_symbolic

let ( let* ) = Result.bind
let err fmt = Fmt.kstr (fun s -> Error s) fmt

(* --- symbolic dimensions ------------------------------------------- *)

let symdim_to_sexp d =
  match Symdim.to_int d with
  | Some n -> Sexp.atom (string_of_int n)
  | None ->
      let terms =
        List.map
          (fun s ->
            let c = Symdim.coeff d s in
            if c = 1 then Sexp.atom s
            else Sexp.list [ Sexp.atom "*"; Sexp.atom (string_of_int c); Sexp.atom s ])
          (Symdim.symbols d)
      in
      let const = Symdim.const_part d in
      let parts =
        terms @ if const = 0 then [] else [ Sexp.atom (string_of_int const) ]
      in
      (match parts with
      | [ one ] -> one
      | many -> Sexp.list (Sexp.atom "+" :: many))

let rec symdim_of_sexp = function
  | Sexp.Atom a -> (
      match int_of_string_opt a with
      | Some n -> Ok (Symdim.of_int n)
      | None -> Ok (Symdim.sym a))
  | Sexp.List (Sexp.Atom "+" :: parts) ->
      List.fold_left
        (fun acc p ->
          let* acc = acc in
          let* d = symdim_of_sexp p in
          Ok (Symdim.add acc d))
        (Ok Symdim.zero) parts
  | Sexp.List [ Sexp.Atom "*"; Sexp.Atom k; Sexp.Atom s ] -> (
      match int_of_string_opt k with
      | Some k -> Ok (Symdim.mul_int k (Symdim.sym s))
      | None -> err "malformed coefficient %s" k)
  | s -> err "malformed dimension %s" (Sexp.to_string s)

let shape_to_sexp shape =
  Sexp.list (Sexp.atom "shape" :: List.map symdim_to_sexp shape)

let shape_of_sexp = function
  | Sexp.List (Sexp.Atom "shape" :: dims) ->
      List.fold_left
        (fun acc d ->
          let* acc = acc in
          let* d = symdim_of_sexp d in
          Ok (acc @ [ d ]))
        (Ok []) dims
  | s -> err "malformed shape %s" (Sexp.to_string s)

(* --- dtype ----------------------------------------------------------- *)

let dtype_of_string = function
  | "f32" -> Ok Dtype.F32
  | "f16" -> Ok Dtype.F16
  | "bf16" -> Ok Dtype.BF16
  | "i64" -> Ok Dtype.I64
  | "bool" -> Ok Dtype.Bool
  | s -> err "unknown dtype %s" s

(* --- operators -------------------------------------------------------- *)

let rat_to_string r =
  if Rat.den r = 1 then string_of_int (Rat.num r)
  else Printf.sprintf "%d/%d" (Rat.num r) (Rat.den r)

let rat_of_string s =
  match String.index_opt s '/' with
  | None -> (
      match int_of_string_opt s with
      | Some n -> Ok (Rat.of_int n)
      | None -> err "malformed rational %s" s)
  | Some i -> (
      let num = String.sub s 0 i in
      let den = String.sub s (i + 1) (String.length s - i - 1) in
      match (int_of_string_opt num, int_of_string_opt den) with
      | Some n, Some d when d <> 0 -> Ok (Rat.make n d)
      | _ -> err "malformed rational %s" s)

let simple_ops : (string * Op.t) list =
  [
    ("add", Op.Add); ("sub", Op.Sub); ("mul", Op.Mul); ("div", Op.Div);
    ("maximum", Op.Maximum); ("pow", Op.Pow); ("neg", Op.Neg);
    ("exp", Op.Exp); ("log", Op.Log); ("sqrt", Op.Sqrt); ("rsqrt", Op.Rsqrt);
    ("relu", Op.Relu); ("gelu", Op.Gelu); ("silu", Op.Silu);
    ("tanh", Op.Tanh); ("sigmoid", Op.Sigmoid); ("square", Op.Square);
    ("matmul", Op.Matmul); ("identity", Op.Identity); ("sum", Op.Sum_n);
    ("embedding", Op.Embedding); ("rope", Op.Rope);
    ("mse_loss", Op.Mse_loss); ("cross_entropy", Op.Cross_entropy);
    ("all_reduce", Op.All_reduce); ("swiglu_fused", Op.Swiglu_fused);
    ("hlo_dot", Op.Hlo_dot);
  ]

let op_to_sexp (op : Op.t) =
  let a = Sexp.atom and l = Sexp.list in
  let i n = a (string_of_int n) in
  let b v = a (string_of_bool v) in
  match op with
  | Op.Scale r -> l [ a "scale"; a (rat_to_string r) ]
  | Op.Concat { dim } -> l [ a "concat"; i dim ]
  | Op.Hlo_concatenate { dim } -> l [ a "hlo_concatenate"; i dim ]
  | Op.Slice { dim; start; stop } ->
      l [ a "slice"; i dim; symdim_to_sexp start; symdim_to_sexp stop ]
  | Op.Hlo_slice { dim; start; stop } ->
      l [ a "hlo_slice"; i dim; symdim_to_sexp start; symdim_to_sexp stop ]
  | Op.Transpose { dim0; dim1 } -> l [ a "transpose"; i dim0; i dim1 ]
  | Op.Reshape { shape } -> l [ a "reshape"; shape_to_sexp shape ]
  | Op.Pad { dim; before; after } ->
      l [ a "pad"; i dim; symdim_to_sexp before; symdim_to_sexp after ]
  | Op.Reduce_sum { dim; keepdim } -> l [ a "reduce_sum"; i dim; b keepdim ]
  | Op.Reduce_mean { dim; keepdim } -> l [ a "reduce_mean"; i dim; b keepdim ]
  | Op.Reduce_max { dim; keepdim } -> l [ a "reduce_max"; i dim; b keepdim ]
  | Op.Softmax { dim } -> l [ a "softmax"; i dim ]
  | Op.Layernorm { eps } -> l [ a "layernorm"; a (string_of_float eps) ]
  | Op.Rmsnorm { eps } -> l [ a "rmsnorm"; a (string_of_float eps) ]
  | Op.Reduce_scatter { dim; index; count } ->
      l [ a "reduce_scatter"; i dim; i index; i count ]
  | Op.All_gather { dim } -> l [ a "all_gather"; i dim ]
  | other -> l [ a (Op.name other) ]

let int_of_atom what = function
  | Sexp.Atom a -> (
      match int_of_string_opt a with
      | Some n -> Ok n
      | None -> err "%s: expected integer, got %s" what a)
  | s -> err "%s: expected integer, got %s" what (Sexp.to_string s)

let bool_of_atom what = function
  | Sexp.Atom "true" -> Ok true
  | Sexp.Atom "false" -> Ok false
  | s -> err "%s: expected bool, got %s" what (Sexp.to_string s)

let float_of_atom what = function
  | Sexp.Atom a -> (
      match float_of_string_opt a with
      | Some f -> Ok f
      | None -> err "%s: expected float, got %s" what a)
  | s -> err "%s: expected float, got %s" what (Sexp.to_string s)

let op_of_sexp = function
  | Sexp.List (Sexp.Atom name :: args) -> (
      match (name, args) with
      | _, [] -> (
          match List.assoc_opt name simple_ops with
          | Some op -> Ok op
          | None -> err "unknown operator %s" name)
      | "scale", [ Sexp.Atom r ] ->
          let* r = rat_of_string r in
          Ok (Op.Scale r)
      | "concat", [ d ] ->
          let* dim = int_of_atom "concat" d in
          Ok (Op.Concat { dim })
      | "hlo_concatenate", [ d ] ->
          let* dim = int_of_atom "hlo_concatenate" d in
          Ok (Op.Hlo_concatenate { dim })
      | "slice", [ d; s0; s1 ] ->
          let* dim = int_of_atom "slice" d in
          let* start = symdim_of_sexp s0 in
          let* stop = symdim_of_sexp s1 in
          Ok (Op.Slice { dim; start; stop })
      | "hlo_slice", [ d; s0; s1 ] ->
          let* dim = int_of_atom "hlo_slice" d in
          let* start = symdim_of_sexp s0 in
          let* stop = symdim_of_sexp s1 in
          Ok (Op.Hlo_slice { dim; start; stop })
      | "transpose", [ d0; d1 ] ->
          let* dim0 = int_of_atom "transpose" d0 in
          let* dim1 = int_of_atom "transpose" d1 in
          Ok (Op.Transpose { dim0; dim1 })
      | "reshape", [ sh ] ->
          let* shape = shape_of_sexp sh in
          Ok (Op.Reshape { shape })
      | "pad", [ d; b0; a0 ] ->
          let* dim = int_of_atom "pad" d in
          let* before = symdim_of_sexp b0 in
          let* after = symdim_of_sexp a0 in
          Ok (Op.Pad { dim; before; after })
      | "reduce_sum", [ d; k ] ->
          let* dim = int_of_atom "reduce_sum" d in
          let* keepdim = bool_of_atom "reduce_sum" k in
          Ok (Op.Reduce_sum { dim; keepdim })
      | "reduce_mean", [ d; k ] ->
          let* dim = int_of_atom "reduce_mean" d in
          let* keepdim = bool_of_atom "reduce_mean" k in
          Ok (Op.Reduce_mean { dim; keepdim })
      | "reduce_max", [ d; k ] ->
          let* dim = int_of_atom "reduce_max" d in
          let* keepdim = bool_of_atom "reduce_max" k in
          Ok (Op.Reduce_max { dim; keepdim })
      | "softmax", [ d ] ->
          let* dim = int_of_atom "softmax" d in
          Ok (Op.Softmax { dim })
      | "layernorm", [ e ] ->
          let* eps = float_of_atom "layernorm" e in
          Ok (Op.Layernorm { eps })
      | "rmsnorm", [ e ] ->
          let* eps = float_of_atom "rmsnorm" e in
          Ok (Op.Rmsnorm { eps })
      | "reduce_scatter", [ d; i0; c ] ->
          let* dim = int_of_atom "reduce_scatter" d in
          let* index = int_of_atom "reduce_scatter" i0 in
          let* count = int_of_atom "reduce_scatter" c in
          Ok (Op.Reduce_scatter { dim; index; count })
      | "all_gather", [ d ] ->
          let* dim = int_of_atom "all_gather" d in
          Ok (Op.All_gather { dim })
      | _ -> err "malformed operator (%s ...)" name)
  | s -> err "malformed operator %s" (Sexp.to_string s)

(* --- graphs ------------------------------------------------------------ *)

let tensor_by_name g name =
  List.find_opt (fun t -> String.equal (Tensor.name t) name) (Graph.tensors g)

let check_unique_names g =
  let names = List.map Tensor.name (Graph.tensors g) in
  let sorted = List.sort compare names in
  let rec dup = function
    | a :: b :: _ when a = b -> Some a
    | _ :: rest -> dup rest
    | [] -> None
  in
  match dup sorted with
  | Some n -> err "graph %s: duplicate tensor name %s" (Graph.name g) n
  | None -> Ok ()

let constraints_to_sexp store =
  let constr = function
    | Constraint_store.Ge e -> Sexp.list [ Sexp.atom "ge"; symdim_to_sexp e ]
    | Constraint_store.Eq e -> Sexp.list [ Sexp.atom "eq"; symdim_to_sexp e ]
  in
  Sexp.list
    (Sexp.atom "constraints" :: List.map constr (Constraint_store.constraints store))

let constraints_of_sexp = function
  | Sexp.List (Sexp.Atom "constraints" :: cs) ->
      List.fold_left
        (fun acc c ->
          let* acc = acc in
          match c with
          | Sexp.List [ Sexp.Atom "ge"; e ] ->
              let* e = symdim_of_sexp e in
              Ok (Constraint_store.add_ge acc e)
          | Sexp.List [ Sexp.Atom "eq"; e ] ->
              let* e = symdim_of_sexp e in
              Ok (Constraint_store.add_eq acc e Symdim.zero)
          | s -> err "malformed constraint %s" (Sexp.to_string s))
        (Ok Constraint_store.empty) cs
  | s -> err "malformed constraints %s" (Sexp.to_string s)

let graph_to_sexp g =
  let a = Sexp.atom and l = Sexp.list in
  let input t =
    l
      [
        a (Tensor.name t);
        shape_to_sexp (Tensor.shape t);
        a (Dtype.to_string (Tensor.dtype t));
      ]
  in
  let node n =
    l
      [
        a (Tensor.name (Node.output n));
        op_to_sexp (Node.op n);
        l (List.map (fun t -> a (Tensor.name t)) (Node.inputs n));
      ]
  in
  l
    [
      a "graph";
      a (Graph.name g);
      constraints_to_sexp (Graph.constraints g);
      l (a "inputs" :: List.map input (Graph.inputs g));
      l (a "nodes" :: List.map node (Graph.nodes g));
      l (a "outputs" :: List.map (fun t -> a (Tensor.name t)) (Graph.outputs g));
    ]

let graph_to_string g =
  match check_unique_names g with
  | Ok () -> Sexp.to_string (graph_to_sexp g)
  | Error e -> invalid_arg (Fmt.str "Serial.graph_to_string: %s" e)

let graph_of_sexp sexp =
  match sexp with
  | Sexp.List
      [
        Sexp.Atom "graph"; Sexp.Atom name; constraints;
        Sexp.List (Sexp.Atom "inputs" :: inputs);
        Sexp.List (Sexp.Atom "nodes" :: nodes);
        Sexp.List (Sexp.Atom "outputs" :: outputs);
      ] ->
      let* constraints = constraints_of_sexp constraints in
      let b = Graph.Builder.create ~constraints name in
      let env : (string, Tensor.t) Hashtbl.t = Hashtbl.create 16 in
      let resolve what n =
        match Hashtbl.find_opt env n with
        | Some t -> Ok t
        | None -> err "%s: unknown tensor %s" what n
      in
      let* () =
        List.fold_left
          (fun acc input ->
            let* () = acc in
            match input with
            | Sexp.List [ Sexp.Atom iname; shape; Sexp.Atom dt ] ->
                if Hashtbl.mem env iname then err "duplicate tensor %s" iname
                else
                  let* shape = shape_of_sexp shape in
                  let* dtype = dtype_of_string dt in
                  let t = Graph.Builder.input b ~dtype iname shape in
                  Hashtbl.replace env iname t;
                  Ok ()
            | s -> err "malformed input %s" (Sexp.to_string s))
          (Ok ()) inputs
      in
      let* () =
        List.fold_left
          (fun acc node ->
            let* () = acc in
            match node with
            | Sexp.List [ Sexp.Atom out; op; Sexp.List ins ] ->
                if Hashtbl.mem env out then err "duplicate tensor %s" out
                else
                  let* op = op_of_sexp op in
                  let* ins =
                    List.fold_left
                      (fun acc i ->
                        let* acc = acc in
                        match i with
                        | Sexp.Atom n ->
                            let* t = resolve "node input" n in
                            Ok (acc @ [ t ])
                        | s -> err "malformed input ref %s" (Sexp.to_string s))
                      (Ok []) ins
                  in
                  (match Graph.Builder.add b ~name:out op ins with
                  | t ->
                      Hashtbl.replace env out t;
                      Ok ()
                  | exception Invalid_argument e -> Error e)
            | s -> err "malformed node %s" (Sexp.to_string s))
          (Ok ()) nodes
      in
      let* () =
        List.fold_left
          (fun acc o ->
            let* () = acc in
            match o with
            | Sexp.Atom n ->
                let* t = resolve "output" n in
                Graph.Builder.output b t;
                Ok ()
            | s -> err "malformed output %s" (Sexp.to_string s))
          (Ok ()) outputs
      in
      Ok (Graph.Builder.finish b)
  | s -> err "malformed graph %s" (Sexp.to_string s)

let graph_of_string input =
  let* sexp = Sexp.of_string input in
  graph_of_sexp sexp

(* --- expressions -------------------------------------------------------- *)

let rec expr_to_sexp = function
  | Expr.Leaf t -> Sexp.list [ Sexp.atom "tensor"; Sexp.atom (Tensor.name t) ]
  | Expr.App (op, args) -> (
      (* Render as (opname attrs... (args...)) reusing the operator
         encoding above. *)
      match op_to_sexp op with
      | Sexp.List op_parts ->
          Sexp.list (op_parts @ [ Sexp.list (List.map expr_to_sexp args) ])
      | Sexp.Atom _ as a ->
          Sexp.list [ a; Sexp.list (List.map expr_to_sexp args) ])

let rec expr_of_sexp ~resolve = function
  | Sexp.List [ Sexp.Atom "tensor"; Sexp.Atom name ] | Sexp.Atom name -> (
      match resolve name with
      | Some t -> Ok (Expr.leaf t)
      | None -> err "unknown tensor %s" name)
  | Sexp.List parts as sexp -> (
      match List.rev parts with
      | Sexp.List args :: rev_op when rev_op <> [] ->
          let op_sexp = Sexp.list (List.rev rev_op) in
          let* op = op_of_sexp op_sexp in
          let* args =
            List.fold_left
              (fun acc a ->
                let* acc = acc in
                let* e = expr_of_sexp ~resolve a in
                Ok (acc @ [ e ]))
              (Ok []) args
          in
          Ok (Expr.app op args)
      | _ -> err "malformed expression %s" (Sexp.to_string sexp))
