type id = int

type t = { id : id; name : string; shape : Shape.t; dtype : Dtype.t }

(* Atomic so parallel checking domains can allocate tensors without
   racing on ids (ids need only be unique, not dense). *)
let counter = Atomic.make 0

let create ?(dtype = Dtype.F32) ~name shape =
  { id = Atomic.fetch_and_add counter 1 + 1; name; shape; dtype }

let id t = t.id
let name t = t.name
let shape t = t.shape
let dtype t = t.dtype
let equal a b = Int.equal a.id b.id
let compare a b = Int.compare a.id b.id
let hash t = Hashtbl.hash t.id
let pp ppf t = Fmt.pf ppf "%s:%a" t.name Shape.pp t.shape
let pp_name ppf t = Fmt.string ppf t.name

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)
