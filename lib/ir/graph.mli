(** Computation graphs.

    A directed acyclic graph whose vertices are operators and whose edges
    are tensors (paper section 3.2). Graphs are immutable once built; use
    {!Builder} to construct them. Nodes are stored in the order they were
    added, which is a valid topological order by construction and is also
    the order [compute_out_rel] processes operators in. *)

open Entangle_symbolic

type t

val name : t -> string
val inputs : t -> Tensor.t list
val outputs : t -> Tensor.t list
val nodes : t -> Node.t list
val constraints : t -> Constraint_store.t

val num_nodes : t -> int
val tensors : t -> Tensor.t list
(** Every tensor appearing in the graph: inputs, intermediates, outputs. *)

val producer : t -> Tensor.t -> Node.t option
(** The node producing a tensor; [None] for graph inputs. *)

val consumers : t -> Tensor.t -> Node.t list
(** Nodes using a tensor as an input, in graph order. Backed by an index
    precomputed at construction time — O(log n) per query, not a scan of
    the node list. *)

val is_input : t -> Tensor.t -> bool
val is_output : t -> Tensor.t -> bool
val mem_tensor : t -> Tensor.t -> bool

val append_expr : t -> ?name:string -> Expr.t -> (t * Tensor.t, string) result
(** Append operator nodes computing the expression (whose leaves must
    already be tensors of the graph) and add its result to the outputs.
    Used by user-expectation checking (paper section 4.4) to graft
    [f_s(O(G_s))] / [f_d(O(G_d))] onto the graphs. *)

val with_outputs : t -> Tensor.t list -> (t, string) result
(** Replace the output list; each tensor must belong to the graph. *)

val validate : t -> (unit, string) result
(** Re-run shape and dtype inference on every node and check that graph
    outputs are produced or are inputs. *)

val unsafe_make :
  ?constraints:Constraint_store.t ->
  name:string ->
  inputs:Tensor.t list ->
  outputs:Tensor.t list ->
  Node.t list ->
  t
(** Assemble a graph from raw parts {e without} any well-formedness
    checking: the node list is taken as given (even if out of order,
    cyclic through producer references, or carrying stale tensor
    metadata). Exists so the static-analysis test fixtures can build
    deliberately malformed graphs; everything else should go through
    {!Builder}. *)

val pp : t Fmt.t

(** Imperative construction of a graph in topological order. *)
module Builder : sig
  type graph := t
  type t

  val create : ?constraints:Constraint_store.t -> string -> t

  val input : t -> ?dtype:Dtype.t -> string -> Shape.t -> Tensor.t
  (** Declare a graph input. *)

  val add : t -> ?name:string -> Op.t -> Tensor.t list -> Tensor.t
  (** [add b op inputs] appends a node applying [op]; the output tensor's
      shape and dtype are inferred. Raises [Invalid_argument] on shape or
      arity errors and when an input tensor is not yet part of the
      graph. *)

  val output : t -> Tensor.t -> unit
  (** Mark a tensor as a graph output. *)

  val finish : t -> graph
end
