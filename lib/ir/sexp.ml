type t = Atom of string | List of t list

let atom s = Atom s
let list l = List l

let needs_quotes s =
  s = ""
  || String.exists
       (fun c ->
         c = ' ' || c = '(' || c = ')' || c = '"' || c = '\n' || c = '\t'
         || c = '\r' || c = ';')
       s

let rec pp ppf = function
  | Atom s -> if needs_quotes s then Fmt.pf ppf "%S" s else Fmt.string ppf s
  | List l -> Fmt.pf ppf "@[<hov 1>(%a)@]" (Fmt.list ~sep:Fmt.sp pp) l

let to_string t = Fmt.str "%a" pp t

(* --- parsing ------------------------------------------------------- *)

type token = Lparen | Rparen | Tatom of string

let tokenize input =
  let n = String.length input in
  let tokens = ref [] in
  let i = ref 0 in
  let error = ref None in
  while !i < n && !error = None do
    let c = input.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = ';' then begin
      while !i < n && input.[!i] <> '\n' do
        incr i
      done
    end
    else if c = '(' then begin
      tokens := Lparen :: !tokens;
      incr i
    end
    else if c = ')' then begin
      tokens := Rparen :: !tokens;
      incr i
    end
    else if c = '"' then begin
      let buf = Buffer.create 16 in
      incr i;
      let closed = ref false in
      while !i < n && not !closed do
        if input.[!i] = '"' then closed := true
        else if input.[!i] = '\\' && !i + 1 < n then begin
          (* Quoted atoms are printed with [%S]; invert the OCaml
             lexical escapes so strings with newlines/tabs round-trip
             (the wire protocol ships rendered reports this way). *)
          (match input.[!i + 1] with
          | 'n' -> Buffer.add_char buf '\n'
          | 't' -> Buffer.add_char buf '\t'
          | 'r' -> Buffer.add_char buf '\r'
          | 'b' -> Buffer.add_char buf '\b'
          | '0' .. '9' when !i + 3 < n ->
              let code =
                try int_of_string (String.sub input (!i + 1) 3)
                with Failure _ -> -1
              in
              if code >= 0 && code <= 255 then begin
                Buffer.add_char buf (Char.chr code);
                i := !i + 2
              end
              else Buffer.add_char buf input.[!i + 1]
          | c -> Buffer.add_char buf c);
          incr i
        end
        else Buffer.add_char buf input.[!i];
        incr i
      done;
      if not !closed then error := Some "unterminated string"
      else tokens := Tatom (Buffer.contents buf) :: !tokens
    end
    else begin
      let start = !i in
      while
        !i < n
        &&
        let c = input.[!i] in
        not
          (c = ' ' || c = '\t' || c = '\n' || c = '\r' || c = '(' || c = ')'
         || c = '"' || c = ';')
      do
        incr i
      done;
      tokens := Tatom (String.sub input start (!i - start)) :: !tokens
    end
  done;
  match !error with
  | Some e -> Error e
  | None -> Ok (List.rev !tokens)

let of_string input =
  let ( let* ) = Result.bind in
  let* tokens = tokenize input in
  let rec parse_one = function
    | [] -> Error "unexpected end of input"
    | Tatom a :: rest -> Ok (Atom a, rest)
    | Lparen :: rest ->
        let rec items acc = function
          | Rparen :: rest -> Ok (List (List.rev acc), rest)
          | [] -> Error "missing closing parenthesis"
          | tokens ->
              let* item, rest = parse_one tokens in
              items (item :: acc) rest
        in
        items [] rest
    | Rparen :: _ -> Error "unexpected closing parenthesis"
  in
  let* sexp, rest = parse_one tokens in
  match rest with
  | [] -> Ok sexp
  | _ -> Error "trailing input after S-expression"
