open Entangle_symbolic
open Entangle_ir
open Entangle_dist
module B = Graph.Builder

let sd = Symdim.of_int

(* Build the input relation of a backward pair from the forward pair's
   (checked) relation: every mirror input of the sequential backward
   graph inherits the forward tensor's mappings with distributed-forward
   leaves rewritten to their backward mirrors, and every seed input
   inherits the output relation with leaves rewritten to seeds. *)
let backward_relation ~forward_relation ~output_relation
    ~(gs_bwd : Autodiff.outcome) ~(gd_bwd : Autodiff.outcome) =
  let rewrite assoc expr =
    let exception Missing in
    let lookup t =
      match List.find_opt (fun (u, _) -> Tensor.equal t u) assoc with
      | Some (_, m) -> Some (Expr.leaf m)
      | None -> raise Missing
    in
    match Expr.subst lookup expr with
    | e -> Some e
    | exception Missing -> None
  in
  let mirror_assoc = gd_bwd.Autodiff.mirror_of in
  let seed_assoc = gd_bwd.Autodiff.seed_of in
  let relation = ref Entangle.Relation.empty in
  List.iter
    (fun (fwd_t, gs_mirror) ->
      let exprs =
        List.filter_map (rewrite mirror_assoc)
          (Entangle.Relation.find forward_relation fwd_t)
      in
      if exprs = [] then
        invalid_arg
          (Fmt.str "Train: no backward mapping for mirrored tensor %a"
             Tensor.pp_name fwd_t);
      relation := Entangle.Relation.add_all !relation gs_mirror exprs)
    gs_bwd.Autodiff.mirror_of;
  List.iter
    (fun (gs_out, gs_seed) ->
      let exprs =
        List.filter_map (rewrite seed_assoc)
          (Entangle.Relation.find output_relation gs_out)
      in
      if exprs = [] then
        invalid_arg
          (Fmt.str "Train: no backward mapping for seed of %a" Tensor.pp_name
             gs_out);
      relation := Entangle.Relation.add_all !relation gs_seed exprs)
    gs_bwd.Autodiff.seed_of;
  !relation

let forward_check_exn ~family ~gs ~gd ~input_relation =
  let rules = Entangle_lemmas.Registry.rules_for_model family in
  match Entangle.Refine.check ~rules ~gs ~gd ~input_relation () with
  | Ok s -> s
  | Error f ->
      invalid_arg
        (Fmt.str "Train: forward pair does not refine: %s"
           (Entangle.Refine.verdict_to_string f.Entangle.Refine.verdict))

let backward_exn ?tie ?name g ~wrt =
  match Autodiff.backward ?tie ?name g ~wrt with
  | Ok o -> o
  | Error e -> invalid_arg e

(* --- column-parallel linear backward ----------------------------------- *)

let linear_backward ?(degree = 2) ?(missing_sync = false) () =
  let batch = 6 and k = 4 and n = 8 in
  (* Forward. *)
  let bs = B.create "linear-seq" in
  let x = B.input bs "x" [ sd batch; sd k ] in
  let w = B.input bs "w" [ sd k; sd n ] in
  let y = B.add bs ~name:"y" Op.Matmul [ x; w ] in
  B.output bs y;
  let gs_fwd = B.finish bs in
  let ctx = Lower.create ~name:"linear-dist" ~degree () in
  let xs = Lower.replicate_input ctx x in
  let ws = Lower.shard_input ctx w ~dim:1 in
  let ys =
    List.map2 (fun x_r w_r -> Lower.add ctx Op.Matmul [ x_r; w_r ]) xs ws
  in
  let gathered = Lower.all_gather ctx ~dim:1 ys in
  Lower.output ctx (List.hd gathered);
  let gd_fwd, fwd_rel = Lower.finish ctx in
  let fwd =
    forward_check_exn ~family:Entangle_lemmas.Registry.Gpt ~gs:gs_fwd
      ~gd:gd_fwd ~input_relation:fwd_rel
  in
  (* Backward. *)
  let gs_bwd = backward_exn gs_fwd ~wrt:[ x; w ] in
  let tie = if missing_sync then [] else [ xs ] in
  let wrt = (if missing_sync then xs else xs) @ ws in
  let gd_bwd = backward_exn ~tie gd_fwd ~wrt in
  let input_relation =
    backward_relation
      ~forward_relation:
        (Entangle.Relation.union fwd.Entangle.Refine.full_relation fwd_rel)
      ~output_relation:fwd.Entangle.Refine.output_relation ~gs_bwd ~gd_bwd
  in
  Instance.make
    ~name:
      (if missing_sync then "Linear backward (missing grad sync)"
       else Fmt.str "Linear backward (TP, %dx)" degree)
    ~family:Entangle_lemmas.Registry.Gpt
    ~strategies:[ Strategy.Tensor_parallel ]
    ~degree ~layers:1 ~gs:gs_bwd.Autodiff.graph ~gd:gd_bwd.Autodiff.graph
    ~input_relation
    ~env:(Interp.env_of_list [])

(* --- data parallelism --------------------------------------------------- *)

let data_parallel ?(replicas = 2) () =
  let batch = 8 and k = 4 in
  if batch mod replicas <> 0 then
    invalid_arg "Train.data_parallel: batch must divide by replicas";
  (* Forward with an elementwise (sum-reduction style) loss: a
     mean-reduction loss scales gradients by the replica count inside
     the backward chain, which is the grad-accumulation bug pattern
     rather than the DP one. *)
  let bs = B.create "dp-seq" in
  let x = B.input bs "x" [ sd batch; sd k ] in
  let w = B.input bs "w" [ sd k; sd 1 ] in
  let t = B.input bs "t" [ sd batch; sd 1 ] in
  let pred = B.add bs ~name:"pred" Op.Matmul [ x; w ] in
  let loss =
    B.add bs ~name:"loss" Op.Square [ B.add bs Op.Sub [ pred; t ] ]
  in
  B.output bs loss;
  let gs_fwd = B.finish bs in
  let ctx = Lower.create ~name:"dp-dist" ~degree:replicas () in
  let xs = Lower.shard_input ctx x ~dim:0 in
  let ws = Lower.replicate_input ctx w in
  let ts = Lower.shard_input ctx t ~dim:0 in
  let losses =
    List.mapi
      (fun r x_r ->
        let pred_r = Lower.add ctx Op.Matmul [ x_r; List.nth ws r ] in
        Lower.add ctx Op.Square
          [ Lower.add ctx Op.Sub [ pred_r; List.nth ts r ] ])
      xs
  in
  List.iter (Lower.output ctx) losses;
  let gd_fwd, fwd_rel = Lower.finish ctx in
  let fwd =
    forward_check_exn ~family:Entangle_lemmas.Registry.Regression ~gs:gs_fwd
      ~gd:gd_fwd ~input_relation:fwd_rel
  in
  (* Backward, gradients of the replicated weights all-reduced. *)
  let gs_bwd = backward_exn gs_fwd ~wrt:[ x; w ] in
  let gd_bwd = backward_exn ~tie:[ ws ] gd_fwd ~wrt:(xs @ ws) in
  let input_relation =
    backward_relation
      ~forward_relation:
        (Entangle.Relation.union fwd.Entangle.Refine.full_relation fwd_rel)
      ~output_relation:fwd.Entangle.Refine.output_relation ~gs_bwd ~gd_bwd
  in
  Instance.make
    ~name:(Fmt.str "Data-parallel step (%dx)" replicas)
    ~family:Entangle_lemmas.Registry.Regression
    ~strategies:[ Strategy.Data_parallel ]
    ~degree:replicas ~layers:1 ~gs:gs_bwd.Autodiff.graph
    ~gd:gd_bwd.Autodiff.graph ~input_relation
    ~env:(Interp.env_of_list [])

(* --- pipeline-style microbatching --------------------------------------- *)

let pipeline ?(microbatches = 2) ?(layers = 2) () =
  let batch = 8 and d = 4 in
  if batch mod microbatches <> 0 then
    invalid_arg "Train.pipeline: batch must divide by microbatches";
  let bs = B.create "pipeline-seq" in
  let x = B.input bs "x" [ sd batch; sd d ] in
  let ws =
    List.init layers (fun l -> B.input bs (Fmt.str "w%d" l) [ sd d; sd d ])
  in
  let t = B.input bs "t" [ sd batch; sd d ] in
  let run_stages add_fn x0 ws =
    List.fold_left
      (fun h w -> add_fn Op.Silu [ add_fn Op.Matmul [ h; w ] ])
      x0 ws
  in
  let out = run_stages (fun op ins -> B.add bs op ins) x ws in
  let loss = B.add bs ~name:"loss" Op.Mse_loss [ out; t ] in
  B.output bs loss;
  let gs = B.finish bs in
  let ctx = Lower.create ~name:"pipeline-dist" ~degree:microbatches () in
  let xs = Lower.shard_input ctx x ~dim:0 in
  (* Stage weights live once (the stages are placed, not replicated). *)
  let wds = List.map (Lower.whole_input ctx) ws in
  let tsh = Lower.shard_input ctx t ~dim:0 in
  let micro_losses =
    List.mapi
      (fun i x_i ->
        let out_i = run_stages (fun op ins -> Lower.add ctx op ins) x_i wds in
        let l_i = Lower.add ctx Op.Mse_loss [ out_i; List.nth tsh i ] in
        Lower.add ctx (Op.Scale (Rat.make 1 microbatches)) [ l_i ])
      xs
  in
  let total = Lower.add ctx ~name:"pp_loss" Op.Sum_n micro_losses in
  Lower.output ctx total;
  let gd, input_relation = Lower.finish ctx in
  Instance.make
    ~name:(Fmt.str "Pipeline microbatching (%d stages, %d microbatches)" layers microbatches)
    ~family:Entangle_lemmas.Registry.Regression
    ~strategies:[ Strategy.Pipeline_parallel; Strategy.Gradient_accumulation ]
    ~degree:microbatches ~layers ~gs ~gd ~input_relation
    ~env:(Interp.env_of_list [])
