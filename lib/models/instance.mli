(** A verification instance: a sequential specification, a distributed
    implementation, the clean input relation connecting them, and the
    metadata the benchmarks report. *)

open Entangle_ir
open Entangle_dist

type t = {
  name : string;
  family : Entangle_lemmas.Registry.model_family;
  strategies : Strategy.t list;
  degree : int;
  layers : int;
  gs : Graph.t;
  gd : Graph.t;
  input_relation : Entangle.Relation.t;
  env : Interp.env;  (** concrete symbol assignment for execution *)
}

val make :
  name:string ->
  family:Entangle_lemmas.Registry.model_family ->
  strategies:Strategy.t list ->
  degree:int ->
  layers:int ->
  gs:Graph.t ->
  gd:Graph.t ->
  input_relation:Entangle.Relation.t ->
  env:Interp.env ->
  t

val operator_count : t -> int
(** Total operators in both graphs (the number Figure 3 annotates). *)

val check :
  ?config:Entangle.Config.t ->
  t ->
  (Entangle.Refine.success, Entangle.Refine.failure) result
(** Run the refinement checker with the instance's model-family lemma
    set. Per-lemma application counts are in the result's
    [stats.rule_hits]; richer diagnostics flow through the trace sink
    carried by [config] ([Entangle.Config.with_trace]). *)

val pp : t Fmt.t
