open Entangle_ir
open Entangle_dist

type t = {
  name : string;
  family : Entangle_lemmas.Registry.model_family;
  strategies : Strategy.t list;
  degree : int;
  layers : int;
  gs : Graph.t;
  gd : Graph.t;
  input_relation : Entangle.Relation.t;
  env : Interp.env;
}

let make ~name ~family ~strategies ~degree ~layers ~gs ~gd ~input_relation
    ~env =
  { name; family; strategies; degree; layers; gs; gd; input_relation; env }

let operator_count t = Graph.num_nodes t.gs + Graph.num_nodes t.gd

let check ?config t =
  let rules = Entangle_lemmas.Registry.rules_for_model t.family in
  Entangle.Refine.check ?config ~rules ~gs:t.gs ~gd:t.gd
    ~input_relation:t.input_relation ()

let pp ppf t =
  Fmt.pf ppf "%s (%a, degree %d, %d layer%s, %d ops)" t.name
    (Fmt.list ~sep:(Fmt.any "+") Strategy.pp)
    t.strategies t.degree t.layers
    (if t.layers = 1 then "" else "s")
    (operator_count t)
