module Serial = Entangle_ir.Serial
module Refine = Entangle.Refine
module Config = Entangle.Config
module F = Entangle_failpoint.Failpoint
module P = Protocol

(* --- failpoints --------------------------------------------------------- *)

(* Every stage of the socket/frame/dispatch path has a named failpoint,
   so the chaos gate can prove the daemon survives accept-time EMFILE,
   torn frames in both directions, and handler crashes — not just
   assert it. *)
let fp_accept =
  F.declare ~doc:"accept(2): fires as an accept failure the loop survives"
    "serve.accept"

let fp_handshake =
  F.declare ~doc:"before the handshake reply: fires by dropping the connection"
    "serve.handshake"

let fp_frame_read =
  F.declare ~doc:"before reading a request frame: fires as a dropped read"
    "serve.frame.read"

let fp_frame_write =
  F.declare
    ~doc:
      "before writing a response frame: fires by writing half the frame then \
       failing the connection (a torn write the client must retry through)"
    "serve.frame.write"

let fp_dispatch =
  F.declare ~doc:"before dispatching any request: fires as a handler crash"
    "serve.dispatch"

let request_name = function
  | P.Ping -> "ping"
  | P.Describe -> "describe"
  | P.Check _ -> "check"
  | P.Check_batch _ -> "check-batch"
  | P.Cert_fetch _ -> "cert-fetch"
  | P.Cert_push _ -> "cert-push"
  | P.Cache_stats -> "cache-stats"
  | P.Cache_clear -> "cache-clear"
  | P.Server_stats -> "server-stats"
  | P.Shutdown -> "shutdown"

(* Per-request-kind dispatch failpoints (serve.dispatch.check, ...):
   chaos scenarios arm exactly the request kind their byzantine client
   sends, so well-behaved clients' verdicts stay byte-identical. *)
let fp_dispatch_of =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun name ->
      Hashtbl.replace tbl name
        (F.declare
           ~doc:("dispatch of a " ^ name ^ " request: fires as a handler crash")
           ("serve.dispatch." ^ name)))
    [
      "ping";
      "describe";
      "check";
      "check-batch";
      "cert-fetch";
      "cert-push";
      "cache-stats";
      "cache-clear";
      "server-stats";
      "shutdown";
    ];
  fun req -> Hashtbl.find tbl (request_name req)

(* --- the server --------------------------------------------------------- *)

type counters = {
  accepted : int Atomic.t;
  served : int Atomic.t;
  rejected_busy : int Atomic.t;
  timed_out : int Atomic.t;
  drained : int Atomic.t;
  accept_failures : int Atomic.t;
}

type t = {
  name : string;
  config : Config.t;
  cache : Entangle_cache.Cache.t option;
  max_connections : int option;
  max_clients : int;
  io_timeout_s : float;
  idle_timeout_s : float option;
  request_deadline_s : float option;
  drain_timeout_s : float;
  path : string;
  listener : Unix.file_descr;
  lock_fd : Unix.file_descr;
  wake_r : Unix.file_descr;  (** drain pipe: readable = draining *)
  wake_w : Unix.file_descr;
  counters : counters;
  active : int Atomic.t;
  draining : bool Atomic.t;
}

type error = In_use of { socket : string } | Failed of string

let error_message = function
  | In_use { socket } ->
      Fmt.str "socket %s: another server is already serving" socket
  | Failed m -> m

let socket t = t.path
let requests_served t = Atomic.get t.counters.served
let draining t = Atomic.get t.draining

let stats t =
  {
    P.accepted = Atomic.get t.counters.accepted;
    active = Atomic.get t.active;
    served = Atomic.get t.counters.served;
    rejected_busy = Atomic.get t.counters.rejected_busy;
    timed_out = Atomic.get t.counters.timed_out;
    drained = Atomic.get t.counters.drained;
    accept_failures = Atomic.get t.counters.accept_failures;
    max_clients = t.max_clients;
  }

(* --- socket ownership --------------------------------------------------- *)

(* Probing tells a live daemon from a stale socket file, but two
   daemons probing concurrently both see "stale" and race to unlink
   and rebind. Ownership is therefore an fcntl lock on [path ^ ".lock"]
   taken before touching the socket: the kernel picks exactly one
   winner across processes. fcntl locks do not exclude within one
   process, so an in-process registry covers two servers created in
   one test binary. The lock file is never unlinked — removing it
   would reopen the unlink/reopen race it exists to close. *)

let owners_mutex = Mutex.create ()
let owners : string list ref = ref []
let lock_path path = path ^ ".lock"

let acquire_lock path =
  Mutex.lock owners_mutex;
  let result =
    if List.mem path !owners then Error (In_use { socket = path })
    else
      match
        Unix.openfile (lock_path path) [ Unix.O_RDWR; Unix.O_CREAT ] 0o600
      with
      | exception Unix.Unix_error (e, _, _) ->
          Error
            (Failed
               (Fmt.str "lock %s: %s" (lock_path path) (Unix.error_message e)))
      | fd -> (
          match Unix.lockf fd Unix.F_TLOCK 0 with
          | () ->
              owners := path :: !owners;
              Ok fd
          | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EACCES), _, _) ->
              (try Unix.close fd with Unix.Unix_error _ -> ());
              Error (In_use { socket = path })
          | exception Unix.Unix_error (e, _, _) ->
              (try Unix.close fd with Unix.Unix_error _ -> ());
              Error
                (Failed
                   (Fmt.str "lock %s: %s" (lock_path path)
                      (Unix.error_message e))))
  in
  Mutex.unlock owners_mutex;
  result

let release_lock path fd =
  Mutex.lock owners_mutex;
  owners := List.filter (fun p -> not (String.equal p path)) !owners;
  (* Closing the descriptor drops the fcntl lock. *)
  (try Unix.close fd with Unix.Unix_error _ -> ());
  Mutex.unlock owners_mutex

(* Under the lock a live listener can only predate the lock protocol
   (or be a foreign socket); probe by connecting, as before. *)
let socket_in_use path =
  match Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 with
  | exception Unix.Unix_error _ -> false
  | probe -> (
      match Unix.connect probe (Unix.ADDR_UNIX path) with
      | () ->
          Unix.close probe;
          true
      | exception Unix.Unix_error _ ->
          Unix.close probe;
          false)

let create ?(name = "entangle-serve") ?(config = Config.default) ?cache
    ?max_connections ?(max_clients = 64) ?(io_timeout_s = 30.) ?idle_timeout_s
    ?request_deadline_s ?(drain_timeout_s = 5.) ~socket:path () =
  let config =
    match cache with None -> config | Some c -> Config.with_cache (Some c) config
  in
  let cache = match cache with Some _ as c -> c | None -> config.Config.cache in
  match acquire_lock path with
  | Error _ as e -> e
  | Ok lock_fd ->
      let fail e =
        release_lock path lock_fd;
        Error e
      in
      if Sys.file_exists path && socket_in_use path then
        fail (In_use { socket = path })
      else begin
        (try if Sys.file_exists path then Sys.remove path
         with Sys_error _ -> ());
        match Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 with
        | exception Unix.Unix_error (e, _, _) ->
            fail (Failed (Fmt.str "socket: %s" (Unix.error_message e)))
        | listener -> (
            match
              Unix.bind listener (Unix.ADDR_UNIX path);
              Unix.listen listener 64
            with
            | exception Unix.Unix_error (e, _, _) ->
                (try Unix.close listener with Unix.Unix_error _ -> ());
                fail
                  (Failed (Fmt.str "bind %s: %s" path (Unix.error_message e)))
            | () ->
                let wake_r, wake_w = Unix.pipe ~cloexec:true () in
                Ok
                  {
                    name;
                    config;
                    cache;
                    max_connections;
                    max_clients;
                    io_timeout_s;
                    idle_timeout_s;
                    request_deadline_s;
                    drain_timeout_s;
                    path;
                    listener;
                    lock_fd;
                    wake_r;
                    wake_w;
                    counters =
                      {
                        accepted = Atomic.make 0;
                        served = Atomic.make 0;
                        rejected_busy = Atomic.make 0;
                        timed_out = Atomic.make 0;
                        drained = Atomic.make 0;
                        accept_failures = Atomic.make 0;
                      };
                    active = Atomic.make 0;
                    draining = Atomic.make false;
                  })
      end

(* Flip to draining and wake the accept loop and every idle reader.
   The pipe is never drained: once written, readability is a
   level-triggered "closing" flag every select observes. *)
let begin_drain t =
  if not (Atomic.exchange t.draining true) then
    try ignore (Unix.write_substring t.wake_w "x" 0 1)
    with Unix.Unix_error _ -> ()

(* --- request handlers --------------------------------------------------- *)

let verdict_tag = function
  | Refine.Unmapped _ -> "unmapped"
  | Refine.Inconclusive _ -> "inconclusive"
  | Refine.Internal _ -> "internal"

let bad_request fmt = Fmt.kstr (fun m -> Error (P.Bad_request, m)) fmt

let rules_for_family = function
  | None -> Ok None
  | Some f -> (
      match Entangle_lemmas.Registry.family_of_string f with
      | Some fam -> Ok (Some (Entangle_lemmas.Registry.rules_for_model fam))
      | None -> bad_request "unknown model family %S" f)

let check_config t (o : P.check_options) =
  let c =
    t.config
    |> Config.with_cache_namespace (Option.value o.P.namespace ~default:"")
    |> Config.with_keep_going o.P.keep_going
  in
  let c = match o.P.jobs with None -> c | Some j -> Config.with_jobs j c in
  (* The per-request wall budget reuses Runner.budget semantics: the
     deadline is checked cooperatively inside the check and trips to
     an inconclusive verdict, never a hang. A client-supplied deadline
     can only tighten the server's. *)
  match t.request_deadline_s with
  | None -> c
  | Some d ->
      let d =
        match c.Config.check_deadline_s with
        | Some existing -> Float.min existing d
        | None -> d
      in
      Config.with_check_deadline (Some d) c

let handle_check t (o : P.check_options) gs_sexp gd_sexp rel_sexp =
  let ( let* ) = Result.bind in
  let parsed =
    let parse what = function
      | Ok v -> Ok v
      | Error e -> bad_request "%s: %s" what e
    in
    let* rules = rules_for_family o.P.family in
    let* gs = parse "gs" (Serial.graph_of_sexp gs_sexp) in
    let* gd = parse "gd" (Serial.graph_of_sexp gd_sexp) in
    let* input_relation =
      parse "relation" (Entangle.Relation_io.of_sexp ~gs ~gd rel_sexp)
    in
    Ok (rules, gs, gd, input_relation)
  in
  match parsed with
  | Error (code, message) -> P.Error_reply { code; message }
  | Ok (rules, gs, gd, input_relation) -> (
      let config = check_config t o in
      match Refine.check ~config ?rules ~gs ~gd ~input_relation () with
      | Ok success ->
          P.Checked
            {
              P.exit_code = 0;
              verdict = "refines";
              report = Entangle.Report.success_to_string gs success;
              output_relation =
                Some (Entangle.Relation_io.to_sexp success.Refine.output_relation);
              stats = success.Refine.stats;
            }
      | Error failure ->
          P.Checked
            {
              P.exit_code = Refine.exit_code (Error failure);
              verdict = verdict_tag failure.Refine.verdict;
              report = Entangle.Report.failure_to_string gs failure;
              output_relation = None;
              stats = failure.Refine.stats;
            }
      | exception Invalid_argument m ->
          P.Error_reply { code = P.Bad_request; message = m })

let handle_cache t f =
  match t.cache with
  | None ->
      P.Error_reply
        { code = P.Bad_request; message = "server is running without a cache" }
  | Some cache -> f cache

(* cert-fetch: run the check like [handle_check]; when it refines,
   package the result as a portable bundle the client re-verifies with
   the minimal verifier. A check that does not refine still answers
   the ordinary result body, so the caller gets the verdict either
   way. *)
let handle_cert_fetch t (o : P.check_options) gs_sexp gd_sexp rel_sexp env =
  let ( let* ) = Result.bind in
  let parsed =
    let parse what = function
      | Ok v -> Ok v
      | Error e -> bad_request "%s: %s" what e
    in
    let* rules = rules_for_family o.P.family in
    let* gs = parse "gs" (Serial.graph_of_sexp gs_sexp) in
    let* gd = parse "gd" (Serial.graph_of_sexp gd_sexp) in
    let* input_relation =
      parse "relation" (Entangle.Relation_io.of_sexp ~gs ~gd rel_sexp)
    in
    Ok (rules, gs, gd, input_relation)
  in
  match parsed with
  | Error (code, message) -> P.Error_reply { code; message }
  | Ok (rules, gs, gd, input_relation) -> (
      let config = check_config t o in
      match Refine.check ~config ?rules ~gs ~gd ~input_relation () with
      | Ok success -> (
          match
            Entangle.Cert_export.bundle ~producer:("entangle-serve/" ^ t.name)
              ~gs ~gd
              ~env:(Entangle_ir.Interp.env_of_list env)
              ~input_relation success
          with
          | Ok b ->
              P.Cert_bundle { bundle = Entangle_certexport.Bundle.to_string b }
          | Error m ->
              P.Error_reply
                {
                  code = P.Server_internal;
                  message = "certificate export failed: " ^ m;
                })
      | Error failure ->
          P.Checked
            {
              P.exit_code = Refine.exit_code (Error failure);
              verdict = verdict_tag failure.Refine.verdict;
              report = Entangle.Report.failure_to_string gs failure;
              output_relation = None;
              stats = failure.Refine.stats;
            }
      | exception Invalid_argument m ->
          P.Error_reply { code = P.Bad_request; message = m })

(* cert-push: the server is the independent verifier — replay,
   cleanliness and shape inference only; no e-graph is consulted and
   the daemon's warm cache is never trusted for someone else's
   bundle. *)
let handle_cert_push bundle =
  match Entangle_certexport.Verify.check_string bundle with
  | Ok report ->
      P.Cert_verdict_reply
        {
          P.accepted = true;
          cert_id = Some report.Entangle_certexport.Verify.id;
          cert_code = None;
          cert_detail =
            Fmt.str "verified: %d operators, %d outputs, %d expressions replayed"
              report.Entangle_certexport.Verify.operators
              report.Entangle_certexport.Verify.outputs_checked
              report.Entangle_certexport.Verify.exprs_replayed;
        }
  | Error e ->
      P.Cert_verdict_reply
        {
          P.accepted = false;
          cert_id = None;
          cert_code =
            Some
              (Entangle_certexport.Cert_error.code_string
                 e.Entangle_certexport.Cert_error.code);
          cert_detail = e.Entangle_certexport.Cert_error.detail;
        }

let handle_request t = function
  | P.Ping -> P.Pong
  | P.Describe -> P.Described (P.describe_json ~server:t.name)
  | P.Server_stats -> P.Server_stats_reply (stats t)
  | P.Shutdown ->
      begin_drain t;
      P.Bye
  | P.Cache_clear ->
      handle_cache t (fun c -> P.Cache_cleared (Entangle_cache.Cache.clear c))
  | P.Cache_stats ->
      handle_cache t (fun c ->
          let s = Entangle_cache.Cache.stats c in
          P.Cache_stats_reply
            {
              P.dir = Entangle_cache.Cache.dir c;
              entries = s.Entangle_cache.Store.entries;
              bytes = s.Entangle_cache.Store.bytes;
              shards = s.Entangle_cache.Store.shards;
              quarantined = s.Entangle_cache.Store.quarantined;
              max_bytes = s.Entangle_cache.Store.max_bytes;
              max_age_s = s.Entangle_cache.Store.max_age_s;
              evicted_entries = s.Entangle_cache.Store.evicted_entries;
              evicted_bytes = s.Entangle_cache.Store.evicted_bytes;
              expired_entries = s.Entangle_cache.Store.expired_entries;
            })
  | P.Check { options; gs; gd; relation } -> handle_check t options gs gd relation
  | P.Cert_fetch { options; gs; gd; relation; env } ->
      handle_cert_fetch t options gs gd relation env
  | P.Cert_push { bundle } -> handle_cert_push bundle
  | P.Check_batch _ ->
      (* handled by the streaming path in [serve_connection] *)
      P.Error_reply
        { code = P.Server_internal; message = "check-batch reached handle_request" }

(* --- the connection loop ------------------------------------------------ *)

let io_deadline t = Unix.gettimeofday () +. t.io_timeout_s

(* Write one response frame under the I/O deadline. When the
   serve.frame.write failpoint fires, deliberately emit half the
   encoded frame and fail the connection — the torn write clients must
   survive by retrying. *)
let write_response t io ~id resp =
  let payload = P.response_to_string ~id resp in
  let deadline = Some (io_deadline t) in
  match F.hit fp_frame_write with
  | () -> (
      match P.Io.write_frame ?deadline io payload with
      | Ok () -> true
      | Error P.Io.Timeout ->
          (* backpressure: the peer stopped reading *)
          Atomic.incr t.counters.timed_out;
          false
      | Error _ -> false)
  | exception F.Injected _ ->
      let encoded = P.encode_frame payload in
      let half = String.length encoded / 2 in
      ignore (P.Io.write_raw ?deadline io (String.sub encoded 0 half));
      false

let handshake t io =
  let deadline = Some (io_deadline t) in
  let reject r =
    ignore (P.Io.write_frame ?deadline io (P.welcome_to_string r))
  in
  match P.Io.read_frame ?deadline io with
  | Error P.Io.Timeout ->
      Atomic.incr t.counters.timed_out;
      Error "handshake timed out"
  | Error e -> Error (P.Io.error_message e)
  | Ok payload -> (
      match F.hit fp_handshake with
      | exception F.Injected _ -> Error "injected handshake failure"
      | () -> (
          match P.hello_of_string payload with
          | Error e ->
              (* Not even a hello: answer with a rejection so the peer
                 learns why, then drop the connection. *)
              reject
                (P.Rejected
                   {
                     expected = P.protocol_version;
                     got = -1;
                     message = "malformed hello: " ^ e;
                   });
              Error ("malformed hello: " ^ e)
          | Ok h when h.P.protocol <> P.protocol_version ->
              reject
                (P.Rejected
                   {
                     expected = P.protocol_version;
                     got = h.P.protocol;
                     message =
                       Fmt.str
                         "protocol version mismatch: server speaks %d, client \
                          sent %d; upgrade the older side"
                         P.protocol_version h.P.protocol;
                   });
              Error "protocol version mismatch"
          | Ok _ ->
              ignore
                (P.Io.write_frame ?deadline io
                   (P.welcome_to_string
                      (P.Welcome
                         { protocol = P.protocol_version; server = t.name })));
              Ok ()))

let dispatch t io ~id req =
  let sink = t.config.Config.trace in
  let args = [ ("id", Entangle_trace.Event.Int id) ] in
  let name = request_name req in
  Entangle_trace.Sink.span_begin sink ~args ~cat:"serve" name;
  let finally () = Entangle_trace.Sink.span_end sink ~args ~cat:"serve" name in
  Fun.protect ~finally (fun () ->
      match
        F.guard fp_dispatch (fun () -> F.guard (fp_dispatch_of req) (fun () -> req))
      with
      | exception exn ->
          write_response t io ~id
            (P.Error_reply
               { code = P.Server_internal; message = Printexc.to_string exn })
      | P.Check_batch { options; instances } ->
          (* Streamed: each instance's verdict goes out as soon as it
             is computed, in index order, then a terminator. Faults are
             contained per instance. *)
          let count = List.length instances in
          let ok = ref true in
          List.iteri
            (fun index (inst : P.batch_instance) ->
              if !ok then begin
                let body =
                  match
                    handle_check t options inst.P.gs inst.P.gd inst.P.relation
                  with
                  | body -> body
                  | exception exn ->
                      P.Error_reply
                        {
                          code = P.Server_internal;
                          message = Printexc.to_string exn;
                        }
                in
                ok := write_response t io ~id (P.Batch_item { index; body })
              end)
            instances;
          if !ok then write_response t io ~id (P.Batch_done { count })
          else false
      | req ->
          let reply =
            match handle_request t req with
            | reply -> reply
            | exception exn ->
                P.Error_reply
                  { code = P.Server_internal; message = Printexc.to_string exn }
          in
          write_response t io ~id reply)

let serve_connection t fd =
  let io = P.Io.of_fd ~cancel:t.wake_r fd in
  match handshake t io with
  | Error _ -> ()
  | Ok () ->
      let rec loop () =
        if Atomic.get t.draining then ()
        else
          let idle =
            Option.map
              (fun s -> Unix.gettimeofday () +. s)
              t.idle_timeout_s
          in
          (* Two deadlines: the idle wait for the next request is
             unbounded by default (editors keep connections open), but
             once the first byte arrives the whole frame must land
             within the I/O timeout — a slow-loris write costs one
             timeout, not a thread. *)
          match P.Io.wait_input ?deadline:idle io with
          | Error _ -> () (* drain, idle timeout, or peer gone *)
          | Ok () -> (
              match
                F.guard fp_frame_read (fun () ->
                    P.Io.read_frame ~deadline:(io_deadline t) io)
              with
              | exception F.Injected _ -> ()
              | Error P.Io.Timeout ->
                  Atomic.incr t.counters.timed_out
              | Error _ -> () (* hung up, torn frame, or garbage framing *)
              | Ok payload ->
                  let continue =
                    match P.request_of_string payload with
                    | Error e ->
                        write_response t io ~id:0
                          (P.Error_reply { code = P.Bad_request; message = e })
                    | Ok (id, req) -> dispatch t io ~id req
                  in
                  Atomic.incr t.counters.served;
                  if continue then loop ())
      in
      loop ()

let handle_client t fd =
  let finally () =
    if Atomic.get t.draining then Atomic.incr t.counters.drained;
    Atomic.decr t.active;
    try Unix.close fd with Unix.Unix_error _ -> ()
  in
  Fun.protect ~finally (fun () ->
      if Atomic.fetch_and_add t.active 1 >= t.max_clients then begin
        (* Admission control: answer with a structured, retryable busy
           frame (without waiting for the hello) and close. The write
           deadline is short so a stalled rejected client cannot pin
           the handler. *)
        Atomic.incr t.counters.rejected_busy;
        let io = P.Io.of_fd fd in
        let deadline =
          Some (Unix.gettimeofday () +. Float.min 1.0 t.io_timeout_s)
        in
        ignore
          (P.Io.write_frame ?deadline io
             (P.welcome_to_string
                (P.Busy
                   {
                     max_clients = t.max_clients;
                     message =
                       Fmt.str
                         "server is at its %d-client admission limit; retry \
                          with backoff"
                         t.max_clients;
                   })))
      end
      else serve_connection t fd)

(* --- accept loop and drain ---------------------------------------------- *)

let run ?(signals = false) t =
  let previous_pipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
  let previous_signals =
    if signals then
      let drain _ = begin_drain t in
      Some
        ( Sys.signal Sys.sigterm (Sys.Signal_handle drain),
          Sys.signal Sys.sigint (Sys.Signal_handle drain) )
    else None
  in
  let threads = ref [] in
  let threads_mutex = Mutex.create () in
  let finally () =
    (match previous_signals with
    | Some (term, int_) ->
        Sys.set_signal Sys.sigterm term;
        Sys.set_signal Sys.sigint int_
    | None -> ());
    Sys.set_signal Sys.sigpipe previous_pipe;
    (try Unix.close t.listener with Unix.Unix_error _ -> ());
    (try Sys.remove t.path with Sys_error _ -> ());
    (try Unix.close t.wake_r with Unix.Unix_error _ -> ());
    (try Unix.close t.wake_w with Unix.Unix_error _ -> ());
    release_lock t.path t.lock_fd
  in
  Fun.protect ~finally (fun () ->
      let spawn fd =
        let th = Thread.create (fun () -> handle_client t fd) () in
        Mutex.lock threads_mutex;
        threads := th :: !threads;
        Mutex.unlock threads_mutex
      in
      let rec accept_loop remaining =
        if Atomic.get t.draining || remaining = Some 0 then ()
        else
          match Unix.select [ t.listener; t.wake_r ] [] [] (-1.) with
          | exception Unix.Unix_error (Unix.EINTR, _, _) ->
              accept_loop remaining
          | rds, _, _ ->
              if Atomic.get t.draining then ()
              else if List.mem t.listener rds then (
                match F.guard fp_accept (fun () -> Unix.accept t.listener) with
                | exception F.Injected _ ->
                    (* an injected EMFILE-style accept failure: count
                       it and keep serving *)
                    Atomic.incr t.counters.accept_failures;
                    accept_loop remaining
                | exception
                    Unix.Unix_error ((Unix.EMFILE | Unix.ENFILE), _, _) ->
                    (* out of descriptors: shed load briefly instead
                       of spinning or dying *)
                    Atomic.incr t.counters.accept_failures;
                    Thread.delay 0.05;
                    accept_loop remaining
                | exception Unix.Unix_error (Unix.EINTR, _, _) ->
                    accept_loop remaining
                | fd, _ ->
                    Atomic.incr t.counters.accepted;
                    spawn fd;
                    accept_loop (Option.map (fun n -> n - 1) remaining))
              else accept_loop remaining
      in
      accept_loop t.max_connections;
      (* Drain: stop accepting (done — the loop exited), wake idle
         readers, and give in-flight requests until the drain timeout
         to finish. Requests bounded by a request deadline cancel into
         inconclusive verdicts within it (Runner.budget semantics). *)
      begin_drain t;
      let deadline = Unix.gettimeofday () +. t.drain_timeout_s in
      let rec wait_active () =
        if Atomic.get t.active = 0 then true
        else if Unix.gettimeofday () > deadline then false
        else begin
          Thread.delay 0.005;
          wait_active ()
        end
      in
      if wait_active () then begin
        (* every handler has decremented [active]; joining is now
           bounded and proves no thread leaked *)
        Mutex.lock threads_mutex;
        let ths = !threads in
        threads := [];
        Mutex.unlock threads_mutex;
        List.iter Thread.join ths
      end)
