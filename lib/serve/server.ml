module Sexp = Entangle_ir.Sexp
module Serial = Entangle_ir.Serial
module Refine = Entangle.Refine
module Config = Entangle.Config
module P = Protocol

type t = {
  name : string;
  config : Config.t;
  cache : Entangle_cache.Cache.t option;
  max_connections : int option;
  path : string;
  listener : Unix.file_descr;
  mutable served : int;
  mutable connections : int;
  mutable shutting_down : bool;
}

let socket t = t.path
let requests_served t = t.served

(* A socket file can be live (another daemon) or stale (a crash left
   it behind). Connecting tells them apart without races worth caring
   about on a development box: refused/absent means stale. *)
let socket_in_use path =
  match Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 with
  | exception Unix.Unix_error _ -> false
  | probe -> (
      match Unix.connect probe (Unix.ADDR_UNIX path) with
      | () ->
          Unix.close probe;
          true
      | exception Unix.Unix_error _ ->
          Unix.close probe;
          false)

let create ?(name = "entangle-serve") ?(config = Config.default) ?cache
    ?max_connections ~socket:path () =
  let config =
    match cache with None -> config | Some c -> Config.with_cache (Some c) config
  in
  let cache = match cache with Some _ as c -> c | None -> config.Config.cache in
  if Sys.file_exists path && socket_in_use path then
    Fmt.error "socket %s: another server is already serving" path
  else begin
    if Sys.file_exists path then Sys.remove path;
    match Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 with
    | exception Unix.Unix_error (e, _, _) ->
        Fmt.error "socket: %s" (Unix.error_message e)
    | listener -> (
        match
          Unix.bind listener (Unix.ADDR_UNIX path);
          Unix.listen listener 16
        with
        | () ->
            Ok
              {
                name;
                config;
                cache;
                max_connections;
                path;
                listener;
                served = 0;
                connections = 0;
                shutting_down = false;
              }
        | exception Unix.Unix_error (e, _, _) ->
            Unix.close listener;
            Fmt.error "bind %s: %s" path (Unix.error_message e))
  end

(* --- request handlers --------------------------------------------------- *)

let verdict_tag = function
  | Refine.Unmapped _ -> "unmapped"
  | Refine.Inconclusive _ -> "inconclusive"
  | Refine.Internal _ -> "internal"

let bad_request fmt = Fmt.kstr (fun m -> Error (P.Bad_request, m)) fmt

let rules_for_family = function
  | None -> Ok None
  | Some f -> (
      match Entangle_lemmas.Registry.family_of_string f with
      | Some fam -> Ok (Some (Entangle_lemmas.Registry.rules_for_model fam))
      | None -> bad_request "unknown model family %S" f)

let check_config t (o : P.check_options) =
  t.config
  |> Config.with_cache_namespace (Option.value o.P.namespace ~default:"")
  |> Config.with_keep_going o.P.keep_going
  |> fun c ->
  match o.P.jobs with None -> c | Some j -> Config.with_jobs j c

let handle_check t (o : P.check_options) gs_sexp gd_sexp rel_sexp =
  let ( let* ) = Result.bind in
  let parsed =
    let parse what = function
      | Ok v -> Ok v
      | Error e -> bad_request "%s: %s" what e
    in
    let* rules = rules_for_family o.P.family in
    let* gs = parse "gs" (Serial.graph_of_sexp gs_sexp) in
    let* gd = parse "gd" (Serial.graph_of_sexp gd_sexp) in
    let* input_relation =
      parse "relation" (Entangle.Relation_io.of_sexp ~gs ~gd rel_sexp)
    in
    Ok (rules, gs, gd, input_relation)
  in
  match parsed with
  | Error (code, message) -> P.Error_reply { code; message }
  | Ok (rules, gs, gd, input_relation) -> (
      let config = check_config t o in
      match Refine.check ~config ?rules ~gs ~gd ~input_relation () with
      | Ok success ->
          P.Checked
            {
              P.exit_code = 0;
              verdict = "refines";
              report = Entangle.Report.success_to_string gs success;
              output_relation =
                Some (Entangle.Relation_io.to_sexp success.Refine.output_relation);
              stats = success.Refine.stats;
            }
      | Error failure ->
          P.Checked
            {
              P.exit_code = Refine.exit_code (Error failure);
              verdict = verdict_tag failure.Refine.verdict;
              report = Entangle.Report.failure_to_string gs failure;
              output_relation = None;
              stats = failure.Refine.stats;
            }
      | exception Invalid_argument m ->
          P.Error_reply { code = P.Bad_request; message = m })

let handle_cache t f =
  match t.cache with
  | None ->
      P.Error_reply
        { code = P.Bad_request; message = "server is running without a cache" }
  | Some cache -> f cache

let handle_request t = function
  | P.Ping -> P.Pong
  | P.Describe -> P.Described (P.describe_json ~server:t.name)
  | P.Shutdown ->
      t.shutting_down <- true;
      P.Bye
  | P.Cache_clear ->
      handle_cache t (fun c -> P.Cache_cleared (Entangle_cache.Cache.clear c))
  | P.Cache_stats ->
      handle_cache t (fun c ->
          let s = Entangle_cache.Cache.stats c in
          P.Cache_stats_reply
            {
              P.dir = Entangle_cache.Cache.dir c;
              entries = s.Entangle_cache.Store.entries;
              bytes = s.Entangle_cache.Store.bytes;
              shards = s.Entangle_cache.Store.shards;
              quarantined = s.Entangle_cache.Store.quarantined;
              max_bytes = s.Entangle_cache.Store.max_bytes;
              max_age_s = s.Entangle_cache.Store.max_age_s;
              evicted_entries = s.Entangle_cache.Store.evicted_entries;
              evicted_bytes = s.Entangle_cache.Store.evicted_bytes;
              expired_entries = s.Entangle_cache.Store.expired_entries;
            })
  | P.Check { options; gs; gd; relation } -> handle_check t options gs gd relation

let request_name = function
  | P.Ping -> "ping"
  | P.Describe -> "describe"
  | P.Check _ -> "check"
  | P.Cache_stats -> "cache-stats"
  | P.Cache_clear -> "cache-clear"
  | P.Shutdown -> "shutdown"

(* --- the connection loop ------------------------------------------------ *)

let handshake ic oc =
  match P.read_frame ic with
  | Error e -> Error e
  | Ok payload -> (
      match P.hello_of_string payload with
      | Error e ->
          (* Not even a hello: answer with a rejection so the peer
             learns why, then drop the connection. *)
          P.write_frame oc
            (P.welcome_to_string
               (P.Rejected
                  {
                    expected = P.protocol_version;
                    got = -1;
                    message = "malformed hello: " ^ e;
                  }));
          Error ("malformed hello: " ^ e)
      | Ok h when h.P.protocol <> P.protocol_version ->
          P.write_frame oc
            (P.welcome_to_string
               (P.Rejected
                  {
                    expected = P.protocol_version;
                    got = h.P.protocol;
                    message =
                      Fmt.str
                        "protocol version mismatch: server speaks %d, client \
                         sent %d; upgrade the older side"
                        P.protocol_version h.P.protocol;
                  }));
          Error "protocol version mismatch"
      | Ok _ -> Ok ())

let serve_connection t fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let sink = t.config.Config.trace in
  match handshake ic oc with
  | Error _ -> ()
  | Ok () ->
      P.write_frame oc
        (P.welcome_to_string
           (P.Welcome { protocol = P.protocol_version; server = t.name }));
      let rec loop () =
        if t.shutting_down then ()
        else
          match P.read_frame ic with
          | Error _ -> () (* client hung up *)
          | Ok payload ->
              let id, reply =
                match P.request_of_string payload with
                | Error e ->
                    (0, P.Error_reply { code = P.Bad_request; message = e })
                | Ok (id, req) ->
                    let args =
                      [ ("id", Entangle_trace.Event.Int id) ]
                    in
                    Entangle_trace.Sink.span_begin sink ~args ~cat:"serve"
                      (request_name req);
                    let reply =
                      match handle_request t req with
                      | reply -> reply
                      | exception exn ->
                          P.Error_reply
                            {
                              code = P.Server_internal;
                              message = Printexc.to_string exn;
                            }
                    in
                    Entangle_trace.Sink.span_end sink ~args ~cat:"serve"
                      (request_name req);
                    (id, reply)
              in
              t.served <- t.served + 1;
              (match P.write_frame oc (P.response_to_string ~id reply) with
              | () -> loop ()
              | exception (Sys_error _ | Unix.Unix_error _) ->
                  (* the client hung up mid-reply; only this
                     connection dies *)
                  ())
      in
      loop ()

let run t =
  let previous = Sys.signal Sys.sigpipe Sys.Signal_ignore in
  let finally () =
    Sys.set_signal Sys.sigpipe previous;
    (try Unix.close t.listener with Unix.Unix_error _ -> ());
    try Sys.remove t.path with Sys_error _ -> ()
  in
  Fun.protect ~finally (fun () ->
      let rec accept_loop () =
        let budget_left =
          match t.max_connections with
          | Some n -> t.connections < n
          | None -> true
        in
        if t.shutting_down || not budget_left then ()
        else
          match Unix.accept t.listener with
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
          | fd, _ ->
              t.connections <- t.connections + 1;
              Fun.protect
                ~finally:(fun () ->
                  try Unix.close fd with Unix.Unix_error _ -> ())
                (fun () -> serve_connection t fd);
              accept_loop ()
      in
      accept_loop ())
