module P = Protocol

let ( let* ) = Result.bind

type t = {
  fd : Unix.file_descr;
  ic : in_channel;
  oc : out_channel;
  mutable next_id : int;
  mutable closed : bool;
}

let close t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

let dial path =
  match Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 with
  | exception Unix.Unix_error (e, _, _) ->
      Fmt.error "socket: %s" (Unix.error_message e)
  | fd -> (
      match Unix.connect fd (Unix.ADDR_UNIX path) with
      | () -> Ok fd
      | exception Unix.Unix_error (e, _, _) ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          Fmt.error "connect %s: %s" path (Unix.error_message e))

let handshake ~client ic oc =
  P.write_frame oc (P.hello_to_string { P.protocol = P.protocol_version; client });
  let* payload = P.read_frame ic in
  let* welcome = P.welcome_of_string payload in
  match welcome with
  | P.Welcome _ -> Ok ()
  | P.Rejected { message; _ } -> Error message

let connect ?(client = "entangle") ~socket () =
  let* fd = dial socket in
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let t = { fd; ic; oc; next_id = 1; closed = false } in
  match handshake ~client ic oc with
  | Ok () -> Ok t
  | Error e ->
      close t;
      Error e
  | exception (Sys_error m | Failure m) ->
      close t;
      Error m

let request t req =
  if t.closed then Error "connection closed"
  else begin
    let id = t.next_id in
    t.next_id <- id + 1;
    match
      P.write_frame t.oc (P.request_to_string ~id req);
      P.read_frame t.ic
    with
    | exception (Sys_error m | Failure m) ->
        close t;
        Error m
    | exception Unix.Unix_error (e, _, _) ->
        close t;
        Error (Unix.error_message e)
    | Error e ->
        close t;
        Error e
    | Ok payload -> (
        let* got_id, resp = P.response_of_string payload in
        if got_id <> id then
          Fmt.error "response id mismatch: sent %d, got %d" id got_id
        else Ok resp)
  end

let ping t =
  let* resp = request t P.Ping in
  match resp with
  | P.Pong -> Ok ()
  | P.Error_reply { message; _ } -> Error message
  | _ -> Error "unexpected reply to ping"

let describe t =
  let* resp = request t P.Describe in
  match resp with
  | P.Described json -> Ok json
  | P.Error_reply { message; _ } -> Error message
  | _ -> Error "unexpected reply to describe"

let check t ?(options = P.default_options) ~gs ~gd ~relation () =
  request t (P.Check { options; gs; gd; relation })

let cache_stats t = request t P.Cache_stats
let cache_clear t = request t P.Cache_clear

let shutdown t =
  let outcome =
    let* resp = request t P.Shutdown in
    match resp with
    | P.Bye -> Ok ()
    | P.Error_reply { message; _ } -> Error message
    | _ -> Error "unexpected reply to shutdown"
  in
  close t;
  outcome

let raw_hello ~socket ~protocol =
  let* fd = dial socket in
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let finally () = try Unix.close fd with Unix.Unix_error _ -> () in
  Fun.protect ~finally (fun () ->
      match
        P.write_frame oc
          (P.hello_to_string { P.protocol; client = "entangle-test" });
        P.read_frame ic
      with
      | exception (Sys_error m | Failure m) -> Error m
      | Error e -> Error e
      | Ok payload -> P.welcome_of_string payload)
