module P = Protocol

let ( let* ) = Result.bind

(* --- structured errors -------------------------------------------------- *)

type error_kind =
  | Refused
  | Busy
  | Rejected
  | Timed_out
  | Closed
  | Protocol_error
  | App

type error = { kind : error_kind; message : string; attempts : int }

let error_message e = e.message

let kind_name = function
  | Refused -> "refused"
  | Busy -> "busy"
  | Rejected -> "rejected"
  | Timed_out -> "timeout"
  | Closed -> "closed"
  | Protocol_error -> "protocol"
  | App -> "app"

let fail ?(kind = Protocol_error) fmt =
  Fmt.kstr (fun message -> Error { kind; message; attempts = 1 }) fmt

let err_of ?(kind = Protocol_error) message = { kind; message; attempts = 1 }

let io_error (e : P.Io.error) =
  match e with
  | P.Io.Timeout -> err_of ~kind:Timed_out "i/o timeout"
  | P.Io.Closed | P.Io.Cancelled -> err_of ~kind:Closed "connection closed"
  | P.Io.Failed m -> err_of ~kind:Protocol_error m

(* --- connections -------------------------------------------------------- *)

type t = {
  io : P.Io.t;
  timeout_s : float option;
  mutable next_id : int;
  mutable closed : bool;
}

let close t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close (P.Io.fd t.io) with Unix.Unix_error _ -> ()
  end

let deadline t = Option.map (fun s -> Unix.gettimeofday () +. s) t.timeout_s

let close_fd fd = try Unix.close fd with Unix.Unix_error _ -> ()

let dial ?timeout_s path =
  match Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 with
  | exception Unix.Unix_error (e, _, _) ->
      fail ~kind:Refused "socket: %s" (Unix.error_message e)
  | fd -> (
      Unix.set_nonblock fd;
      let refused e =
        close_fd fd;
        fail ~kind:Refused "connect %s: %s" path (Unix.error_message e)
      in
      match Unix.connect fd (Unix.ADDR_UNIX path) with
      | () -> Ok fd
      | exception Unix.Unix_error (Unix.EINPROGRESS, _, _) -> (
          (* finish the non-blocking connect under the timeout *)
          match
            Unix.select [] [ fd ] [] (Option.value timeout_s ~default:(-1.))
          with
          | exception Unix.Unix_error (Unix.EINTR, _, _) | [], [], [] ->
              close_fd fd;
              fail ~kind:Timed_out "connect %s: timed out" path
          | _ -> (
              match Unix.getsockopt_error fd with
              | None -> Ok fd
              | Some e -> refused e))
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          (* Linux refuses a non-blocking unix connect with EAGAIN when
             the listener's backlog is full: the busy signal, one layer
             below the protocol. *)
          close_fd fd;
          fail ~kind:Busy "connect %s: backlog full" path
      | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _) ->
          close_fd fd;
          fail ~kind:Refused "connect %s: %s" path
            (Unix.error_message Unix.ECONNREFUSED)
      | exception Unix.Unix_error (e, _, _) -> refused e)

let connect ?(client = "entangle") ?timeout_s ~socket () =
  let* fd = dial ?timeout_s socket in
  let t = { io = P.Io.of_fd fd; timeout_s; next_id = 1; closed = false } in
  let give_up e =
    close t;
    Error e
  in
  let dl = deadline t in
  match
    P.Io.write_frame ?deadline:dl t.io
      (P.hello_to_string { P.protocol = P.protocol_version; client })
  with
  | Error e -> give_up (io_error e)
  | Ok () -> (
      match P.Io.read_frame ?deadline:dl t.io with
      | Error e -> give_up (io_error e)
      | Ok payload -> (
          match P.welcome_of_string payload with
          | Error m -> give_up (err_of m)
          | Ok (P.Welcome _) -> Ok t
          | Ok (P.Rejected { message; _ }) ->
              give_up (err_of ~kind:Rejected message)
          | Ok (P.Busy { message; _ }) -> give_up (err_of ~kind:Busy message)))

let read_response t ~id =
  let* payload =
    Result.map_error
      (fun e ->
        close t;
        io_error e)
      (P.Io.read_frame ?deadline:(deadline t) t.io)
  in
  match P.response_of_string payload with
  | Error m ->
      close t;
      Error (err_of m)
  | Ok (got_id, resp) ->
      if got_id <> id then begin
        close t;
        fail "response id mismatch: sent %d, got %d" id got_id
      end
      else Ok resp

let send_sized t req =
  if t.closed then Error (err_of ~kind:Closed "connection closed")
  else begin
    let id = t.next_id in
    t.next_id <- id + 1;
    let frame = P.request_to_string ~id req in
    match P.Io.write_frame ?deadline:(deadline t) t.io frame with
    | Error e ->
        close t;
        Error (io_error e)
    | Ok () -> Ok (id, String.length frame)
  end

let send t req = Result.map fst (send_sized t req)

let request t req =
  let* id = send t req in
  read_response t ~id

(* Pipelining: requests are written back-to-back and responses read in
   request order — the server answers strictly in order, so matching
   the i-th response to the i-th sent id is exact, not heuristic.

   Writes and reads interleave under an in-flight bound. Both peers
   write before they read, so a client that blindly wrote every frame
   of a large batch while the server is mid-write on a response could
   fill the kernel socket buffers in both directions and wedge the two
   sides in [write] until a deadline breaks the connection. Once the
   pending requests exceed the bound (frames or bytes), the oldest
   response is drained before the next frame is written, keeping the
   unread backlog small. Check_batch is excluded — its response is a
   multi-frame stream, which would desynchronize the
   one-frame-per-request accounting here. *)
let max_pipeline_frames = 16
let max_pipeline_bytes = 256 * 1024

let pipeline t reqs =
  if
    List.exists (function P.Check_batch _ -> true | _ -> false) reqs
  then fail "pipeline: check-batch streams multiple frames; send it alone"
  else
    (* Pending = ids written but not yet answered, oldest first, each
       with the frame bytes it contributed to [inflight]; a two-list
       queue so both ends are O(1). *)
    let pop front back =
      match front with
      | p :: front -> Some (p, front, back)
      | [] -> (
          match List.rev back with
          | p :: front -> Some (p, front, [])
          | [] -> None)
    in
    let rec go acc front back count inflight reqs =
      match reqs with
      | req :: rest
        when (count < max_pipeline_frames && inflight < max_pipeline_bytes)
             || (front = [] && back = []) ->
          let* id, bytes = send_sized t req in
          go acc front ((id, bytes) :: back) (count + 1) (inflight + bytes)
            rest
      | _ -> (
          match pop front back with
          | None -> Ok (List.rev acc)
          | Some ((id, bytes), front, back) ->
              let* resp = read_response t ~id in
              go (resp :: acc) front back (count - 1) (inflight - bytes) reqs)
    in
    go [] [] [] 0 0 reqs

(* --- typed helpers ------------------------------------------------------ *)

let app message = Error (err_of ~kind:App message)

let ping t =
  let* resp = request t P.Ping in
  match resp with
  | P.Pong -> Ok ()
  | P.Error_reply { message; _ } -> app message
  | _ -> app "unexpected reply to ping"

let describe t =
  let* resp = request t P.Describe in
  match resp with
  | P.Described json -> Ok json
  | P.Error_reply { message; _ } -> app message
  | _ -> app "unexpected reply to describe"

let check t ?(options = P.default_options) ~gs ~gd ~relation () =
  request t (P.Check { options; gs; gd; relation })

(* The batch stream: items arrive in index order as they are computed,
   terminated by batch-done; a bare error reply fails the whole batch. *)
let check_batch t ?(options = P.default_options) ~instances () =
  let expected = List.length instances in
  let* id = send t (P.Check_batch { options; instances }) in
  let rec collect acc =
    let* resp = read_response t ~id in
    match resp with
    | P.Batch_item { index; body } ->
        if index <> List.length acc then begin
          close t;
          fail "batch stream out of order: expected %d, got %d"
            (List.length acc) index
        end
        else collect (body :: acc)
    | P.Batch_done { count } ->
        if count <> expected || List.length acc <> expected then begin
          close t;
          fail "batch stream short: %d of %d results" (List.length acc) expected
        end
        else Ok (List.rev acc)
    | P.Error_reply { message; _ } -> app message
    | _ -> app "unexpected reply in batch stream"
  in
  collect []

let cert_fetch t ?(options = P.default_options) ~gs ~gd ~relation ~env () =
  request t (P.Cert_fetch { options; gs; gd; relation; env })

let cert_push t ~bundle =
  let* resp = request t (P.Cert_push { bundle }) in
  match resp with
  | P.Cert_verdict_reply v -> Ok v
  | P.Error_reply { message; _ } -> app message
  | _ -> app "unexpected reply to cert-push"

let cache_stats t = request t P.Cache_stats
let cache_clear t = request t P.Cache_clear
let server_stats t = request t P.Server_stats

let shutdown t =
  let outcome =
    let* resp = request t P.Shutdown in
    match resp with
    | P.Bye -> Ok ()
    | P.Error_reply { message; _ } -> app message
    | _ -> app "unexpected reply to shutdown"
  in
  close t;
  outcome

(* --- the retry ladder --------------------------------------------------- *)

type retry = {
  retries : int;
  timeout_s : float option;
  backoff_base_s : float;
  backoff_cap_s : float;
  jitter_seed : int;
  sleep : float -> unit;
}

let default_retry =
  {
    retries = 2;
    timeout_s = None;
    backoff_base_s = 0.05;
    backoff_cap_s = 2.0;
    jitter_seed = 0x7e7a;
    sleep = Unix.sleepf;
  }

(* The whole schedule is a pure function of the policy: capped
   exponential base, deterministic seeded jitter in [0.5, 1.5) — so
   tests can assert the exact delays without sleeping, and two clients
   with different seeds cannot stampede in lockstep. *)
let backoff_schedule r =
  let st = Random.State.make [| r.jitter_seed |] in
  List.init (max 0 r.retries) (fun k ->
      let base =
        Float.min r.backoff_cap_s (r.backoff_base_s *. (2. ** float_of_int k))
      in
      base *. (0.5 +. Random.State.float st 1.0))

(* Retrying before the request frame is written is always safe; after,
   only for requests where a duplicate execution is harmless. The
   non-idempotent ones — cache-clear and shutdown — are never retried
   once sent. *)
let idempotent = function
  | P.Cache_clear | P.Shutdown -> false
  | P.Ping | P.Describe | P.Check _ | P.Check_batch _ | P.Cert_fetch _
  | P.Cert_push _ | P.Cache_stats | P.Server_stats ->
      true

let retryable_connect = function Rejected -> false | _ -> true

let call ?(retry = default_retry) ?client ~socket req =
  let rec go attempt delays =
    let maybe_retry e ~retryable =
      let e = { e with attempts = attempt } in
      match delays with
      | d :: rest when retryable ->
          retry.sleep d;
          go (attempt + 1) rest
      | _ -> Error e
    in
    match connect ?client ?timeout_s:retry.timeout_s ~socket () with
    | Error e ->
        (* no request was sent: refused/busy/timeout connects always
           retry, a protocol-version rejection never will succeed *)
        maybe_retry e ~retryable:(retryable_connect e.kind)
    | Ok t -> (
        let result = request t req in
        close t;
        match result with
        | Ok resp -> Ok resp
        | Error e -> maybe_retry e ~retryable:(idempotent req))
  in
  go 1 (backoff_schedule retry)

let raw_hello ~socket ~protocol =
  match dial socket with
  | Error e -> Error e.message
  | Ok fd ->
      let io = P.Io.of_fd fd in
      let finally () = close_fd fd in
      Fun.protect ~finally (fun () ->
          let dl = Some (Unix.gettimeofday () +. 30.) in
          match
            P.Io.write_frame ?deadline:dl io
              (P.hello_to_string { P.protocol; client = "entangle-test" })
          with
          | Error e -> Error (P.Io.error_message e)
          | Ok () -> (
              match P.Io.read_frame ?deadline:dl io with
              | Error e -> Error (P.Io.error_message e)
              | Ok payload -> P.welcome_of_string payload))
