(** The resident checker service.

    One [entangle serve] process keeps everything expensive resident —
    the lemma corpus (compiled rules), the checker configuration, the
    warm certificate cache and (via {!Entangle.Config.jobs}) the domain
    pool — and answers {!Protocol} requests over a Unix-domain socket,
    so repeated checks from editors, CI shards or scripts skip cold
    start entirely.

    {2 Concurrency}

    The accept loop hands each connection to its own handler thread,
    up to the [max_clients] admission limit; a connection beyond the
    limit is answered with a structured, retryable [busy] frame and
    closed. Parallelism {e inside} a check still lives on the
    configuration's domain pool, where it is deterministic. Every
    request is bracketed by a [cat:"serve"] trace span on the server's
    sink.

    {2 Robustness}

    Per-connection I/O deadlines bound every read and write: a
    slow-loris writer, a torn frame, or a peer that stops reading its
    replies costs one timeout (counted in {!stats}), never a wedged
    thread. Per-request wall budgets ([request_deadline_s]) reuse the
    checker's cooperative {!Entangle.Config.check_deadline_s}
    semantics — an over-budget check returns an inconclusive verdict,
    it does not hang the daemon. A malformed request, an unparsable
    graph, or a precondition violation is answered with a
    [bad-request] error reply; any other exception during a request is
    caught and answered with an [internal] error reply. The connection
    — and the server — survive all of them.

    {2 Drain}

    [Shutdown] requests and (with [run ~signals:true]) SIGTERM/SIGINT
    start a graceful drain: the accept loop stops, idle connections
    are woken and closed, in-flight requests get until
    [drain_timeout_s] to finish (deadline-bounded checks cancel into
    verdicts within it), handler threads are joined, and the socket
    file is unlinked.

    {2 Socket ownership}

    Two daemons started concurrently on one path resolve to exactly
    one listener: ownership is an fcntl lock on [path ^ ".lock"]
    (plus an in-process registry, since fcntl does not exclude within
    a process) taken before the stale-socket probe, so the loser exits
    with a structured {!In_use} error instead of silently stealing the
    socket. The lock file persists across runs by design. *)

type t

type error =
  | In_use of { socket : string }
      (** another server owns the socket (or its lock) *)
  | Failed of string

val error_message : error -> string

val create :
  ?name:string ->
  ?config:Entangle.Config.t ->
  ?cache:Entangle_cache.Cache.t ->
  ?max_connections:int ->
  ?max_clients:int ->
  ?io_timeout_s:float ->
  ?idle_timeout_s:float ->
  ?request_deadline_s:float ->
  ?drain_timeout_s:float ->
  socket:string ->
  unit ->
  (t, error) result
(** Take the socket lock and bind the listener; a stale socket file
    (left by a crashed server) is unlinked under the lock, a live one
    yields [In_use].

    [config] is the base configuration for every check (default
    {!Entangle.Config.default}); its [trace] sink receives the
    [cat:"serve"] spans. [cache], when given, is installed into that
    configuration and additionally answers [Cache_stats]/[Cache_clear].
    [max_connections] bounds how many connections the accept loop
    takes before draining (for tests; default unbounded).
    [max_clients] is the concurrent-connection admission limit
    (default 64). [io_timeout_s] (default 30) bounds reading one frame
    once its first byte arrived, and writing one reply.
    [idle_timeout_s] bounds the wait for the {e next} request on an
    established connection (default: unbounded — editors keep
    connections open). [request_deadline_s] is the per-request wall
    budget folded into {!Entangle.Config.check_deadline_s} (a
    client-supplied deadline can only tighten it). [drain_timeout_s]
    (default 5) bounds the graceful drain. [name] is the server
    identity echoed in the handshake and [describe]. *)

val run : ?signals:bool -> t -> unit
(** The accept loop. Returns after a graceful drain, triggered by a
    [Shutdown] request, [max_connections] accepted connections, or —
    with [signals:true] — SIGTERM/SIGINT (handlers are installed for
    the duration and restored on return; default [false], for
    embedders that manage their own signals). On return the listening
    socket is closed, the socket file removed, the lock released and
    all handler threads joined. SIGPIPE is ignored for the duration. *)

val socket : t -> string

val requests_served : t -> int
(** Total requests answered so far (including error replies). *)

val stats : t -> Protocol.server_stats
(** The live counters, as served to [server-stats] requests. *)

val draining : t -> bool
