(** The resident checker service.

    One [entangle serve] process keeps everything expensive resident —
    the lemma corpus (compiled rules), the checker configuration, the
    warm certificate cache and (via {!Entangle.Config.jobs}) the domain
    pool — and answers {!Protocol} requests over a Unix-domain socket,
    so repeated checks from editors, CI shards or scripts skip cold
    start entirely.

    Connections are served sequentially (one accept loop, one client at
    a time); parallelism lives {e inside} each check, on the
    configuration's domain pool, where it is deterministic. Every
    request is bracketed by a [cat:"serve"] trace span on the server's
    sink, so a collected trace shows exactly which requests saturated
    and which replayed from cache.

    {2 Fidelity}

    A remote check is the same computation as a local one: the server
    parses the structurally-embedded graphs and relation, resolves the
    same per-family lemma rules, runs the same {!Entangle.Refine.check},
    and replies with the same rendered report, the same verdict and
    exit code, and the lossless statistics. Only wall time can differ.

    {2 Failure containment}

    A malformed request, an unparsable graph, or a precondition
    violation ([Invalid_argument] from [Refine.check]) is answered with
    a [bad-request] error reply; any other exception during a request
    is caught and answered with an [internal] error reply. The
    connection — and the server — survive both. Version-mismatched
    clients get a structured rejection frame, never a hang. *)

type t

val create :
  ?name:string ->
  ?config:Entangle.Config.t ->
  ?cache:Entangle_cache.Cache.t ->
  ?max_connections:int ->
  socket:string ->
  unit ->
  (t, string) result
(** Bind the listening socket. A stale socket file (left by a crashed
    server) is detected by attempting a connection: refused → unlink
    and rebind; accepted → [Error "... already serving"], so two
    daemons never fight over one path.

    [config] is the base configuration for every check (default
    {!Entangle.Config.default}); its [trace] sink receives the
    [cat:"serve"] spans. [cache], when given, is installed into that
    configuration and additionally answers [Cache_stats]/[Cache_clear].
    [max_connections] bounds how many connections the accept loop
    serves before returning (for tests); default unbounded.
    [name] is the server identity echoed in the handshake and
    [describe] (default ["entangle-serve"]). *)

val run : t -> unit
(** The accept loop. Returns after a [Shutdown] request has been
    acknowledged (or [max_connections] connections have been served),
    with the listening socket closed and the socket file removed.
    SIGPIPE is ignored for the duration (a client hanging up mid-reply
    must not kill the daemon). *)

val socket : t -> string

val requests_served : t -> int
(** Total requests answered so far (including error replies). *)
