(** The resident checker service's wire protocol — the first public,
    versioned API of the system.

    {2 Transport}

    Length-prefixed frames over a Unix-domain stream socket. One frame
    is the decimal byte length of the payload in ASCII, a newline,
    then exactly that many payload bytes:

    {v
    <len>\n<payload bytes>
    v}

    Every payload is a single S-expression ({!Entangle_ir.Sexp});
    graphs and relations are embedded {e structurally} (the
    {!Entangle_ir.Serial} grammar), not as quoted strings, so there is
    no escaping tower. Frames above {!max_frame_bytes} are rejected
    without reading the payload — a garbage prefix cannot make the
    server allocate unboundedly.

    {2 Version negotiation}

    The first frame on a connection is the client's hello:

    {v
    (hello (protocol <n>) (client <name>))
    v}

    The server answers [(welcome (protocol <n>) (server <name>))] and
    the session proceeds, or — when the client's protocol number is
    not exactly {!protocol_version} — a structured
    [(reject (expected <n>) (got <m>) (message <why>))] and closes the
    connection. A server at its [--max-clients] admission limit
    answers [(busy (max-clients <n>) (message <why>))] {e without}
    waiting for the hello, then closes; busy is the retryable
    rejection (the client backs off and redials), reject is the
    permanent one. Every rejection is a frame, never a hang or a
    slammed socket, so a turned-away client can always print {e why}.
    The protocol number covers the whole grammar: any incompatible
    change to request or response shapes bumps it.

    {2 Requests}

    After the handshake the client sends any number of
    [(request (id <n>) <body>)] frames; the server answers each with
    [(response (id <n>) <body>)], echoing the id (ids let traces
    correlate per-request spans; the server answers in order). Request
    bodies:

    {v
    (ping)
    (describe)
    (check (options ...) (gs <graph>) (gd <graph>) (relation <rel>))
    (check-batch (options ...) (instances (instance (gs ..) (gd ..) (relation ..)) ...))
    (cert-fetch (options ...) (gs <graph>) (gd <graph>) (relation <rel>) (env (SYM INT) ...))
    (cert-push (bundle <text>))
    (cache-stats)
    (cache-clear)
    (server-stats)
    (shutdown)
    v}

    [cert-fetch] runs a check like [check] but, on a [refines] verdict,
    answers [(cert-bundle (bundle <text>))] — a portable,
    tamper-evident certificate bundle ({!Entangle_certexport.Bundle})
    the client should re-verify with the independent minimal verifier
    before trusting; a check that does not refine answers the ordinary
    [result] body so the caller still gets the verdict. [cert-push]
    submits a bundle the {e server} verifies with the minimal verifier,
    answering [(cert-verdict (accepted <bool>) (id <hex>) (code CERTnnn)
    (detail ...))] (id/code optional) — the structured [CERTnnn] code
    names which defense rejected a bad bundle.

    [check-batch] is the one request with more than one response
    frame: the server streams [(batch-item (index <i>) <body>)] per
    instance, in index order, each body a full per-check response
    ([result] or [error]), terminated by [(batch-done (count <k>))] —
    all echoing the request id. One slow instance never buffers the
    others' verdicts.

    Error replies reuse the checker's verdict taxonomy exit codes: a
    check that runs to a verdict is a [result] carrying the same exit
    code (0-3) the local CLI would have returned; a request the server
    could not run at all is an [(error (code <c>) (message ...))] with
    [bad-request] (the CLI usage-error exit, 124) or [internal] (the
    internal-verdict exit, 3). *)

val protocol_version : int
(** [3]. Version 2 added [busy] admission rejections, [check-batch]
    with streamed per-instance responses, and [server-stats]; version 3
    added certificate exchange ([cert-fetch]/[cert-push]). *)

val max_frame_bytes : int
(** Frames larger than this are refused (64 MiB). *)

(* --- framing ----------------------------------------------------------- *)

val encode_frame : string -> string
(** The wire bytes of one frame: length prefix, newline, payload. *)

val write_frame : out_channel -> string -> unit
(** Write one frame and flush. *)

val read_frame : in_channel -> (string, string) result
(** Read one frame; [Error] on malformed or oversized length prefixes
    and on EOF mid-frame. Blocking — tests and tools only; the server
    and client speak through {!Io}. *)

(** Deadline-aware framed I/O over a non-blocking descriptor: the same
    frame grammar as {!read_frame}/{!write_frame}, but every wait is
    bounded by an absolute deadline ([Unix.gettimeofday] seconds) and
    reads additionally abort when the optional [cancel] descriptor
    becomes readable (the server's drain pipe). A stalled peer costs
    one [Timeout], never a wedged thread; writes ignore [cancel] so an
    in-flight reply can finish during a drain. *)
module Io : sig
  type error = Timeout | Closed | Cancelled | Failed of string

  val error_message : error -> string

  type t

  val of_fd : ?cancel:Unix.file_descr -> Unix.file_descr -> t
  (** Switches [fd] to non-blocking mode. *)

  val fd : t -> Unix.file_descr

  val wait_input : ?deadline:float -> t -> (unit, error) result
  (** Block until a byte is available (buffered or on the wire), the
      deadline passes, or [cancel] fires — the idle wait between
      requests, distinct from the per-frame deadline. *)

  val read_frame : ?deadline:float -> t -> (string, error) result
  (** [Closed] only at a clean frame boundary; a connection dropped
      mid-frame is a [Failed _] torn frame. *)

  val write_frame : ?deadline:float -> t -> string -> (unit, error) result

  val write_raw : ?deadline:float -> t -> string -> (unit, error) result
  (** Raw bytes, no framing — the torn-frame fault-injection hook. *)
end

(* --- handshake --------------------------------------------------------- *)

type hello = { protocol : int; client : string }

type welcome =
  | Welcome of { protocol : int; server : string }
  | Rejected of { expected : int; got : int; message : string }
  | Busy of { max_clients : int; message : string }
      (** admission-limit rejection: retryable, sent without reading
          the hello *)

val hello_to_string : hello -> string
val hello_of_string : string -> (hello, string) result
val welcome_to_string : welcome -> string
val welcome_of_string : string -> (welcome, string) result

(* --- requests ---------------------------------------------------------- *)

type check_options = {
  family : string option;
      (** lemma-corpus selection by model family name
          ({!Entangle_lemmas.Registry.family_of_string}); [None] = the
          full corpus, matching a local [check-files] run *)
  namespace : string option;
      (** per-client certificate-cache namespace
          ({!Entangle.Config.cache_namespace}) *)
  jobs : int option;  (** override the server's domain-pool width *)
  keep_going : bool;  (** multi-fault localization *)
}

val default_options : check_options

type batch_instance = {
  gs : Entangle_ir.Sexp.t;
  gd : Entangle_ir.Sexp.t;
  relation : Entangle_ir.Sexp.t;
}

type request =
  | Ping
  | Describe
      (** protocol introspection: the reply carries the shared
          schema-versioned JSON envelope ([entangle/serve/1]) *)
  | Check of {
      options : check_options;
      gs : Entangle_ir.Sexp.t;  (** {!Entangle_ir.Serial} graph *)
      gd : Entangle_ir.Sexp.t;
      relation : Entangle_ir.Sexp.t;  (** {!Entangle.Relation_io} *)
    }
  | Check_batch of { options : check_options; instances : batch_instance list }
      (** several instances in one frame, one [options] for all;
          answered by streamed {!Batch_item}s in index order and a
          final {!Batch_done} *)
  | Cert_fetch of {
      options : check_options;
      gs : Entangle_ir.Sexp.t;
      gd : Entangle_ir.Sexp.t;
      relation : Entangle_ir.Sexp.t;
      env : (string * int) list;
          (** concrete shape-symbol assignment baked into the bundle
              (the minimal verifier replays concretely) *)
    }
      (** run the check and, when it refines, answer {!Cert_bundle};
          otherwise the ordinary {!Checked} verdict *)
  | Cert_push of { bundle : string }
      (** submit a bundle for server-side minimal verification;
          answered by {!Cert_verdict_reply} *)
  | Cache_stats
  | Cache_clear
  | Server_stats
  | Shutdown

val request_to_string : id:int -> request -> string
val request_of_string : string -> (int * request, string) result

(* --- responses --------------------------------------------------------- *)

type error_code = Bad_request | Server_internal

val error_exit_code : error_code -> int
(** The CLI exit the error maps to: [Bad_request] → 124 (usage),
    [Server_internal] → 3 (the [Internal] verdict's exit). *)

type check_reply = {
  exit_code : int;  (** the {!Entangle.Refine.exit_code} convention *)
  verdict : string;
      (** ["refines"], ["unmapped"], ["inconclusive"] or ["internal"]
          — the verdict taxonomy constructor that produced
          [exit_code] *)
  report : string;  (** the rendered {!Entangle.Report}, verbatim *)
  output_relation : Entangle_ir.Sexp.t option;
      (** on success: the certificate, for local concrete replay *)
  stats : Entangle.Refine.stats;
}

type cache_stats_reply = {
  dir : string;
  entries : int;
  bytes : int;
  shards : int;
  quarantined : int;
  max_bytes : int option;
  max_age_s : float option;
  evicted_entries : int;
  evicted_bytes : int;
  expired_entries : int;
}

type server_stats = {
  accepted : int;  (** connections accepted since the daemon started *)
  active : int;  (** connections currently being handled *)
  served : int;  (** requests answered, including error replies *)
  rejected_busy : int;  (** connections turned away at the admission limit *)
  timed_out : int;  (** I/O deadlines tripped (slow reads or writes) *)
  drained : int;  (** connections closed while the daemon was draining *)
  accept_failures : int;  (** accept(2) failures survived (e.g. EMFILE) *)
  max_clients : int;  (** the admission limit in force *)
}

type cert_verdict = {
  accepted : bool;
  cert_id : string option;
      (** the bundle's content address, when it parsed far enough to
          have one *)
  cert_code : string option;
      (** the structured [CERT*] rejection code
          ({!Entangle_certexport.Cert_error.code_string}) when
          [accepted] is false *)
  cert_detail : string;  (** human-readable elaboration *)
}

type response =
  | Pong
  | Described of string  (** the JSON envelope document *)
  | Checked of check_reply
  | Cache_stats_reply of cache_stats_reply
  | Cache_cleared of int
  | Server_stats_reply of server_stats
  | Batch_item of { index : int; body : response }
      (** one streamed [check-batch] result; [body] is a full
          per-check response *)
  | Batch_done of { count : int }  (** terminates a [check-batch] stream *)
  | Cert_bundle of { bundle : string }
      (** a [cert-fetch] success: the serialized bundle text — the
          client must re-verify it with the minimal verifier before
          trusting the verdict it carries *)
  | Cert_verdict_reply of cert_verdict  (** answers [cert-push] *)
  | Bye  (** acknowledges [Shutdown]; the server then closes *)
  | Error_reply of { code : error_code; message : string }

val response_to_string : id:int -> response -> string
val response_of_string : string -> (int * response, string) result

val stats_to_sexp : Entangle.Refine.stats -> Entangle_ir.Sexp.t
val stats_of_sexp : Entangle_ir.Sexp.t -> (Entangle.Refine.stats, string) result
(** Lossless, [wall_time_s] included (hex float rendering), so a
    remote reply's statistics are byte-comparable with a local run's
    after the usual wall-time strip. *)

val describe_json : server:string -> string
(** The [Describe] reply body: the shared [entangle/serve/1] JSON
    envelope listing the protocol version and request vocabulary. *)
