(** The resident checker service's wire protocol — the first public,
    versioned API of the system.

    {2 Transport}

    Length-prefixed frames over a Unix-domain stream socket. One frame
    is the decimal byte length of the payload in ASCII, a newline,
    then exactly that many payload bytes:

    {v
    <len>\n<payload bytes>
    v}

    Every payload is a single S-expression ({!Entangle_ir.Sexp});
    graphs and relations are embedded {e structurally} (the
    {!Entangle_ir.Serial} grammar), not as quoted strings, so there is
    no escaping tower. Frames above {!max_frame_bytes} are rejected
    without reading the payload — a garbage prefix cannot make the
    server allocate unboundedly.

    {2 Version negotiation}

    The first frame on a connection is the client's hello:

    {v
    (hello (protocol <n>) (client <name>))
    v}

    The server answers [(welcome (protocol <n>) (server <name>))] and
    the session proceeds, or — when the client's protocol number is
    not exactly {!protocol_version} — a structured
    [(reject (expected <n>) (got <m>) (message <why>))] and closes the
    connection. Rejection is a frame, never a hang or a slammed
    socket, so a future client can always print {e why} it was turned
    away. The protocol number covers the whole grammar: any
    incompatible change to request or response shapes bumps it.

    {2 Requests}

    After the handshake the client sends any number of
    [(request (id <n>) <body>)] frames; the server answers each with
    [(response (id <n>) <body>)], echoing the id (ids let traces
    correlate per-request spans; the server answers in order). Request
    bodies:

    {v
    (ping)
    (describe)
    (check (options ...) (gs <graph>) (gd <graph>) (relation <rel>))
    (cache-stats)
    (cache-clear)
    (shutdown)
    v}

    Error replies reuse the checker's verdict taxonomy exit codes: a
    check that runs to a verdict is a [result] carrying the same exit
    code (0-3) the local CLI would have returned; a request the server
    could not run at all is an [(error (code <c>) (message ...))] with
    [bad-request] (the CLI usage-error exit, 124) or [internal] (the
    internal-verdict exit, 3). *)

val protocol_version : int
(** [1]. *)

val max_frame_bytes : int
(** Frames larger than this are refused (64 MiB). *)

(* --- framing ----------------------------------------------------------- *)

val write_frame : out_channel -> string -> unit
(** Write one frame and flush. *)

val read_frame : in_channel -> (string, string) result
(** Read one frame; [Error] on malformed or oversized length prefixes
    and on EOF mid-frame. *)

(* --- handshake --------------------------------------------------------- *)

type hello = { protocol : int; client : string }

type welcome =
  | Welcome of { protocol : int; server : string }
  | Rejected of { expected : int; got : int; message : string }

val hello_to_string : hello -> string
val hello_of_string : string -> (hello, string) result
val welcome_to_string : welcome -> string
val welcome_of_string : string -> (welcome, string) result

(* --- requests ---------------------------------------------------------- *)

type check_options = {
  family : string option;
      (** lemma-corpus selection by model family name
          ({!Entangle_lemmas.Registry.family_of_string}); [None] = the
          full corpus, matching a local [check-files] run *)
  namespace : string option;
      (** per-client certificate-cache namespace
          ({!Entangle.Config.cache_namespace}) *)
  jobs : int option;  (** override the server's domain-pool width *)
  keep_going : bool;  (** multi-fault localization *)
}

val default_options : check_options

type request =
  | Ping
  | Describe
      (** protocol introspection: the reply carries the shared
          schema-versioned JSON envelope ([entangle/serve/1]) *)
  | Check of {
      options : check_options;
      gs : Entangle_ir.Sexp.t;  (** {!Entangle_ir.Serial} graph *)
      gd : Entangle_ir.Sexp.t;
      relation : Entangle_ir.Sexp.t;  (** {!Entangle.Relation_io} *)
    }
  | Cache_stats
  | Cache_clear
  | Shutdown

val request_to_string : id:int -> request -> string
val request_of_string : string -> (int * request, string) result

(* --- responses --------------------------------------------------------- *)

type error_code = Bad_request | Server_internal

val error_exit_code : error_code -> int
(** The CLI exit the error maps to: [Bad_request] → 124 (usage),
    [Server_internal] → 3 (the [Internal] verdict's exit). *)

type check_reply = {
  exit_code : int;  (** the {!Entangle.Refine.exit_code} convention *)
  verdict : string;
      (** ["refines"], ["unmapped"], ["inconclusive"] or ["internal"]
          — the verdict taxonomy constructor that produced
          [exit_code] *)
  report : string;  (** the rendered {!Entangle.Report}, verbatim *)
  output_relation : Entangle_ir.Sexp.t option;
      (** on success: the certificate, for local concrete replay *)
  stats : Entangle.Refine.stats;
}

type cache_stats_reply = {
  dir : string;
  entries : int;
  bytes : int;
  shards : int;
  quarantined : int;
  max_bytes : int option;
  max_age_s : float option;
  evicted_entries : int;
  evicted_bytes : int;
  expired_entries : int;
}

type response =
  | Pong
  | Described of string  (** the JSON envelope document *)
  | Checked of check_reply
  | Cache_stats_reply of cache_stats_reply
  | Cache_cleared of int
  | Bye  (** acknowledges [Shutdown]; the server then closes *)
  | Error_reply of { code : error_code; message : string }

val response_to_string : id:int -> response -> string
val response_of_string : string -> (int * response, string) result

val stats_to_sexp : Entangle.Refine.stats -> Entangle_ir.Sexp.t
val stats_of_sexp : Entangle_ir.Sexp.t -> (Entangle.Refine.stats, string) result
(** Lossless, [wall_time_s] included (hex float rendering), so a
    remote reply's statistics are byte-comparable with a local run's
    after the usual wall-time strip. *)

val describe_json : server:string -> string
(** The [Describe] reply body: the shared [entangle/serve/1] JSON
    envelope listing the protocol version and request vocabulary. *)
