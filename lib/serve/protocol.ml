module Sexp = Entangle_ir.Sexp
module Refine = Entangle.Refine

let ( let* ) = Result.bind
let err fmt = Fmt.kstr (fun s -> Error s) fmt

(* Version 2 added busy rejections at admission, batched checks with
   streamed per-instance responses, and server-side counters.
   Version 3 added certificate exchange: cert-fetch (run a check, hand
   back a portable tamper-evident bundle) and cert-push (submit a
   bundle for independent minimal verification). *)
let protocol_version = 3
let max_frame_bytes = 64 * 1024 * 1024

(* --- framing ----------------------------------------------------------- *)

let encode_frame payload =
  string_of_int (String.length payload) ^ "\n" ^ payload

let write_frame oc payload =
  output_string oc (string_of_int (String.length payload));
  output_char oc '\n';
  output_string oc payload;
  flush oc

let read_frame ic =
  (* The length prefix is short and all-digit; read it byte-wise so a
     non-protocol peer cannot make us buffer garbage. *)
  let rec len acc digits =
    if digits > 10 then err "frame length prefix too long"
    else
      match input_char ic with
      | exception End_of_file ->
          if digits = 0 then err "connection closed"
          else err "connection closed inside frame length"
      | '\n' -> if digits = 0 then err "empty frame length" else Ok acc
      | '0' .. '9' as c -> len ((acc * 10) + (Char.code c - 48)) (digits + 1)
      | c -> err "invalid byte %C in frame length" c
  in
  let* n = len 0 0 in
  if n > max_frame_bytes then err "frame of %d bytes exceeds limit" n
  else
    match really_input_string ic n with
    | payload -> Ok payload
    | exception End_of_file -> err "connection closed inside frame payload"

(* --- deadline-aware framed I/O ----------------------------------------- *)

(* The channel framing above blocks for as long as the peer cares to
   stall; [Io] is the same frame grammar over a non-blocking
   descriptor, every wait bounded by an absolute deadline and
   (optionally) interruptible through a cancel descriptor — the
   server's drain pipe. A slow-loris peer costs one timeout, never a
   wedged thread. *)
module Io = struct
  type error = Timeout | Closed | Cancelled | Failed of string

  let error_message = function
    | Timeout -> "i/o timeout"
    | Closed -> "connection closed"
    | Cancelled -> "cancelled"
    | Failed m -> m

  type t = {
    fd : Unix.file_descr;
    cancel : Unix.file_descr option;
    buf : Bytes.t;
    mutable pos : int;
    mutable len : int;
  }

  let of_fd ?cancel fd =
    Unix.set_nonblock fd;
    { fd; cancel; buf = Bytes.create 65536; pos = 0; len = 0 }

  let fd t = t.fd

  let ( let* ) = Result.bind

  (* Reads also watch the cancel descriptor: a readable cancel pipe
     means the server is draining and blocked readers must give up.
     Writes ignore it — an in-flight reply is allowed to finish during
     a drain (its deadline still bounds it). When both the descriptor
     and the cancel pipe are ready, the descriptor wins, so buffered
     requests finish cleanly. *)
  let rec wait ~read t deadline =
    let timeout =
      match deadline with None -> -1. | Some d -> d -. Unix.gettimeofday ()
    in
    if Option.is_some deadline && timeout < 0. then Error Timeout
    else
      let cancels = if read then Option.to_list t.cancel else [] in
      let rds = if read then t.fd :: cancels else cancels in
      let wrs = if read then [] else [ t.fd ] in
      match Unix.select rds wrs [] timeout with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait ~read t deadline
      | r, w, _ ->
          if (if read then List.mem t.fd r else List.mem t.fd w) then Ok ()
          else if List.exists (fun c -> List.mem c r) cancels then
            Error Cancelled
          else Error Timeout

  let wait_input ?deadline t =
    if t.pos < t.len then Ok () else wait ~read:true t deadline

  let refill t deadline =
    let rec go () =
      let* () = wait ~read:true t deadline in
      match Unix.read t.fd t.buf 0 (Bytes.length t.buf) with
      | 0 -> Error Closed
      | n ->
          t.pos <- 0;
          t.len <- n;
          Ok ()
      | exception
          Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
        ->
          go ()
      | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
          Error Closed
      | exception Unix.Unix_error (e, _, _) ->
          Error (Failed (Unix.error_message e))
    in
    go ()

  let read_byte t deadline =
    let* () = if t.pos < t.len then Ok () else refill t deadline in
    let c = Bytes.get t.buf t.pos in
    t.pos <- t.pos + 1;
    Ok c

  let read_exact t n deadline =
    let out = Bytes.create n in
    let rec go filled =
      if filled = n then Ok (Bytes.unsafe_to_string out)
      else if t.pos < t.len then begin
        let take = min (n - filled) (t.len - t.pos) in
        Bytes.blit t.buf t.pos out filled take;
        t.pos <- t.pos + take;
        go (filled + take)
      end
      else
        let* () = refill t deadline in
        go filled
    in
    go 0

  let read_frame ?deadline t =
    let rec len acc digits =
      if digits > 10 then Error (Failed "frame length prefix too long")
      else
        match read_byte t deadline with
        | Error Closed when digits > 0 ->
            Error (Failed "connection closed inside frame length")
        | Error _ as e -> e
        | Ok '\n' ->
            if digits = 0 then Error (Failed "empty frame length") else Ok acc
        | Ok ('0' .. '9' as c) ->
            len ((acc * 10) + (Char.code c - 48)) (digits + 1)
        | Ok c -> Error (Failed (Fmt.str "invalid byte %C in frame length" c))
    in
    let* n = len 0 0 in
    if n > max_frame_bytes then
      Error (Failed (Fmt.str "frame of %d bytes exceeds limit" n))
    else
      match read_exact t n deadline with
      | Error Closed -> Error (Failed "connection closed inside frame payload")
      | r -> r

  let write_raw ?deadline t s =
    let n = String.length s in
    let rec go off =
      if off = n then Ok ()
      else
        let* () = wait ~read:false t deadline in
        match Unix.write_substring t.fd s off (n - off) with
        | written -> go (off + written)
        | exception
            Unix.Unix_error
              ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
          ->
            go off
        | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
            Error Closed
        | exception Unix.Unix_error (e, _, _) ->
            Error (Failed (Unix.error_message e))
    in
    go 0

  let write_frame ?deadline t payload =
    write_raw ?deadline t (encode_frame payload)
end

(* --- sexp helpers ------------------------------------------------------ *)

let field name body = Sexp.list (Sexp.atom name :: body)
let int_field name i = field name [ Sexp.atom (string_of_int i) ]
let str_field name s = field name [ Sexp.atom s ]

let assoc name = function
  | Sexp.List items ->
      List.find_map
        (function
          | Sexp.List (Sexp.Atom tag :: body) when String.equal tag name ->
              Some body
          | _ -> None)
        items
  | Sexp.Atom _ -> None

let get_int name sexp =
  match assoc name sexp with
  | Some [ Sexp.Atom v ] -> (
      match int_of_string_opt v with
      | Some i -> Ok i
      | None -> err "field %s: not an integer (%s)" name v)
  | Some _ -> err "field %s: malformed" name
  | None -> err "missing field %s" name

let get_str name sexp =
  match assoc name sexp with
  | Some [ Sexp.Atom v ] -> Ok v
  | Some _ -> err "field %s: malformed" name
  | None -> err "missing field %s" name

let get_str_opt name sexp =
  match assoc name sexp with
  | Some [ Sexp.Atom v ] -> Ok (Some v)
  | Some _ -> err "field %s: malformed" name
  | None -> Ok None

let get_one name sexp =
  match assoc name sexp with
  | Some [ v ] -> Ok v
  | Some _ -> err "field %s: expected one value" name
  | None -> err "missing field %s" name

(* --- handshake --------------------------------------------------------- *)

type hello = { protocol : int; client : string }

type welcome =
  | Welcome of { protocol : int; server : string }
  | Rejected of { expected : int; got : int; message : string }
  | Busy of { max_clients : int; message : string }

let hello_to_string h =
  Sexp.to_string
    (Sexp.list
       [
         Sexp.atom "hello";
         int_field "protocol" h.protocol;
         str_field "client" h.client;
       ])

let hello_of_string s =
  let* sexp = Sexp.of_string s in
  match sexp with
  | Sexp.List (Sexp.Atom "hello" :: _) ->
      let* protocol = get_int "protocol" sexp in
      let* client = get_str "client" sexp in
      Ok { protocol; client }
  | _ -> err "expected (hello ...), got %s" (Sexp.to_string sexp)

let welcome_to_string = function
  | Welcome w ->
      Sexp.to_string
        (Sexp.list
           [
             Sexp.atom "welcome";
             int_field "protocol" w.protocol;
             str_field "server" w.server;
           ])
  | Rejected r ->
      Sexp.to_string
        (Sexp.list
           [
             Sexp.atom "reject";
             int_field "expected" r.expected;
             int_field "got" r.got;
             str_field "message" r.message;
           ])
  | Busy b ->
      Sexp.to_string
        (Sexp.list
           [
             Sexp.atom "busy";
             int_field "max-clients" b.max_clients;
             str_field "message" b.message;
           ])

let welcome_of_string s =
  let* sexp = Sexp.of_string s in
  match sexp with
  | Sexp.List (Sexp.Atom "welcome" :: _) ->
      let* protocol = get_int "protocol" sexp in
      let* server = get_str "server" sexp in
      Ok (Welcome { protocol; server })
  | Sexp.List (Sexp.Atom "reject" :: _) ->
      let* expected = get_int "expected" sexp in
      let* got = get_int "got" sexp in
      let* message = get_str "message" sexp in
      Ok (Rejected { expected; got; message })
  | Sexp.List (Sexp.Atom "busy" :: _) ->
      let* max_clients = get_int "max-clients" sexp in
      let* message = get_str "message" sexp in
      Ok (Busy { max_clients; message })
  | _ ->
      err "expected (welcome ...), (reject ...) or (busy ...), got %s"
        (Sexp.to_string sexp)

(* --- requests ---------------------------------------------------------- *)

type check_options = {
  family : string option;
  namespace : string option;
  jobs : int option;
  keep_going : bool;
}

let default_options =
  { family = None; namespace = None; jobs = None; keep_going = false }

type batch_instance = { gs : Sexp.t; gd : Sexp.t; relation : Sexp.t }

type request =
  | Ping
  | Describe
  | Check of {
      options : check_options;
      gs : Sexp.t;
      gd : Sexp.t;
      relation : Sexp.t;
    }
  | Check_batch of { options : check_options; instances : batch_instance list }
  | Cert_fetch of {
      options : check_options;
      gs : Sexp.t;
      gd : Sexp.t;
      relation : Sexp.t;
      env : (string * int) list;
    }
  | Cert_push of { bundle : string }
  | Cache_stats
  | Cache_clear
  | Server_stats
  | Shutdown

let options_to_sexp o =
  field "options"
    (List.concat
       [
         (match o.family with Some f -> [ str_field "family" f ] | None -> []);
         (match o.namespace with
         | Some ns -> [ str_field "namespace" ns ]
         | None -> []);
         (match o.jobs with Some j -> [ int_field "jobs" j ] | None -> []);
         (if o.keep_going then [ Sexp.atom "keep-going" ] else []);
       ])

let options_of_sexp sexp =
  match assoc "options" sexp with
  | None -> Ok default_options
  | Some body ->
      let o = Sexp.list body in
      let* family = get_str_opt "family" o in
      let* namespace = get_str_opt "namespace" o in
      let* jobs =
        match assoc "jobs" o with
        | None -> Ok None
        | Some [ Sexp.Atom v ] -> (
            match int_of_string_opt v with
            | Some j -> Ok (Some j)
            | None -> err "field jobs: not an integer (%s)" v)
        | Some _ -> Error "field jobs: malformed"
      in
      let keep_going =
        List.exists (function Sexp.Atom "keep-going" -> true | _ -> false) body
      in
      Ok { family; namespace; jobs; keep_going }

let request_body_to_sexp = function
  | Ping -> Sexp.list [ Sexp.atom "ping" ]
  | Describe -> Sexp.list [ Sexp.atom "describe" ]
  | Cache_stats -> Sexp.list [ Sexp.atom "cache-stats" ]
  | Cache_clear -> Sexp.list [ Sexp.atom "cache-clear" ]
  | Server_stats -> Sexp.list [ Sexp.atom "server-stats" ]
  | Shutdown -> Sexp.list [ Sexp.atom "shutdown" ]
  | Check { options; gs; gd; relation } ->
      Sexp.list
        [
          Sexp.atom "check";
          options_to_sexp options;
          field "gs" [ gs ];
          field "gd" [ gd ];
          field "relation" [ relation ];
        ]
  | Check_batch { options; instances } ->
      Sexp.list
        [
          Sexp.atom "check-batch";
          options_to_sexp options;
          field "instances"
            (List.map
               (fun i ->
                 Sexp.list
                   [
                     Sexp.atom "instance";
                     field "gs" [ i.gs ];
                     field "gd" [ i.gd ];
                     field "relation" [ i.relation ];
                   ])
               instances);
        ]
  | Cert_fetch { options; gs; gd; relation; env } ->
      Sexp.list
        [
          Sexp.atom "cert-fetch";
          options_to_sexp options;
          field "gs" [ gs ];
          field "gd" [ gd ];
          field "relation" [ relation ];
          field "env"
            (List.map
               (fun (s, v) ->
                 Sexp.list [ Sexp.atom s; Sexp.atom (string_of_int v) ])
               env);
        ]
  | Cert_push { bundle } ->
      Sexp.list [ Sexp.atom "cert-push"; str_field "bundle" bundle ]

let request_to_string ~id req =
  Sexp.to_string
    (Sexp.list
       [ Sexp.atom "request"; int_field "id" id; request_body_to_sexp req ])

let request_body_of_sexp sexp =
  match sexp with
  | Sexp.List (Sexp.Atom "ping" :: _) -> Ok Ping
  | Sexp.List (Sexp.Atom "describe" :: _) -> Ok Describe
  | Sexp.List (Sexp.Atom "cache-stats" :: _) -> Ok Cache_stats
  | Sexp.List (Sexp.Atom "cache-clear" :: _) -> Ok Cache_clear
  | Sexp.List (Sexp.Atom "server-stats" :: _) -> Ok Server_stats
  | Sexp.List (Sexp.Atom "shutdown" :: _) -> Ok Shutdown
  | Sexp.List (Sexp.Atom "check" :: _) ->
      let* options = options_of_sexp sexp in
      let* gs = get_one "gs" sexp in
      let* gd = get_one "gd" sexp in
      let* relation = get_one "relation" sexp in
      Ok (Check { options; gs; gd; relation })
  | Sexp.List (Sexp.Atom "check-batch" :: _) ->
      let* options = options_of_sexp sexp in
      let* instances =
        match assoc "instances" sexp with
        | None -> Error "missing field instances"
        | Some body ->
            List.fold_left
              (fun acc item ->
                let* acc = acc in
                match item with
                | Sexp.List (Sexp.Atom "instance" :: _) ->
                    let* gs = get_one "gs" item in
                    let* gd = get_one "gd" item in
                    let* relation = get_one "relation" item in
                    Ok ({ gs; gd; relation } :: acc)
                | s -> err "instances: malformed %s" (Sexp.to_string s))
              (Ok []) body
            |> Result.map List.rev
      in
      Ok (Check_batch { options; instances })
  | Sexp.List (Sexp.Atom "cert-fetch" :: _) ->
      let* options = options_of_sexp sexp in
      let* gs = get_one "gs" sexp in
      let* gd = get_one "gd" sexp in
      let* relation = get_one "relation" sexp in
      let* env =
        match assoc "env" sexp with
        | None -> Error "missing field env"
        | Some body ->
            List.fold_left
              (fun acc item ->
                let* acc = acc in
                match item with
                | Sexp.List [ Sexp.Atom s; Sexp.Atom v ] -> (
                    match int_of_string_opt v with
                    | Some n -> Ok ((s, n) :: acc)
                    | None -> err "env: bad value %s for %s" v s)
                | s -> err "env: malformed %s" (Sexp.to_string s))
              (Ok []) body
            |> Result.map List.rev
      in
      Ok (Cert_fetch { options; gs; gd; relation; env })
  | Sexp.List (Sexp.Atom "cert-push" :: _) ->
      let* bundle = get_str "bundle" sexp in
      Ok (Cert_push { bundle })
  | s -> err "unknown request %s" (Sexp.to_string s)

let request_of_string s =
  let* sexp = Sexp.of_string s in
  match sexp with
  | Sexp.List [ Sexp.Atom "request"; _; body ] ->
      let* id = get_int "id" sexp in
      let* req = request_body_of_sexp body in
      Ok (id, req)
  | _ -> err "expected (request (id n) body), got %s" (Sexp.to_string sexp)

(* --- responses --------------------------------------------------------- *)

type error_code = Bad_request | Server_internal

let error_exit_code = function Bad_request -> 124 | Server_internal -> 3

let error_code_to_string = function
  | Bad_request -> "bad-request"
  | Server_internal -> "internal"

let error_code_of_string = function
  | "bad-request" -> Ok Bad_request
  | "internal" -> Ok Server_internal
  | s -> err "unknown error code %s" s

type check_reply = {
  exit_code : int;
  verdict : string;
  report : string;
  output_relation : Sexp.t option;
  stats : Refine.stats;
}

type cache_stats_reply = {
  dir : string;
  entries : int;
  bytes : int;
  shards : int;
  quarantined : int;
  max_bytes : int option;
  max_age_s : float option;
  evicted_entries : int;
  evicted_bytes : int;
  expired_entries : int;
}

type server_stats = {
  accepted : int;
  active : int;
  served : int;
  rejected_busy : int;
  timed_out : int;
  drained : int;
  accept_failures : int;
  max_clients : int;
}

type cert_verdict = {
  accepted : bool;
  cert_id : string option;
  cert_code : string option;
  cert_detail : string;
}

type response =
  | Pong
  | Described of string
  | Checked of check_reply
  | Cache_stats_reply of cache_stats_reply
  | Cache_cleared of int
  | Server_stats_reply of server_stats
  | Batch_item of { index : int; body : response }
  | Batch_done of { count : int }
  | Cert_bundle of { bundle : string }
  | Cert_verdict_reply of cert_verdict
  | Bye
  | Error_reply of { code : error_code; message : string }

(* Statistics cross the wire losslessly: integers verbatim, the wall
   clock as a hex float (read back bit-exact by [float_of_string]). *)
let stats_to_sexp (s : Refine.stats) =
  Sexp.list
    [
      Sexp.atom "stats";
      int_field "operators" s.Refine.operators_processed;
      int_field "iterations" s.Refine.saturation_iterations;
      int_field "nodes-peak" s.Refine.egraph_nodes_peak;
      int_field "classes-peak" s.Refine.egraph_classes_peak;
      int_field "matches" s.Refine.matches_examined;
      int_field "unions" s.Refine.unions_applied;
      int_field "retries" s.Refine.retries;
      int_field "budget-trips" s.Refine.budget_trips;
      int_field "cache-hits" s.Refine.cache_hits;
      int_field "cache-misses" s.Refine.cache_misses;
      int_field "cache-replays-failed" s.Refine.cache_replays_failed;
      str_field "wall" (Printf.sprintf "%h" s.Refine.wall_time_s);
      field "rule-hits"
        (List.map
           (fun (rule, hits) ->
             Sexp.list [ Sexp.atom rule; Sexp.atom (string_of_int hits) ])
           s.Refine.rule_hits);
    ]

let stats_of_sexp sexp =
  match sexp with
  | Sexp.List (Sexp.Atom "stats" :: _) ->
      let* operators_processed = get_int "operators" sexp in
      let* saturation_iterations = get_int "iterations" sexp in
      let* egraph_nodes_peak = get_int "nodes-peak" sexp in
      let* egraph_classes_peak = get_int "classes-peak" sexp in
      let* matches_examined = get_int "matches" sexp in
      let* unions_applied = get_int "unions" sexp in
      let* retries = get_int "retries" sexp in
      let* budget_trips = get_int "budget-trips" sexp in
      let* cache_hits = get_int "cache-hits" sexp in
      let* cache_misses = get_int "cache-misses" sexp in
      let* cache_replays_failed = get_int "cache-replays-failed" sexp in
      let* wall = get_str "wall" sexp in
      let* wall_time_s =
        match float_of_string_opt wall with
        | Some f -> Ok f
        | None -> err "field wall: not a float (%s)" wall
      in
      let* rule_hits =
        match assoc "rule-hits" sexp with
        | None -> Error "missing field rule-hits"
        | Some body ->
            List.fold_left
              (fun acc item ->
                let* acc = acc in
                match item with
                | Sexp.List [ Sexp.Atom rule; Sexp.Atom hits ] -> (
                    match int_of_string_opt hits with
                    | Some h -> Ok ((rule, h) :: acc)
                    | None -> err "rule-hits: bad count %s" hits)
                | s -> err "rule-hits: malformed %s" (Sexp.to_string s))
              (Ok []) body
            |> Result.map List.rev
      in
      Ok
        {
          Refine.operators_processed;
          saturation_iterations;
          egraph_nodes_peak;
          egraph_classes_peak;
          matches_examined;
          unions_applied;
          rule_hits;
          retries;
          budget_trips;
          cache_hits;
          cache_misses;
          cache_replays_failed;
          wall_time_s;
        }
  | s -> err "expected (stats ...), got %s" (Sexp.to_string s)

let opt_int_field name = function
  | Some i -> [ int_field name i ]
  | None -> []

let get_int_opt name sexp =
  match assoc name sexp with
  | None -> Ok None
  | Some [ Sexp.Atom v ] -> (
      match int_of_string_opt v with
      | Some i -> Ok (Some i)
      | None -> err "field %s: not an integer (%s)" name v)
  | Some _ -> err "field %s: malformed" name

let rec response_body_to_sexp = function
  | Pong -> Sexp.list [ Sexp.atom "pong" ]
  | Bye -> Sexp.list [ Sexp.atom "bye" ]
  | Described json -> Sexp.list [ Sexp.atom "described"; Sexp.atom json ]
  | Cache_cleared n ->
      Sexp.list [ Sexp.atom "cleared"; Sexp.atom (string_of_int n) ]
  | Error_reply { code; message } ->
      Sexp.list
        [
          Sexp.atom "error";
          str_field "code" (error_code_to_string code);
          str_field "message" message;
        ]
  | Cache_stats_reply r ->
      Sexp.list
        (List.concat
           [
             [
               Sexp.atom "cache-stats";
               str_field "dir" r.dir;
               int_field "entries" r.entries;
               int_field "bytes" r.bytes;
               int_field "shards" r.shards;
               int_field "quarantined" r.quarantined;
             ];
             opt_int_field "max-bytes" r.max_bytes;
             (match r.max_age_s with
             | Some a -> [ str_field "max-age-s" (Printf.sprintf "%h" a) ]
             | None -> []);
             [
               int_field "evicted-entries" r.evicted_entries;
               int_field "evicted-bytes" r.evicted_bytes;
               int_field "expired-entries" r.expired_entries;
             ];
           ])
  | Checked r ->
      Sexp.list
        (List.concat
           [
             [
               Sexp.atom "result";
               int_field "exit" r.exit_code;
               str_field "verdict" r.verdict;
               str_field "report" r.report;
               stats_to_sexp r.stats;
             ];
             (match r.output_relation with
             | Some rel -> [ field "output-relation" [ rel ] ]
             | None -> []);
           ])
  | Server_stats_reply s ->
      Sexp.list
        [
          Sexp.atom "server-stats";
          int_field "accepted" s.accepted;
          int_field "active" s.active;
          int_field "served" s.served;
          int_field "rejected-busy" s.rejected_busy;
          int_field "timed-out" s.timed_out;
          int_field "drained" s.drained;
          int_field "accept-failures" s.accept_failures;
          int_field "max-clients" s.max_clients;
        ]
  | Batch_item { index; body } ->
      Sexp.list
        [
          Sexp.atom "batch-item";
          int_field "index" index;
          response_body_to_sexp body;
        ]
  | Batch_done { count } ->
      Sexp.list [ Sexp.atom "batch-done"; int_field "count" count ]
  | Cert_bundle { bundle } ->
      Sexp.list [ Sexp.atom "cert-bundle"; str_field "bundle" bundle ]
  | Cert_verdict_reply v ->
      Sexp.list
        (List.concat
           [
             [
               Sexp.atom "cert-verdict";
               str_field "accepted" (string_of_bool v.accepted);
             ];
             (match v.cert_id with Some i -> [ str_field "id" i ] | None -> []);
             (match v.cert_code with
             | Some c -> [ str_field "code" c ]
             | None -> []);
             [ str_field "detail" v.cert_detail ];
           ])

let response_to_string ~id resp =
  Sexp.to_string
    (Sexp.list
       [ Sexp.atom "response"; int_field "id" id; response_body_to_sexp resp ])

let rec response_body_of_sexp sexp =
  match sexp with
  | Sexp.List (Sexp.Atom "pong" :: _) -> Ok Pong
  | Sexp.List (Sexp.Atom "bye" :: _) -> Ok Bye
  | Sexp.List [ Sexp.Atom "described"; Sexp.Atom json ] -> Ok (Described json)
  | Sexp.List [ Sexp.Atom "cleared"; Sexp.Atom n ] -> (
      match int_of_string_opt n with
      | Some n -> Ok (Cache_cleared n)
      | None -> err "cleared: bad count %s" n)
  | Sexp.List (Sexp.Atom "error" :: _) ->
      let* code = get_str "code" sexp in
      let* code = error_code_of_string code in
      let* message = get_str "message" sexp in
      Ok (Error_reply { code; message })
  | Sexp.List (Sexp.Atom "cache-stats" :: _) ->
      let* dir = get_str "dir" sexp in
      let* entries = get_int "entries" sexp in
      let* bytes = get_int "bytes" sexp in
      let* shards = get_int "shards" sexp in
      let* quarantined = get_int "quarantined" sexp in
      let* max_bytes = get_int_opt "max-bytes" sexp in
      let* max_age_s =
        match assoc "max-age-s" sexp with
        | None -> Ok None
        | Some [ Sexp.Atom v ] -> (
            match float_of_string_opt v with
            | Some f -> Ok (Some f)
            | None -> err "field max-age-s: not a float (%s)" v)
        | Some _ -> Error "field max-age-s: malformed"
      in
      let* evicted_entries = get_int "evicted-entries" sexp in
      let* evicted_bytes = get_int "evicted-bytes" sexp in
      let* expired_entries = get_int "expired-entries" sexp in
      Ok
        (Cache_stats_reply
           {
             dir;
             entries;
             bytes;
             shards;
             quarantined;
             max_bytes;
             max_age_s;
             evicted_entries;
             evicted_bytes;
             expired_entries;
           })
  | Sexp.List (Sexp.Atom "result" :: _) ->
      let* exit_code = get_int "exit" sexp in
      let* verdict = get_str "verdict" sexp in
      let* report = get_str "report" sexp in
      (* [stats_to_sexp] tags the list with a leading atom, so the
         field lookup strips (stats ...) down to its body; rewrap. *)
      let* stats =
        match assoc "stats" sexp with
        | Some body -> stats_of_sexp (Sexp.list (Sexp.atom "stats" :: body))
        | None -> Error "missing field stats"
      in
      let* output_relation =
        match assoc "output-relation" sexp with
        | None -> Ok None
        | Some [ rel ] -> Ok (Some rel)
        | Some _ -> Error "field output-relation: malformed"
      in
      Ok (Checked { exit_code; verdict; report; output_relation; stats })
  | Sexp.List (Sexp.Atom "server-stats" :: _) ->
      let* accepted = get_int "accepted" sexp in
      let* active = get_int "active" sexp in
      let* served = get_int "served" sexp in
      let* rejected_busy = get_int "rejected-busy" sexp in
      let* timed_out = get_int "timed-out" sexp in
      let* drained = get_int "drained" sexp in
      let* accept_failures = get_int "accept-failures" sexp in
      let* max_clients = get_int "max-clients" sexp in
      Ok
        (Server_stats_reply
           {
             accepted;
             active;
             served;
             rejected_busy;
             timed_out;
             drained;
             accept_failures;
             max_clients;
           })
  | Sexp.List [ Sexp.Atom "batch-item"; _; body ] ->
      let* index = get_int "index" sexp in
      let* body = response_body_of_sexp body in
      Ok (Batch_item { index; body })
  | Sexp.List (Sexp.Atom "batch-done" :: _) ->
      let* count = get_int "count" sexp in
      Ok (Batch_done { count })
  | Sexp.List (Sexp.Atom "cert-bundle" :: _) ->
      let* bundle = get_str "bundle" sexp in
      Ok (Cert_bundle { bundle })
  | Sexp.List (Sexp.Atom "cert-verdict" :: _) ->
      let* accepted = get_str "accepted" sexp in
      let* accepted =
        match bool_of_string_opt accepted with
        | Some b -> Ok b
        | None -> err "field accepted: not a bool (%s)" accepted
      in
      let* cert_id = get_str_opt "id" sexp in
      let* cert_code = get_str_opt "code" sexp in
      let* cert_detail = get_str "detail" sexp in
      Ok (Cert_verdict_reply { accepted; cert_id; cert_code; cert_detail })
  | s -> err "unknown response %s" (Sexp.to_string s)

let response_of_string s =
  let* sexp = Sexp.of_string s in
  match sexp with
  | Sexp.List [ Sexp.Atom "response"; _; body ] ->
      let* id = get_int "id" sexp in
      let* resp = response_body_of_sexp body in
      Ok (id, resp)
  | _ -> err "expected (response (id n) body), got %s" (Sexp.to_string sexp)

(* --- introspection ----------------------------------------------------- *)

let describe_json ~server =
  let module J = Entangle_trace.Jsonw in
  J.envelope ~name:"serve" ~version:1
    [
      ("protocol", J.Int protocol_version);
      ("server", J.Str server);
      ( "requests",
        J.Arr
          (List.map
             (fun s -> J.Str s)
             [
               "ping";
               "describe";
               "check";
               "check-batch";
               "cert-fetch";
               "cert-push";
               "cache-stats";
               "cache-clear";
               "server-stats";
               "shutdown";
             ]) );
      ( "check_options",
        J.Arr
          (List.map
             (fun s -> J.Str s)
             [ "family"; "namespace"; "jobs"; "keep-going" ]) );
    ]
