(** Client side of the resident checker service.

    [connect] dials the daemon's Unix-domain socket and performs the
    version handshake; every failure is a structured {!error} whose
    {!error_kind} says whether retrying can help ([Refused], [Busy]
    and [Timed_out] are transient; [Rejected] — a protocol-version
    mismatch — is permanent). The per-request helpers return the typed
    {!Protocol.response}; [Error _] throughout means a transport or
    protocol failure — application-level failures arrive as
    {!Protocol.Error_reply} values (or, from the flattening helpers,
    an [App]-kind error) so callers can map them onto the CLI
    exit-code convention.

    {!call} is the one-shot form with the retry ladder: capped
    exponential backoff with deterministic seeded jitter, redialing on
    transient failures. A request that may already have been executed
    is only retried when it is idempotent — [Cache_clear] and
    [Shutdown] are never retried once sent. *)

type error_kind =
  | Refused  (** nobody listening: connection refused or socket absent *)
  | Busy  (** the daemon's structured admission rejection, or a full backlog *)
  | Rejected  (** protocol-version rejection — permanent, never retried *)
  | Timed_out  (** an I/O deadline ([timeout_s]) expired *)
  | Closed  (** the peer hung up *)
  | Protocol_error  (** malformed frame, reply, or id mismatch *)
  | App  (** the daemon's own [Error_reply], flattened by a helper *)

type error = {
  kind : error_kind;
  message : string;
  attempts : int;  (** how many attempts {!call} made (1 from helpers) *)
}

val error_message : error -> string
val kind_name : error_kind -> string

type t

val connect :
  ?client:string ->
  ?timeout_s:float ->
  socket:string ->
  unit ->
  (t, error) result
(** Dial and handshake. [client] is the identity sent in the hello
    (default ["entangle"]). [timeout_s], when given, bounds the
    connect, the handshake, and every subsequent frame read/write on
    this connection. *)

val close : t -> unit
(** Idempotent. *)

val request : t -> Protocol.request -> (Protocol.response, error) result
(** Send one request and read its response; ids are assigned and
    checked internally. Not for [Check_batch] — use {!check_batch},
    which consumes the whole response stream. *)

val send : t -> Protocol.request -> (int, error) result
(** Write one request frame without waiting for the response; returns
    the assigned request id. The pipelining primitive — pair with
    {!read_response}. *)

val read_response : t -> id:int -> (Protocol.response, error) result
(** Read the next response frame and check it answers [id]. The server
    answers strictly in request order, so responses to pipelined
    requests must be read in the order the requests were sent. *)

val pipeline :
  t -> Protocol.request list -> (Protocol.response list, error) result
(** Write the request frames back-to-back and read the responses in
    request order — one round trip's latency for the whole batch
    instead of one per request. The number of unanswered requests in
    flight is bounded (16 frames / 256 KiB of request bytes): past the
    bound the oldest response is drained before the next frame is
    written, so a large batch cannot fill the kernel socket buffers in
    both directions and wedge client and server in [write] against
    each other. Rejects [Check_batch] (its multi-frame response stream
    would desynchronize the one-frame-per-request accounting); use
    {!check_batch} for that. *)

val ping : t -> (unit, error) result
val describe : t -> (string, error) result

val check :
  t ->
  ?options:Protocol.check_options ->
  gs:Entangle_ir.Sexp.t ->
  gd:Entangle_ir.Sexp.t ->
  relation:Entangle_ir.Sexp.t ->
  unit ->
  (Protocol.response, error) result
(** [Ok (Checked _)] or [Ok (Error_reply _)] in the usual case. *)

val check_batch :
  t ->
  ?options:Protocol.check_options ->
  instances:Protocol.batch_instance list ->
  unit ->
  (Protocol.response list, error) result
(** Send one [Check_batch] and collect the streamed per-instance
    responses, verifying index order and the final count. The returned
    list is in instance order; each element is a full per-check
    response ([Checked _] or [Error_reply _]). *)

val cert_fetch :
  t ->
  ?options:Protocol.check_options ->
  gs:Entangle_ir.Sexp.t ->
  gd:Entangle_ir.Sexp.t ->
  relation:Entangle_ir.Sexp.t ->
  env:(string * int) list ->
  unit ->
  (Protocol.response, error) result
(** Run a remote check and fetch its certificate bundle: [Ok
    (Cert_bundle _)] when the check refines, [Ok (Checked _)] with the
    ordinary verdict when it does not. The caller must re-verify the
    bundle with {!Entangle_certexport.Verify} before trusting it — the
    daemon is outside the trust boundary. *)

val cert_push : t -> bundle:string -> (Protocol.cert_verdict, error) result
(** Submit a serialized bundle for server-side minimal verification. *)

val cache_stats : t -> (Protocol.response, error) result
val cache_clear : t -> (Protocol.response, error) result
val server_stats : t -> (Protocol.response, error) result

val shutdown : t -> (unit, error) result
(** Asks the daemon to exit; [Ok ()] once the [Bye] acknowledgement
    arrives. The connection is closed either way. *)

(** {1 The retry ladder} *)

type retry = {
  retries : int;  (** additional attempts after the first *)
  timeout_s : float option;  (** per-attempt I/O deadline *)
  backoff_base_s : float;  (** first delay, doubled each retry *)
  backoff_cap_s : float;  (** ceiling on the exponential base *)
  jitter_seed : int;  (** seeds the deterministic jitter stream *)
  sleep : float -> unit;  (** injectable for tests (default sleeps) *)
}

val default_retry : retry
(** 2 retries, no deadline, 50 ms base, 2 s cap. *)

val backoff_schedule : retry -> float list
(** The exact delays {!call} will sleep between attempts, as a pure
    function of the policy: [min cap (base * 2^k)] scaled by a seeded
    jitter factor in [0.5, 1.5). Deterministic per seed — testable
    without sleeping. *)

val call :
  ?retry:retry ->
  ?client:string ->
  socket:string ->
  Protocol.request ->
  (Protocol.response, error) result
(** Dial, handshake, send [req], read the reply, close — retrying on
    transient failures per the ladder. Connect-phase failures (no
    request sent yet) always retry except [Rejected]; request-phase
    failures retry only when the request is idempotent ([Cache_clear]
    and [Shutdown] never are). The final error carries the total
    [attempts] and the {e last} failure's kind and message. *)

val raw_hello :
  socket:string -> protocol:int -> (Protocol.welcome, string) result
(** Send a hello claiming an arbitrary protocol version and return the
    server's verbatim answer — the version-negotiation test hook. The
    connection is closed before returning. *)
