(** Client side of the resident checker service.

    [connect] dials the daemon's Unix-domain socket and performs the
    version handshake; a protocol rejection comes back as a readable
    [Error] carrying the server's message. The per-request helpers
    return the typed {!Protocol.response}; [Error _] throughout means a
    {e transport or protocol} failure (the daemon unreachable, a
    malformed frame, a response id mismatch) — application-level
    failures arrive as {!Protocol.Error_reply} values so callers can
    map them onto the CLI exit-code convention. *)

type t

val connect :
  ?client:string -> socket:string -> unit -> (t, string) result
(** Dial and handshake. [client] is the identity sent in the hello
    (default ["entangle"]). *)

val close : t -> unit
(** Idempotent. *)

val request : t -> Protocol.request -> (Protocol.response, string) result
(** Send one request and read its response; ids are assigned and
    checked internally. *)

val ping : t -> (unit, string) result
val describe : t -> (string, string) result

val check :
  t ->
  ?options:Protocol.check_options ->
  gs:Entangle_ir.Sexp.t ->
  gd:Entangle_ir.Sexp.t ->
  relation:Entangle_ir.Sexp.t ->
  unit ->
  (Protocol.response, string) result
(** [Ok (Checked _)] or [Ok (Error_reply _)] in the usual case. *)

val cache_stats : t -> (Protocol.response, string) result
val cache_clear : t -> (Protocol.response, string) result

val shutdown : t -> (unit, string) result
(** Asks the daemon to exit; [Ok ()] once the [Bye] acknowledgement
    arrives. The connection is closed either way. *)

val raw_hello :
  socket:string -> protocol:int -> (Protocol.welcome, string) result
(** Send a hello claiming an arbitrary protocol version and return the
    server's verbatim answer — the version-negotiation test hook. The
    connection is closed before returning. *)
