(* Coverage tests for the reference interpreter's operator dispatch:
   every operator of the IR evaluates, with hand-checked values for the
   ones not already covered by the ndarray suite (collectives, fused and
   HLO kernels, rope, graph execution paths and error reporting). *)

open Entangle_symbolic
open Entangle_ir
module B = Graph.Builder

let check = Alcotest.check
let sd = Symdim.of_int
let env = Interp.env_of_list [ ("s", 4) ]
let nd_eq = Alcotest.testable Ndarray.pp (Ndarray.approx_equal ~tol:1e-6)
let nd l dims = Ndarray.of_list dims l

let eval op args = Interp.eval_op env op args

let op_tests =
  let a = nd [ 1.; 2.; 3.; 4. ] [ 2; 2 ] in
  let b = nd [ 10.; 20.; 30.; 40. ] [ 2; 2 ] in
  [
    Alcotest.test_case "collectives" `Quick (fun () ->
        check nd_eq "all_reduce" (Ndarray.add a b) (eval Op.All_reduce [ a; b ]);
        check nd_eq "all_gather"
          (Ndarray.concat ~dim:0 [ a; b ])
          (eval (Op.All_gather { dim = 0 }) [ a; b ]);
        check nd_eq "reduce_scatter second chunk"
          (Ndarray.slice ~dim:0 ~start:1 ~stop:2 (Ndarray.add a b))
          (eval (Op.Reduce_scatter { dim = 0; index = 1; count = 2 }) [ a; b ]));
    Alcotest.test_case "fused and hlo kernels" `Quick (fun () ->
        check nd_eq "swiglu"
          (Ndarray.mul (Ndarray.silu a) b)
          (eval Op.Swiglu_fused [ a; b ]);
        check nd_eq "hlo_dot" (Ndarray.matmul a b) (eval Op.Hlo_dot [ a; b ]);
        check nd_eq "hlo_slice"
          (Ndarray.slice ~dim:1 ~start:0 ~stop:1 a)
          (eval (Op.Hlo_slice { dim = 1; start = sd 0; stop = sd 1 }) [ a ]);
        check nd_eq "hlo_concatenate"
          (Ndarray.concat ~dim:1 [ a; b ])
          (eval (Op.Hlo_concatenate { dim = 1 }) [ a; b ]));
    Alcotest.test_case "symbolic slice bounds use the environment" `Quick
      (fun () ->
        let x = Ndarray.init [ 8 ] (fun i -> float_of_int (List.hd i)) in
        (* slice [s, 2s) with s = 4 *)
        check nd_eq "slice"
          (nd [ 4.; 5.; 6.; 7. ] [ 4 ])
          (eval
             (Op.Slice
                { dim = 0; start = Symdim.sym "s";
                  stop = Symdim.mul_int 2 (Symdim.sym "s") })
             [ x ]));
    Alcotest.test_case "scale uses exact rationals" `Quick (fun () ->
        check nd_eq "scale 3/4"
          (Ndarray.scale 0.75 a)
          (eval (Op.Scale (Rat.make 3 4)) [ a ]));
    Alcotest.test_case "unary dispatch" `Quick (fun () ->
        check nd_eq "neg" (Ndarray.scale (-1.) a) (eval Op.Neg [ a ]);
        check nd_eq "identity" a (eval Op.Identity [ a ]);
        check nd_eq "rsqrt"
          (Ndarray.map (fun v -> 1. /. sqrt v) a)
          (eval Op.Rsqrt [ a ]);
        check nd_eq "relu"
          (Ndarray.map (fun v -> Float.max 0. v) (Ndarray.sub a b))
          (eval Op.Relu [ Ndarray.sub a b ]));
    Alcotest.test_case "rope dispatch matches ndarray" `Quick (fun () ->
        let x = nd [ 1.; 2.; 3.; 4. ] [ 1; 4 ] in
        let cos = Ndarray.create [ 1; 4 ] 0.5 in
        let sin = Ndarray.create [ 1; 4 ] 0.25 in
        check nd_eq "rope" (Ndarray.rope x cos sin) (eval Op.Rope [ x; cos; sin ]));
    Alcotest.test_case "arity errors raise" `Quick (fun () ->
        check Alcotest.bool "add/1" true
          (try ignore (eval Op.Add [ a ]); false
           with Invalid_argument _ -> true));
  ]

let run_tests =
  [
    Alcotest.test_case "graph execution in order" `Quick (fun () ->
        let b = B.create "g" in
        let x = B.input b "x" [ Symdim.sym "s" ] in
        let y = B.add b Op.Neg [ x ] in
        let z = B.add b Op.Exp [ y ] in
        B.output b z;
        let g = B.finish b in
        let xv = nd [ 0.; 1.; 2.; 3. ] [ 4 ] in
        let vals = Interp.run env g ~inputs:[ (x, xv) ] in
        check nd_eq "z = exp(-x)"
          (Ndarray.map (fun v -> exp (-.v)) xv)
          (Tensor.Map.find z vals);
        check nd_eq "intermediate recorded"
          (Ndarray.map (fun v -> -.v) xv)
          (Tensor.Map.find y vals));
    Alcotest.test_case "missing input reported" `Quick (fun () ->
        let b = B.create "g" in
        let x = B.input b "x" [ sd 2 ] in
        B.output b (B.add b Op.Neg [ x ]);
        let g = B.finish b in
        check Alcotest.bool "raises" true
          (try ignore (Interp.run env g ~inputs:[]); false
           with Invalid_argument _ -> true));
    Alcotest.test_case "wrong input dims reported" `Quick (fun () ->
        let b = B.create "g" in
        let x = B.input b "x" [ sd 2 ] in
        B.output b x;
        let g = B.finish b in
        check Alcotest.bool "raises" true
          (try
             ignore (Interp.run env g ~inputs:[ (x, Ndarray.create [ 3 ] 0.) ]);
             false
           with Invalid_argument _ -> true));
    Alcotest.test_case "random_inputs respects integer dtypes" `Quick (fun () ->
        let b = B.create "g" in
        (* vocab 8 matches random_inputs' default id range [0, 8) *)
        let w = B.input b "w" [ sd 8; sd 2 ] in
        let ids = B.input b ~dtype:Dtype.I64 "ids" [ sd 3 ] in
        B.output b (B.add b Op.Embedding [ w; ids ]);
        let g = B.finish b in
        let st = Random.State.make [| 3 |] in
        let inputs = Interp.random_inputs st env g in
        let _, idv = List.find (fun (t, _) -> Tensor.equal t ids) inputs in
        check Alcotest.bool "ids integral" true
          (List.for_all
             (fun v -> Float.is_integer v && v >= 0. && v < 8.)
             (Ndarray.to_flat_list idv));
        (* and the graph runs end to end on them *)
        ignore (Interp.run env g ~inputs));
    Alcotest.test_case "eval_expr composes" `Quick (fun () ->
        let t1 = Tensor.create ~name:"t1" [ sd 2 ] in
        let t2 = Tensor.create ~name:"t2" [ sd 2 ] in
        let e =
          Expr.app Op.Sum_n
            [ Expr.leaf t1; Expr.app (Op.Scale (Rat.of_int 2)) [ Expr.leaf t2 ] ]
        in
        let lookup t =
          if Tensor.equal t t1 then nd [ 1.; 2. ] [ 2 ] else nd [ 10.; 20. ] [ 2 ]
        in
        check nd_eq "1+2*10" (nd [ 21.; 42. ] [ 2 ])
          (Interp.eval_expr env lookup e));
    Alcotest.test_case "unbound symbol reported" `Quick (fun () ->
        check Alcotest.bool "raises" true
          (try ignore (Interp.lookup (Interp.env_of_list []) "zz"); false
           with Invalid_argument _ -> true));
  ]

let suite = [ ("interp.ops", op_tests); ("interp.run", run_tests) ]
