(* Tests for the tensor IR: dtypes, shapes, operator shape/dtype
   inference, tensors, graphs, and expressions. *)

open Entangle_symbolic
open Entangle_ir

let check = Alcotest.check
let sd = Symdim.of_int
let store = Constraint_store.add_positive Constraint_store.empty "s"
let s = Symdim.sym "s"

let shape_eq = Alcotest.testable Shape.pp Shape.equal_syntactic

let infer op shapes =
  match Op.infer_shape store op shapes with
  | Ok sh -> sh
  | Error e -> Alcotest.failf "unexpected shape error: %s" e

let infer_fails op shapes =
  match Op.infer_shape store op shapes with
  | Ok sh -> Alcotest.failf "expected error, got %a" Shape.pp sh
  | Error _ -> ()

(* --- dtype -------------------------------------------------------------- *)

let dtype_tests =
  [
    Alcotest.test_case "promotion" `Quick (fun () ->
        let open Dtype in
        check Alcotest.bool "f32+f16" true (promote F32 F16 = Some F32);
        check Alcotest.bool "f16+bf16 widens" true (promote F16 BF16 = Some F32);
        check Alcotest.bool "i64+bool" true (promote I64 Bool = Some I64);
        check Alcotest.bool "bool+bool" true (promote Bool Bool = Some Bool));
    Alcotest.test_case "predicates" `Quick (fun () ->
        check Alcotest.bool "f32 float" true (Dtype.is_float Dtype.F32);
        check Alcotest.bool "i64 int" true (Dtype.is_integer Dtype.I64);
        check Alcotest.bool "bool not int" false (Dtype.is_integer Dtype.Bool));
  ]

(* --- shape -------------------------------------------------------------- *)

let shape_tests =
  [
    Alcotest.test_case "dim with negative axis" `Quick (fun () ->
        let sh = [ s; sd 4; sd 8 ] in
        check Alcotest.bool "dim -1" true (Symdim.equal (Shape.dim sh (-1)) (sd 8));
        check Alcotest.bool "dim 0" true (Symdim.equal (Shape.dim sh 0) s);
        Alcotest.check_raises "out of range"
          (Invalid_argument "Shape: axis 3 out of range for rank 3") (fun () ->
            ignore (Shape.dim sh 3)));
    Alcotest.test_case "numel" `Quick (fun () ->
        check Alcotest.bool "symbolic numel" true
          (match Shape.numel [ s; sd 4 ] with
          | Some n -> Symdim.equal n (Symdim.mul_int 4 s)
          | None -> false);
        check Alcotest.bool "two symbols not affine" true
          (Shape.numel [ s; Symdim.sym "t" ] = None));
    Alcotest.test_case "broadcast" `Quick (fun () ->
        check (Alcotest.option shape_eq) "[s;4] with [4]"
          (Some [ s; sd 4 ])
          (Shape.broadcast store [ s; sd 4 ] [ sd 4 ]);
        check (Alcotest.option shape_eq) "[s;1] with [s;4]"
          (Some [ s; sd 4 ])
          (Shape.broadcast store [ s; sd 1 ] [ s; sd 4 ]);
        check (Alcotest.option shape_eq) "incompatible" None
          (Shape.broadcast store [ sd 3 ] [ sd 4 ]));
    Alcotest.test_case "concrete" `Quick (fun () ->
        check (Alcotest.list Alcotest.int) "eval" [ 6; 4 ]
          (Shape.concrete (fun _ -> 6) [ s; sd 4 ]));
  ]

(* --- operator shape inference ------------------------------------------- *)

let op_shape_tests =
  [
    Alcotest.test_case "elementwise broadcasting" `Quick (fun () ->
        check shape_eq "add" [ s; sd 4 ] (infer Op.Add [ [ s; sd 4 ]; [ sd 4 ] ]);
        infer_fails Op.Add [ [ sd 3 ]; [ sd 4 ] ]);
    Alcotest.test_case "matmul shapes" `Quick (fun () ->
        check shape_eq "2d" [ s; sd 8 ] (infer Op.Matmul [ [ s; sd 4 ]; [ sd 4; sd 8 ] ]);
        check shape_eq "batched x 2d" [ sd 2; s; sd 8 ]
          (infer Op.Matmul [ [ sd 2; s; sd 4 ]; [ sd 4; sd 8 ] ]);
        check shape_eq "batched x batched" [ sd 2; sd 3; sd 8 ]
          (infer Op.Matmul [ [ sd 2; sd 3; sd 4 ]; [ sd 2; sd 4; sd 8 ] ]);
        infer_fails Op.Matmul [ [ s; sd 4 ]; [ sd 5; sd 8 ] ];
        infer_fails Op.Matmul [ [ sd 4 ]; [ sd 4; sd 8 ] ]);
    Alcotest.test_case "concat" `Quick (fun () ->
        check shape_eq "same dim sums" [ Symdim.mul_int 2 s; sd 4 ]
          (infer (Op.Concat { dim = 0 }) [ [ s; sd 4 ]; [ s; sd 4 ] ]);
        infer_fails (Op.Concat { dim = 0 }) [ [ s; sd 4 ]; [ s; sd 5 ] ]);
    Alcotest.test_case "slice" `Quick (fun () ->
        check shape_eq "basic" [ sd 3; sd 4 ]
          (infer (Op.Slice { dim = 0; start = sd 1; stop = sd 4 }) [ [ sd 8; sd 4 ] ]);
        check shape_eq "symbolic width" [ s; sd 4 ]
          (infer
             (Op.Slice { dim = 0; start = s; stop = Symdim.mul_int 2 s })
             [ [ Symdim.mul_int 2 s; sd 4 ] ]);
        infer_fails (Op.Slice { dim = 0; start = sd 5; stop = sd 3 }) [ [ sd 8 ] ];
        infer_fails (Op.Slice { dim = 0; start = sd 0; stop = sd 9 }) [ [ sd 8 ] ]);
    Alcotest.test_case "transpose / reshape / pad" `Quick (fun () ->
        check shape_eq "transpose" [ sd 4; s ]
          (infer (Op.Transpose { dim0 = 0; dim1 = 1 }) [ [ s; sd 4 ] ]);
        check shape_eq "reshape" [ sd 2; sd 6 ]
          (infer (Op.Reshape { shape = [ sd 2; sd 6 ] }) [ [ sd 3; sd 4 ] ]);
        infer_fails (Op.Reshape { shape = [ sd 5 ] }) [ [ sd 3; sd 4 ] ];
        check shape_eq "pad" [ Symdim.add s (sd 3); sd 4 ]
          (infer (Op.Pad { dim = 0; before = sd 1; after = sd 2 }) [ [ s; sd 4 ] ]));
    Alcotest.test_case "reductions" `Quick (fun () ->
        check shape_eq "keepdim" [ s; sd 1 ]
          (infer (Op.Reduce_sum { dim = 1; keepdim = true }) [ [ s; sd 4 ] ]);
        check shape_eq "dropdim" [ sd 4 ]
          (infer (Op.Reduce_mean { dim = 0; keepdim = false }) [ [ s; sd 4 ] ]));
    Alcotest.test_case "collectives" `Quick (fun () ->
        check shape_eq "all_reduce" [ s; sd 4 ]
          (infer Op.All_reduce [ [ s; sd 4 ]; [ s; sd 4 ] ]);
        check shape_eq "all_gather" [ Symdim.mul_int 2 s; sd 4 ]
          (infer (Op.All_gather { dim = 0 }) [ [ s; sd 4 ]; [ s; sd 4 ] ]);
        check shape_eq "reduce_scatter" [ s; sd 4 ]
          (infer
             (Op.Reduce_scatter { dim = 0; index = 1; count = 2 })
             [ [ Symdim.mul_int 2 s; sd 4 ]; [ Symdim.mul_int 2 s; sd 4 ] ]);
        infer_fails (Op.Reduce_scatter { dim = 0; index = 2; count = 2 })
          [ [ s; sd 4 ] ]);
    Alcotest.test_case "nn kernels" `Quick (fun () ->
        check shape_eq "layernorm" [ s; sd 4 ]
          (infer (Op.Layernorm { eps = 1e-5 }) [ [ s; sd 4 ]; [ sd 4 ]; [ sd 4 ] ]);
        infer_fails (Op.Layernorm { eps = 1e-5 }) [ [ s; sd 4 ]; [ sd 3 ]; [ sd 4 ] ];
        check shape_eq "rmsnorm" [ s; sd 4 ]
          (infer (Op.Rmsnorm { eps = 1e-5 }) [ [ s; sd 4 ]; [ sd 4 ] ]);
        check shape_eq "embedding" [ s; sd 8 ]
          (infer Op.Embedding [ [ sd 100; sd 8 ]; [ s ] ]);
        check shape_eq "rope" [ s; sd 8 ]
          (infer Op.Rope [ [ s; sd 8 ]; [ s; sd 8 ]; [ s; sd 8 ] ]);
        check shape_eq "mse scalar" [] (infer Op.Mse_loss [ [ s; sd 1 ]; [ s; sd 1 ] ]);
        check shape_eq "cross entropy" []
          (infer Op.Cross_entropy [ [ s; sd 16 ]; [ s ] ]));
    Alcotest.test_case "arity checking" `Quick (fun () ->
        infer_fails Op.Add [ [ sd 4 ] ];
        infer_fails Op.Neg [ [ sd 4 ]; [ sd 4 ] ];
        check Alcotest.bool "variadic ok" true (Op.arity_ok Op.Sum_n 5);
        check Alcotest.bool "variadic min" false (Op.arity_ok Op.Sum_n 0));
    Alcotest.test_case "dtype inference" `Quick (fun () ->
        check Alcotest.bool "embedding needs int ids" true
          (Op.infer_dtype Op.Embedding [ Dtype.F32; Dtype.F32 ] |> Result.is_error);
        check Alcotest.bool "embedding ok" true
          (Op.infer_dtype Op.Embedding [ Dtype.F32; Dtype.I64 ] = Ok Dtype.F32));
  ]

(* --- operator identity --------------------------------------------------- *)

let op_identity_tests =
  [
    Alcotest.test_case "key distinguishes attributes" `Quick (fun () ->
        check Alcotest.bool "concat dims" false
          (Op.equal (Op.Concat { dim = 0 }) (Op.Concat { dim = 1 }));
        check Alcotest.bool "slice bounds" false
          (Op.equal
             (Op.Slice { dim = 0; start = sd 0; stop = sd 1 })
             (Op.Slice { dim = 0; start = sd 0; stop = sd 2 }));
        check Alcotest.bool "same symbolic slice" true
          (Op.equal
             (Op.Slice { dim = 0; start = Symdim.add s s; stop = sd 2 })
             (Op.Slice { dim = 0; start = Symdim.mul_int 2 s; stop = sd 2 })));
    Alcotest.test_case "cleanliness classification" `Quick (fun () ->
        List.iter
          (fun op -> check Alcotest.bool (Op.name op) true (Op.is_clean op))
          [
            Op.Identity; Op.Concat { dim = 0 };
            Op.Slice { dim = 0; start = sd 0; stop = sd 1 };
            Op.Transpose { dim0 = 0; dim1 = 1 }; Op.Sum_n; Op.All_reduce;
            Op.All_gather { dim = 0 };
            Op.Reduce_scatter { dim = 0; index = 0; count = 2 };
          ];
        List.iter
          (fun op -> check Alcotest.bool (Op.name op) false (Op.is_clean op))
          [
            Op.Add; Op.Matmul; Op.Scale (Rat.make 1 2); Op.Softmax { dim = 1 };
            Op.Mse_loss; Op.Gelu; Op.Reduce_sum { dim = 0; keepdim = false };
          ]);
  ]

(* --- tensors, graphs ------------------------------------------------------ *)

let graph_tests =
  let module B = Graph.Builder in
  [
    Alcotest.test_case "tensor ids unique" `Quick (fun () ->
        let a = Tensor.create ~name:"a" [ sd 1 ] in
        let b = Tensor.create ~name:"a" [ sd 1 ] in
        check Alcotest.bool "distinct" false (Tensor.equal a b));
    Alcotest.test_case "builder infers shapes" `Quick (fun () ->
        let b = B.create "g" in
        let x = B.input b "x" [ s; sd 4 ] in
        let w = B.input b "w" [ sd 4; sd 2 ] in
        let y = B.add b Op.Matmul [ x; w ] in
        B.output b y;
        let g = B.finish b in
        check shape_eq "inferred" [ s; sd 2 ] (Tensor.shape y);
        check Alcotest.int "nodes" 1 (Graph.num_nodes g);
        check Alcotest.bool "validates" true (Graph.validate g = Ok ()));
    Alcotest.test_case "builder rejects foreign tensors" `Quick (fun () ->
        let b = B.create "g" in
        let foreign = Tensor.create ~name:"foreign" [ sd 4 ] in
        Alcotest.check_raises "foreign"
          (Invalid_argument
             "Graph.Builder.add(neg): tensor foreign:[4] is not in graph g")
          (fun () -> ignore (B.add b Op.Neg [ foreign ])));
    Alcotest.test_case "builder rejects shape errors" `Quick (fun () ->
        let b = B.create "g" in
        let x = B.input b "x" [ sd 3 ] in
        let y = B.input b "y" [ sd 4 ] in
        check Alcotest.bool "raises" true
          (try ignore (B.add b Op.Add [ x; y ]); false
           with Invalid_argument _ -> true));
    Alcotest.test_case "producer and consumers" `Quick (fun () ->
        let b = B.create "g" in
        let x = B.input b "x" [ sd 4 ] in
        let y = B.add b Op.Neg [ x ] in
        let z = B.add b Op.Exp [ y ] in
        B.output b z;
        let g = B.finish b in
        check Alcotest.bool "input has no producer" true (Graph.producer g x = None);
        check Alcotest.bool "y produced by neg" true
          (match Graph.producer g y with
          | Some n -> Op.equal (Node.op n) Op.Neg
          | None -> false);
        check Alcotest.int "x consumed once" 1 (List.length (Graph.consumers g x));
        check Alcotest.bool "is_output" true (Graph.is_output g z));
    Alcotest.test_case "append_expr" `Quick (fun () ->
        let b = B.create "g" in
        let x = B.input b "x" [ sd 4 ] in
        let y = B.add b Op.Neg [ x ] in
        B.output b y;
        let g = B.finish b in
        match Graph.append_expr g (Expr.app Op.Exp [ Expr.leaf y ]) with
        | Error e -> Alcotest.failf "append failed: %s" e
        | Ok (g', t) ->
            check Alcotest.int "one more node" 2 (Graph.num_nodes g');
            check Alcotest.bool "new output" true (Graph.is_output g' t);
            check Alcotest.bool "validates" true (Graph.validate g' = Ok ()));
    Alcotest.test_case "append_expr rejects foreign leaves" `Quick (fun () ->
        let b = B.create "g" in
        let x = B.input b "x" [ sd 4 ] in
        B.output b x;
        let g = B.finish b in
        let foreign = Tensor.create ~name:"zz" [ sd 4 ] in
        check Alcotest.bool "error" true
          (Result.is_error (Graph.append_expr g (Expr.leaf foreign))));
    Alcotest.test_case "with_outputs" `Quick (fun () ->
        let b = B.create "g" in
        let x = B.input b "x" [ sd 4 ] in
        let y = B.add b Op.Neg [ x ] in
        B.output b y;
        let g = B.finish b in
        (match Graph.with_outputs g [ x ] with
        | Ok g' -> check Alcotest.bool "outputs replaced" true (Graph.is_output g' x)
        | Error e -> Alcotest.fail e);
        check Alcotest.bool "foreign rejected" true
          (Result.is_error
             (Graph.with_outputs g [ Tensor.create ~name:"f" [ sd 1 ] ])));
  ]

(* --- expressions ----------------------------------------------------------- *)

let expr_tests =
  let a = Tensor.create ~name:"a" [ s; sd 4 ] in
  let b = Tensor.create ~name:"b" [ s; sd 4 ] in
  [
    Alcotest.test_case "size, depth, leaves" `Quick (fun () ->
        let e = Expr.app Op.Add [ Expr.leaf a; Expr.app Op.Neg [ Expr.leaf b ] ] in
        check Alcotest.int "size" 2 (Expr.size e);
        check Alcotest.int "depth" 2 (Expr.depth e);
        check Alcotest.int "leaves" 2 (List.length (Expr.leaves e));
        check Alcotest.bool "mem" true (Expr.mem_leaf a e));
    Alcotest.test_case "leaves dedup in order" `Quick (fun () ->
        let e = Expr.app Op.Add [ Expr.leaf a; Expr.leaf a ] in
        check Alcotest.int "dedup" 1 (List.length (Expr.leaves e)));
    Alcotest.test_case "clean predicate" `Quick (fun () ->
        let clean = Expr.app (Op.Concat { dim = 0 }) [ Expr.leaf a; Expr.leaf b ] in
        let dirty = Expr.app Op.Add [ Expr.leaf a; Expr.leaf b ] in
        check Alcotest.bool "concat clean" true (Expr.is_clean clean);
        check Alcotest.bool "add dirty" false (Expr.is_clean dirty);
        check Alcotest.bool "nested dirty" false
          (Expr.is_clean (Expr.app (Op.Concat { dim = 0 }) [ dirty; Expr.leaf b ])));
    Alcotest.test_case "subst" `Quick (fun () ->
        let e = Expr.app Op.Neg [ Expr.leaf a ] in
        let e' = Expr.subst (fun t -> if Tensor.equal t a then Some (Expr.leaf b) else None) e in
        check Alcotest.bool "substituted" true
          (Expr.equal e' (Expr.app Op.Neg [ Expr.leaf b ])));
    Alcotest.test_case "infer_shape" `Quick (fun () ->
        let e =
          Expr.app (Op.Concat { dim = 0 }) [ Expr.leaf a; Expr.leaf b ]
        in
        match Expr.infer_shape store e with
        | Ok sh -> check shape_eq "concat" [ Symdim.mul_int 2 s; sd 4 ] sh
        | Error err -> Alcotest.fail err);
    Alcotest.test_case "infer_shape propagates errors" `Quick (fun () ->
        let bad = Expr.app Op.Matmul [ Expr.leaf a; Expr.leaf b ] in
        check Alcotest.bool "error" true (Result.is_error (Expr.infer_shape store bad)));
  ]

let suite =
  [
    ("ir.dtype", dtype_tests);
    ("ir.shape", shape_tests);
    ("ir.op-shape", op_shape_tests);
    ("ir.op-identity", op_identity_tests);
    ("ir.graph", graph_tests);
    ("ir.expr", expr_tests);
  ]
