test/test_report.ml: Alcotest Dot Entangle Entangle_ir Entangle_lemmas Entangle_models Gpt Hashtbl Instance List Node Option Regression String Transformer
