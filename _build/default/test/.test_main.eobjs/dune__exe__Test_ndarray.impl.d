test/test_ndarray.ml: Alcotest Entangle_ir Float Ndarray QCheck QCheck_alcotest Random
