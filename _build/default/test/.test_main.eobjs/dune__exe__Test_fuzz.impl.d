test/test_fuzz.ml: Entangle Entangle_dist Entangle_ir Entangle_models Entangle_symbolic Expr Fmt Graph Instance Interp List Lower Ndarray Op Option QCheck QCheck_alcotest Random Serial Symdim Tensor
