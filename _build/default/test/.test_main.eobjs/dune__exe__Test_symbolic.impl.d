test/test_symbolic.ml: Alcotest Constraint_store Decide Entangle_symbolic Fmt Fun Gen List Option Printf QCheck QCheck_alcotest Rat Symdim
