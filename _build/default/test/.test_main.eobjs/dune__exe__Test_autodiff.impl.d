test/test_autodiff.ml: Alcotest Array Autodiff Entangle Entangle_ir Entangle_models Entangle_symbolic Graph Instance Interp List Ndarray Op Random Rat Shape String Symdim Tensor Train
