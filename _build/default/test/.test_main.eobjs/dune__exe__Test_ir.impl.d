test/test_ir.ml: Alcotest Constraint_store Dtype Entangle_ir Entangle_symbolic Expr Graph List Node Op Rat Result Shape Symdim Tensor
