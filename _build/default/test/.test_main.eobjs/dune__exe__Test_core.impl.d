test/test_core.ml: Alcotest Entangle Entangle_ir Entangle_symbolic Expr Graph Interp List Node Op String Symdim Tensor
