test/test_lemmas.ml: Alcotest Dtype Egraph Entangle_egraph Entangle_ir Entangle_lemmas Entangle_symbolic Expr Hashtbl Interp List Ndarray Op Option Random Rat Runner Shape Symdim Tensor
