test/test_interp.ml: Alcotest Dtype Entangle_ir Entangle_symbolic Expr Float Graph Interp List Ndarray Op Random Rat Symdim Tensor
