(* Lemma soundness tests.

   Every scenario states two expressions over concrete tensors that a
   lemma (or a short chain of lemmas) should identify. The harness
   checks two things:

   1. e-graph equivalence: after saturation with the full corpus the
      two expressions land in the same class;
   2. semantic equality: both expressions evaluate to the same values on
      several random concrete inputs, via the reference interpreter —
      so a lemma that wrongly identifies two terms fails even if its
      rewrite is internally consistent.

   Together these are the "validate the lemmas" step the paper performs
   on its Rust lemma corpus. *)

open Entangle_symbolic
open Entangle_ir
open Entangle_egraph

let sd = Symdim.of_int
let all_rules = Entangle_lemmas.Lemma.rules Entangle_lemmas.Registry.all
let t ?dtype name dims = Tensor.create ?dtype ~name (List.map sd dims)
let leaf = Expr.leaf
let app = Expr.app
let concat dim args = app (Op.Concat { dim }) args
let slice dim start stop =
  app (Op.Slice { dim; start = sd start; stop = sd stop })
let env = Interp.env_of_list []

let eval_on seed expr =
  let st = Random.State.make [| seed |] in
  let values = Hashtbl.create 8 in
  let lookup tensor =
    let key = (Tensor.id tensor :> int) in
    match Hashtbl.find_opt values key with
    | Some v -> v
    | None ->
        let dims = Shape.concrete (fun _ -> 0) (Tensor.shape tensor) in
        let v =
          if Dtype.is_integer (Tensor.dtype tensor) then
            Ndarray.random_ints st ~hi:4 dims
          else Ndarray.random st dims
        in
        Hashtbl.replace values key v;
        v
  in
  (* One shared table per seed so both expressions see the same leaves:
     the caller evaluates both under one call. *)
  fun e -> Interp.eval_expr env lookup (Option.value e ~default:expr)

let scenario_limits =
  { Runner.default_limits with Runner.max_iterations = 12; max_nodes = 4000 }

let scenario ?(skip_eval = false) name expr_a expr_b =
  Alcotest.test_case name `Quick (fun () ->
      (* e-graph equivalence *)
      let g = Egraph.create () in
      let a = Egraph.add_expr g expr_a in
      let b = Egraph.add_expr g expr_b in
      ignore (Runner.run ~limits:scenario_limits g all_rules);
      if not (Egraph.equiv g a b) then
        Alcotest.failf "expressions not identified:@.  %a@.  %a" Expr.pp expr_a
          Expr.pp expr_b;
      (* semantic equality on random data *)
      if not skip_eval then
        List.iter
          (fun seed ->
            let ev = eval_on seed expr_a in
            let va = ev (Some expr_a) and vb = ev (Some expr_b) in
            if not (Ndarray.approx_equal ~tol:1e-4 va vb) then
              Alcotest.failf "semantic mismatch (seed %d, diff %g) for %s" seed
                (Ndarray.max_abs_diff va vb) name)
          [ 1; 2; 3 ])

let negative name expr_a expr_b =
  Alcotest.test_case name `Quick (fun () ->
      let g = Egraph.create () in
      let a = Egraph.add_expr g expr_a in
      let b = Egraph.add_expr g expr_b in
      ignore (Runner.run ~limits:scenario_limits g all_rules);
      if Egraph.equiv g a b then
        Alcotest.failf "unsound identification:@.  %a@.  %a" Expr.pp expr_a
          Expr.pp expr_b)

(* --- matmul block lemmas ------------------------------------------------ *)

let matmul_tests =
  let a1 = t "a1" [ 3; 2 ] and a2 = t "a2" [ 3; 2 ] in
  let b1 = t "b1" [ 2; 5 ] and b2 = t "b2" [ 2; 5 ] in
  let c1 = t "c1" [ 4; 2 ] and c2 = t "c2" [ 4; 3 ] in
  let x = t "x" [ 3; 4 ] and y = t "y" [ 4; 5 ] in
  let a3 = t "a3" [ 3; 2 ] and b3 = t "b3" [ 2; 5 ] in
  let mm p q = app Op.Matmul [ p; q ] in
  [
    scenario "matmul-row-split"
      (mm (concat 0 [ leaf a1; leaf a2 ]) (leaf b1))
      (concat 0 [ mm (leaf a1) (leaf b1); mm (leaf a2) (leaf b1) ]);
    scenario "matmul-col-split"
      (mm (leaf x) (concat 1 [ leaf c1; leaf c2 ]))
      (concat 1 [ mm (leaf x) (leaf c1); mm (leaf x) (leaf c2) ]);
    scenario "matmul-contraction-split"
      (mm (concat 1 [ leaf a1; leaf a2 ]) (concat 0 [ leaf b1; leaf b2 ]))
      (app Op.Sum_n [ mm (leaf a1) (leaf b1); mm (leaf a2) (leaf b2) ]);
    scenario "matmul-contraction-split arity 3"
      (mm (concat 1 [ leaf a1; leaf a2; leaf a3 ])
         (concat 0 [ leaf b1; leaf b2; leaf b3 ]))
      (app Op.Sum_n
         [ mm (leaf a1) (leaf b1); mm (leaf a2) (leaf b2); mm (leaf a3) (leaf b3) ]);
    scenario "matmul-transpose"
      (app (Op.Transpose { dim0 = 0; dim1 = 1 }) [ mm (leaf x) (leaf y) ])
      (mm
         (app (Op.Transpose { dim0 = 0; dim1 = 1 }) [ leaf y ])
         (app (Op.Transpose { dim0 = 0; dim1 = 1 }) [ leaf x ]));
    negative "diagonal blocks do not equal the full product"
      (mm (concat 0 [ leaf a1; leaf a2 ]) (concat 0 [ leaf b1; leaf b2 ]))
      (concat 0 [ mm (leaf a1) (leaf b1); mm (leaf a2) (leaf b2) ]);
  ]

(* --- rearrangement lemmas ----------------------------------------------- *)

let rearrange_tests =
  let a = t "a" [ 4; 6 ] and b = t "b" [ 4; 6 ] in
  let x = t "x" [ 8; 3 ] in
  [
    scenario "slice-of-concat inside first child"
      (slice 0 1 3 [ concat 0 [ leaf a; leaf b ] ])
      (slice 0 1 3 [ leaf a ]);
    scenario "slice-of-concat inside second child"
      (slice 0 5 7 [ concat 0 [ leaf a; leaf b ] ])
      (slice 0 1 3 [ leaf b ]);
    scenario "slice-of-concat spanning"
      (slice 0 2 6 [ concat 0 [ leaf a; leaf b ] ])
      (concat 0 [ slice 0 2 4 [ leaf a ]; slice 0 0 2 [ leaf b ] ]);
    scenario "slice-of-concat cross axis (Listing 4)"
      (slice 1 1 4 [ concat 0 [ leaf a; leaf b ] ])
      (concat 0 [ slice 1 1 4 [ leaf a ]; slice 1 1 4 [ leaf b ] ]);
    scenario "slice-of-slice composes"
      (slice 0 1 3 [ slice 0 2 7 [ leaf x ] ])
      (slice 0 3 5 [ leaf x ]);
    scenario "slice-full-range is identity" (slice 0 0 8 [ leaf x ]) (leaf x);
    scenario "slices-cover reassembles"
      (concat 0 [ slice 0 0 4 [ leaf x ]; slice 0 4 8 [ leaf x ] ])
      (leaf x);
    scenario "slices-cover three chunks"
      (concat 0
         [ slice 0 0 2 [ leaf x ]; slice 0 2 5 [ leaf x ]; slice 0 5 8 [ leaf x ] ])
      (leaf x);
    negative "gapped slices do not cover"
      (concat 0 [ slice 0 0 3 [ leaf x ]; slice 0 4 8 [ leaf x ] ])
      (leaf x);
    (let c = t "c" [ 4; 6 ] in
     scenario "concat-flatten"
       (concat 0 [ concat 0 [ leaf a; leaf b ]; leaf c ])
       (concat 0 [ leaf a; leaf b; leaf c ]));
    scenario "transpose involution"
      (app (Op.Transpose { dim0 = 0; dim1 = 1 })
         [ app (Op.Transpose { dim0 = 0; dim1 = 1 }) [ leaf a ] ])
      (leaf a);
    scenario "transpose of concat swaps axis"
      (app (Op.Transpose { dim0 = 0; dim1 = 1 }) [ concat 0 [ leaf a; leaf b ] ])
      (concat 1
         [
           app (Op.Transpose { dim0 = 0; dim1 = 1 }) [ leaf a ];
           app (Op.Transpose { dim0 = 0; dim1 = 1 }) [ leaf b ];
         ]);
    scenario "slice-of-pad recovers interior"
      (slice 0 2 6
         [ app (Op.Pad { dim = 0; before = sd 2; after = sd 3 }) [ leaf a ] ])
      (leaf a);
    scenario "transpose commutes with slice"
      (slice 0 1 3
         [ app (Op.Transpose { dim0 = 0; dim1 = 1 }) [ leaf a ] ])
      (app (Op.Transpose { dim0 = 0; dim1 = 1 }) [ slice 1 1 3 [ leaf a ] ]);
    scenario "transpose commutes with pad"
      (app (Op.Transpose { dim0 = 0; dim1 = 1 })
         [ app (Op.Pad { dim = 0; before = sd 1; after = sd 2 }) [ leaf a ] ])
      (app (Op.Pad { dim = 1; before = sd 1; after = sd 2 })
         [ app (Op.Transpose { dim0 = 0; dim1 = 1 }) [ leaf a ] ]);
    scenario "pads along the same axis compose"
      (app (Op.Pad { dim = 0; before = sd 1; after = sd 0 })
         [ app (Op.Pad { dim = 0; before = sd 1; after = sd 2 }) [ leaf a ] ])
      (app (Op.Pad { dim = 0; before = sd 2; after = sd 2 }) [ leaf a ]);
    scenario "identity elimination" (app Op.Identity [ leaf a ]) (leaf a);
    scenario "reshape of reshape"
      (app (Op.Reshape { shape = [ sd 24 ] })
         [ app (Op.Reshape { shape = [ sd 2; sd 12 ] }) [ leaf a ] ])
      (app (Op.Reshape { shape = [ sd 24 ] }) [ leaf a ]);
    scenario "reshape to same shape is identity"
      (app (Op.Reshape { shape = [ sd 4; sd 6 ] }) [ leaf a ])
      (leaf a);
  ]

(* --- elementwise lemmas --------------------------------------------------- *)

let ewise_tests =
  let a = t "a" [ 3; 4 ] and b = t "b" [ 3; 4 ] in
  let c = t "c" [ 3; 4 ] and d = t "d" [ 3; 4 ] in
  let g2 = t "g" [ 3; 1 ] in
  [
    scenario "gelu distributes over concat"
      (app Op.Gelu [ concat 0 [ leaf a; leaf b ] ])
      (concat 0 [ app Op.Gelu [ leaf a ]; app Op.Gelu [ leaf b ] ]);
    scenario "silu commutes with slice"
      (app Op.Silu [ slice 0 1 3 [ leaf a ] ])
      (slice 0 1 3 [ app Op.Silu [ leaf a ] ]);
    scenario "add distributes over matching concats"
      (app Op.Add [ concat 0 [ leaf a; leaf b ]; concat 0 [ leaf c; leaf d ] ])
      (concat 0 [ app Op.Add [ leaf a; leaf c ]; app Op.Add [ leaf b; leaf d ] ]);
    scenario "mul with broadcast operand"
      (app Op.Mul [ concat 1 [ leaf a; leaf b ]; leaf g2 ])
      (concat 1 [ app Op.Mul [ leaf a; leaf g2 ]; app Op.Mul [ leaf b; leaf g2 ] ]);
    scenario "sub via scale"
      (app Op.Sub [ leaf a; leaf b ])
      (app Op.Add [ leaf a; app (Op.Scale Rat.minus_one) [ leaf b ] ]);
    scenario "scale distributes over concat"
      (app (Op.Scale (Rat.make 1 2)) [ concat 0 [ leaf a; leaf b ] ])
      (concat 0
         [ app (Op.Scale (Rat.make 1 2)) [ leaf a ];
           app (Op.Scale (Rat.make 1 2)) [ leaf b ] ]);
    negative "different unary functions stay distinct"
      (app Op.Gelu [ leaf a ])
      (app Op.Silu [ leaf a ]);
  ]

(* --- scale and sum algebra ------------------------------------------------ *)

let scalesum_tests =
  let a = t "a" [ 3; 4 ] and b = t "b" [ 3; 4 ] in
  let c = t "c" [ 3; 4 ] and d = t "d" [ 3; 4 ] in
  [
    scenario "scale merge and unit"
      (app (Op.Scale (Rat.make 2 1)) [ app (Op.Scale (Rat.make 1 2)) [ leaf a ] ])
      (leaf a);
    scenario "scale distributes over sum"
      (app (Op.Scale (Rat.make 1 3)) [ app Op.Sum_n [ leaf a; leaf b ] ])
      (app Op.Sum_n
         [ app (Op.Scale (Rat.make 1 3)) [ leaf a ];
           app (Op.Scale (Rat.make 1 3)) [ leaf b ] ]);
    (let p = t "p" [ 3; 2 ] and q = t "q" [ 2; 4 ] in
     scenario "scale commutes with matmul"
       (app Op.Matmul [ app (Op.Scale (Rat.make 3 1)) [ leaf p ]; leaf q ])
       (app (Op.Scale (Rat.make 3 1)) [ app Op.Matmul [ leaf p; leaf q ] ]));
    scenario "add is binary sum"
      (app Op.Add [ leaf a; leaf b ])
      (app Op.Sum_n [ leaf a; leaf b ]);
    scenario "sum flatten"
      (app Op.Sum_n [ app Op.Sum_n [ leaf a; leaf b ]; app Op.Sum_n [ leaf c; leaf d ] ])
      (app Op.Sum_n [ leaf a; leaf b; leaf c; leaf d ]);
    scenario "sum assoc"
      (app Op.Sum_n [ app Op.Sum_n [ leaf a; leaf b ]; leaf c ])
      (app Op.Sum_n [ leaf a; leaf b; leaf c ]);
    scenario "sum of replicas is a scale"
      (app Op.Sum_n [ leaf a; leaf a ])
      (app (Op.Scale (Rat.of_int 2)) [ leaf a ]);
    scenario "mean of replicas collapses"
      (app Op.Sum_n
         [ app (Op.Scale (Rat.make 1 2)) [ leaf a ];
           app (Op.Scale (Rat.make 1 2)) [ leaf a ] ])
      (leaf a);
    negative "sum of distinct tensors is not a scale"
      (app Op.Sum_n [ leaf a; leaf b ])
      (app (Op.Scale (Rat.of_int 2)) [ leaf a ]);
  ]

(* --- reductions, softmax, norms ------------------------------------------ *)

let reduce_nn_tests =
  let a = t "a" [ 3; 4 ] and b = t "b" [ 3; 4 ] in
  let w = t "w" [ 4 ] and bias = t "bias" [ 4 ] in
  [
    scenario "reduce_sum along concat axis"
      (app (Op.Reduce_sum { dim = 0; keepdim = false })
         [ concat 0 [ leaf a; leaf b ] ])
      (app Op.Sum_n
         [ app (Op.Reduce_sum { dim = 0; keepdim = false }) [ leaf a ];
           app (Op.Reduce_sum { dim = 0; keepdim = false }) [ leaf b ] ]);
    scenario "reduce_sum off axis"
      (app (Op.Reduce_sum { dim = 1; keepdim = false })
         [ concat 0 [ leaf a; leaf b ] ])
      (concat 0
         [ app (Op.Reduce_sum { dim = 1; keepdim = false }) [ leaf a ];
           app (Op.Reduce_sum { dim = 1; keepdim = false }) [ leaf b ] ]);
    scenario "reduce_mean of equal chunks"
      (app (Op.Reduce_mean { dim = 0; keepdim = false })
         [ concat 0 [ leaf a; leaf b ] ])
      (app (Op.Scale (Rat.make 1 2))
         [ app Op.Sum_n
             [ app (Op.Reduce_mean { dim = 0; keepdim = false }) [ leaf a ];
               app (Op.Reduce_mean { dim = 0; keepdim = false }) [ leaf b ] ] ]);
    scenario "reduce_max along concat axis"
      (app (Op.Reduce_max { dim = 0; keepdim = false })
         [ concat 0 [ leaf a; leaf b ] ])
      (app Op.Maximum
         [ app (Op.Reduce_max { dim = 0; keepdim = false }) [ leaf a ];
           app (Op.Reduce_max { dim = 0; keepdim = false }) [ leaf b ] ]);
    scenario "softmax over row concat"
      (app (Op.Softmax { dim = 1 }) [ concat 0 [ leaf a; leaf b ] ])
      (concat 0
         [ app (Op.Softmax { dim = 1 }) [ leaf a ];
           app (Op.Softmax { dim = 1 }) [ leaf b ] ]);
    negative "softmax along the concat axis does not distribute"
      (app (Op.Softmax { dim = 0 }) [ concat 0 [ leaf a; leaf b ] ])
      (concat 0
         [ app (Op.Softmax { dim = 0 }) [ leaf a ];
           app (Op.Softmax { dim = 0 }) [ leaf b ] ]);
    scenario "layernorm over row concat"
      (app (Op.Layernorm { eps = 1e-5 })
         [ concat 0 [ leaf a; leaf b ]; leaf w; leaf bias ])
      (concat 0
         [ app (Op.Layernorm { eps = 1e-5 }) [ leaf a; leaf w; leaf bias ];
           app (Op.Layernorm { eps = 1e-5 }) [ leaf b; leaf w; leaf bias ] ]);
    scenario "rmsnorm over row concat (the Figure 5 lemma)"
      (app (Op.Rmsnorm { eps = 1e-5 }) [ concat 0 [ leaf a; leaf b ]; leaf w ])
      (concat 0
         [ app (Op.Rmsnorm { eps = 1e-5 }) [ leaf a; leaf w ];
           app (Op.Rmsnorm { eps = 1e-5 }) [ leaf b; leaf w ] ]);
  ]

(* --- embedding, rope, losses ---------------------------------------------- *)

let nn_tests =
  let w = t "w" [ 8; 4 ] in
  let ids1 = t ~dtype:Dtype.I64 "ids1" [ 3 ] in
  let ids2 = t ~dtype:Dtype.I64 "ids2" [ 2 ] in
  let x1 = t "x1" [ 2; 4 ] and x2 = t "x2" [ 2; 4 ] in
  let cos = t "cos" [ 4; 4 ] and sin = t "sin" [ 4; 4 ] in
  let p1 = t "p1" [ 3; 2 ] and p2 = t "p2" [ 3; 2 ] in
  let y1 = t "y1" [ 3; 2 ] and y2 = t "y2" [ 3; 2 ] in
  [
    scenario "embedding of concatenated ids"
      (app Op.Embedding [ leaf w; concat 0 [ leaf ids1; leaf ids2 ] ])
      (concat 0
         [ app Op.Embedding [ leaf w; leaf ids1 ];
           app Op.Embedding [ leaf w; leaf ids2 ] ]);
    scenario "rope over row concat uses table slices"
      (app Op.Rope [ concat 0 [ leaf x1; leaf x2 ]; leaf cos; leaf sin ])
      (concat 0
         [
           app Op.Rope [ leaf x1; slice 0 0 2 [ leaf cos ]; slice 0 0 2 [ leaf sin ] ];
           app Op.Rope [ leaf x2; slice 0 2 4 [ leaf cos ]; slice 0 2 4 [ leaf sin ] ];
         ]);
    negative "rope with wrong table offsets is rejected"
      (app Op.Rope [ concat 0 [ leaf x1; leaf x2 ]; leaf cos; leaf sin ])
      (concat 0
         [
           app Op.Rope [ leaf x1; slice 0 0 2 [ leaf cos ]; slice 0 0 2 [ leaf sin ] ];
           app Op.Rope [ leaf x2; slice 0 0 2 [ leaf cos ]; slice 0 0 2 [ leaf sin ] ];
         ]);
    scenario "mse over equal microbatches (bug 6 lemma)"
      (app Op.Mse_loss
         [ concat 0 [ leaf p1; leaf p2 ]; concat 0 [ leaf y1; leaf y2 ] ])
      (app (Op.Scale (Rat.make 1 2))
         [ app Op.Sum_n
             [ app Op.Mse_loss [ leaf p1; leaf y1 ];
               app Op.Mse_loss [ leaf p2; leaf y2 ] ] ]);
  ]

(* --- collectives ----------------------------------------------------------- *)

let collective_tests =
  let a = t "a" [ 4; 4 ] and b = t "b" [ 4; 4 ] and c = t "c" [ 4; 4 ] in
  [
    scenario "all_reduce is elementwise sum"
      (app Op.All_reduce [ leaf a; leaf b; leaf c ])
      (app Op.Sum_n [ leaf a; leaf b; leaf c ]);
    scenario "reduce_scatter is a slice of the sum"
      (app (Op.Reduce_scatter { dim = 0; index = 1; count = 2 }) [ leaf a; leaf b ])
      (slice 0 2 4 [ app Op.Sum_n [ leaf a; leaf b ] ]);
    scenario "all_gather is concat"
      (app (Op.All_gather { dim = 1 }) [ leaf a; leaf b ])
      (concat 1 [ leaf a; leaf b ]);
    negative "reduce_scatter chunks differ"
      (app (Op.Reduce_scatter { dim = 0; index = 0; count = 2 }) [ leaf a; leaf b ])
      (app (Op.Reduce_scatter { dim = 0; index = 1; count = 2 }) [ leaf a; leaf b ]);
  ]

(* --- vLLM and HLO dialects -------------------------------------------------- *)

let dialect_tests =
  let g = t "g" [ 3; 4 ] and u = t "u" [ 3; 4 ] in
  let x = t "x" [ 3; 4 ] and y = t "y" [ 4; 2 ] in
  [
    scenario "fused swiglu unfuses"
      (app Op.Swiglu_fused [ leaf g; leaf u ])
      (app Op.Mul [ app Op.Silu [ leaf g ]; leaf u ]);
    scenario "swiglu distributes over concat"
      (app Op.Swiglu_fused
         [ concat 0 [ leaf g; leaf u ]; concat 0 [ leaf x; leaf x ] ])
      (concat 0
         [ app Op.Swiglu_fused [ leaf g; leaf x ];
           app Op.Swiglu_fused [ leaf u; leaf x ] ]);
    scenario "hlo dot is matmul"
      (app Op.Hlo_dot [ leaf x; leaf y ])
      (app Op.Matmul [ leaf x; leaf y ]);
    scenario "hlo slice bridges to aten slice"
      (app (Op.Hlo_slice { dim = 0; start = sd 1; stop = sd 3 }) [ leaf x ])
      (slice 0 1 3 [ leaf x ]);
    scenario "hlo concatenate bridges"
      (app (Op.Hlo_concatenate { dim = 0 }) [ leaf g; leaf u ])
      (concat 0 [ leaf g; leaf u ]);
    (let ha = t "ha" [ 3; 2 ] and hb = t "hb" [ 3; 2 ] in
     let hc = t "hc" [ 2; 5 ] and hd = t "hd" [ 2; 5 ] in
     scenario "hlo dot reuses aten block lemma"
       (app Op.Hlo_dot [ concat 1 [ leaf ha; leaf hb ]; concat 0 [ leaf hc; leaf hd ] ])
       (app Op.Sum_n
          [ app Op.Matmul [ leaf ha; leaf hc ]; app Op.Matmul [ leaf hb; leaf hd ] ]));
  ]

(* --- metadata -------------------------------------------------------------- *)

let metadata_tests =
  [
    Alcotest.test_case "registry has a substantial corpus" `Quick (fun () ->
        let n = List.length Entangle_lemmas.Registry.all in
        Alcotest.check Alcotest.bool "at least 60 lemmas" true (n >= 60));
    Alcotest.test_case "lemma names unique" `Quick (fun () ->
        let names =
          List.map (fun (l : Entangle_lemmas.Lemma.t) -> l.name)
            Entangle_lemmas.Registry.all
        in
        Alcotest.check Alcotest.int "no duplicates"
          (List.length names)
          (List.length (List.sort_uniq compare names)));
    Alcotest.test_case "id_of is the position in the corpus" `Quick (fun () ->
        List.iteri
          (fun i (l : Entangle_lemmas.Lemma.t) ->
            Alcotest.check (Alcotest.option Alcotest.int) l.name (Some i)
              (Entangle_lemmas.Registry.id_of l.name))
          Entangle_lemmas.Registry.all);
    Alcotest.test_case "model families select dialect lemmas" `Quick (fun () ->
        let has k fam =
          List.exists
            (fun (l : Entangle_lemmas.Lemma.t) -> l.klass = k)
            (Entangle_lemmas.Registry.for_model fam)
        in
        Alcotest.check Alcotest.bool "qwen2 has vllm" true
          (has Entangle_lemmas.Lemma.Vllm Entangle_lemmas.Registry.Qwen2);
        Alcotest.check Alcotest.bool "llama has hlo" true
          (has Entangle_lemmas.Lemma.Hlo Entangle_lemmas.Registry.Llama);
        Alcotest.check Alcotest.bool "gpt has no vllm" false
          (has Entangle_lemmas.Lemma.Vllm Entangle_lemmas.Registry.Gpt));
    Alcotest.test_case "rmsnorm lemma has the paper's complexity 5" `Quick
      (fun () ->
        match Entangle_lemmas.Registry.find "rmsnorm-concat-rows" with
        | Some l -> Alcotest.check Alcotest.int "complexity" 5 l.complexity
        | None -> Alcotest.fail "lemma missing");
  ]

let suite =
  [
    ("lemmas.matmul", matmul_tests);
    ("lemmas.rearrange", rearrange_tests);
    ("lemmas.elementwise", ewise_tests);
    ("lemmas.scale-sum", scalesum_tests);
    ("lemmas.reduce-nn", reduce_nn_tests);
    ("lemmas.nn", nn_tests);
    ("lemmas.collectives", collective_tests);
    ("lemmas.dialects", dialect_tests);
    ("lemmas.metadata", metadata_tests);
  ]
