(* Tests for the dense tensor interpreter: hand-computed values plus
   algebraic property tests that mirror the lemma corpus (the lemmas are
   separately validated against this interpreter, so its own correctness
   is load-bearing). *)

open Entangle_ir

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest
let nd_eq = Alcotest.testable Ndarray.pp (Ndarray.approx_equal ~tol:1e-6)

let of2x3 l = Ndarray.of_list [ 2; 3 ] l

let basic_tests =
  [
    Alcotest.test_case "create / get / set" `Quick (fun () ->
        let t = Ndarray.create [ 2; 3 ] 0. in
        Ndarray.set t [ 1; 2 ] 5.;
        check (Alcotest.float 0.) "get" 5. (Ndarray.get t [ 1; 2 ]);
        check (Alcotest.float 0.) "other" 0. (Ndarray.get t [ 0; 0 ]);
        check Alcotest.int "numel" 6 (Ndarray.numel t));
    Alcotest.test_case "init row-major" `Quick (fun () ->
        let t = Ndarray.init [ 2; 2 ] (fun idx -> match idx with
          | [ i; j ] -> float_of_int ((10 * i) + j)
          | _ -> assert false) in
        check (Alcotest.list (Alcotest.float 0.)) "flat" [ 0.; 1.; 10.; 11. ]
          (Ndarray.to_flat_list t));
    Alcotest.test_case "matmul 2x3 * 3x2" `Quick (fun () ->
        let a = of2x3 [ 1.; 2.; 3.; 4.; 5.; 6. ] in
        let b = Ndarray.of_list [ 3; 2 ] [ 7.; 8.; 9.; 10.; 11.; 12. ] in
        check nd_eq "result" (Ndarray.of_list [ 2; 2 ] [ 58.; 64.; 139.; 154. ])
          (Ndarray.matmul a b));
    Alcotest.test_case "batched matmul broadcasts rhs" `Quick (fun () ->
        let a = Ndarray.init [ 2; 2; 2 ] (fun _ -> 1.) in
        let b = Ndarray.of_list [ 2; 2 ] [ 1.; 0.; 0.; 1. ] in
        check nd_eq "identity" a (Ndarray.matmul a b));
    Alcotest.test_case "concat / slice round trip" `Quick (fun () ->
        let a = of2x3 [ 1.; 2.; 3.; 4.; 5.; 6. ] in
        let b = of2x3 [ 7.; 8.; 9.; 10.; 11.; 12. ] in
        let c = Ndarray.concat ~dim:0 [ a; b ] in
        check (Alcotest.list Alcotest.int) "dims" [ 4; 3 ] (Ndarray.dims c);
        check nd_eq "first" a (Ndarray.slice ~dim:0 ~start:0 ~stop:2 c);
        check nd_eq "second" b (Ndarray.slice ~dim:0 ~start:2 ~stop:4 c));
    Alcotest.test_case "transpose" `Quick (fun () ->
        let a = of2x3 [ 1.; 2.; 3.; 4.; 5.; 6. ] in
        let t = Ndarray.transpose ~dim0:0 ~dim1:1 a in
        check (Alcotest.list Alcotest.int) "dims" [ 3; 2 ] (Ndarray.dims t);
        check (Alcotest.float 0.) "t[2;1]" 6. (Ndarray.get t [ 2; 1 ]);
        check nd_eq "involution" a (Ndarray.transpose ~dim0:0 ~dim1:1 t));
    Alcotest.test_case "pad embeds and zero-fills" `Quick (fun () ->
        let a = Ndarray.of_list [ 2 ] [ 1.; 2. ] in
        let p = Ndarray.pad ~dim:0 ~before:1 ~after:2 a in
        check (Alcotest.list (Alcotest.float 0.)) "flat" [ 0.; 1.; 2.; 0.; 0. ]
          (Ndarray.to_flat_list p));
    Alcotest.test_case "reductions" `Quick (fun () ->
        let a = of2x3 [ 1.; 2.; 3.; 4.; 5.; 6. ] in
        check nd_eq "sum rows" (Ndarray.of_list [ 3 ] [ 5.; 7.; 9. ])
          (Ndarray.reduce_sum ~dim:0 ~keepdim:false a);
        check nd_eq "mean cols keepdim" (Ndarray.of_list [ 2; 1 ] [ 2.; 5. ])
          (Ndarray.reduce_mean ~dim:1 ~keepdim:true a);
        check nd_eq "max" (Ndarray.of_list [ 2 ] [ 3.; 6. ])
          (Ndarray.reduce_max ~dim:1 ~keepdim:false a));
    Alcotest.test_case "softmax rows sum to one" `Quick (fun () ->
        let a = of2x3 [ 0.3; -1.; 2.; 4.; 0.; -0.5 ] in
        let sm = Ndarray.softmax ~dim:1 a in
        let sums = Ndarray.reduce_sum ~dim:1 ~keepdim:false sm in
        check nd_eq "ones" (Ndarray.of_list [ 2 ] [ 1.; 1. ]) sums);
    Alcotest.test_case "embedding" `Quick (fun () ->
        let w = Ndarray.of_list [ 3; 2 ] [ 0.; 1.; 10.; 11.; 20.; 21. ] in
        let ids = Ndarray.of_list [ 2 ] [ 2.; 0. ] in
        check nd_eq "lookup" (Ndarray.of_list [ 2; 2 ] [ 20.; 21.; 0.; 1. ])
          (Ndarray.embedding w ids));
    Alcotest.test_case "mse loss" `Quick (fun () ->
        let p = Ndarray.of_list [ 2 ] [ 1.; 3. ] in
        let t = Ndarray.of_list [ 2 ] [ 0.; 1. ] in
        check nd_eq "mse" (Ndarray.scalar 2.5) (Ndarray.mse_loss p t));
    Alcotest.test_case "cross entropy of uniform logits" `Quick (fun () ->
        let logits = Ndarray.create [ 2; 4 ] 0. in
        let targets = Ndarray.of_list [ 2 ] [ 1.; 3. ] in
        check nd_eq "log 4" (Ndarray.scalar (log 4.))
          (Ndarray.cross_entropy logits targets));
    Alcotest.test_case "rope norm preservation" `Quick (fun () ->
        (* When cos^2 + sin^2 = 1 per position, rope preserves the norm
           of each (x_i, x_{i+d/2}) pair; check on a rotation by pi/3. *)
        let x = Ndarray.of_list [ 1; 2 ] [ 3.; 4. ] in
        let c = cos (Float.pi /. 3.) and s = sin (Float.pi /. 3.) in
        let cos_t = Ndarray.create [ 1; 2 ] c in
        let sin_t = Ndarray.create [ 1; 2 ] s in
        let y = Ndarray.rope x cos_t sin_t in
        let norm t = (Ndarray.get t [ 0; 0 ] ** 2.) +. (Ndarray.get t [ 0; 1 ] ** 2.) in
        check (Alcotest.float 1e-9) "norm" (norm x) (norm y));
  ]

let st = Random.State.make [| 7 |]
let rand dims = Ndarray.random st dims

let property_tests =
  let gen_dims = QCheck.(pair (int_range 1 4) (int_range 1 4)) in
  [
    qtest
      (QCheck.Test.make ~name:"broadcast add commutes" ~count:50 gen_dims
         (fun (m, n) ->
           let a = rand [ m; n ] and b = rand [ n ] in
           Ndarray.approx_equal (Ndarray.add a b) (Ndarray.add b a)));
    qtest
      (QCheck.Test.make ~name:"concat then slice is identity" ~count:50
         (QCheck.triple (QCheck.int_range 1 4) (QCheck.int_range 1 4)
            (QCheck.int_range 1 3))
         (fun (m, n, k) ->
           let a = rand [ m; k ] and b = rand [ n; k ] in
           let c = Ndarray.concat ~dim:0 [ a; b ] in
           Ndarray.approx_equal a (Ndarray.slice ~dim:0 ~start:0 ~stop:m c)
           && Ndarray.approx_equal b
                (Ndarray.slice ~dim:0 ~start:m ~stop:(m + n) c)));
    qtest
      (QCheck.Test.make ~name:"block matmul = sum of products" ~count:50
         (QCheck.triple (QCheck.int_range 1 4) (QCheck.int_range 1 4)
            (QCheck.int_range 1 4))
         (fun (m, k, n) ->
           let a1 = rand [ m; k ] and a2 = rand [ m; k ] in
           let b1 = rand [ k; n ] and b2 = rand [ k; n ] in
           let whole =
             Ndarray.matmul
               (Ndarray.concat ~dim:1 [ a1; a2 ])
               (Ndarray.concat ~dim:0 [ b1; b2 ])
           in
           let blocks = Ndarray.add (Ndarray.matmul a1 b1) (Ndarray.matmul a2 b2) in
           Ndarray.approx_equal ~tol:1e-4 whole blocks));
    qtest
      (QCheck.Test.make ~name:"row-split matmul" ~count:50
         (QCheck.triple (QCheck.int_range 1 4) (QCheck.int_range 1 4)
            (QCheck.int_range 1 4))
         (fun (m, k, n) ->
           let a1 = rand [ m; k ] and a2 = rand [ m; k ] in
           let b = rand [ k; n ] in
           Ndarray.approx_equal ~tol:1e-4
             (Ndarray.matmul (Ndarray.concat ~dim:0 [ a1; a2 ]) b)
             (Ndarray.concat ~dim:0 [ Ndarray.matmul a1 b; Ndarray.matmul a2 b ])));
    qtest
      (QCheck.Test.make ~name:"reduce_sum splits over concat" ~count:50
         (QCheck.pair (QCheck.int_range 1 4) (QCheck.int_range 1 4))
         (fun (m, n) ->
           let a = rand [ m; 3 ] and b = rand [ n; 3 ] in
           Ndarray.approx_equal ~tol:1e-4
             (Ndarray.reduce_sum ~dim:0 ~keepdim:false
                (Ndarray.concat ~dim:0 [ a; b ]))
             (Ndarray.add
                (Ndarray.reduce_sum ~dim:0 ~keepdim:false a)
                (Ndarray.reduce_sum ~dim:0 ~keepdim:false b))));
    qtest
      (QCheck.Test.make ~name:"softmax distributes over row concat" ~count:50
         (QCheck.pair (QCheck.int_range 1 4) (QCheck.int_range 1 4))
         (fun (m, n) ->
           let a = rand [ m; 5 ] and b = rand [ n; 5 ] in
           Ndarray.approx_equal ~tol:1e-5
             (Ndarray.softmax ~dim:1 (Ndarray.concat ~dim:0 [ a; b ]))
             (Ndarray.concat ~dim:0
                [ Ndarray.softmax ~dim:1 a; Ndarray.softmax ~dim:1 b ])));
    qtest
      (QCheck.Test.make ~name:"layernorm distributes over row concat" ~count:50
         (QCheck.pair (QCheck.int_range 1 4) (QCheck.int_range 1 4))
         (fun (m, n) ->
           let a = rand [ m; 6 ] and b = rand [ n; 6 ] in
           let w = rand [ 6 ] and bias = rand [ 6 ] in
           let ln x = Ndarray.layernorm ~eps:1e-5 x w bias in
           Ndarray.approx_equal ~tol:1e-5
             (ln (Ndarray.concat ~dim:0 [ a; b ]))
             (Ndarray.concat ~dim:0 [ ln a; ln b ])));
    qtest
      (QCheck.Test.make ~name:"mse over equal halves averages" ~count:50
         (QCheck.int_range 1 5)
         (fun m ->
           let p1 = rand [ m; 2 ] and p2 = rand [ m; 2 ] in
           let t1 = rand [ m; 2 ] and t2 = rand [ m; 2 ] in
           let whole =
             Ndarray.mse_loss
               (Ndarray.concat ~dim:0 [ p1; p2 ])
               (Ndarray.concat ~dim:0 [ t1; t2 ])
           in
           let halves =
             Ndarray.scale 0.5
               (Ndarray.add (Ndarray.mse_loss p1 t1) (Ndarray.mse_loss p2 t2))
           in
           Ndarray.approx_equal ~tol:1e-5 whole halves));
  ]

let suite =
  [ ("ndarray.basic", basic_tests); ("ndarray.properties", property_tests) ]
