(* Verifying a mixture-of-experts model under expert parallelism.

   The ByteDance-style MoE layer distributes experts across ranks (EP),
   activations across the sequence (SP) and attention across the head
   dimension (TP), and scales its auxiliary load-balancing loss by the
   reciprocal parallelism degree. Both the forward layer and the
   captured backward graphs of the expert FFN are checked.

   Run with: dune exec examples/moe_expert_parallel.exe *)

open Entangle_models

let check inst =
  Fmt.pr "Checking %a ...@." Instance.pp inst;
  match Instance.check inst with
  | Ok success ->
      Fmt.pr "  refinement holds; outputs map as:@.";
      List.iter
        (fun (t, exprs) ->
          Fmt.pr "    %a -> %a@." Entangle_ir.Tensor.pp_name t
            (Fmt.list ~sep:(Fmt.any " | ") Entangle_ir.Expr.pp)
            exprs)
        (Entangle.Relation.bindings success.output_relation);
      (match
         Entangle.Certify.replay ~env:inst.Instance.env ~gs:inst.Instance.gs
           ~gd:inst.Instance.gd ~input_relation:inst.Instance.input_relation
           ~output_relation:success.output_relation ()
       with
      | Ok () -> Fmt.pr "  certificate replay: OK@.@."
      | Error e ->
          Fmt.pr "  certificate replay FAILED: %s@." e;
          exit 1)
  | Error failure ->
      Fmt.pr "%a@." (Entangle.Report.pp_failure inst.Instance.gs) failure;
      exit 1

let () =
  check (Moe.build ~experts:4 ~degree:2 ());
  check (Moe.build_backward ~experts:4 ~degree:2 ())
