(* Bug localization: what an ENTANGLE failure report looks like.

   Reproduces two of the paper's case-study bugs and prints the
   actionable reports: the gradient-accumulation scaling bug from
   HuggingFace transformers (bug 6) and the expert-sharding
   configuration bug from the ByteDance framework (bug 4). In both, the
   operator where the relation search terminated, together with its
   input relations, points at the mistake.

   Run with: dune exec examples/bug_localization.exe *)

open Entangle_models

let show case =
  Fmt.pr "==============================================================@.";
  Fmt.pr "Bug %d [%s]: %s@.@." case.Bugs.id case.Bugs.framework
    case.Bugs.description;
  match Bugs.run case with
  | Bugs.Detected report -> Fmt.pr "%s@.@." report
  | Bugs.Missed ->
      Fmt.pr "NOT DETECTED — this would be a checker bug.@.";
      exit 1

let () =
  show (Bugs.case 6);
  show (Bugs.case 4);
  (* And the fixed gradient-accumulation model, for contrast: *)
  let fixed = Regression.build () in
  match Instance.check fixed with
  | Ok success ->
      Fmt.pr "==============================================================@.";
      Fmt.pr "Fixed gradient accumulation, for contrast:@.@.%a@."
        (Entangle.Report.pp_success fixed.Instance.gs)
        success
  | Error _ ->
      Fmt.pr "unexpected failure on the fixed model@.";
      exit 1
