(* User-expectation checking (paper section 4.4).

   Some bugs do not break refinement: the sequential value can still be
   reconstructed from the distributed tensors — just not the way the
   implementation assumes. Bug 9 (TransformerEngine) is such a case:
   under sequence parallelism each rank holds a partial layernorm weight
   gradient, the optimizer forgot the all-reduce, and the developer's
   expectation "the full gradient equals my local tensor" is violated
   even though "the full gradient equals the SUM of the local tensors"
   holds.

   Run with: dune exec examples/expectation_check.exe *)

open Entangle_models

let () =
  let case = Bugs.case 9 in
  Fmt.pr "Bug %d [%s]: %s@.@." case.Bugs.id case.Bugs.framework
    case.Bugs.description;
  let inst = case.Bugs.instance in
  let fs, fd = Option.get case.Bugs.expectation in
  Fmt.pr "Expectation: f_s = %a should equal f_d = %a@.@." Entangle_ir.Expr.pp
    fs Entangle_ir.Expr.pp fd;
  (* First: plain refinement succeeds — the value IS reconstructible. *)
  (match
     Entangle.Refine.check ~gs:inst.Instance.gs ~gd:inst.Instance.gd
       ~input_relation:inst.Instance.input_relation ()
   with
  | Ok success ->
      Fmt.pr "Plain refinement holds; the actual relation is:@.%a@.@."
        Entangle.Relation.pp success.output_relation
  | Error _ -> Fmt.pr "unexpected: plain refinement failed@.");
  (* Second: the user's expectation is violated. *)
  match Bugs.run case with
  | Bugs.Detected reason -> Fmt.pr "Expectation check: %s@." reason
  | Bugs.Missed ->
      Fmt.pr "NOT DETECTED — this would be a checker bug.@.";
      exit 1
