examples/expectation_check.mli:
