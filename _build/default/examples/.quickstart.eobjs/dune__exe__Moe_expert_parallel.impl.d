examples/moe_expert_parallel.ml: Entangle Entangle_ir Entangle_models Fmt Instance List Moe
