examples/moe_expert_parallel.mli:
