examples/expectation_check.ml: Bugs Entangle Entangle_ir Entangle_models Fmt Instance Option
