examples/quickstart.ml: Entangle Entangle_ir Entangle_symbolic Expr Fmt Graph Interp List Op Symdim
