examples/tp_mlp.ml: Constraint_store Entangle Entangle_dist Entangle_ir Entangle_symbolic Fmt Graph Interp List Lower Op Symdim
