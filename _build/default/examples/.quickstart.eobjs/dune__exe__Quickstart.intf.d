examples/quickstart.mli:
