examples/custom_lemma.mli:
