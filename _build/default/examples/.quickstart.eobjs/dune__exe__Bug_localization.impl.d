examples/bug_localization.ml: Bugs Entangle Entangle_models Fmt Instance Regression
