examples/bug_localization.mli:
