examples/training_step.mli:
