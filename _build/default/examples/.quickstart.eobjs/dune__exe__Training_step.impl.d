examples/training_step.ml: Entangle Entangle_ir Entangle_models Fmt Instance List Option Train
