examples/tp_mlp.mli:
