examples/custom_lemma.ml: Entangle Entangle_dist Entangle_egraph Entangle_ir Entangle_lemmas Entangle_symbolic Fmt Graph List Lower Node Op Pattern Rule Symdim
