(* Quickstart: the paper's running example (Figures 1 and 2).

   A sequential model computes F = (A x B) - E. A two-rank tensor
   parallel implementation splits A by columns and B by rows, computes
   per-rank partial products, combines them with a reduce-scatter, and
   subtracts per-rank shards of E. We ask ENTANGLE whether the
   distributed implementation refines the sequential specification, and
   then execute the returned relation on concrete data to confirm the
   certificate.

   Run with: dune exec examples/quickstart.exe *)

open Entangle_symbolic
open Entangle_ir
module B = Graph.Builder

let sd = Symdim.of_int

let () =
  let m = 8 and k = 6 and n = 4 in

  (* 1. The sequential specification G_s. *)
  let bs = B.create "quickstart-seq" in
  let a = B.input bs "A" [ sd m; sd k ] in
  let b = B.input bs "B" [ sd k; sd n ] in
  let e = B.input bs "E" [ sd m; sd n ] in
  let c = B.add bs ~name:"C" Op.Matmul [ a; b ] in
  let f = B.add bs ~name:"F" Op.Sub [ c; e ] in
  B.output bs f;
  let gs = B.finish bs in

  (* 2. The distributed implementation G_d on two ranks. *)
  let bd = B.create "quickstart-dist" in
  let a1 = B.input bd "A1" [ sd m; sd (k / 2) ] in
  let a2 = B.input bd "A2" [ sd m; sd (k / 2) ] in
  let b1 = B.input bd "B1" [ sd (k / 2); sd n ] in
  let b2 = B.input bd "B2" [ sd (k / 2); sd n ] in
  let e1 = B.input bd "E1" [ sd (m / 2); sd n ] in
  let e2 = B.input bd "E2" [ sd (m / 2); sd n ] in
  let c1 = B.add bd ~name:"C1" Op.Matmul [ a1; b1 ] in
  let c2 = B.add bd ~name:"C2" Op.Matmul [ a2; b2 ] in
  let d1 =
    B.add bd ~name:"D1"
      (Op.Reduce_scatter { dim = 0; index = 0; count = 2 })
      [ c1; c2 ]
  in
  let d2 =
    B.add bd ~name:"D2"
      (Op.Reduce_scatter { dim = 0; index = 1; count = 2 })
      [ c1; c2 ]
  in
  let f1 = B.add bd ~name:"F1" Op.Sub [ d1; e1 ] in
  let f2 = B.add bd ~name:"F2" Op.Sub [ d2; e2 ] in
  B.output bd f1;
  B.output bd f2;
  let gd = B.finish bd in

  (* 3. The clean input relation R_i the user provides. *)
  let concat dim parts = Expr.app (Op.Concat { dim }) (List.map Expr.leaf parts) in
  let input_relation =
    Entangle.Relation.of_list
      [ (a, concat 1 [ a1; a2 ]); (b, concat 0 [ b1; b2 ]); (e, concat 0 [ e1; e2 ]) ]
  in

  (* 4. Check model refinement. *)
  match Entangle.Refine.check ~gs ~gd ~input_relation () with
  | Error failure ->
      Fmt.pr "%a@." (Entangle.Report.pp_failure gs) failure;
      exit 1
  | Ok success ->
      Fmt.pr "%a@.@." (Entangle.Report.pp_success gs) success;
      Fmt.pr "Every intermediate mapping found:@.%a@.@." Entangle.Relation.pp
        success.full_relation;
      (* 5. The relation is a certificate: replay it on concrete data. *)
      (match
         Entangle.Certify.replay
           ~env:(Interp.env_of_list [])
           ~gs ~gd ~input_relation ~output_relation:success.output_relation ()
       with
      | Ok () -> Fmt.pr "Certificate replay on random concrete inputs: OK@."
      | Error e ->
          Fmt.pr "Certificate replay failed: %s@." e;
          exit 1)
