(* Checking whole training steps with mechanically captured backward
   graphs.

   The paper checks the ByteDance model's backward pass using graphs
   captured by TorchDynamo. Here the same workflow runs end to end
   inside the library: Entangle_ir.Autodiff differentiates both the
   sequential and the distributed forward graph (seeds and activation
   mirrors become backward-graph inputs, exactly like captured graphs),
   the backward input relation is derived from the forward check's
   certificate, and refinement is checked on the backward pair.

   This also covers data parallelism — a strategy the paper could not
   capture (section 6.1) — whose correctness lives entirely in the
   backward pass: per-replica weight-gradient partials must be
   all-reduced.

   Run with: dune exec examples/training_step.exe *)

open Entangle_models

let check what inst =
  Fmt.pr "--- %s: %a@." what Instance.pp inst;
  match Instance.check inst with
  | Ok success ->
      Fmt.pr "refines; gradients map as:@.";
      List.iter
        (fun (t, exprs) ->
          Fmt.pr "  %a -> %a@." Entangle_ir.Tensor.pp_name t
            (Fmt.list ~sep:(Fmt.any " | ") Entangle_ir.Expr.pp)
            exprs)
        (Entangle.Relation.bindings success.output_relation);
      (match
         Entangle.Certify.replay ~env:inst.Instance.env ~gs:inst.Instance.gs
           ~gd:inst.Instance.gd ~input_relation:inst.Instance.input_relation
           ~output_relation:success.output_relation ()
       with
      | Ok () -> Fmt.pr "certificate replay: OK@.@."
      | Error e ->
          Fmt.pr "certificate replay FAILED: %s@." e;
          exit 1)
  | Error failure ->
      Fmt.pr "%a@." (Entangle.Report.pp_failure inst.Instance.gs) failure;
      exit 1

let () =
  check "tensor-parallel linear layer backward" (Train.linear_backward ());
  check "data-parallel training step" (Train.data_parallel ());
  check "pipeline microbatching" (Train.pipeline ());
  (* The buggy optimizer: per-replica input-gradient partials are never
     all-reduced. Plain refinement still holds (the sum of the exposed
     partials reconstructs the gradient), but the user's expectation
     that rank 0's tensor IS the gradient is violated — the same
     mechanism as the paper's bugs 5, 8 and 9. *)
  let buggy = Train.linear_backward ~missing_sync:true () in
  Fmt.pr "--- missing gradient synchronization (optimizer bug)@.";
  let find g name =
    Option.get (Entangle_ir.Serial.tensor_by_name g name)
  in
  let fs = Entangle_ir.Expr.leaf (find buggy.Instance.gs "grad_x") in
  let fd = Entangle_ir.Expr.leaf (find buggy.Instance.gd "grad_x_0") in
  match
    Entangle.Expectation.check ~gs:buggy.Instance.gs ~gd:buggy.Instance.gd
      ~input_relation:buggy.Instance.input_relation ~fs ~fd ()
  with
  | Error v -> Fmt.pr "detected: %s@." v.reason
  | Ok _ ->
      Fmt.pr "NOT DETECTED@.";
      exit 1
