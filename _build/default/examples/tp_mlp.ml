(* Building and verifying a custom model with the lowering combinators.

   A two-layer MLP with a GELU activation is distributed Megatron-style
   over four tensor-parallel ranks: the first weight matrix is split by
   columns, the second by rows, and the partial results are combined
   with an all-reduce. The Lower combinators construct the distributed
   graph and accumulate the clean input relation as sharded and
   replicated inputs are declared.

   Run with: dune exec examples/tp_mlp.exe *)

open Entangle_symbolic
open Entangle_ir
open Entangle_dist
module B = Graph.Builder

let sd = Symdim.of_int
let degree = 4

let () =
  (* Sequential specification: y = gelu(x W1) W2 + b. *)
  let batch = Symdim.sym "batch" in
  let constraints = Constraint_store.add_positive Constraint_store.empty "batch" in
  let bs = B.create ~constraints "mlp-seq" in
  let x = B.input bs "x" [ batch; sd 8 ] in
  let w1 = B.input bs "w1" [ sd 8; sd 16 ] in
  let w2 = B.input bs "w2" [ sd 16; sd 8 ] in
  let bias = B.input bs "b" [ sd 8 ] in
  let h = B.add bs Op.Gelu [ B.add bs Op.Matmul [ x; w1 ] ] in
  let y = B.add bs ~name:"y" Op.Add [ B.add bs Op.Matmul [ h; w2 ]; bias ] in
  B.output bs y;
  let gs = B.finish bs in

  (* Distributed implementation via the lowering combinators. *)
  let ctx = Lower.create ~constraints ~name:"mlp-tp" ~degree () in
  let xs = Lower.replicate_input ctx x in
  let w1s = Lower.shard_input ctx w1 ~dim:1 in
  let w2s = Lower.shard_input ctx w2 ~dim:0 in
  let biases = Lower.replicate_input ctx bias in
  let partials =
    Lower.map_ranks ctx (fun r ->
        let h_r =
          Lower.add ctx Op.Gelu
            [ Lower.add ctx Op.Matmul [ List.nth xs r; List.nth w1s r ] ]
        in
        Lower.add ctx Op.Matmul [ h_r; List.nth w2s r ])
  in
  let summed = Lower.all_reduce ctx partials in
  let ys =
    List.mapi
      (fun r s -> Lower.add ctx ~name:(Fmt.str "y_%d" r) Op.Add [ s; List.nth biases r ])
      summed
  in
  Lower.output ctx (List.hd ys);
  let gd, input_relation = Lower.finish ctx in

  Fmt.pr "Sequential graph:@.%a@.@." Graph.pp gs;
  match Entangle.Refine.check ~gs ~gd ~input_relation () with
  | Error failure ->
      Fmt.pr "%a@." (Entangle.Report.pp_failure gs) failure;
      exit 1
  | Ok success ->
      Fmt.pr "%a@." (Entangle.Report.pp_success gs) success;
      (match
         Entangle.Certify.replay
           ~env:(Interp.env_of_list [ ("batch", 5) ])
           ~gs ~gd ~input_relation ~output_relation:success.output_relation ()
       with
      | Ok () -> Fmt.pr "Certificate replay: OK@."
      | Error e ->
          Fmt.pr "Certificate replay failed: %s@." e;
          exit 1)
