(** Symbolic integer dimensions.

    TorchDynamo-style graph capture produces tensors whose shapes may
    contain {e symbolic scalars} (the paper, section 5, "Handling Symbolic
    Scalars"). Only affine arithmetic is ever applied to them, so a
    symbolic dimension is represented exactly as an affine expression
    [c0 + c1*s1 + ... + cn*sn] over named integer symbols, kept in a
    canonical normal form so that structural equality coincides with
    semantic equality of affine forms. *)

type t

(** {1 Construction} *)

val of_int : int -> t
val zero : t
val one : t

val sym : string -> t
(** [sym name] is the symbolic variable [name] with coefficient 1. *)

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val mul_int : int -> t -> t

val mul : t -> t -> t option
(** [mul a b] multiplies two affine forms; [None] when the product is not
    affine (both operands mention symbols). *)

val div_int : t -> int -> t option
(** [div_int a k] divides every coefficient by [k] when exact. *)

(** {1 Inspection} *)

val is_const : t -> bool
val to_int : t -> int option
val const_part : t -> int
val symbols : t -> string list
val coeff : t -> string -> int

(** {1 Comparison} *)

val equal : t -> t -> bool
(** Structural equality of normal forms; sound and complete for affine
    expressions with no extra constraints. *)

val compare : t -> t -> int
val hash : t -> int

(** {1 Evaluation} *)

val eval : (string -> int) -> t -> int
(** [eval env t] evaluates under a concrete assignment of symbols. *)

val subst : (string -> t option) -> t -> t
(** [subst f t] replaces each symbol [s] by [f s] when defined. *)

val pp : t Fmt.t
val to_string : t -> string
