module Smap = Map.Make (String)

(* Invariant: no zero coefficients in [terms]. *)
type t = { const : int; terms : int Smap.t }

let of_int n = { const = n; terms = Smap.empty }
let zero = of_int 0
let one = of_int 1
let sym name = { const = 0; terms = Smap.singleton name 1 }

let add a b =
  let terms =
    Smap.union (fun _ ca cb -> if ca + cb = 0 then None else Some (ca + cb))
      a.terms b.terms
  in
  { const = a.const + b.const; terms }

let neg a = { const = -a.const; terms = Smap.map (fun c -> -c) a.terms }
let sub a b = add a (neg b)

let mul_int k a =
  if k = 0 then zero
  else { const = k * a.const; terms = Smap.map (fun c -> k * c) a.terms }

let is_const a = Smap.is_empty a.terms
let to_int a = if is_const a then Some a.const else None

let mul a b =
  match (to_int a, to_int b) with
  | Some ka, _ -> Some (mul_int ka b)
  | _, Some kb -> Some (mul_int kb a)
  | None, None -> None

let div_int a k =
  if k = 0 then None
  else if a.const mod k <> 0 then None
  else
    let exception Not_exact in
    match
      Smap.map (fun c -> if c mod k = 0 then c / k else raise Not_exact) a.terms
    with
    | terms -> Some { const = a.const / k; terms }
    | exception Not_exact -> None

let const_part a = a.const
let symbols a = Smap.bindings a.terms |> List.map fst
let coeff a s = match Smap.find_opt s a.terms with Some c -> c | None -> 0

let compare a b =
  match Int.compare a.const b.const with
  | 0 -> Smap.compare Int.compare a.terms b.terms
  | c -> c

let equal a b = compare a b = 0

let hash a =
  Smap.fold
    (fun s c acc -> (acc * 31) + Hashtbl.hash (s, c))
    a.terms (Hashtbl.hash a.const)

let eval env a =
  Smap.fold (fun s c acc -> acc + (c * env s)) a.terms a.const

let subst f a =
  Smap.fold
    (fun s c acc ->
      match f s with
      | Some e -> add acc (mul_int c e)
      | None -> add acc (mul_int c (sym s)))
    a.terms (of_int a.const)

let pp ppf a =
  if is_const a then Fmt.int ppf a.const
  else begin
    let first = ref true in
    let pp_term s c =
      let sep = if !first then (if c < 0 then "-" else "") else if c < 0 then " - " else " + " in
      first := false;
      let c = abs c in
      if c = 1 then Fmt.pf ppf "%s%s" sep s else Fmt.pf ppf "%s%d%s" sep c s
    in
    Smap.iter (fun s c -> pp_term s c) a.terms;
    if a.const <> 0 then
      if a.const > 0 then Fmt.pf ppf " + %d" a.const
      else Fmt.pf ppf " - %d" (-a.const)
  end

let to_string a = Fmt.str "%a" pp a
