(** A store of user-specified constraints over symbolic dimensions.

    Mirrors the paper's use of SMT-LIB: the user registers facts about
    symbolic scalars (for instance "the sequence length is positive and
    divisible by the parallelism degree") and lemma conditions are
    discharged against them by {!Decide}. *)

type t

type constr =
  | Ge of Symdim.t  (** expression [>= 0] *)
  | Eq of Symdim.t  (** expression [= 0] *)

val empty : t
val is_empty : t -> bool

val add_ge : t -> Symdim.t -> t
(** [add_ge s e] records [e >= 0]. *)

val add_le : t -> Symdim.t -> t
(** [add_le s e] records [e <= 0]. *)

val add_gt : t -> Symdim.t -> t
(** [add_gt s e] records [e > 0], i.e. [e - 1 >= 0] over the integers. *)

val add_eq : t -> Symdim.t -> Symdim.t -> t
(** [add_eq s a b] records [a = b]. *)

val add_positive : t -> string -> t
(** [add_positive s name] records [name >= 1]; the common case for shape
    symbols. *)

val of_list : constr list -> t
val constraints : t -> constr list

val inequalities : t -> Symdim.t list
(** All constraints as a list of expressions [e] with meaning [e >= 0]
    (equalities are expanded into two inequalities). *)

val pp : t Fmt.t
