type t = { num : int; den : int }

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

let norm num den =
  if den = 0 then invalid_arg "Rat.make: zero denominator";
  let s = if den < 0 then -1 else 1 in
  let num = s * num and den = s * den in
  let g = gcd (abs num) den in
  if g = 0 then { num = 0; den = 1 } else { num = num / g; den = den / g }

let make num den = norm num den
let of_int n = { num = n; den = 1 }
let zero = of_int 0
let one = of_int 1
let minus_one = of_int (-1)
let num t = t.num
let den t = t.den
let add a b = norm ((a.num * b.den) + (b.num * a.den)) (a.den * b.den)
let neg a = { a with num = -a.num }
let sub a b = add a (neg b)
let mul a b = norm (a.num * b.num) (a.den * b.den)
let div a b = norm (a.num * b.den) (a.den * b.num)
let abs a = { a with num = Stdlib.abs a.num }
let compare a b = Stdlib.compare (a.num * b.den) (b.num * a.den)
let equal a b = compare a b = 0
let sign a = Stdlib.compare a.num 0
let is_integer a = a.den = 1
let to_float a = float_of_int a.num /. float_of_int a.den

let pp ppf a =
  if a.den = 1 then Fmt.int ppf a.num else Fmt.pf ppf "%d/%d" a.num a.den
