(** Decision procedures over symbolic dimensions.

    Implements the role the paper delegates to an SMT solver (section 5,
    "Handling Symbolic Scalars"): deciding equalities and inequalities
    between affine expressions under user-provided constraints.

    The engine is Fourier-Motzkin elimination over the rationals.
    Soundness: a proved fact holds for every integer assignment satisfying
    the store. Completeness holds for the rational relaxation, which is
    exact for the affine comparisons arising from shape arithmetic. A row
    budget bounds elimination; exceeding it yields "not proved". *)

type verdict = Proved | Unknown

val implies_ge : Constraint_store.t -> Symdim.t -> verdict
(** [implies_ge store e]: does the store imply [e >= 0]? *)

val prove_eq : Constraint_store.t -> Symdim.t -> Symdim.t -> bool
(** [prove_eq store a b]: structural normal-form equality, falling back to
    proving both [a - b >= 0] and [b - a >= 0]. *)

val prove_ne : Constraint_store.t -> Symdim.t -> Symdim.t -> bool
(** [prove_ne store a b]: provably different, i.e. [a < b] or [a > b]. *)

val prove_le : Constraint_store.t -> Symdim.t -> Symdim.t -> bool
val prove_lt : Constraint_store.t -> Symdim.t -> Symdim.t -> bool

val compare_known :
  Constraint_store.t -> Symdim.t -> Symdim.t -> [ `Eq | `Lt | `Gt | `Unknown ]
(** Three-way comparison when provable, [`Unknown] otherwise. *)

val feasible : Symdim.t list -> bool
(** [feasible ges]: is the system [{ e >= 0 | e in ges }] satisfiable over
    the rationals? Exposed for testing. *)
