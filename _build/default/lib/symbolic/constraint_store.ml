type constr = Ge of Symdim.t | Eq of Symdim.t

type t = { constrs : constr list }

let empty = { constrs = [] }
let is_empty t = t.constrs = []
let add t c = { constrs = c :: t.constrs }
let add_ge t e = add t (Ge e)
let add_le t e = add t (Ge (Symdim.neg e))
let add_gt t e = add t (Ge (Symdim.sub e Symdim.one))
let add_eq t a b = add t (Eq (Symdim.sub a b))
let add_positive t name = add_gt t (Symdim.sym name)
let of_list constrs = { constrs }
let constraints t = t.constrs

let inequalities t =
  List.concat_map
    (function Ge e -> [ e ] | Eq e -> [ e; Symdim.neg e ])
    t.constrs

let pp ppf t =
  let pp_constr ppf = function
    | Ge e -> Fmt.pf ppf "%a >= 0" Symdim.pp e
    | Eq e -> Fmt.pf ppf "%a = 0" Symdim.pp e
  in
  Fmt.pf ppf "@[<v>%a@]" (Fmt.list ~sep:Fmt.cut pp_constr) t.constrs
