(** Exact rational arithmetic over native integers.

    Used by the Fourier-Motzkin elimination in {!Decide}. Coefficients in
    shape constraints are small, so native [int] numerators and
    denominators are sufficient; all values are kept in lowest terms with
    a positive denominator. *)

type t

val zero : t
val one : t
val minus_one : t

val of_int : int -> t

val make : int -> int -> t
(** [make num den] is the rational [num/den]. Raises [Invalid_argument]
    if [den = 0]. *)

val num : t -> int
val den : t -> int

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
val neg : t -> t
val abs : t -> t

val compare : t -> t -> int
val equal : t -> t -> bool
val sign : t -> int

val is_integer : t -> bool
val to_float : t -> float
val pp : t Fmt.t
