lib/symbolic/decide.mli: Constraint_store Symdim
