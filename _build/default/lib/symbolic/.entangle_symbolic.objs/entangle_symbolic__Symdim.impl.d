lib/symbolic/symdim.ml: Fmt Hashtbl Int List Map String
