lib/symbolic/symdim.mli: Fmt
