lib/symbolic/constraint_store.ml: Fmt List Symdim
