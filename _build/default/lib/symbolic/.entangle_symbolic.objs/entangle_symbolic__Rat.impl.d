lib/symbolic/rat.ml: Fmt Stdlib
