lib/symbolic/constraint_store.mli: Fmt Symdim
