lib/symbolic/rat.mli: Fmt
