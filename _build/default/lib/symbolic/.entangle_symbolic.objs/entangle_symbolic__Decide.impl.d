lib/symbolic/decide.ml: Constraint_store List Map Rat String Symdim
