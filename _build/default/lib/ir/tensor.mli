(** Tensors: the edges of computation graphs.

    A tensor carries only metadata — name, symbolic shape, dtype — never
    data (the checker is static). Identifiers are globally unique so that
    tensors from a sequential graph and a distributed graph can coexist
    inside one relation or e-graph without ambiguity. *)

type id = private int

type t = { id : id; name : string; shape : Shape.t; dtype : Dtype.t }

val create : ?dtype:Dtype.t -> name:string -> Shape.t -> t
(** Fresh tensor with a new unique id. [dtype] defaults to [F32]. *)

val id : t -> id
val name : t -> string
val shape : t -> Shape.t
val dtype : t -> Dtype.t

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val pp : t Fmt.t
(** Prints ["name:[shape]"] . *)

val pp_name : t Fmt.t

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
