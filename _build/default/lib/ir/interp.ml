open Entangle_symbolic
module Smap = Map.Make (String)

type env = int Smap.t

let env_of_list l = List.fold_left (fun m (k, v) -> Smap.add k v m) Smap.empty l

let lookup env s =
  match Smap.find_opt s env with
  | Some v -> v
  | None -> invalid_arg (Printf.sprintf "Interp: unbound shape symbol %s" s)

let dim_value env d = Symdim.eval (lookup env) d

let eval_op env (op : Op.t) (args : Ndarray.t list) =
  let one x = match args with [ a ] -> x a | _ -> invalid_arg "arity" in
  let two f = match args with [ a; b ] -> f a b | _ -> invalid_arg "arity" in
  let three f =
    match args with [ a; b; c ] -> f a b c | _ -> invalid_arg "arity"
  in
  match op with
  | Add -> two Ndarray.add
  | Sub -> two Ndarray.sub
  | Mul -> two Ndarray.mul
  | Div -> two Ndarray.div
  | Maximum -> two (Ndarray.map2 max)
  | Pow -> two (Ndarray.map2 ( ** ))
  | Neg -> one (Ndarray.map (fun x -> -.x))
  | Exp -> one (Ndarray.map exp)
  | Log -> one (Ndarray.map log)
  | Sqrt -> one (Ndarray.map sqrt)
  | Rsqrt -> one (Ndarray.map (fun x -> 1. /. sqrt x))
  | Relu -> one (Ndarray.map (fun x -> max 0. x))
  | Gelu -> one Ndarray.gelu
  | Silu -> one Ndarray.silu
  | Tanh -> one (Ndarray.map tanh)
  | Sigmoid -> one (Ndarray.map (fun x -> 1. /. (1. +. exp (-.x))))
  | Square -> one (Ndarray.map (fun x -> x *. x))
  | Scale r -> one (Ndarray.scale (Rat.to_float r))
  | Matmul | Hlo_dot -> two Ndarray.matmul
  | Identity -> one Fun.id
  | Concat { dim } | Hlo_concatenate { dim } -> Ndarray.concat ~dim args
  | Slice { dim; start; stop } | Hlo_slice { dim; start; stop } ->
      one
        (Ndarray.slice ~dim ~start:(dim_value env start)
           ~stop:(dim_value env stop))
  | Transpose { dim0; dim1 } -> one (Ndarray.transpose ~dim0 ~dim1)
  | Reshape { shape } -> one (Ndarray.reshape (Shape.concrete (lookup env) shape))
  | Pad { dim; before; after } ->
      one
        (Ndarray.pad ~dim ~before:(dim_value env before)
           ~after:(dim_value env after))
  | Sum_n | All_reduce -> Ndarray.sum_list args
  | Reduce_scatter { dim; index; count } ->
      let s = Ndarray.sum_list args in
      let size = List.nth (Ndarray.dims s) dim in
      let chunk = size / count in
      Ndarray.slice ~dim ~start:(index * chunk) ~stop:((index + 1) * chunk) s
  | All_gather { dim } -> Ndarray.concat ~dim args
  | Reduce_sum { dim; keepdim } -> one (Ndarray.reduce_sum ~dim ~keepdim)
  | Reduce_mean { dim; keepdim } -> one (Ndarray.reduce_mean ~dim ~keepdim)
  | Reduce_max { dim; keepdim } -> one (Ndarray.reduce_max ~dim ~keepdim)
  | Softmax { dim } -> one (Ndarray.softmax ~dim)
  | Layernorm { eps } -> three (Ndarray.layernorm ~eps)
  | Rmsnorm { eps } -> two (Ndarray.rmsnorm ~eps)
  | Embedding -> two Ndarray.embedding
  | Rope -> three Ndarray.rope
  | Mse_loss -> two Ndarray.mse_loss
  | Cross_entropy -> two Ndarray.cross_entropy
  | Swiglu_fused -> two (fun g u -> Ndarray.mul (Ndarray.silu g) u)

let rec eval_expr env lookup_tensor = function
  | Expr.Leaf t -> lookup_tensor t
  | Expr.App (op, args) ->
      eval_op env op (List.map (eval_expr env lookup_tensor) args)

type valuation = Ndarray.t Tensor.Map.t

let run env g ~inputs =
  let valuation = ref Tensor.Map.empty in
  List.iter
    (fun input ->
      match List.find_opt (fun (t, _) -> Tensor.equal t input) inputs with
      | Some (t, v) ->
          let want = Shape.concrete (lookup env) (Tensor.shape t) in
          if Ndarray.dims v <> want then
            invalid_arg
              (Fmt.str "Interp.run: input %a has dims %a, expected %a"
                 Tensor.pp_name t
                 Fmt.(Dump.list int)
                 (Ndarray.dims v)
                 Fmt.(Dump.list int)
                 want);
          valuation := Tensor.Map.add t v !valuation
      | None ->
          invalid_arg (Fmt.str "Interp.run: missing input %a" Tensor.pp input))
    (Graph.inputs g);
  List.iter
    (fun node ->
      let args =
        List.map
          (fun t ->
            match Tensor.Map.find_opt t !valuation with
            | Some v -> v
            | None ->
                invalid_arg
                  (Fmt.str "Interp.run: tensor %a not yet computed" Tensor.pp t))
          (Node.inputs node)
      in
      let v = eval_op env (Node.op node) args in
      valuation := Tensor.Map.add (Node.output node) v !valuation)
    (Graph.nodes g);
  !valuation

let outputs g valuation =
  List.map
    (fun t ->
      match Tensor.Map.find_opt t valuation with
      | Some v -> (t, v)
      | None -> invalid_arg "Interp.outputs: output not computed")
    (Graph.outputs g)

let random_inputs ?int_like st env g =
  let default_int t =
    if Dtype.is_integer (Tensor.dtype t) then Some 8 else None
  in
  let int_like = Option.value int_like ~default:default_int in
  List.map
    (fun t ->
      let dims = Shape.concrete (lookup env) (Tensor.shape t) in
      match int_like t with
      | Some hi -> (t, Ndarray.random_ints st ~hi dims)
      | None -> (t, Ndarray.random st dims))
    (Graph.inputs g)
