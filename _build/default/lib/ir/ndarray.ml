type t = { dims : int array; data : float array }

let numel_of dims = Array.fold_left ( * ) 1 dims

let strides_of dims =
  let n = Array.length dims in
  let s = Array.make n 1 in
  for i = n - 2 downto 0 do
    s.(i) <- s.(i + 1) * dims.(i + 1)
  done;
  s

let create dims fill =
  let dims = Array.of_list dims in
  { dims; data = Array.make (numel_of dims) fill }

let dims t = Array.to_list t.dims
let rank t = Array.length t.dims
let numel t = Array.length t.data

let offset_of t idx =
  let s = strides_of t.dims in
  List.fold_left ( + ) 0 (List.mapi (fun i j -> s.(i) * j) idx)

let get t idx = t.data.(offset_of t idx)
let set t idx v = t.data.(offset_of t idx) <- v

(* Enumerate multi-indices of [dims] in row-major order, reusing one
   mutable index array. *)
let iter_indices dims f =
  let n = Array.length dims in
  if numel_of dims > 0 then begin
    let idx = Array.make n 0 in
    let rec bump i =
      if i >= 0 then begin
        idx.(i) <- idx.(i) + 1;
        if idx.(i) = dims.(i) then begin
          idx.(i) <- 0;
          bump (i - 1)
        end
      end
    in
    let total = numel_of dims in
    for off = 0 to total - 1 do
      f off idx;
      bump (n - 1)
    done
  end

let init dims f =
  let t = create dims 0. in
  iter_indices t.dims (fun off idx -> t.data.(off) <- f (Array.to_list idx));
  t

let scalar v = { dims = [||]; data = [| v |] }

let of_list dims vals =
  let t = create dims 0. in
  if List.length vals <> numel t then invalid_arg "Ndarray.of_list: size";
  List.iteri (fun i v -> t.data.(i) <- v) vals;
  t

let to_flat_list t = Array.to_list t.data

let random st dims =
  let t = create dims 0. in
  Array.iteri (fun i _ -> t.data.(i) <- Random.State.float st 2.0 -. 1.0) t.data;
  t

let random_ints st ~hi dims =
  let t = create dims 0. in
  Array.iteri
    (fun i _ -> t.data.(i) <- float_of_int (Random.State.int st hi))
    t.data;
  t

let map f t = { t with data = Array.map f t.data }

let broadcast_dims a b =
  let ra = Array.length a and rb = Array.length b in
  let n = max ra rb in
  let da i = if i < n - ra then 1 else a.(i - (n - ra)) in
  let db i = if i < n - rb then 1 else b.(i - (n - rb)) in
  Array.init n (fun i ->
      let x = da i and y = db i in
      if x = y then x
      else if x = 1 then y
      else if y = 1 then x
      else invalid_arg "Ndarray: broadcast mismatch")

(* Offset into [t] of a broadcast result index [idx] (over result rank
   [n]): trailing dims align; size-1 dims of [t] contribute stride 0. *)
let bcast_offset t n idx =
  let r = Array.length t.dims in
  let s = strides_of t.dims in
  let off = ref 0 in
  for i = 0 to r - 1 do
    let j = idx.(n - r + i) in
    if t.dims.(i) <> 1 then off := !off + (s.(i) * j)
  done;
  !off

let map2 f a b =
  let dims = broadcast_dims a.dims b.dims in
  let out = { dims; data = Array.make (numel_of dims) 0. } in
  let n = Array.length dims in
  iter_indices dims (fun off idx ->
      out.data.(off) <-
        f a.data.(bcast_offset a n idx) b.data.(bcast_offset b n idx));
  out

let add = map2 ( +. )
let sub = map2 ( -. )
let mul = map2 ( *. )
let div = map2 ( /. )
let scale k t = map (fun x -> k *. x) t

let sum_list = function
  | [] -> invalid_arg "Ndarray.sum_list: empty"
  | x :: rest -> List.fold_left add x rest

let matmul2 a b ~ad ~bd ~aoff ~boff out ~ooff =
  let m = ad.(0) and k = ad.(1) and n = bd.(1) in
  for i = 0 to m - 1 do
    for j = 0 to n - 1 do
      let acc = ref 0. in
      for l = 0 to k - 1 do
        acc := !acc +. (a.(aoff + (i * k) + l) *. b.(boff + (l * n) + j))
      done;
      out.(ooff + (i * n) + j) <- !acc
    done
  done

let matmul a b =
  let ra = rank a and rb = rank b in
  if ra < 2 || rb < 2 then invalid_arg "Ndarray.matmul: rank";
  let m = a.dims.(ra - 2) and k = a.dims.(ra - 1) in
  let kb = b.dims.(rb - 2) and n = b.dims.(rb - 1) in
  if k <> kb then invalid_arg "Ndarray.matmul: inner dims";
  let batch_a = Array.sub a.dims 0 (ra - 2) in
  let batch_b = Array.sub b.dims 0 (rb - 2) in
  let batch =
    if rb = 2 then batch_a
    else if batch_a = batch_b then batch_a
    else invalid_arg "Ndarray.matmul: batch dims"
  in
  let nb = numel_of batch in
  let dims = Array.append batch [| m; n |] in
  let out = { dims; data = Array.make (numel_of dims) 0. } in
  let astep = m * k and bstep = if rb = 2 then 0 else k * n in
  let ostep = m * n in
  for i = 0 to nb - 1 do
    matmul2 a.data b.data ~ad:[| m; k |] ~bd:[| k; n |] ~aoff:(i * astep)
      ~boff:(i * bstep) out.data ~ooff:(i * ostep)
  done;
  out

let norm_axis t dim =
  let r = rank t in
  let d = if dim < 0 then r + dim else dim in
  if d < 0 || d >= r then invalid_arg "Ndarray: axis out of range";
  d

let concat ~dim = function
  | [] -> invalid_arg "Ndarray.concat: empty"
  | first :: _ as ts ->
      let d = norm_axis first dim in
      let total = List.fold_left (fun acc t -> acc + t.dims.(d)) 0 ts in
      let dims = Array.copy first.dims in
      dims.(d) <- total;
      let out = { dims; data = Array.make (numel_of dims) 0. } in
      let offset = ref 0 in
      List.iter
        (fun t ->
          iter_indices t.dims (fun off idx ->
              let tgt = Array.copy idx in
              tgt.(d) <- tgt.(d) + !offset;
              let s = strides_of dims in
              let o = ref 0 in
              Array.iteri (fun i j -> o := !o + (s.(i) * j)) tgt;
              out.data.(!o) <- t.data.(off));
          offset := !offset + t.dims.(d))
        ts;
      out

let slice ~dim ~start ~stop t =
  let d = norm_axis t dim in
  if start < 0 || stop > t.dims.(d) || start > stop then
    invalid_arg "Ndarray.slice: bounds";
  let dims = Array.copy t.dims in
  dims.(d) <- stop - start;
  let out = { dims; data = Array.make (numel_of dims) 0. } in
  let s = strides_of t.dims in
  iter_indices dims (fun off idx ->
      let o = ref 0 in
      Array.iteri
        (fun i j -> o := !o + (s.(i) * if i = d then j + start else j))
        idx;
      out.data.(off) <- t.data.(!o));
  out

let transpose ~dim0 ~dim1 t =
  let d0 = norm_axis t dim0 and d1 = norm_axis t dim1 in
  let dims = Array.copy t.dims in
  dims.(d0) <- t.dims.(d1);
  dims.(d1) <- t.dims.(d0);
  let out = { dims; data = Array.make (numel_of dims) 0. } in
  let s = strides_of t.dims in
  iter_indices dims (fun off idx ->
      let swapped = Array.copy idx in
      swapped.(d0) <- idx.(d1);
      swapped.(d1) <- idx.(d0);
      let o = ref 0 in
      Array.iteri (fun i j -> o := !o + (s.(i) * j)) swapped;
      out.data.(off) <- t.data.(!o));
  out

let reshape dims t =
  let dims = Array.of_list dims in
  if numel_of dims <> numel t then invalid_arg "Ndarray.reshape: size";
  { dims; data = Array.copy t.data }

let pad ~dim ~before ~after t =
  let d = norm_axis t dim in
  let dims = Array.copy t.dims in
  dims.(d) <- t.dims.(d) + before + after;
  let out = { dims; data = Array.make (numel_of dims) 0. } in
  let s = strides_of dims in
  iter_indices t.dims (fun off idx ->
      let o = ref 0 in
      Array.iteri
        (fun i j -> o := !o + (s.(i) * if i = d then j + before else j))
        idx;
      out.data.(!o) <- t.data.(off));
  out

let reduce_with ~init ~f ~post ~dim ~keepdim t =
  let d = norm_axis t dim in
  let out_dims = Array.copy t.dims in
  out_dims.(d) <- 1;
  let out = { dims = out_dims; data = Array.make (numel_of out_dims) init } in
  let counts = Array.make (numel_of out_dims) 0 in
  let s = strides_of out_dims in
  iter_indices t.dims (fun off idx ->
      let o = ref 0 in
      Array.iteri (fun i j -> o := !o + (s.(i) * if i = d then 0 else j)) idx;
      out.data.(!o) <- f out.data.(!o) t.data.(off);
      counts.(!o) <- counts.(!o) + 1);
  Array.iteri (fun i v -> out.data.(i) <- post v counts.(i)) out.data;
  if keepdim then out
  else
    let dims =
      Array.of_list
        (List.filteri (fun i _ -> i <> d) (Array.to_list t.dims))
    in
    { dims; data = out.data }

let reduce_sum ~dim ~keepdim t =
  reduce_with ~init:0. ~f:( +. ) ~post:(fun v _ -> v) ~dim ~keepdim t

let reduce_mean ~dim ~keepdim t =
  reduce_with ~init:0. ~f:( +. )
    ~post:(fun v c -> v /. float_of_int (max 1 c))
    ~dim ~keepdim t

let reduce_max ~dim ~keepdim t =
  reduce_with ~init:neg_infinity ~f:max ~post:(fun v _ -> v) ~dim ~keepdim t

let softmax ~dim t =
  let m = reduce_max ~dim ~keepdim:true t in
  let e = map exp (sub t m) in
  let z = reduce_sum ~dim ~keepdim:true e in
  div e z

let layernorm ~eps x w b =
  let mean = reduce_mean ~dim:(-1) ~keepdim:true x in
  let centered = sub x mean in
  let var = reduce_mean ~dim:(-1) ~keepdim:true (mul centered centered) in
  let inv = map (fun v -> 1. /. sqrt (v +. eps)) var in
  add (mul (mul centered inv) w) b

let rmsnorm ~eps x w =
  let ms = reduce_mean ~dim:(-1) ~keepdim:true (mul x x) in
  let inv = map (fun v -> 1. /. sqrt (v +. eps)) ms in
  mul (mul x inv) w

let embedding w ids =
  if rank w <> 2 then invalid_arg "Ndarray.embedding: weight rank";
  let d = w.dims.(1) in
  let out_dims = Array.append ids.dims [| d |] in
  let out = { dims = out_dims; data = Array.make (numel_of out_dims) 0. } in
  Array.iteri
    (fun i id ->
      let row = int_of_float id in
      Array.blit w.data (row * d) out.data (i * d) d)
    ids.data;
  out

(* Rotate-half rotary embedding on the last dimension:
   out = x * cos + rotate_half(x) * sin, with
   rotate_half([x1; x2]) = [-x2; x1]. *)
let rope x cos sin =
  let r = rank x in
  let d = x.dims.(r - 1) in
  if d mod 2 <> 0 then invalid_arg "Ndarray.rope: odd last dim";
  let h = d / 2 in
  let lo = slice ~dim:(r - 1) ~start:0 ~stop:h x in
  let hi = slice ~dim:(r - 1) ~start:h ~stop:d x in
  let rot = concat ~dim:(r - 1) [ map (fun v -> -.v) hi; lo ] in
  add (mul x cos) (mul rot sin)

let mse_loss p t =
  if p.dims <> t.dims then invalid_arg "Ndarray.mse_loss: dims";
  let n = float_of_int (numel p) in
  let acc = ref 0. in
  Array.iteri
    (fun i x ->
      let dlt = x -. t.data.(i) in
      acc := !acc +. (dlt *. dlt))
    p.data;
  scalar (!acc /. n)

let cross_entropy logits targets =
  if rank logits <> 2 then invalid_arg "Ndarray.cross_entropy: rank";
  let s = logits.dims.(0) and v = logits.dims.(1) in
  let acc = ref 0. in
  for i = 0 to s - 1 do
    let mx = ref neg_infinity in
    for j = 0 to v - 1 do
      mx := max !mx logits.data.((i * v) + j)
    done;
    let z = ref 0. in
    for j = 0 to v - 1 do
      z := !z +. exp (logits.data.((i * v) + j) -. !mx)
    done;
    let tgt = int_of_float targets.data.(i) in
    acc := !acc +. (!mx +. log !z -. logits.data.((i * v) + tgt))
  done;
  scalar (!acc /. float_of_int s)

let silu t = map (fun x -> x /. (1. +. exp (-.x))) t

let gelu t =
  let c = sqrt (2. /. Float.pi) in
  map
    (fun x -> 0.5 *. x *. (1. +. tanh (c *. (x +. (0.044715 *. x *. x *. x)))))
    t

let max_abs_diff a b =
  if a.dims <> b.dims then infinity
  else begin
    let m = ref 0. in
    Array.iteri (fun i x -> m := max !m (abs_float (x -. b.data.(i)))) a.data;
    !m
  end

let approx_equal ?(tol = 1e-4) a b = max_abs_diff a b <= tol

let pp ppf t =
  Fmt.pf ppf "ndarray%a %a"
    Fmt.(brackets (list ~sep:(any "x") int))
    (dims t)
    Fmt.(brackets (list ~sep:(any "; ") float))
    (Array.to_list t.data |> fun l ->
     if List.length l <= 16 then l
     else List.filteri (fun i _ -> i < 16) l)
