open Entangle_symbolic
module B = Graph.Builder

type outcome = {
  graph : Graph.t;
  seed_of : (Tensor.t * Tensor.t) list;
  mirror_of : (Tensor.t * Tensor.t) list;
  grad_of : (Tensor.t * Tensor.t) list;
}

let supported (op : Op.t) =
  match op with
  | Op.Matmul | Op.Add | Op.Sub | Op.Mul | Op.Neg | Op.Scale _ | Op.Identity
  | Op.Sum_n | Op.Concat _ | Op.Slice _ | Op.Transpose _ | Op.Pad _
  | Op.Silu | Op.Sigmoid | Op.Square | Op.Mse_loss | Op.All_reduce
  | Op.All_gather _ | Op.Reduce_scatter _ ->
      true
  | _ -> false

exception Unsupported of string

let transpose01 = Op.Transpose { dim0 = 0; dim1 = 1 }

(* Gradient of a broadcast operand: reduce the incoming gradient over
   the axes the operand was broadcast along, so shapes match again. *)
let debroadcast b dy ~from_shape ~to_shape =
  let rank_from = Shape.rank from_shape and rank_to = Shape.rank to_shape in
  (* Sum out leading axes absent in the operand. *)
  let g = ref dy in
  for _ = 1 to rank_from - rank_to do
    g := B.add b (Op.Reduce_sum { dim = 0; keepdim = false }) [ !g ]
  done;
  (* Sum (keeping dims) over axes where the operand had size one. *)
  List.iteri
    (fun i d ->
      if Symdim.equal d Symdim.one then
        g := B.add b (Op.Reduce_sum { dim = i; keepdim = true }) [ !g ])
    to_shape;
  !g

let backward ?(tie = []) ?name fwd ~wrt =
  let bname =
    match name with Some n -> n | None -> Graph.name fwd ^ "-bwd"
  in
  let b = B.create ~constraints:(Graph.constraints fwd) bname in
  (* Mirrors of forward tensors, created lazily when a gradient formula
     references the forward value. *)
  let mirrors : (int, Tensor.t) Hashtbl.t = Hashtbl.create 16 in
  let mirror_list = ref [] in
  let mirror t =
    let key = (Tensor.id t :> int) in
    match Hashtbl.find_opt mirrors key with
    | Some m -> m
    | None ->
        let m =
          B.input b ~dtype:(Tensor.dtype t) (Tensor.name t) (Tensor.shape t)
        in
        Hashtbl.replace mirrors key m;
        mirror_list := (t, m) :: !mirror_list;
        m
  in
  (* Accumulated gradient of each forward tensor. *)
  let grads : (int, Tensor.t) Hashtbl.t = Hashtbl.create 16 in
  let grad_opt t = Hashtbl.find_opt grads (Tensor.id t :> int) in
  let accumulate t dg =
    let key = (Tensor.id t :> int) in
    match Hashtbl.find_opt grads key with
    | None -> Hashtbl.replace grads key dg
    | Some existing -> Hashtbl.replace grads key (B.add b Op.Add [ existing; dg ])
  in
  (* Seeds for every forward output. *)
  let seeds =
    List.map
      (fun o ->
        let seed =
          B.input b ~dtype:(Tensor.dtype o)
            ("d_" ^ Tensor.name o)
            (Tensor.shape o)
        in
        accumulate o seed;
        (o, seed))
      (Graph.outputs fwd)
  in
  let chunk_bounds shape dim count index =
    let size = Shape.dim shape dim in
    match Symdim.div_int size count with
    | None -> raise (Unsupported "collective chunk not divisible")
    | Some chunk ->
        (Symdim.mul_int index chunk, Symdim.mul_int (index + 1) chunk)
  in
  let node_grad node dy =
    let open Op in
    let inputs = Node.inputs node in
    let shape_of t = Tensor.shape t in
    match (Node.op node, inputs) with
    | Matmul, [ a; bb ] ->
        if Shape.rank (shape_of a) <> 2 || Shape.rank (shape_of bb) <> 2 then
          raise (Unsupported "matmul gradient requires rank 2");
        accumulate a (B.add b Matmul [ dy; B.add b transpose01 [ mirror bb ] ]);
        accumulate bb (B.add b Matmul [ B.add b transpose01 [ mirror a ]; dy ])
    | Add, [ x; y ] ->
        accumulate x (debroadcast b dy ~from_shape:(Tensor.shape (Node.output node)) ~to_shape:(shape_of x));
        accumulate y (debroadcast b dy ~from_shape:(Tensor.shape (Node.output node)) ~to_shape:(shape_of y))
    | Sub, [ x; y ] ->
        accumulate x (debroadcast b dy ~from_shape:(Tensor.shape (Node.output node)) ~to_shape:(shape_of x));
        accumulate y
          (debroadcast b (B.add b Neg [ dy ])
             ~from_shape:(Tensor.shape (Node.output node))
             ~to_shape:(shape_of y))
    | Mul, [ x; y ] ->
        accumulate x
          (debroadcast b (B.add b Mul [ dy; mirror y ])
             ~from_shape:(Tensor.shape (Node.output node))
             ~to_shape:(shape_of x));
        accumulate y
          (debroadcast b (B.add b Mul [ dy; mirror x ])
             ~from_shape:(Tensor.shape (Node.output node))
             ~to_shape:(shape_of y))
    | Neg, [ x ] -> accumulate x (B.add b Neg [ dy ])
    | Scale r, [ x ] -> accumulate x (B.add b (Scale r) [ dy ])
    | Identity, [ x ] -> accumulate x dy
    | Sum_n, xs -> List.iter (fun x -> accumulate x dy) xs
    | Concat { dim }, xs ->
        let off = ref Symdim.zero in
        List.iter
          (fun x ->
            let size = Shape.dim (shape_of x) dim in
            let stop = Symdim.add !off size in
            accumulate x
              (B.add b (Slice { dim; start = !off; stop }) [ dy ]);
            off := stop)
          xs
    | Slice { dim; start; stop }, [ x ] ->
        let size = Shape.dim (shape_of x) dim in
        accumulate x
          (B.add b
             (Pad { dim; before = start; after = Symdim.sub size stop })
             [ dy ])
    | Transpose { dim0; dim1 }, [ x ] ->
        accumulate x (B.add b (Transpose { dim0; dim1 }) [ dy ])
    | Pad { dim; before; after = _ }, [ x ] ->
        let size = Shape.dim (shape_of x) dim in
        accumulate x
          (B.add b
             (Slice { dim; start = before; stop = Symdim.add before size })
             [ dy ])
    | Silu, [ x ] ->
        (* d silu = s + x * s * (1 - s), with 1 - s = sigmoid(-x). *)
        let xm = mirror x in
        let s = B.add b Sigmoid [ xm ] in
        let s_neg = B.add b Sigmoid [ B.add b Neg [ xm ] ] in
        let deriv =
          B.add b Add [ s; B.add b Mul [ B.add b Mul [ xm; s ]; s_neg ] ]
        in
        accumulate x (B.add b Mul [ dy; deriv ])
    | Sigmoid, [ x ] ->
        let xm = mirror x in
        let s = B.add b Sigmoid [ xm ] in
        let s_neg = B.add b Sigmoid [ B.add b Neg [ xm ] ] in
        accumulate x (B.add b Mul [ dy; B.add b Mul [ s; s_neg ] ])
    | Square, [ x ] ->
        accumulate x (B.add b (Scale (Rat.of_int 2)) [ B.add b Mul [ dy; mirror x ] ])
    | Mse_loss, [ p; t ] -> (
        match Shape.numel (shape_of p) with
        | Some n when Symdim.to_int n <> None ->
            let n = Option.get (Symdim.to_int n) in
            let diff = B.add b Sub [ mirror p; mirror t ] in
            let base = B.add b (Scale (Rat.make 2 n)) [ B.add b Mul [ dy; diff ] ] in
            accumulate p base;
            accumulate t (B.add b Neg [ base ])
        | _ -> raise (Unsupported "mse gradient requires a concrete size"))
    | All_reduce, xs -> List.iter (fun x -> accumulate x dy) xs
    | All_gather { dim }, xs ->
        let count = List.length xs in
        List.iteri
          (fun i x ->
            let start, stop =
              chunk_bounds (Tensor.shape (Node.output node)) dim count i
            in
            accumulate x (B.add b (Slice { dim; start; stop }) [ dy ]))
          xs
    | Reduce_scatter { dim; index; count }, xs ->
        (* out = chunk(sum xs): every contributor's gradient is the seed
           embedded at the chunk's offset. *)
        List.iter
          (fun x ->
            let size = Shape.dim (shape_of x) dim in
            let chunk =
              match Symdim.div_int size count with
              | Some c -> c
              | None -> raise (Unsupported "reduce_scatter chunk")
            in
            let before = Symdim.mul_int index chunk in
            let after = Symdim.sub size (Symdim.mul_int (index + 1) chunk) in
            accumulate x (B.add b (Pad { dim; before; after }) [ dy ]))
          xs
    | op, _ ->
        raise (Unsupported (Fmt.str "no gradient for operator %s" (Op.name op)))
  in
  match
    (* Reverse topological sweep. *)
    List.iter
      (fun node ->
        match grad_opt (Node.output node) with
        | None -> () (* does not influence any output *)
        | Some dy -> node_grad node dy)
      (List.rev (Graph.nodes fwd));
    ()
  with
  | exception Unsupported reason -> Error ("Autodiff.backward: " ^ reason)
  | () -> (
      (* Tie replica groups with an all-reduce over their gradients. *)
      let tied : (int, Tensor.t) Hashtbl.t = Hashtbl.create 8 in
      let tie_ok =
        List.for_all
          (fun group ->
            let member_grads = List.filter_map grad_opt group in
            if List.length member_grads <> List.length group then false
            else begin
              List.iteri
                (fun i t ->
                  let reduced =
                    B.add b
                      ~name:(Fmt.str "grad_sync_%s_%d" (Tensor.name t) i)
                      Op.All_reduce member_grads
                  in
                  Hashtbl.replace tied (Tensor.id t :> int) reduced)
                group;
              true
            end)
          tie
      in
      if not tie_ok then
        Error "Autodiff.backward: a tied tensor received no gradient"
      else
        let missing =
          List.filter
            (fun t ->
              grad_opt t = None
              && not (Hashtbl.mem tied (Tensor.id t :> int)))
            wrt
        in
        match missing with
        | t :: _ ->
            Error
              (Fmt.str "Autodiff.backward: %s receives no gradient"
                 (Tensor.name t))
        | [] ->
            let grad_of =
              List.map
                (fun t ->
                  let g =
                    match Hashtbl.find_opt tied (Tensor.id t :> int) with
                    | Some g -> g
                    | None -> Option.get (grad_opt t)
                  in
                  let named =
                    B.add b ~name:("grad_" ^ Tensor.name t) Op.Identity [ g ]
                  in
                  B.output b named;
                  (t, named))
                wrt
            in
            Ok
              {
                graph = B.finish b;
                seed_of = seeds;
                mirror_of = List.rev !mirror_list;
                grad_of;
              })
