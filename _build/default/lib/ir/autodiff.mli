(** Reverse-mode differentiation of computation graphs.

    Produces a separate backward graph in the style TorchDynamo captures
    them (the paper, section 6.1): the backward graph's inputs are seed
    gradients (one per forward output) plus mirrors of the forward
    tensors the gradient formulas reference; its outputs are gradients
    of the requested tensors.

    [tie] declares groups of forward tensors that are replicas of one
    logical value (for instance one weight replicated across ranks);
    their gradients are combined with an all-reduce, exactly what
    Megatron-style optimizers do — and exactly what the bugs 5/8/9 of
    the paper forgot. Omitting a group reproduces that class of bug. *)

type outcome = {
  graph : Graph.t;
  seed_of : (Tensor.t * Tensor.t) list;
      (** forward output -> seed-gradient input of the backward graph *)
  mirror_of : (Tensor.t * Tensor.t) list;
      (** forward tensor -> activation input of the backward graph *)
  grad_of : (Tensor.t * Tensor.t) list;
      (** requested tensor -> gradient output of the backward graph *)
}

val backward :
  ?tie:Tensor.t list list ->
  ?name:string ->
  Graph.t ->
  wrt:Tensor.t list ->
  (outcome, string) result
(** [Error] when the forward graph uses an operator whose derivative is
    not supported (softmax, norms, embedding, rope, losses other than
    MSE, max-based reductions) or when a requested tensor receives no
    gradient. *)

val supported : Op.t -> bool
(** Whether {!backward} can differentiate through the operator. *)
