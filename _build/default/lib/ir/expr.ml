
type t = Leaf of Tensor.t | App of Op.t * t list

let leaf t = Leaf t
let app op args = App (op, args)

let leaves expr =
  let rec go acc = function
    | Leaf t -> if List.exists (Tensor.equal t) acc then acc else t :: acc
    | App (_, args) -> List.fold_left go acc args
  in
  List.rev (go [] expr)

let rec size = function
  | Leaf _ -> 0
  | App (_, args) -> 1 + List.fold_left (fun acc e -> acc + size e) 0 args

let rec depth = function
  | Leaf _ -> 0
  | App (_, args) -> 1 + List.fold_left (fun acc e -> max acc (depth e)) 0 args

let rec is_clean = function
  | Leaf _ -> true
  | App (op, args) -> Op.is_clean op && List.for_all is_clean args

let rec mem_leaf t = function
  | Leaf u -> Tensor.equal t u
  | App (_, args) -> List.exists (mem_leaf t) args

let rec subst f = function
  | Leaf t as e -> ( match f t with Some e' -> e' | None -> e)
  | App (op, args) -> App (op, List.map (subst f) args)

let rec infer_shape store = function
  | Leaf t -> Ok (Tensor.shape t)
  | App (op, args) ->
      let rec shapes acc = function
        | [] -> Ok (List.rev acc)
        | a :: rest -> (
            match infer_shape store a with
            | Ok s -> shapes (s :: acc) rest
            | Error _ as e -> e)
      in
      Result.bind (shapes [] args) (Op.infer_shape store op)

let rec compare a b =
  match (a, b) with
  | Leaf x, Leaf y -> Tensor.compare x y
  | Leaf _, App _ -> -1
  | App _, Leaf _ -> 1
  | App (opa, xs), App (opb, ys) -> (
      match Op.compare opa opb with
      | 0 -> List.compare compare xs ys
      | c -> c)

let equal a b = compare a b = 0

let rec pp ppf = function
  | Leaf t -> Tensor.pp_name ppf t
  | App (op, args) ->
      Fmt.pf ppf "(%a %a)" Op.pp op (Fmt.list ~sep:(Fmt.any " ") pp) args

let to_string e = Fmt.str "%a" pp e
