(** Element types of tensors.

    The checker is static and never inspects element values, but dtypes
    participate in lemma validation (the paper validates lemmas "by
    checking correct shapes and types"). *)

type t = F32 | F16 | BF16 | I64 | Bool

val equal : t -> t -> bool
val compare : t -> t -> int

val is_float : t -> bool
val is_integer : t -> bool

val promote : t -> t -> t option
(** Result dtype of a binary arithmetic op, [None] when incompatible
    (for instance float with bool). *)

val pp : t Fmt.t
val to_string : t -> string
