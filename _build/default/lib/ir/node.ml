type t = { id : int; op : Op.t; inputs : Tensor.t list; output : Tensor.t }

let id t = t.id
let op t = t.op
let inputs t = t.inputs
let output t = t.output

let pp ppf t =
  Fmt.pf ppf "%a = %a(%a)" Tensor.pp_name t.output Op.pp t.op
    (Fmt.list ~sep:(Fmt.any ", ") Tensor.pp_name)
    t.inputs
