(** Reference interpreter for graphs and expressions.

    Executes operators on {!Ndarray} values under a concrete assignment
    of shape symbols. Used by the test suite to validate lemmas and by
    the soundness check that replays a relation on distributed outputs. *)


type env = int Stdlib.Map.Make(String).t
(** Concrete values for shape symbols. *)

val env_of_list : (string * int) list -> env
val lookup : env -> string -> int

val eval_op : env -> Op.t -> Ndarray.t list -> Ndarray.t
(** Raises [Invalid_argument] on malformed applications. *)

val eval_expr : env -> (Tensor.t -> Ndarray.t) -> Expr.t -> Ndarray.t

type valuation = Ndarray.t Tensor.Map.t

val run :
  env -> Graph.t -> inputs:(Tensor.t * Ndarray.t) list -> valuation
(** Execute every node of the graph in order; the result maps every
    tensor of the graph (inputs included) to its value. Raises
    [Invalid_argument] when an input is missing or has wrong dims. *)

val outputs : Graph.t -> valuation -> (Tensor.t * Ndarray.t) list

val random_inputs :
  ?int_like:(Tensor.t -> int option) ->
  Random.State.t ->
  env ->
  Graph.t ->
  (Tensor.t * Ndarray.t) list
(** Random concrete values matching each graph input's shape under
    [env]. [int_like t = Some hi] makes that input integer-valued in
    [0, hi) (for embedding ids / targets); by default tensors with an
    integer dtype of rank >= 1 draw from [0, 8). *)
