type t = F32 | F16 | BF16 | I64 | Bool

let equal = ( = )
let compare = Stdlib.compare
let is_float = function F32 | F16 | BF16 -> true | I64 | Bool -> false
let is_integer = function I64 -> true | F32 | F16 | BF16 | Bool -> false

let rank = function Bool -> 0 | I64 -> 1 | F16 -> 2 | BF16 -> 2 | F32 -> 3

let promote a b =
  match (a, b) with
  | Bool, Bool -> Some Bool
  | (Bool | I64), (Bool | I64) -> Some I64
  | (F16, BF16 | BF16, F16) -> Some F32
  | x, y -> if rank x >= rank y then Some x else Some y

let to_string = function
  | F32 -> "f32"
  | F16 -> "f16"
  | BF16 -> "bf16"
  | I64 -> "i64"
  | Bool -> "bool"

let pp ppf t = Fmt.string ppf (to_string t)
