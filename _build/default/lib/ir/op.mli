(** The operator set of the IR.

    Mirrors the subset of PyTorch's ATen IR exercised by the paper's
    evaluation, plus explicit collective-communication kernels (which
    appear only in distributed graphs) and a few fused / HLO-flavored
    operators used by the vLLM (Qwen2) and NeuronX (Llama-3) models.

    An operator here is a {e kernel}: a vertex of a computation graph.
    The same type doubles as the function symbol of rewrite expressions
    and e-nodes. *)

open Entangle_symbolic

type t =
  (* Elementwise binary, NumPy broadcasting. *)
  | Add
  | Sub
  | Mul
  | Div
  | Maximum
  | Pow
  (* Elementwise unary. *)
  | Neg
  | Exp
  | Log
  | Sqrt
  | Rsqrt
  | Relu
  | Gelu
  | Silu
  | Tanh
  | Sigmoid
  | Square
  | Scale of Rat.t  (** multiply by a rational constant *)
  (* Contractions. *)
  | Matmul
  (* Rearrangement (the "clean" ops of section 3.2). *)
  | Identity
  | Concat of { dim : int }  (** variadic *)
  | Slice of { dim : int; start : Symdim.t; stop : Symdim.t }
  | Transpose of { dim0 : int; dim1 : int }
  | Reshape of { shape : Shape.t }
  | Pad of { dim : int; before : Symdim.t; after : Symdim.t }
      (** zero padding along one dimension *)
  (* Reductions. *)
  | Sum_n  (** variadic elementwise sum; the combining form of all-reduce *)
  | Reduce_sum of { dim : int; keepdim : bool }
  | Reduce_mean of { dim : int; keepdim : bool }
  | Reduce_max of { dim : int; keepdim : bool }
  (* Neural-network kernels. *)
  | Softmax of { dim : int }
  | Layernorm of { eps : float }  (** inputs: x, weight, bias *)
  | Rmsnorm of { eps : float }  (** inputs: x, weight *)
  | Embedding  (** inputs: weight [v; d], ids -> ids-shape @ [d] *)
  | Rope  (** rotary embedding; inputs: x, cos, sin *)
  | Mse_loss  (** inputs: prediction, target -> scalar *)
  | Cross_entropy  (** inputs: logits [s; v], targets [s] -> scalar *)
  (* Collective-communication kernels (distributed graphs only). Each
     node is the kernel as seen from one rank: the inputs are every
     rank's contribution and the output is that rank's local result. *)
  | All_reduce  (** variadic; output = elementwise sum of inputs *)
  | Reduce_scatter of { dim : int; index : int; count : int }
      (** output = chunk [index] of sum of inputs, split [count] ways
          along [dim] *)
  | All_gather of { dim : int }  (** output = concat of inputs *)
  (* Fused kernels (vLLM flavor, lemma class "v"). *)
  | Swiglu_fused  (** inputs: gate, up; silu(gate) * up *)
  (* HLO flavor (NeuronX / XLA, lemma class "h"). *)
  | Hlo_dot  (** HLO dot-general restricted to matmul semantics *)
  | Hlo_slice of { dim : int; start : Symdim.t; stop : Symdim.t }
  | Hlo_concatenate of { dim : int }

type arity = Exact of int | At_least of int

val arity : t -> arity
val arity_ok : t -> int -> bool

val is_clean : t -> bool
(** Whether the operator may appear in a clean expression (section 3.2):
    rearrangements ([slice]/[concat]/[transpose]/[reshape]/[pad]/
    [identity]) and reductions that merely combine distributed tensors
    ([Sum_n] and the collectives). *)

val is_collective : t -> bool

val name : t -> string
(** Mnemonic without attributes, e.g. ["matmul"], ["concat"]. *)

val key : t -> string
(** Canonical string embedding attributes; [key a = key b] iff the two
    operators are semantically the same kernel. Used for hashing and
    ordering in the e-graph. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val infer_shape :
  Constraint_store.t -> t -> Shape.t list -> (Shape.t, string) result
(** Output shape from input shapes, consulting the constraint store for
    symbolic comparisons. [Error] explains the shape mismatch. *)

val infer_dtype : t -> Dtype.t list -> (Dtype.t, string) result

val pp : t Fmt.t
