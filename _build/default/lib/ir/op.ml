open Entangle_symbolic

type t =
  | Add
  | Sub
  | Mul
  | Div
  | Maximum
  | Pow
  | Neg
  | Exp
  | Log
  | Sqrt
  | Rsqrt
  | Relu
  | Gelu
  | Silu
  | Tanh
  | Sigmoid
  | Square
  | Scale of Rat.t
  | Matmul
  | Identity
  | Concat of { dim : int }
  | Slice of { dim : int; start : Symdim.t; stop : Symdim.t }
  | Transpose of { dim0 : int; dim1 : int }
  | Reshape of { shape : Shape.t }
  | Pad of { dim : int; before : Symdim.t; after : Symdim.t }
  | Sum_n
  | Reduce_sum of { dim : int; keepdim : bool }
  | Reduce_mean of { dim : int; keepdim : bool }
  | Reduce_max of { dim : int; keepdim : bool }
  | Softmax of { dim : int }
  | Layernorm of { eps : float }
  | Rmsnorm of { eps : float }
  | Embedding
  | Rope
  | Mse_loss
  | Cross_entropy
  | All_reduce
  | Reduce_scatter of { dim : int; index : int; count : int }
  | All_gather of { dim : int }
  | Swiglu_fused
  | Hlo_dot
  | Hlo_slice of { dim : int; start : Symdim.t; stop : Symdim.t }
  | Hlo_concatenate of { dim : int }

type arity = Exact of int | At_least of int

let arity = function
  | Add | Sub | Mul | Div | Maximum | Pow -> Exact 2
  | Neg | Exp | Log | Sqrt | Rsqrt | Relu | Gelu | Silu | Tanh | Sigmoid
  | Square | Scale _ ->
      Exact 1
  | Matmul | Hlo_dot -> Exact 2
  | Identity -> Exact 1
  | Concat _ | Hlo_concatenate _ -> At_least 1
  | Slice _ | Hlo_slice _ -> Exact 1
  | Transpose _ -> Exact 1
  | Reshape _ -> Exact 1
  | Pad _ -> Exact 1
  | Sum_n -> At_least 1
  | Reduce_sum _ | Reduce_mean _ | Reduce_max _ -> Exact 1
  | Softmax _ -> Exact 1
  | Layernorm _ -> Exact 3
  | Rmsnorm _ -> Exact 2
  | Embedding -> Exact 2
  | Rope -> Exact 3
  | Mse_loss -> Exact 2
  | Cross_entropy -> Exact 2
  | All_reduce -> At_least 1
  | Reduce_scatter _ -> At_least 1
  | All_gather _ -> At_least 1
  | Swiglu_fused -> Exact 2

let arity_ok op n =
  match arity op with Exact k -> n = k | At_least k -> n >= k

let is_clean = function
  | Identity | Concat _ | Slice _ | Transpose _ | Reshape _ | Pad _ | Sum_n
  | All_reduce | Reduce_scatter _ | All_gather _ | Hlo_slice _
  | Hlo_concatenate _ ->
      true
  | Add | Sub | Mul | Div | Maximum | Pow | Neg | Exp | Log | Sqrt | Rsqrt
  | Relu | Gelu | Silu | Tanh | Sigmoid | Square | Scale _ | Matmul
  | Reduce_sum _ | Reduce_mean _ | Reduce_max _ | Softmax _ | Layernorm _
  | Rmsnorm _ | Embedding | Rope | Mse_loss | Cross_entropy | Swiglu_fused
  | Hlo_dot ->
      false

let is_collective = function
  | All_reduce | Reduce_scatter _ | All_gather _ -> true
  | _ -> false

let name = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Div -> "div"
  | Maximum -> "maximum"
  | Pow -> "pow"
  | Neg -> "neg"
  | Exp -> "exp"
  | Log -> "log"
  | Sqrt -> "sqrt"
  | Rsqrt -> "rsqrt"
  | Relu -> "relu"
  | Gelu -> "gelu"
  | Silu -> "silu"
  | Tanh -> "tanh"
  | Sigmoid -> "sigmoid"
  | Square -> "square"
  | Scale _ -> "scale"
  | Matmul -> "matmul"
  | Identity -> "identity"
  | Concat _ -> "concat"
  | Slice _ -> "slice"
  | Transpose _ -> "transpose"
  | Reshape _ -> "reshape"
  | Pad _ -> "pad"
  | Sum_n -> "sum"
  | Reduce_sum _ -> "reduce_sum"
  | Reduce_mean _ -> "reduce_mean"
  | Reduce_max _ -> "reduce_max"
  | Softmax _ -> "softmax"
  | Layernorm _ -> "layernorm"
  | Rmsnorm _ -> "rmsnorm"
  | Embedding -> "embedding"
  | Rope -> "rope"
  | Mse_loss -> "mse_loss"
  | Cross_entropy -> "cross_entropy"
  | All_reduce -> "all_reduce"
  | Reduce_scatter _ -> "reduce_scatter"
  | All_gather _ -> "all_gather"
  | Swiglu_fused -> "swiglu_fused"
  | Hlo_dot -> "hlo_dot"
  | Hlo_slice _ -> "hlo_slice"
  | Hlo_concatenate _ -> "hlo_concatenate"

let key op =
  match op with
  | Scale r -> Fmt.str "scale(%a)" Rat.pp r
  | Concat { dim } -> Fmt.str "concat(%d)" dim
  | Hlo_concatenate { dim } -> Fmt.str "hlo_concatenate(%d)" dim
  | Slice { dim; start; stop } ->
      Fmt.str "slice(%d,%a,%a)" dim Symdim.pp start Symdim.pp stop
  | Hlo_slice { dim; start; stop } ->
      Fmt.str "hlo_slice(%d,%a,%a)" dim Symdim.pp start Symdim.pp stop
  | Transpose { dim0; dim1 } -> Fmt.str "transpose(%d,%d)" dim0 dim1
  | Reshape { shape } -> Fmt.str "reshape(%a)" Shape.pp shape
  | Pad { dim; before; after } ->
      Fmt.str "pad(%d,%a,%a)" dim Symdim.pp before Symdim.pp after
  | Reduce_sum { dim; keepdim } -> Fmt.str "reduce_sum(%d,%b)" dim keepdim
  | Reduce_mean { dim; keepdim } -> Fmt.str "reduce_mean(%d,%b)" dim keepdim
  | Reduce_max { dim; keepdim } -> Fmt.str "reduce_max(%d,%b)" dim keepdim
  | Softmax { dim } -> Fmt.str "softmax(%d)" dim
  | Layernorm { eps } -> Fmt.str "layernorm(%h)" eps
  | Rmsnorm { eps } -> Fmt.str "rmsnorm(%h)" eps
  | Reduce_scatter { dim; index; count } ->
      Fmt.str "reduce_scatter(%d,%d,%d)" dim index count
  | All_gather { dim } -> Fmt.str "all_gather(%d)" dim
  | _ -> name op

let equal a b = String.equal (key a) (key b)
let compare a b = String.compare (key a) (key b)
let hash op = Hashtbl.hash (key op)
let pp ppf op = Fmt.string ppf (key op)

(* ------------------------------------------------------------------ *)
(* Shape inference                                                     *)
(* ------------------------------------------------------------------ *)

let ( let* ) = Result.bind

let err fmt = Fmt.kstr (fun s -> Error s) fmt

let expect_rank shape k what =
  if Shape.rank shape >= k then Ok ()
  else err "%s: expected rank >= %d, got %a" what k Shape.pp shape

let all_same_shape store shapes what =
  match shapes with
  | [] -> err "%s: no inputs" what
  | s :: rest ->
      if List.for_all (Shape.equal store s) rest then Ok s
      else err "%s: inputs disagree in shape" what

let broadcast2 store a b what =
  match Shape.broadcast store a b with
  | Some s -> Ok s
  | None -> err "%s: shapes %a and %a do not broadcast" what Shape.pp a Shape.pp b

(* [m; k] x [k; n], with optional matching leading batch dimensions on
   the left operand (a rank-2 right operand broadcasts over batches). *)
let matmul_shape store a b =
  let* () = expect_rank a 2 "matmul lhs" in
  let* () = expect_rank b 2 "matmul rhs" in
  let ra = Shape.rank a and rb = Shape.rank b in
  let ka = Shape.dim a (-1) in
  let kb = Shape.dim b (if rb = 2 then 0 else rb - 2) in
  if not (Decide.prove_eq store ka kb) then
    err "matmul: contraction dims %a vs %a" Symdim.pp ka Symdim.pp kb
  else
    let m = Shape.dim a (-2) and n = Shape.dim b (-1) in
    if rb = 2 then
      let batch = List.filteri (fun i _ -> i < ra - 2) a in
      Ok (batch @ [ m; n ])
    else if ra = rb then begin
      let batch_a = List.filteri (fun i _ -> i < ra - 2) a in
      let batch_b = List.filteri (fun i _ -> i < rb - 2) b in
      if List.for_all2 (Decide.prove_eq store) batch_a batch_b then
        Ok (batch_a @ [ m; n ])
      else err "matmul: batch dims disagree"
    end
    else err "matmul: rank mismatch %d vs %d" ra rb

let reduce_shape shape dim keepdim =
  let rank = Shape.rank shape in
  let d = Shape.normalize_axis ~rank dim in
  if keepdim then Ok (Shape.set_dim shape d Symdim.one)
  else Ok (List.filteri (fun i _ -> i <> d) shape)

let infer_shape store op (inputs : Shape.t list) =
  let n = List.length inputs in
  if not (arity_ok op n) then
    err "%s: wrong arity %d" (name op) n
  else
    match (op, inputs) with
    | (Add | Sub | Mul | Div | Maximum | Pow), [ a; b ] ->
        broadcast2 store a b (name op)
    | ( ( Neg | Exp | Log | Sqrt | Rsqrt | Relu | Gelu | Silu | Tanh | Sigmoid
        | Square | Scale _ | Identity ),
        [ a ] ) ->
        Ok a
    | (Matmul | Hlo_dot), [ a; b ] -> matmul_shape store a b
    | (Concat { dim } | Hlo_concatenate { dim }), (first :: _ as shapes) ->
        let rank = Shape.rank first in
        let d = Shape.normalize_axis ~rank dim in
        let* () =
          if List.for_all (fun s -> Shape.rank s = rank) shapes then Ok ()
          else err "concat: rank mismatch"
        in
        let* () =
          let ok =
            List.for_all
              (fun s ->
                List.for_all
                  (fun i ->
                    i = d
                    || Decide.prove_eq store (Shape.dim s i) (Shape.dim first i))
                  (List.init rank Fun.id))
              shapes
          in
          if ok then Ok () else err "concat: non-concat dims disagree"
        in
        let total =
          List.fold_left
            (fun acc s -> Symdim.add acc (Shape.dim s d))
            Symdim.zero shapes
        in
        Ok (Shape.set_dim first d total)
    | (Slice { dim; start; stop } | Hlo_slice { dim; start; stop }), [ a ] ->
        let rank = Shape.rank a in
        let d = Shape.normalize_axis ~rank dim in
        let size = Shape.dim a d in
        let width = Symdim.sub stop start in
        if Decide.prove_lt store stop start then
          err "slice: stop %a < start %a" Symdim.pp stop Symdim.pp start
        else if Decide.prove_lt store size stop then
          err "slice: stop %a exceeds dim %a" Symdim.pp stop Symdim.pp size
        else Ok (Shape.set_dim a d width)
    | Transpose { dim0; dim1 }, [ a ] ->
        let rank = Shape.rank a in
        let d0 = Shape.normalize_axis ~rank dim0 in
        let d1 = Shape.normalize_axis ~rank dim1 in
        let x0 = Shape.dim a d0 and x1 = Shape.dim a d1 in
        Ok (Shape.set_dim (Shape.set_dim a d0 x1) d1 x0)
    | Reshape { shape }, [ a ] -> (
        match (Shape.numel a, Shape.numel shape) with
        | Some na, Some nb ->
            if Decide.prove_eq store na nb then Ok shape
            else err "reshape: element counts %a vs %a" Symdim.pp na Symdim.pp nb
        | _ -> Ok shape)
    | Pad { dim; before; after }, [ a ] ->
        let rank = Shape.rank a in
        let d = Shape.normalize_axis ~rank dim in
        let size = Shape.dim a d in
        Ok (Shape.set_dim a d (Symdim.add size (Symdim.add before after)))
    | Sum_n, shapes | All_reduce, shapes -> all_same_shape store shapes (name op)
    | Reduce_scatter { dim; index; count }, shapes ->
        let* s = all_same_shape store shapes "reduce_scatter" in
        let rank = Shape.rank s in
        let d = Shape.normalize_axis ~rank dim in
        let* () =
          if index < 0 || index >= count then
            err "reduce_scatter: index %d out of %d" index count
          else Ok ()
        in
        let size = Shape.dim s d in
        (match Symdim.div_int size count with
        | Some chunk -> Ok (Shape.set_dim s d chunk)
        | None ->
            err "reduce_scatter: dim %a not divisible by %d" Symdim.pp size
              count)
    | All_gather { dim }, (first :: _ as shapes) ->
        let rank = Shape.rank first in
        let d = Shape.normalize_axis ~rank dim in
        let* _ = all_same_shape store shapes "all_gather" in
        let total = Symdim.mul_int (List.length shapes) (Shape.dim first d) in
        Ok (Shape.set_dim first d total)
    | (Reduce_sum { dim; keepdim } | Reduce_mean { dim; keepdim }
      | Reduce_max { dim; keepdim }), [ a ] ->
        reduce_shape a dim keepdim
    | Softmax { dim }, [ a ] ->
        let _ = Shape.normalize_axis ~rank:(Shape.rank a) dim in
        Ok a
    | Layernorm _, [ x; w; b ] ->
        let* () = expect_rank x 1 "layernorm" in
        let d = Shape.dim x (-1) in
        let ok s =
          Shape.rank s = 1 && Decide.prove_eq store (Shape.dim s 0) d
        in
        if ok w && ok b then Ok x
        else err "layernorm: weight/bias must be [%a]" Symdim.pp d
    | Rmsnorm _, [ x; w ] ->
        let* () = expect_rank x 1 "rmsnorm" in
        let d = Shape.dim x (-1) in
        if Shape.rank w = 1 && Decide.prove_eq store (Shape.dim w 0) d then Ok x
        else err "rmsnorm: weight must be [%a]" Symdim.pp d
    | Embedding, [ w; ids ] ->
        let* () =
          if Shape.rank w = 2 then Ok () else err "embedding: weight not rank 2"
        in
        Ok (ids @ [ Shape.dim w 1 ])
    | Rope, [ x; cos; sin ] ->
        let* () = expect_rank x 2 "rope" in
        let* _ = broadcast2 store x cos "rope cos" in
        let* _ = broadcast2 store x sin "rope sin" in
        Ok x
    | Mse_loss, [ p; t ] ->
        if Shape.equal store p t then Ok Shape.scalar
        else err "mse_loss: shapes disagree"
    | Cross_entropy, [ logits; targets ] ->
        let* () = expect_rank logits 2 "cross_entropy" in
        if Shape.rank targets = Shape.rank logits - 1 then Ok Shape.scalar
        else err "cross_entropy: target rank"
    | Swiglu_fused, [ g; u ] ->
        if Shape.equal store g u then Ok g
        else err "swiglu_fused: shapes disagree"
    | _ -> err "%s: unsupported input signature" (name op)

let infer_dtype op (inputs : Dtype.t list) =
  let promote_all what = function
    | [] -> err "%s: no inputs" what
    | d :: rest ->
        List.fold_left
          (fun acc x ->
            let* a = acc in
            match Dtype.promote a x with
            | Some d -> Ok d
            | None -> err "%s: incompatible dtypes" what)
          (Ok d) rest
  in
  match (op, inputs) with
  | Embedding, [ w; ids ] ->
      if Dtype.is_integer ids then Ok w else err "embedding: ids must be integer"
  | Cross_entropy, [ logits; targets ] ->
      if Dtype.is_integer targets && Dtype.is_float logits then Ok logits
      else err "cross_entropy: dtypes"
  | _, inputs -> promote_all (name op) inputs
