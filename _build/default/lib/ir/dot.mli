(** Graphviz DOT rendering of computation graphs, for visualizing the
    operator the checker localized a bug to and its surroundings. *)

val to_dot : ?highlight:Tensor.t list -> Graph.t -> string
(** DOT source: operators are boxes, graph inputs are ellipses, edges
    are labeled with tensor name and shape. Tensors in [highlight] (for
    instance the output of the operator a failure report names) are
    drawn with a highlighted producer. *)
