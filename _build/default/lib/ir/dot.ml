let escape s =
  String.concat ""
    (List.map
       (fun c ->
         match c with
         | '"' -> "\\\""
         | '\\' -> "\\\\"
         | c -> String.make 1 c)
       (List.init (String.length s) (String.get s)))

let to_dot ?(highlight = []) g =
  let buf = Buffer.create 1024 in
  let pr fmt = Fmt.kstr (Buffer.add_string buf) fmt in
  let is_hl t = List.exists (Tensor.equal t) highlight in
  let input_id t = Fmt.str "in_%d" (Tensor.id t :> int) in
  let node_id n = Fmt.str "op_%d" (Node.id n) in
  pr "digraph %S {\n  rankdir=TB;\n  node [fontname=\"monospace\"];\n"
    (Graph.name g);
  List.iter
    (fun t ->
      pr "  %s [shape=ellipse, label=\"%s\\n%s\"];\n" (input_id t)
        (escape (Tensor.name t))
        (escape (Shape.to_string (Tensor.shape t))))
    (Graph.inputs g);
  List.iter
    (fun n ->
      let out = Node.output n in
      let color =
        if is_hl out then ", style=filled, fillcolor=\"#f4cccc\""
        else if Graph.is_output g out then ", style=filled, fillcolor=\"#d9ead3\""
        else ""
      in
      pr "  %s [shape=box, label=\"%s\"%s];\n" (node_id n)
        (escape (Op.key (Node.op n)))
        color)
    (Graph.nodes g);
  (* Edges follow tensors from producer (or input) to consumer. *)
  let source t =
    match Graph.producer g t with
    | Some n -> node_id n
    | None -> input_id t
  in
  List.iter
    (fun n ->
      List.iter
        (fun t ->
          pr "  %s -> %s [label=\"%s\\n%s\"];\n" (source t) (node_id n)
            (escape (Tensor.name t))
            (escape (Shape.to_string (Tensor.shape t))))
        (Node.inputs n))
    (Graph.nodes g);
  (* Mark graph outputs. *)
  List.iteri
    (fun i t ->
      pr "  result_%d [shape=doublecircle, label=\"output\"];\n" i;
      pr "  %s -> result_%d [label=\"%s\"];\n" (source t) i
        (escape (Tensor.name t)))
    (Graph.outputs g);
  pr "}\n";
  Buffer.contents buf
