(** Minimal S-expressions: the concrete syntax of the on-disk graph and
    relation format ({!Serial}). *)

type t = Atom of string | List of t list

val atom : string -> t
val list : t list -> t

val to_string : t -> string
(** Pretty-printed with indentation. *)

val of_string : string -> (t, string) result
(** Parses one S-expression; comments run from [;] to end of line.
    Atoms may be quoted with double quotes to include spaces. *)

val pp : t Fmt.t
