(** Dense n-dimensional float arrays.

    The checker itself is static; this module exists so the test suite
    can {e execute} graphs, expressions and lemmas on concrete data and
    check that rewrites are semantics-preserving and that relations
    produced by the checker really reconstruct sequential outputs. *)

type t

val create : int list -> float -> t
val init : int list -> (int list -> float) -> t
val scalar : float -> t
val of_list : int list -> float list -> t

val dims : t -> int list
val rank : t -> int
val numel : t -> int
val get : t -> int list -> float
val set : t -> int list -> float -> unit
val to_flat_list : t -> float list

val random : Random.State.t -> int list -> t
(** Uniform in [-1, 1). *)

val random_ints : Random.State.t -> hi:int -> int list -> t
(** Integer-valued entries drawn from [0, hi). *)

(** {1 Elementwise} *)

val map : (float -> float) -> t -> t

val map2 : (float -> float -> float) -> t -> t -> t
(** NumPy broadcasting. Raises [Invalid_argument] on incompatible dims. *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
val scale : float -> t -> t
val sum_list : t list -> t

(** {1 Contraction and rearrangement} *)

val matmul : t -> t -> t
(** 2-D x 2-D, batched x batched (equal batch dims), or batched x 2-D. *)

val concat : dim:int -> t list -> t
val slice : dim:int -> start:int -> stop:int -> t -> t
val transpose : dim0:int -> dim1:int -> t -> t
val reshape : int list -> t -> t
val pad : dim:int -> before:int -> after:int -> t -> t
(** Zero padding along one dimension. *)

(** {1 Reductions} *)

val reduce_sum : dim:int -> keepdim:bool -> t -> t
val reduce_mean : dim:int -> keepdim:bool -> t -> t
val reduce_max : dim:int -> keepdim:bool -> t -> t

(** {1 Neural-network kernels} *)

val softmax : dim:int -> t -> t
val layernorm : eps:float -> t -> t -> t -> t
val rmsnorm : eps:float -> t -> t -> t
val embedding : t -> t -> t
val rope : t -> t -> t -> t
val mse_loss : t -> t -> t
val cross_entropy : t -> t -> t
val silu : t -> t
val gelu : t -> t

(** {1 Comparison} *)

val approx_equal : ?tol:float -> t -> t -> bool
val max_abs_diff : t -> t -> float
val pp : t Fmt.t
