(** A node (operator instance) of a computation graph. *)

type t = { id : int; op : Op.t; inputs : Tensor.t list; output : Tensor.t }

val id : t -> int
val op : t -> Op.t
val inputs : t -> Tensor.t list
val output : t -> Tensor.t
val pp : t Fmt.t
