lib/ir/ndarray.mli: Fmt Random
