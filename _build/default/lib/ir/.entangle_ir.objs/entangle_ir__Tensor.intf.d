lib/ir/tensor.mli: Dtype Fmt Map Set Shape
