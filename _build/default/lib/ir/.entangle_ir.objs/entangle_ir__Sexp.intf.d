lib/ir/sexp.mli: Fmt
