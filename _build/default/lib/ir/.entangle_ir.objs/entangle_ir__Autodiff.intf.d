lib/ir/autodiff.mli: Graph Op Tensor
