lib/ir/shape.mli: Constraint_store Entangle_symbolic Fmt Symdim
