lib/ir/node.mli: Fmt Op Tensor
