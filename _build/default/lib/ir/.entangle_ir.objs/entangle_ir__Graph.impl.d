lib/ir/graph.ml: Constraint_store Dtype Entangle_symbolic Expr Fmt List Node Op Result Shape Tensor
