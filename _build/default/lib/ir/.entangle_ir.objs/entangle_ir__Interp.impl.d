lib/ir/interp.ml: Dtype Dump Entangle_symbolic Expr Fmt Fun Graph List Map Ndarray Node Op Option Printf Rat Shape String Symdim Tensor
