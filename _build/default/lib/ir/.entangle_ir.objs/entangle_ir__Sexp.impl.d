lib/ir/sexp.ml: Buffer Fmt List Result String
