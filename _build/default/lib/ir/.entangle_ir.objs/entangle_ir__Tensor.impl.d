lib/ir/tensor.ml: Dtype Fmt Hashtbl Int Map Set Shape
