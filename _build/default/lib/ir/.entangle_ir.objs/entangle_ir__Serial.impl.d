lib/ir/serial.ml: Constraint_store Dtype Entangle_symbolic Fmt Graph Hashtbl List Node Op Printf Rat Result Sexp String Symdim Tensor
