lib/ir/serial.mli: Entangle_symbolic Graph Op Sexp Symdim Tensor
