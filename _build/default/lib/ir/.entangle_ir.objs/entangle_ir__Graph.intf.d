lib/ir/graph.mli: Constraint_store Dtype Entangle_symbolic Expr Fmt Node Op Shape Tensor
