lib/ir/node.ml: Fmt Op Tensor
