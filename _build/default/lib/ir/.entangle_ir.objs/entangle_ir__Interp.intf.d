lib/ir/interp.mli: Expr Graph Ndarray Op Random Stdlib String Tensor
