lib/ir/expr.ml: Fmt List Op Result Tensor
