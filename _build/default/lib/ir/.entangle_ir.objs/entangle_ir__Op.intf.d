lib/ir/op.mli: Constraint_store Dtype Entangle_symbolic Fmt Rat Shape Symdim
