lib/ir/shape.ml: Decide Entangle_symbolic Fmt List Printf Symdim
