lib/ir/dtype.mli: Fmt
