lib/ir/expr.mli: Constraint_store Entangle_symbolic Fmt Op Shape Tensor
