lib/ir/op.ml: Decide Dtype Entangle_symbolic Fmt Fun Hashtbl List Rat Result Shape String Symdim
