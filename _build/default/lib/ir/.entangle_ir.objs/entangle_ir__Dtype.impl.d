lib/ir/dtype.ml: Fmt Stdlib
