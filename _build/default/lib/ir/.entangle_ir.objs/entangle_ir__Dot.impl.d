lib/ir/dot.ml: Buffer Fmt Graph List Node Op Shape String Tensor
