lib/ir/dot.mli: Graph Tensor
