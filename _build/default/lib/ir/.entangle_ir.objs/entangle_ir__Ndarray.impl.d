lib/ir/ndarray.ml: Array Float Fmt List Random
