lib/ir/autodiff.ml: Entangle_symbolic Fmt Graph Hashtbl List Node Op Option Rat Shape Symdim Tensor
