(** Tensor shapes as lists of symbolic dimensions. *)

open Entangle_symbolic

type t = Symdim.t list

val scalar : t
val of_ints : int list -> t
val rank : t -> int

val dim : t -> int -> Symdim.t
(** [dim s i] is dimension [i]; negative indices count from the end as in
    PyTorch. Raises [Invalid_argument] when out of range. *)

val set_dim : t -> int -> Symdim.t -> t

val normalize_axis : rank:int -> int -> int
(** Resolve a possibly negative axis against [rank]. *)

val numel : t -> Symdim.t option
(** Product of dimensions when affine (i.e. at most one symbolic factor
    per partial product); [None] otherwise. *)

val equal : Constraint_store.t -> t -> t -> bool
(** Provable element-wise equality of two shapes under constraints. *)

val equal_syntactic : t -> t -> bool

val broadcast :
  Constraint_store.t -> t -> t -> t option
(** NumPy-style broadcasting of two shapes; [None] if provably
    incompatible or not provably compatible. A dimension broadcasts when
    it is the constant 1 or provably equal to its counterpart. *)

val concrete : (string -> int) -> t -> int list
(** Evaluate every dimension under a symbol assignment. *)

val pp : t Fmt.t
val to_string : t -> string
