(** Symbolic tensor expressions.

    An expression is "a symbolic description of a computation" (paper
    section 3.2): leaves are tensors, internal nodes are operators.
    Relations pair a sequential-graph tensor with an expression over
    distributed-graph tensors. *)

open Entangle_symbolic

type t = Leaf of Tensor.t | App of Op.t * t list

val leaf : Tensor.t -> t
val app : Op.t -> t list -> t

val leaves : t -> Tensor.t list
(** Distinct leaf tensors, in first-occurrence order. *)

val size : t -> int
(** Number of operator applications ("nested expressions"); leaves count
    zero. The pruning optimization (paper section 4.3.2) keeps the
    expression with the smallest size per equivalence class. *)

val depth : t -> int

val is_clean : t -> bool
(** True when every operator in the expression satisfies {!Op.is_clean}. *)

val mem_leaf : Tensor.t -> t -> bool

val subst : (Tensor.t -> t option) -> t -> t
(** Replace leaves for which the function is defined. *)

val infer_shape : Constraint_store.t -> t -> (Shape.t, string) result

val equal : t -> t -> bool
val compare : t -> t -> int

val pp : t Fmt.t
(** S-expression style: [(matmul (concat A0 A1 {dim=1}) B)]. *)

val to_string : t -> string
