open Entangle_symbolic

type t = Symdim.t list

let scalar = []
let of_ints = List.map Symdim.of_int
let rank = List.length

let normalize_axis ~rank i =
  let j = if i < 0 then rank + i else i in
  if j < 0 || j >= rank then
    invalid_arg (Printf.sprintf "Shape: axis %d out of range for rank %d" i rank)
  else j

let dim s i = List.nth s (normalize_axis ~rank:(rank s) i)

let set_dim s i d =
  let i = normalize_axis ~rank:(rank s) i in
  List.mapi (fun j x -> if j = i then d else x) s

let numel s =
  List.fold_left
    (fun acc d ->
      match acc with None -> None | Some a -> Symdim.mul a d)
    (Some Symdim.one) s

let equal store a b =
  rank a = rank b && List.for_all2 (Decide.prove_eq store) a b

let equal_syntactic a b = rank a = rank b && List.for_all2 Symdim.equal a b

let broadcast store a b =
  let ra = rank a and rb = rank b in
  let n = max ra rb in
  let pad s r = List.init (n - r) (fun _ -> Symdim.one) @ s in
  let a = pad a ra and b = pad b rb in
  let one = Symdim.one in
  let combine da db =
    if Symdim.equal da one then Some db
    else if Symdim.equal db one then Some da
    else if Decide.prove_eq store da db then Some da
    else None
  in
  let rec go = function
    | [], [] -> Some []
    | da :: ta, db :: tb -> (
        match combine da db with
        | None -> None
        | Some d -> (
            match go (ta, tb) with None -> None | Some rest -> Some (d :: rest)))
    | _ -> None
  in
  go (a, b)

let concrete env s = List.map (Symdim.eval env) s

let pp ppf s =
  Fmt.pf ppf "[%a]" (Fmt.list ~sep:(Fmt.any ", ") Symdim.pp) s

let to_string s = Fmt.str "%a" pp s
