open Entangle_egraph

type t = {
  frontier_optimization : bool;
  prune_equivalent : bool;
  max_alternates : int;
  limits : Runner.limits;
}

let default =
  {
    frontier_optimization = true;
    prune_equivalent = true;
    max_alternates = 4;
    limits = Runner.default_limits;
  }

let no_frontier = { default with frontier_optimization = false }
let no_pruning = { default with prune_equivalent = false; max_alternates = 8 }
