open Entangle_ir

let ( let* ) = Result.bind
let err fmt = Fmt.kstr (fun s -> Error s) fmt

let rec expr_to_sexp = function
  | Expr.Leaf t -> Sexp.list [ Sexp.atom "tensor"; Sexp.atom (Tensor.name t) ]
  | Expr.App (op, args) -> (
      (* Render as (opname attrs... (args...)) reusing the operator
         encoding of {!Serial}. *)
      match Serial.op_to_sexp op with
      | Sexp.List op_parts ->
          Sexp.list (op_parts @ [ Sexp.list (List.map expr_to_sexp args) ])
      | Sexp.Atom _ as a -> Sexp.list [ a; Sexp.list (List.map expr_to_sexp args) ])

let rec expr_of_sexp ~resolve = function
  | Sexp.List [ Sexp.Atom "tensor"; Sexp.Atom name ] | Sexp.Atom name -> (
      match resolve name with
      | Some t -> Ok (Expr.leaf t)
      | None -> err "unknown tensor %s" name)
  | Sexp.List parts as sexp -> (
      match List.rev parts with
      | Sexp.List args :: rev_op when rev_op <> [] ->
          let op_sexp = Sexp.list (List.rev rev_op) in
          let* op = Serial.op_of_sexp op_sexp in
          let* args =
            List.fold_left
              (fun acc a ->
                let* acc = acc in
                let* e = expr_of_sexp ~resolve a in
                Ok (acc @ [ e ]))
              (Ok []) args
          in
          Ok (Expr.app op args)
      | _ -> err "malformed expression %s" (Sexp.to_string sexp))

let to_sexp relation =
  let entry (t, exprs) =
    List.map
      (fun e -> Sexp.list [ Sexp.atom (Tensor.name t); expr_to_sexp e ])
      exprs
  in
  Sexp.list
    (Sexp.atom "relation" :: List.concat_map entry (Relation.bindings relation))

let to_string relation = Sexp.to_string (to_sexp relation)

let of_sexp ~gs ~gd = function
  | Sexp.List (Sexp.Atom "relation" :: entries) ->
      List.fold_left
        (fun acc entry ->
          let* acc = acc in
          match entry with
          | Sexp.List [ Sexp.Atom name; expr ] -> (
              match Serial.tensor_by_name gs name with
              | None -> err "unknown sequential tensor %s" name
              | Some t ->
                  let* e =
                    expr_of_sexp ~resolve:(Serial.tensor_by_name gd) expr
                  in
                  Ok (Relation.add acc t e))
          | s -> err "malformed relation entry %s" (Sexp.to_string s))
        (Ok Relation.empty) entries
  | s -> err "malformed relation %s" (Sexp.to_string s)

let of_string ~gs ~gd input =
  let* sexp = Sexp.of_string input in
  of_sexp ~gs ~gd sexp
