(** On-disk text format for relations, resolved against a pair of
    parsed graphs. Example:

    {v
    (relation
      (A (concat 1 (A1 A2)))
      (B (concat 0 (B1 B2)))
      (w (tensor w_0))
      (w (tensor w_1)))   ; several mappings model replication
    v}

    Each entry maps a tensor of the sequential graph (by name) to an
    expression over tensors of the distributed graph; leaves are written
    [(tensor name)] or bare names inside argument lists. *)

open Entangle_ir

val expr_to_sexp : Expr.t -> Sexp.t
val expr_of_sexp : resolve:(string -> Tensor.t option) -> Sexp.t -> (Expr.t, string) result

val to_sexp : Relation.t -> Sexp.t
val to_string : Relation.t -> string

val of_sexp : gs:Graph.t -> gd:Graph.t -> Sexp.t -> (Relation.t, string) result
val of_string : gs:Graph.t -> gd:Graph.t -> string -> (Relation.t, string) result
