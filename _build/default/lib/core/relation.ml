open Entangle_ir

type t = Expr.t list Tensor.Map.t

let empty = Tensor.Map.empty

let insert_sorted expr exprs =
  if List.exists (Expr.equal expr) exprs then exprs
  else
    List.sort
      (fun a b -> Int.compare (Expr.size a) (Expr.size b))
      (expr :: exprs)

let add t tensor expr =
  Tensor.Map.update tensor
    (function
      | None -> Some [ expr ]
      | Some exprs -> Some (insert_sorted expr exprs))
    t

let add_all t tensor exprs = List.fold_left (fun t e -> add t tensor e) t exprs
let singleton tensor expr = add empty tensor expr
let of_list l = List.fold_left (fun t (tensor, e) -> add t tensor e) empty l
let find t tensor = Option.value (Tensor.Map.find_opt tensor t) ~default:[]
let mem t tensor = Tensor.Map.mem tensor t

let union a b =
  Tensor.Map.union
    (fun _ xs ys -> Some (List.fold_left (fun acc e -> insert_sorted e acc) xs ys))
    a b

let bindings t = Tensor.Map.bindings t
let cardinal t = Tensor.Map.cardinal t

let tensors_in_range t =
  Tensor.Map.fold
    (fun _ exprs acc ->
      List.fold_left
        (fun acc e ->
          List.fold_left (fun acc l -> Tensor.Set.add l acc) acc (Expr.leaves e))
        acc exprs)
    t Tensor.Set.empty

let restrict t pred = Tensor.Map.filter (fun tensor _ -> pred tensor) t
let complete_for t tensors = List.for_all (mem t) tensors

let is_clean t =
  Tensor.Map.for_all (fun _ exprs -> List.for_all Expr.is_clean exprs) t

let pp ppf t =
  let pp_entry ppf (tensor, exprs) =
    Fmt.pf ppf "@[<hov 2>%a ->@ %a@]" Tensor.pp_name tensor
      (Fmt.list ~sep:(Fmt.any " | ") Expr.pp)
      exprs
  in
  Fmt.pf ppf "@[<v>%a@]" (Fmt.list ~sep:Fmt.cut pp_entry) (bindings t)
