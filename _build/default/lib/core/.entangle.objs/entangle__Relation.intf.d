lib/core/relation.mli: Entangle_ir Expr Fmt Tensor
