lib/core/refine.ml: Config Entangle_egraph Entangle_ir Entangle_lemmas Expr Fmt Graph Hashtbl List Node Node_rel Op Relation Runner String Tensor Unix
