lib/core/node_rel.mli: Config Entangle_egraph Entangle_ir Expr Graph Hashtbl Node Relation Rule Runner
