lib/core/relation_io.mli: Entangle_ir Expr Graph Relation Sexp Tensor
