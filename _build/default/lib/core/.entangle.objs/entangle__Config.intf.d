lib/core/config.mli: Entangle_egraph Runner
