lib/core/relation.ml: Entangle_ir Expr Fmt Int List Option Tensor
