lib/core/config.ml: Entangle_egraph Runner
