lib/core/certify.ml: Dtype Entangle_ir Expr Fmt Graph Hashtbl Interp List Ndarray Random Relation Result Shape Tensor
