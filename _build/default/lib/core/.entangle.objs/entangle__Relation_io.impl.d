lib/core/relation_io.ml: Entangle_ir Expr Fmt List Relation Result Serial Sexp Tensor
