lib/core/refine.mli: Config Entangle_egraph Entangle_ir Expr Graph Hashtbl Node Relation Rule Tensor
