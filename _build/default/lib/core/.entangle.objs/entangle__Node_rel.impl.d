lib/core/node_rel.ml: Config Egraph Enode Entangle_egraph Entangle_ir Expr Extract Fmt Graph Hashtbl Id List Node Op Option Relation Runner Tensor
