lib/core/certify.mli: Entangle_ir Graph Interp Relation
