lib/core/expectation.ml: Entangle_ir Expr Fmt Graph List Node Refine Relation Tensor
