lib/core/report.ml: Entangle_ir Expr Fmt Graph List Node Refine Relation Tensor
