lib/core/expectation.mli: Config Entangle_egraph Entangle_ir Expr Graph Hashtbl Refine Relation Rule
