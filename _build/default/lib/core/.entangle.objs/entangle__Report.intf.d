lib/core/report.mli: Entangle_ir Fmt Graph Refine
