(** Relations: sets of tensor-expression pairs (paper section 3.2).

    A relation from graph [G] to graph [G'] maps tensors of [G] to
    expressions over tensors of [G']. A tensor may have several
    mappings, which models replicated inputs. *)

open Entangle_ir

type t

val empty : t

val add : t -> Tensor.t -> Expr.t -> t
(** Add a mapping, deduplicating identical expressions. *)

val add_all : t -> Tensor.t -> Expr.t list -> t
val singleton : Tensor.t -> Expr.t -> t
val of_list : (Tensor.t * Expr.t) list -> t

val find : t -> Tensor.t -> Expr.t list
(** All mappings for a tensor, simplest first; [] when unmapped. *)

val mem : t -> Tensor.t -> bool
val union : t -> t -> t
val bindings : t -> (Tensor.t * Expr.t list) list
val cardinal : t -> int

val tensors_in_range : t -> Tensor.Set.t
(** Every tensor appearing as a leaf of some mapped expression: the
    initial [T_rel] of the frontier optimization (Listing 3, line 15). *)

val restrict : t -> (Tensor.t -> bool) -> t

val complete_for : t -> Tensor.t list -> bool
(** Does the relation contain at least one mapping for every tensor in
    the list? (The completeness condition of section 3.2.) *)

val is_clean : t -> bool
val pp : t Fmt.t
