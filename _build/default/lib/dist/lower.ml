open Entangle_ir
module B = Graph.Builder

type t = {
  b : B.t;
  degree : int;
  mutable rel : (Tensor.t * Expr.t) list;
  mutable collective_count : int;
}

let create ?constraints ~name ~degree () =
  if degree < 1 then invalid_arg "Lower.create: degree must be >= 1";
  { b = B.create ?constraints name; degree; rel = []; collective_count = 0 }

let degree t = t.degree
let builder t = t.b
let map_ranks t f = List.init t.degree f
let relate t tensor expr = t.rel <- t.rel @ [ (tensor, expr) ]

let shard_input t tensor ~dim =
  let shapes =
    match Partition.split_dim (Tensor.shape tensor) ~dim ~parts:t.degree with
    | Ok s -> s
    | Error e -> invalid_arg (Fmt.str "Lower.shard_input(%a): %s" Tensor.pp_name tensor e)
  in
  let shards =
    List.mapi
      (fun r shape ->
        B.input t.b ~dtype:(Tensor.dtype tensor)
          (Fmt.str "%s_%d" (Tensor.name tensor) r)
          shape)
      shapes
  in
  relate t tensor (Expr.app (Op.Concat { dim }) (List.map Expr.leaf shards));
  shards

let replicate_input t tensor =
  map_ranks t (fun r ->
      let replica =
        B.input t.b ~dtype:(Tensor.dtype tensor)
          (Fmt.str "%s_%d" (Tensor.name tensor) r)
          (Tensor.shape tensor)
      in
      relate t tensor (Expr.leaf replica);
      replica)

let whole_input t tensor =
  let copy =
    B.input t.b ~dtype:(Tensor.dtype tensor)
      (Fmt.str "%s_d" (Tensor.name tensor))
      (Tensor.shape tensor)
  in
  relate t tensor (Expr.leaf copy);
  copy

let custom_input t ?dtype name shape = B.input t.b ?dtype name shape

let add t ?name op inputs = B.add t.b ?name op inputs

let collective_name t kind r =
  Fmt.str "%%%s%d_r%d" kind t.collective_count r

let all_reduce t contributions =
  t.collective_count <- t.collective_count + 1;
  map_ranks t (fun r ->
      B.add t.b ~name:(collective_name t "all_reduce" r) Op.All_reduce
        contributions)

let reduce_scatter t ~dim contributions =
  t.collective_count <- t.collective_count + 1;
  map_ranks t (fun r ->
      B.add t.b
        ~name:(collective_name t "reduce_scatter" r)
        (Op.Reduce_scatter { dim; index = r; count = t.degree })
        contributions)

let all_gather t ~dim pieces =
  t.collective_count <- t.collective_count + 1;
  map_ranks t (fun r ->
      B.add t.b ~name:(collective_name t "all_gather" r) (Op.All_gather { dim })
        pieces)

let output t tensor = B.output t.b tensor
let outputs t tensors = List.iter (output t) tensors

let finish t =
  let graph = B.finish t.b in
  (graph, Entangle.Relation.of_list t.rel)
