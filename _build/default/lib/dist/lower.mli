(** Combinators for constructing distributed implementations.

    A lowering context wraps a {!Graph.Builder} for the distributed
    graph together with the parallelism degree and the clean input
    relation being accumulated. Model-zoo modules compose these
    combinators per distribution strategy exactly the way training
    frameworks compose sharded weights with collectives.

    Per-rank values are [Tensor.t list]s of length [degree], rank-major. *)

open Entangle_symbolic
open Entangle_ir

type t

val create : ?constraints:Constraint_store.t -> name:string -> degree:int -> unit -> t

val degree : t -> int
val builder : t -> Graph.Builder.t

(** {1 Inputs and the input relation} *)

val shard_input : t -> Tensor.t -> dim:int -> Tensor.t list
(** Declare per-rank input shards of a sequential input along [dim];
    records the relation entry [t -> concat(shards, dim)]. Raises
    [Invalid_argument] when the dimension is not evenly divisible. *)

val replicate_input : t -> Tensor.t -> Tensor.t list
(** Declare one replica input per rank; records one relation entry per
    replica (a relation may map the same tensor several times,
    section 3.2). *)

val whole_input : t -> Tensor.t -> Tensor.t
(** Declare a single non-partitioned copy with an identity relation
    entry. *)

val custom_input :
  t -> ?dtype:Dtype.t -> string -> Shape.t -> Tensor.t
(** Declare a distributed input with no automatic relation entry; pair
    with {!relate} (used by buggy lowerings with wrong partitioning). *)

val relate : t -> Tensor.t -> Expr.t -> unit
(** Record an explicit input-relation entry. *)

(** {1 Collectives} *)

val all_reduce : t -> Tensor.t list -> Tensor.t list
val reduce_scatter : t -> dim:int -> Tensor.t list -> Tensor.t list
val all_gather : t -> dim:int -> Tensor.t list -> Tensor.t list

(** {1 Computation} *)

val add : t -> ?name:string -> Op.t -> Tensor.t list -> Tensor.t
val map_ranks : t -> (int -> 'a) -> 'a list

(** {1 Finishing} *)

val output : t -> Tensor.t -> unit
val outputs : t -> Tensor.t list -> unit
val finish : t -> Graph.t * Entangle.Relation.t
