lib/dist/lower.mli: Constraint_store Dtype Entangle Entangle_ir Entangle_symbolic Expr Graph Op Shape Tensor
