lib/dist/lower.ml: Entangle Entangle_ir Expr Fmt Graph List Op Partition Tensor
