lib/dist/partition.ml: Entangle_ir Entangle_symbolic Fmt List Result Shape Symdim
