lib/dist/partition.mli: Entangle_ir Entangle_symbolic Shape Symdim
