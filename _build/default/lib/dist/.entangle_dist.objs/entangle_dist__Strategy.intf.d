lib/dist/strategy.mli: Fmt
