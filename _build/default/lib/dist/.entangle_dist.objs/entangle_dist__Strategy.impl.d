lib/dist/strategy.ml: Fmt String
