type t =
  | Tensor_parallel
  | Sequence_parallel
  | Vocab_parallel
  | Expert_parallel
  | Data_parallel
  | Pipeline_parallel
  | Gradient_accumulation

let to_string = function
  | Tensor_parallel -> "tensor-parallel"
  | Sequence_parallel -> "sequence-parallel"
  | Vocab_parallel -> "vocab-parallel"
  | Expert_parallel -> "expert-parallel"
  | Data_parallel -> "data-parallel"
  | Pipeline_parallel -> "pipeline-parallel"
  | Gradient_accumulation -> "gradient-accumulation"

let abbreviation = function
  | Tensor_parallel -> "TP"
  | Sequence_parallel -> "SP"
  | Vocab_parallel -> "VP"
  | Expert_parallel -> "EP"
  | Data_parallel -> "DP"
  | Pipeline_parallel -> "PP"
  | Gradient_accumulation -> "GA"

let of_string s =
  match String.lowercase_ascii s with
  | "tp" | "tensor-parallel" -> Some Tensor_parallel
  | "sp" | "sequence-parallel" -> Some Sequence_parallel
  | "vp" | "vocab-parallel" -> Some Vocab_parallel
  | "ep" | "expert-parallel" -> Some Expert_parallel
  | "dp" | "data-parallel" -> Some Data_parallel
  | "pp" | "pipeline-parallel" -> Some Pipeline_parallel
  | "ga" | "gradient-accumulation" -> Some Gradient_accumulation
  | _ -> None

let all =
  [
    Tensor_parallel;
    Sequence_parallel;
    Vocab_parallel;
    Expert_parallel;
    Data_parallel;
    Pipeline_parallel;
    Gradient_accumulation;
  ]

let pp ppf t = Fmt.string ppf (abbreviation t)
