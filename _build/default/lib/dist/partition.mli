(** Shape partitioning helpers. *)

open Entangle_symbolic
open Entangle_ir

val split_dim : Shape.t -> dim:int -> parts:int -> (Shape.t list, string) result
(** Equal split of one dimension; fails when the size is not evenly
    divisible (matching the paper's note that Llama-3 cannot be
    partitioned 6 ways). *)

val chunk : Symdim.t -> parts:int -> (Symdim.t, string) result

val offsets : Symdim.t -> parts:int -> (Symdim.t * Symdim.t) list
(** [(start, stop)] of each chunk of an evenly divisible size. Raises
    [Invalid_argument] when not divisible. *)
