open Entangle_symbolic
open Entangle_ir

let chunk size ~parts =
  match Symdim.div_int size parts with
  | Some c -> Ok c
  | None ->
      Error
        (Fmt.str "dimension %a cannot be evenly partitioned by %d" Symdim.pp
           size parts)

let split_dim shape ~dim ~parts =
  let d = Shape.normalize_axis ~rank:(Shape.rank shape) dim in
  Result.map
    (fun c -> List.init parts (fun _ -> Shape.set_dim shape d c))
    (chunk (Shape.dim shape d) ~parts)

let offsets size ~parts =
  match chunk size ~parts with
  | Error e -> invalid_arg e
  | Ok c ->
      List.init parts (fun i ->
          (Symdim.mul_int i c, Symdim.mul_int (i + 1) c))
