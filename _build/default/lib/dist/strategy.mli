(** Distribution-strategy descriptors (paper section 2.1).

    The descriptors are bookkeeping: actual lowering is performed by the
    {!Lower} combinators, which the model zoo composes per strategy,
    the same way training frameworks implement parallel layers out of
    sharding plus collectives. *)

type t =
  | Tensor_parallel  (** TP: partition operator weights across ranks *)
  | Sequence_parallel  (** SP: partition activations along the sequence *)
  | Vocab_parallel  (** VP: partition the LM head along the vocabulary *)
  | Expert_parallel  (** EP: partition mixture-of-experts experts *)
  | Data_parallel  (** DP: partition the batch; gradients all-reduced *)
  | Pipeline_parallel  (** PP: partition layers; microbatch accumulation *)
  | Gradient_accumulation  (** microbatched loss accumulation *)

val to_string : t -> string
val of_string : string -> t option
val abbreviation : t -> string
val all : t list
val pp : t Fmt.t
