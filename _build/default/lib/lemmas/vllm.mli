(** Lemmas for vLLM fused kernels (heatmap class "v"): the fused SwiGLU
    activation used by the Qwen2 model. *)

val lemmas : Lemma.t list
