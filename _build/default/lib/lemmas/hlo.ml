open Entangle_ir
open Entangle_egraph
open Helpers

let lo, hi = collective_arities

let dot_is_matmul =
  Lemma.make ~klass:Lemma.Hlo "hlo-dot-is-matmul"
    [
      Rule.make "hlo-dot-is-matmul"
        (p Op.Hlo_dot [ v "x"; v "y" ])
        (p Op.Matmul [ v "x"; v "y" ]);
      Rule.make ~constrained:true "hlo-dot-is-matmul"
        (p Op.Matmul [ v "x"; v "y" ])
        (p Op.Hlo_dot [ v "x"; v "y" ]);
    ]

let slice_is_slice =
  Lemma.make ~klass:Lemma.Hlo "hlo-slice-is-slice"
    [
      Rule.rewrite_to "hlo-slice-is-slice"
        (fam "hlo_slice" ~bind:"sl" [ v "x" ])
        (fun _g _root subst ->
          let* dim, start, stop = slice_attrs (Subst.op subst "sl") in
          Some (p (Op.Slice { dim; start; stop }) [ v "x" ]));
      Rule.rewrite_to ~constrained:true "hlo-slice-is-slice"
        (fam "slice" ~bind:"sl" [ v "x" ])
        (fun _g _root subst ->
          let* dim, start, stop = slice_attrs (Subst.op subst "sl") in
          Some (p (Op.Hlo_slice { dim; start; stop }) [ v "x" ]));
    ]

let concatenate_is_concat =
  let gen n =
    Rule.rewrite_to "hlo-concatenate-is-concat"
      (fam "hlo_concatenate" ~bind:"cc" (vars n))
      (fun _g _root subst ->
        let* dim = concat_dim (Subst.op subst "cc") in
        Some (p (Op.Concat { dim }) (vars n)))
  and gen_rev n =
    Rule.rewrite_to ~constrained:true "hlo-concatenate-is-concat"
      (fam "concat" ~bind:"cc" (vars n))
      (fun _g _root subst ->
        let* dim = concat_dim (Subst.op subst "cc") in
        Some (p (Op.Hlo_concatenate { dim }) (vars n)))
  in
  Lemma.make ~klass:Lemma.Hlo ~complexity:2 "hlo-concatenate-is-concat"
    (for_arities lo hi gen @ for_arities lo hi gen_rev)

let lemmas = [ dot_is_matmul; slice_is_slice; concatenate_is_concat ]
