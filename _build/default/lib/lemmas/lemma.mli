(** Lemmas: named, classified bundles of rewrite rules.

    A lemma (paper section 4.2.1) states conditions under which one
    expression can be rewritten to another; operationally it is one or
    more {!Entangle_egraph.Rule.t} values (typically the two directions,
    and one rule per collective arity for variadic operators). Metadata
    mirrors what the paper's evaluation reports: the class used in the
    Figure 6 heatmap, the operator-count complexity of Figure 5a, and
    the lines of code of Figure 5b. *)

open Entangle_egraph

type klass =
  | Clean  (** lemmas about operators that may appear in clean expressions *)
  | Aten  (** general ATen operator lemmas *)
  | Vllm  (** lemmas for vLLM fused kernels *)
  | Hlo  (** lemmas for HLO / XLA operators *)

type t = {
  name : string;
  klass : klass;
  loc : int;  (** lines of code of the lemma's definition *)
  complexity : int;  (** operators appearing on both sides (Figure 5a) *)
  conditioned : bool;
  rules : Rule.t list;
}

val make :
  ?klass:klass ->
  ?loc:int ->
  ?complexity:int ->
  ?conditioned:bool ->
  string ->
  Rule.t list ->
  t
(** Rules inherit the lemma's [name] so that runner hit counters
    aggregate per lemma. When [complexity] is omitted it is derived from
    the first syntactic rule's patterns; [loc] defaults by rule form
    (2 per universal rule, 12 per conditioned rule), matching the
    paper's observation that universal lemmas take one or two lines. *)

val rules : t list -> Rule.t list
val klass_letter : klass -> string
val pp : t Fmt.t
