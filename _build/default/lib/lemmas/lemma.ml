open Entangle_egraph

type klass = Clean | Aten | Vllm | Hlo

type t = {
  name : string;
  klass : klass;
  loc : int;
  complexity : int;
  conditioned : bool;
  rules : Rule.t list;
}

let derived_complexity rules =
  match
    List.find_map
      (fun (r : Rule.t) ->
        match r.applier with
        | Rule.Syntactic rhs -> Some (Pattern.size r.lhs + Pattern.size rhs)
        | Rule.Conditional _ -> None)
      rules
  with
  | Some c -> c
  | None -> (
      match rules with
      | r :: _ -> Pattern.size r.lhs + 2
      | [] -> 0)

let derived_loc rules =
  List.fold_left
    (fun acc (r : Rule.t) ->
      acc
      + match r.applier with Rule.Syntactic _ -> 2 | Rule.Conditional _ -> 12)
    0 rules

let make ?(klass = Aten) ?loc ?complexity ?conditioned name rules =
  let rules = List.map (fun (r : Rule.t) -> { r with Rule.name }) rules in
  let conditioned =
    match conditioned with
    | Some c -> c
    | None ->
        List.exists
          (fun (r : Rule.t) ->
            match r.applier with
            | Rule.Conditional _ -> true
            | Rule.Syntactic _ -> false)
          rules
  in
  {
    name;
    klass;
    loc = (match loc with Some l -> l | None -> derived_loc rules);
    complexity =
      (match complexity with
      | Some c -> c
      | None -> derived_complexity rules);
    conditioned;
    rules;
  }

let rules lemmas = List.concat_map (fun l -> l.rules) lemmas

let klass_letter = function
  | Clean -> "c"
  | Aten -> "a"
  | Vllm -> "v"
  | Hlo -> "h"

let pp ppf l =
  Fmt.pf ppf "%s [%s] (%d rules, complexity %d, %d loc)" l.name
    (klass_letter l.klass) (List.length l.rules) l.complexity l.loc
