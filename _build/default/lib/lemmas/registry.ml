type model_family = Gpt | Llama | Qwen2 | Bytedance | Regression

let aten =
  Aten_rearrange.lemmas @ Aten_linalg.lemmas @ Aten_ewise.lemmas
  @ Aten_reduce.lemmas @ Aten_nn.lemmas @ Collective.lemmas

let all = aten @ Vllm.lemmas @ Hlo.lemmas

let find name = List.find_opt (fun (l : Lemma.t) -> String.equal l.name name) all

let id_of name =
  let rec go i = function
    | [] -> None
    | (l : Lemma.t) :: rest ->
        if String.equal l.name name then Some i else go (i + 1) rest
  in
  go 0 all

let for_model = function
  | Gpt | Bytedance | Regression -> aten
  | Qwen2 -> aten @ Vllm.lemmas
  | Llama -> aten @ Hlo.lemmas

let rules_for_model family = Lemma.rules (for_model family)

let family_name = function
  | Gpt -> "GPT"
  | Llama -> "Llama-3"
  | Qwen2 -> "Qwen2"
  | Bytedance -> "ByteDance"
  | Regression -> "Regression"

let family_of_string s =
  match String.lowercase_ascii s with
  | "gpt" -> Some Gpt
  | "llama" | "llama-3" | "llama3" -> Some Llama
  | "qwen2" | "qwen" -> Some Qwen2
  | "bytedance" -> Some Bytedance
  | "regression" -> Some Regression
  | _ -> None
