(** Lemmas about reduction operators (sum / mean / max along an axis)
    and their interaction with concat. *)

val lemmas : Lemma.t list
