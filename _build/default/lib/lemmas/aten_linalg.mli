(** Lemmas about contractions and linear algebra: block-matrix
    distribution of matmul over concat (the lemma driving tensor
    parallelism proofs), and the scale / sum algebra used by gradient
    accumulation and auxiliary-loss scaling. *)

val lemmas : Lemma.t list
