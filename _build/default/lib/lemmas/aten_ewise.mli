(** Distribution of elementwise operators over concat and slice.

    One lemma per operator family, generated from a template: unary
    elementwise ops commute with any concat or slice; binary elementwise
    ops distribute over concats along the same axis with matching chunk
    shapes, including the broadcast case where one operand does not vary
    along the concatenated axis. *)

val lemmas : Lemma.t list
