(** Lemmas bridging HLO / XLA operators (heatmap class "h") to their
    ATen counterparts, letting HLO-captured models (Llama-3 via NeuronX)
    reuse the whole ATen lemma corpus — the paper's observation in
    section 6.6. *)

val lemmas : Lemma.t list
