(** Lemmas giving collective-communication kernels their mathematical
    meaning: all-reduce is an elementwise sum over rank contributions,
    reduce-scatter a slice of that sum, all-gather a concatenation.
    These are class-[Clean] lemmas — the collectives themselves may
    appear in clean expressions. *)

val lemmas : Lemma.t list
