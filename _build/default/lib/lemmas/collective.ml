open Entangle_symbolic
open Entangle_ir
open Entangle_egraph
open Helpers

let lo, hi = collective_arities

(* all_reduce(x1..xn) = sum(x1..xn), both directions. *)
let all_reduce_is_sum =
  let gen n =
    Rule.make "all-reduce-is-sum"
      (p Op.All_reduce (vars n))
      (p Op.Sum_n (vars n))
  and gen_rev n =
    Rule.make ~constrained:true "all-reduce-is-sum"
      (p Op.Sum_n (vars n))
      (p Op.All_reduce (vars n))
  in
  Lemma.make ~klass:Lemma.Clean "all-reduce-is-sum"
    (for_arities lo hi gen @ for_arities lo hi gen_rev)

(* reduce_scatter[dim, i, c](x1..xn)
     = slice(sum(x1..xn), dim, i*chunk, (i+1)*chunk). *)
let reduce_scatter_is_slice_of_sum =
  let gen n =
    Rule.rewrite_to "reduce-scatter-is-slice-of-sum"
      (fam "reduce_scatter" ~bind:"rs" (vars n))
      (fun g _root subst ->
        let* dim, index, count = reduce_scatter_attrs (Subst.op subst "rs") in
        let* size = dim_of_var g subst "x0" dim in
        let* chunk = Symdim.div_int size count in
        let start = Symdim.mul_int index chunk in
        let stop = Symdim.mul_int (index + 1) chunk in
        Some (p (Op.Slice { dim; start; stop }) [ p Op.Sum_n (vars n) ]))
  in
  Lemma.make ~klass:Lemma.Clean ~complexity:3 "reduce-scatter-is-slice-of-sum"
    (for_arities lo hi gen)

(* all_gather[dim](x1..xn) = concat(x1..xn, dim), both directions. *)
let all_gather_is_concat =
  let gen n =
    Rule.rewrite_to "all-gather-is-concat"
      (fam "all_gather" ~bind:"ag" (vars n))
      (fun _g _root subst ->
        let* dim = all_gather_dim (Subst.op subst "ag") in
        Some (p (Op.Concat { dim }) (vars n)))
  and gen_rev n =
    Rule.rewrite_to ~constrained:true "all-gather-is-concat"
      (fam "concat" ~bind:"cc" (vars n))
      (fun _g _root subst ->
        let* dim = concat_dim (Subst.op subst "cc") in
        Some (p (Op.All_gather { dim }) (vars n)))
  in
  Lemma.make ~klass:Lemma.Clean ~complexity:2 "all-gather-is-concat"
    (for_arities lo hi gen @ for_arities lo hi gen_rev)

let lemmas =
  [ all_reduce_is_sum; reduce_scatter_is_slice_of_sum; all_gather_is_concat ]
