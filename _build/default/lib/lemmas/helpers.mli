(** Shared utilities for writing lemmas: pattern shorthands, operator
    attribute accessors, and shape queries against the e-graph. *)

open Entangle_symbolic
open Entangle_ir
open Entangle_egraph

(** {1 Pattern shorthands} *)

val v : string -> Pattern.t
val p : Op.t -> Pattern.t list -> Pattern.t
val fam : string -> bind:string -> Pattern.t list -> Pattern.t

val vars : int -> Pattern.t list
(** [vars n] is [[?x0; ...; ?x(n-1)]]. *)

val vars2 : int -> Pattern.t list * Pattern.t list
(** [[?x0..]], [[?y0..]] — two disjoint groups for binary rules. *)

val vars_y : int -> Pattern.t list
(** [vars_y n] is [[?y0; ...; ?y(n-1)]]. *)

(** {1 Operator attribute accessors} *)

val concat_dim : Op.t -> int option
(** Dim of [Concat] or [Hlo_concatenate]. *)

val slice_attrs : Op.t -> (int * Symdim.t * Symdim.t) option
(** (dim, start, stop) of [Slice] or [Hlo_slice]. *)

val scale_factor : Op.t -> Rat.t option
val transpose_dims : Op.t -> (int * int) option
val reduce_scatter_attrs : Op.t -> (int * int * int) option
val all_gather_dim : Op.t -> int option

(** {1 E-graph shape queries} *)

val shape_of_var : Egraph.t -> Subst.t -> string -> Shape.t option
val dim_of_var : Egraph.t -> Subst.t -> string -> int -> Symdim.t option
(** Size of a variable's class along an axis (axis may be negative). *)

val rank_of_var : Egraph.t -> Subst.t -> string -> int option

val deq : Egraph.t -> Symdim.t -> Symdim.t -> bool
(** Provable equality under the e-graph's constraint store. *)

val dle : Egraph.t -> Symdim.t -> Symdim.t -> bool

val shapes_equal : Egraph.t -> Shape.t -> Shape.t -> bool

(** {1 Option helpers} *)

val ( let* ) : 'a option -> ('a -> 'b option) -> 'b option
val guard : bool -> unit option
val all_some : 'a option list -> 'a list option

(** {1 Rule generation} *)

val for_arities : int -> int -> (int -> Rule.t) -> Rule.t list
(** [for_arities lo hi gen] instantiates a variadic rule template for
    every arity in [lo..hi]. *)

val collective_arities : int * int
(** Range of parallelism degrees supported by generated variadic rules;
    currently [2, 8] matching the paper's evaluated range. *)
