lib/lemmas/aten_ewise.mli: Lemma
