lib/lemmas/collective.ml: Entangle_egraph Entangle_ir Entangle_symbolic Helpers Lemma Op Rule Subst Symdim
