lib/lemmas/lemma.ml: Entangle_egraph Fmt List Pattern Rule
