lib/lemmas/helpers.mli: Egraph Entangle_egraph Entangle_ir Entangle_symbolic Op Pattern Rat Rule Shape Subst Symdim
