lib/lemmas/hlo.mli: Lemma
