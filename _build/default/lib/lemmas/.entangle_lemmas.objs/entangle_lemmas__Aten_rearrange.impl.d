lib/lemmas/aten_rearrange.ml: Array Egraph Enode Entangle_egraph Entangle_ir Entangle_symbolic Helpers Id Lemma List Op Option Pattern Printf Rule Shape Subst Symdim
