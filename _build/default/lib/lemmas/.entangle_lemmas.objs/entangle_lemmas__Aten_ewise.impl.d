lib/lemmas/aten_ewise.ml: Entangle_egraph Entangle_ir Entangle_symbolic Helpers Lemma List Op Printf Rule Shape Subst Symdim
