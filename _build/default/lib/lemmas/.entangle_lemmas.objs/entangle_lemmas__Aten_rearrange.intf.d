lib/lemmas/aten_rearrange.mli: Lemma
