lib/lemmas/aten_linalg.ml: Array Egraph Enode Entangle_egraph Entangle_ir Entangle_symbolic Fun Helpers Id Lemma List Op Option Pattern Printf Rat Rule Subst
