lib/lemmas/aten_nn.mli: Lemma
