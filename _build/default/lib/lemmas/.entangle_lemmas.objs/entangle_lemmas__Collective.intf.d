lib/lemmas/collective.mli: Lemma
