lib/lemmas/hlo.ml: Entangle_egraph Entangle_ir Helpers Lemma Op Rule Subst
