lib/lemmas/registry.ml: Aten_ewise Aten_linalg Aten_nn Aten_rearrange Aten_reduce Collective Hlo Lemma List String Vllm
