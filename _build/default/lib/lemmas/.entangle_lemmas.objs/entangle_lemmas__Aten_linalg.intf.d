lib/lemmas/aten_linalg.mli: Lemma
