lib/lemmas/vllm.ml: Entangle_egraph Entangle_ir Helpers Lemma List Op Printf Rule Subst
