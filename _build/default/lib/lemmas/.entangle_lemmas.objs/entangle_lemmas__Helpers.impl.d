lib/lemmas/helpers.ml: Decide Egraph Entangle_egraph Entangle_ir Entangle_symbolic List Op Option Pattern Printf Shape Subst
