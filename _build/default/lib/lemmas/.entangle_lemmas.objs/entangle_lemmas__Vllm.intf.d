lib/lemmas/vllm.mli: Lemma
