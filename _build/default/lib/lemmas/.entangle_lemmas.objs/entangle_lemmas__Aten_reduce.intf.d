lib/lemmas/aten_reduce.mli: Lemma
