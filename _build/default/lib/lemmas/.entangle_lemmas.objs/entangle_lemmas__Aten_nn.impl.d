lib/lemmas/aten_nn.ml: Entangle_egraph Entangle_ir Entangle_symbolic Helpers Lemma List Op Printf Rat Rule Subst Symdim
