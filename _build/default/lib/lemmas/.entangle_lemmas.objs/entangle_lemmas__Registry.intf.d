lib/lemmas/registry.mli: Entangle_egraph Lemma Rule
