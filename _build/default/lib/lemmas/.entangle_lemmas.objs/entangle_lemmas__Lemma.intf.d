lib/lemmas/lemma.mli: Entangle_egraph Fmt Rule
