open Entangle_symbolic
open Entangle_ir
open Entangle_egraph

let v = Pattern.v
let p = Pattern.p
let fam = Pattern.fam
let vars n = List.init n (fun i -> v (Printf.sprintf "x%d" i))

let vars_y n = List.init n (fun i -> v (Printf.sprintf "y%d" i))

let vars2 n =
  ( List.init n (fun i -> v (Printf.sprintf "x%d" i)),
    List.init n (fun i -> v (Printf.sprintf "y%d" i)) )

let concat_dim = function
  | Op.Concat { dim } | Op.Hlo_concatenate { dim } -> Some dim
  | _ -> None

let slice_attrs = function
  | Op.Slice { dim; start; stop } | Op.Hlo_slice { dim; start; stop } ->
      Some (dim, start, stop)
  | _ -> None

let scale_factor = function Op.Scale r -> Some r | _ -> None

let transpose_dims = function
  | Op.Transpose { dim0; dim1 } -> Some (dim0, dim1)
  | _ -> None

let reduce_scatter_attrs = function
  | Op.Reduce_scatter { dim; index; count } -> Some (dim, index, count)
  | _ -> None

let all_gather_dim = function Op.All_gather { dim } -> Some dim | _ -> None

let shape_of_var g subst x =
  match Subst.var_opt subst x with
  | Some cls -> Egraph.shape_of g cls
  | None -> None

let dim_of_var g subst x axis =
  match shape_of_var g subst x with
  | Some shape ->
      let rank = Shape.rank shape in
      let a = if axis < 0 then rank + axis else axis in
      if a >= 0 && a < rank then Some (Shape.dim shape a) else None
  | None -> None

let rank_of_var g subst x =
  Option.map Shape.rank (shape_of_var g subst x)

let deq g a b = Decide.prove_eq (Egraph.constraints g) a b
let dle g a b = Decide.prove_le (Egraph.constraints g) a b
let shapes_equal g a b = Shape.equal (Egraph.constraints g) a b

let ( let* ) = Option.bind
let guard b = if b then Some () else None

let all_some opts =
  List.fold_right
    (fun o acc ->
      match (o, acc) with
      | Some x, Some xs -> Some (x :: xs)
      | _ -> None)
    opts (Some [])

let for_arities lo hi gen = List.init (hi - lo + 1) (fun i -> gen (lo + i))
let collective_arities = (2, 8)
