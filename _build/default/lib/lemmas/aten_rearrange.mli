(** Structural lemmas about the rearrangement operators that can appear
    in clean expressions: slice, concat, transpose, pad, reshape.
    Includes the slice/concat commutation lemma of the paper's Listing 4
    and the constrained "slices cover" lemma (section 4.3.2) that
    reassembles a tensor from already-materialized adjacent slices. *)

val lemmas : Lemma.t list
