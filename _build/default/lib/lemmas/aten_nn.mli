(** Lemmas about neural-network kernels: softmax, layernorm, rmsnorm,
    embedding, rotary embedding, and the loss operators. These encode
    how each kernel distributes over a partitioned input, which is what
    sequence parallelism and gradient accumulation rely on. *)

val lemmas : Lemma.t list
