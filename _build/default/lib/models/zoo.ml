let fig3_instances () =
  [
    Gpt.build ~layers:1 ~degree:2 ();
    Qwen2.build ~layers:1 ~degree:2 ();
    Llama.build ~layers:1 ~degree:2 ();
    Moe.build ~degree:2 ~layers:1 ();
    Moe.build_backward ~degree:2 ();
    Regression.build ();
  ]

let by_name name =
  match String.lowercase_ascii name with
  | "gpt" -> Some (Gpt.build ())
  | "linear-bwd" -> Some (Train.linear_backward ())
  | "dp" | "data-parallel" -> Some (Train.data_parallel ())
  | "pipeline" | "pp" -> Some (Train.pipeline ())
  | "llama" | "llama-3" | "llama3" -> Some (Llama.build ())
  | "qwen2" | "qwen" -> Some (Qwen2.build ())
  | "bytedance" | "moe" -> Some (Moe.build ())
  | "bytedance-bwd" | "moe-bwd" -> Some (Moe.build_backward ())
  | "regression" -> Some (Regression.build ())
  | _ -> None

let names =
  [
    "gpt"; "llama"; "qwen2"; "bytedance"; "bytedance-bwd"; "regression";
    "linear-bwd"; "dp"; "pipeline";
  ]
