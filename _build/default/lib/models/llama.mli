(** The Llama-3 model of the paper's evaluation, as captured through
    AWS NeuronX / XLA: an rmsnorm/SwiGLU/RoPE transformer whose
    contractions are HLO operators, distributed with tensor
    parallelism. Degrees that do not divide the head count raise
    [Invalid_argument] (the paper's missing data point at parallelism
    size 6). *)

val build : ?layers:int -> ?degree:int -> ?heads:int -> unit -> Instance.t
(** Defaults: 1 layer, degree 2, [heads] the smallest multiple of 4
    divisible by [degree]. *)
