let build ?(layers = 1) ?(degree = 2) ?heads () =
  let heads =
    match heads with
    | Some h -> h
    | None -> if 4 mod degree = 0 then 4 else degree
  in
  let arch = Transformer.llama_arch ~heads () in
  Transformer.build ~arch ~layers ~degree
    ~name:(Fmt.str "Llama-3 (TP, %dx)" degree)
    ~family:Entangle_lemmas.Registry.Llama ()
