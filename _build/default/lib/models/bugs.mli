(** The nine real-world bugs of the paper's case study (Table 3 and
    Appendix A), reproduced as buggy distributed lowerings.

    Bugs 1-5 are from the ByteDance framework, 6 from HuggingFace
    transformers, 7-8 from Megatron-LM, 9 from TransformerEngine.
    Bugs 5, 8 and 9 are user-expectation cases (section 4.4): a
    refinement exists but differs from the one the implementation
    assumed. *)

open Entangle_ir

type kind =
  | Refinement_failure  (** the checker cannot find a clean relation *)
  | Expectation_violation  (** section 4.4: f_s does not equal f_d *)

type case = {
  id : int;
  framework : string;
  description : string;
  kind : kind;
  instance : Instance.t;
  expectation : (Expr.t * Expr.t) option;
      (** (f_s, f_d) for expectation cases *)
}

val all : unit -> case list
(** The nine cases, freshly built. *)

val case : int -> case
(** [case n] for [n] in 1..9. *)

val pad_slice_model : buggy:bool -> Instance.t
(** The padding/slicing model underlying bug 3; [buggy:false] is the
    fixed implementation, which refines. *)

type outcome =
  | Detected of string  (** the report shown to the user *)
  | Missed  (** the checker accepted the buggy implementation *)

val run : ?config:Entangle.Config.t -> case -> outcome
