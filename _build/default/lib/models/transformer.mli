(** Generic transformer builder shared by the GPT, Llama-3 and Qwen2
    models: a sequential specification plus a tensor- / sequence- /
    vocabulary-parallel lowering in the Megatron style.

    Architecture knobs select the dialect: norm kind (layernorm vs
    rmsnorm), MLP kind (GELU vs SwiGLU vs the vLLM fused SwiGLU), rotary
    embeddings, and the contraction operator (ATen matmul vs HLO dot for
    NeuronX-captured graphs). *)

open Entangle_symbolic

type norm_kind = Layernorm | Rmsnorm
type mlp_kind = Gelu_mlp | Swiglu | Swiglu_fused

type arch = {
  seq : Symdim.t;
  d_model : int;
  heads : int;
  d_head : int;  (** [d_model = heads * d_head] *)
  d_ff : int;
  vocab : int option;  (** [Some v] appends an LM head *)
  embed : bool;  (** token-id embedding front end (requires [vocab]) *)
  kv_heads : int;  (** grouped-query attention; must divide [heads] *)
  norm : norm_kind;
  mlp : mlp_kind;
  rope : bool;
  hlo : bool;  (** use HLO operators for contractions and slices *)
  eps : float;
}

val gpt_arch : ?seq:Symdim.t -> ?heads:int -> ?vocab:int option -> unit -> arch
val llama_arch : ?seq:Symdim.t -> ?heads:int -> unit -> arch
val qwen2_arch : ?seq:Symdim.t -> ?heads:int -> unit -> arch

type bug =
  | Missing_allreduce
      (** skip the all-reduce after the row-parallel MLP projection
          (paper bug 7) *)

val build :
  arch:arch ->
  layers:int ->
  degree:int ->
  ?sp:bool ->
  ?vp:bool ->
  ?bug:bug ->
  name:string ->
  family:Entangle_lemmas.Registry.model_family ->
  unit ->
  Instance.t
(** Raises [Invalid_argument] when [heads] or the sequence length cannot
    be evenly partitioned by [degree] (the paper's missing Llama-3 data
    point at parallelism 6). [sp] adds sequence parallelism (requires
    the symbolic sequence built by the default arches to be divisible);
    [vp] shards the LM head over the vocabulary. *)
