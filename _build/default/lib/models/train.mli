(** Training-step models built with {!Entangle_ir.Autodiff}: backward
    graphs are captured mechanically from forward graphs, the way
    TorchDynamo captures them, and then checked for refinement like any
    other pair.

    These cover the strategies the paper could not evaluate because of
    graph-capture limitations (section 6.1): data parallelism, whose
    gradient synchronization is an optimizer-level all-reduce, and
    pipeline-style microbatch accumulation. *)

val linear_backward : ?degree:int -> ?missing_sync:bool -> unit -> Instance.t
(** Backward pass of a column-parallel linear layer: per-rank weight
    gradients stay sharded; the replicated input's gradient partials
    must be all-reduced. [missing_sync] omits that all-reduce — the
    optimizer-bug pattern of the paper's bugs 5/8/9 — and must be
    detected. *)

val data_parallel : ?replicas:int -> unit -> Instance.t
(** A data-parallel training step of a linear+MSE model: inputs sharded
    over replicas, weights replicated, per-replica losses averaged, and
    weight-gradient partials all-reduced. *)

val pipeline : ?microbatches:int -> ?layers:int -> unit -> Instance.t
(** Microbatched (pipeline-style) execution of a multi-layer MLP with a
    scaled accumulated loss. Placement across stages does not change the
    dataflow, so refinement checking sees exactly the microbatching. *)
