let build ?(layers = 1) ?(degree = 2) ?heads ?(sp = true) ?(vp = true) () =
  let heads = match heads with Some h -> h | None -> max 2 degree in
  let arch =
    Transformer.gpt_arch ~heads ~vocab:(if vp then Some 16 else None) ()
  in
  Transformer.build ~arch ~layers ~degree ~sp ~vp
    ~name:(Fmt.str "GPT (TP%s, %dx)" (if sp then "+SP" else "") degree)
    ~family:Entangle_lemmas.Registry.Gpt ()
