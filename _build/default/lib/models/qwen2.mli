(** The Qwen2 model of the paper's evaluation, as served by vLLM: an
    rmsnorm/RoPE transformer using the fused SwiGLU kernel, distributed
    with tensor parallelism. *)

val build : ?layers:int -> ?degree:int -> ?heads:int -> unit -> Instance.t
(** Defaults: 1 layer, degree 2, [heads = max 2 degree]. *)
