(** The HuggingFace-transformers regression test model: a linear model
    with MSE loss, distributed by gradient accumulation over
    microbatches (paper Table 2 and bug 6).

    The correct lowering scales every microbatch loss by the reciprocal
    number of microbatches before accumulating; the buggy variant omits
    the scaling, which was the widely reported transformers issue. *)

val build :
  ?microbatches:int ->
  ?batch:int ->
  ?features:int ->
  ?buggy:bool ->
  unit ->
  Instance.t
(** Defaults: 2 microbatches, batch 8, 4 features, bug-free. *)
