open Entangle_symbolic
open Entangle_ir
open Entangle_dist
module B = Graph.Builder

let sd = Symdim.of_int

let build ?(microbatches = 2) ?(batch = 8) ?(features = 4) ?(buggy = false)
    () =
  if batch mod microbatches <> 0 then
    invalid_arg "Regression.build: batch must divide by microbatches";
  (* Sequential model: loss = mse(matmul(x, w), y) over the full batch. *)
  let bs = B.create "regression-seq" in
  let x = B.input bs "x" [ sd batch; sd features ] in
  let w = B.input bs "w" [ sd features; sd 1 ] in
  let y = B.input bs "y" [ sd batch; sd 1 ] in
  let pred = B.add bs ~name:"pred" Op.Matmul [ x; w ] in
  let loss = B.add bs ~name:"loss" Op.Mse_loss [ pred; y ] in
  B.output bs loss;
  let gs = B.finish bs in
  (* Gradient accumulation: the batch is split into microbatches whose
     losses are scaled and accumulated on a single device. *)
  let ctx =
    Lower.create
      ~name:
        (if buggy then "regression-grad-accum-buggy"
         else "regression-grad-accum")
      ~degree:microbatches ()
  in
  let xs = Lower.shard_input ctx x ~dim:0 in
  let w_d = Lower.whole_input ctx w in
  let ys = Lower.shard_input ctx y ~dim:0 in
  let micro_losses =
    List.map2
      (fun x_i y_i ->
        let pred_i = Lower.add ctx Op.Matmul [ x_i; w_d ] in
        let l_i = Lower.add ctx Op.Mse_loss [ pred_i; y_i ] in
        if buggy then l_i
        else Lower.add ctx (Op.Scale (Rat.make 1 microbatches)) [ l_i ])
      xs ys
  in
  let total = Lower.add ctx ~name:"accumulated_loss" Op.Sum_n micro_losses in
  Lower.output ctx total;
  let gd, input_relation = Lower.finish ctx in
  Instance.make
    ~name:(if buggy then "Regression (buggy grad-accum)" else "Regression")
    ~family:Entangle_lemmas.Registry.Regression
    ~strategies:[ Strategy.Gradient_accumulation ]
    ~degree:microbatches ~layers:1 ~gs ~gd ~input_relation
    ~env:(Interp.env_of_list [])
