(** The ByteDance-style internal model: a mixture-of-experts transformer
    layer with rotary embeddings, distributed with sequence parallelism
    (rope + rmsnorm on sequence shards), head-dimension tensor
    parallelism for attention, expert parallelism for the MoE FFN, and a
    TP-scaled auxiliary load-balancing loss.

    [build_backward] produces the backward-pass graphs of the expert
    FFN (activations enter as graph inputs, as TorchDynamo captures
    backward graphs), giving the ByteDance-Bwd column of Figure 3. *)

type bug =
  | Aux_loss_unscaled
      (** paper bug 2: the auxiliary loss is not divided by the TP size *)
  | Rope_wrong_offset
      (** paper bug 1: every rank slices the cos/sin tables at offset 0 *)
  | Experts_sharded
      (** paper bug 4: expert weights sharded under SP instead of
          replicated, losing the off-diagonal blocks *)

val build :
  ?experts:int -> ?degree:int -> ?layers:int -> ?bug:bug -> unit -> Instance.t
(** Defaults: 4 experts, degree 2, 1 layer, bug-free. Requires
    [degree] to divide both [experts] and the model dimension. *)

val build_backward : ?experts:int -> ?degree:int -> unit -> Instance.t
