lib/models/instance.mli: Entangle Entangle_dist Entangle_ir Entangle_lemmas Fmt Graph Hashtbl Interp Strategy
