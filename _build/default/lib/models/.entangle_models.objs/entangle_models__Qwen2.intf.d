lib/models/qwen2.mli: Instance
