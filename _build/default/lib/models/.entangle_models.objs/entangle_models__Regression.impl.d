lib/models/regression.ml: Entangle_dist Entangle_ir Entangle_lemmas Entangle_symbolic Graph Instance Interp List Lower Op Rat Strategy Symdim
