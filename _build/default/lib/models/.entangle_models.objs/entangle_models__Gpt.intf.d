lib/models/gpt.mli: Instance
