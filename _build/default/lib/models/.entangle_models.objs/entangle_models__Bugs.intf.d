lib/models/bugs.mli: Entangle Entangle_ir Expr Instance
