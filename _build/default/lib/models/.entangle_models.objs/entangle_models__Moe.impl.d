lib/models/moe.ml: Array Constraint_store Entangle_dist Entangle_ir Entangle_lemmas Entangle_symbolic Fmt Graph Instance Interp List Lower Op Rat Shape Strategy Symdim Tensor
