lib/models/qwen2.ml: Entangle_lemmas Fmt Transformer
