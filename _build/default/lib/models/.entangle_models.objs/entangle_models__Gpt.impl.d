lib/models/gpt.ml: Entangle_lemmas Fmt Transformer
