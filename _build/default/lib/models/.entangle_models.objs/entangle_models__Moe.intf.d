lib/models/moe.mli: Instance
