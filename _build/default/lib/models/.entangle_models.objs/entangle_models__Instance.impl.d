lib/models/instance.ml: Entangle Entangle_dist Entangle_ir Entangle_lemmas Fmt Graph Interp Strategy
