lib/models/zoo.mli: Instance
