lib/models/zoo.ml: Gpt Llama Moe Qwen2 Regression String Train
