lib/models/transformer.ml: Array Dtype Entangle_dist Entangle_ir Entangle_symbolic Fmt Graph Instance Interp List Lower Op Option Strategy Symdim Tensor
