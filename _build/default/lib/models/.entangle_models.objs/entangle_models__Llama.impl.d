lib/models/llama.ml: Entangle_lemmas Fmt Transformer
