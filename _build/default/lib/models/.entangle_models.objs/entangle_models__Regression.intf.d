lib/models/regression.mli: Instance
