lib/models/llama.mli: Instance
