lib/models/transformer.mli: Entangle_lemmas Entangle_symbolic Instance Symdim
