lib/models/train.mli: Instance
