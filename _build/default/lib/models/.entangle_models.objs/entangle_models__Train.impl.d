lib/models/train.ml: Autodiff Entangle Entangle_dist Entangle_ir Entangle_lemmas Entangle_symbolic Expr Fmt Graph Instance Interp List Lower Op Rat Strategy Symdim Tensor
