(** The catalog of verification instances used by the benchmarks, the
    CLI and the examples — the workload of the paper's Table 2. *)

val fig3_instances : unit -> Instance.t list
(** The end-to-end verification workload of Figure 3: GPT (TP+SP),
    Qwen2 (TP), Llama-3 (TP), ByteDance forward and backward, all at
    parallelism 2 with one layer, plus the sub-second HuggingFace
    regression model mentioned in section 6.3. *)

val by_name : string -> Instance.t option
(** Lookup by short name: "gpt", "llama", "qwen2", "bytedance",
    "bytedance-bwd", "regression". *)

val names : string list
