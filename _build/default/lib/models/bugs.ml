open Entangle_symbolic
open Entangle_ir
open Entangle_dist
module B = Graph.Builder

type kind = Refinement_failure | Expectation_violation

type case = {
  id : int;
  framework : string;
  description : string;
  kind : kind;
  instance : Instance.t;
  expectation : (Expr.t * Expr.t) option;
}

let sd = Symdim.of_int
let constraints = Constraint_store.add_positive Constraint_store.empty "sc"
let seq () = Symdim.mul_int 24 (Symdim.sym "sc")

(* --- Bug 3: mismatched padding and slicing ---------------------------- *)

(* All-gather requires equally shaped inputs, so SP shards are padded
   before gathering and the padding sliced off afterwards; the bug uses
   an off-by-one slice offset, dropping a real element and keeping a
   padded one. *)
let pad_slice_case ~buggy =
  let s = seq () in
  let d = 8 and pad = 2 in
  let bs = B.create ~constraints "pad-slice-seq" in
  let x = B.input bs "x" [ s; sd d ] in
  let w = B.input bs "w" [ sd d; sd d ] in
  let z = B.add bs ~name:"z" Op.Matmul [ x; w ] in
  B.output bs z;
  let gs = B.finish bs in
  let degree = 2 in
  let ctx =
    Lower.create ~constraints
      ~name:(if buggy then "pad-slice-buggy" else "pad-slice") ~degree ()
  in
  let xs = Lower.shard_input ctx x ~dim:0 in
  let ws = Lower.replicate_input ctx w in
  let chunk = Option.get (Symdim.div_int s degree) in
  let padded =
    List.map
      (fun x_r ->
        Lower.add ctx (Op.Pad { dim = 0; before = Symdim.zero; after = sd pad })
          [ x_r ])
      xs
  in
  let gathered = Lower.all_gather ctx ~dim:0 padded in
  let outs =
    List.mapi
      (fun r g ->
        (* Drop the padding: piece i of the gather lives at offset
           i * (chunk + pad). The bug shifts the second offset by one. *)
        let shift = if buggy then -1 else 0 in
        let piece i =
          let base = Symdim.mul_int i (Symdim.add chunk (sd pad)) in
          let base = if i > 0 then Symdim.add base (sd shift) else base in
          Lower.add ctx
            (Op.Slice { dim = 0; start = base; stop = Symdim.add base chunk })
            [ g ]
        in
        let full =
          Lower.add ctx (Op.Concat { dim = 0 })
            (List.init degree piece)
        in
        Lower.add ctx
          ~name:(Fmt.str "z_%d" r)
          Op.Matmul
          [ full; List.nth ws r ])
      gathered
  in
  Lower.output ctx (List.hd outs);
  let gd, input_relation = Lower.finish ctx in
  Instance.make
    ~name:(if buggy then "pad-slice (buggy)" else "pad-slice")
    ~family:Entangle_lemmas.Registry.Bytedance
    ~strategies:[ Strategy.Sequence_parallel ] ~degree ~layers:1 ~gs ~gd
    ~input_relation
    ~env:(Interp.env_of_list [ ("sc", 1) ])

(* --- Bugs 5 / 8 / 9: missing gradient aggregation (section 4.4) ------- *)

(* Weight-gradient graphs under sequence parallelism: each rank holds a
   partial gradient over its sequence shard; a correct optimizer
   all-reduces them. The buggy implementations registered only the local
   partial, which the user states as the expectation f_d = gw_rank0. *)
type grad_flavor = Layernorm_weight | Router_weight | Rmsnorm_weight

let grad_case flavor =
  let s = seq () in
  let d = 8 and e = 4 in
  let bs = B.create ~constraints "grad-seq" in
  let x = B.input bs "x" [ s; sd d ] in
  let dy_shape =
    match flavor with Router_weight -> [ s; sd e ] | _ -> [ s; sd d ]
  in
  let dy = B.input bs "dy" dy_shape in
  let wn = B.input bs "wn" [ sd d ] in
  let gw =
    match flavor with
    | Layernorm_weight ->
        (* d/dw of layernorm: reduce over the sequence. *)
        B.add bs ~name:"gw"
          (Op.Reduce_sum { dim = 0; keepdim = false })
          [ B.add bs Op.Mul [ dy; x ] ]
    | Rmsnorm_weight ->
        let nx = B.add bs (Op.Rmsnorm { eps = 1e-5 }) [ x; wn ] in
        B.add bs ~name:"gw"
          (Op.Reduce_sum { dim = 0; keepdim = false })
          [ B.add bs Op.Mul [ dy; nx ] ]
    | Router_weight ->
        B.add bs ~name:"gw" Op.Matmul
          [ B.add bs (Op.Transpose { dim0 = 0; dim1 = 1 }) [ x ]; dy ]
  in
  B.output bs gw;
  let gs = B.finish bs in
  let degree = 2 in
  let ctx = Lower.create ~constraints ~name:"grad-dist" ~degree () in
  let xs = Lower.shard_input ctx x ~dim:0 in
  let dys = Lower.shard_input ctx dy ~dim:0 in
  let wns = Lower.replicate_input ctx wn in
  let partials =
    List.mapi
      (fun r x_r ->
        let dy_r = List.nth dys r in
        match flavor with
        | Layernorm_weight ->
            Lower.add ctx
              ~name:(Fmt.str "gw_%d" r)
              (Op.Reduce_sum { dim = 0; keepdim = false })
              [ Lower.add ctx Op.Mul [ dy_r; x_r ] ]
        | Rmsnorm_weight ->
            let nx =
              Lower.add ctx (Op.Rmsnorm { eps = 1e-5 }) [ x_r; List.nth wns r ]
            in
            Lower.add ctx
              ~name:(Fmt.str "gw_%d" r)
              (Op.Reduce_sum { dim = 0; keepdim = false })
              [ Lower.add ctx Op.Mul [ dy_r; nx ] ]
        | Router_weight ->
            Lower.add ctx
              ~name:(Fmt.str "gw_%d" r)
              Op.Matmul
              [
                Lower.add ctx (Op.Transpose { dim0 = 0; dim1 = 1 }) [ x_r ];
                dy_r;
              ])
      xs
  in
  (* The bug: no all-reduce; every rank's partial is exposed as if it
     were the full gradient. *)
  List.iter (Lower.output ctx) partials;
  let gd, input_relation = Lower.finish ctx in
  let name =
    match flavor with
    | Layernorm_weight -> "layernorm weight grad (SP)"
    | Router_weight -> "MoE router weight grad (TP+SP)"
    | Rmsnorm_weight -> "rmsnorm weight grad (SP)"
  in
  let strategies =
    match flavor with
    | Router_weight -> Strategy.[ Tensor_parallel; Sequence_parallel ]
    | _ -> [ Strategy.Sequence_parallel ]
  in
  let instance =
    Instance.make ~name ~family:Entangle_lemmas.Registry.Bytedance ~strategies
      ~degree ~layers:1 ~gs ~gd ~input_relation
      ~env:(Interp.env_of_list [ ("sc", 1) ])
  in
  (* The user expects the sequential gradient to equal rank 0's value. *)
  let fs = Expr.leaf gw in
  let fd = Expr.leaf (List.hd partials) in
  (instance, (fs, fd))

let pad_slice_model ~buggy = pad_slice_case ~buggy

(* --- catalog ----------------------------------------------------------- *)

let all () =
  let b5, e5 = grad_case Layernorm_weight in
  let b8, e8 = grad_case Router_weight in
  let b9, e9 = grad_case Rmsnorm_weight in
  [
    {
      id = 1;
      framework = "ByteDance";
      description = "Incorrect offset in RoPE with SP";
      kind = Refinement_failure;
      instance = Moe.build ~bug:Moe.Rope_wrong_offset ();
      expectation = None;
    };
    {
      id = 2;
      framework = "ByteDance";
      description = "Incorrect scaling for auxiliary loss with TP";
      kind = Refinement_failure;
      instance = Moe.build ~bug:Moe.Aux_loss_unscaled ();
      expectation = None;
    };
    {
      id = 3;
      framework = "ByteDance";
      description = "Mismatched padding and slicing in data processing";
      kind = Refinement_failure;
      instance = pad_slice_case ~buggy:true;
      expectation = None;
    };
    {
      id = 4;
      framework = "ByteDance";
      description = "Incompatible configurations for model components";
      kind = Refinement_failure;
      instance = Moe.build ~bug:Moe.Experts_sharded ();
      expectation = None;
    };
    {
      id = 5;
      framework = "ByteDance";
      description = "Missing aggregation for a layernorm weight";
      kind = Expectation_violation;
      instance = b5;
      expectation = Some e5;
    };
    {
      id = 6;
      framework = "Huggingface transformers";
      description = "Wrong scaling in gradient accumulation";
      kind = Refinement_failure;
      instance = Regression.build ~buggy:true ();
      expectation = None;
    };
    {
      id = 7;
      framework = "Megatron-LM";
      description =
        "Missing all-reduce in parallel linear layer due to \
         mis-configuration";
      kind = Refinement_failure;
      instance =
        Transformer.build
          ~arch:(Transformer.gpt_arch ~heads:2 ~vocab:None ())
          ~layers:1 ~degree:2 ~bug:Transformer.Missing_allreduce
          ~name:"GPT (missing all-reduce)"
          ~family:Entangle_lemmas.Registry.Gpt ();
      expectation = None;
    };
    {
      id = 8;
      framework = "Megatron-LM";
      description =
        "Missing all-reduce in optimizer for MoE router with TP+SP";
      kind = Expectation_violation;
      instance = b8;
      expectation = Some e8;
    };
    {
      id = 9;
      framework = "Transformer-Engine";
      description = "Missing all-reduce in optimizer for layernorm with SP";
      kind = Expectation_violation;
      instance = b9;
      expectation = Some e9;
    };
  ]

let case n =
  match List.find_opt (fun c -> c.id = n) (all ()) with
  | Some c -> c
  | None -> invalid_arg "Bugs.case: id must be in 1..9"

type outcome = Detected of string | Missed

let run ?config case =
  let inst = case.instance in
  let rules = Entangle_lemmas.Registry.rules_for_model inst.Instance.family in
  match case.expectation with
  | Some (fs, fd) -> (
      match
        Entangle.Expectation.check ?config ~rules ~gs:inst.Instance.gs
          ~gd:inst.Instance.gd ~input_relation:inst.Instance.input_relation
          ~fs ~fd ()
      with
      | Error v -> Detected v.Entangle.Expectation.reason
      | Ok _ -> Missed)
  | None -> (
      match
        Entangle.Refine.check ?config ~rules ~gs:inst.Instance.gs
          ~gd:inst.Instance.gd ~input_relation:inst.Instance.input_relation ()
      with
      | Error f -> Detected (Entangle.Report.failure_to_string inst.Instance.gs f)
      | Ok _ -> Missed)
