let build ?(layers = 1) ?(degree = 2) ?heads () =
  let heads = match heads with Some h -> h | None -> max 2 degree in
  let arch = Transformer.qwen2_arch ~heads () in
  Transformer.build ~arch ~layers ~degree
    ~name:(Fmt.str "Qwen2 (TP, %dx)" degree)
    ~family:Entangle_lemmas.Registry.Qwen2 ()
