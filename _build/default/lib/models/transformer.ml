open Entangle_symbolic
open Entangle_ir
open Entangle_dist
module B = Graph.Builder

type norm_kind = Layernorm | Rmsnorm
type mlp_kind = Gelu_mlp | Swiglu | Swiglu_fused

type arch = {
  seq : Symdim.t;
  d_model : int;
  heads : int;
  d_head : int;
  d_ff : int;
  vocab : int option;
  embed : bool;
  kv_heads : int;  (** grouped-query attention; divides [heads] *)
  norm : norm_kind;
  mlp : mlp_kind;
  rope : bool;
  hlo : bool;
  eps : float;
}

(* Default symbolic sequence: 24 * sc, evenly divisible by every
   parallelism degree the paper evaluates (2..8 except 5 and 7). *)
let default_seq = Symdim.mul_int 24 (Symdim.sym "sc")

let base_arch ~heads ~seq =
  {
    seq;
    d_model = heads * 4;
    heads;
    d_head = 4;
    d_ff = heads * 8;
    vocab = None;
    embed = false;
    kv_heads = heads;
    norm = Layernorm;
    mlp = Gelu_mlp;
    rope = false;
    hlo = false;
    eps = 1e-5;
  }

let gpt_arch ?(seq = default_seq) ?(heads = 2) ?(vocab = Some 16) () =
  { (base_arch ~heads ~seq) with vocab; embed = vocab <> None }

let llama_arch ?(seq = default_seq) ?(heads = 2) () =
  {
    (base_arch ~heads ~seq) with
    kv_heads = max 1 (heads / 2);
    norm = Rmsnorm;
    mlp = Swiglu;
    rope = true;
    hlo = true;
  }

let qwen2_arch ?(seq = default_seq) ?(heads = 2) () =
  {
    (base_arch ~heads ~seq) with
    kv_heads = max 1 (heads / 2);
    norm = Rmsnorm;
    mlp = Swiglu_fused;
    rope = true;
  }

type bug = Missing_allreduce

let sd = Symdim.of_int

let dot arch = if arch.hlo then Op.Hlo_dot else Op.Matmul
let transpose01 = Op.Transpose { dim0 = 0; dim1 = 1 }

(* Weight tensors of one sequential layer, referenced by the lowering
   when constructing the input relation. *)
type layer_weights = {
  n1_w : Tensor.t;
  n1_b : Tensor.t option;
  wq : Tensor.t array;
  wk : Tensor.t array;
  wv : Tensor.t array;
  wo : Tensor.t;
  n2_w : Tensor.t;
  n2_b : Tensor.t option;
  w1 : Tensor.t;
  w3 : Tensor.t option;
  w2 : Tensor.t;
}

type seq_model = {
  gs : Graph.t;
  x : Tensor.t;  (** token ids when the arch embeds, activations otherwise *)
  wte : Tensor.t option;
  targets : Tensor.t option;
  cos : Tensor.t option;
  sin : Tensor.t option;
  weights : layer_weights list;
  lm_w : Tensor.t option;
}

let norm_inputs arch b ~prefix =
  let d = arch.d_model in
  match arch.norm with
  | Layernorm ->
      let w = B.input b (prefix ^ "_w") [ sd d ] in
      let bias = B.input b (prefix ^ "_b") [ sd d ] in
      (w, Some bias)
  | Rmsnorm -> (B.input b (prefix ^ "_w") [ sd d ], None)

let apply_norm arch add_fn x (w, bias) =
  match (arch.norm, bias) with
  | Layernorm, Some bias -> add_fn (Op.Layernorm { eps = arch.eps }) [ x; w; bias ]
  | Rmsnorm, _ -> add_fn (Op.Rmsnorm { eps = arch.eps }) [ x; w ]
  | Layernorm, None -> invalid_arg "transformer: layernorm without bias"

(* One attention head given inputs that are already in the graph. *)
let head_ctx arch add_fn ~hidden ~wq ~wk ~wv ~cos_sin =
  let dot = dot arch in
  let project w = add_fn dot [ hidden; w ] in
  let q = project wq and k = project wk and v = project wv in
  let q, k =
    match cos_sin with
    | Some (cos, sin) ->
        (add_fn Op.Rope [ q; cos; sin ], add_fn Op.Rope [ k; cos; sin ])
    | None -> (q, k)
  in
  let scores = add_fn dot [ q; add_fn transpose01 [ k ] ] in
  let probs = add_fn (Op.Softmax { dim = 1 }) [ scores ] in
  add_fn dot [ probs; v ]

let mlp_out arch add_fn ~hidden ~w1 ~w3 ~w2 =
  let dot = dot arch in
  let inner =
    match (arch.mlp, w3) with
    | Gelu_mlp, _ -> add_fn Op.Gelu [ add_fn dot [ hidden; w1 ] ]
    | Swiglu, Some w3 ->
        let gate = add_fn Op.Silu [ add_fn dot [ hidden; w1 ] ] in
        let up = add_fn dot [ hidden; w3 ] in
        add_fn Op.Mul [ gate; up ]
    | Swiglu_fused, Some w3 ->
        let gate = add_fn dot [ hidden; w1 ] in
        let up = add_fn dot [ hidden; w3 ] in
        add_fn Op.Swiglu_fused [ gate; up ]
    | (Swiglu | Swiglu_fused), None ->
        invalid_arg "transformer: swiglu requires w3"
  in
  add_fn dot [ inner; w2 ]

let build_seq arch ~layers ~name =
  let constraints =
    Entangle_symbolic.Constraint_store.add_positive
      Entangle_symbolic.Constraint_store.empty "sc"
  in
  let b = B.create ~constraints name in
  let d = arch.d_model and dh = arch.d_head and ff = arch.d_ff in
  (* Either raw activations or an embedding front end over token ids. *)
  let x0, wte, h0 =
    if arch.embed then begin
      let vocab =
        match arch.vocab with
        | Some v -> v
        | None -> invalid_arg "transformer: embed requires a vocabulary size"
      in
      let ids = B.input b ~dtype:Dtype.I64 "ids" [ arch.seq ] in
      let wte = B.input b "wte" [ sd vocab; sd d ] in
      let h = B.add b ~name:"embedded" Op.Embedding [ wte; ids ] in
      (ids, Some wte, h)
    end
    else
      let x = B.input b "x" [ arch.seq; sd d ] in
      (x, None, x)
  in
  let cos, sin =
    if arch.rope then
      ( Some (B.input b "cos" [ arch.seq; sd dh ]),
        Some (B.input b "sin" [ arch.seq; sd dh ]) )
    else (None, None)
  in
  let cos_sin = match (cos, sin) with Some c, Some s -> Some (c, s) | _ -> None in
  let weights = ref [] in
  let x = ref h0 in
  for l = 0 to layers - 1 do
    let pre = Fmt.str "l%d" l in
    let n1_w, n1_b = norm_inputs arch b ~prefix:(pre ^ "_n1") in
    let per what count =
      Array.init count (fun j ->
          B.input b (Fmt.str "%s_%s%d" pre what j) [ sd d; sd dh ])
    in
    let wq = per "wq" arch.heads in
    let wk = per "wk" arch.kv_heads and wv = per "wv" arch.kv_heads in
    let wo = B.input b (pre ^ "_wo") [ sd d; sd d ] in
    let n2_w, n2_b = norm_inputs arch b ~prefix:(pre ^ "_n2") in
    let w1 = B.input b (pre ^ "_w1") [ sd d; sd ff ] in
    let w3 =
      match arch.mlp with
      | Gelu_mlp -> None
      | Swiglu | Swiglu_fused -> Some (B.input b (pre ^ "_w3") [ sd d; sd ff ])
    in
    let w2 = B.input b (pre ^ "_w2") [ sd ff; sd d ] in
    let lw = { n1_w; n1_b; wq; wk; wv; wo; n2_w; n2_b; w1; w3; w2 } in
    weights := !weights @ [ lw ];
    (* layer body *)
    let add_fn op ins = B.add b op ins in
    let hidden = apply_norm arch add_fn !x (n1_w, n1_b) in
    let kv_of j = j * arch.kv_heads / arch.heads in
    let ctxs =
      List.init arch.heads (fun j ->
          head_ctx arch add_fn ~hidden ~wq:wq.(j) ~wk:wk.(kv_of j)
            ~wv:wv.(kv_of j) ~cos_sin)
    in
    let attn =
      match ctxs with
      | [ one ] -> one
      | many -> add_fn (Op.Concat { dim = 1 }) many
    in
    let proj = add_fn (dot arch) [ attn; wo ] in
    let r1 = add_fn Op.Add [ !x; proj ] in
    let hidden2 = apply_norm arch add_fn r1 (n2_w, n2_b) in
    let y = mlp_out arch add_fn ~hidden:hidden2 ~w1 ~w3 ~w2 in
    x := add_fn Op.Add [ r1; y ]
  done;
  let lm_w =
    Option.map (fun v -> B.input b "lm_w" [ sd d; sd v ]) arch.vocab
  in
  B.output b !x;
  let targets =
    Option.map
      (fun w ->
        let logits = B.add b ~name:"logits" (dot arch) [ !x; w ] in
        B.output b logits;
        (* Language-model loss, as in the Megatron training script. *)
        let targets = B.input b ~dtype:Dtype.I64 "targets" [ arch.seq ] in
        let loss =
          B.add b ~name:"lm_loss" Op.Cross_entropy [ logits; targets ]
        in
        B.output b loss;
        targets)
      lm_w
  in
  {
    gs = B.finish b;
    x = x0;
    wte;
    targets;
    cos;
    sin;
    weights = !weights;
    lm_w;
  }

(* ------------------------------------------------------------------ *)
(* Distributed lowering                                                *)
(* ------------------------------------------------------------------ *)

let build_dist arch sm ~layers ~degree ~sp ~vp ~bug ~name =
  if arch.heads mod degree <> 0 then
    invalid_arg
      (Fmt.str "transformer: %d heads cannot be partitioned %d ways"
         arch.heads degree);
  if arch.heads mod arch.kv_heads <> 0 then
    invalid_arg "transformer: kv_heads must divide heads";
  let constraints =
    Entangle_symbolic.Constraint_store.add_positive
      Entangle_symbolic.Constraint_store.empty "sc"
  in
  let ctx = Lower.create ~constraints ~name ~degree () in
  let dot = dot arch in
  let heads_per_rank = arch.heads / degree in
  (* Activations entering the layer stack: when the model embeds, the
     token ids are sharded (SP) or replicated (TP) and every rank runs
     the embedding against a replicated table. *)
  let acts =
    let front =
      if sp then Lower.shard_input ctx sm.x ~dim:0
      else Lower.replicate_input ctx sm.x
    in
    match sm.wte with
    | None -> front
    | Some wte ->
        let wtes = Lower.replicate_input ctx wte in
        List.map2
          (fun ids_r wte_r -> Lower.add ctx Op.Embedding [ wte_r; ids_r ])
          front wtes
  in
  let cos_sin =
    match (sm.cos, sm.sin) with
    | Some cos, Some sin ->
        let cs = Lower.replicate_input ctx cos in
        let ss = Lower.replicate_input ctx sin in
        Some (List.combine cs ss)
    | _ -> None
  in
  let acts = ref acts in
  List.iteri
    (fun l lw ->
      let pre = Fmt.str "l%d" l in
      (* Replicated norm weights (one replica per rank). *)
      let n1_ws = Lower.replicate_input ctx lw.n1_w in
      let n1_bs = Option.map (Lower.replicate_input ctx) lw.n1_b in
      let n2_ws = Lower.replicate_input ctx lw.n2_w in
      let n2_bs = Option.map (Lower.replicate_input ctx) lw.n2_b in
      (* Per-head projection weights live on the rank owning the head. *)
      let whole = Lower.whole_input ctx in
      let wqs = Array.map whole lw.wq in
      (* Grouped-query attention: a kv head may serve query heads on
         several ranks; its weights live once and are shared. *)
      let wks = Array.map whole lw.wk in
      let wvs = Array.map whole lw.wv in
      let kv_of j = j * arch.kv_heads / arch.heads in
      (* Row-sharded attention output projection, column-sharded MLP
         up-projections, row-sharded MLP down-projection. *)
      let wos = Lower.shard_input ctx lw.wo ~dim:0 in
      let w1s = Lower.shard_input ctx lw.w1 ~dim:1 in
      let w3s = Option.map (fun w -> Lower.shard_input ctx w ~dim:1) lw.w3 in
      let w2s = Lower.shard_input ctx lw.w2 ~dim:0 in
      let norm_of r x w bs =
        let bias = Option.map (fun l -> List.nth l r) bs in
        apply_norm arch (fun op ins -> Lower.add ctx op ins) x
          (List.nth w r, bias)
      in
      let normed =
        List.mapi (fun r x -> norm_of r x n1_ws n1_bs) !acts
      in
      (* Under SP the attention needs the full sequence. *)
      let hidden_full =
        if sp then Lower.all_gather ctx ~dim:0 normed else normed
      in
      let partials =
        List.mapi
          (fun r hidden ->
            let cs =
              Option.map (fun l -> List.nth l r) cos_sin
            in
            let ctxs =
              List.init heads_per_rank (fun i ->
                  let j = (r * heads_per_rank) + i in
                  head_ctx arch
                    (fun op ins -> Lower.add ctx op ins)
                    ~hidden ~wq:wqs.(j) ~wk:wks.(kv_of j) ~wv:wvs.(kv_of j)
                    ~cos_sin:cs)
            in
            let attn =
              match ctxs with
              | [ one ] -> one
              | many ->
                  Lower.add ctx
                    ~name:(Fmt.str "%s_attn_r%d" pre r)
                    (Op.Concat { dim = 1 })
                    many
            in
            Lower.add ctx dot [ attn; List.nth wos r ])
          hidden_full
      in
      let proj =
        if sp then Lower.reduce_scatter ctx ~dim:0 partials
        else Lower.all_reduce ctx partials
      in
      let r1 = List.map2 (fun x p -> Lower.add ctx Op.Add [ x; p ]) !acts proj in
      let normed2 = List.mapi (fun r x -> norm_of r x n2_ws n2_bs) r1 in
      let hidden2_full =
        if sp then Lower.all_gather ctx ~dim:0 normed2 else normed2
      in
      let y_partials =
        List.mapi
          (fun r hidden ->
            mlp_out arch
              (fun op ins -> Lower.add ctx op ins)
              ~hidden ~w1:(List.nth w1s r)
              ~w3:(Option.map (fun l -> List.nth l r) w3s)
              ~w2:(List.nth w2s r))
          hidden2_full
      in
      let y =
        match bug with
        | Some Missing_allreduce -> y_partials
        | None ->
            if sp then Lower.reduce_scatter ctx ~dim:0 y_partials
            else Lower.all_reduce ctx y_partials
      in
      acts := List.map2 (fun x y -> Lower.add ctx Op.Add [ x; y ]) r1 y)
    (List.filteri (fun i _ -> i < layers) sm.weights);
  (* Outputs. *)
  let final_full =
    if sp then Lower.all_gather ctx ~dim:0 !acts else !acts
  in
  if sp then Lower.outputs ctx !acts else Lower.output ctx (List.hd !acts);
  Option.iter
    (fun lm_w ->
      let logits =
        if vp then begin
          let lmws = Lower.shard_input ctx lm_w ~dim:1 in
          let parts =
            List.map2 (fun h w -> Lower.add ctx dot [ h; w ]) final_full lmws
          in
          Lower.all_gather ctx ~dim:1 parts
        end
        else
          let lmws = Lower.replicate_input ctx lm_w in
          List.map2 (fun h w -> Lower.add ctx dot [ h; w ]) final_full lmws
      in
      Lower.output ctx (List.hd logits);
      Option.iter
        (fun targets ->
          let tgt = Lower.replicate_input ctx targets in
          let losses =
            List.map2
              (fun l t -> Lower.add ctx Op.Cross_entropy [ l; t ])
              logits tgt
          in
          Lower.output ctx (List.hd losses))
        sm.targets)
    sm.lm_w;
  Lower.finish ctx

let build ~arch ~layers ~degree ?(sp = false) ?(vp = false) ?bug ~name
    ~family () =
  let sm = build_seq arch ~layers ~name:(name ^ "-seq") in
  let gd, input_relation =
    build_dist arch sm ~layers ~degree ~sp ~vp ~bug ~name:(name ^ "-dist")
  in
  let strategies =
    [ Strategy.Tensor_parallel ]
    @ (if sp then [ Strategy.Sequence_parallel ] else [])
    @ if vp then [ Strategy.Vocab_parallel ] else []
  in
  Instance.make ~name ~family ~strategies ~degree ~layers ~gs:sm.gs ~gd
    ~input_relation
    ~env:(Interp.env_of_list [ ("sc", 1) ])
