(** The GPT model of the paper's evaluation (the Megatron-LM example
    training script): a layernorm/GELU transformer distributed with
    tensor parallelism, optionally sequence parallelism and a
    vocabulary-parallel LM head. *)

val build :
  ?layers:int ->
  ?degree:int ->
  ?heads:int ->
  ?sp:bool ->
  ?vp:bool ->
  unit ->
  Instance.t
(** Defaults: 1 layer, degree 2, [heads = max 2 degree], SP and VP on
    (the Megatron configuration: TP, SP and the parallel LM head). *)
