open Entangle_symbolic
open Entangle_ir
open Entangle_dist
module B = Graph.Builder

type bug = Aux_loss_unscaled | Rope_wrong_offset | Experts_sharded

let sd = Symdim.of_int
let transpose01 = Op.Transpose { dim0 = 0; dim1 = 1 }
let eps = 1e-5

let constraints =
  Constraint_store.add_positive Constraint_store.empty "sc"

(* Sequential per-layer tensors the lowering must reference. *)
type layer_weights = {
  w_ln : Tensor.t;
  wq : Tensor.t;
  wk : Tensor.t;
  wv : Tensor.t;
  wo : Tensor.t;
  wg : Tensor.t;
  w1 : Tensor.t array;  (* per expert [d; f] *)
  w2 : Tensor.t array;  (* per expert [f; d] *)
  w_aux : Tensor.t;  (* auxiliary-loss weight, scalar-like [1] *)
}

type seq_model = {
  gs : Graph.t;
  x : Tensor.t;
  cos : Tensor.t;
  sin : Tensor.t;
  weights : layer_weights list;
}

let d_model = 8
let d_ff = 8

let build_seq ~experts ~layers =
  let b = B.create ~constraints "moe-seq" in
  let seq = Symdim.mul_int 24 (Symdim.sym "sc") in
  let d = d_model and f = d_ff in
  let x0 = B.input b "x" [ seq; sd d ] in
  let cos = B.input b "cos" [ seq; sd d ] in
  let sin = B.input b "sin" [ seq; sd d ] in
  let weights = ref [] in
  let x = ref x0 in
  for l = 0 to layers - 1 do
    let pre = Fmt.str "l%d" l in
    let inp name shape = B.input b (Fmt.str "%s_%s" pre name) shape in
    let lw =
      {
        w_ln = inp "w_ln" [ sd d ];
        wq = inp "wq" [ sd d; sd d ];
        wk = inp "wk" [ sd d; sd d ];
        wv = inp "wv" [ sd d; sd d ];
        wo = inp "wo" [ sd d; sd d ];
        wg = inp "wg" [ sd d; sd experts ];
        w1 = Array.init experts (fun e -> inp (Fmt.str "w1_e%d" e) [ sd d; sd f ]);
        w2 = Array.init experts (fun e -> inp (Fmt.str "w2_e%d" e) [ sd f; sd d ]);
        w_aux = inp "w_aux" [ sd 1 ];
      }
    in
    weights := !weights @ [ lw ];
    let add op ins = B.add b op ins in
    (* Rotary position encoding applied to the layer input. *)
    let xr = add Op.Rope [ !x; cos; sin ] in
    let ln = add (Op.Rmsnorm { eps }) [ xr; lw.w_ln ] in
    (* Single-head attention (head-dimension TP in the lowering). *)
    let q = add Op.Matmul [ ln; lw.wq ] in
    let k = add Op.Matmul [ ln; lw.wk ] in
    let v = add Op.Matmul [ ln; lw.wv ] in
    let scores = add Op.Matmul [ q; add transpose01 [ k ] ] in
    let probs = add (Op.Softmax { dim = 1 }) [ scores ] in
    let ctx = add Op.Matmul [ probs; v ] in
    let proj = add Op.Matmul [ ctx; lw.wo ] in
    let r1 = add Op.Add [ !x; proj ] in
    (* Dense mixture-of-experts FFN. *)
    let gate_logits = add Op.Matmul [ r1; lw.wg ] in
    let gate = add (Op.Softmax { dim = 1 }) [ gate_logits ] in
    let weighted e =
      let h = add Op.Silu [ add Op.Matmul [ r1; lw.w1.(e) ] ] in
      let o = add Op.Matmul [ h; lw.w2.(e) ] in
      let ge =
        add (Op.Slice { dim = 1; start = sd e; stop = sd (e + 1) }) [ gate ]
      in
      add Op.Mul [ o; ge ]
    in
    let y = add Op.Sum_n (List.init experts weighted) in
    x := add Op.Add [ r1; y ];
    (* Auxiliary load-balancing loss (squared importance). *)
    let imp = add (Op.Reduce_mean { dim = 0; keepdim = false }) [ gate ] in
    let aux =
      add (Op.Reduce_sum { dim = 0; keepdim = true }) [ add Op.Mul [ imp; imp ] ]
    in
    let aux_weighted = B.add b ~name:(pre ^ "_aux") Op.Mul [ aux; lw.w_aux ] in
    B.output b aux_weighted
  done;
  B.output b !x;
  { gs = B.finish b; x = x0; cos; sin; weights = !weights }

let nth = List.nth

let build_dist sm ~experts ~degree ~layers ~bug =
  if experts mod degree <> 0 then
    invalid_arg "Moe.build: experts must divide by degree";
  if d_model mod degree <> 0 then
    invalid_arg "Moe.build: model dim must divide by degree";
  let ctx = Lower.create ~constraints ~name:"moe-dist" ~degree () in
  let add op ins = Lower.add ctx op ins in
  let experts_per_rank = experts / degree in
  let xs = ref (Lower.shard_input ctx sm.x ~dim:0) in
  let coss = Lower.replicate_input ctx sm.cos in
  let sins = Lower.replicate_input ctx sm.sin in
  let seq = Shape.dim (Tensor.shape sm.x) 0 in
  let chunk =
    match Symdim.div_int seq degree with
    | Some c -> c
    | None -> invalid_arg "Moe.build: sequence must divide by degree"
  in
  List.iteri
    (fun l lw ->
      let w_lns = Lower.replicate_input ctx lw.w_ln in
      let shard w dim = Lower.shard_input ctx w ~dim in
      let wqs = shard lw.wq 1 and wks = shard lw.wk 1 and wvs = shard lw.wv 1 in
      let wos = shard lw.wo 0 in
      let wgs = Lower.replicate_input ctx lw.wg in
      let w_auxs = Lower.replicate_input ctx lw.w_aux in
      (* Expert weights: replicated-on-owner under EP (each expert's
         weights live whole on one rank); the Experts_sharded bug keeps
         them sharded instead. *)
      let w1s, w2s =
        match bug with
        | Some Experts_sharded ->
            ( Array.map (fun w -> `Sharded (shard w 1)) lw.w1,
              Array.map (fun w -> `Sharded (shard w 0)) lw.w2 )
        | _ ->
            ( Array.map (fun w -> `Whole (Lower.whole_input ctx w)) lw.w1,
              Array.map (fun w -> `Whole (Lower.whole_input ctx w)) lw.w2 )
      in
      (* SP rope on sequence shards with per-rank cos/sin slices. *)
      let rope_sharded =
        Lower.map_ranks ctx (fun r ->
            let off =
              match bug with
              | Some Rope_wrong_offset -> Symdim.zero
              | _ -> Symdim.mul_int r chunk
            in
            let sl t =
              add
                (Op.Slice { dim = 0; start = off; stop = Symdim.add off chunk })
                [ t ]
            in
            add Op.Rope [ nth !xs r; sl (nth coss r); sl (nth sins r) ])
      in
      let ln_sharded =
        List.mapi
          (fun r xr -> add (Op.Rmsnorm { eps }) [ xr; nth w_lns r ])
          rope_sharded
      in
      let gathered = Lower.all_gather ctx ~dim:0 ln_sharded in
      (* Head-dimension tensor-parallel attention. *)
      let score_parts =
        List.mapi
          (fun r g ->
            let q = add Op.Matmul [ g; nth wqs r ] in
            let k = add Op.Matmul [ g; nth wks r ] in
            add Op.Matmul [ q; add transpose01 [ k ] ])
          gathered
      in
      let scores = Lower.all_reduce ctx score_parts in
      let proj_parts =
        List.mapi
          (fun r s ->
            let probs = add (Op.Softmax { dim = 1 }) [ s ] in
            let v = add Op.Matmul [ nth gathered r; nth wvs r ] in
            let c = add Op.Matmul [ probs; v ] in
            add Op.Matmul [ c; nth wos r ])
          scores
      in
      let proj_sharded = Lower.reduce_scatter ctx ~dim:0 proj_parts in
      let r1_sharded =
        List.map2 (fun x p -> add Op.Add [ x; p ]) !xs proj_sharded
      in
      let r1_full = Lower.all_gather ctx ~dim:0 r1_sharded in
      (* Gate, replicated per rank. *)
      let gates =
        List.mapi
          (fun r rf ->
            add (Op.Softmax { dim = 1 }) [ add Op.Matmul [ rf; nth wgs r ] ])
          r1_full
      in
      (* Expert-parallel FFN. *)
      let weighted_of rank e =
        let rf = nth r1_full rank and gate = nth gates rank in
        let ge =
          add (Op.Slice { dim = 1; start = sd e; stop = sd (e + 1) }) [ gate ]
        in
        match (w1s.(e), w2s.(e)) with
        | `Whole w1, `Whole w2 ->
            let h = add Op.Silu [ add Op.Matmul [ rf; w1 ] ] in
            let o = add Op.Matmul [ h; w2 ] in
            add Op.Mul [ o; ge ]
        | `Sharded w1, `Sharded w2 ->
            (* The bug: each rank multiplies its token shard by its
               weight shard, never computing the off-diagonal blocks. *)
            let rs = nth r1_sharded rank in
            let h = add Op.Silu [ add Op.Matmul [ rs; nth w1 rank ] ] in
            let o = add Op.Matmul [ h; nth w2 rank ] in
            let ge_local =
              add
                (Op.Slice
                   {
                     dim = 0;
                     start = Symdim.mul_int rank chunk;
                     stop = Symdim.mul_int (rank + 1) chunk;
                   })
                [ ge ]
            in
            add Op.Mul [ o; ge_local ]
        | _ -> assert false
      in
      let y_sharded =
        match bug with
        | Some Experts_sharded ->
            (* Every expert replicated-but-sharded: each rank sums all
               experts over its token shard. *)
            Lower.map_ranks ctx (fun r ->
                add Op.Sum_n (List.init experts (weighted_of r)))
        | _ ->
            let partials =
              Lower.map_ranks ctx (fun r ->
                  match
                    List.init experts_per_rank (fun i ->
                        weighted_of r ((r * experts_per_rank) + i))
                  with
                  | [ one ] -> one
                  | many -> add Op.Sum_n many)
            in
            Lower.reduce_scatter ctx ~dim:0 partials
      in
      let out_sharded =
        List.map2 (fun r y -> add Op.Add [ r; y ]) r1_sharded y_sharded
      in
      xs := out_sharded;
      (* Auxiliary loss, computed redundantly on every TP rank and
         aggregated; a correct implementation pre-scales by 1/degree. *)
      let aux_parts =
        List.map
          (fun gate ->
            let imp =
              add (Op.Reduce_mean { dim = 0; keepdim = false }) [ gate ]
            in
            let aux =
              add
                (Op.Reduce_sum { dim = 0; keepdim = true })
                [ add Op.Mul [ imp; imp ] ]
            in
            match bug with
            | Some Aux_loss_unscaled -> aux
            | _ -> add (Op.Scale (Rat.make 1 degree)) [ aux ])
          gates
      in
      let aux_agg = Lower.all_reduce ctx aux_parts in
      let aux_weighted =
        Lower.add ctx ~name:(Fmt.str "l%d_aux_d" l) Op.Mul
          [ List.hd aux_agg; List.hd w_auxs ]
      in
      Lower.output ctx aux_weighted)
    (List.filteri (fun i _ -> i < layers) sm.weights);
  Lower.outputs ctx !xs;
  Lower.finish ctx

let strategies =
  Strategy.[ Tensor_parallel; Sequence_parallel; Expert_parallel ]

let build ?(experts = 4) ?(degree = 2) ?(layers = 1) ?bug () =
  let sm = build_seq ~experts ~layers in
  let gd, input_relation = build_dist sm ~experts ~degree ~layers ~bug in
  let name =
    match bug with
    | None -> Fmt.str "ByteDance-MoE (%dx)" degree
    | Some Aux_loss_unscaled -> "ByteDance-MoE (buggy aux loss)"
    | Some Rope_wrong_offset -> "ByteDance-MoE (buggy RoPE offset)"
    | Some Experts_sharded -> "ByteDance-MoE (buggy expert sharding)"
  in
  Instance.make ~name ~family:Entangle_lemmas.Registry.Bytedance ~strategies
    ~degree ~layers ~gs:sm.gs ~gd ~input_relation
    ~env:(Interp.env_of_list [ ("sc", 1) ])

(* ------------------------------------------------------------------ *)
(* Backward pass of the expert FFN                                    *)
(* ------------------------------------------------------------------ *)

let build_backward ?(experts = 4) ?(degree = 2) () =
  if experts mod degree <> 0 then
    invalid_arg "Moe.build_backward: experts must divide by degree";
  let seq = Symdim.mul_int 24 (Symdim.sym "sc") in
  let d = d_model and f = d_ff in
  (* Sequential backward graph: activations are inputs, as captured. *)
  let b = B.create ~constraints "moe-bwd-seq" in
  let dy = B.input b "dy" [ seq; sd d ] in
  let r1 = B.input b "r1" [ seq; sd d ] in
  let per_expert name shape =
    Array.init experts (fun e -> B.input b (Fmt.str "%s_e%d" name e) shape)
  in
  let h = per_expert "h" [ seq; sd f ] in
  let pre = per_expert "pre" [ seq; sd f ] in
  let ge = per_expert "ge" [ seq; sd 1 ] in
  let w1 = per_expert "w1" [ sd d; sd f ] in
  let w2 = per_expert "w2" [ sd f; sd d ] in
  let add op ins = B.add b op ins in
  let dxs =
    List.init experts (fun e ->
        let dout = add Op.Mul [ dy; ge.(e) ] in
        let dw2 = add Op.Matmul [ add transpose01 [ h.(e) ]; dout ] in
        B.output b dw2;
        let dh = add Op.Matmul [ dout; add transpose01 [ w2.(e) ] ] in
        let ds = add Op.Mul [ dh; add Op.Sigmoid [ pre.(e) ] ] in
        let dw1 = add Op.Matmul [ add transpose01 [ r1 ]; ds ] in
        B.output b dw1;
        add Op.Matmul [ ds; add transpose01 [ w1.(e) ] ])
  in
  let dx = B.add b ~name:"dx" Op.Sum_n dxs in
  B.output b dx;
  let gs = B.finish b in
  (* Distributed backward: expert parallel; dx partials all-reduced. *)
  let ctx = Lower.create ~constraints ~name:"moe-bwd-dist" ~degree () in
  let addd op ins = Lower.add ctx op ins in
  let dys = Lower.replicate_input ctx dy in
  let r1s = Lower.replicate_input ctx r1 in
  let whole = Lower.whole_input ctx in
  let hs = Array.map whole h in
  let pres = Array.map whole pre in
  let ges = Array.map whole ge in
  let w1s = Array.map whole w1 in
  let w2s = Array.map whole w2 in
  let per_rank = experts / degree in
  let partials =
    Lower.map_ranks ctx (fun r ->
        let dx_of i =
          let e = (r * per_rank) + i in
          let dout = addd Op.Mul [ nth dys r; ges.(e) ] in
          let dw2 = addd Op.Matmul [ addd transpose01 [ hs.(e) ]; dout ] in
          Lower.output ctx dw2;
          let dh = addd Op.Matmul [ dout; addd transpose01 [ w2s.(e) ] ] in
          let ds = addd Op.Mul [ dh; addd Op.Sigmoid [ pres.(e) ] ] in
          let dw1 = addd Op.Matmul [ addd transpose01 [ nth r1s r ]; ds ] in
          Lower.output ctx dw1;
          addd Op.Matmul [ ds; addd transpose01 [ w1s.(e) ] ]
        in
        match List.init per_rank dx_of with
        | [ one ] -> one
        | many -> addd Op.Sum_n many)
  in
  let dx_out = Lower.all_reduce ctx partials in
  Lower.output ctx (List.hd dx_out);
  let gd, input_relation = Lower.finish ctx in
  Instance.make
    ~name:(Fmt.str "ByteDance-MoE-Bwd (%dx)" degree)
    ~family:Entangle_lemmas.Registry.Bytedance
    ~strategies:[ Strategy.Expert_parallel ] ~degree ~layers:1 ~gs ~gd
    ~input_relation
    ~env:(Interp.env_of_list [ ("sc", 1) ])
