(** Substitutions produced by e-matching. *)

open Entangle_ir

type t

val empty : t

val bind_var : t -> string -> Id.t -> t option
(** [None] when the variable is already bound to a different class. *)

val bind_op : t -> string -> Op.t -> t option

val var : t -> string -> Id.t
(** Raises [Not_found]. *)

val var_opt : t -> string -> Id.t option
val op : t -> string -> Op.t
val op_opt : t -> string -> Op.t option
val pp : t Fmt.t
