type t = int

let of_int i = i
let to_int i = i
let equal = Int.equal
let compare = Int.compare
let hash = Hashtbl.hash
let pp = Fmt.int

module Set = Set.Make (Int)
module Map = Map.Make (Int)

module Tbl = Hashtbl.Make (struct
  type t = int

  let equal = Int.equal
  let hash = Hashtbl.hash
end)
