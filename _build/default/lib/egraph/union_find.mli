(** Union-find over e-class ids with path compression and union by rank. *)

type t

val create : unit -> t

val fresh : t -> Id.t
(** Allocate a new singleton class. *)

val find : t -> Id.t -> Id.t

val union : t -> Id.t -> Id.t -> Id.t
(** Merge two classes; returns the surviving representative. *)

val size : t -> int
(** Number of ids allocated so far. *)
