open Entangle_ir

type sym = Op of Op.t | Leaf of Tensor.t

type t = { sym : sym; children : Id.t list }

let op o children = { sym = Op o; children }
let leaf t = { sym = Leaf t; children = [] }
let sym n = n.sym
let children n = n.children
let is_leaf n = match n.sym with Leaf _ -> true | Op _ -> false
let map_children f n = { n with children = List.map f n.children }

let compare_sym a b =
  match (a, b) with
  | Leaf x, Leaf y -> Tensor.compare x y
  | Leaf _, Op _ -> -1
  | Op _, Leaf _ -> 1
  | Op x, Op y -> Op.compare x y

let compare a b =
  match compare_sym a.sym b.sym with
  | 0 -> List.compare Id.compare a.children b.children
  | c -> c

let equal a b = compare a b = 0

let hash_sym = function
  | Leaf t -> Tensor.hash t
  | Op o -> Op.hash o

let hash n =
  List.fold_left
    (fun acc c -> (acc * 31) + Id.hash c)
    (hash_sym n.sym) n.children

let pp ppf n =
  match n.sym with
  | Leaf t -> Tensor.pp_name ppf t
  | Op o ->
      Fmt.pf ppf "(%a %a)" Op.pp o (Fmt.list ~sep:(Fmt.any " ") Id.pp) n.children

module Key = struct
  type nonrec t = t

  let equal = equal
  let hash = hash
  let compare = compare
end

module Tbl = Hashtbl.Make (Key)
module Map = Map.Make (Key)
