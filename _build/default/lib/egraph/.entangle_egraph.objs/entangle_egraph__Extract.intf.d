lib/egraph/extract.mli: Egraph Entangle_ir Expr Id Op Tensor
