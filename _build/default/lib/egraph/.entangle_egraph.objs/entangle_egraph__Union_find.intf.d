lib/egraph/union_find.mli: Id
