lib/egraph/ematch.ml: Egraph Enode Entangle_ir Id List Op Pattern String Subst
