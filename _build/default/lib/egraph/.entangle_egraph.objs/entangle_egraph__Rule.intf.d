lib/egraph/rule.mli: Egraph Id Pattern Subst
