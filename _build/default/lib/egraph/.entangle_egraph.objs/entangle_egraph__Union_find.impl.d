lib/egraph/union_find.ml: Array Id
