lib/egraph/egraph.mli: Constraint_store Enode Entangle_ir Entangle_symbolic Expr Fmt Id Op Shape Tensor
