lib/egraph/enode.ml: Entangle_ir Fmt Hashtbl Id List Map Op Tensor
