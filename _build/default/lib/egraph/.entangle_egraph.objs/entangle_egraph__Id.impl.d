lib/egraph/id.ml: Fmt Hashtbl Int Map Set
