lib/egraph/ematch.mli: Egraph Id Pattern Subst
