lib/egraph/egraph.ml: Constraint_store Enode Entangle_ir Entangle_symbolic Expr Fmt Hashtbl Id List Op Option Shape Tensor Union_find
