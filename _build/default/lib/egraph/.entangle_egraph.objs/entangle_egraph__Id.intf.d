lib/egraph/id.mli: Fmt Hashtbl Map Set
