lib/egraph/pattern.ml: Entangle_ir Fmt Id List Op
