lib/egraph/runner.mli: Egraph Hashtbl Rule
