lib/egraph/pattern.mli: Entangle_ir Fmt Id Op
