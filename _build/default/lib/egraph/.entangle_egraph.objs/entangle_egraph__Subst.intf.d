lib/egraph/subst.mli: Entangle_ir Fmt Id Op
