lib/egraph/subst.ml: Entangle_ir Fmt Id Map Op String
