lib/egraph/enode.mli: Entangle_ir Fmt Hashtbl Id Map Op Tensor
