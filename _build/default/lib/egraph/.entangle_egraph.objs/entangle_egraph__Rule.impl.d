lib/egraph/rule.ml: Egraph Ematch Id List Pattern Subst
