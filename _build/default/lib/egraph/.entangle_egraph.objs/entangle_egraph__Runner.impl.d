lib/egraph/runner.ml: Egraph Ematch Enode Entangle_ir Hashtbl Id List Logs Option Pattern Rule
