lib/egraph/extract.ml: Egraph Enode Entangle_ir Expr Id Int List Op Option
