(** Term extraction from e-classes.

    [best] extracts the smallest term of a class ("the expression with
    the smallest number of nested expressions", paper section 4.3.2).
    [best_clean] restricts both the operators (to clean ones) and the
    admissible leaves; it is how the checker turns a saturated e-graph
    into a clean relation entry. *)

open Entangle_ir

val best : Egraph.t -> Id.t -> Expr.t option
(** Smallest term of the class, over any leaves. [None] only when the
    class contains no term grounded in leaves. *)

val best_clean :
  Egraph.t -> leaf_ok:(Tensor.t -> bool) -> Id.t -> Expr.t option
(** Smallest term of the class whose operators all satisfy
    {!Op.is_clean} and whose leaves all satisfy [leaf_ok]. *)

val best_filtered :
  Egraph.t ->
  node_ok:(Op.t -> bool) ->
  leaf_ok:(Tensor.t -> bool) ->
  Id.t ->
  Expr.t option
(** Like {!best_clean} with a caller-supplied operator filter; used to
    extract alternative canonical forms (for instance rearrangement-only
    expressions alongside reduction expressions). *)

val clean_cost_table :
  Egraph.t -> leaf_ok:(Tensor.t -> bool) -> (Id.t -> int option)
(** Precomputed clean-extraction costs for every class; useful when
    querying many classes of one e-graph. *)
