(** E-nodes: an operator or tensor leaf applied to e-class children. *)

open Entangle_ir

type sym = Op of Op.t | Leaf of Tensor.t

type t = { sym : sym; children : Id.t list }

val op : Op.t -> Id.t list -> t
val leaf : Tensor.t -> t

val sym : t -> sym
val children : t -> Id.t list
val is_leaf : t -> bool

val map_children : (Id.t -> Id.t) -> t -> t
(** Canonicalization under a union-find [find]. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : t Fmt.t

module Tbl : Hashtbl.S with type key = t
module Map : Map.S with type key = t
