open Entangle_ir

type mode = Insert | Check_only

(* Hard bound on the substitutions produced while matching one pattern
   against one class. Classes that accumulate many equivalent variadic
   nodes (nested sums, regrouped concats) otherwise yield quadratically
   many matches; truncation loses completeness of a single iteration
   only — later iterations rediscover anything still missing. *)
let per_class_budget = 2048

let truncate l =
  let rec go n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: rest -> x :: go (n - 1) rest
  in
  if List.compare_length_with l per_class_budget > 0 then
    go per_class_budget l
  else l

let sel_matches sel (op : Op.t) subst =
  match sel with
  | Pattern.Fixed o -> if Op.equal o op then Some subst else None
  | Pattern.Family { family; bind } ->
      if String.equal (Op.name op) family then Subst.bind_op subst bind op
      else None
  | Pattern.Bound name -> (
      match Subst.op_opt subst name with
      | Some o when Op.equal o op -> Some subst
      | _ -> None)

let rec match_pat g pat cls subst =
  let cls = Egraph.find g cls in
  match pat with
  | Pattern.V x -> (
      match Subst.bind_var subst x cls with
      | Some s -> [ s ]
      | None -> [])
  | Pattern.C id -> if Id.equal (Egraph.find g id) cls then [ subst ] else []
  | Pattern.P (sel, args) ->
      let n_args = List.length args in
      List.concat_map
        (fun enode ->
          match Enode.sym enode with
          | Enode.Leaf _ -> []
          | Enode.Op op ->
              if List.length (Enode.children enode) <> n_args then []
              else begin
                match sel_matches sel op subst with
                | None -> []
                | Some subst ->
                    List.fold_left2
                      (fun substs arg child ->
                        truncate
                          (List.concat_map
                             (fun s -> match_pat g arg child s)
                             substs))
                      [ subst ] args (Enode.children enode)
              end)
        (Egraph.nodes_of g cls)
      |> truncate

let match_class g pat cls = match_pat g pat cls Subst.empty

let match_all g pat =
  List.concat_map
    (fun cls ->
      List.map (fun s -> (cls, s)) (match_class g pat cls))
    (Egraph.class_ids g)

let rec instantiate ~mode g subst = function
  | Pattern.V x -> Subst.var_opt subst x
  | Pattern.C id -> Some (Egraph.find g id)
  | Pattern.P (sel, args) -> (
      let op =
        match sel with
        | Pattern.Fixed o -> Some o
        | Pattern.Bound name -> Subst.op_opt subst name
        | Pattern.Family _ -> None
      in
      match op with
      | None -> None
      | Some op ->
          let rec build acc = function
            | [] -> Some (List.rev acc)
            | a :: rest -> (
                match instantiate ~mode g subst a with
                | Some id -> build (id :: acc) rest
                | None -> None)
          in
          (match build [] args with
          | None -> None
          | Some children -> (
              let node = Enode.op op children in
              match mode with
              | Insert -> Some (Egraph.add g node)
              | Check_only -> Egraph.lookup g node)))
