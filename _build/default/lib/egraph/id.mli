(** E-class identifiers. *)

type t = private int

val of_int : int -> t
val to_int : t -> int
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : t Fmt.t

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
module Tbl : Hashtbl.S with type key = t
