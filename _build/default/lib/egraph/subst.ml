open Entangle_ir
module Smap = Map.Make (String)

type t = { vars : Id.t Smap.t; ops : Op.t Smap.t }

let empty = { vars = Smap.empty; ops = Smap.empty }

let bind_var t x id =
  match Smap.find_opt x t.vars with
  | Some existing -> if Id.equal existing id then Some t else None
  | None -> Some { t with vars = Smap.add x id t.vars }

let bind_op t x op =
  match Smap.find_opt x t.ops with
  | Some existing -> if Op.equal existing op then Some t else None
  | None -> Some { t with ops = Smap.add x op t.ops }

let var t x = Smap.find x t.vars
let var_opt t x = Smap.find_opt x t.vars
let op t x = Smap.find x t.ops
let op_opt t x = Smap.find_opt x t.ops

let pp ppf t =
  Fmt.pf ppf "{%a%a}"
    (Fmt.iter_bindings Smap.iter (fun ppf (k, v) -> Fmt.pf ppf "?%s=%a " k Id.pp v))
    t.vars
    (Fmt.iter_bindings Smap.iter (fun ppf (k, v) -> Fmt.pf ppf "!%s=%a " k Op.pp v))
    t.ops
